package dct

import (
	"math"
	"testing"
	"testing/quick"

	"csecg/internal/linalg"
)

func TestNewValidation(t *testing.T) {
	if _, err := New[float64](0); err == nil {
		t.Error("zero length accepted")
	}
	if _, err := New[float64](-4); err == nil {
		t.Error("negative length accepted")
	}
	tr, err := New[float64](16)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 16 {
		t.Errorf("Len = %d", tr.Len())
	}
}

func TestPerfectReconstruction(t *testing.T) {
	tr, err := New[float64](128)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, 128)
	state := uint64(3)
	for i := range x {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		x[i] = float64(int64(state%2001)-1000) / 50
	}
	c := make([]float64, 128)
	back := make([]float64, 128)
	tr.Forward(c, x)
	tr.Inverse(back, c)
	if d := linalg.MaxAbsDiff(x, back); d > 1e-10 {
		t.Errorf("reconstruction error %v", d)
	}
}

func TestOrthonormalParseval(t *testing.T) {
	tr, _ := New[float64](64)
	f := func(seed uint64) bool {
		s := seed | 1
		x := make([]float64, 64)
		for i := range x {
			s ^= s << 13
			s ^= s >> 7
			s ^= s << 17
			x[i] = float64(int64(s%2001)-1000) / 250
		}
		c := make([]float64, 64)
		tr.Forward(c, x)
		return math.Abs(float64(linalg.Norm2(x)-linalg.Norm2(c))) < 1e-10*(1+float64(linalg.Norm2(x)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDCOnlySignal(t *testing.T) {
	// A constant lands entirely in coefficient 0 with value √n·c.
	tr, _ := New[float64](64)
	x := make([]float64, 64)
	for i := range x {
		x[i] = 2
	}
	c := make([]float64, 64)
	tr.Forward(c, x)
	if math.Abs(c[0]-2*math.Sqrt(64)) > 1e-10 {
		t.Errorf("DC coefficient %v, want %v", c[0], 2*math.Sqrt(64))
	}
	for k := 1; k < 64; k++ {
		if math.Abs(c[k]) > 1e-10 {
			t.Fatalf("coefficient %d = %v, want 0", k, c[k])
		}
	}
}

func TestCosineIsSparse(t *testing.T) {
	// A pure half-integer-frequency cosine (a DCT basis function) maps
	// to a single coefficient.
	const n = 128
	tr, _ := New[float64](n)
	const k0 = 7
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Cos(math.Pi * float64(2*i+1) * k0 / (2 * n))
	}
	c := make([]float64, n)
	tr.Forward(c, x)
	for k := 0; k < n; k++ {
		want := 0.0
		if k == k0 {
			want = math.Sqrt(n / 2.0)
		}
		if math.Abs(c[k]-want) > 1e-9 {
			t.Fatalf("coefficient %d = %v, want %v", k, c[k], want)
		}
	}
}

func TestSynthesisOpAdjoint(t *testing.T) {
	tr, _ := New[float64](96)
	if mm := linalg.AdjointMismatch(tr.SynthesisOp(), 5); mm > 1e-10 {
		t.Errorf("adjoint mismatch %v", mm)
	}
}

func TestFloat32(t *testing.T) {
	tr, err := New[float32](64)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float32, 64)
	for i := range x {
		x[i] = float32(math.Sin(0.2 * float64(i)))
	}
	c := make([]float32, 64)
	back := make([]float32, 64)
	tr.Forward(c, x)
	tr.Inverse(back, c)
	if d := linalg.MaxAbsDiff(x, back); d > 1e-4 {
		t.Errorf("float32 reconstruction error %v", d)
	}
}

func BenchmarkForward512(b *testing.B) {
	tr, _ := New[float32](512)
	x := make([]float32, 512)
	c := make([]float32, 512)
	for i := range x {
		x[i] = float32(i % 37)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Forward(c, x)
	}
}
