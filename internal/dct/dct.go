// Package dct implements the orthonormal discrete cosine transform
// (DCT-II analysis / DCT-III synthesis) as an alternative sparsifying
// basis Ψ for the CS recovery.
//
// The paper fixes an orthonormal wavelet basis; the ECG-compression
// literature it builds on also uses cosine bases, and the ablation
// experiments compare the two. The transform here is matrix-free in the
// operator sense (nothing is materialized at recovery time beyond a
// cosine table) and exactly orthonormal, so the synthesis adjoint equals
// the analysis transform, as the solver requires.
package dct

import (
	"fmt"
	"math"

	"csecg/internal/linalg"
)

// Transform is an orthonormal DCT over length-n vectors. It is generic
// over float32/float64 like the wavelet transform, so the decoder can be
// instantiated at either precision.
type Transform[T linalg.Float] struct {
	n int
	// cos holds the orthonormal DCT-II kernel K[k][i] = s_k·cos(π(2i+1)k/2n)
	// row-major; K·x is analysis, Kᵀ·c synthesis. n×n values at the
	// instantiated precision (512×512 float32 = 1 MB — coordinator-class
	// memory, not mote memory; only the decoder holds it).
	cos []T
}

// New builds the transform. n must be positive.
func New[T linalg.Float](n int) (*Transform[T], error) {
	if n <= 0 {
		return nil, fmt.Errorf("dct: length %d must be positive", n)
	}
	t := &Transform[T]{n: n, cos: make([]T, n*n)}
	s0 := math.Sqrt(1 / float64(n))
	sk := math.Sqrt(2 / float64(n))
	for k := 0; k < n; k++ {
		scale := sk
		if k == 0 {
			scale = s0
		}
		for i := 0; i < n; i++ {
			t.cos[k*n+i] = T(scale * math.Cos(math.Pi*float64(2*i+1)*float64(k)/(2*float64(n))))
		}
	}
	return t, nil
}

// Len returns the transform length.
func (t *Transform[T]) Len() int { return t.n }

// Forward computes the analysis transform (DCT-II): dst[k] = Σ K[k][i]x[i].
func (t *Transform[T]) Forward(dst, x []T) {
	if len(dst) != t.n || len(x) != t.n {
		panic("dct: Forward length mismatch")
	}
	for k := 0; k < t.n; k++ {
		dst[k] = linalg.Dot4(t.cos[k*t.n:(k+1)*t.n], x)
	}
}

// Inverse computes the synthesis transform (DCT-III): dst = Kᵀ·c.
func (t *Transform[T]) Inverse(dst, c []T) {
	if len(dst) != t.n || len(c) != t.n {
		panic("dct: Inverse length mismatch")
	}
	for i := range dst {
		dst[i] = 0
	}
	for k := 0; k < t.n; k++ {
		if c[k] == 0 {
			continue
		}
		linalg.Axpy4(c[k], t.cos[k*t.n:(k+1)*t.n], dst)
	}
}

// SynthesisOp exposes Ψ as a linalg.Op, mirroring the wavelet package:
// Apply is synthesis (coefficients → samples), ApplyT analysis.
func (t *Transform[T]) SynthesisOp() linalg.Op[T] {
	return linalg.Op[T]{
		InDim:  t.n,
		OutDim: t.n,
		Apply:  func(dst, x []T) { t.Inverse(dst, x) },
		ApplyT: func(dst, y []T) { t.Forward(dst, y) },
	}
}
