package wfdb

import (
	"fmt"
	"os"
	"path/filepath"
)

// Format-212 packing: two 12-bit two's-complement samples per 3 bytes.
// With two signals (the MIT-BIH case) each frame holds one sample of
// each channel:
//
//	byte 0: sample0 bits 0-7
//	byte 1: low nibble = sample0 bits 8-11, high nibble = sample1 bits 8-11
//	byte 2: sample1 bits 0-7

// signal212Range checks a sample fits 12-bit two's complement.
func signal212Range(v int16) error {
	if v < -2048 || v > 2047 {
		return fmt.Errorf("wfdb: sample %d outside the 12-bit format-212 range", v)
	}
	return nil
}

// WriteSignals212 writes a two-channel record as dir/name.dat in
// format 212 and returns per-channel (initValue, checksum) for the
// header. Channels must be equal, nonzero length.
func WriteSignals212(dir, name string, ch0, ch1 []int16) (init [2]int, checksum [2]int16, err error) {
	if len(ch0) == 0 || len(ch0) != len(ch1) {
		return init, checksum, fmt.Errorf("wfdb: channels must be equal nonzero length (%d, %d)", len(ch0), len(ch1))
	}
	buf := make([]byte, 0, 3*len(ch0))
	var sum0, sum1 int16
	for i := range ch0 {
		if err := signal212Range(ch0[i]); err != nil {
			return init, checksum, err
		}
		if err := signal212Range(ch1[i]); err != nil {
			return init, checksum, err
		}
		s0 := uint16(ch0[i]) & 0xFFF
		s1 := uint16(ch1[i]) & 0xFFF
		buf = append(buf,
			byte(s0&0xFF),
			byte((s0>>8)&0x0F)|byte((s1>>8)&0x0F)<<4,
			byte(s1&0xFF),
		)
		sum0 += ch0[i]
		sum1 += ch1[i]
	}
	init[0], init[1] = int(ch0[0]), int(ch1[0])
	checksum[0], checksum[1] = sum0, sum1
	return init, checksum, os.WriteFile(filepath.Join(dir, name+".dat"), buf, 0o644)
}

// ReadSignals212 reads a two-channel format-212 file written by
// WriteSignals212 (or by standard WFDB tools), returning numSamples
// samples per channel. numSamples ≤ 0 reads everything present.
func ReadSignals212(dir, name string, numSamples int) (ch0, ch1 []int16, err error) {
	data, err := os.ReadFile(filepath.Join(dir, name+".dat"))
	if err != nil {
		return nil, nil, err
	}
	frames := len(data) / 3
	if numSamples <= 0 {
		numSamples = frames
	}
	if numSamples > frames {
		return nil, nil, fmt.Errorf("wfdb: file holds %d samples, header claims %d", frames, numSamples)
	}
	ch0 = make([]int16, numSamples)
	ch1 = make([]int16, numSamples)
	for i := 0; i < numSamples; i++ {
		b0, b1, b2 := data[3*i], data[3*i+1], data[3*i+2]
		s0 := uint16(b0) | uint16(b1&0x0F)<<8
		s1 := uint16(b2) | uint16(b1&0xF0)<<4
		ch0[i] = signExtend12(s0)
		ch1[i] = signExtend12(s1)
	}
	return ch0, ch1, nil
}

func signExtend12(v uint16) int16 {
	return int16(v<<4) >> 4
}

// Record bundles a fully read two-channel record.
type Record struct {
	Header   *Header
	Channels [2][]int16
}

// WriteRecord exports a two-channel record (header + format-212 data).
// The spec template supplies gain/units/resolution; file names,
// initial values and checksums are filled in.
func WriteRecord(dir, name string, fs float64, ch0, ch1 []int16, spec SignalSpec, descriptions [2]string) error {
	init, checksum, err := WriteSignals212(dir, name, ch0, ch1)
	if err != nil {
		return err
	}
	h := &Header{Name: name, Fs: fs, NumSamples: len(ch0)}
	for c := 0; c < 2; c++ {
		s := spec
		s.FileName = name + ".dat"
		s.Format = 212
		s.InitValue = init[c]
		s.Checksum = checksum[c]
		s.Description = descriptions[c]
		h.Signals = append(h.Signals, s)
	}
	return WriteHeader(dir, h)
}

// ReadRecord reads a two-channel format-212 record and verifies the
// per-channel checksums and initial values against the header.
func ReadRecord(dir, name string) (*Record, error) {
	h, err := ReadHeader(dir, name)
	if err != nil {
		return nil, err
	}
	if len(h.Signals) != 2 {
		return nil, fmt.Errorf("wfdb: record %s has %d signals, only 2-signal records supported", name, len(h.Signals))
	}
	for c, s := range h.Signals {
		if s.Format != 212 {
			return nil, fmt.Errorf("wfdb: signal %d uses format %d, only 212 supported", c, s.Format)
		}
	}
	ch0, ch1, err := ReadSignals212(dir, name, h.NumSamples)
	if err != nil {
		return nil, err
	}
	rec := &Record{Header: h, Channels: [2][]int16{ch0, ch1}}
	for c, ch := range rec.Channels {
		var sum int16
		for _, v := range ch {
			sum += v
		}
		if sum != h.Signals[c].Checksum {
			return nil, fmt.Errorf("wfdb: signal %d checksum %d, header says %d", c, sum, h.Signals[c].Checksum)
		}
		if len(ch) > 0 && int(ch[0]) != h.Signals[c].InitValue {
			return nil, fmt.Errorf("wfdb: signal %d initial value %d, header says %d", c, ch[0], h.Signals[c].InitValue)
		}
	}
	return rec, nil
}
