package wfdb

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"

	"csecg/internal/ecg"
)

func TestSignal212RoundTrip(t *testing.T) {
	dir := t.TempDir()
	ch0 := []int16{0, 1, -1, 2047, -2048, 100, -100, 512}
	ch1 := []int16{-2048, 2047, 0, -1, 1, -512, 99, 3}
	init, checksum, err := WriteSignals212(dir, "t1", ch0, ch1)
	if err != nil {
		t.Fatal(err)
	}
	if init[0] != 0 || init[1] != -2048 {
		t.Errorf("init = %v", init)
	}
	r0, r1, err := ReadSignals212(dir, "t1", len(ch0))
	if err != nil {
		t.Fatal(err)
	}
	for i := range ch0 {
		if r0[i] != ch0[i] || r1[i] != ch1[i] {
			t.Fatalf("sample %d: got (%d,%d), want (%d,%d)", i, r0[i], r1[i], ch0[i], ch1[i])
		}
	}
	var s0, s1 int16
	for i := range ch0 {
		s0 += ch0[i]
		s1 += ch1[i]
	}
	if checksum[0] != s0 || checksum[1] != s1 {
		t.Errorf("checksums %v, want (%d,%d)", checksum, s0, s1)
	}
}

func TestSignal212Property(t *testing.T) {
	dir := t.TempDir()
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		ch0 := make([]int16, len(raw))
		ch1 := make([]int16, len(raw))
		for i, v := range raw {
			ch0[i] = v % 2048
			ch1[i] = (v / 3) % 2048
		}
		if _, _, err := WriteSignals212(dir, "prop", ch0, ch1); err != nil {
			return false
		}
		r0, r1, err := ReadSignals212(dir, "prop", len(ch0))
		if err != nil {
			return false
		}
		for i := range ch0 {
			if r0[i] != ch0[i] || r1[i] != ch1[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSignal212Validation(t *testing.T) {
	dir := t.TempDir()
	if _, _, err := WriteSignals212(dir, "bad", []int16{4000}, []int16{0}); err == nil {
		t.Error("out-of-range sample accepted")
	}
	if _, _, err := WriteSignals212(dir, "bad", []int16{1, 2}, []int16{1}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, _, err := WriteSignals212(dir, "bad", nil, nil); err == nil {
		t.Error("empty channels accepted")
	}
	// Claiming more samples than the file holds must fail.
	if _, _, err := WriteSignals212(dir, "short", []int16{1}, []int16{2}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadSignals212(dir, "short", 99); err == nil {
		t.Error("over-long read accepted")
	}
}

func TestHeaderRoundTrip(t *testing.T) {
	dir := t.TempDir()
	h := &Header{
		Name: "100", Fs: 360, NumSamples: 650000,
		Signals: []SignalSpec{
			{FileName: "100.dat", Format: 212, Gain: 200, Baseline: 1024, Units: "mV",
				ADCRes: 11, ADCZero: 1024, InitValue: 995, Checksum: -22131, Description: "MLII"},
			{FileName: "100.dat", Format: 212, Gain: 200, Baseline: 1024, Units: "mV",
				ADCRes: 11, ADCZero: 1024, InitValue: 1011, Checksum: 20052, Description: "V5"},
		},
	}
	if err := WriteHeader(dir, h); err != nil {
		t.Fatal(err)
	}
	got, err := ReadHeader(dir, "100")
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "100" || got.Fs != 360 || got.NumSamples != 650000 {
		t.Errorf("record line mismatch: %+v", got)
	}
	if len(got.Signals) != 2 {
		t.Fatalf("parsed %d signals", len(got.Signals))
	}
	s := got.Signals[0]
	if s.Gain != 200 || s.Baseline != 1024 || s.Units != "mV" || s.ADCRes != 11 ||
		s.InitValue != 995 || s.Checksum != -22131 || s.Description != "MLII" {
		t.Errorf("signal 0 mismatch: %+v", s)
	}
}

func TestReadHeaderRealWorldLine(t *testing.T) {
	// A verbatim MIT-BIH header (gain without explicit baseline).
	dir := t.TempDir()
	content := "100 2 360 650000\n" +
		"100.dat 212 200 11 1024 995 -22131 0 MLII\n" +
		"100.dat 212 200 11 1024 1011 20052 0 V5\n"
	if err := os.WriteFile(filepath.Join(dir, "100.hea"), []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	h, err := ReadHeader(dir, "100")
	if err != nil {
		t.Fatal(err)
	}
	if h.Signals[0].Gain != 200 || h.Signals[0].Baseline != 1024 {
		t.Errorf("gain/baseline = %v/%d", h.Signals[0].Gain, h.Signals[0].Baseline)
	}
	if h.Signals[1].Description != "V5" {
		t.Errorf("description = %q", h.Signals[1].Description)
	}
}

func TestReadHeaderRejectsMalformed(t *testing.T) {
	dir := t.TempDir()
	cases := []string{
		"",                   // empty
		"100 x 360 650000\n", // bad nsig
		"100 2 0 650000\n",   // bad fs
		"100 2 360 650000\n" + "f.dat 212 200 11\n",                        // short signal line
		"100 2 360 650000\n" + "f.dat 212 200 11 1024 995 -22131 0 MLII\n", // missing 2nd signal
	}
	for i, c := range cases {
		os.WriteFile(filepath.Join(dir, "bad.hea"), []byte(c), 0o644)
		if _, err := ReadHeader(dir, "bad"); err == nil {
			t.Errorf("case %d accepted: %q", i, c)
		}
	}
}

func TestWriteReadRecordEndToEnd(t *testing.T) {
	dir := t.TempDir()
	rec, err := ecg.RecordByID("100")
	if err != nil {
		t.Fatal(err)
	}
	sig, err := rec.Synthesize(10)
	if err != nil {
		t.Fatal(err)
	}
	ch0 := ecg.Digitize(sig.MV[0])
	ch1 := ecg.Digitize(sig.MV[1])
	spec := SignalSpec{
		Gain: ecg.ADCGain, Baseline: ecg.ADCBaseline, Units: "mV",
		ADCRes: ecg.ADCBits, ADCZero: ecg.ADCBaseline,
	}
	if err := WriteRecord(dir, "100", ecg.FsMITBIH, ch0, ch1, spec, [2]string{"MLII", "V1"}); err != nil {
		t.Fatal(err)
	}
	back, err := ReadRecord(dir, "100")
	if err != nil {
		t.Fatal(err)
	}
	if back.Header.Fs != 360 || back.Header.NumSamples != len(ch0) {
		t.Errorf("header mismatch: %+v", back.Header)
	}
	for i := range ch0 {
		if back.Channels[0][i] != ch0[i] || back.Channels[1][i] != ch1[i] {
			t.Fatalf("sample %d mismatch", i)
		}
	}
}

func TestReadRecordDetectsCorruption(t *testing.T) {
	dir := t.TempDir()
	ch := []int16{10, 20, 30, 40}
	spec := SignalSpec{Gain: 200, Baseline: 1024, Units: "mV", ADCRes: 11, ADCZero: 1024}
	if err := WriteRecord(dir, "c", 360, ch, ch, spec, [2]string{"a", "b"}); err != nil {
		t.Fatal(err)
	}
	// Flip a data byte: checksum must catch it.
	path := filepath.Join(dir, "c.dat")
	data, _ := os.ReadFile(path)
	data[0] ^= 0xFF
	os.WriteFile(path, data, 0o644)
	if _, err := ReadRecord(dir, "c"); err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Errorf("corruption not detected: %v", err)
	}
}

func TestAnnotationsRoundTrip(t *testing.T) {
	dir := t.TempDir()
	anns := []Annotation{
		{Sample: 100, Code: CodeNormal},
		{Sample: 400, Code: CodePVC},
		{Sample: 700, Code: CodeAPC},
		{Sample: 50000, Code: CodeNormal}, // forces a SKIP word
		{Sample: 50300, Code: CodeNormal},
	}
	if err := WriteAnnotations(dir, "a", anns); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAnnotations(dir, "a")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(anns) {
		t.Fatalf("got %d annotations, want %d", len(got), len(anns))
	}
	for i := range anns {
		if got[i] != anns[i] {
			t.Errorf("annotation %d: %+v, want %+v", i, got[i], anns[i])
		}
	}
}

func TestAnnotationsProperty(t *testing.T) {
	dir := t.TempDir()
	f := func(deltas []uint16, codesRaw []uint8) bool {
		n := len(deltas)
		if len(codesRaw) < n {
			n = len(codesRaw)
		}
		if n == 0 {
			return true
		}
		anns := make([]Annotation, n)
		t0 := 0
		codes := []int{CodeNormal, CodePVC, CodeAPC}
		for i := 0; i < n; i++ {
			t0 += int(deltas[i]) // up to 65535 gaps, exercising SKIP
			anns[i] = Annotation{Sample: t0, Code: codes[int(codesRaw[i])%3]}
		}
		if err := WriteAnnotations(dir, "p", anns); err != nil {
			return false
		}
		got, err := ReadAnnotations(dir, "p")
		if err != nil || len(got) != n {
			return false
		}
		for i := range anns {
			if got[i] != anns[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestAnnotationsValidation(t *testing.T) {
	dir := t.TempDir()
	if err := WriteAnnotations(dir, "v", []Annotation{{Sample: 10, Code: 99}}); err == nil {
		t.Error("invalid code accepted")
	}
	if err := WriteAnnotations(dir, "v", []Annotation{{Sample: 10, Code: 1}, {Sample: 5, Code: 1}}); err == nil {
		t.Error("descending samples accepted")
	}
	// Truncated stream (no terminator).
	os.WriteFile(filepath.Join(dir, "t.atr"), []byte{0xFF, 0x07}, 0o644)
	if _, err := ReadAnnotations(dir, "t"); err == nil {
		t.Error("missing terminator accepted")
	}
}

func TestAnnotationsFromSignal(t *testing.T) {
	rec, err := ecg.RecordByID("208") // PVC-rich
	if err != nil {
		t.Fatal(err)
	}
	sig, err := rec.Synthesize(30)
	if err != nil {
		t.Fatal(err)
	}
	anns := AnnotationsFromSignal(sig)
	if len(anns) == 0 {
		t.Fatal("no annotations")
	}
	sawPVC := false
	prev := -1
	for _, a := range anns {
		if a.Sample <= prev {
			t.Fatal("annotations not ascending")
		}
		prev = a.Sample
		if a.Code == CodePVC {
			sawPVC = true
		}
	}
	if !sawPVC {
		t.Error("record 208 produced no PVC annotations over 30 s")
	}
}

func TestCodeForBeat(t *testing.T) {
	if CodeForBeat(ecg.Normal) != CodeNormal || CodeForBeat(ecg.PVC) != CodePVC ||
		CodeForBeat(ecg.APC) != CodeAPC || CodeForBeat(ecg.Dropped) != -1 {
		t.Error("beat-code mapping wrong")
	}
}
