package wfdb

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"

	"csecg/internal/ecg"
)

// MIT annotation format: a stream of 16-bit little-endian words, each
// carrying a 6-bit annotation code in the high bits and a 10-bit time
// increment in the low bits. Long gaps use the SKIP pseudo-code
// followed by a 32-bit interval (stored high word first, PDP-11 style);
// the stream ends with a zero word.

// Annotation codes used by this subset (standard WFDB code numbers).
const (
	CodeNormal = 1  // N: normal beat
	CodePVC    = 5  // V: premature ventricular contraction
	CodeAPC    = 8  // A: atrial premature beat
	codeSkip   = 59 // long time increment follows
	codeNum    = 60 // NUM field change (skipped on read)
	codeSub    = 61 // SUB field change (skipped on read)
	codeChn    = 62 // CHN field change (skipped on read)
	codeAux    = 63 // aux string follows (skipped on read)
)

// Annotation is one annotated event.
type Annotation struct {
	// Sample index of the event.
	Sample int
	// Code is the WFDB annotation code.
	Code int
}

// CodeForBeat maps the generator's beat classes to WFDB codes. Dropped
// beats have no annotation in MIT-BIH and return -1.
func CodeForBeat(bt ecg.BeatType) int {
	switch bt {
	case ecg.Normal:
		return CodeNormal
	case ecg.PVC:
		return CodePVC
	case ecg.APC:
		return CodeAPC
	default:
		return -1
	}
}

// WriteAnnotations writes anns (ascending by sample) as dir/name.atr.
func WriteAnnotations(dir, name string, anns []Annotation) error {
	var buf []byte
	word := func(code, interval int) {
		var w [2]byte
		binary.LittleEndian.PutUint16(w[:], uint16(code)<<10|uint16(interval)&0x3FF)
		buf = append(buf, w[:]...)
	}
	prev := 0
	for i, a := range anns {
		if a.Code < 1 || a.Code > 49 {
			return fmt.Errorf("wfdb: annotation %d has non-beat code %d", i, a.Code)
		}
		delta := a.Sample - prev
		if delta < 0 {
			return fmt.Errorf("wfdb: annotations not ascending at index %d", i)
		}
		if delta >= 1024 {
			word(codeSkip, 0)
			var w [4]byte
			binary.LittleEndian.PutUint16(w[0:], uint16(delta>>16))
			binary.LittleEndian.PutUint16(w[2:], uint16(delta&0xFFFF))
			buf = append(buf, w[:]...)
			delta = 0
		}
		word(a.Code, delta)
		prev = a.Sample
	}
	word(0, 0) // end of stream
	return os.WriteFile(filepath.Join(dir, name+".atr"), buf, 0o644)
}

// ReadAnnotations parses dir/name.atr, returning the beat annotations
// (field-modifier and aux pseudo-annotations are skipped).
func ReadAnnotations(dir, name string) ([]Annotation, error) {
	data, err := os.ReadFile(filepath.Join(dir, name+".atr"))
	if err != nil {
		return nil, err
	}
	var anns []Annotation
	t := 0
	pending := 0 // interval accumulated by SKIP words
	for pos := 0; pos+1 < len(data); pos += 2 {
		w := binary.LittleEndian.Uint16(data[pos:])
		code := int(w >> 10)
		interval := int(w & 0x3FF)
		switch code {
		case 0:
			if interval == 0 {
				return anns, nil // end of stream
			}
			return nil, fmt.Errorf("wfdb: unexpected code-0 word with interval %d", interval)
		case codeSkip:
			if pos+5 >= len(data) {
				return nil, fmt.Errorf("wfdb: truncated SKIP interval")
			}
			hi := binary.LittleEndian.Uint16(data[pos+2:])
			lo := binary.LittleEndian.Uint16(data[pos+4:])
			pending += int(hi)<<16 | int(lo)
			pos += 4
		case codeNum, codeSub, codeChn:
			// Field modifiers carry no time; ignore.
		case codeAux:
			// interval = byte length of the aux string, padded to even.
			n := interval + interval%2
			if pos+2+n > len(data) {
				return nil, fmt.Errorf("wfdb: truncated AUX field")
			}
			pos += n
		default:
			t += interval + pending
			pending = 0
			anns = append(anns, Annotation{Sample: t, Code: code})
		}
	}
	return nil, fmt.Errorf("wfdb: annotation stream missing terminator")
}

// AnnotationsFromSignal converts the generator's ground-truth beat list
// into WFDB annotations at the given sample rate ratio (use 1 for the
// native 360 Hz indices).
func AnnotationsFromSignal(sig *ecg.Signal) []Annotation {
	var out []Annotation
	for _, a := range sig.Ann {
		code := CodeForBeat(a.Type)
		if code < 0 {
			continue
		}
		out = append(out, Annotation{Sample: a.Sample, Code: code})
	}
	return out
}
