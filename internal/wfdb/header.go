// Package wfdb reads and writes the subset of the PhysioNet WFDB format
// family that the MIT-BIH Arrhythmia Database uses: format-212 signal
// files (.dat), record headers (.hea) and MIT-format annotation files
// (.atr).
//
// The substitute database in internal/ecg generates signals in MIT-BIH's
// *logical* format (two channels, 360 Hz, 11-bit over 10 mV); this
// package supplies the *physical* format, so exported records can be
// inspected with standard WFDB tooling, and — for users who do have the
// real database — genuine MIT-BIH records can be fed through the
// pipeline in place of the synthetic ones.
package wfdb

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// SignalSpec describes one signal of a record, mirroring the .hea
// per-signal line.
type SignalSpec struct {
	// FileName of the signal data (all signals of a record share one
	// file in MIT-BIH).
	FileName string
	// Format is the storage format; only 212 is supported.
	Format int
	// Gain in ADC units per physical unit (MIT-BIH: 200 adu/mV).
	Gain float64
	// Baseline is the ADC value of physical zero.
	Baseline int
	// Units of the physical signal ("mV").
	Units string
	// ADCRes is the converter resolution in bits (11).
	ADCRes int
	// ADCZero is the mid-range ADC value (1024).
	ADCZero int
	// InitValue is the first sample (checksum aid).
	InitValue int
	// Checksum is the 16-bit signed sum of all samples.
	Checksum int16
	// Description labels the lead ("MLII", "V1").
	Description string
}

// Header is a parsed .hea file.
type Header struct {
	// Name is the record name ("100").
	Name string
	// Fs is the sampling frequency per signal.
	Fs float64
	// NumSamples per signal.
	NumSamples int
	// Signals holds one spec per channel.
	Signals []SignalSpec
}

// WriteHeader writes h as dir/name.hea.
func WriteHeader(dir string, h *Header) error {
	if len(h.Signals) == 0 {
		return fmt.Errorf("wfdb: header has no signals")
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s %d %g %d\n", h.Name, len(h.Signals), h.Fs, h.NumSamples)
	for _, s := range h.Signals {
		fmt.Fprintf(&b, "%s %d %g(%d)/%s %d %d %d %d 0 %s\n",
			s.FileName, s.Format, s.Gain, s.Baseline, s.Units,
			s.ADCRes, s.ADCZero, s.InitValue, s.Checksum, s.Description)
	}
	return os.WriteFile(filepath.Join(dir, h.Name+".hea"), []byte(b.String()), 0o644)
}

// ReadHeader parses dir/name.hea.
func ReadHeader(dir, name string) (*Header, error) {
	f, err := os.Open(filepath.Join(dir, name+".hea"))
	if err != nil {
		return nil, err
	}
	defer f.Close() //csecg:errok close of a read-only file
	sc := bufio.NewScanner(f)
	var h Header
	lineNo := 0
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if lineNo == 0 {
			if len(fields) < 4 {
				return nil, fmt.Errorf("wfdb: malformed record line %q", line)
			}
			h.Name = fields[0]
			nsig, err := strconv.Atoi(fields[1])
			if err != nil || nsig <= 0 {
				return nil, fmt.Errorf("wfdb: bad signal count %q", fields[1])
			}
			if h.Fs, err = strconv.ParseFloat(fields[2], 64); err != nil || h.Fs <= 0 {
				return nil, fmt.Errorf("wfdb: bad sampling frequency %q", fields[2])
			}
			if h.NumSamples, err = strconv.Atoi(fields[3]); err != nil || h.NumSamples < 0 {
				return nil, fmt.Errorf("wfdb: bad sample count %q", fields[3])
			}
			h.Signals = make([]SignalSpec, 0, nsig)
		} else {
			spec, err := parseSignalLine(fields)
			if err != nil {
				return nil, fmt.Errorf("wfdb: signal line %d: %w", lineNo, err)
			}
			h.Signals = append(h.Signals, spec)
		}
		lineNo++
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if lineNo == 0 {
		return nil, fmt.Errorf("wfdb: empty header")
	}
	if cap(h.Signals) != len(h.Signals) {
		return nil, fmt.Errorf("wfdb: header declares %d signals, found %d", cap(h.Signals), len(h.Signals))
	}
	return &h, nil
}

// parseSignalLine parses "file fmt gain(baseline)/units adcres adczero
// initval checksum blocksize description...".
func parseSignalLine(fields []string) (SignalSpec, error) {
	var s SignalSpec
	if len(fields) < 9 {
		return s, fmt.Errorf("too few fields (%d)", len(fields))
	}
	s.FileName = fields[0]
	var err error
	if s.Format, err = strconv.Atoi(fields[1]); err != nil {
		return s, fmt.Errorf("bad format %q", fields[1])
	}
	// gain spec: gain, gain/units, gain(baseline)/units
	gainSpec := fields[2]
	units := ""
	if i := strings.IndexByte(gainSpec, '/'); i >= 0 {
		units = gainSpec[i+1:]
		gainSpec = gainSpec[:i]
	}
	baseline := 0
	hasBaseline := false
	if i := strings.IndexByte(gainSpec, '('); i >= 0 {
		j := strings.IndexByte(gainSpec, ')')
		if j < i {
			return s, fmt.Errorf("bad gain spec %q", fields[2])
		}
		if baseline, err = strconv.Atoi(gainSpec[i+1 : j]); err != nil {
			return s, fmt.Errorf("bad baseline in %q", fields[2])
		}
		hasBaseline = true
		gainSpec = gainSpec[:i]
	}
	if s.Gain, err = strconv.ParseFloat(gainSpec, 64); err != nil {
		return s, fmt.Errorf("bad gain %q", fields[2])
	}
	s.Units = units
	if s.ADCRes, err = strconv.Atoi(fields[3]); err != nil {
		return s, fmt.Errorf("bad adc resolution %q", fields[3])
	}
	if s.ADCZero, err = strconv.Atoi(fields[4]); err != nil {
		return s, fmt.Errorf("bad adc zero %q", fields[4])
	}
	if !hasBaseline {
		baseline = s.ADCZero
	}
	s.Baseline = baseline
	if s.InitValue, err = strconv.Atoi(fields[5]); err != nil {
		return s, fmt.Errorf("bad initial value %q", fields[5])
	}
	cs, err := strconv.Atoi(fields[6])
	if err != nil {
		return s, fmt.Errorf("bad checksum %q", fields[6])
	}
	s.Checksum = int16(cs)
	// fields[7] is the block size (unused).
	s.Description = strings.Join(fields[8:], " ")
	return s, nil
}
