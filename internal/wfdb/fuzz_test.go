package wfdb

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzReadHeader hardens the .hea parser against malformed files.
func FuzzReadHeader(f *testing.F) {
	f.Add("100 2 360 650000\n100.dat 212 200 11 1024 995 -22131 0 MLII\n100.dat 212 200 11 1024 1011 20052 0 V5\n")
	f.Add("")
	f.Add("x\n")
	f.Add("100 2 360 650000\nf.dat 212 200(1024)/mV 11 1024 1 2 0 L\nf.dat 212 200(1024)/mV 11 1024 1 2 0 L\n")
	f.Fuzz(func(t *testing.T, content string) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "z.hea"), []byte(content), 0o644); err != nil {
			t.Skip()
		}
		h, err := ReadHeader(dir, "z")
		if err != nil {
			return
		}
		// Accepted headers must be internally consistent.
		if len(h.Signals) == 0 || h.Fs <= 0 || h.NumSamples < 0 {
			t.Fatalf("accepted inconsistent header: %+v", h)
		}
		// And must survive a write/read cycle.
		h.Name = "w"
		if err := WriteHeader(dir, h); err != nil {
			t.Fatalf("accepted header failed to write: %v", err)
		}
		if _, err := ReadHeader(dir, "w"); err != nil {
			t.Fatalf("rewritten header failed to parse: %v", err)
		}
	})
}

// FuzzReadAnnotations hardens the .atr parser.
func FuzzReadAnnotations(f *testing.F) {
	dir := f.TempDir()
	if err := WriteAnnotations(dir, "seed", []Annotation{
		{Sample: 10, Code: CodeNormal}, {Sample: 5000, Code: CodePVC},
	}); err != nil {
		f.Fatal(err)
	}
	seed, err := os.ReadFile(filepath.Join(dir, "seed.atr"))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add([]byte{})
	f.Add([]byte{0x00, 0x00})
	f.Fuzz(func(t *testing.T, data []byte) {
		d := t.TempDir()
		if err := os.WriteFile(filepath.Join(d, "z.atr"), data, 0o644); err != nil {
			t.Skip()
		}
		anns, err := ReadAnnotations(d, "z")
		if err != nil {
			return
		}
		// Accepted annotations are ascending with sane codes.
		prev := -1
		for _, a := range anns {
			if a.Sample < prev {
				t.Fatalf("descending annotations accepted: %+v", anns)
			}
			prev = a.Sample
			if a.Code < 1 || a.Code > 63 {
				t.Fatalf("out-of-range code %d accepted", a.Code)
			}
		}
	})
}
