package metrics

import "math"

// This file implements ground-truth-free reconstruction-quality
// scoring: a per-window PRDN estimate computed decoder-side from
// observables only, so a live monitor can flag degraded reconstruction
// without the original signal (which, by construction of compressed
// sensing, the coordinator never has).
//
// The estimator's core is a log-linear model fit against true PRDN on
// substitute MIT-BIH records across compression ratios 40-90%:
//
//	log PRDN ≈ a + b·log r + c·log(N/M) + d·[not converged]
//
// where r = ‖ΦΨα − y‖₂/‖y‖₂ is the normalized final FISTA residual.
// The two terms mirror the structure of CS error bounds: the residual
// measures how well the solve explained the measurements, and the
// undersampling ratio (N/M)^c prices the null-space error a
// measurement-domain residual cannot see. Escape-symbol rate and
// transport gap rate — the distribution-shift and loss observables —
// widen the estimate multiplicatively as safety margin; they are ~0 in
// the clean calibration runs, so they cannot disturb the calibrated
// ordering there.
//
// TestQualityEstimatorRankAgreement pins the calibration: Spearman rank
// agreement with true PRDN ≥ 0.9 per record across ≥ 4 CRs.

// Calibration constants of the quality estimator, least-squares fit in
// log space on records {100, 119, 205, 213, 228} × CR {40..90}
// (n = 480 windows, R² = 0.90). Changing any of these invalidates the
// pinned rank-agreement and threshold tests.
const (
	calIntercept      = 12.25 // a: exp(a) scales residual^b·(N/M)^c into PRDN percent
	calResidualExp    = 2.37  // b: PRDN grows super-linearly with the residual
	calUndersampleExp = 1.94  // c: null-space amplification with undersampling
	calNonConvergence = 0.08  // d: budget-capped solves run slightly worse

	// marginEscape and marginGap widen the estimate for the
	// distribution-shift observables (up to +50% each): escape-coded
	// difference symbols flag mote-side nonstationarity, transport gaps
	// flag windows decoded off a disturbed warm start.
	marginEscape = 0.5
	marginGap    = 0.5
)

// GoodPRDN is the paper's "good" reconstruction boundary: PRDN ≤ 9 %
// (output SNR ≥ 20.9 dB) is diagnostically acceptable. The monitor
// counts a window bad when the estimate crosses it.
const GoodPRDN = 9.0

// QualityObservables are the decoder-side inputs of the estimator —
// every field is available in a live session without ground truth.
type QualityObservables struct {
	// Residual is the normalized final data residual ‖ΦΨα − y‖₂/‖y‖₂
	// of the FISTA solve (core.DecodeResult.ResidualNorm).
	Residual float64
	// M and N are the measurement count and window length.
	M, N int
	// Converged reports whether the solver hit its tolerance inside the
	// real-time iteration budget.
	Converged bool
	// EscapeRate is the window's escape-coded difference-symbol
	// fraction, escapes/M (0 for key frames).
	EscapeRate float64
	// GapRate is the transport's recent loss fraction: abandoned or
	// undecodable windows over a sliding slot window.
	GapRate float64
}

// EstimatePRDN returns the ground-truth-free PRDN estimate in percent.
// Degenerate observables (no residual, no measurements) return 0 — the
// caller cannot claim anything about such a window.
func EstimatePRDN(o QualityObservables) float64 {
	if o.M <= 0 || o.N <= 0 || o.Residual <= 0 {
		return 0
	}
	logEst := calIntercept +
		calResidualExp*math.Log(o.Residual) +
		calUndersampleExp*math.Log(float64(o.N)/float64(o.M))
	if !o.Converged {
		logEst += calNonConvergence
	}
	est := math.Exp(logEst)
	est *= 1 + marginEscape*clamp01(o.EscapeRate) + marginGap*clamp01(o.GapRate)
	return est
}

// EstimateQuality maps the estimate onto the diagnostic bands of
// Classify; EstimateBad is the monitor's good/bad boundary.
func EstimateQuality(o QualityObservables) Quality {
	return Classify(EstimatePRDN(o))
}

// EstimateBad reports whether the window's estimated PRDN crosses the
// paper's 9 % diagnostic-quality boundary.
func EstimateBad(o QualityObservables) bool {
	return EstimatePRDN(o) > GoodPRDN
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// Spearman returns the Spearman rank-correlation coefficient of the two
// equal-length samples (NaN for fewer than two points or zero
// variance). Ties receive their average rank. The calibration tests use
// it to pin the estimator's monotone association with true PRDN.
func Spearman(x, y []float64) float64 {
	if len(x) != len(y) || len(x) < 2 {
		return math.NaN()
	}
	rx := ranks(x)
	ry := ranks(y)
	return pearson(rx, ry)
}

// ranks assigns 1-based average ranks.
func ranks(v []float64) []float64 {
	n := len(v)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	// Insertion sort by value: n is small (calibration tables), and the
	// package stays dependency-free.
	for i := 1; i < n; i++ {
		j := i
		for j > 0 && v[idx[j-1]] > v[idx[j]] {
			idx[j-1], idx[j] = idx[j], idx[j-1]
			j--
		}
	}
	r := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && v[idx[j+1]] == v[idx[i]] {
			j++
		}
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			r[idx[k]] = avg
		}
		i = j + 1
	}
	return r
}

func pearson(x, y []float64) float64 {
	n := float64(len(x))
	var mx, my float64
	for i := range x {
		mx += x[i]
		my += y[i]
	}
	mx /= n
	my /= n
	var sxy, sxx, syy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return math.NaN()
	}
	return sxy / math.Sqrt(sxx*syy)
}
