// Package metrics implements the evaluation metrics of Section III of
// the paper: compression ratio (CR), percentage root-mean-square
// difference (PRD) and the associated signal-to-noise ratio (SNR), plus
// the standard diagnostic-quality bands used in the ECG-compression
// literature to interpret PRD values.
package metrics

import (
	"fmt"
	"math"
)

// CR returns the compression ratio of Eq. (7):
// (b_orig − b_comp)/b_orig × 100. Both arguments are bit counts.
func CR(origBits, compBits int) float64 {
	if origBits <= 0 {
		return 0
	}
	return float64(origBits-compBits) / float64(origBits) * 100
}

// MeasurementCR is the CS-stage compression ratio 100·(1 − M/N): the
// fraction of Nyquist samples not acquired. The sweep experiments use it
// as the independent variable (the entropy-coding stage adds on top).
func MeasurementCR(m, n int) float64 {
	if n <= 0 {
		return 0
	}
	return 100 * (1 - float64(m)/float64(n))
}

// MForCR inverts MeasurementCR: the number of measurements that realizes
// a target CS compression ratio over length-n windows, clamped to [1, n].
func MForCR(cr float64, n int) int {
	m := int(math.Round(float64(n) * (1 - cr/100)))
	if m < 1 {
		m = 1
	}
	if m > n {
		m = n
	}
	return m
}

// PRD returns the percentage root-mean-square difference between the
// original x and reconstruction xr:  ‖x−x̃‖₂/‖x‖₂ × 100.
// It returns an error on length mismatch or an all-zero reference.
func PRD(x, xr []float64) (float64, error) {
	if len(x) != len(xr) {
		return 0, fmt.Errorf("metrics: length mismatch %d vs %d", len(x), len(xr))
	}
	var num, den float64
	for i := range x {
		d := x[i] - xr[i]
		num += d * d
		den += x[i] * x[i]
	}
	if den == 0 {
		return 0, fmt.Errorf("metrics: zero reference signal")
	}
	return math.Sqrt(num/den) * 100, nil
}

// PRDN is the mean-removed (normalized) PRD, insensitive to the ADC
// baseline offset: ‖x−x̃‖₂/‖x−mean(x)‖₂ × 100. MIT-BIH samples carry a
// 1024-count offset, which would otherwise flatter the plain PRD.
func PRDN(x, xr []float64) (float64, error) {
	if len(x) != len(xr) {
		return 0, fmt.Errorf("metrics: length mismatch %d vs %d", len(x), len(xr))
	}
	var mean float64
	for _, v := range x {
		mean += v
	}
	mean /= float64(len(x))
	var num, den float64
	for i := range x {
		d := x[i] - xr[i]
		num += d * d
		c := x[i] - mean
		den += c * c
	}
	if den == 0 {
		return 0, fmt.Errorf("metrics: constant reference signal")
	}
	return math.Sqrt(num/den) * 100, nil
}

// SNR converts a PRD percentage to the paper's output SNR in dB:
// SNR = −20·log10(0.01·PRD).
func SNR(prd float64) float64 {
	if prd <= 0 {
		return math.Inf(1)
	}
	return -20 * math.Log10(0.01*prd)
}

// PRDFromSNR inverts SNR.
func PRDFromSNR(snr float64) float64 {
	return 100 * math.Pow(10, -snr/20)
}

// RMSE returns the root-mean-square error between x and xr.
func RMSE(x, xr []float64) (float64, error) {
	if len(x) != len(xr) {
		return 0, fmt.Errorf("metrics: length mismatch %d vs %d", len(x), len(xr))
	}
	if len(x) == 0 {
		return 0, nil
	}
	var num float64
	for i := range x {
		d := x[i] - xr[i]
		num += d * d
	}
	return math.Sqrt(num / float64(len(x))), nil
}

// Quality is the diagnostic-quality interpretation of a PRDN value,
// following the Zigel et al. correspondence used throughout the ECG
// compression literature (the "VG"/"G" marks on the paper's Fig. 6).
type Quality int

// Quality bands.
const (
	VeryGood Quality = iota // PRDN < 2%: no visible distortion
	Good                    // 2% ≤ PRDN < 9%: diagnostically acceptable
	Degraded                // PRDN ≥ 9%: quality not guaranteed
)

// String names the band.
func (q Quality) String() string {
	switch q {
	case VeryGood:
		return "very good"
	case Good:
		return "good"
	default:
		return "degraded"
	}
}

// Classify maps a PRDN percentage to its quality band.
func Classify(prdn float64) Quality {
	switch {
	case prdn < 2:
		return VeryGood
	case prdn < 9:
		return Good
	default:
		return Degraded
	}
}
