package metrics_test

import (
	"math"
	"testing"

	"csecg"
	"csecg/internal/metrics"
)

// TestSpearman pins the rank-correlation helper on known cases.
func TestSpearman(t *testing.T) {
	cases := []struct {
		x, y []float64
		want float64
	}{
		{[]float64{1, 2, 3, 4}, []float64{10, 20, 30, 40}, 1},
		{[]float64{1, 2, 3, 4}, []float64{40, 30, 20, 10}, -1},
		{[]float64{1, 2, 3, 4}, []float64{100, 4, 900, 16}, 0},  // ranks 1,2,3,4 vs 3,1,4,2
		{[]float64{1, 2, 3, 4}, []float64{4, 100, 16, 900}, 0.8}, // ranks 1,2,3,4 vs 1,3,2,4
	}
	for _, c := range cases {
		if got := metrics.Spearman(c.x, c.y); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Spearman(%v, %v) = %v, want %v", c.x, c.y, got, c.want)
		}
	}
	if !math.IsNaN(metrics.Spearman([]float64{1}, []float64{2})) {
		t.Error("Spearman of a single point should be NaN")
	}
	// Ties: constant series has zero rank variance.
	if !math.IsNaN(metrics.Spearman([]float64{5, 5, 5}, []float64{1, 2, 3})) {
		t.Error("Spearman of a constant series should be NaN")
	}
}

// estimateRow is one calibrated window: true PRDN against observables.
type estimateRow struct {
	est, prdn float64
}

// gatherRows runs the clean pipeline over one record across the CR
// sweep, returning (estimate, true PRDN) pairs per window.
func gatherRows(t *testing.T, recordID string, crs []float64, seconds float64) []estimateRow {
	t.Helper()
	rec, err := csecg.RecordByID(recordID)
	if err != nil {
		t.Fatal(err)
	}
	adc, err := rec.Channel256(seconds, 0)
	if err != nil {
		t.Fatal(err)
	}
	var rows []estimateRow
	for _, cr := range crs {
		p := csecg.Params{Seed: 0x601, M: csecg.MForCR(cr, csecg.WindowSize)}
		enc, err := csecg.NewEncoder(p)
		if err != nil {
			t.Fatal(err)
		}
		dec, err := csecg.NewDecoder32(p)
		if err != nil {
			t.Fatal(err)
		}
		for o := 0; o+csecg.WindowSize <= len(adc); o += csecg.WindowSize {
			win := adc[o : o+csecg.WindowSize]
			pkt, err := enc.EncodeWindow(win)
			if err != nil {
				t.Fatal(err)
			}
			out, err := dec.DecodePacket(pkt)
			if err != nil {
				t.Fatal(err)
			}
			orig := make([]float64, len(win))
			reco := make([]float64, len(win))
			for i := range win {
				orig[i] = float64(win[i])
				reco[i] = float64(out.Samples[i])
			}
			prdn, err := csecg.PRDN(orig, reco)
			if err != nil {
				t.Fatal(err)
			}
			est := metrics.EstimatePRDN(metrics.QualityObservables{
				Residual:   out.ResidualNorm,
				M:          p.M,
				N:          csecg.WindowSize,
				Converged:  out.Converged,
				EscapeRate: float64(out.EscapeCount) / float64(p.M),
			})
			rows = append(rows, estimateRow{est: est, prdn: prdn})
		}
	}
	return rows
}

// TestQualityEstimatorRankAgreement is the calibration pin of the
// ground-truth-free quality estimator: on ≥ 2 MIT-BIH substitute
// records across ≥ 4 compression ratios, the estimate's ordering must
// agree with true PRDN (Spearman ≥ 0.9) and the good/bad decision at
// the paper's 9 % boundary must agree on ≥ 85 % of windows.
func TestQualityEstimatorRankAgreement(t *testing.T) {
	if testing.Short() {
		t.Skip("FISTA-heavy calibration sweep")
	}
	crs := []float64{40, 50, 60, 70, 80}
	for _, recordID := range []string{"100", "213"} {
		rows := gatherRows(t, recordID, crs, 16)
		if len(rows) < 4*len(crs) {
			t.Fatalf("record %s: only %d calibration windows", recordID, len(rows))
		}
		ests := make([]float64, len(rows))
		prdns := make([]float64, len(rows))
		agree := 0
		for i, r := range rows {
			ests[i], prdns[i] = r.est, r.prdn
			if (r.est > metrics.GoodPRDN) == (r.prdn > metrics.GoodPRDN) {
				agree++
			}
		}
		rho := metrics.Spearman(ests, prdns)
		t.Logf("record %s: %d windows, Spearman %.3f, boundary agreement %d/%d",
			recordID, len(rows), rho, agree, len(rows))
		if rho < 0.9 {
			t.Errorf("record %s: Spearman %.3f < 0.9 — estimator ordering disagrees with true PRDN", recordID, rho)
		}
		if frac := float64(agree) / float64(len(rows)); frac < 0.85 {
			t.Errorf("record %s: good/bad boundary agreement %.2f < 0.85", recordID, frac)
		}
	}
}

// TestEstimatePRDNProperties pins the estimator's monotone structure
// and degenerate-input behaviour without running the pipeline.
func TestEstimatePRDNProperties(t *testing.T) {
	base := metrics.QualityObservables{Residual: 0.008, M: 256, N: 512, Converged: true}
	e0 := metrics.EstimatePRDN(base)
	if e0 <= 0 {
		t.Fatalf("estimate %v, want > 0", e0)
	}
	worseResidual := base
	worseResidual.Residual = 0.016
	if metrics.EstimatePRDN(worseResidual) <= e0 {
		t.Error("estimate must grow with the residual")
	}
	fewerMeasurements := base
	fewerMeasurements.M = 128
	if metrics.EstimatePRDN(fewerMeasurements) <= e0 {
		t.Error("estimate must grow with undersampling")
	}
	capped := base
	capped.Converged = false
	if metrics.EstimatePRDN(capped) <= e0 {
		t.Error("estimate must grow when the solver hit its budget")
	}
	shifted := base
	shifted.EscapeRate = 0.5
	if metrics.EstimatePRDN(shifted) <= e0 {
		t.Error("estimate must grow with the escape rate")
	}
	lossy := base
	lossy.GapRate = 0.5
	if metrics.EstimatePRDN(lossy) <= e0 {
		t.Error("estimate must grow with the gap rate")
	}
	for _, degenerate := range []metrics.QualityObservables{
		{}, {Residual: 0.01, N: 512}, {Residual: 0.01, M: 256}, {M: 256, N: 512},
	} {
		if got := metrics.EstimatePRDN(degenerate); got != 0 {
			t.Errorf("degenerate observables %+v: estimate %v, want 0", degenerate, got)
		}
	}
	// A typical CR-50 window sits in the paper's "good" band; a
	// CR-90-style window must cross the 9 % boundary.
	if metrics.EstimateBad(base) {
		t.Errorf("CR-50-class window misclassified bad (est %.2f)", e0)
	}
	deep := metrics.QualityObservables{Residual: 0.012, M: 51, N: 512, Converged: false}
	if !metrics.EstimateBad(deep) {
		t.Errorf("CR-90-class window misclassified good (est %.2f)", metrics.EstimatePRDN(deep))
	}
}
