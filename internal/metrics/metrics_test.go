package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCR(t *testing.T) {
	if got := CR(1000, 500); got != 50 {
		t.Errorf("CR = %v, want 50", got)
	}
	if got := CR(1000, 1000); got != 0 {
		t.Errorf("CR = %v, want 0", got)
	}
	if got := CR(0, 10); got != 0 {
		t.Errorf("CR with zero orig = %v, want 0", got)
	}
	if got := CR(1000, 1100); got != -10 {
		t.Errorf("expansion CR = %v, want -10", got)
	}
}

func TestMeasurementCRAndInverse(t *testing.T) {
	if got := MeasurementCR(256, 512); got != 50 {
		t.Errorf("MeasurementCR = %v, want 50", got)
	}
	if got := MForCR(50, 512); got != 256 {
		t.Errorf("MForCR(50) = %v, want 256", got)
	}
	if got := MForCR(100, 512); got != 1 {
		t.Errorf("MForCR(100) = %v, want clamp 1", got)
	}
	if got := MForCR(0, 512); got != 512 {
		t.Errorf("MForCR(0) = %v, want 512", got)
	}
	// Round trip within rounding for the sweep range.
	for cr := 30.0; cr <= 90; cr += 2.5 {
		m := MForCR(cr, 512)
		if got := MeasurementCR(m, 512); math.Abs(got-cr) > 0.1 {
			t.Errorf("round trip CR %v -> M %d -> %v", cr, m, got)
		}
	}
}

func TestPRDKnown(t *testing.T) {
	x := []float64{3, 4}
	xr := []float64{3, 4}
	got, err := PRD(x, xr)
	if err != nil || got != 0 {
		t.Errorf("identical PRD = %v, %v", got, err)
	}
	// Error vector norm 5 over reference norm 5 → 100%.
	got, err = PRD([]float64{3, 4}, []float64{0, 0})
	if err != nil || math.Abs(got-100) > 1e-12 {
		t.Errorf("PRD = %v, want 100", got)
	}
}

func TestPRDErrors(t *testing.T) {
	if _, err := PRD([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := PRD([]float64{0, 0}, []float64{1, 1}); err == nil {
		t.Error("zero reference accepted")
	}
}

func TestPRDNRemovesOffset(t *testing.T) {
	// A large DC offset must not flatter PRDN as it does PRD.
	n := 100
	x := make([]float64, n)
	xr := make([]float64, n)
	for i := range x {
		x[i] = 1024 + math.Sin(float64(i)*0.3)
		xr[i] = 1024 + math.Sin(float64(i)*0.3)*0.9
	}
	prd, err := PRD(x, xr)
	if err != nil {
		t.Fatal(err)
	}
	prdn, err := PRDN(x, xr)
	if err != nil {
		t.Fatal(err)
	}
	if prdn < prd*10 {
		t.Errorf("PRDN %v should be much larger than offset-flattered PRD %v", prdn, prd)
	}
	if math.Abs(prdn-10) > 0.5 {
		t.Errorf("PRDN = %v, want ≈10 (10%% amplitude error)", prdn)
	}
}

func TestPRDNConstantSignal(t *testing.T) {
	if _, err := PRDN([]float64{5, 5, 5}, []float64{5, 5, 4}); err == nil {
		t.Error("constant reference accepted")
	}
}

func TestSNRRoundTrip(t *testing.T) {
	// PRD 1% → 40 dB; PRD 10% → 20 dB (the paper's formula).
	if got := SNR(1); math.Abs(got-40) > 1e-12 {
		t.Errorf("SNR(1%%) = %v, want 40", got)
	}
	if got := SNR(10); math.Abs(got-20) > 1e-12 {
		t.Errorf("SNR(10%%) = %v, want 20", got)
	}
	if !math.IsInf(SNR(0), 1) {
		t.Error("SNR(0) should be +Inf")
	}
	f := func(raw float64) bool {
		prd := math.Abs(math.Mod(raw, 100)) + 0.001
		return math.Abs(PRDFromSNR(SNR(prd))-prd) < 1e-9*prd
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRMSE(t *testing.T) {
	got, err := RMSE([]float64{0, 0}, []float64{3, 4})
	if err != nil {
		t.Fatal(err)
	}
	want := math.Sqrt(12.5)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("RMSE = %v, want %v", got, want)
	}
	if _, err := RMSE([]float64{1}, []float64{}); err == nil {
		t.Error("length mismatch accepted")
	}
	if got, err := RMSE(nil, nil); err != nil || got != 0 {
		t.Errorf("empty RMSE = %v, %v", got, err)
	}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		prdn float64
		want Quality
	}{
		{0.5, VeryGood}, {1.99, VeryGood}, {2, Good}, {8.99, Good}, {9, Degraded}, {50, Degraded},
	}
	for _, c := range cases {
		if got := Classify(c.prdn); got != c.want {
			t.Errorf("Classify(%v) = %v, want %v", c.prdn, got, c.want)
		}
	}
	if VeryGood.String() != "very good" || Good.String() != "good" || Degraded.String() != "degraded" {
		t.Error("Quality.String() labels wrong")
	}
}

func TestPRDScaleInvariance(t *testing.T) {
	// PRD is scale-invariant: scaling both signals leaves it unchanged.
	f := func(seed int64) bool {
		s := uint64(seed) | 1
		x := make([]float64, 64)
		xr := make([]float64, 64)
		for i := range x {
			s ^= s << 13
			s ^= s >> 7
			s ^= s << 17
			x[i] = float64(int64(s%2001)-1000) / 100
			xr[i] = x[i] + float64(int64((s>>20)%101)-50)/1000
		}
		a, err1 := PRD(x, xr)
		for i := range x {
			x[i] *= 7.5
			xr[i] *= 7.5
		}
		b, err2 := PRD(x, xr)
		if err1 != nil || err2 != nil {
			return true // degenerate draw (zero signal); skip
		}
		return math.Abs(a-b) < 1e-9*(1+a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
