package fixedpoint

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFromFloatRoundTrip(t *testing.T) {
	for _, f := range []float64{0, 0.5, -0.5, 0.25, -1, 0.999969482421875} {
		q := FromFloat(f)
		if got := q.Float(); math.Abs(got-f) > 1.0/(1<<16) {
			t.Errorf("FromFloat(%v).Float() = %v", f, got)
		}
	}
}

func TestFromFloatSaturates(t *testing.T) {
	if FromFloat(2.0) != MaxQ15 {
		t.Error("FromFloat(2) did not saturate to MaxQ15")
	}
	if FromFloat(-2.0) != MinQ15 {
		t.Error("FromFloat(-2) did not saturate to MinQ15")
	}
	if FromFloat(1.0) != MaxQ15 {
		t.Error("FromFloat(1) should saturate to MaxQ15 (1.0 unrepresentable)")
	}
}

func TestSatAddSaturates(t *testing.T) {
	if SatAdd(MaxQ15, 1) != MaxQ15 {
		t.Error("SatAdd overflow did not saturate high")
	}
	if SatAdd(MinQ15, -1) != MinQ15 {
		t.Error("SatAdd underflow did not saturate low")
	}
	if SatAdd(1000, 234) != 1234 {
		t.Error("SatAdd basic arithmetic wrong")
	}
}

func TestSatSub(t *testing.T) {
	if SatSub(MinQ15, 1) != MinQ15 {
		t.Error("SatSub underflow did not saturate")
	}
	if SatSub(MaxQ15, -1) != MaxQ15 {
		t.Error("SatSub overflow did not saturate")
	}
	if SatSub(1000, 234) != 766 {
		t.Error("SatSub basic arithmetic wrong")
	}
}

func TestSatAddMatchesFloatProperty(t *testing.T) {
	f := func(a, b int16) bool {
		got := SatAdd(Q15(a), Q15(b)).Float()
		want := Q15(a).Float() + Q15(b).Float()
		if want > MaxQ15.Float() {
			want = MaxQ15.Float()
		}
		if want < -1 {
			want = -1
		}
		return math.Abs(got-want) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMulAgainstFloat(t *testing.T) {
	f := func(a, b int16) bool {
		got := Mul(Q15(a), Q15(b)).Float()
		want := Q15(a).Float() * Q15(b).Float()
		// One rounding step of Q15 precision plus saturation at +1.
		if want > MaxQ15.Float() {
			want = MaxQ15.Float()
		}
		return math.Abs(got-want) <= 1.0/(1<<15)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMulEdge(t *testing.T) {
	// −1 × −1 = +1 is not representable; must saturate, not wrap.
	if got := Mul(MinQ15, MinQ15); got != MaxQ15 {
		t.Errorf("MinQ15*MinQ15 = %d, want MaxQ15", got)
	}
	if got := Mul(MaxQ15, 0); got != 0 {
		t.Errorf("MaxQ15*0 = %d, want 0", got)
	}
}

func TestMACAccumulates(t *testing.T) {
	var acc Q31
	// 0.5 * 0.5 accumulated 3 times = 0.75.
	h := FromFloat(0.5)
	for i := 0; i < 3; i++ {
		acc = MAC(acc, h, h)
	}
	if got := acc.NarrowQ15().Float(); math.Abs(got-0.75) > 1e-4 {
		t.Errorf("3×(0.5·0.5) = %v, want 0.75", got)
	}
}

func TestMACSaturates(t *testing.T) {
	acc := MaxQ31
	if got := MAC(acc, MaxQ15, MaxQ15); got != MaxQ31 {
		t.Errorf("MAC overflow = %d, want saturation", got)
	}
	acc = MinQ31
	if got := MAC(acc, MaxQ15, MinQ15); got != MinQ31 {
		t.Errorf("MAC underflow = %d, want saturation", got)
	}
}

func TestDotQ15(t *testing.T) {
	a := []Q15{FromFloat(0.5), FromFloat(-0.25), FromFloat(0.125)}
	b := []Q15{FromFloat(0.5), FromFloat(0.5), FromFloat(-0.5)}
	want := 0.5*0.5 - 0.25*0.5 - 0.125*0.5
	if got := DotQ15(a, b).Float(); math.Abs(got-want) > 1e-4 {
		t.Errorf("DotQ15 = %v, want %v", got, want)
	}
}

func TestDotQ15PanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("DotQ15 length mismatch did not panic")
		}
	}()
	DotQ15(make([]Q15, 2), make([]Q15, 3))
}

func TestSumInt16Sat(t *testing.T) {
	if got := SumInt16Sat([]int16{1, 2, 3, -4}); got != 2 {
		t.Errorf("SumInt16Sat = %d, want 2", got)
	}
	// 2^16 copies of MaxInt16 exceeds int32: must saturate.
	big := make([]int16, 1<<16+10)
	for i := range big {
		big[i] = 1<<15 - 1
	}
	if got := SumInt16Sat(big); got != int32(MaxQ31) {
		t.Errorf("SumInt16Sat overflow = %d, want MaxQ31", got)
	}
}

func TestClampInt16(t *testing.T) {
	cases := []struct {
		in   int32
		want int16
	}{
		{0, 0}, {32767, 32767}, {32768, 32767}, {-32768, -32768},
		{-32769, -32768}, {123456, 32767}, {-123456, -32768},
	}
	for _, c := range cases {
		if got := ClampInt16(c.in); got != c.want {
			t.Errorf("ClampInt16(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestQ31Float(t *testing.T) {
	if got := MaxQ31.Float(); math.Abs(got-1) > 1e-9 {
		t.Errorf("MaxQ31.Float() = %v", got)
	}
	if got := MinQ31.Float(); got != -1 {
		t.Errorf("MinQ31.Float() = %v", got)
	}
}

func BenchmarkDotQ15(b *testing.B) {
	a := make([]Q15, 512)
	c := make([]Q15, 512)
	for i := range a {
		a[i] = Q15(i % 100)
		c[i] = Q15(-i % 100)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DotQ15(a, c)
	}
}
