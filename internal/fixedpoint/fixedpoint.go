// Package fixedpoint emulates the integer arithmetic available on the
// MSP430-class encoder.
//
// The MSP430F1611 has no floating-point unit; the paper's encoder works
// entirely in 16-bit integer arithmetic (with a 16×16→32 hardware
// multiplier) and defers every real-valued scale factor — notably the
// 1/√d normalization of the sparse binary sensing matrix — to the
// decoder. This package provides the Q15/Q31 formats and saturating
// operations used by the mote model, so the encoder port in
// internal/mote performs exactly the operations (and overflows exactly
// where) a real MSP430 build would.
package fixedpoint

// Q15 is a signed fixed-point value with 15 fractional bits, covering
// [−1, 1−2⁻¹⁵]. It is the natural format of the MSP430 hardware
// multiplier's fractional mode.
type Q15 int16

// Q31 is a signed fixed-point value with 31 fractional bits, used for
// accumulators.
type Q31 int32

// Fixed-point limits.
const (
	MaxQ15 = Q15(1<<15 - 1)
	MinQ15 = Q15(-1 << 15)
	MaxQ31 = Q31(1<<31 - 1)
	MinQ31 = Q31(-1 << 31)
)

// FromFloat converts f (expected in [−1, 1)) to Q15, saturating on
// overflow and rounding to nearest. It is the host-side entry point for
// preparing fixed-point constants; the firmware only ever sees the Q15.
//
//csecg:host float→Q15 conversion happens when building tables, off-device
func FromFloat(f float64) Q15 {
	v := f * (1 << 15)
	if v >= 0 {
		v += 0.5
	} else {
		v -= 0.5
	}
	switch {
	case v > float64(MaxQ15):
		return MaxQ15
	case v < float64(MinQ15):
		return MinQ15
	}
	return Q15(int32(v))
}

// Float returns the real value represented by q.
//
//csecg:host decoder/test-side view of a Q15
func (q Q15) Float() float64 { return float64(q) / (1 << 15) }

// Float returns the real value represented by q.
//
//csecg:host decoder/test-side view of a Q31
func (q Q31) Float() float64 { return float64(q) / (1 << 31) }

// SatAdd returns a+b with saturation at the Q15 limits, mirroring the
// MSP430 saturating add sequence the encoder uses for the difference
// signal.
func SatAdd(a, b Q15) Q15 {
	s := int32(a) + int32(b)
	return satQ15(s)
}

// SatSub returns a−b with saturation.
func SatSub(a, b Q15) Q15 {
	return satQ15(int32(a) - int32(b))
}

func satQ15(s int32) Q15 {
	switch {
	case s > int32(MaxQ15):
		return MaxQ15
	case s < int32(MinQ15):
		return MinQ15
	}
	return Q15(s)
}

// Mul returns the Q15 product a×b using the 16×16→32 hardware multiplier
// semantics: full 32-bit product, round, then arithmetic shift right 15.
// The single non-representable case, MinQ15×MinQ15, saturates.
func Mul(a, b Q15) Q15 {
	p := int32(a) * int32(b)
	p += 1 << 14 // round to nearest
	return satQ15(p >> 15)
}

// MAC accumulates a×b into a Q31 accumulator without intermediate
// rounding, exactly as the MSP430's MACS instruction chain does. The
// caller narrows once at the end with (Q31).NarrowQ15.
func MAC(acc Q31, a, b Q15) Q31 {
	p := int64(a) * int64(b) // Q30
	s := int64(acc) + p
	switch {
	case s > int64(MaxQ31):
		return MaxQ31
	case s < int64(MinQ31):
		return MinQ31
	}
	return Q31(s)
}

// NarrowQ15 converts a Q31 accumulator holding a Q30 sum-of-products back
// to Q15 with rounding and saturation.
func (q Q31) NarrowQ15() Q15 {
	s := (int64(q) + 1<<14) >> 15
	switch {
	case s > int64(MaxQ15):
		return MaxQ15
	case s < int64(MinQ15):
		return MinQ15
	}
	return Q15(s)
}

// DotQ15 computes the Q15 dot product of a and b through a Q31
// accumulator. It panics if the lengths differ.
func DotQ15(a, b []Q15) Q15 {
	if len(a) != len(b) {
		panic("fixedpoint: DotQ15 length mismatch")
	}
	var acc Q31
	for i := range a {
		acc = MAC(acc, a[i], b[i])
	}
	return acc.NarrowQ15()
}

// SumInt16Sat sums 16-bit integers into a saturating 32-bit accumulator,
// the operation at the heart of the sparse binary measurement (each
// measurement is a sum of d raw samples).
func SumInt16Sat(xs []int16) int32 {
	var acc int64
	for _, v := range xs {
		acc += int64(v)
	}
	switch {
	case acc > int64(MaxQ31):
		return int32(MaxQ31)
	case acc < int64(MinQ31):
		return int32(MinQ31)
	}
	return int32(acc)
}

// ClampInt16 narrows v to int16 with saturation.
func ClampInt16(v int32) int16 {
	switch {
	case v > 1<<15-1:
		return 1<<15 - 1
	case v < -1<<15:
		return -1 << 15
	}
	return int16(v)
}
