package adaptive

import (
	"testing"

	"csecg/internal/core"
	"csecg/internal/ecg"
	"csecg/internal/metrics"
)

func windows(t testing.TB, id string, seconds float64) [][]int16 {
	t.Helper()
	rec, err := ecg.RecordByID(id)
	if err != nil {
		t.Fatal(err)
	}
	samples, err := rec.Channel256(seconds, 0)
	if err != nil {
		t.Fatal(err)
	}
	var out [][]int16
	for o := 0; o+core.WindowSize <= len(samples); o += core.WindowSize {
		out = append(out, samples[o:o+core.WindowSize])
	}
	return out
}

func TestActivityProxy(t *testing.T) {
	if Activity(nil) != 0 || Activity([]int16{5}) != 0 {
		t.Error("degenerate activity not zero")
	}
	flat := make([]int16, 100)
	if Activity(flat) != 0 {
		t.Error("flat signal has nonzero activity")
	}
	// A spiky signal has higher activity than a slow ramp.
	ramp := make([]int16, 100)
	spiky := make([]int16, 100)
	for i := range ramp {
		ramp[i] = int16(i)
		if i%10 == 0 {
			spiky[i] = 500
		}
	}
	if Activity(spiky) <= Activity(ramp) {
		t.Error("spiky signal not more active than ramp")
	}
}

func TestFrameMarshalRoundTrip(t *testing.T) {
	f := &Frame{Level: 2, Packet: &core.Packet{Seq: 7, Kind: core.KindKey, Payload: []byte{1, 2, 3}}}
	blob, err := f.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, n, err := UnmarshalFrame(blob)
	if err != nil || n != len(blob) {
		t.Fatalf("unmarshal: %v (n=%d)", err, n)
	}
	if got.Level != 2 || got.Packet.Seq != 7 {
		t.Errorf("round trip mismatch: %+v", got)
	}
	if _, _, err := UnmarshalFrame(nil); err == nil {
		t.Error("empty frame accepted")
	}
}

func TestNewEncoderValidation(t *testing.T) {
	if _, err := NewEncoder(core.Params{Seed: 1}, make([]Level, 300)); err == nil {
		t.Error("300 levels accepted")
	}
	enc, err := NewEncoder(core.Params{Seed: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(enc.Levels()) != 3 {
		t.Errorf("default ladder has %d levels", len(enc.Levels()))
	}
	if enc.CurrentLevel() != 2 {
		t.Errorf("initial level %d, want conservative fallback", enc.CurrentLevel())
	}
}

func TestQuietSignalClimbsToAggressiveLevel(t *testing.T) {
	enc, err := NewEncoder(core.Params{Seed: 5}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Record 122 is the cleanest normal rhythm in the ladder.
	for _, win := range windows(t, "122", 20) {
		if _, err := enc.EncodeWindow(win); err != nil {
			t.Fatal(err)
		}
	}
	if got := enc.Levels()[enc.CurrentLevel()].CR; got < 50 {
		t.Errorf("quiet record settled at CR %.0f, want ≥ 50", got)
	}
}

func TestActiveSignalStaysConservative(t *testing.T) {
	enc, err := NewEncoder(core.Params{Seed: 5}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Record 203: very noisy with frequent ectopy.
	for _, win := range windows(t, "203", 20) {
		if _, err := enc.EncodeWindow(win); err != nil {
			t.Fatal(err)
		}
	}
	if got := enc.Levels()[enc.CurrentLevel()].CR; got > 50 {
		t.Errorf("active record settled at CR %.0f, want ≤ 50", got)
	}
}

func TestHysteresisPreventsThrashing(t *testing.T) {
	enc, err := NewEncoder(core.Params{Seed: 5}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Alternate activity right around the first threshold (4.8): with
	// 15% hysteresis the controller must not switch every window.
	mk := func(delta int16) []int16 {
		w := make([]int16, core.WindowSize)
		for i := range w {
			if i%2 == 0 {
				w[i] = 1024 + delta
			} else {
				w[i] = 1024
			}
		}
		return w
	}
	switches := 0
	prev := enc.CurrentLevel()
	for i := 0; i < 40; i++ {
		delta := int16(4)
		if i%2 == 1 {
			delta = 5
		}
		if _, err := enc.EncodeWindow(mk(delta)); err != nil {
			t.Fatal(err)
		}
		if enc.CurrentLevel() != prev {
			switches++
			prev = enc.CurrentLevel()
		}
	}
	if switches > 3 {
		t.Errorf("controller switched %d times on boundary activity", switches)
	}
}

func TestEndToEndAcrossLevelSwitches(t *testing.T) {
	base := core.Params{Seed: 9}
	enc, err := NewEncoder(base, nil)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := NewDecoder[float64](base, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range dec.decoders {
		dec.decoders[i].SolverOptions.MaxIter = 150
	}
	// Alternate quiet and spiky synthetic windows to force switches,
	// checking every frame decodes.
	quiet := make([]int16, core.WindowSize)
	active := make([]int16, core.WindowSize)
	for i := range quiet {
		quiet[i] = 1024 + int16(i%3)
		if i%8 == 0 {
			active[i] = 1500
		} else {
			active[i] = 1024
		}
	}
	sawSwitch := false
	prevLevel := -1
	for i := 0; i < 12; i++ {
		win := quiet
		if (i/3)%2 == 1 {
			win = active
		}
		f, err := enc.EncodeWindow(win)
		if err != nil {
			t.Fatal(err)
		}
		blob, err := f.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		rx, _, err := UnmarshalFrame(blob)
		if err != nil {
			t.Fatal(err)
		}
		if prevLevel >= 0 && int(rx.Level) != prevLevel {
			sawSwitch = true
			if rx.Packet.Kind != core.KindKey {
				t.Fatalf("frame after level switch is %v, want key", rx.Packet.Kind)
			}
		}
		prevLevel = int(rx.Level)
		if _, err := dec.DecodeFrame(rx); err != nil {
			t.Fatalf("window %d (level %d): %v", i, rx.Level, err)
		}
	}
	if !sawSwitch {
		t.Error("test never exercised a level switch")
	}
}

func TestDecodeFrameValidation(t *testing.T) {
	dec, err := NewDecoder[float64](core.Params{Seed: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	f := &Frame{Level: 9, Packet: &core.Packet{Kind: core.KindKey}}
	if _, err := dec.DecodeFrame(f); err == nil {
		t.Error("out-of-ladder level accepted")
	}
}

func TestAdaptiveBeatsFixedOnMixedSignal(t *testing.T) {
	// Over a session with both quiet and active records, the adaptive
	// ladder should spend less wire than fixed CR 30 while keeping
	// reconstruction closer to CR 30 quality than CR 70 quality.
	base := core.Params{Seed: 13}
	enc, err := NewEncoder(base, nil)
	if err != nil {
		t.Fatal(err)
	}
	var adaptiveBits, rawBits int
	wins := append(windows(t, "122", 16), windows(t, "203", 16)...)
	for _, win := range wins {
		f, err := enc.EncodeWindow(win)
		if err != nil {
			t.Fatal(err)
		}
		adaptiveBits += (f.Packet.WireSize() + 1) * 8
		rawBits += core.WindowSize * 12
	}
	fixed30, err := core.NewEncoder(core.Params{Seed: 13, M: metrics.MForCR(30, core.WindowSize)})
	if err != nil {
		t.Fatal(err)
	}
	var fixedBits int
	for _, win := range wins {
		pkt, err := fixed30.EncodeWindow(win)
		if err != nil {
			t.Fatal(err)
		}
		fixedBits += pkt.WireSize() * 8
	}
	crAdaptive := metrics.CR(rawBits, adaptiveBits)
	crFixed := metrics.CR(rawBits, fixedBits)
	if crAdaptive <= crFixed {
		t.Errorf("adaptive CR %.1f%% not better than fixed-CR30 %.1f%% on mixed signal", crAdaptive, crFixed)
	}
}
