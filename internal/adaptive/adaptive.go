// Package adaptive adds closed-loop rate control on top of the fixed-CR
// pipeline — a natural extension of the paper's system (its operating
// point is chosen offline at CR = 50 for all signals).
//
// The mote cannot see the decoder's reconstruction error, so the
// controller uses an encoder-side *activity proxy*: the mean absolute
// first difference of the window, which grows with heart rate, ectopy
// and motion artifact. Quiet signal → aggressive compression; active
// signal → conservative compression. Level switches happen only at
// key-frame boundaries (a switch forces one), so the decoder can always
// resynchronize, and hysteresis keeps the controller from thrashing
// between levels on boundary activity.
//
// The wire format wraps each pipeline packet in a one-byte level header;
// both sides build one codec per level from the shared parameter list.
package adaptive

import (
	"fmt"

	"csecg/internal/core"
	"csecg/internal/linalg"
	"csecg/internal/metrics"
)

// Level is one operating point of the controller.
type Level struct {
	// CR is the CS compression ratio of this level.
	CR float64
	// ActivityBelow selects this level while the activity proxy stays
	// under the threshold (the last level is the fallback and ignores
	// it). Units: mean |Δsample| in ADC counts.
	ActivityBelow float64
}

// DefaultLevels returns the stock three-point ladder: aggressive for
// quiet signal, the paper's CR 50 for routine signal, conservative for
// active signal. Thresholds are calibrated on the substitute database,
// where clean sinus records idle near activity 4 and noisy ectopic
// records run 5-7.
func DefaultLevels() []Level {
	return []Level{
		{CR: 70, ActivityBelow: 4.8},
		{CR: 50, ActivityBelow: 6.0},
		{CR: 30, ActivityBelow: 0}, // fallback
	}
}

// Hysteresis is the fractional margin the activity must clear before
// the controller switches away from the current level.
const Hysteresis = 0.15

// Frame is one adaptive-stream unit: the level index plus the pipeline
// packet.
type Frame struct {
	// Level indexes the shared level ladder.
	Level uint8
	// Packet is the wrapped pipeline packet.
	Packet *core.Packet
}

// Marshal serializes the frame (level byte + packet wire format).
func (f *Frame) Marshal() ([]byte, error) {
	pkt, err := f.Packet.Marshal()
	if err != nil {
		return nil, err
	}
	out := make([]byte, 1+len(pkt))
	out[0] = f.Level
	copy(out[1:], pkt)
	return out, nil
}

// UnmarshalFrame parses one frame, returning it and the bytes consumed.
func UnmarshalFrame(data []byte) (*Frame, int, error) {
	if len(data) < 1 {
		return nil, 0, fmt.Errorf("adaptive: empty frame")
	}
	pkt, n, err := core.UnmarshalPacket(data[1:])
	if err != nil {
		return nil, 0, err
	}
	return &Frame{Level: data[0], Packet: pkt}, 1 + n, nil
}

// Encoder is the adaptive mote-side compressor.
type Encoder struct {
	levels   []Level
	encoders []*core.Encoder
	current  int
}

// NewEncoder builds one pipeline encoder per level. base supplies the
// shared parameters (N, D, seed, codebook); each level overrides M from
// its CR.
func NewEncoder(base core.Params, levels []Level) (*Encoder, error) {
	if len(levels) == 0 {
		levels = DefaultLevels()
	}
	if len(levels) > 255 {
		return nil, fmt.Errorf("adaptive: %d levels exceed the 1-byte header", len(levels))
	}
	e := &Encoder{levels: levels}
	n := base.N
	if n == 0 {
		n = core.WindowSize
	}
	for _, lv := range levels {
		p := base
		p.M = metrics.MForCR(lv.CR, n)
		enc, err := core.NewEncoder(p)
		if err != nil {
			return nil, fmt.Errorf("adaptive: level CR %.0f: %w", lv.CR, err)
		}
		e.encoders = append(e.encoders, enc)
	}
	e.current = len(levels) - 1 // start conservative until activity is known
	return e, nil
}

// Levels returns the ladder.
func (e *Encoder) Levels() []Level { return e.levels }

// CurrentLevel returns the active level index.
func (e *Encoder) CurrentLevel() int { return e.current }

// Activity computes the encoder-side proxy: mean |x[i] − x[i−1]| in ADC
// counts over the window.
func Activity(window []int16) float64 {
	if len(window) < 2 {
		return 0
	}
	var sum int64
	for i := 1; i < len(window); i++ {
		d := int64(window[i]) - int64(window[i-1])
		if d < 0 {
			d = -d
		}
		sum += d
	}
	return float64(sum) / float64(len(window)-1)
}

// selectLevel applies the thresholds with hysteresis around the current
// level.
func (e *Encoder) selectLevel(activity float64) int {
	target := len(e.levels) - 1
	for i, lv := range e.levels[:len(e.levels)-1] {
		if activity < lv.ActivityBelow {
			target = i
			break
		}
	}
	if target == e.current {
		return target
	}
	// Hysteresis: demand a clear margin beyond the boundary that
	// separates the current level from the target side.
	if target < e.current {
		// Moving to a more aggressive level: activity must be clearly
		// below that level's threshold.
		if activity >= e.levels[target].ActivityBelow*(1-Hysteresis) {
			return e.current
		}
	} else {
		// Moving conservative: the current level's threshold must be
		// clearly exceeded.
		thr := e.levels[e.current].ActivityBelow
		if thr > 0 && activity <= thr*(1+Hysteresis) {
			return e.current
		}
	}
	return target
}

// EncodeWindow compresses one window, switching level when the activity
// proxy says so (the switch forces a key frame via encoder reset).
func (e *Encoder) EncodeWindow(window []int16) (*Frame, error) {
	level := e.selectLevel(Activity(window))
	if level != e.current {
		e.current = level
		e.encoders[level].Reset() // next packet is a key frame
	}
	pkt, err := e.encoders[level].EncodeWindow(window)
	if err != nil {
		return nil, err
	}
	return &Frame{Level: uint8(level), Packet: pkt.Clone()}, nil
}

// Decoder is the adaptive coordinator-side reconstructor.
type Decoder[T linalg.Float] struct {
	decoders []*core.Decoder[T]
}

// NewDecoder mirrors NewEncoder on the decode side.
func NewDecoder[T linalg.Float](base core.Params, levels []Level) (*Decoder[T], error) {
	if len(levels) == 0 {
		levels = DefaultLevels()
	}
	d := &Decoder[T]{}
	n := base.N
	if n == 0 {
		n = core.WindowSize
	}
	for _, lv := range levels {
		p := base
		p.M = metrics.MForCR(lv.CR, n)
		dec, err := core.NewDecoder[T](p)
		if err != nil {
			return nil, fmt.Errorf("adaptive: level CR %.0f: %w", lv.CR, err)
		}
		d.decoders = append(d.decoders, dec)
	}
	return d, nil
}

// DecodeFrame reconstructs one frame with the matching level decoder.
func (d *Decoder[T]) DecodeFrame(f *Frame) (*core.DecodeResult[T], error) {
	if int(f.Level) >= len(d.decoders) {
		return nil, fmt.Errorf("adaptive: frame level %d outside the %d-level ladder", f.Level, len(d.decoders))
	}
	return d.decoders[f.Level].DecodePacket(f.Packet)
}
