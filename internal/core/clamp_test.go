package core

import (
	"bytes"
	"testing"
)

// encodeOneWindow runs a fresh encoder over a single constant-valued
// window and returns the packet bytes.
func encodeOneWindow(t *testing.T, fill int16) []byte {
	t.Helper()
	enc, err := NewEncoder(Params{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	window := make([]int16, enc.Params().N)
	for i := range window {
		window[i] = fill
	}
	pkt, err := enc.EncodeWindow(window)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := pkt.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	return blob
}

// TestEncodeWindowClampsADCRange reproduces the wraparound rangecheck
// flagged in EncodeWindow: an out-of-range sample of −32768 used to wrap
// the int16 centering subtraction (−32768 − ADCBaseline ≡ +31744) and
// corrupt the measurements. With the ADC clamp, any sample below 0
// encodes exactly like 0, and any sample above ADCMax exactly like
// ADCMax.
func TestEncodeWindowClampsADCRange(t *testing.T) {
	if got, want := encodeOneWindow(t, -32768), encodeOneWindow(t, 0); !bytes.Equal(got, want) {
		t.Error("window of −32768 encodes differently from window of 0: centering subtraction wrapped")
	}
	if got, want := encodeOneWindow(t, 32767), encodeOneWindow(t, ADCMax); !bytes.Equal(got, want) {
		t.Error("window of 32767 encodes differently from window of ADCMax")
	}
}

// TestPushSampleClampsADCRange checks the same clamp on the streaming
// path, where the wrap would have happened inside AddMeasureInt's
// accumulation instead.
func TestPushSampleClampsADCRange(t *testing.T) {
	encode := func(fill int16) []byte {
		enc, err := NewEncoder(Params{Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		var blob []byte
		for i := 0; i < enc.Params().N; i++ {
			pkt, err := enc.PushSample(fill)
			if err != nil {
				t.Fatal(err)
			}
			if pkt != nil {
				blob, err = pkt.Marshal()
				if err != nil {
					t.Fatal(err)
				}
			}
		}
		if blob == nil {
			t.Fatal("no packet after a full window of samples")
		}
		return blob
	}
	if got, want := encode(-32768), encode(0); !bytes.Equal(got, want) {
		t.Error("streamed −32768 encodes differently from streamed 0")
	}
}
