// This file is the smartphone/coordinator half of the system: the paper
// defers all real-valued arithmetic (notably the 1/√d sensing scale)
// here, so the whole file is exempt from the device-side float ban.
//csecg:host coordinator-side reconstruction

package core

import (
	"encoding/binary"
	"fmt"

	"csecg/internal/huffman"
	"csecg/internal/linalg"
	"csecg/internal/sensing"
	"csecg/internal/solver"
)

// Decoder is the coordinator-side reconstructor, generic over the float
// width: float32 instantiates the paper's iPhone decoder, float64 the
// Matlab reference. It mirrors the encoder's three stages in reverse
// and then solves the l1 recovery problem with FISTA.
type Decoder[T linalg.Float] struct {
	p     Params
	phi   *sensing.SparseBinary
	psi   sparsifier[T]
	a     linalg.Op[T] // ΦΨ
	lip   T            // cached Lipschitz constant 2‖A‖²
	prevY []int32
	// warmAlpha carries the previous window's solution as the FISTA
	// warm start (quasi-periodicity makes it an excellent initializer).
	warmAlpha []T
	haveWarm  bool
	nextSeq   uint32
	synced    bool
	// lastEscapes counts the escape symbols of the packet being decoded.
	lastEscapes int

	// SolverOptions tunes the recovery. MaxIter is the real-time budget
	// (Section V: 800 unoptimized, 2000 optimized); Vectorized selects
	// the 4-wide kernels.
	SolverOptions solver.Options[T]
	// ContinuationStages > 1 enables λ-continuation (warm-started
	// windows rarely need it; cold key frames benefit).
	ContinuationStages int
	// Algorithm selects the recovery solver. The zero value is the
	// paper's FISTA (with continuation per ContinuationStages); the
	// coordinator's degradation ladder switches to AlgoGPSR under
	// deadline pressure.
	Algorithm solver.Algorithm
}

// DecodeResult reports one reconstructed window.
type DecodeResult[T linalg.Float] struct {
	// Samples is the reconstructed window in raw ADC units
	// (baseline restored).
	Samples []int16
	// MV is the reconstruction in zero-centered ADC units (divide by
	// the 200 ADU/mV gain for millivolts), before requantization.
	MV []T
	// Iterations used by the recovery solve.
	Iterations int
	// Converged reports whether FISTA hit its tolerance inside the
	// iteration budget.
	Converged bool
	// DeadlineExpired reports whether the solver's soft wall-clock
	// deadline (SolverOptions.DeadlineNs) cut the recovery short;
	// Samples then holds the best-so-far reconstruction.
	DeadlineExpired bool
	// Resynced is true when the packet was a key frame that recovered
	// the stream after a gap.
	Resynced bool
	// ResidualNorm is the normalized final data residual
	// ‖ΦΨα − y‖₂ / ‖y‖₂ — the decoder-side observable behind the
	// ground-truth-free quality estimate (metrics.EstimatePRDN).
	ResidualNorm float64
	// EscapeCount is the number of escape-coded difference symbols in a
	// delta packet (0 for key frames): out-of-codebook jumps that track
	// signal nonstationarity on the mote.
	EscapeCount int
	// StageIters holds the per-stage iteration counts when the solve ran
	// FISTA continuation (cold starts); nil for warm-started or
	// non-FISTA solves. The causal span trace splits the solver leaf
	// into sub-stage spans proportionally to these counts.
	StageIters []int
}

// NewDecoder builds a decoder for the given parameters.
func NewDecoder[T linalg.Float](p Params) (*Decoder[T], error) {
	p, err := p.withDefaults()
	if err != nil {
		return nil, err
	}
	phi, err := p.sensingMatrix()
	if err != nil {
		return nil, err
	}
	psi, err := basis[T](p)
	if err != nil {
		return nil, err
	}
	a := linalg.Compose(sensing.Op[T](phi), psi.SynthesisOp())
	d := &Decoder[T]{
		p:     p,
		phi:   phi,
		psi:   psi,
		a:     a,
		lip:   2 * linalg.PowerIterOpNorm(a, 30),
		prevY: make([]int32, p.M),
		SolverOptions: solver.Options[T]{
			MaxIter: 2000,
			// 3e-5 is the loosest tolerance whose reconstruction quality
			// is indistinguishable from 1e-5 on the substitute database,
			// and it lands the per-packet iteration count in the paper's
			// 600-900 band at CR=50.
			Tol:        3e-5,
			Vectorized: true,
		},
		ContinuationStages: 6,
	}
	return d, nil
}

// Params returns the resolved parameters.
func (d *Decoder[T]) Params() Params { return d.p }

// DecodePacket reconstructs one window. Packets must arrive in order;
// after a loss, delta packets are rejected until the next key frame
// resynchronizes the measurement state.
func (d *Decoder[T]) DecodePacket(pkt *Packet) (*DecodeResult[T], error) {
	resynced := false
	d.lastEscapes = 0
	switch pkt.Kind {
	case KindKey:
		if err := d.decodeKey(pkt); err != nil {
			return nil, err
		}
		resynced = d.synced && pkt.Seq != d.nextSeq || !d.synced && pkt.Seq != 0
		d.synced = true
	case KindDelta:
		if !d.synced {
			return nil, fmt.Errorf("core: delta packet %d before any key frame", pkt.Seq)
		}
		if pkt.Seq != d.nextSeq {
			d.synced = false
			return nil, fmt.Errorf("core: sequence gap (got %d, want %d); awaiting key frame", pkt.Seq, d.nextSeq)
		}
		if err := d.decodeDelta(pkt); err != nil {
			d.synced = false
			return nil, err
		}
	case KindNack, KindKeyRequest:
		return nil, fmt.Errorf("core: control packet kind %d on the data path", pkt.Kind)
	default:
		return nil, fmt.Errorf("core: unknown packet kind %d", pkt.Kind)
	}
	d.nextSeq = pkt.Seq + 1

	// Stage 3: FISTA recovery of α from y, then x̃ = Ψα. The deferred
	// scales are applied here: the 1/√d of the sensing matrix and the
	// 2^shift of the encoder's LSB drop.
	y := make([]T, d.p.M)
	scale := T(d.phi.Scale() * float64(int64(1)<<uint(d.p.MeasurementShift)))
	for i, v := range d.prevY {
		y[i] = T(v) * scale
	}
	opt := d.SolverOptions
	opt.Lipschitz = d.lip
	if d.haveWarm {
		opt.X0 = d.warmAlpha
	}
	var res solver.Result[T]
	var err error
	switch {
	case d.Algorithm != solver.AlgoFISTA:
		res, err = solver.Solve(d.Algorithm, d.a, y, opt, 1)
	case d.haveWarm || d.ContinuationStages <= 1:
		res, err = solver.FISTA(d.a, y, opt)
	default:
		res, err = solver.FISTAContinuation(d.a, y, opt, d.ContinuationStages)
	}
	if err != nil {
		return nil, fmt.Errorf("core: recovery: %w", err)
	}
	d.warmAlpha = res.X
	d.haveWarm = true

	// Normalized data residual ‖Aα − y‖₂/‖y‖₂: one extra operator apply
	// (≪ the solve's hundreds) buys the quality estimator its primary
	// observable.
	resid := make([]T, d.p.M)
	d.a.Apply(resid, res.X)
	linalg.Sub(resid, resid, y)
	var residualNorm float64
	if ny := float64(linalg.Norm2(y)); ny > 0 {
		residualNorm = float64(linalg.Norm2(resid)) / ny
	}

	mv := make([]T, d.p.N)
	d.psi.Inverse(mv, res.X)
	samples := make([]int16, d.p.N)
	for i, v := range mv {
		samples[i] = clampADC(int32(roundT(v)) + ADCBaseline)
	}
	return &DecodeResult[T]{
		Samples:         samples,
		MV:              mv,
		Iterations:      res.Iterations,
		Converged:       res.Converged,
		DeadlineExpired: res.DeadlineExpired,
		Resynced:        resynced,
		ResidualNorm:    residualNorm,
		EscapeCount:     d.lastEscapes,
		StageIters:      res.StageIters,
	}, nil
}

// decodeKey unpacks raw measurements.
func (d *Decoder[T]) decodeKey(pkt *Packet) error {
	if len(pkt.Payload) != 2*d.p.M {
		return fmt.Errorf("core: key payload %d bytes, want %d", len(pkt.Payload), 2*d.p.M)
	}
	for i := 0; i < d.p.M; i++ {
		d.prevY[i] = int32(int16(binary.LittleEndian.Uint16(pkt.Payload[2*i:])))
	}
	return nil
}

// decodeDelta undoes the Huffman and difference stages, accumulating
// onto the previous measurements.
func (d *Decoder[T]) decodeDelta(pkt *Packet) error {
	if int(pkt.NumSymbols) != d.p.M {
		return fmt.Errorf("core: delta packet carries %d symbols, want %d", pkt.NumSymbols, d.p.M)
	}
	r := huffman.NewBitReader(pkt.Payload)
	for i := 0; i < d.p.M; i++ {
		s, err := d.p.Codebook.Decode(r)
		if err != nil {
			return fmt.Errorf("core: entropy decoding symbol %d: %w", i, err)
		}
		var diff int32
		if s == EscapeSymbol {
			d.lastEscapes++
			raw, err := r.ReadBits(24)
			if err != nil {
				return fmt.Errorf("core: reading escape value %d: %w", i, err)
			}
			diff = int32(raw<<8) >> 8 // sign-extend 24 bits
		} else {
			diff = int32(s - NumDiffSymbols/2)
		}
		d.prevY[i] += diff
	}
	return nil
}

func clampADC(v int32) int16 {
	if v < 0 {
		return 0
	}
	if v > 2047 {
		return 2047
	}
	return int16(v)
}

func roundT[T linalg.Float](v T) T {
	if v >= 0 {
		return T(int64(v + 0.5))
	}
	return T(int64(v - 0.5))
}
