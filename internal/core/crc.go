package core

// CRC-16/CCITT-FALSE (polynomial 0x1021, init 0xFFFF) protects every
// frame on the wire. The mote computes it with the byte-indexed lookup
// table below — 256 uint16 entries, 512 bytes of flash (ledgered as
// FlashCRCTable in internal/mote/budget.go) — at one table lookup, one
// XOR and one shift per byte, all 16-bit integer operations the MSP430
// performs natively. Compared to the additive Fletcher-16 it replaces,
// the CRC detects all single- and double-bit errors, all odd-weight
// error patterns and every burst up to 16 bits — the damage profile of
// a fading Bluetooth channel.
const crcPoly = 0x1021

// crcTable is the byte-indexed CRC-16/CCITT lookup table (the flash
// image a firmware build generates offline).
var crcTable = makeCRCTable()

func makeCRCTable() [256]uint16 {
	var t [256]uint16
	for b := 0; b < 256; b++ {
		crc := uint16(b) << 8
		for bit := 0; bit < 8; bit++ {
			if crc&0x8000 != 0 {
				crc = crc<<1 ^ crcPoly
			} else {
				crc <<= 1
			}
		}
		t[b] = crc
	}
	return t
}

// crc16 computes the CRC-16/CCITT-FALSE checksum of data.
func crc16(data []byte) uint16 {
	crc := uint16(0xFFFF)
	for _, v := range data {
		crc = crc<<8 ^ crcTable[byte(crc>>8)^v]
	}
	return crc
}

// CRC16 exposes the wire CRC for integrity checks outside the packet
// codec (test harnesses, chaos fault injection).
func CRC16(data []byte) uint16 { return crc16(data) }
