package core

import (
	"math"
	"testing"
	"testing/quick"

	"csecg/internal/ecg"
	"csecg/internal/metrics"
)

// testWindows renders windows of record 100 at 256 Hz.
func testWindows(t testing.TB, seconds float64) [][]int16 {
	t.Helper()
	rec, err := ecg.RecordByID("100")
	if err != nil {
		t.Fatal(err)
	}
	samples, err := rec.Channel256(seconds, 0)
	if err != nil {
		t.Fatal(err)
	}
	var windows [][]int16
	for i := 0; i+WindowSize <= len(samples); i += WindowSize {
		windows = append(windows, samples[i:i+WindowSize])
	}
	if len(windows) == 0 {
		t.Fatal("no windows rendered")
	}
	return windows
}

func TestPacketMarshalRoundTrip(t *testing.T) {
	p := &Packet{Seq: 42, Kind: KindDelta, NumSymbols: 256, Payload: []byte{1, 2, 3, 4, 5}}
	blob, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, n, err := UnmarshalPacket(blob)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(blob) {
		t.Errorf("consumed %d of %d bytes", n, len(blob))
	}
	if got.Seq != 42 || got.Kind != KindDelta || got.NumSymbols != 256 || len(got.Payload) != 5 {
		t.Errorf("round trip mismatch: %+v", got)
	}
}

func TestPacketRejectsCorruption(t *testing.T) {
	p := &Packet{Seq: 1, Kind: KindKey, Payload: make([]byte, 64)}
	blob, _ := p.Marshal()
	for _, mutate := range []func([]byte) []byte{
		func(b []byte) []byte { b[0] ^= 0xFF; return b },        // magic
		func(b []byte) []byte { b[1] = 99; return b },           // kind
		func(b []byte) []byte { b[20] ^= 0x01; return b },       // payload bit
		func(b []byte) []byte { b[len(b)-1] ^= 0x01; return b }, // checksum
		func(b []byte) []byte { return b[:len(b)-3] },           // truncation
		func(b []byte) []byte { return b[:5] },                  // header truncation
	} {
		bad := mutate(append([]byte(nil), blob...))
		if _, _, err := UnmarshalPacket(bad); err == nil {
			t.Error("corrupted packet accepted")
		}
	}
}

func TestPacketMarshalProperty(t *testing.T) {
	f := func(seq uint32, nsym uint16, payload []byte) bool {
		if len(payload) > 0xFFFF {
			payload = payload[:0xFFFF]
		}
		p := &Packet{Seq: seq, Kind: KindDelta, NumSymbols: nsym, Payload: payload}
		blob, err := p.Marshal()
		if err != nil {
			return false
		}
		got, n, err := UnmarshalPacket(blob)
		if err != nil || n != len(blob) {
			return false
		}
		if got.Seq != seq || got.NumSymbols != nsym || len(got.Payload) != len(payload) {
			return false
		}
		for i := range payload {
			if got.Payload[i] != payload[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDefaultCodebookComplete(t *testing.T) {
	cb := DefaultCodebook()
	if cb.NumSymbols() != 512 {
		t.Fatalf("default codebook has %d symbols", cb.NumSymbols())
	}
	for s := 0; s < 512; s++ {
		if l := cb.CodeLen(s); l < 1 || l > 16 {
			t.Fatalf("symbol %d length %d", s, l)
		}
	}
	// Near-zero diffs must code shorter than extreme diffs.
	if cb.CodeLen(256) >= cb.CodeLen(0) {
		t.Errorf("center symbol length %d not shorter than tail %d", cb.CodeLen(256), cb.CodeLen(0))
	}
}

func TestMeasurementStateRoundTrip(t *testing.T) {
	// Key + delta chain: the decoder's accumulated measurements must
	// exactly equal the encoder's integer measurements for every packet
	// (the entropy+difference stages are lossless).
	params := Params{Seed: 0x1234}
	enc, err := NewEncoder(params)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := NewDecoder[float64](params)
	if err != nil {
		t.Fatal(err)
	}
	dec.SolverOptions.MaxIter = 1 // recovery quality irrelevant here
	windows := testWindows(t, 22)
	for wi, win := range windows {
		pkt, err := enc.EncodeWindow(win)
		if err != nil {
			t.Fatalf("window %d: %v", wi, err)
		}
		if _, err := dec.DecodePacket(pkt); err != nil {
			t.Fatalf("window %d: %v", wi, err)
		}
		for i := range enc.prevY {
			if enc.prevY[i] != dec.prevY[i] {
				t.Fatalf("window %d: measurement %d diverged (enc %d, dec %d)", wi, i, enc.prevY[i], dec.prevY[i])
			}
		}
	}
}

func TestEndToEndReconstructionQuality(t *testing.T) {
	params := Params{Seed: 0x0BB1, M: metrics.MForCR(50, WindowSize)}
	enc, err := NewEncoder(params)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := NewDecoder[float64](params)
	if err != nil {
		t.Fatal(err)
	}
	windows := testWindows(t, 14)
	var prds []float64
	for _, win := range windows {
		pkt, err := enc.EncodeWindow(win)
		if err != nil {
			t.Fatal(err)
		}
		res, err := dec.DecodePacket(pkt)
		if err != nil {
			t.Fatal(err)
		}
		orig := make([]float64, len(win))
		recon := make([]float64, len(win))
		for i := range win {
			orig[i] = float64(win[i])
			recon[i] = float64(res.Samples[i])
		}
		prdn, err := metrics.PRDN(orig, recon)
		if err != nil {
			t.Fatal(err)
		}
		prds = append(prds, prdn)
	}
	// Skip the cold-start window; steady-state quality must stay near
	// the paper's CR=50 operating point (Fig. 6 reads ≈20 PRD there;
	// our tuned solver does better on the substitute records).
	var worst float64
	for _, p := range prds[1:] {
		if p > worst {
			worst = p
		}
	}
	if worst > 12 {
		t.Errorf("steady-state PRDN up to %v, want < 12 (all: %v)", worst, prds)
	}
}

func TestCompressionRatioAchieved(t *testing.T) {
	params := Params{Seed: 7, M: metrics.MForCR(50, WindowSize)}
	enc, err := NewEncoder(params)
	if err != nil {
		t.Fatal(err)
	}
	windows := testWindows(t, 62)
	var rawBits, compBits int
	for _, win := range windows {
		pkt, err := enc.EncodeWindow(win)
		if err != nil {
			t.Fatal(err)
		}
		rawBits += enc.RawWindowBits()
		compBits += pkt.WireSize() * 8
	}
	cr := metrics.CR(rawBits, compBits)
	// CS stage alone removes 50%; the difference+entropy stage must push
	// the overall wire CR beyond it despite header overhead.
	if cr < 55 {
		t.Errorf("overall CR = %.1f%%, want > 55%%", cr)
	}
	t.Logf("overall wire CR at M=N/2: %.1f%%", cr)
}

func TestDeltaPacketsSmallerThanKey(t *testing.T) {
	params := Params{Seed: 3}
	enc, _ := NewEncoder(params)
	windows := testWindows(t, 10)
	var keySize, deltaSize int
	for i, win := range windows {
		pkt, err := enc.EncodeWindow(win)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			if pkt.Kind != KindKey {
				t.Fatal("first packet not a key frame")
			}
			keySize = pkt.WireSize()
		} else if pkt.Kind == KindDelta && deltaSize == 0 {
			deltaSize = pkt.WireSize()
		}
	}
	if deltaSize == 0 {
		t.Fatal("no delta packet produced")
	}
	if deltaSize >= keySize {
		t.Errorf("delta packet %d B not smaller than key %d B", deltaSize, keySize)
	}
}

func TestDecoderRejectsGapUntilKeyFrame(t *testing.T) {
	params := Params{Seed: 5, KeyFrameInterval: 4}
	enc, _ := NewEncoder(params)
	dec, _ := NewDecoder[float64](params)
	dec.SolverOptions.MaxIter = 1
	windows := testWindows(t, 26)
	var packets []*Packet
	for _, win := range windows {
		pkt, err := enc.EncodeWindow(win)
		if err != nil {
			t.Fatal(err)
		}
		packets = append(packets, pkt.Clone())
	}
	if len(packets) < 9 {
		t.Fatalf("need ≥9 packets, got %d", len(packets))
	}
	// Deliver 0,1 then drop 2 and deliver 3 (delta): must fail.
	for _, i := range []int{0, 1} {
		if _, err := dec.DecodePacket(packets[i]); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := dec.DecodePacket(packets[3]); err == nil {
		t.Fatal("delta after gap accepted")
	}
	// Subsequent deltas also rejected...
	if _, err := dec.DecodePacket(packets[5]); err == nil {
		t.Fatal("delta while desynced accepted")
	}
	// ...until the next key frame (seq 4, 8, ... with interval 4).
	if packets[8].Kind != KindKey {
		t.Fatalf("packet 8 is %v, want key", packets[8].Kind)
	}
	res, err := dec.DecodePacket(packets[8])
	if err != nil {
		t.Fatal(err)
	}
	if !res.Resynced {
		t.Error("key frame after gap did not report resync")
	}
	// Stream continues.
	if _, err := dec.DecodePacket(packets[9]); err != nil {
		t.Fatalf("delta after resync: %v", err)
	}
}

func TestDecoderDeltaBeforeKey(t *testing.T) {
	params := Params{Seed: 5}
	enc, _ := NewEncoder(params)
	dec, _ := NewDecoder[float64](params)
	dec.SolverOptions.MaxIter = 1
	windows := testWindows(t, 6)
	p0, _ := enc.EncodeWindow(windows[0])
	p0 = p0.Clone() // retained across the next encode call
	p1, err := enc.EncodeWindow(windows[1])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dec.DecodePacket(p1); err == nil {
		t.Fatal("delta before key accepted")
	}
	if _, err := dec.DecodePacket(p0); err != nil {
		t.Fatal(err)
	}
}

func TestEncoderValidation(t *testing.T) {
	if _, err := NewEncoder(Params{M: -1}); err == nil {
		t.Error("negative M accepted")
	}
	if _, err := NewEncoder(Params{M: WindowSize + 1}); err == nil {
		t.Error("M > N accepted")
	}
	enc, err := NewEncoder(Params{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := enc.EncodeWindow(make([]int16, 7)); err == nil {
		t.Error("short window accepted")
	}
}

func TestEncoderReset(t *testing.T) {
	params := Params{Seed: 9}
	enc, _ := NewEncoder(params)
	windows := testWindows(t, 6)
	a1, _ := enc.EncodeWindow(windows[0])
	a1 = a1.Clone() // packets are encoder-owned; clone to compare across calls
	b1, _ := enc.EncodeWindow(windows[1])
	b1 = b1.Clone()
	enc.Reset()
	a2, _ := enc.EncodeWindow(windows[0])
	a2 = a2.Clone()
	b2, _ := enc.EncodeWindow(windows[1])
	if a1.Kind != a2.Kind || a1.Seq != a2.Seq || len(a1.Payload) != len(a2.Payload) {
		t.Error("reset did not reproduce first packet")
	}
	for i := range a1.Payload {
		if a1.Payload[i] != a2.Payload[i] {
			t.Fatal("key payload differs after reset")
		}
	}
	for i := range b1.Payload {
		if b1.Payload[i] != b2.Payload[i] {
			t.Fatal("delta payload differs after reset")
		}
	}
}

func TestEscapePathRoundTrip(t *testing.T) {
	// Force huge measurement jumps (square-wave windows) so differences
	// overflow [−256, 255] and exercise the escape coding.
	params := Params{Seed: 11, KeyFrameInterval: 1000}
	enc, _ := NewEncoder(params)
	dec, _ := NewDecoder[float64](params)
	dec.SolverOptions.MaxIter = 1
	mk := func(level int16) []int16 {
		w := make([]int16, WindowSize)
		for i := range w {
			w[i] = level
		}
		return w
	}
	for wi, win := range [][]int16{mk(1024), mk(2000), mk(100), mk(2047), mk(0)} {
		pkt, err := enc.EncodeWindow(win)
		if err != nil {
			t.Fatalf("window %d: %v", wi, err)
		}
		if _, err := dec.DecodePacket(pkt); err != nil {
			t.Fatalf("window %d: %v", wi, err)
		}
		for i := range enc.prevY {
			if enc.prevY[i] != dec.prevY[i] {
				t.Fatalf("window %d: escape path diverged at %d", wi, i)
			}
		}
	}
}

func TestFloat32DecoderMatchesFloat64(t *testing.T) {
	params := Params{Seed: 21, M: metrics.MForCR(50, WindowSize)}
	enc, _ := NewEncoder(params)
	d64, _ := NewDecoder[float64](params)
	d32, _ := NewDecoder[float32](params)
	windows := testWindows(t, 8)
	for _, win := range windows {
		pkt, err := enc.EncodeWindow(win)
		if err != nil {
			t.Fatal(err)
		}
		blob, _ := pkt.Marshal()
		p64, _, _ := UnmarshalPacket(blob)
		p32, _, _ := UnmarshalPacket(blob)
		r64, err := d64.DecodePacket(p64)
		if err != nil {
			t.Fatal(err)
		}
		r32, err := d32.DecodePacket(p32)
		if err != nil {
			t.Fatal(err)
		}
		// Fig. 6's claim: PRD difference between precisions is
		// negligible relative to the reconstruction error itself.
		orig := make([]float64, len(win))
		re64 := make([]float64, len(win))
		re32 := make([]float64, len(win))
		for i := range win {
			orig[i] = float64(win[i])
			re64[i] = float64(r64.Samples[i])
			re32[i] = float64(r32.Samples[i])
		}
		p1, err := metrics.PRDN(orig, re64)
		if err != nil {
			t.Fatal(err)
		}
		p2, err := metrics.PRDN(orig, re32)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(p1-p2) > 1+0.2*p1 {
			t.Errorf("precision PRDN divergence: float64 %v vs float32 %v", p1, p2)
		}
	}
}

func BenchmarkEncodeWindow(b *testing.B) {
	enc, err := NewEncoder(Params{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	win := testWindows(b, 4)[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := enc.EncodeWindow(win); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodePacketFloat32(b *testing.B) {
	params := Params{Seed: 1}
	enc, _ := NewEncoder(params)
	dec, _ := NewDecoder[float32](params)
	dec.SolverOptions.MaxIter = 200
	win := testWindows(b, 4)[0]
	pkt, err := enc.EncodeWindow(win)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dec.synced = false
		dec.nextSeq = 0
		dec.haveWarm = false
		if _, err := dec.DecodePacket(pkt); err != nil {
			b.Fatal(err)
		}
	}
}

func TestStreamingEncoderMatchesBatch(t *testing.T) {
	params := Params{Seed: 0x51BB}
	batch, err := NewEncoder(params)
	if err != nil {
		t.Fatal(err)
	}
	stream, err := NewEncoder(params)
	if err != nil {
		t.Fatal(err)
	}
	windows := testWindows(t, 10)
	for wi, win := range windows {
		bp, err := batch.EncodeWindow(win)
		if err != nil {
			t.Fatal(err)
		}
		var sp *Packet
		for si, s := range win {
			p, err := stream.PushSample(s)
			if err != nil {
				t.Fatal(err)
			}
			if si < len(win)-1 && p != nil {
				t.Fatalf("window %d: packet emitted mid-window at sample %d", wi, si)
			}
			if si == len(win)-1 {
				sp = p
			}
		}
		if sp == nil {
			t.Fatalf("window %d: no packet at window end", wi)
		}
		bb, _ := bp.Marshal()
		sb, _ := sp.Marshal()
		if len(bb) != len(sb) {
			t.Fatalf("window %d: batch %d B vs stream %d B", wi, len(bb), len(sb))
		}
		for i := range bb {
			if bb[i] != sb[i] {
				t.Fatalf("window %d: wire images differ at byte %d", wi, i)
			}
		}
	}
	// Mixing modes mid-window is rejected.
	if _, err := stream.PushSample(1024); err != nil {
		t.Fatal(err)
	}
	if _, err := stream.EncodeWindow(windows[0]); err == nil {
		t.Error("EncodeWindow accepted with a streamed sample pending")
	}
	stream.Reset()
	if _, err := stream.EncodeWindow(windows[0]); err != nil {
		t.Errorf("EncodeWindow after Reset: %v", err)
	}
}

func TestMeasurementLockstepProperty(t *testing.T) {
	// Property: for arbitrary window contents (full int16 ADC range,
	// including rail-to-rail jumps that force escape coding), the
	// decoder's measurement state tracks the encoder's exactly.
	params := Params{Seed: 0x99, N: 128, M: 64, WaveletLevels: 3, KeyFrameInterval: 5}
	enc, err := NewEncoder(params)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := NewDecoder[float64](params)
	if err != nil {
		t.Fatal(err)
	}
	dec.SolverOptions.MaxIter = 1
	f := func(seed uint64) bool {
		gen := seed | 1
		win := make([]int16, 128)
		for i := range win {
			gen ^= gen << 13
			gen ^= gen >> 7
			gen ^= gen << 17
			win[i] = int16(gen % 2048) // raw ADC range
		}
		pkt, err := enc.EncodeWindow(win)
		if err != nil {
			return false
		}
		blob, err := pkt.Marshal()
		if err != nil {
			return false
		}
		rx, _, err := UnmarshalPacket(blob)
		if err != nil {
			return false
		}
		if _, err := dec.DecodePacket(rx); err != nil {
			return false
		}
		for i := range enc.prevY {
			if enc.prevY[i] != dec.prevY[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestControlPacketHelpers(t *testing.T) {
	n := NewNack(42, 3)
	first, count, err := NackRange(n)
	if err != nil || first != 42 || count != 3 {
		t.Errorf("NackRange = (%d, %d, %v), want (42, 3, nil)", first, count, err)
	}
	if got := NewNack(1, 100); got.Payload[0] != MaxNackRange {
		t.Errorf("NACK count not saturated: %d", got.Payload[0])
	}
	if got := NewNack(1, 0); got.Payload[0] != 1 {
		t.Errorf("NACK count not floored: %d", got.Payload[0])
	}
	if _, _, err := NackRange(NewKeyRequest(5)); err == nil {
		t.Error("NackRange accepted a key request")
	}
	if _, _, err := NackRange(&Packet{Kind: KindNack}); err == nil {
		t.Error("NackRange accepted an empty payload")
	}
	if !KindNack.IsControl() || !KindKeyRequest.IsControl() || KindKey.IsControl() || KindDelta.IsControl() {
		t.Error("IsControl misclassifies a kind")
	}
}

func TestControlPacketsRoundTripTheWire(t *testing.T) {
	for _, pkt := range []*Packet{NewNack(7, 2), NewKeyRequest(9)} {
		blob, err := pkt.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		rx, n, err := UnmarshalPacket(blob)
		if err != nil {
			t.Fatalf("control packet rejected by the parser: %v", err)
		}
		if n != len(blob) || rx.Kind != pkt.Kind || rx.Seq != pkt.Seq {
			t.Errorf("round trip mangled %+v into %+v", pkt, rx)
		}
	}
}

func TestDecoderRejectsControlKinds(t *testing.T) {
	params := Params{Seed: 5, M: 64, N: 128, WaveletLevels: 3}
	dec, err := NewDecoder[float64](params)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dec.DecodePacket(NewNack(0, 1)); err == nil {
		t.Error("decoder accepted a NACK")
	}
	if _, err := dec.DecodePacket(NewKeyRequest(0)); err == nil {
		t.Error("decoder accepted a key request")
	}
}

func TestForceKeyFrame(t *testing.T) {
	params := Params{Seed: 5, KeyFrameInterval: 64}
	enc, err := NewEncoder(params)
	if err != nil {
		t.Fatal(err)
	}
	windows := testWindows(t, 8)
	if len(windows) < 4 {
		t.Fatalf("need 4 windows, got %d", len(windows))
	}
	pkt, err := enc.EncodeWindow(windows[0])
	if err != nil {
		t.Fatal(err)
	}
	if pkt.Kind != KindKey {
		t.Fatal("first packet not a key frame")
	}
	if pkt, err = enc.EncodeWindow(windows[1]); err != nil || pkt.Kind != KindDelta {
		t.Fatalf("second packet %v (%v), want delta", pkt.Kind, err)
	}
	enc.ForceKeyFrame()
	if pkt, err = enc.EncodeWindow(windows[2]); err != nil || pkt.Kind != KindKey {
		t.Fatalf("forced packet %v (%v), want key", pkt.Kind, err)
	}
	if pkt.Seq != 2 {
		t.Errorf("forced key frame renumbered the stream: seq %d", pkt.Seq)
	}
	// The force is one-shot.
	if pkt, err = enc.EncodeWindow(windows[3]); err != nil || pkt.Kind != KindDelta {
		t.Fatalf("post-force packet %v (%v), want delta", pkt.Kind, err)
	}
}
