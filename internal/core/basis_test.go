package core

import (
	"testing"

	"csecg/internal/metrics"
)

func TestBasisString(t *testing.T) {
	if BasisWavelet.String() != "wavelet" || BasisDCT.String() != "DCT" {
		t.Error("Basis names wrong")
	}
}

func TestDecoderDCTBasisRoundTrip(t *testing.T) {
	params := Params{Seed: 0xDC, M: metrics.MForCR(40, WindowSize), Basis: BasisDCT}
	enc, err := NewEncoder(params)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := NewDecoder[float64](params)
	if err != nil {
		t.Fatal(err)
	}
	dec.SolverOptions.MaxIter = 400 // enough to get a sane PRDN
	windows := testWindows(t, 8)
	var worst float64
	for wi, win := range windows {
		pkt, err := enc.EncodeWindow(win)
		if err != nil {
			t.Fatal(err)
		}
		res, err := dec.DecodePacket(pkt)
		if err != nil {
			t.Fatal(err)
		}
		if wi == 0 {
			continue
		}
		orig := make([]float64, len(win))
		reco := make([]float64, len(win))
		for i := range win {
			orig[i] = float64(win[i])
			reco[i] = float64(res.Samples[i])
		}
		prdn, err := metrics.PRDN(orig, reco)
		if err != nil {
			t.Fatal(err)
		}
		if prdn > worst {
			worst = prdn
		}
	}
	// DCT recovery is worse than wavelet but must still reconstruct a
	// recognizable signal at CR 40.
	if worst > 40 {
		t.Errorf("DCT-basis PRDN %v, want < 40", worst)
	}
}

func TestUnknownBasisRejected(t *testing.T) {
	if _, err := NewDecoder[float64](Params{Basis: Basis(99)}); err == nil {
		t.Error("unknown basis accepted")
	}
}
