// Package core assembles the paper's pipeline from the substrate
// packages: the three-stage encoder (sparse binary CS measurement →
// inter-packet redundancy removal → Huffman coding) that runs on the
// mote, and the three-stage decoder (Huffman decode → packet
// reconstruction → FISTA recovery) that runs on the coordinator.
package core

import (
	"fmt"

	"csecg/internal/dct"
	"csecg/internal/huffman"
	"csecg/internal/linalg"
	"csecg/internal/metrics"
	"csecg/internal/sensing"
	"csecg/internal/wavelet"
)

// Pipeline constants fixed by the paper's implementation.
const (
	// FsMote is the mote's ECG sample rate (records are fed re-sampled
	// at 256 Hz).
	FsMote = 256
	// WindowSeconds is the packet granularity: 2 seconds of ECG.
	WindowSeconds = 2
	// WindowSize N = 512 samples per window.
	WindowSize = FsMote * WindowSeconds
	// DefaultColumnWeight is d = 12, the paper's execution-time /
	// recovery-quality sweet spot.
	DefaultColumnWeight = 12
	// ADCBaseline is subtracted from raw 11-bit samples before
	// measurement so the integer pipeline works on zero-centered data.
	ADCBaseline = 1024
	// ADCMax is the largest raw sample the 11-bit ADC can produce. The
	// encoder clamps its input to [0, ADCMax] so every downstream
	// interval — centering, measurement accumulation, differencing — is
	// bounded (rangecheck proves the centering subtraction from it).
	ADCMax = 2047
	// MaxMeasurementShift bounds the LSB drop. withDefaults validates
	// against it and finishWindow clamps with it locally, which is what
	// lets the interval engine bound the rounding shift without
	// interprocedural knowledge.
	MaxMeasurementShift = 8
	// NumDiffSymbols is the difference alphabet: values [−256, 255]
	// map to symbols 0..511.
	NumDiffSymbols = 512
	// DefaultMeasurements is M at the default CR = 50% target:
	// metrics.MForCR(50, WindowSize). Kept as a constant so the
	// device-side RAM ledger (internal/mote, checked by the budget
	// analyzer) can be summed at compile time; a test pins the two
	// together.
	DefaultMeasurements = WindowSize / 2
	// EscapeSymbol is the codeword borrowed for out-of-range
	// differences: it is followed by a raw 16-bit value. The paper's
	// codebook has no escape (its records keep differences in range);
	// synthetic records occasionally exceed it, and silent clamping
	// would corrupt the reconstruction. See DESIGN.md.
	EscapeSymbol = NumDiffSymbols - 1
	// DefaultWaveletOrder/Levels define Ψ: a db4 basis, 5 levels.
	DefaultWaveletOrder  = 4
	DefaultWaveletLevels = 5
	// DefaultKeyFrameInterval inserts a raw-coded key packet every this
	// many packets so the stream can resynchronize after loss.
	DefaultKeyFrameInterval = 64
	// DefaultMeasurementShift right-shifts each integer measurement by
	// this many bits before the difference stage. Raw measurements of a
	// weight-12 column span ±12288; quasi-periodic windows leave
	// differences of a few hundred, and dropping 3 LSBs brings them
	// into the codebook's [−256, 255] range (the paper reports exactly
	// that range) at a quantization-noise level far below the CS
	// recovery error.
	DefaultMeasurementShift = 3
)

// Params configures an encoder/decoder pair. Both sides must use
// identical values; Seed drives the shared sensing-matrix generator.
type Params struct {
	// N is the window length (default WindowSize).
	N int
	// M is the number of CS measurements per window. Set it from a
	// target compression ratio with metrics.MForCR.
	M int
	// D is the sensing-matrix column weight (default
	// DefaultColumnWeight).
	D int
	// Seed seeds the 16-bit LCG that generates the sensing support on
	// both sides.
	Seed uint16
	// Basis selects the sparsifying transform Ψ used at recovery (the
	// encoder never touches it). The zero value is the paper's
	// orthonormal wavelet.
	Basis Basis
	// WaveletOrder and WaveletLevels parameterize the wavelet basis
	// (ignored for BasisDCT).
	WaveletOrder, WaveletLevels int
	// KeyFrameInterval is the packet period of raw-coded key frames
	// (≤ 1 makes every packet a key frame; default
	// DefaultKeyFrameInterval).
	KeyFrameInterval int
	// MeasurementShift is the LSB count dropped from each measurement
	// before differencing (default DefaultMeasurementShift; negative
	// selects 0). Both sides must agree.
	MeasurementShift int
	// Codebook is the trained Huffman codebook. Nil selects
	// DefaultCodebook().
	Codebook *huffman.Codebook
}

// withDefaults fills zero fields and validates.
func (p Params) withDefaults() (Params, error) {
	if p.N == 0 {
		p.N = WindowSize
	}
	if p.D == 0 {
		p.D = DefaultColumnWeight
	}
	if p.M == 0 {
		p.M = metrics.MForCR(50, p.N) //csecg:host one-time configuration, not firmware arithmetic
	}
	if p.WaveletOrder == 0 {
		p.WaveletOrder = DefaultWaveletOrder
	}
	if p.WaveletLevels == 0 {
		p.WaveletLevels = DefaultWaveletLevels
	}
	if p.KeyFrameInterval == 0 {
		p.KeyFrameInterval = DefaultKeyFrameInterval
	}
	if p.MeasurementShift == 0 {
		p.MeasurementShift = DefaultMeasurementShift
	} else if p.MeasurementShift < 0 {
		p.MeasurementShift = 0
	}
	if p.MeasurementShift > MaxMeasurementShift {
		return p, fmt.Errorf("core: measurement shift %d out of [0, %d]", p.MeasurementShift, MaxMeasurementShift)
	}
	if p.Codebook == nil {
		p.Codebook = DefaultCodebook()
	}
	if p.M <= 0 || p.M > p.N {
		return p, fmt.Errorf("core: M=%d out of [1, N=%d]", p.M, p.N)
	}
	if p.Codebook.NumSymbols() != NumDiffSymbols {
		return p, fmt.Errorf("core: codebook has %d symbols, want %d", p.Codebook.NumSymbols(), NumDiffSymbols)
	}
	return p, nil
}

// Basis names a sparsifying transform family.
type Basis int

// Supported bases.
const (
	// BasisWavelet is the paper's orthonormal Daubechies wavelet.
	BasisWavelet Basis = iota
	// BasisDCT is an orthonormal discrete cosine basis, provided for
	// the basis ablation (heavier at recovery: O(N²) per operator
	// apply instead of O(N·filter)).
	BasisDCT
)

// String names the basis.
func (b Basis) String() string {
	if b == BasisDCT {
		return "DCT"
	}
	return "wavelet"
}

// sensingMatrix builds the shared sparse binary matrix.
func (p Params) sensingMatrix() (*sensing.SparseBinary, error) {
	return sensing.NewSparseBinaryLCG(p.M, p.N, p.D, p.Seed)
}

// sparsifier is the decoder's view of Ψ: synthesis into samples plus the
// operator pair the solver consumes. Both the wavelet and DCT
// transforms satisfy it.
type sparsifier[T linalg.Float] interface {
	Inverse(dst, coeffs []T)
	SynthesisOp() linalg.Op[T]
}

// basis builds the shared sparsifying transform at the requested
// precision.
func basis[T linalg.Float](p Params) (sparsifier[T], error) {
	switch p.Basis {
	case BasisDCT:
		return dct.New[T](p.N)
	case BasisWavelet:
		return wavelet.New[T](p.WaveletOrder, p.N, p.WaveletLevels)
	default:
		return nil, fmt.Errorf("core: unknown basis %d", p.Basis)
	}
}
