package core

import (
	"fmt"
	"math"
	"sync"

	"csecg/internal/huffman"
)

// DefaultCodebook returns the stock codebook: a length-limited canonical
// Huffman code trained offline on a two-sided geometric model of the
// difference signal. The measurement differences of quasi-periodic ECG
// concentrate tightly around zero with roughly exponential tails, so a
// discrete-Laplacian histogram is an excellent stand-in for a corpus
// histogram; cmd/csecg-codebook retrains from synthesized records when a
// better match is wanted.
func DefaultCodebook() *huffman.Codebook {
	defaultCodebookOnce.Do(func() {
		//csecg:host offline training; the mote only carries the resulting table
		freq := DiffHistogramModel(20)
		cb, err := huffman.Train(freq)
		if err != nil {
			// The model histogram is fixed and valid; failure here is a
			// programming error, not an input error.
			panic(fmt.Sprintf("core: training default codebook: %v", err))
		}
		defaultCodebook = cb
	})
	return defaultCodebook
}

var (
	defaultCodebookOnce sync.Once
	defaultCodebook     *huffman.Codebook
)

// DiffHistogramModel returns a smoothed model histogram over the 512
// difference symbols: freq(d) ∝ exp(−|d|/scale) plus add-one smoothing
// so every symbol is coded (the paper's "complete codebook of size
// 512"). scale is the expected absolute difference magnitude.
//
//csecg:host offline codebook training runs on the workstation
func DiffHistogramModel(scale float64) []int {
	if scale <= 0 {
		scale = 20
	}
	freq := make([]int, NumDiffSymbols)
	for s := range freq {
		d := float64(s - NumDiffSymbols/2)
		if d < 0 {
			d = -d
		}
		freq[s] = 1 + int(1e6*math.Exp(-d/scale))
	}
	return freq
}
