package core

import (
	"strings"
	"testing"
)

// TestCRC16KnownAnswer pins the implementation to the published
// CRC-16/CCITT-FALSE check value so a table or shift-direction bug
// cannot silently redefine the wire format.
func TestCRC16KnownAnswer(t *testing.T) {
	if got := CRC16([]byte("123456789")); got != 0x29B1 {
		t.Fatalf("CRC16(check string) = %#x, want 0x29B1", got)
	}
	if got := CRC16(nil); got != 0xFFFF {
		t.Fatalf("CRC16(empty) = %#x, want init value 0xFFFF", got)
	}
}

// TestCRC16DetectsBursts verifies the CRC's burst guarantee over a
// representative frame: every contiguous error burst of up to 16 bits
// must change the checksum.
func TestCRC16DetectsBursts(t *testing.T) {
	frame := make([]byte, 64)
	for i := range frame {
		frame[i] = byte(i*37 + 11)
	}
	ref := CRC16(frame)
	for start := 0; start < len(frame)*8-16; start++ {
		for width := 1; width <= 16; width++ {
			mut := append([]byte(nil), frame...)
			// Flip the first and last bit of the burst (a burst is any
			// error pattern confined to `width` consecutive bits whose
			// endpoints are flipped).
			mut[start/8] ^= 1 << (start % 8)
			if end := start + width - 1; end != start {
				mut[end/8] ^= 1 << (end % 8)
			}
			if CRC16(mut) == ref {
				t.Fatalf("burst at bit %d width %d undetected", start, width)
			}
		}
	}
}

// TestCorruptedPacketRejected pins the acceptance criterion that a
// deliberately corrupted frame never reaches the decoder: each single
// corrupted byte outside the length field must fail UnmarshalPacket
// with a CRC mismatch.
func TestCorruptedPacketRejected(t *testing.T) {
	p := &Packet{Seq: 42, Kind: KindDelta, NumSymbols: 128, Payload: []byte{9, 8, 7, 6, 5}}
	blob, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := UnmarshalPacket(blob); err != nil {
		t.Fatalf("pristine frame rejected: %v", err)
	}
	for pos := 1; pos < len(blob); pos++ {
		if pos == 8 || pos == 9 {
			continue // length field: moves the CRC window itself
		}
		mut := append([]byte(nil), blob...)
		mut[pos] ^= 0xA5
		_, _, err := UnmarshalPacket(mut)
		if err == nil {
			t.Fatalf("corrupted byte %d accepted", pos)
		}
		if pos != 1 && !strings.Contains(err.Error(), "CRC") {
			t.Fatalf("corrupted byte %d rejected with %v, want CRC mismatch", pos, err)
		}
	}
}
