package core

import (
	"encoding/binary"
	"fmt"

	"csecg/internal/huffman"
	"csecg/internal/sensing"
)

// Encoder is the mote-side compressor. It consumes 2-second windows of
// raw 11-bit ADC samples and produces packets. All arithmetic is
// integer-only — the exact operations the MSP430 port performs:
// d additions per sample for the measurement, one subtraction per
// measurement for the redundancy removal, and a table lookup per symbol
// for the Huffman stage.
type Encoder struct {
	p     Params
	phi   *sensing.SparseBinary
	prevY []int32
	seq   uint32
	// forceKey promotes the next packet to a key frame (the NACK
	// protocol's on-demand resync), independent of the schedule.
	forceKey bool
	// streamIdx tracks PushSample progress within the current window.
	streamIdx int
	// scratch buffers reused across windows (the mote has 10 kB of RAM).
	y       []int32
	symbols []int
	escapes []int32
	centred []int16
	// pkt and its payload buffers model the firmware's single TX packet
	// buffer: every Encode call returns &pkt, so the steady-state encode
	// path allocates nothing. Callers that retain a packet past the next
	// encode call must Clone it.
	pkt        Packet
	keyPayload []byte
	bw         *huffman.BitWriter
}

// NewEncoder builds an encoder for the given parameters.
func NewEncoder(p Params) (*Encoder, error) {
	p, err := p.withDefaults()
	if err != nil {
		return nil, err
	}
	phi, err := p.sensingMatrix()
	if err != nil {
		return nil, err
	}
	return &Encoder{
		p:          p,
		phi:        phi,
		prevY:      make([]int32, p.M),
		y:          make([]int32, p.M),
		symbols:    make([]int, 0, p.M),
		escapes:    make([]int32, 0, p.M),
		centred:    make([]int16, p.N),
		keyPayload: make([]byte, 2*p.M),
		bw:         huffman.NewBitWriter(),
	}, nil
}

// Params returns the resolved parameters.
func (e *Encoder) Params() Params { return e.p }

// ForceKeyFrame promotes the next encoded window to a key frame
// regardless of the schedule — the response to a KindKeyRequest control
// packet. The scheduled key-frame cadence is unaffected.
func (e *Encoder) ForceKeyFrame() { e.forceKey = true }

// Reset returns the encoder to the start-of-stream state (next packet is
// a key frame, sequence restarts, any partially streamed window is
// discarded).
func (e *Encoder) Reset() {
	e.seq = 0
	e.forceKey = false
	e.streamIdx = 0
	for i := range e.prevY {
		e.prevY[i] = 0
	}
	for i := range e.y {
		e.y[i] = 0
	}
}

// EncodeWindow compresses one window of raw ADC samples (values
// 0..2047). It returns the packet to transmit. The window length must
// equal Params().N.
//
// The returned packet is owned by the encoder — the analogue of the
// firmware's single TX buffer — and is overwritten by the next
// EncodeWindow/PushSample call. Clone it to retain it longer.
//
//csecg:hotpath one call per 2-second window; must not allocate
func (e *Encoder) EncodeWindow(window []int16) (*Packet, error) {
	if len(window) != e.p.N {
		return nil, fmt.Errorf("core: window length %d, want %d", len(window), e.p.N) //csecg:allocok error path, never taken per-sample
	}
	if e.streamIdx != 0 {
		return nil, fmt.Errorf("core: EncodeWindow with %d streamed samples pending", e.streamIdx) //csecg:allocok error path, never taken per-sample
	}
	// Stage 0: clamp to the ADC's physical range (out-of-range input
	// would otherwise wrap the centering subtraction at −32768) and
	// re-center (the baseline carries no information).
	for i, v := range window {
		v = min(max(v, 0), ADCMax)
		e.centred[i] = v - ADCBaseline
	}
	// Stage 1: CS measurement, integer adds only.
	e.phi.MeasureInt(e.y, e.centred)
	return e.finishWindow()
}

// PushSample is the streaming form of EncodeWindow: it feeds one raw
// ADC sample, updating the measurement vector incrementally (d integer
// adds — the work a real mote does in the ADC interrupt, with no window
// buffer at all). Every N-th sample completes a window and returns its
// packet; otherwise the packet is nil. Like EncodeWindow, the returned
// packet is encoder-owned and valid only until the next encode call.
//
//csecg:hotpath runs in the ADC interrupt on the real mote
func (e *Encoder) PushSample(sample int16) (*Packet, error) {
	sample = min(max(sample, 0), ADCMax) // see EncodeWindow's ADC clamp
	e.phi.AddMeasureInt(e.y, e.streamIdx, sample-ADCBaseline)
	e.streamIdx++
	if e.streamIdx < e.p.N {
		return nil, nil
	}
	e.streamIdx = 0
	return e.finishWindow()
}

// finishWindow applies the LSB drop to the accumulated measurements and
// runs the difference and entropy stages. e.y is reset for the next
// streaming window after its contents are consumed.
//
//csecg:hotpath completes every window on the per-sample path
func (e *Encoder) finishWindow() (*Packet, error) {
	// The agreed LSB drop (round-to-nearest arithmetic shift) bounds
	// the difference range. The rounding runs in int64: v + half wraps
	// int32 when v is near MaxInt32, and −(−v + half) wraps outright at
	// v = MinInt32. The local MaxMeasurementShift clamp restates
	// withDefaults' validation where the interval engine can see it.
	if s := e.p.MeasurementShift; s > 0 {
		if s > MaxMeasurementShift {
			s = MaxMeasurementShift
		}
		half := int64(1) << (s - 1)
		for i, v := range e.y {
			if v >= 0 {
				e.y[i] = int32((int64(v) + half) >> s)
			} else {
				e.y[i] = int32(-((-int64(v) + half) >> s))
			}
		}
	}
	isKey := e.forceKey || e.p.KeyFrameInterval <= 1 || e.seq%uint32(e.p.KeyFrameInterval) == 0
	e.forceKey = false
	var pkt *Packet
	if isKey {
		pkt = e.encodeKey()
	} else {
		var err error
		pkt, err = e.encodeDelta()
		if err != nil {
			return nil, err
		}
	}
	copy(e.prevY, e.y)
	for i := range e.y {
		e.y[i] = 0
	}
	e.seq++
	return pkt, nil
}

// encodeKey packs the measurements raw as little-endian int16 (the
// measurement of a zero-centered 11-bit window through a weight-d binary
// column fits comfortably: |y| ≤ d·1024 = 12288 for d=12) into the
// preallocated key payload buffer.
//
//csecg:hotpath key-frame half of the window completion path
func (e *Encoder) encodeKey() *Packet {
	for i, v := range e.y {
		binary.LittleEndian.PutUint16(e.keyPayload[2*i:], uint16(clampInt16(v)))
	}
	e.pkt = Packet{Seq: e.seq, Kind: KindKey, Payload: e.keyPayload}
	return &e.pkt
}

// encodeDelta Huffman-codes the measurement differences. Differences
// outside [−256, 254] use the escape codeword followed by a raw 24-bit
// value (two's complement), wide enough for any column weight.
//
//csecg:hotpath delta-frame half of the window completion path
func (e *Encoder) encodeDelta() (*Packet, error) {
	e.symbols = e.symbols[:0]
	e.escapes = e.escapes[:0]
	for i, v := range e.y {
		d := v - e.prevY[i] //csecg:rangeok both operands are measurements: |y| ≤ d·ADCBaseline = 12288 after the ADC clamp (encodeKey's comment), so |d| ≤ 24576 ≪ 2³¹
		if d >= -NumDiffSymbols/2 && d < NumDiffSymbols/2-1 {
			e.symbols = append(e.symbols, int(d)+NumDiffSymbols/2) //csecg:allocok capacity M, preallocated
		} else {
			e.symbols = append(e.symbols, EscapeSymbol) //csecg:allocok capacity M, preallocated
			e.escapes = append(e.escapes, d)            //csecg:allocok capacity M, preallocated
		}
	}
	e.bw.Reset()
	esc := 0
	for _, s := range e.symbols {
		if err := e.p.Codebook.Encode(e.bw, s); err != nil {
			return nil, fmt.Errorf("core: entropy coding: %w", err) //csecg:allocok error path, never taken per-sample
		}
		if s == EscapeSymbol {
			e.bw.WriteBits(uint32(e.escapes[esc])&0xFFFFFF, 24)
			esc++
		}
	}
	e.pkt = Packet{
		Seq:        e.seq,
		Kind:       KindDelta,
		NumSymbols: uint16(len(e.symbols)),
		Payload:    e.bw.Bytes(),
	}
	return &e.pkt, nil
}

func clampInt16(v int32) int16 {
	switch {
	case v > 1<<15-1:
		return 1<<15 - 1
	case v < -1<<15:
		return -1 << 15
	}
	return int16(v)
}

// RawWindowBits is the uncompressed cost of one window: N samples at the
// ADC's 11+1 bit storage width (MIT-BIH stores 11-bit samples in 12-bit
// fields; streaming uncompressed sends the same).
func (e *Encoder) RawWindowBits() int { return e.p.N * 12 }
