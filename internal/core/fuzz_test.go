package core

import (
	"bytes"
	"testing"
)

// FuzzUnmarshalPacket hardens the wire parser: arbitrary bytes must
// never panic, and anything accepted must re-marshal to the identical
// wire image (parse/serialize consistency).
func FuzzUnmarshalPacket(f *testing.F) {
	good := &Packet{Seq: 7, Kind: KindDelta, NumSymbols: 256, Payload: []byte{1, 2, 3}}
	blob, _ := good.Marshal()
	f.Add(blob)
	f.Add([]byte{})
	f.Add([]byte{packetMagic})
	f.Add(bytes.Repeat([]byte{0xC5}, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		pkt, n, err := UnmarshalPacket(data)
		if err != nil {
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		re, err := pkt.Marshal()
		if err != nil {
			t.Fatalf("accepted packet failed to marshal: %v", err)
		}
		if !bytes.Equal(re, data[:n]) {
			t.Fatalf("re-marshal differs from accepted wire image")
		}
	})
}

// FuzzDecodeDelta hardens the entropy/difference stage: corrupt payloads
// must produce errors, never panics or silent acceptance of impossible
// symbol counts.
func FuzzDecodeDelta(f *testing.F) {
	params := Params{Seed: 0xF2, M: 64, N: 128, WaveletLevels: 3}
	enc, err := NewEncoder(params)
	if err != nil {
		f.Fatal(err)
	}
	dec, err := NewDecoder[float64](params)
	if err != nil {
		f.Fatal(err)
	}
	dec.SolverOptions.MaxIter = 1
	// Establish sync with a key frame.
	win := make([]int16, 128)
	for i := range win {
		win[i] = int16(1024 + i%7)
	}
	key, err := enc.EncodeWindow(win)
	if err != nil {
		f.Fatal(err)
	}
	if _, err := dec.DecodePacket(key); err != nil {
		f.Fatal(err)
	}
	delta, err := enc.EncodeWindow(win)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(delta.Payload, uint16(delta.NumSymbols))
	f.Add([]byte{}, uint16(64))
	f.Add([]byte{0xFF, 0xFF}, uint16(64))
	seq := delta.Seq
	f.Fuzz(func(t *testing.T, payload []byte, nsym uint16) {
		pkt := &Packet{Seq: seq, Kind: KindDelta, NumSymbols: nsym, Payload: payload}
		res, err := dec.DecodePacket(pkt)
		if err == nil {
			seq++ // accepted: stream advances
			if len(res.Samples) != 128 {
				t.Fatalf("reconstruction length %d", len(res.Samples))
			}
		} else {
			// Errors must desync; re-sync with a key frame for the next
			// fuzz input.
			k := *key
			k.Seq = seq
			blob, _ := k.Marshal()
			rk, _, _ := UnmarshalPacket(blob)
			if _, err := dec.DecodePacket(rk); err != nil {
				t.Fatalf("key frame resync failed: %v", err)
			}
			seq++
		}
	})
}
