package core

import (
	"bytes"
	"testing"
)

// FuzzUnmarshalPacket hardens the wire parser: arbitrary bytes must
// never panic, and anything accepted must re-marshal to the identical
// wire image (parse/serialize consistency).
func FuzzUnmarshalPacket(f *testing.F) {
	good := &Packet{Seq: 7, Kind: KindDelta, NumSymbols: 256, Payload: []byte{1, 2, 3}}
	blob, _ := good.Marshal()
	f.Add(blob)
	f.Add([]byte{})
	f.Add([]byte{packetMagic})
	f.Add(bytes.Repeat([]byte{0xC5}, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		pkt, n, err := UnmarshalPacket(data)
		if err != nil {
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		re, err := pkt.Marshal()
		if err != nil {
			t.Fatalf("accepted packet failed to marshal: %v", err)
		}
		if !bytes.Equal(re, data[:n]) {
			t.Fatalf("re-marshal differs from accepted wire image")
		}
	})
}

// FuzzPacketStream hardens the decoder against hostile packet streams:
// each fuzz input scripts a channel that delivers packets in order,
// drops them, duplicates them, reorders them, truncates, bit-flips or
// burst-corrupts their wire image, forges the payload-length field, or
// injects control-kind packets. The decoder must never panic, must
// reject every single-bit-flipped frame and every ≤16-bit burst at the
// CRC (CRC-16/CCITT detects all single- and double-bit errors and all
// bursts up to 16 bits), must reject control kinds on the data path,
// and must always resynchronize on a final key frame.
func FuzzPacketStream(f *testing.F) {
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0, 1, 0, 3, 0})
	f.Add([]byte{4, 5, 6, 7, 2, 3})
	f.Add(bytes.Repeat([]byte{1}, 20))
	f.Fuzz(func(t *testing.T, ops []byte) {
		params := Params{Seed: 0x77, M: 64, N: 128, WaveletLevels: 3, KeyFrameInterval: 4}
		enc, err := NewEncoder(params)
		if err != nil {
			t.Fatal(err)
		}
		dec, err := NewDecoder[float64](params)
		if err != nil {
			t.Fatal(err)
		}
		dec.SolverOptions.MaxIter = 1
		win := make([]int16, params.N)
		nextWindow := func(i int) []int16 {
			for j := range win {
				win[j] = int16(1024 + (i*13+j)%9 - 4)
			}
			return win
		}
		var stream []*Packet
		encoded := 0
		encodeNext := func() *Packet {
			pkt, err := enc.EncodeWindow(nextWindow(encoded))
			if err != nil {
				t.Fatalf("encoding window %d: %v", encoded, err)
			}
			encoded++
			pkt = pkt.Clone() // the stream retains packets across encode calls
			stream = append(stream, pkt)
			return pkt
		}
		feed := func(p *Packet) {
			res, err := dec.DecodePacket(p)
			if err == nil && len(res.Samples) != params.N {
				t.Fatalf("reconstruction length %d", len(res.Samples))
			}
		}
		var last *Packet
		for i, op := range ops {
			switch op % 10 {
			case 0: // in-order delivery
				last = encodeNext()
				feed(last)
			case 1: // drop: window encoded, never delivered
				last = encodeNext()
			case 2: // duplicate the previous delivery
				if last != nil {
					feed(last)
				}
			case 3: // reorder: deliver a stale packet from the stream
				if len(stream) > 0 {
					feed(stream[int(op)%len(stream)])
				}
			case 4: // truncation must be rejected by the parser
				pkt := encodeNext()
				blob, err := pkt.Marshal()
				if err != nil {
					t.Fatal(err)
				}
				cut := int(op) % len(blob)
				if _, _, err := UnmarshalPacket(blob[:cut]); err == nil && cut < len(blob) {
					t.Fatalf("truncated frame (%d of %d bytes) accepted", cut, len(blob))
				}
			case 5: // single bit flip must be caught by the CRC
				pkt := encodeNext()
				blob, err := pkt.Marshal()
				if err != nil {
					t.Fatal(err)
				}
				pos := (int(op) + i) % len(blob)
				blob[pos] ^= 1 << (op & 7)
				// The CRC detects every single-bit error over a
				// fixed-length region; only a flip in the length field
				// (bytes 8-9) moves the CRC window itself and is
				// detected merely probabilistically.
				if _, _, err := UnmarshalPacket(blob); err == nil && pos != 8 && pos != 9 {
					t.Fatalf("CRC accepted a bit-flipped frame at byte %d", pos)
				}
			case 6: // control packets on the data path are rejected
				if _, err := dec.DecodePacket(NewNack(uint32(i), 1)); err == nil {
					t.Fatal("decoder accepted a NACK")
				}
			case 7:
				if _, err := dec.DecodePacket(NewKeyRequest(uint32(i))); err == nil {
					t.Fatal("decoder accepted a key request")
				}
			case 8: // two-byte burst corruption is within the CRC's guarantee
				pkt := encodeNext()
				blob, err := pkt.Marshal()
				if err != nil {
					t.Fatal(err)
				}
				pos := (int(op) + i) % (len(blob) - 1)
				blob[pos] ^= byte(0x5A + i)
				blob[pos+1] ^= byte(0xA5 ^ op)
				// A ≤16-bit burst is always detected unless it lands on
				// the length field (bytes 8-9), which moves the CRC
				// window itself.
				if _, _, err := UnmarshalPacket(blob); err == nil && !(pos >= 7 && pos <= 9) {
					t.Fatalf("CRC accepted a burst-corrupted frame at byte %d", pos)
				}
			case 9: // forged payload-length field: truncated payload must
				// never panic; if the parse somehow survives, the decoder
				// must still not panic on the result
				pkt := encodeNext()
				blob, err := pkt.Marshal()
				if err != nil {
					t.Fatal(err)
				}
				blob[8] = byte(op * 7)
				blob[9] = byte(i)
				if mangled, _, err := UnmarshalPacket(blob); err == nil {
					feed(mangled)
				}
			}
		}
		// Whatever the channel did, a fresh key frame resynchronizes.
		enc.ForceKeyFrame()
		if _, err := dec.DecodePacket(encodeNext()); err != nil {
			t.Fatalf("key frame failed to resync after hostile stream: %v", err)
		}
	})
}

// FuzzDecodeDelta hardens the entropy/difference stage: corrupt payloads
// must produce errors, never panics or silent acceptance of impossible
// symbol counts.
func FuzzDecodeDelta(f *testing.F) {
	params := Params{Seed: 0xF2, M: 64, N: 128, WaveletLevels: 3}
	enc, err := NewEncoder(params)
	if err != nil {
		f.Fatal(err)
	}
	dec, err := NewDecoder[float64](params)
	if err != nil {
		f.Fatal(err)
	}
	dec.SolverOptions.MaxIter = 1
	// Establish sync with a key frame.
	win := make([]int16, 128)
	for i := range win {
		win[i] = int16(1024 + i%7)
	}
	key, err := enc.EncodeWindow(win)
	if err != nil {
		f.Fatal(err)
	}
	key = key.Clone() // retained for resync across later encode calls
	if _, err := dec.DecodePacket(key); err != nil {
		f.Fatal(err)
	}
	delta, err := enc.EncodeWindow(win)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(delta.Payload, uint16(delta.NumSymbols))
	f.Add([]byte{}, uint16(64))
	f.Add([]byte{0xFF, 0xFF}, uint16(64))
	seq := delta.Seq
	f.Fuzz(func(t *testing.T, payload []byte, nsym uint16) {
		pkt := &Packet{Seq: seq, Kind: KindDelta, NumSymbols: nsym, Payload: payload}
		res, err := dec.DecodePacket(pkt)
		if err == nil {
			seq++ // accepted: stream advances
			if len(res.Samples) != 128 {
				t.Fatalf("reconstruction length %d", len(res.Samples))
			}
		} else {
			// Errors must desync; re-sync with a key frame for the next
			// fuzz input.
			k := *key
			k.Seq = seq
			blob, _ := k.Marshal()
			rk, _, _ := UnmarshalPacket(blob)
			if _, err := dec.DecodePacket(rk); err != nil {
				t.Fatalf("key frame resync failed: %v", err)
			}
			seq++
		}
	})
}
