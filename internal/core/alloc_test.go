package core

import "testing"

// The encoder's per-sample path must allocate nothing after
// construction — the firmware it models has only static buffers. The
// noalloc analyzer enforces this statically over the //csecg:hotpath
// functions; these tests back the static claim with the runtime
// allocator. testing.AllocsPerRun performs a warm-up call first, so
// one-time amortized growth (the bit writer's first window) does not
// count against the steady state.

func TestPushSampleZeroAllocs(t *testing.T) {
	enc, err := NewEncoder(Params{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	n := enc.Params().N
	sample, idx := int16(1024), 0
	avg := testing.AllocsPerRun(3*n, func() {
		if _, err := enc.PushSample(sample + int16(idx%9)); err != nil {
			t.Fatal(err)
		}
		idx++
	})
	if avg != 0 {
		t.Errorf("PushSample allocates %.2f times per call, want 0", avg)
	}
}

func TestEncodeWindowSteadyStateZeroAllocs(t *testing.T) {
	enc, err := NewEncoder(Params{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	win := make([]int16, enc.Params().N)
	for i := range win {
		win[i] = int16(1024 + i%5)
	}
	// Consume the initial key frame so every measured call is the
	// steady-state delta path. The key-frame interval (64) exceeds the
	// run count, so no scheduled key frame lands inside the measurement.
	if _, err := enc.EncodeWindow(win); err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(40, func() {
		pkt, err := enc.EncodeWindow(win)
		if err != nil {
			t.Fatal(err)
		}
		if pkt.Kind != KindDelta {
			t.Fatalf("expected steady-state delta frame, got kind %d", pkt.Kind)
		}
	})
	if avg != 0 {
		t.Errorf("steady-state EncodeWindow allocates %.2f times per call, want 0", avg)
	}
}

func TestEncodeWindowKeyFrameZeroAllocs(t *testing.T) {
	enc, err := NewEncoder(Params{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	win := make([]int16, enc.Params().N)
	for i := range win {
		win[i] = int16(1024 + i%5)
	}
	avg := testing.AllocsPerRun(20, func() {
		enc.ForceKeyFrame()
		pkt, err := enc.EncodeWindow(win)
		if err != nil {
			t.Fatal(err)
		}
		if pkt.Kind != KindKey {
			t.Fatalf("expected key frame, got kind %d", pkt.Kind)
		}
	})
	if avg != 0 {
		t.Errorf("key-frame EncodeWindow allocates %.2f times per call, want 0", avg)
	}
}
