package core

import (
	"encoding/binary"
	"fmt"
)

// PacketKind distinguishes the downlink data frames — key frames
// (measurements coded raw, stream resynchronization points) and delta
// frames (Huffman-coded differences against the previous window's
// measurements) — from the uplink control frames of the NACK resync
// protocol.
type PacketKind uint8

// Packet kinds.
const (
	KindKey PacketKind = iota + 1
	KindDelta
	// KindNack travels coordinator→mote: the receiver detected a
	// sequence gap and requests selective retransmission of a short
	// range from the mote's bounded retransmit buffer. Seq carries the
	// first missing sequence number; the one-byte payload the count.
	KindNack
	// KindKeyRequest travels coordinator→mote: the receiver has given
	// up on retransmission (buffer aged out, or too many NACKs lost)
	// and asks for an on-demand key frame to resynchronize. Seq carries
	// the receiver's next expected sequence number.
	KindKeyRequest
)

// IsControl reports whether the kind travels on the coordinator→mote
// control channel rather than the data downlink.
func (k PacketKind) IsControl() bool { return k == KindNack || k == KindKeyRequest }

// MaxNackRange bounds a single NACK's retransmission request; it is the
// largest ring any mote build can afford within the MSP430 RAM budget.
const MaxNackRange = 8

// NewNack builds a control packet requesting retransmission of count
// packets starting at firstSeq. The count saturates at MaxNackRange.
func NewNack(firstSeq uint32, count int) *Packet {
	if count < 1 {
		count = 1
	}
	if count > MaxNackRange {
		count = MaxNackRange
	}
	return &Packet{Seq: firstSeq, Kind: KindNack, Payload: []byte{byte(count)}}
}

// NackRange extracts the requested retransmission range from a KindNack
// packet.
func NackRange(p *Packet) (firstSeq uint32, count int, err error) {
	if p.Kind != KindNack {
		return 0, 0, fmt.Errorf("core: NackRange on %d packet", p.Kind)
	}
	if len(p.Payload) != 1 || p.Payload[0] < 1 || int(p.Payload[0]) > MaxNackRange {
		return 0, 0, fmt.Errorf("core: malformed NACK payload %v", p.Payload)
	}
	return p.Seq, int(p.Payload[0]), nil
}

// NewKeyRequest builds a control packet asking for an on-demand key
// frame; nextSeq is the receiver's next expected sequence number.
func NewKeyRequest(nextSeq uint32) *Packet {
	return &Packet{Seq: nextSeq, Kind: KindKeyRequest}
}

// Packet is one encoded 2-second window as it travels over the wireless
// link.
type Packet struct {
	// Seq is the window sequence number.
	Seq uint32
	// Kind marks key vs delta coding.
	Kind PacketKind
	// NumSymbols is the entropy-coded symbol count (delta frames).
	NumSymbols uint16
	// Payload carries the Huffman bitstream (delta) or packed 16-bit
	// measurements (key).
	Payload []byte
}

// Clone returns a deep copy of p with its own payload buffer. Encoder
// packets alias the encoder's single TX buffer and are overwritten by
// the next encode call; any component that retains a packet across
// windows (retransmit rings, reassembly buffers, recorded sessions)
// must clone it first.
func (p *Packet) Clone() *Packet {
	q := *p
	if p.Payload != nil {
		q.Payload = make([]byte, len(p.Payload))
		copy(q.Payload, p.Payload)
	}
	return &q
}

// packet wire layout (little-endian):
//
//	magic      uint8  = 0xC5
//	kind       uint8
//	seq        uint32
//	numSymbols uint16
//	payloadLen uint16
//	payload    []byte
//	crc        uint16 (CRC-16/CCITT-FALSE, over header+payload)
const (
	packetMagic  = 0xC5
	headerBytes  = 10
	trailerBytes = 2
)

// WireSize returns the marshaled size in bytes.
func (p *Packet) WireSize() int { return headerBytes + len(p.Payload) + trailerBytes }

// Marshal serializes the packet.
func (p *Packet) Marshal() ([]byte, error) {
	if len(p.Payload) > 0xFFFF {
		return nil, fmt.Errorf("core: payload %d bytes exceeds format limit", len(p.Payload))
	}
	out := make([]byte, p.WireSize())
	out[0] = packetMagic
	out[1] = byte(p.Kind)
	binary.LittleEndian.PutUint32(out[2:], p.Seq)
	binary.LittleEndian.PutUint16(out[6:], p.NumSymbols)
	binary.LittleEndian.PutUint16(out[8:], uint16(len(p.Payload)))
	copy(out[headerBytes:], p.Payload)
	sum := crc16(out[:headerBytes+len(p.Payload)])
	binary.LittleEndian.PutUint16(out[headerBytes+len(p.Payload):], sum)
	return out, nil
}

// UnmarshalPacket parses one packet from data, returning the packet and
// the number of bytes consumed.
func UnmarshalPacket(data []byte) (*Packet, int, error) {
	if len(data) < headerBytes+trailerBytes {
		return nil, 0, fmt.Errorf("core: packet truncated (%d bytes)", len(data))
	}
	if data[0] != packetMagic {
		return nil, 0, fmt.Errorf("core: bad packet magic %#x", data[0])
	}
	kind := PacketKind(data[1])
	switch kind {
	case KindKey, KindDelta, KindNack, KindKeyRequest:
	default:
		return nil, 0, fmt.Errorf("core: unknown packet kind %d", kind)
	}
	payloadLen := int(binary.LittleEndian.Uint16(data[8:]))
	total := headerBytes + payloadLen + trailerBytes
	if len(data) < total {
		return nil, 0, fmt.Errorf("core: packet truncated (%d of %d bytes)", len(data), total)
	}
	wantSum := binary.LittleEndian.Uint16(data[headerBytes+payloadLen:])
	if got := crc16(data[:headerBytes+payloadLen]); got != wantSum {
		return nil, 0, fmt.Errorf("core: packet CRC mismatch (%#x != %#x)", got, wantSum)
	}
	p := &Packet{
		Seq:        binary.LittleEndian.Uint32(data[2:]),
		Kind:       kind,
		NumSymbols: binary.LittleEndian.Uint16(data[6:]),
		Payload:    append([]byte(nil), data[headerBytes:headerBytes+payloadLen]...),
	}
	return p, total, nil
}

