// Package prof arms the runtime's CPU, mutex and block profilers
// together for the CLI tools' -pprof flag. The CPU profile alone hides
// exactly the problems a streaming coordinator has — goroutines
// blocked on locks or channel waits burn no CPU — so one flag emits
// all three views of the run.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// mutexFraction samples 1/5 of mutex contention events; blockRateNs
// records blocking events lasting a microsecond or more. Both are
// cheap enough to leave on for a whole benchmark run.
const (
	mutexFraction = 5
	blockRateNs   = 1000
)

// Profiler is an armed profiling session.
type Profiler struct {
	cpu  *os.File
	base string
}

// Start begins a CPU profile to the named file and arms the mutex and
// block profilers; Stop writes their dumps next to it.
func Start(base string) (*Profiler, error) {
	f, err := os.Create(base)
	if err != nil {
		return nil, err
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close() //csecg:errok profile never started, nothing buffered
		return nil, err
	}
	runtime.SetMutexProfileFraction(mutexFraction)
	runtime.SetBlockProfileRate(blockRateNs)
	return &Profiler{cpu: f, base: base}, nil
}

// Stop finishes the CPU profile and writes <base>.mutex and
// <base>.block, then disarms the samplers. It returns the first error
// encountered but always attempts every dump.
func (p *Profiler) Stop() error {
	pprof.StopCPUProfile()
	err := p.cpu.Close()
	for _, kind := range []string{"mutex", "block"} {
		if werr := dump(kind, p.base+"."+kind); err == nil {
			err = werr
		}
	}
	runtime.SetMutexProfileFraction(0)
	runtime.SetBlockProfileRate(0)
	return err
}

// dump writes one named runtime profile to path.
func dump(kind, path string) error {
	prof := pprof.Lookup(kind)
	if prof == nil {
		return fmt.Errorf("prof: unknown profile %q", kind)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := prof.WriteTo(f, 0); err != nil {
		f.Close() //csecg:errok write already failed
		return err
	}
	return f.Close()
}
