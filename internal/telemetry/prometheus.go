package telemetry

import (
	"fmt"
	"io"
	"strings"
)

// WritePrometheus dumps the registry in the Prometheus text exposition
// format: counters and gauges as single samples, histograms as
// cumulative le-bucketed series with _sum and _count. Output is sorted
// by metric name, so a dump is reproducible for a given session.
//
//csecg:host export-time formatting
func WritePrometheus(w io.Writer, r *Registry) error {
	var b strings.Builder
	for _, name := range r.CounterNames() {
		fmt.Fprintf(&b, "# TYPE %s counter\n%s %d\n", name, name, r.Counter(name).Load())
	}
	for _, name := range r.GaugeNames() {
		g := r.Gauge(name)
		fmt.Fprintf(&b, "# TYPE %s gauge\n%s %d\n%s_max %d\n", name, name, g.Load(), name, g.Max())
	}
	for _, name := range r.HistogramNames() {
		h := r.Histogram(name)
		fmt.Fprintf(&b, "# TYPE %s histogram\n", name)
		var cum int64
		top := 0
		for bkt := 0; bkt < NumBuckets; bkt++ {
			if h.Bucket(bkt) > 0 {
				top = bkt
			}
		}
		for bkt := 0; bkt <= top; bkt++ {
			cum += h.Bucket(bkt)
			fmt.Fprintf(&b, "%s_bucket{le=\"%d\"} %d\n", name, BucketHigh(bkt), cum)
		}
		fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d\n", name, h.Count())
		fmt.Fprintf(&b, "%s_sum %d\n%s_count %d\n", name, h.Sum(), name, h.Count())
	}
	_, err := io.WriteString(w, b.String())
	return err
}
