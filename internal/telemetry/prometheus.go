package telemetry

import (
	"fmt"
	"io"
	"strings"
)

// Label is one Prometheus label pair attached to every sample of a
// labeled export (WritePrometheusLabeled). Values are escaped per the
// text exposition format at write time, so any string is safe.
type Label struct {
	Key, Value string
}

// escapeLabelValue escapes a label value per the Prometheus text
// exposition format: backslash, double quote and line feed.
func escapeLabelValue(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var b strings.Builder
	for _, r := range s {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// escapeHelp escapes a # HELP docstring: backslash and line feed (the
// format leaves double quotes alone outside label values).
func escapeHelp(s string) string {
	if !strings.ContainsAny(s, "\\\n") {
		return s
	}
	var b strings.Builder
	for _, r := range s {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// labelSet renders the shared labels as a `{k="v",...}` block ("" when
// empty); extra, when non-empty, is appended verbatim as a final
// pre-escaped pair (the histogram "le" bound).
func labelSet(labels []Label, extra string) string {
	if len(labels) == 0 && extra == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=\"%s\"", l.Key, escapeLabelValue(l.Value))
	}
	if extra != "" {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extra)
	}
	b.WriteByte('}')
	return b.String()
}

// WritePrometheus dumps the registry in the Prometheus text exposition
// format: counters and gauges as single samples, histograms as
// cumulative le-bucketed series with _sum and _count. Output is sorted
// by metric name, so a dump is reproducible for a given session.
//
//csecg:host export-time formatting
func WritePrometheus(w io.Writer, r *Registry) error {
	return WritePrometheusLabeled(w, r)
}

// WritePrometheusLabeled is WritePrometheus with a fixed label set
// attached to every sample — the monitor's multi-session /metrics
// endpoint distinguishes streams with a session label this way. Label
// values and # HELP text are escaped per the exposition format.
//
//csecg:host export-time formatting
func WritePrometheusLabeled(w io.Writer, r *Registry, labels ...Label) error {
	ls := labelSet(labels, "")
	var b strings.Builder
	writeHelp := func(name string) {
		if help := r.Help(name); help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", name, escapeHelp(help))
		}
	}
	for _, name := range r.CounterNames() {
		writeHelp(name)
		//csecg:metricok export loop re-reads series already registered
		fmt.Fprintf(&b, "# TYPE %s counter\n%s%s %d\n", name, name, ls, r.Counter(name).Load())
	}
	for _, name := range r.GaugeNames() {
		g := r.Gauge(name) //csecg:metricok export loop re-reads series already registered
		writeHelp(name)
		fmt.Fprintf(&b, "# TYPE %s gauge\n%s%s %d\n%s_max%s %d\n", name, name, ls, g.Load(), name, ls, g.Max())
	}
	for _, name := range r.HistogramNames() {
		h := r.Histogram(name) //csecg:metricok export loop re-reads series already registered
		writeHelp(name)
		fmt.Fprintf(&b, "# TYPE %s histogram\n", name)
		var cum int64
		top := 0
		for bkt := 0; bkt < NumBuckets; bkt++ {
			if h.Bucket(bkt) > 0 {
				top = bkt
			}
		}
		for bkt := 0; bkt <= top; bkt++ {
			cum += h.Bucket(bkt)
			fmt.Fprintf(&b, "%s_bucket%s %d\n", name,
				labelSet(labels, fmt.Sprintf("le=\"%d\"", BucketHigh(bkt))), cum)
		}
		fmt.Fprintf(&b, "%s_bucket%s %d\n", name, labelSet(labels, `le="+Inf"`), h.Count())
		fmt.Fprintf(&b, "%s_sum%s %d\n%s_count%s %d\n", name, ls, h.Sum(), name, ls, h.Count())
	}
	_, err := io.WriteString(w, b.String())
	return err
}
