package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// WriteJSONL streams events as one JSON object per line — the
// machine-readable event log (round-trippable through ReadJSONL).
//
//csecg:host export-time formatting
func WriteJSONL(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range events {
		if err := enc.Encode(&events[i]); err != nil {
			return fmt.Errorf("telemetry: encoding event %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// ReadJSONL parses an event log written by WriteJSONL.
//
//csecg:host export-time formatting
func ReadJSONL(r io.Reader) ([]Event, error) {
	var events []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			return nil, fmt.Errorf("telemetry: event log line %d: %w", line, err)
		}
		events = append(events, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("telemetry: reading event log: %w", err)
	}
	return events, nil
}
