// Package telemetry is the instrumentation substrate of the pipeline:
// integer-only, zero-alloc counters, gauges and log-bucketed latency
// histograms that hotpath code records into, plus a span-based tracer
// that follows each 2-second window through every pipeline stage
// (sample → CS-sample → diff → Huffman → TX → loss/NACK/retransmit →
// RX → reassemble → FISTA → reconstruct).
//
// The recording side obeys the same embedded constraints csecg-vet
// enforces on the encoder: Counter.Add, Gauge.Set and
// Histogram.Observe are //csecg:hotpath (allocation-free, verified by
// AllocsPerRun tests) and take only int64 ticks, so device-side
// packages can call them without tripping the nofpu analyzer. Float
// conversion — percentiles, means, rate math — happens exclusively on
// the host side at export time and is marked //csecg:host.
//
// Three exporters turn a session's telemetry into files:
//
//   - WritePrometheus: a Prometheus text-format metrics dump;
//   - WriteJSONL / ReadJSONL: a round-trippable JSONL event log;
//   - WriteChromeTrace: Chrome trace_event JSON loadable in
//     chrome://tracing or Perfetto.
//
// All timing is injectable through the Clock interface so traces are
// reproducible in tests (the determinism analyzer bans bare time.Now
// in library packages); WallClock is the production implementation.
package telemetry
