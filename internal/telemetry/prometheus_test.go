package telemetry

import (
	"strings"
	"testing"
)

// TestPrometheusEscaping drives the exporter with help text and label
// values containing every character the exposition format requires
// escaping — quotes, backslashes and newlines — and checks the escaped
// forms land on the wire.
func TestPrometheusEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("windows_total").Add(3)
	r.SetHelp("windows_total", "windows \"decoded\"\nper session C:\\path")
	var b strings.Builder
	err := WritePrometheusLabeled(&b, r,
		Label{Key: "session", Value: `rec "100"` + "\n" + `C:\data`},
		Label{Key: "mode", Value: "NEON"})
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	wantHelp := `# HELP windows_total windows "decoded"\nper session C:\\path` + "\n"
	if !strings.Contains(out, wantHelp) {
		t.Errorf("HELP not escaped:\n%s", out)
	}
	wantSample := `windows_total{session="rec \"100\"\nC:\\data",mode="NEON"} 3`
	if !strings.Contains(out, wantSample) {
		t.Errorf("label value not escaped, want %q in:\n%s", wantSample, out)
	}
	// A raw newline inside a sample line would corrupt the format: every
	// line must start with # or the metric name.
	for _, line := range strings.Split(strings.TrimSuffix(out, "\n"), "\n") {
		if line == "" || !(strings.HasPrefix(line, "#") || strings.HasPrefix(line, "windows_total")) {
			t.Errorf("malformed exposition line %q", line)
		}
	}
}

// TestPrometheusLabeledHistogram checks that the shared labels compose
// with the le bound on every bucket line.
func TestPrometheusLabeledHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_ns")
	h.Observe(3)
	h.Observe(100)
	r.Gauge("depth").Set(7)
	var b strings.Builder
	if err := WritePrometheusLabeled(&b, r, Label{Key: "s", Value: "x"}); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`lat_ns_bucket{s="x",le="3"} 1`,
		`lat_ns_bucket{s="x",le="+Inf"} 2`,
		`lat_ns_sum{s="x"} 103`,
		`lat_ns_count{s="x"} 2`,
		`depth{s="x"} 7`,
		`depth_max{s="x"} 7`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

// TestPrometheusUnlabeledUnchanged pins the unlabeled format so
// existing -metrics consumers keep parsing.
func TestPrometheusUnlabeledUnchanged(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total").Inc()
	var b strings.Builder
	if err := WritePrometheus(&b, r); err != nil {
		t.Fatal(err)
	}
	want := "# TYPE c_total counter\nc_total 1\n"
	if b.String() != want {
		t.Errorf("got %q, want %q", b.String(), want)
	}
}
