package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
)

// Causal span tracing (DESIGN.md §14): every window carries one trace
// ID from sample-push to quality scoring, and its lifecycle decomposes
// into a tree of spans whose depth-1 leaves tile the end-to-end decode
// latency exactly — per-stage durations sum to the recorded latency, so
// critical-path attribution is arithmetic, not guesswork. Capture is
// allocation-free on the hotpath: the tracer owns a fixed ring of
// preallocated window slots and fixed-capacity span arrays; tail
// sampling copies full trees out only for anomalous windows (SLO-bad,
// degraded, deadline-cut, retransmitted, rung-changed, shed, CRC-hit
// slots) plus a top-k latency reservoir.

// Causal span stage names beyond the flat window-lifecycle stages of
// window.go. Gap stages make the tiling exact: whenever pipeline
// stations idle between productive stages, the wait itself becomes a
// leaf, so nothing on the critical path hides between spans.
const (
	// StageWindow is the root span of a window's trace: acquisition end
	// to reconstruction available — its duration is the decode latency.
	StageWindow = "window"
	// StageEncodeWait is the mote-side stall when the previous window's
	// encode/transmit (or retransmit service) is still holding the CPU
	// past this window's acquisition end.
	StageEncodeWait = "encode-wait"
	// StageRetransmitWait is the gap between a destroyed transmission
	// and the NACK-driven retransmit leaving the mote's ring.
	StageRetransmitWait = "retransmit-wait"
	// StageRetransmit is one retransmission's airtime; Span.Attempt
	// numbers the attempts of the NACK ladder.
	StageRetransmit = "retransmit"
	// StageLinkTransit is time in flight or held by the channel's
	// reorder model between transmit end and coordinator arrival.
	StageLinkTransit = "link-transit"
	// StageQueueWait is admission-queue deferral at the coordinator
	// (a window admitted but decoded in a later slot).
	StageQueueWait = "queue-wait"
	// StageRungChange is a zero-duration marker leaf recorded when the
	// degradation ladder moved between the previous decode and this one;
	// Span.Rung carries the new rung.
	StageRungChange = "rung-change"
)

// Solver stages of the degradation ladder, named algorithm/iter-divisor
// — the coordinator's Rung.SolverStage returns the matching name, and a
// cross-package test pins the two lists together.
const (
	SolverStageFISTA1 = "fista/1"
	SolverStageFISTA2 = "fista/2"
	SolverStageGPSR2  = "gpsr/2"
	SolverStageGPSR4  = "gpsr/4"
)

// contStageNames are the names of FISTA continuation sub-stage spans
// (children of the solver leaf, excluded from stage histograms).
var contStageNames = [8]string{
	"stage/0", "stage/1", "stage/2", "stage/3",
	"stage/4", "stage/5", "stage/6", "stage/7",
}

// ContStageName returns the constant name of continuation stage i
// (clamped), without allocating.
//
//csecg:hotpath
func ContStageName(i int) string {
	if i < 0 {
		i = 0
	}
	if i >= len(contStageNames) {
		i = len(contStageNames) - 1
	}
	return contStageNames[i]
}

// SpanStages is the closed set of depth-1 leaf stages rolled into the
// csecg_window_stage_seconds histograms, in pipeline order.
func SpanStages() []string {
	return []string{
		StageEncodeWait, StageCSSample, StageDiff, StageHuffman, StageTX,
		StageRetransmitWait, StageRetransmit, StageLinkTransit,
		StageReassemble, StageQueueWait,
		SolverStageFISTA1, SolverStageFISTA2, SolverStageGPSR2, SolverStageGPSR4,
		StageReconstruct,
	}
}

// StageSecondsMetric is the per-stage latency-contribution histogram
// served with exemplar links (metric → trace ID → bundle).
const StageSecondsMetric = "csecg_window_stage_seconds"

// FlowWindow names the Chrome-trace flow arrow that stitches one
// window's causal chain across the mote, link and coordinator tracks;
// the flow's id is the window's trace ID.
const FlowWindow = "window-flow"

// Anomaly flags of a window trace; any set flag makes the full span
// tree eligible for tail-sampling retention.
const (
	// FlagBad marks a window past the quality SLO's "good" boundary.
	FlagBad uint32 = 1 << iota
	// FlagDegraded marks a reduced-quality release (ladder off nominal
	// or deadline-cut solve).
	FlagDegraded
	// FlagDeadline marks a solve stopped by the soft deadline.
	FlagDeadline
	// FlagRetransmit marks a window that needed at least one NACK-driven
	// retransmission.
	FlagRetransmit
	// FlagRungChange marks the first decode after a ladder move.
	FlagRungChange
	// FlagShed marks a window dropped by the bounded admission queue;
	// its trace ends at the transport stages and carries no latency.
	FlagShed
	// FlagCRC marks a window whose pipeline interval saw at least one
	// CRC-rejected frame (frame-level rejects carry no trustworthy
	// sequence number, so attribution is to the interval, not the frame).
	FlagCRC
)

// flagNames renders the flag bits in declaration order.
var flagNames = []struct {
	bit  uint32
	name string
}{
	{FlagBad, "bad"},
	{FlagDegraded, "degraded"},
	{FlagDeadline, "deadline"},
	{FlagRetransmit, "retransmit"},
	{FlagRungChange, "rung-change"},
	{FlagShed, "shed"},
	{FlagCRC, "crc"},
}

// TraceSeed derives a session's trace-ID seed from its label (FNV-64a),
// so mote, coordinator, flight recorder and replay compute identical
// window trace IDs from the label alone.
func TraceSeed(label string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= 1099511628211
	}
	return h
}

// DeriveTraceID maps (seed, window sequence) to the window's trace ID
// via a splitmix64 step. IDs are never zero — zero means "untraced".
//
//csecg:hotpath
func DeriveTraceID(seed uint64, seq uint32) uint64 {
	z := seed + 0x9E3779B97F4A7C15*(uint64(seq)+1)
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	if z == 0 {
		z = 1
	}
	return z
}

// TraceIDString renders a trace ID the way /sessions, exemplars and
// trace JSONL spell it (16 hex digits; "" for untraced).
func TraceIDString(id uint64) string {
	if id == 0 {
		return ""
	}
	return fmt.Sprintf("%016x", id)
}

// MaxSpans bounds one window's span tree. A window that exhausts the
// budget (deep retransmit ladders) keeps its earliest spans and counts
// the overflow in Dropped — the tree stays honest about truncation.
const MaxSpans = 32

// Span is one node of a window's causal tree. Parent indexes the
// owning WindowTrace's span array (-1 for the root); depth-1 children
// of the root are the tiling leaves whose durations sum to the window's
// end-to-end latency.
type Span struct {
	Stage   string
	Parent  int
	StartNs int64
	DurNs   int64
	// Attempt numbers retransmission attempts (0 for the first
	// transmission).
	Attempt int
	// Rung is the degradation rung of solver and rung-change spans;
	// -1 elsewhere.
	Rung int
}

// WindowTrace is one window's causal span tree. Instances live in the
// CausalTracer's preallocated ring; retained copies are value copies
// (the span array is inline), so capture never allocates.
type WindowTrace struct {
	TraceID   uint64
	Seq       uint32
	Rung      int
	Flags     uint32
	LatencyNs int64
	// Dropped counts spans discarded past MaxSpans.
	Dropped int

	used     bool
	nspans   int
	frontier int64
	spans    [MaxSpans]Span
}

// add appends one span, enforcing the fixed capacity.
//
//csecg:hotpath
func (w *WindowTrace) add(s Span) int {
	if w.nspans >= MaxSpans {
		w.Dropped++
		return -1
	}
	i := w.nspans
	w.spans[i] = s
	w.nspans++
	if s.Parent == 0 && i > 0 {
		if end := s.StartNs + s.DurNs; end > w.frontier {
			w.frontier = end
		}
	}
	return i
}

// Root opens the window's root span at the acquisition end; its
// duration is set to the decode latency when the trace finishes.
//
//csecg:hotpath
func (w *WindowTrace) Root(startNs int64) {
	w.nspans = 0
	w.Dropped = 0
	w.frontier = startNs
	w.add(Span{Stage: StageWindow, Parent: -1, StartNs: startNs, Rung: -1})
}

// Leaf records one depth-1 tiling span.
//
//csecg:hotpath
func (w *WindowTrace) Leaf(stage string, startNs, durNs int64) int {
	return w.add(Span{Stage: stage, Parent: 0, StartNs: startNs, DurNs: durNs, Rung: -1})
}

// AttemptLeaf records a retransmission leaf with its ladder attempt.
//
//csecg:hotpath
func (w *WindowTrace) AttemptLeaf(stage string, startNs, durNs int64, attempt int) int {
	return w.add(Span{Stage: stage, Parent: 0, StartNs: startNs, DurNs: durNs, Attempt: attempt, Rung: -1})
}

// SolverLeaf records the solve leaf tagged with its degradation rung.
//
//csecg:hotpath
func (w *WindowTrace) SolverLeaf(stage string, startNs, durNs int64, rung int) int {
	return w.add(Span{Stage: stage, Parent: 0, StartNs: startNs, DurNs: durNs, Rung: rung})
}

// Child records a sub-span under parent (continuation sub-stages);
// children are excluded from the tiling sum and stage histograms.
//
//csecg:hotpath
func (w *WindowTrace) Child(parent int, stage string, startNs, durNs int64) int {
	if parent < 0 {
		return -1
	}
	return w.add(Span{Stage: stage, Parent: parent, StartNs: startNs, DurNs: durNs, Rung: -1})
}

// Mark sets anomaly flags on the trace.
//
//csecg:hotpath
func (w *WindowTrace) Mark(flags uint32) { w.Flags |= flags }

// MarkRungChange records the zero-duration ladder-move marker and flags
// the trace anomalous.
//
//csecg:hotpath
func (w *WindowTrace) MarkRungChange(atNs int64, rung int) {
	w.Flags |= FlagRungChange
	w.add(Span{Stage: StageRungChange, Parent: 0, StartNs: atNs, Rung: rung})
}

// FrontierNs is the end of the last depth-1 leaf (the root start before
// any leaf exists) — the point the next leaf must start at for the
// tiling to stay gapless.
//
//csecg:hotpath
func (w *WindowTrace) FrontierNs() int64 { return w.frontier }

// Spans returns the recorded spans (valid until the ring slot is
// reused).
func (w *WindowTrace) Spans() []Span { return w.spans[:w.nspans] }

// LeafSumNs sums the depth-1 tiling leaves (rung-change markers are
// zero-duration and cost nothing).
func (w *WindowTrace) LeafSumNs() int64 {
	var sum int64
	for i := 1; i < w.nspans; i++ {
		if w.spans[i].Parent == 0 {
			sum += w.spans[i].DurNs
		}
	}
	return sum
}

// exemplar is the latest trace exemplar of one histogram bucket. The
// pair is written with two independent atomics — a torn read across a
// concurrent scrape can mix two exemplars of the same bucket, which is
// still a valid exemplar-quality sample.
type exemplar struct {
	trace atomic.Uint64
	valNs atomic.Int64
}

// CausalConfig sizes a CausalTracer.
type CausalConfig struct {
	// Label names the session; the trace-ID seed derives from it.
	Label string
	// Ring is the live window-slot count (default 64); it must exceed
	// the transport's reorder window plus the NACK ladder's backoff so
	// retransmit spans land in the still-open trace.
	Ring int
	// RetainAnomalous caps retained anomalous trees (default 128).
	RetainAnomalous int
	// TopK sizes the highest-latency reservoir kept even when nothing
	// was anomalous (default 8).
	TopK int
	// RetainAll keeps every finished tree (bounded by RetainAnomalous)
	// — the harness/CI mode behind exhaustive tiling validation.
	RetainAll bool
}

// CausalTracer captures hierarchical window span trees on a
// preallocated ring, tail-samples anomalous trees, and aggregates
// depth-1 leaves into per-stage latency histograms with trace
// exemplars. Capture methods (Begin/Lookup/Finish and the WindowTrace
// recorders) are allocation-free and belong to the single streaming
// goroutine; the histogram/exemplar side may be scraped concurrently.
type CausalTracer struct {
	label string
	seed  uint64

	ring []WindowTrace

	retained      []WindowTrace
	retainedN     int
	retainDropped int64
	topk          []WindowTrace
	topkN         int
	retainAll     bool
	finished      int64

	stageNames []string
	stageIdx   map[string]int
	stageHists []*Histogram
	exemplars  []*[NumBuckets]exemplar
}

// NewCausalTracer builds a tracer with every slot, reservoir and stage
// series preallocated, so streaming never allocates.
func NewCausalTracer(cfg CausalConfig) *CausalTracer {
	if cfg.Ring <= 0 {
		cfg.Ring = 64
	}
	if cfg.RetainAnomalous <= 0 {
		cfg.RetainAnomalous = 128
	}
	if cfg.TopK < 0 {
		cfg.TopK = 0
	}
	if cfg.TopK == 0 && !cfg.RetainAll {
		cfg.TopK = 8
	}
	names := SpanStages()
	c := &CausalTracer{
		label:      cfg.Label,
		seed:       TraceSeed(cfg.Label),
		ring:       make([]WindowTrace, cfg.Ring),
		retained:   make([]WindowTrace, cfg.RetainAnomalous),
		topk:       make([]WindowTrace, cfg.TopK),
		retainAll:  cfg.RetainAll,
		stageNames: names,
		stageIdx:   make(map[string]int, len(names)),
		stageHists: make([]*Histogram, len(names)),
		exemplars:  make([]*[NumBuckets]exemplar, len(names)),
	}
	for i, n := range names {
		c.stageIdx[n] = i
		c.stageHists[i] = &Histogram{}
		c.exemplars[i] = &[NumBuckets]exemplar{}
	}
	return c
}

// Label returns the session label the seed derives from.
func (c *CausalTracer) Label() string { return c.label }

// Seed returns the session's trace-ID seed — hand it to the receiver
// and flight recorder so every plane computes identical IDs.
func (c *CausalTracer) Seed() uint64 { return c.seed }

// TraceID returns window seq's trace ID.
//
//csecg:hotpath
func (c *CausalTracer) TraceID(seq uint32) uint64 { return DeriveTraceID(c.seed, seq) }

// Begin claims (and resets) the ring slot for window seq and returns
// its trace.
//
//csecg:hotpath
func (c *CausalTracer) Begin(seq uint32) *WindowTrace {
	w := &c.ring[int(seq)%len(c.ring)]
	w.TraceID = DeriveTraceID(c.seed, seq)
	w.Seq = seq
	w.Rung = 0
	w.Flags = 0
	w.LatencyNs = 0
	w.Dropped = 0
	w.used = true
	w.nspans = 0
	w.frontier = 0
	return w
}

// Lookup returns the open trace of window seq, or nil when the slot was
// reused or the trace already finished.
//
//csecg:hotpath
func (c *CausalTracer) Lookup(seq uint32) *WindowTrace {
	w := &c.ring[int(seq)%len(c.ring)]
	if !w.used || w.Seq != seq {
		return nil
	}
	return w
}

// Finish closes window seq's trace: the root duration becomes the
// end-to-end latency, depth-1 leaves roll into the stage histograms
// with this trace as the bucket exemplar, and the tail sampler decides
// retention (anomalous flags, RetainAll, or the top-k reservoir).
//
//csecg:hotpath
func (c *CausalTracer) Finish(w *WindowTrace, rung int, latencyNs int64) {
	w.Rung = rung
	w.LatencyNs = latencyNs
	if w.nspans > 0 {
		w.spans[0].DurNs = latencyNs
	}
	for i := 1; i < w.nspans; i++ {
		s := &w.spans[i]
		if s.Parent != 0 {
			continue
		}
		idx, ok := c.stageIdx[s.Stage]
		if !ok {
			continue
		}
		c.stageHists[idx].Observe(s.DurNs)
		e := &c.exemplars[idx][bucketOf(s.DurNs)]
		e.trace.Store(w.TraceID)
		e.valNs.Store(s.DurNs)
	}
	c.finished++
	w.used = false
	if c.retainAll || w.Flags != 0 {
		c.retain(w)
		return
	}
	c.offerTopK(w)
}

// FinishDropped closes the trace of a window that will never decode
// (shed by the admission queue): no latency, always retained.
//
//csecg:hotpath
func (c *CausalTracer) FinishDropped(w *WindowTrace, flags uint32) {
	w.Flags |= flags
	w.LatencyNs = 0
	w.used = false
	c.retain(w)
}

//csecg:hotpath
func (c *CausalTracer) retain(w *WindowTrace) {
	if c.retainedN >= len(c.retained) {
		c.retainDropped++
		return
	}
	c.retained[c.retainedN] = *w
	c.retainedN++
}

//csecg:hotpath
func (c *CausalTracer) offerTopK(w *WindowTrace) {
	if len(c.topk) == 0 {
		return
	}
	if c.topkN < len(c.topk) {
		c.topk[c.topkN] = *w
		c.topkN++
		return
	}
	min := 0
	for i := 1; i < c.topkN; i++ {
		if c.topk[i].LatencyNs < c.topk[min].LatencyNs {
			min = i
		}
	}
	if w.LatencyNs > c.topk[min].LatencyNs {
		c.topk[min] = *w
	}
}

// Finished counts closed traces (retained or not).
func (c *CausalTracer) Finished() int64 { return c.finished }

// RetainDropped counts anomalous trees lost to the retention cap.
func (c *CausalTracer) RetainDropped() int64 { return c.retainDropped }

// Retained returns the tail-sampled trees — anomalous retentions merged
// with the top-k latency reservoir, deduplicated, in sequence order.
// Call after streaming ends; the copies are independent of the ring.
func (c *CausalTracer) Retained() []WindowTrace {
	seen := make(map[uint64]bool, c.retainedN+c.topkN)
	out := make([]WindowTrace, 0, c.retainedN+c.topkN)
	for i := 0; i < c.retainedN; i++ {
		seen[c.retained[i].TraceID] = true
		out = append(out, c.retained[i])
	}
	for i := 0; i < c.topkN; i++ {
		if !seen[c.topk[i].TraceID] {
			out = append(out, c.topk[i])
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// StageHistogram returns the ns-valued contribution histogram of one
// depth-1 stage (nil for names outside SpanStages).
func (c *CausalTracer) StageHistogram(stage string) *Histogram {
	idx, ok := c.stageIdx[stage]
	if !ok {
		return nil
	}
	return c.stageHists[idx]
}

// SpanRecord is one span in the JSONL trace format.
type SpanRecord struct {
	Stage   string `json:"stage"`
	Parent  int    `json:"parent"`
	StartNs int64  `json:"start_ns"`
	DurNs   int64  `json:"dur_ns"`
	Attempt int    `json:"attempt,omitempty"`
	Rung    int    `json:"rung"`
}

// TraceRecord is one window's span tree in the JSONL trace format —
// the interchange between csecg-bench/RunStream and csecg-triage.
type TraceRecord struct {
	TraceID      string       `json:"trace_id"`
	Session      string       `json:"session,omitempty"`
	Seq          uint32       `json:"seq"`
	Rung         int          `json:"rung"`
	LatencyNs    int64        `json:"latency_ns"`
	Flags        []string     `json:"flags,omitempty"`
	DroppedSpans int          `json:"dropped_spans,omitempty"`
	Spans        []SpanRecord `json:"spans"`
}

// Record converts the trace for JSONL export.
func (w *WindowTrace) Record(session string) TraceRecord {
	r := TraceRecord{
		TraceID:      TraceIDString(w.TraceID),
		Session:      session,
		Seq:          w.Seq,
		Rung:         w.Rung,
		LatencyNs:    w.LatencyNs,
		DroppedSpans: w.Dropped,
		Spans:        make([]SpanRecord, 0, w.nspans),
	}
	for _, f := range flagNames {
		if w.Flags&f.bit != 0 {
			r.Flags = append(r.Flags, f.name)
		}
	}
	for i := 0; i < w.nspans; i++ {
		s := &w.spans[i]
		r.Spans = append(r.Spans, SpanRecord{
			Stage: s.Stage, Parent: s.Parent,
			StartNs: s.StartNs, DurNs: s.DurNs,
			Attempt: s.Attempt, Rung: s.Rung,
		})
	}
	return r
}

// Records converts the retained trees for JSONL export.
func (c *CausalTracer) Records() []TraceRecord {
	kept := c.Retained()
	out := make([]TraceRecord, 0, len(kept))
	for i := range kept {
		out = append(out, kept[i].Record(c.label))
	}
	return out
}

// WriteTraceRecords writes one JSON trace record per line.
//
//csecg:host export-time formatting
func WriteTraceRecords(w io.Writer, recs []TraceRecord) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range recs {
		if err := enc.Encode(&recs[i]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadTraceRecords parses a JSONL trace stream, reporting the first
// malformed line by number.
//
//csecg:host import-time parsing
func ReadTraceRecords(r io.Reader) ([]TraceRecord, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var out []TraceRecord
	line := 0
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		var rec TraceRecord
		if err := json.Unmarshal(b, &rec); err != nil {
			return nil, fmt.Errorf("telemetry: trace line %d: %w", line, err)
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// formatSeconds renders a nanosecond count as seconds for the
// OpenMetrics exposition.
func formatSeconds(ns int64) string {
	return strconv.FormatFloat(float64(ns)/1e9, 'g', -1, 64)
}

// WriteStageSeconds exposes the per-stage contribution histograms as
// csecg_window_stage_seconds{stage=...} with cumulative le buckets in
// seconds and OpenMetrics exemplars linking each bucket to the trace ID
// that last landed in it — the jump-off from a latency panel to
// csecg-triage or a sealed bundle. Observations are integer nanoseconds
// internally; the unit conversion happens only here, at export time.
//
//csecg:host export-time formatting
func (c *CausalTracer) WriteStageSeconds(w io.Writer, labels ...Label) error {
	var b strings.Builder
	fmt.Fprintf(&b, "# HELP %s Per-stage contribution to window decode latency, with trace exemplars\n", StageSecondsMetric)
	fmt.Fprintf(&b, "# TYPE %s histogram\n", StageSecondsMetric)
	for idx, stage := range c.stageNames {
		h := c.stageHists[idx]
		n := h.Count()
		if n == 0 {
			continue
		}
		ls := make([]Label, 0, len(labels)+1)
		ls = append(ls, labels...)
		ls = append(ls, Label{Key: "stage", Value: stage})
		top := 0
		for bkt := 0; bkt < NumBuckets; bkt++ {
			if h.Bucket(bkt) > 0 {
				top = bkt
			}
		}
		var cum int64
		for bkt := 0; bkt <= top; bkt++ {
			cum += h.Bucket(bkt)
			fmt.Fprintf(&b, "%s_bucket%s %d", StageSecondsMetric,
				labelSet(ls, fmt.Sprintf("le=%q", formatSeconds(BucketHigh(bkt)))), cum)
			e := &c.exemplars[idx][bkt]
			if tid := e.trace.Load(); tid != 0 {
				fmt.Fprintf(&b, " # {trace_id=%q} %s", TraceIDString(tid), formatSeconds(e.valNs.Load()))
			}
			b.WriteByte('\n')
		}
		fmt.Fprintf(&b, "%s_bucket%s %d\n", StageSecondsMetric, labelSet(ls, `le="+Inf"`), n)
		fmt.Fprintf(&b, "%s_sum%s %s\n", StageSecondsMetric, labelSet(ls, ""), formatSeconds(h.Sum()))
		fmt.Fprintf(&b, "%s_count%s %d\n", StageSecondsMetric, labelSet(ls, ""), n)
	}
	_, err := io.WriteString(w, b.String())
	return err
}
