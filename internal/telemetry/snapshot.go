package telemetry

// Snapshot is a deterministic point-in-time copy of a registry — the
// flight recorder embeds one in every diagnostics bundle so an incident
// ships with the counters that led up to it. Series are sorted by name
// (the registry never exposes raw map order), making two snapshots of
// identical state byte-identical after JSON encoding.
type Snapshot struct {
	Counters   []CounterSnapshot   `json:"counters,omitempty"`
	Gauges     []GaugeSnapshot     `json:"gauges,omitempty"`
	Histograms []HistogramSnapshot `json:"histograms,omitempty"`
}

// CounterSnapshot is one counter's value.
type CounterSnapshot struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// GaugeSnapshot is one gauge's last value and high-water mark.
type GaugeSnapshot struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
	Max   int64  `json:"max"`
}

// HistogramSnapshot is one histogram's aggregate plus its non-empty
// log-2 buckets (sparse: empty buckets are omitted).
type HistogramSnapshot struct {
	Name    string           `json:"name"`
	Count   int64            `json:"count"`
	Sum     int64            `json:"sum"`
	Max     int64            `json:"max"`
	Buckets []BucketSnapshot `json:"buckets,omitempty"`
}

// BucketSnapshot is one non-empty log-2 bucket.
type BucketSnapshot struct {
	// Bucket is the log-2 bucket index (see BucketLow/BucketHigh).
	Bucket int   `json:"bucket"`
	Count  int64 `json:"count"`
}

// Snapshot copies the registry's current state. It allocates and takes
// the registry mutex per name lookup — a host-side export operation,
// never called from capture hotpaths.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	for _, name := range r.CounterNames() {
		//csecg:metricok enumerating already-registered names, not minting new series
		s.Counters = append(s.Counters, CounterSnapshot{Name: name, Value: r.Counter(name).Load()})
	}
	for _, name := range r.GaugeNames() {
		g := r.Gauge(name) //csecg:metricok enumerating already-registered names, not minting new series
		s.Gauges = append(s.Gauges, GaugeSnapshot{Name: name, Value: g.Load(), Max: g.Max()})
	}
	for _, name := range r.HistogramNames() {
		h := r.Histogram(name) //csecg:metricok enumerating already-registered names, not minting new series
		hs := HistogramSnapshot{Name: name, Count: h.Count(), Sum: h.Sum(), Max: h.Max()}
		for b := 0; b < NumBuckets; b++ {
			if n := h.Bucket(b); n != 0 {
				hs.Buckets = append(hs.Buckets, BucketSnapshot{Bucket: b, Count: n})
			}
		}
		s.Histograms = append(s.Histograms, hs)
	}
	return s
}
