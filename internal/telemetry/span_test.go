package telemetry

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// buildRetransmittedDegradedTrace assembles the span tree of a window
// that lost its first transmission, was NACK-retransmitted twice, and
// decoded on a degraded rung — the anomalous shape the tail sampler
// must retain with exact parentage.
func buildRetransmittedDegradedTrace(c *CausalTracer) *WindowTrace {
	const (
		acqEnd = 4_000_000_000 // window 1 acquired over [2 s, 4 s)
		ms     = 1_000_000
	)
	w := c.Begin(1)
	w.Root(acqEnd)
	w.Leaf(StageCSSample, acqEnd, 2*ms)
	w.Leaf(StageDiff, acqEnd+2*ms, 1*ms)
	w.Leaf(StageHuffman, acqEnd+3*ms, 1*ms)
	w.Leaf(StageTX, acqEnd+4*ms, 20*ms) // destroyed on the wire
	// First NACK round trip: wait, then the retransmit attempt.
	w.Leaf(StageRetransmitWait, acqEnd+24*ms, 1976*ms)
	w.AttemptLeaf(StageRetransmit, acqEnd+2000*ms, 20*ms, 1)
	// Second round: the first retransmit was lost too.
	w.Leaf(StageRetransmitWait, acqEnd+2020*ms, 1980*ms)
	w.AttemptLeaf(StageRetransmit, acqEnd+4000*ms, 20*ms, 2)
	w.Mark(FlagRetransmit)
	// Arrival, reorder hold, degraded solve with continuation children.
	w.Leaf(StageLinkTransit, acqEnd+4020*ms, 10*ms)
	w.Leaf(StageReassemble, acqEnd+4030*ms, 70*ms)
	si := w.SolverLeaf(SolverStageFISTA2, acqEnd+4100*ms, 800*ms, 1)
	w.Child(si, ContStageName(0), acqEnd+4100*ms, 500*ms)
	w.Child(si, ContStageName(1), acqEnd+4600*ms, 300*ms)
	w.MarkRungChange(acqEnd+4100*ms, 1)
	w.Leaf(StageReconstruct, acqEnd+4900*ms, 1*ms)
	w.Mark(FlagDegraded)
	return w
}

func TestSpanTreeGolden(t *testing.T) {
	c := NewCausalTracer(CausalConfig{Label: "record 100"})
	w := buildRetransmittedDegradedTrace(c)
	c.Finish(w, 1, w.LeafSumNs())

	kept := c.Retained()
	if len(kept) != 1 {
		t.Fatalf("retained %d traces, want 1 (anomalous flags set)", len(kept))
	}
	var buf bytes.Buffer
	if err := WriteTraceRecords(&buf, []TraceRecord{kept[0].Record("record 100")}); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "span_tree.golden")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("span tree drifted from golden file.\ngot:  %s\nwant: %s", buf.Bytes(), want)
	}
}

func TestSpanTreeShape(t *testing.T) {
	c := NewCausalTracer(CausalConfig{Label: "record 100"})
	w := buildRetransmittedDegradedTrace(c)
	latency := w.LeafSumNs()
	c.Finish(w, 1, latency)

	kept := c.Retained()
	if len(kept) != 1 {
		t.Fatalf("retained %d traces, want 1", len(kept))
	}
	tr := &kept[0]
	spans := tr.Spans()

	// The root carries the end-to-end latency and parents every leaf.
	if spans[0].Stage != StageWindow || spans[0].Parent != -1 {
		t.Fatalf("span 0 = %+v, want root", spans[0])
	}
	if spans[0].DurNs != latency {
		t.Errorf("root duration %d, want latency %d", spans[0].DurNs, latency)
	}

	// Exact parentage: every depth-1 leaf points at the root, and the
	// continuation children point at the solver leaf.
	solverIdx := -1
	var attempts []int
	for i, s := range spans {
		if i == 0 {
			continue
		}
		switch {
		case strings.HasPrefix(s.Stage, "stage/"):
			if s.Parent != solverIdx {
				t.Errorf("continuation %s parent %d, want solver leaf %d", s.Stage, s.Parent, solverIdx)
			}
		default:
			if s.Parent != 0 {
				t.Errorf("leaf %s parent %d, want 0", s.Stage, s.Parent)
			}
		}
		if s.Stage == SolverStageFISTA2 {
			solverIdx = i
			if s.Rung != 1 {
				t.Errorf("solver leaf rung %d, want 1", s.Rung)
			}
		}
		if s.Stage == StageRetransmit {
			attempts = append(attempts, s.Attempt)
		}
	}
	if solverIdx < 0 {
		t.Error("solver leaf missing")
	}
	if len(attempts) != 2 || attempts[0] != 1 || attempts[1] != 2 {
		t.Errorf("retransmit attempts %v, want [1 2]", attempts)
	}

	// Rung-change marker present and zero-duration.
	foundRungChange := false
	for _, s := range spans {
		if s.Stage == StageRungChange {
			foundRungChange = true
			if s.DurNs != 0 {
				t.Errorf("rung-change span carries duration %d", s.DurNs)
			}
			if s.Rung != 1 {
				t.Errorf("rung-change rung %d, want 1", s.Rung)
			}
		}
	}
	if !foundRungChange {
		t.Error("rung-change span missing")
	}

	// Flags: retransmitted + degraded + rung-change.
	for _, want := range []uint32{FlagRetransmit, FlagDegraded, FlagRungChange} {
		if tr.Flags&want == 0 {
			t.Errorf("flag %#x not set (flags %#x)", want, tr.Flags)
		}
	}

	// Tiling: depth-1 leaves sum to the recorded latency exactly, and
	// they cover [acqEnd, acqEnd+latency) gaplessly.
	if got := tr.LeafSumNs(); got != tr.LatencyNs {
		t.Errorf("leaf sum %d != latency %d", got, tr.LatencyNs)
	}
	frontier := spans[0].StartNs
	for i := 1; i < len(spans); i++ {
		s := spans[i]
		if s.Parent != 0 || s.Stage == StageRungChange {
			continue
		}
		if s.StartNs != frontier {
			t.Errorf("leaf %s starts at %d, want frontier %d (gap in tiling)", s.Stage, s.StartNs, frontier)
		}
		frontier = s.StartNs + s.DurNs
	}
	if frontier != spans[0].StartNs+latency {
		t.Errorf("tiling ends at %d, want %d", frontier, spans[0].StartNs+latency)
	}
}

// TestSpanCaptureZeroAlloc pins the entire capture path — Begin, every
// leaf recorder, flags, Finish with retention — at zero allocations per
// window. This is the hotpath contract csecg-vet noalloc also enforces
// statically.
func TestSpanCaptureZeroAlloc(t *testing.T) {
	c := NewCausalTracer(CausalConfig{Label: "record 100", RetainAll: true, RetainAnomalous: 4})
	var seq uint32
	avg := testing.AllocsPerRun(1000, func() {
		w := c.Begin(seq)
		w.Root(int64(seq) * 2_000_000_000)
		w.Leaf(StageCSSample, 0, 1)
		w.Leaf(StageDiff, 1, 1)
		w.Leaf(StageHuffman, 2, 1)
		w.Leaf(StageTX, 3, 1)
		w.Leaf(StageRetransmitWait, 4, 1)
		w.AttemptLeaf(StageRetransmit, 5, 1, 1)
		w.Leaf(StageLinkTransit, 6, 1)
		w.Leaf(StageReassemble, 7, 1)
		si := w.SolverLeaf(SolverStageFISTA2, 8, 2, 1)
		w.Child(si, ContStageName(0), 8, 1)
		w.Child(si, ContStageName(1), 9, 1)
		w.MarkRungChange(8, 1)
		w.Leaf(StageReconstruct, 10, 1)
		w.Mark(FlagDegraded)
		c.Finish(w, 1, w.LeafSumNs())
		seq++
	})
	if avg != 0 {
		t.Errorf("span capture allocates %.2f per window, want 0", avg)
	}
}

func TestTailSampling(t *testing.T) {
	c := NewCausalTracer(CausalConfig{Label: "s", TopK: 2, RetainAnomalous: 8})
	// 10 clean windows with increasing latency, one anomalous.
	for seq := uint32(0); seq < 10; seq++ {
		w := c.Begin(seq)
		w.Root(int64(seq) * 1000)
		lat := int64(seq+1) * 100
		w.Leaf(StageReassemble, int64(seq)*1000, lat)
		if seq == 3 {
			w.Mark(FlagBad)
		}
		c.Finish(w, 0, lat)
	}
	kept := c.Retained()
	// Expect: the anomalous seq 3 plus the top-2 latency (seq 8, 9).
	want := map[uint32]bool{3: true, 8: true, 9: true}
	if len(kept) != len(want) {
		t.Fatalf("retained %d traces, want %d", len(kept), len(want))
	}
	for _, w := range kept {
		if !want[w.Seq] {
			t.Errorf("retained unexpected seq %d", w.Seq)
		}
	}
	if c.Finished() != 10 {
		t.Errorf("finished %d, want 10", c.Finished())
	}
}

func TestFinishDroppedShed(t *testing.T) {
	c := NewCausalTracer(CausalConfig{Label: "s"})
	w := c.Begin(5)
	w.Root(12_000_000_000)
	w.Leaf(StageTX, 12_000_000_000, 1000)
	c.FinishDropped(w, FlagShed)
	kept := c.Retained()
	if len(kept) != 1 || kept[0].Flags&FlagShed == 0 {
		t.Fatalf("shed window not retained with FlagShed: %+v", kept)
	}
	if kept[0].LatencyNs != 0 {
		t.Errorf("shed window carries latency %d, want 0", kept[0].LatencyNs)
	}
}

func TestTraceIDDerivation(t *testing.T) {
	seed := TraceSeed("record 100")
	if seed != TraceSeed("record 100") {
		t.Error("seed not deterministic")
	}
	if TraceSeed("record 101") == seed {
		t.Error("different labels must derive different seeds")
	}
	a, b := DeriveTraceID(seed, 1), DeriveTraceID(seed, 2)
	if a == b || a == 0 || b == 0 {
		t.Errorf("trace IDs must be distinct and nonzero: %x %x", a, b)
	}
	if s := TraceIDString(a); len(s) != 16 {
		t.Errorf("trace ID string %q, want 16 hex digits", s)
	}
	if TraceIDString(0) != "" {
		t.Error("zero trace ID must render empty")
	}
}

func TestTraceRecordsRoundTrip(t *testing.T) {
	c := NewCausalTracer(CausalConfig{Label: "record 100"})
	w := buildRetransmittedDegradedTrace(c)
	c.Finish(w, 1, w.LeafSumNs())
	recs := c.Records()
	var buf bytes.Buffer
	if err := WriteTraceRecords(&buf, recs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTraceRecords(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("round trip %d records, want %d", len(got), len(recs))
	}
	if got[0].TraceID != recs[0].TraceID || got[0].Seq != recs[0].Seq ||
		got[0].LatencyNs != recs[0].LatencyNs || len(got[0].Spans) != len(recs[0].Spans) {
		t.Errorf("round trip changed record:\ngot  %+v\nwant %+v", got[0], recs[0])
	}
}

func TestWriteStageSecondsExemplars(t *testing.T) {
	c := NewCausalTracer(CausalConfig{Label: "record 100"})
	w := buildRetransmittedDegradedTrace(c)
	c.Finish(w, 1, w.LeafSumNs())
	wantTrace := TraceIDString(c.TraceID(1))

	var buf bytes.Buffer
	if err := c.WriteStageSeconds(&buf, Label{Key: "session", Value: "record 100"}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, frag := range []string{
		"# TYPE csecg_window_stage_seconds histogram",
		`stage="` + SolverStageFISTA2 + `"`,
		`stage="` + StageRetransmit + `"`,
		`session="record 100"`,
		`le="+Inf"`,
		`# {trace_id="` + wantTrace + `"}`,
	} {
		if !strings.Contains(out, frag) {
			t.Errorf("stage-seconds output missing %s\n%s", frag, out)
		}
	}
	// Continuation children must not leak into the stage histograms.
	if strings.Contains(out, `stage="stage/0"`) {
		t.Error("continuation sub-stage leaked into the stage histograms")
	}
}

func TestSpanOverflowCounted(t *testing.T) {
	c := NewCausalTracer(CausalConfig{Label: "s"})
	w := c.Begin(0)
	w.Root(0)
	for i := 0; i < MaxSpans+5; i++ {
		w.Leaf(StageRetransmitWait, int64(i), 1)
	}
	if w.Dropped != 6 { // root + (MaxSpans-1) leaves fit; 6 spill
		t.Errorf("dropped %d spans, want 6", w.Dropped)
	}
}
