package telemetry

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// NumBuckets is the bucket count of a Histogram: bucket 0 collects
// non-positive observations; bucket b (1 ≤ b ≤ 64) collects values
// whose bit length is b, i.e. the range [2^(b−1), 2^b − 1]. Log-2
// bucketing keeps recording a single shift-free bits.Len64 plus one
// atomic add, with ≤ 2× relative quantile error — plenty for latency
// distributions spanning nanoseconds to seconds.
const NumBuckets = 65

// Histogram is a log-bucketed integer distribution. Observing is
// lock-free, allocation-free and integer-only; quantiles, means and
// bucket dumps are host-side reads.
type Histogram struct {
	buckets [NumBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
	max     atomic.Int64
}

// bucketOf maps an observation to its bucket index.
func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	return bits.Len64(uint64(v))
}

// BucketLow returns the smallest value of bucket b (0 for bucket 0).
func BucketLow(b int) int64 {
	if b <= 0 {
		return 0
	}
	return int64(1) << uint(b-1)
}

// BucketHigh returns the largest value of bucket b.
func BucketHigh(b int) int64 {
	if b <= 0 {
		return 0
	}
	if b >= 64 {
		return math.MaxInt64
	}
	return int64(1)<<uint(b) - 1
}

// Observe records one value.
//
//csecg:hotpath
func (h *Histogram) Observe(v int64) {
	h.buckets[bucketOf(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		m := h.max.Load()
		if v <= m || h.max.CompareAndSwap(m, v) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the running sum of observations.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Max returns the largest observation (0 if empty).
func (h *Histogram) Max() int64 { return h.max.Load() }

// Bucket returns the count of bucket b.
func (h *Histogram) Bucket(b int) int64 {
	if b < 0 || b >= NumBuckets {
		return 0
	}
	return h.buckets[b].Load()
}

// Mean returns the arithmetic mean of the observations (0 if empty).
//
//csecg:host percentile/mean math runs on the host at export time
func (h *Histogram) Mean() float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(n)
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) by linear interpolation
// inside the containing log bucket, clamped to the observed maximum.
//
//csecg:host percentile/mean math runs on the host at export time
func (h *Histogram) Quantile(q float64) int64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// Rank of the target observation, 1-based.
	rank := int64(math.Ceil(q * float64(n)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for b := 0; b < NumBuckets; b++ {
		c := h.buckets[b].Load()
		if c == 0 {
			continue
		}
		if cum+c >= rank {
			lo, hi := BucketLow(b), BucketHigh(b)
			if m := h.max.Load(); hi > m {
				hi = m // the tail bucket cannot exceed the observed max
			}
			if hi < lo {
				hi = lo
			}
			frac := float64(rank-cum) / float64(c)
			return lo + int64(frac*float64(hi-lo))
		}
		cum += c
	}
	return h.max.Load()
}

// Quantiles estimates several quantiles in one pass over the buckets.
// qs must be sorted ascending in [0, 1]; the result aligns with qs.
// Each estimate interpolates linearly inside the containing log2
// bucket, so it lies within the bucket's [low, high] bounds — at most
// 2× away from the exact order statistic (the error-bound test pins
// this).
//
//csecg:host percentile/mean math runs on the host at export time
func (h *Histogram) Quantiles(qs ...float64) []int64 {
	out := make([]int64, len(qs))
	n := h.count.Load()
	if n == 0 {
		return out
	}
	max := h.max.Load()
	var counts [NumBuckets]int64
	for b := range counts {
		counts[b] = h.buckets[b].Load()
	}
	b, cum := 0, int64(0)
	for i, q := range qs {
		if q < 0 {
			q = 0
		}
		if q > 1 {
			q = 1
		}
		rank := int64(math.Ceil(q * float64(n)))
		if rank < 1 {
			rank = 1
		}
		for ; b < NumBuckets; b++ {
			c := counts[b]
			if c > 0 && cum+c >= rank {
				lo, hi := BucketLow(b), BucketHigh(b)
				if hi > max {
					hi = max // the tail bucket cannot exceed the observed max
				}
				if hi < lo {
					hi = lo
				}
				frac := float64(rank-cum) / float64(c)
				out[i] = lo + int64(frac*float64(hi-lo))
				break
			}
			cum += c
		}
		if b == NumBuckets {
			out[i] = max
		}
	}
	return out
}

// Summary condenses a histogram for reports.
type Summary struct {
	// Count and Sum aggregate the raw integer observations.
	Count, Sum int64
	// Max is the largest observation.
	Max int64
	// P50, P95 and P99 are interpolated quantiles in the observation's
	// unit (ticks for latency histograms).
	P50, P95, P99 int64
}

// Summarize computes the report summary.
//
//csecg:host percentile/mean math runs on the host at export time
func (h *Histogram) Summarize() Summary {
	qs := h.Quantiles(0.50, 0.95, 0.99)
	return Summary{
		Count: h.Count(),
		Sum:   h.Sum(),
		Max:   h.Max(),
		P50:   qs[0],
		P95:   qs[1],
		P99:   qs[2],
	}
}
