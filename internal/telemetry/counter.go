package telemetry

import "sync/atomic"

// Counter is a monotonically increasing integer metric. Recording is a
// single atomic add: no locks, no allocation, no floating point — safe
// to call from device-side hotpaths and from concurrent goroutines.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
//
//csecg:hotpath
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
//
//csecg:hotpath
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current count.
func (c *Counter) Load() int64 { return c.v.Load() }

// Gauge is a last-value integer metric with a high-water mark.
type Gauge struct {
	v   atomic.Int64
	max atomic.Int64
}

// Set records the current value, updating the high-water mark.
//
//csecg:hotpath
func (g *Gauge) Set(v int64) {
	g.v.Store(v)
	for {
		m := g.max.Load()
		if v <= m || g.max.CompareAndSwap(m, v) {
			return
		}
	}
}

// Load returns the last recorded value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// Max returns the high-water mark.
func (g *Gauge) Max() int64 { return g.max.Load() }
