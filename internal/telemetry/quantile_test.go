package telemetry

import (
	"sort"
	"testing"
)

// TestQuantilesErrorBound pins the estimator's guarantee: a log2-bucket
// interpolated quantile is always within the containing bucket, hence
// within 2× of the exact order statistic, for positive observations.
func TestQuantilesErrorBound(t *testing.T) {
	// Deterministic pseudo-random stream (xorshift64*), spanning six
	// orders of magnitude like a latency distribution.
	x := uint64(0x9E3779B97F4A7C15)
	next := func() int64 {
		x ^= x >> 12
		x ^= x << 25
		x ^= x >> 27
		v := int64((x * 0x2545F4914F6CDD1D) >> 24)
		return v%1_000_000 + 1
	}
	var h Histogram
	vals := make([]int64, 0, 5000)
	for i := 0; i < 5000; i++ {
		v := next()
		vals = append(vals, v)
		h.Observe(v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })

	qs := []float64{0.01, 0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99, 1.0}
	est := h.Quantiles(qs...)
	prev := int64(-1)
	for i, q := range qs {
		rank := int(q * float64(len(vals)))
		if rank < 1 {
			rank = 1
		}
		exact := vals[rank-1]
		if est[i] < prev {
			t.Errorf("q=%.2f: estimates not monotone (%d after %d)", q, est[i], prev)
		}
		prev = est[i]
		// 2× relative error bound: the estimate stays inside the exact
		// value's log2 bucket, whose width is at most the lower bound.
		if est[i] > 2*exact || exact > 2*est[i] {
			t.Errorf("q=%.2f: estimate %d vs exact %d exceeds the 2x bucket bound", q, est[i], exact)
		}
	}
	if got := est[len(est)-1]; got != h.Max() {
		t.Errorf("q=1 estimate %d, want observed max %d", got, h.Max())
	}
	// The batch helper must agree with the one-shot Quantile.
	for i, q := range qs {
		if single := h.Quantile(q); single != est[i] {
			t.Errorf("q=%.2f: Quantiles=%d disagrees with Quantile=%d", q, est[i], single)
		}
	}
}

// TestQuantilesEmpty covers the zero-observation path.
func TestQuantilesEmpty(t *testing.T) {
	var h Histogram
	for _, v := range h.Quantiles(0.5, 0.99) {
		if v != 0 {
			t.Errorf("empty histogram quantile = %d, want 0", v)
		}
	}
}
