package telemetry

import (
	"io"
	"sync"
	"testing"
)

func TestCounterAddZeroAlloc(t *testing.T) {
	c := NewRegistry().Counter("x")
	if a := testing.AllocsPerRun(1000, func() { c.Add(3) }); a != 0 {
		t.Errorf("Counter.Add allocates %.1f objects/op, want 0", a)
	}
	if a := testing.AllocsPerRun(1000, func() { c.Inc() }); a != 0 {
		t.Errorf("Counter.Inc allocates %.1f objects/op, want 0", a)
	}
}

func TestHistogramObserveZeroAlloc(t *testing.T) {
	h := NewRegistry().Histogram("x")
	var v int64
	if a := testing.AllocsPerRun(1000, func() { v++; h.Observe(v) }); a != 0 {
		t.Errorf("Histogram.Observe allocates %.1f objects/op, want 0", a)
	}
}

func TestGaugeSetZeroAlloc(t *testing.T) {
	g := NewRegistry().Gauge("x")
	var v int64
	if a := testing.AllocsPerRun(1000, func() { v++; g.Set(v) }); a != 0 {
		t.Errorf("Gauge.Set allocates %.1f objects/op, want 0", a)
	}
}

func TestCounterAndGauge(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("c")
	c.Add(5)
	c.Inc()
	if c.Load() != 6 {
		t.Errorf("counter = %d, want 6", c.Load())
	}
	if reg.Counter("c") != c {
		t.Error("registry did not return the same counter")
	}
	g := reg.Gauge("g")
	g.Set(7)
	g.Set(3)
	if g.Load() != 3 || g.Max() != 7 {
		t.Errorf("gauge load/max = %d/%d, want 3/7", g.Load(), g.Max())
	}
}

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	// Bucket b holds [2^(b−1), 2^b − 1]; bucket 0 holds v ≤ 0.
	cases := []struct {
		v      int64
		bucket int
	}{{-3, 0}, {0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4}, {1 << 40, 41}}
	for _, c := range cases {
		if got := bucketOf(c.v); got != c.bucket {
			t.Errorf("bucketOf(%d) = %d, want %d", c.v, got, c.bucket)
		}
	}
	for _, c := range cases {
		h.Observe(c.v)
	}
	if h.Count() != int64(len(cases)) {
		t.Errorf("count %d, want %d", h.Count(), len(cases))
	}
	if h.Max() != 1<<40 {
		t.Errorf("max %d, want 2^40", h.Max())
	}
	if h.Bucket(0) != 2 || h.Bucket(2) != 2 || h.Bucket(3) != 2 {
		t.Error("bucket counts wrong")
	}
	if BucketLow(3) != 4 || BucketHigh(3) != 7 {
		t.Errorf("bucket 3 bounds [%d, %d], want [4, 7]", BucketLow(3), BucketHigh(3))
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	for v := int64(1); v <= 100; v++ {
		h.Observe(v)
	}
	if h.Mean() != 50.5 {
		t.Errorf("mean %v, want 50.5", h.Mean())
	}
	// Log buckets guarantee ≤ 2× relative error; the tail is clamped to
	// the exact observed max.
	if q := h.Quantile(0.5); q < 25 || q > 100 {
		t.Errorf("p50 = %d, want within 2× of 50", q)
	}
	if q := h.Quantile(1); q != 100 {
		t.Errorf("p100 = %d, want the observed max 100", q)
	}
	if q := h.Quantile(0); q < 1 || q > 2 {
		t.Errorf("p0 = %d, want ≈1", q)
	}
	s := h.Summarize()
	if s.Count != 100 || s.Sum != 5050 || s.Max != 100 {
		t.Errorf("summary %+v has wrong count/sum/max", s)
	}
	if s.P50 > s.P95 || s.P95 > s.P99 || s.P99 > s.Max {
		t.Errorf("summary quantiles not monotone: %+v", s)
	}
}

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 || h.Mean() != 0 || h.Max() != 0 {
		t.Error("empty histogram must read zero")
	}
}

func TestRegistryNamesSorted(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("zeta")
	reg.Counter("alpha")
	reg.Histogram("late")
	reg.Histogram("early")
	names := reg.CounterNames()
	if len(names) != 2 || names[0] != "alpha" || names[1] != "zeta" {
		t.Errorf("counter names %v, want sorted", names)
	}
	hn := reg.HistogramNames()
	if len(hn) != 2 || hn[0] != "early" {
		t.Errorf("histogram names %v, want sorted", hn)
	}
}

// TestRegistryConcurrentRecording hammers one registry from goroutines
// playing the mote and coordinator roles while a reader exports
// concurrently — the shape RunStream produces when both ends share a
// session registry. Run under -race (CI does).
func TestRegistryConcurrentRecording(t *testing.T) {
	reg := NewRegistry()
	const (
		writers = 4
		perG    = 5000
	)
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			// Odd goroutines record mote-side, even coordinator-side;
			// both hit the shared window counter like the real pipeline.
			c := reg.Counter("windows_total")
			var h *Histogram
			if id%2 == 0 {
				h = reg.Histogram("mote_encode_cycles")
			} else {
				h = reg.Histogram("coordinator_iterations")
			}
			gauge := reg.Gauge("buffer_depth")
			for i := 0; i < perG; i++ {
				c.Inc()
				h.Observe(int64(i))
				gauge.Set(int64(i % 9))
			}
		}(g)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			if err := WritePrometheus(io.Discard, reg); err != nil {
				t.Errorf("concurrent export: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	<-done
	if got := reg.Counter("windows_total").Load(); got != writers*perG {
		t.Errorf("counter %d, want %d", got, writers*perG)
	}
	total := reg.Histogram("mote_encode_cycles").Count() +
		reg.Histogram("coordinator_iterations").Count()
	if total != writers*perG {
		t.Errorf("histogram observations %d, want %d", total, writers*perG)
	}
}

func TestManualClock(t *testing.T) {
	c := NewManualClock(100)
	if c.Now() != 100 {
		t.Errorf("start %d, want 100", c.Now())
	}
	if c.Advance(50) != 150 || c.Now() != 150 {
		t.Error("advance wrong")
	}
	c.Set(7)
	if c.Now() != 7 {
		t.Error("set wrong")
	}
}
