package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteChromeTrace renders events as Chrome trace_event JSON, loadable
// in chrome://tracing or Perfetto. Timestamps and durations convert
// from nanosecond ticks to the format's microseconds with the
// sub-microsecond remainder kept as three decimal places, so modeled
// cycle-level durations survive the round trip. The output is
// byte-stable for a given event list (golden-tested).
//
//csecg:host export-time formatting
func WriteChromeTrace(w io.Writer, events []Event) error {
	var b strings.Builder
	b.WriteString("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[")
	for i, e := range events {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString("{\"name\":")
		writeJSONString(&b, e.Name)
		if e.Cat != "" {
			b.WriteString(",\"cat\":")
			writeJSONString(&b, e.Cat)
		}
		fmt.Fprintf(&b, ",\"ph\":%q", string(rune(e.Phase)))
		b.WriteString(",\"ts\":")
		writeMicros(&b, e.TS)
		if e.Phase == PhaseSpan {
			b.WriteString(",\"dur\":")
			writeMicros(&b, e.Dur)
		}
		if e.Phase == PhaseInstant {
			b.WriteString(",\"s\":\"t\"")
		}
		// Flow phases bind start/step/end by id; a flow-end further binds
		// to the enclosing slice so the arrow lands on the decode span.
		if e.ID != 0 {
			fmt.Fprintf(&b, ",\"id\":\"%x\"", uint64(e.ID))
		}
		if e.Phase == PhaseFlowEnd {
			b.WriteString(",\"bp\":\"e\"")
		}
		fmt.Fprintf(&b, ",\"pid\":%d,\"tid\":%d", e.PID, e.TID)
		if len(e.Args) > 0 {
			b.WriteString(",\"args\":{")
			for j, a := range e.Args {
				if j > 0 {
					b.WriteByte(',')
				}
				writeJSONString(&b, a.Key)
				b.WriteByte(':')
				switch a.Kind {
				case ArgStr:
					writeJSONString(&b, a.Str)
				case ArgFloat:
					b.WriteString(strconv.FormatFloat(a.Float, 'g', -1, 64))
				default:
					b.WriteString(strconv.FormatInt(a.Int, 10))
				}
			}
			b.WriteByte('}')
		}
		b.WriteByte('}')
	}
	b.WriteString("]}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// writeMicros renders nanosecond ticks as microseconds with three
// decimals (the trace_event unit is µs).
func writeMicros(b *strings.Builder, ns int64) {
	neg := ns < 0
	if neg {
		ns = -ns
		b.WriteByte('-')
	}
	fmt.Fprintf(b, "%d.%03d", ns/1000, ns%1000)
}

// writeJSONString appends a JSON-escaped string.
func writeJSONString(b *strings.Builder, s string) {
	enc, err := json.Marshal(s)
	if err != nil {
		// Marshaling a string cannot fail; keep the output well-formed
		// regardless.
		b.WriteString(`""`)
		return
	}
	b.Write(enc)
}
