package telemetry

import (
	"sort"
	"sync"
)

// Registry is a named collection of counters, gauges and histograms.
// Lookup (get-or-create) takes a mutex and may allocate, so hotpath
// code resolves its metric pointers once at construction time and then
// records lock-free through the returned pointers.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
	help       map[string]string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   map[string]*Counter{},
		gauges:     map[string]*Gauge{},
		histograms: map[string]*Histogram{},
		help:       map[string]string{},
	}
}

// SetHelp attaches a # HELP docstring to the named metric; exporters
// escape it per the exposition format, so any string is safe.
func (r *Registry) SetHelp(name, help string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.help[name] = help
}

// Help returns the metric's docstring ("" when unset).
func (r *Registry) Help(name string) string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.help[name]
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = &Histogram{}
		r.histograms[name] = h
	}
	return h
}

// CounterNames returns the registered counter names, sorted.
func (r *Registry) CounterNames() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return sortedKeys(r.counters)
}

// GaugeNames returns the registered gauge names, sorted.
func (r *Registry) GaugeNames() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return sortedKeys(r.gauges)
}

// HistogramNames returns the registered histogram names, sorted.
func (r *Registry) HistogramNames() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return sortedKeys(r.histograms)
}

// sortedKeys returns the map's keys in sorted order (exports must be
// deterministic, so no raw map iteration escapes the registry).
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	//csecg:orderok keys are sorted immediately below
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
