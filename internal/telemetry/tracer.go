package telemetry

import (
	"fmt"
	"sync"
)

// Event phases, following the Chrome trace_event phase letters.
const (
	// PhaseSpan is a complete span with a start and a duration ("X").
	PhaseSpan = byte('X')
	// PhaseInstant is a point event ("i").
	PhaseInstant = byte('i')
	// PhaseCounter is a sampled counter value ("C").
	PhaseCounter = byte('C')
	// PhaseMeta is a metadata record such as a process name ("M").
	PhaseMeta = byte('M')
	// PhaseBegin and PhaseEnd open and close a nested span ("B"/"E");
	// pairs must nest properly per thread track. The causal span trees
	// render through these so chrome://tracing shows the hierarchy.
	PhaseBegin = byte('B')
	PhaseEnd   = byte('E')
	// PhaseFlowStart/Step/End ("s"/"t"/"f") draw a flow arrow across
	// thread and process boundaries — the window's causal chain from
	// mote transmit through link arrival to coordinator decode. Events
	// of one flow share Event.ID (the window's trace ID).
	PhaseFlowStart = byte('s')
	PhaseFlowStep  = byte('t')
	PhaseFlowEnd   = byte('f')
)

// Arg kinds.
const (
	// ArgInt marks an integer argument.
	ArgInt = byte('i')
	// ArgStr marks a string argument.
	ArgStr = byte('s')
	// ArgFloat marks a float argument (host-side only — device code
	// passes integers).
	ArgFloat = byte('f')
)

// Arg is one key/value annotation on an event.
type Arg struct {
	Key   string  `json:"k"`
	Kind  byte    `json:"t"`
	Int   int64   `json:"i,omitempty"`
	Str   string  `json:"s,omitempty"`
	Float float64 `json:"f,omitempty"`
}

// I builds an integer argument.
func I(key string, v int64) Arg { return Arg{Key: key, Kind: ArgInt, Int: v} }

// S builds a string argument.
func S(key, v string) Arg { return Arg{Key: key, Kind: ArgStr, Str: v} }

// F builds a float argument (host-side annotation only).
func F(key string, v float64) Arg { return Arg{Key: key, Kind: ArgFloat, Float: v} }

// Event is one trace record. TS and Dur are nanosecond ticks on the
// tracer's clock (for the pipeline tracer, the modeled session
// timeline: window w's acquisition starts at w × 2 s).
type Event struct {
	Name  string `json:"name"`
	Cat   string `json:"cat,omitempty"`
	Phase byte   `json:"ph"`
	TS    int64  `json:"ts"`
	Dur   int64  `json:"dur,omitempty"`
	PID   int64  `json:"pid"`
	TID   int64  `json:"tid"`
	// ID binds flow-event triples (and async pairs) together; for the
	// window flow arrows it is the window's causal trace ID.
	ID   int64 `json:"id,omitempty"`
	Args []Arg `json:"args,omitempty"`
}

// Tracer collects trace events. It is safe for concurrent use; event
// order is the recording order.
type Tracer struct {
	mu      sync.Mutex
	clock   Clock
	events  []Event
	nextPID int64
}

// NewTracer builds a tracer on the given clock (nil → WallClock).
func NewTracer(clock Clock) *Tracer {
	if clock == nil {
		clock = WallClock{}
	}
	return &Tracer{clock: clock, nextPID: 1}
}

// Clock returns the tracer's clock.
func (t *Tracer) Clock() Clock { return t.clock }

// record appends one event.
func (t *Tracer) record(e Event) {
	t.mu.Lock()
	t.events = append(t.events, e)
	t.mu.Unlock()
}

// Span records a complete span at an explicit timestamp and duration.
func (t *Tracer) Span(pid, tid int64, name, cat string, ts, dur int64, args ...Arg) {
	t.record(Event{Name: name, Cat: cat, Phase: PhaseSpan, TS: ts, Dur: dur, PID: pid, TID: tid, Args: args})
}

// Instant records a point event.
func (t *Tracer) Instant(pid, tid int64, name, cat string, ts int64, args ...Arg) {
	t.record(Event{Name: name, Cat: cat, Phase: PhaseInstant, TS: ts, PID: pid, TID: tid, Args: args})
}

// Counter records a sampled counter value; each arg becomes one series
// on the counter track.
func (t *Tracer) Counter(pid int64, name string, ts int64, args ...Arg) {
	t.record(Event{Name: name, Phase: PhaseCounter, TS: ts, PID: pid, Args: args})
}

// BeginSpan opens a nested span ("B") at an explicit timestamp; close
// it with EndSpan at the same pid/tid. B/E pairs nest, so a parent span
// can wrap child spans on the same thread track — the causal span trees
// export through these.
func (t *Tracer) BeginSpan(pid, tid int64, name, cat string, ts int64, args ...Arg) {
	t.record(Event{Name: name, Cat: cat, Phase: PhaseBegin, TS: ts, PID: pid, TID: tid, Args: args})
}

// EndSpan closes the innermost open nested span ("E") on the pid/tid
// track.
func (t *Tracer) EndSpan(pid, tid int64, name, cat string, ts int64) {
	t.record(Event{Name: name, Cat: cat, Phase: PhaseEnd, TS: ts, PID: pid, TID: tid})
}

// FlowStart begins a flow arrow bound by id (the window's trace ID).
func (t *Tracer) FlowStart(pid, tid int64, name, cat string, ts, id int64) {
	t.record(Event{Name: name, Cat: cat, Phase: PhaseFlowStart, TS: ts, PID: pid, TID: tid, ID: id})
}

// FlowStep continues a flow arrow on another track.
func (t *Tracer) FlowStep(pid, tid int64, name, cat string, ts, id int64) {
	t.record(Event{Name: name, Cat: cat, Phase: PhaseFlowStep, TS: ts, PID: pid, TID: tid, ID: id})
}

// FlowEnd terminates a flow arrow, binding to the enclosing slice.
func (t *Tracer) FlowEnd(pid, tid int64, name, cat string, ts, id int64) {
	t.record(Event{Name: name, Cat: cat, Phase: PhaseFlowEnd, TS: ts, PID: pid, TID: tid, ID: id})
}

// Begin opens a span at the clock's current tick and returns a closer
// that records it; use for wall-clock host timing.
func (t *Tracer) Begin(pid, tid int64, name, cat string) func(args ...Arg) {
	start := t.clock.Now()
	return func(args ...Arg) {
		end := t.clock.Now()
		t.Span(pid, tid, name, cat, start, end-start, args...)
	}
}

// Events returns a snapshot copy of the recorded events.
func (t *Tracer) Events() []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, len(t.events))
	copy(out, t.events)
	return out
}

// Len returns the number of recorded events.
func (t *Tracer) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// Session groups the trace tracks of one streaming session: three
// process IDs (mote, link, coordinator) named after the session label,
// so several sessions sharing one tracer stay visually separate in
// chrome://tracing.
type Session struct {
	// Mote, Link and Coordinator are the track (process) IDs.
	Mote, Link, Coordinator int64
}

// ThreadName labels one thread track within a process.
func (t *Tracer) ThreadName(pid, tid int64, name string) {
	t.record(Event{Name: "thread_name", Phase: PhaseMeta, PID: pid, TID: tid,
		Args: []Arg{S("name", name)}})
	t.record(Event{Name: "thread_sort_index", Phase: PhaseMeta, PID: pid, TID: tid,
		Args: []Arg{I("sort_index", tid)}})
}

// NewSession reserves three named tracks for one streaming session.
func (t *Tracer) NewSession(label string) Session {
	t.mu.Lock()
	base := t.nextPID
	t.nextPID += 3
	t.mu.Unlock()
	s := Session{Mote: base, Link: base + 1, Coordinator: base + 2}
	for i, part := range []string{"mote", "link", "coordinator"} {
		name := part
		if label != "" {
			name = fmt.Sprintf("%s — %s", label, part)
		}
		t.record(Event{Name: "process_name", Phase: PhaseMeta, PID: base + int64(i),
			Args: []Arg{S("name", name)}})
		t.record(Event{Name: "process_sort_index", Phase: PhaseMeta, PID: base + int64(i),
			Args: []Arg{I("sort_index", base+int64(i))}})
	}
	return s
}
