package telemetry

import (
	"sync/atomic"
	"time"
)

// Clock supplies monotonic integer timestamps in nanosecond ticks. All
// telemetry timing goes through a Clock so tests can inject a manual
// one and get bit-identical traces; the determinism analyzer bans bare
// time.Now in library packages for exactly this reason.
type Clock interface {
	// Now returns the current time in nanosecond ticks. The epoch is
	// implementation-defined; only differences are meaningful.
	Now() int64
}

// WallClock is the production Clock: wall time in nanoseconds since the
// Unix epoch.
type WallClock struct{}

// Now returns wall time in nanoseconds.
func (WallClock) Now() int64 {
	return time.Now().UnixNano() //csecg:nondet instrumentation clock, injectable via the Clock interface
}

// ManualClock is a settable test clock. The zero value starts at tick 0;
// it is safe for concurrent use.
type ManualClock struct {
	ticks atomic.Int64
}

// NewManualClock returns a manual clock starting at the given tick.
func NewManualClock(start int64) *ManualClock {
	c := &ManualClock{}
	c.ticks.Store(start)
	return c
}

// Now returns the current manual tick.
func (c *ManualClock) Now() int64 { return c.ticks.Load() }

// Set jumps the clock to the given tick.
func (c *ManualClock) Set(t int64) { c.ticks.Store(t) }

// Advance moves the clock forward by d ticks and returns the new time.
func (c *ManualClock) Advance(d int64) int64 { return c.ticks.Add(d) }
