package telemetry

// Pipeline stage names of the window-lifecycle trace. Every 2-second
// window flows through these spans in order; the loss/NACK/retransmit
// events appear only when the channel misbehaves.
const (
	// StageSample is the 2-second ADC acquisition of the window.
	StageSample = "sample"
	// StageCSSample is the sparse-binary CS measurement (the paper's
	// 82 ms stage) including the rounding shift.
	StageCSSample = "cs-sample"
	// StageDiff is the inter-packet difference stage (zero-length on
	// key frames).
	StageDiff = "diff"
	// StageHuffman is the entropy-coding stage (zero-length on key
	// frames).
	StageHuffman = "huffman"
	// StageTX is packet framing plus radio airtime.
	StageTX = "tx"
	// StageRX marks the frame's arrival at the coordinator.
	StageRX = "rx"
	// StageReassemble is the reorder-buffer hold between arrival and
	// in-order release to the decoder.
	StageReassemble = "reassemble"
	// StageFISTA is the sparse-recovery solve.
	StageFISTA = "fista"
	// StageReconstruct is the inverse transform and requantization that
	// hands samples to the display.
	StageReconstruct = "reconstruct"

	// EventLoss marks a frame the channel destroyed.
	EventLoss = "loss"
	// EventNack marks a NACK sent on the control uplink.
	EventNack = "nack"
	// EventKeyRequest marks a key-frame request on the control uplink.
	EventKeyRequest = "key-request"
	// EventRetransmit marks a retransmission served from the mote's
	// ring.
	EventRetransmit = "retransmit"
)

// Stages lists the per-window lifecycle stages in pipeline order.
func Stages() []string {
	return []string{
		StageSample, StageCSSample, StageDiff, StageHuffman, StageTX,
		StageRX, StageReassemble, StageFISTA, StageReconstruct,
	}
}

// CatWindow is the trace category of window-lifecycle spans.
const CatWindow = "window"
