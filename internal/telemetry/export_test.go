package telemetry

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// fixtureTrace records a miniature window lifecycle on a manual clock —
// every event kind the exporters must render, at fixed ticks.
func fixtureTrace() *Tracer {
	clk := NewManualClock(0)
	tr := NewTracer(clk)
	s := tr.NewSession("record 100")
	tr.ThreadName(s.Mote, 1, "acquire")
	tr.ThreadName(s.Coordinator, 3, "decode")
	tr.Span(s.Mote, 1, StageSample, CatWindow, 0, 2_000_000_000, I("seq", 0))
	tr.Span(s.Mote, 2, StageHuffman, CatWindow, 2_000_000_000, 517_250, I("bytes", 203))
	tr.Span(s.Link, 1, StageTX, CatWindow, 2_000_517_250, 19_288_888, I("bytes", 217))
	tr.Instant(s.Link, 1, EventLoss, CatWindow, 2_010_000_000, I("seq", 1))
	tr.Counter(s.Coordinator, "fista residual", 2_100_000_000, F("value", 0.125))
	clk.Set(2_500_000_000)
	end := tr.Begin(s.Coordinator, 3, StageFISTA, CatWindow)
	clk.Advance(343_000_000)
	end(I("iterations", 211), S("mode", "neon"))
	// Nested B/E pairs (continuation sub-stages inside the solve) and a
	// flow arrow stitching the window across process boundaries.
	tr.BeginSpan(s.Coordinator, 3, SolverStageFISTA2, CatWindow, 2_500_000_000, I("seq", 0))
	tr.BeginSpan(s.Coordinator, 3, "stage/0", CatWindow, 2_500_000_000)
	tr.EndSpan(s.Coordinator, 3, "stage/0", CatWindow, 2_651_500_000)
	tr.BeginSpan(s.Coordinator, 3, "stage/1", CatWindow, 2_651_500_000)
	tr.EndSpan(s.Coordinator, 3, "stage/1", CatWindow, 2_843_000_000)
	tr.EndSpan(s.Coordinator, 3, SolverStageFISTA2, CatWindow, 2_843_000_000)
	tr.FlowStart(s.Link, 1, FlowWindow, CatWindow, 2_000_517_250, 0x1234abcd)
	tr.FlowStep(s.Coordinator, 1, FlowWindow, CatWindow, 2_019_806_138, 0x1234abcd)
	tr.FlowEnd(s.Coordinator, 3, FlowWindow, CatWindow, 2_500_000_000, 0x1234abcd)
	return tr
}

func TestWriteChromeTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, fixtureTrace().Events()); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "chrome_trace.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("Chrome trace output drifted from golden file.\ngot:  %s\nwant: %s",
			buf.Bytes(), want)
	}
}

func TestWriteChromeTraceShape(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, fixtureTrace().Events()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// Nanosecond ticks must render as microseconds with the remainder
	// kept: 517250 ns → 517.250 µs.
	for _, frag := range []string{
		`"displayTimeUnit":"ms"`,
		`"dur":517.250`,
		`"ph":"X"`, `"ph":"i"`, `"ph":"C"`, `"ph":"M"`,
		`"s":"t"`,
		`"name":"record 100 — mote"`,
		`"args":{"iterations":211,"mode":"neon"}`,
	} {
		if !strings.Contains(out, frag) {
			t.Errorf("trace output missing %s", frag)
		}
	}
	// Spans carry dur; instants must not.
	if strings.Contains(out, `"ph":"i","ts":2010000.000,"dur"`) {
		t.Error("instant event must not carry a duration")
	}
}

func TestWriteChromeTraceNestedAndFlow(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, fixtureTrace().Events()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, frag := range []string{
		`"ph":"B"`, `"ph":"E"`,
		`"ph":"s"`, `"ph":"t"`, `"ph":"f"`,
		`"id":"1234abcd"`,
		`"bp":"e"`,
	} {
		if !strings.Contains(out, frag) {
			t.Errorf("trace output missing %s", frag)
		}
	}
	// B/E events must not carry a duration, and every B must have a
	// matching E so the nesting closes.
	if strings.Contains(out, `"ph":"B","ts":2500000.000,"dur"`) {
		t.Error("begin event must not carry a duration")
	}
	if b, e := strings.Count(out, `"ph":"B"`), strings.Count(out, `"ph":"E"`); b != e {
		t.Errorf("unbalanced nesting: %d B events vs %d E events", b, e)
	}
	// The flow arrow's end binds to its enclosing slice.
	if !strings.Contains(out, `"ph":"f","ts":2500000.000,"id":"1234abcd","bp":"e"`) {
		t.Error("flow end must bind to the enclosing slice with bp:e")
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	events := fixtureTrace().Events()
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, events); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, events) {
		t.Errorf("JSONL round trip changed events:\ngot  %+v\nwant %+v", got, events)
	}
}

func TestReadJSONLBadLine(t *testing.T) {
	_, err := ReadJSONL(strings.NewReader("{\"name\":\"ok\",\"ph\":88,\"ts\":0,\"pid\":1,\"tid\":1}\nnot json\n"))
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Errorf("want line-numbered parse error, got %v", err)
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("windows_total").Add(3)
	reg.Gauge("depth").Set(2)
	h := reg.Histogram("latency_ns")
	h.Observe(5)
	h.Observe(900)
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, reg); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, frag := range []string{
		"# TYPE windows_total counter",
		"windows_total 3",
		"# TYPE depth gauge",
		"depth 2",
		"# TYPE latency_ns histogram",
		`latency_ns_bucket{le="+Inf"} 2`,
		"latency_ns_sum 905",
		"latency_ns_count 2",
	} {
		if !strings.Contains(out, frag) {
			t.Errorf("Prometheus output missing %q\n%s", frag, out)
		}
	}
	// le buckets must be cumulative: the bucket covering 900 (le="1023")
	// includes the earlier observation of 5.
	if !strings.Contains(out, `le="1023"} 2`) {
		t.Errorf("buckets not cumulative:\n%s", out)
	}
}
