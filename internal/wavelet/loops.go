package wavelet

// Fig. 5 of the paper compares two ways to vectorize the two-level
// filter-bank loop nest: vectorizing the inner (tap) loop costs extra
// cross-lane add instructions per output, while vectorizing the outer
// (output) loop keeps four independent accumulators and needs none.
// This file implements both shapes on the analysis split so the
// benchmark suite can measure the difference the paper describes, and
// the tests can pin their equivalence. The production transform uses
// the outer-loop shape.

// analyzeOnceScalar is the plain reference loop: one output pair at a
// time, taps accumulated serially.
func analyzeOnceScalar(dst, x, h, g []float32) {
	n := len(x)
	half := n / 2
	for k := 0; k < half; k++ {
		var a, d float32
		base := 2 * k
		for i := 0; i < len(h); i++ {
			idx := base + i
			if idx >= n {
				idx -= n
			}
			v := x[idx]
			a += h[i] * v
			d += g[i] * v
		}
		dst[k] = a
		dst[half+k] = d
	}
}

// analyzeOnceInnerVec vectorizes the inner (tap) loop: partial sums are
// kept in four lanes over the taps and reduced horizontally per output —
// the shape the paper rejects because of the 2·I·(L−1) extra adds.
func analyzeOnceInnerVec(dst, x, h, g []float32) {
	n := len(x)
	half := n / 2
	taps := len(h)
	t4 := taps &^ 3
	for k := 0; k < half; k++ {
		base := 2 * k
		var a0, a1, a2, a3 float32
		var d0, d1, d2, d3 float32
		if base+taps <= n {
			// No wrap: contiguous 4-lane tap accumulation.
			for i := 0; i < t4; i += 4 {
				v0, v1, v2, v3 := x[base+i], x[base+i+1], x[base+i+2], x[base+i+3]
				a0 += h[i] * v0
				a1 += h[i+1] * v1
				a2 += h[i+2] * v2
				a3 += h[i+3] * v3
				d0 += g[i] * v0
				d1 += g[i+1] * v1
				d2 += g[i+2] * v2
				d3 += g[i+3] * v3
			}
			for i := t4; i < taps; i++ {
				v := x[base+i]
				a0 += h[i] * v
				d0 += g[i] * v
			}
		} else {
			for i := 0; i < taps; i++ {
				idx := base + i
				if idx >= n {
					idx -= n
				}
				v := x[idx]
				a0 += h[i] * v
				d0 += g[i] * v
			}
		}
		// Horizontal reduction — the cost inner-loop vectorization pays.
		dst[k] = (a0 + a1) + (a2 + a3)
		dst[half+k] = (d0 + d1) + (d2 + d3)
	}
}

// analyzeOnceOuterVec vectorizes the outer (output) loop: four output
// pairs advance together, each with its own accumulator, no horizontal
// reductions — the shape the paper selects.
func analyzeOnceOuterVec(dst, x, h, g []float32) {
	n := len(x)
	half := n / 2
	taps := len(h)
	k4 := half &^ 3
	k := 0
	for ; k < k4; k += 4 {
		b0, b1, b2, b3 := 2*k, 2*k+2, 2*k+4, 2*k+6
		if b3+taps <= n {
			var a0, a1, a2, a3 float32
			var d0, d1, d2, d3 float32
			for i := 0; i < taps; i++ {
				hi, gi := h[i], g[i]
				v0, v1, v2, v3 := x[b0+i], x[b1+i], x[b2+i], x[b3+i]
				a0 += hi * v0
				a1 += hi * v1
				a2 += hi * v2
				a3 += hi * v3
				d0 += gi * v0
				d1 += gi * v1
				d2 += gi * v2
				d3 += gi * v3
			}
			dst[k], dst[k+1], dst[k+2], dst[k+3] = a0, a1, a2, a3
			dst[half+k], dst[half+k+1], dst[half+k+2], dst[half+k+3] = d0, d1, d2, d3
			continue
		}
		break
	}
	// Wrap-around tail (and any remainder): scalar peel, as in Fig. 3.
	for ; k < half; k++ {
		var a, d float32
		base := 2 * k
		for i := 0; i < taps; i++ {
			idx := base + i
			if idx >= n {
				idx -= n
			}
			v := x[idx]
			a += h[i] * v
			d += g[i] * v
		}
		dst[k] = a
		dst[half+k] = d
	}
}
