package wavelet

import (
	"fmt"

	"csecg/internal/linalg"
)

// Transform is a multi-level periodized orthonormal DWT over signals of a
// fixed length. It is generic over float32/float64 so the decoder can be
// instantiated at both the "iPhone (32-bit)" and "Matlab (64-bit)"
// precisions of the paper's Fig. 6.
//
// Coefficient layout of a forward transform with L levels over length-N
// signals, matching the conventional pyramid order:
//
//	[ a_L | d_L | d_{L−1} | … | d_1 ]
//
// where a_L has N/2^L entries and d_j has N/2^j entries.
type Transform[T linalg.Float] struct {
	h, g   []T // analysis low/high-pass filters
	n      int
	levels int
}

// New builds a Daubechies-order transform for length-n signals with the
// given number of decomposition levels. n must be divisible by 2^levels
// and the coarsest block must still be at least as long as the filter
// (2·order taps) for the periodization to stay orthonormal.
func New[T linalg.Float](order, n, levels int) (*Transform[T], error) {
	if n <= 0 {
		return nil, fmt.Errorf("wavelet: signal length %d must be positive", n)
	}
	if levels < 1 {
		return nil, fmt.Errorf("wavelet: levels %d must be at least 1", levels)
	}
	if n%(1<<uint(levels)) != 0 {
		return nil, fmt.Errorf("wavelet: length %d not divisible by 2^%d", n, levels)
	}
	h64, err := DaubechiesFilter(order)
	if err != nil {
		return nil, err
	}
	if coarse := n >> uint(levels); coarse < len(h64) {
		return nil, fmt.Errorf("wavelet: coarsest block %d shorter than %d-tap filter; reduce levels", coarse, len(h64))
	}
	g64 := QMF(h64)
	t := &Transform[T]{n: n, levels: levels, h: make([]T, len(h64)), g: make([]T, len(g64))}
	for i := range h64 {
		t.h[i] = T(h64[i])
		t.g[i] = T(g64[i])
	}
	return t, nil
}

// MaxLevels returns the deepest decomposition admissible for a
// Daubechies-order transform on length-n signals.
func MaxLevels(order, n int) int {
	taps := 2 * order
	levels := 0
	for n%2 == 0 && n/2 >= taps {
		n /= 2
		levels++
	}
	return levels
}

// Len returns the signal length the transform operates on.
func (t *Transform[T]) Len() int { return t.n }

// Levels returns the number of decomposition levels.
func (t *Transform[T]) Levels() int { return t.levels }

// Forward computes the analysis transform (Ψᵀ for the orthonormal basis):
// dst receives the coefficient pyramid of x. dst and x must both have
// length Len() and may not alias.
func (t *Transform[T]) Forward(dst, x []T) {
	if len(dst) != t.n || len(x) != t.n {
		panic("wavelet: Forward length mismatch")
	}
	buf := make([]T, t.n)
	copy(buf, x)
	n := t.n
	for lev := 0; lev < t.levels; lev++ {
		t.analyzeOne(dst[:n], buf[:n])
		copy(buf[:n/2], dst[:n/2])
		n /= 2
	}
	copy(dst[:n], buf[:n])
}

// analyzeOne performs one analysis split of the length-n prefix:
// dst[:n/2] = approximation, dst[n/2:n] = detail.
func (t *Transform[T]) analyzeOne(dst, x []T) {
	n := len(x)
	half := n / 2
	for k := 0; k < half; k++ {
		var a, d T
		base := 2 * k
		for i := 0; i < len(t.h); i++ {
			idx := base + i
			if idx >= n {
				idx -= n // filters never exceed block length, one wrap max
			}
			v := x[idx]
			a += t.h[i] * v
			d += t.g[i] * v
		}
		dst[k] = a
		dst[half+k] = d
	}
}

// Inverse computes the synthesis transform Ψ: dst receives the signal
// whose coefficient pyramid is coeffs. dst and coeffs must both have
// length Len() and may not alias.
func (t *Transform[T]) Inverse(dst, coeffs []T) {
	if len(dst) != t.n || len(coeffs) != t.n {
		panic("wavelet: Inverse length mismatch")
	}
	buf := make([]T, t.n)
	copy(buf, coeffs)
	n := t.n >> uint(t.levels)
	for lev := t.levels - 1; lev >= 0; lev-- {
		t.synthesizeOne(dst[:2*n], buf[:n], buf[n:2*n])
		copy(buf[:2*n], dst[:2*n])
		n *= 2
	}
	copy(dst, buf)
}

// synthesizeOne is the exact transpose of analyzeOne: it scatters the
// approximation a and detail d back into a length-2·len(a) block.
func (t *Transform[T]) synthesizeOne(dst, a, d []T) {
	n := len(dst)
	for i := range dst {
		dst[i] = 0
	}
	for k := range a {
		base := 2 * k
		av, dv := a[k], d[k]
		for i := 0; i < len(t.h); i++ {
			idx := base + i
			if idx >= n {
				idx -= n
			}
			dst[idx] += t.h[i]*av + t.g[i]*dv
		}
	}
}

// SynthesisOp exposes Ψ as a linalg.Op: Apply is the synthesis (inverse)
// transform mapping coefficients to samples, ApplyT the analysis
// transform. For an orthonormal wavelet the adjoint equals the inverse,
// which the tests assert via linalg.AdjointMismatch.
func (t *Transform[T]) SynthesisOp() linalg.Op[T] {
	return linalg.Op[T]{
		InDim:  t.n,
		OutDim: t.n,
		Apply:  func(dst, x []T) { t.Inverse(dst, x) },
		ApplyT: func(dst, y []T) { t.Forward(dst, y) },
	}
}

// LargestK zeroes all but the k largest-magnitude entries of coeffs in
// place, the hard-thresholding used to measure how wavelet-sparse a
// signal is (the S-sparse approximation of Section II-A).
func LargestK[T linalg.Float](coeffs []T, k int) {
	if k >= len(coeffs) {
		return
	}
	if k <= 0 {
		for i := range coeffs {
			coeffs[i] = 0
		}
		return
	}
	abs := func(v T) T {
		if v < 0 {
			return -v
		}
		return v
	}
	mags := make([]T, len(coeffs))
	for i, v := range coeffs {
		mags[i] = abs(v)
	}
	thresh := quickSelect(mags, len(mags)-k) // k-th largest magnitude
	above := 0
	for _, v := range coeffs {
		if abs(v) > thresh {
			above++
		}
	}
	allowTies := k - above // entries equal to thresh that may survive
	for i, v := range coeffs {
		switch m := abs(v); {
		case m > thresh:
			// keep
		case m == thresh && allowTies > 0:
			allowTies--
		default:
			coeffs[i] = 0
		}
	}
}

// quickSelect returns the element of rank idx (0-based ascending) of a,
// destroying a's order.
func quickSelect[T linalg.Float](a []T, idx int) T {
	lo, hi := 0, len(a)-1
	for {
		if lo == hi {
			return a[lo]
		}
		pivot := a[(lo+hi)/2]
		i, j := lo, hi
		for i <= j {
			for a[i] < pivot {
				i++
			}
			for a[j] > pivot {
				j--
			}
			if i <= j {
				a[i], a[j] = a[j], a[i]
				i++
				j--
			}
		}
		switch {
		case idx <= j:
			hi = j
		case idx >= i:
			lo = i
		default:
			return a[idx]
		}
	}
}
