// Package wavelet implements the orthonormal periodized discrete wavelet
// transform used as the sparsifying basis Ψ of the CS-ECG pipeline.
//
// The paper represents each 2-second ECG window as x = Ψα with α sparse
// in an orthonormal wavelet basis. This package provides Daubechies
// wavelets of order 1 (Haar) through 10, a multi-level periodized
// analysis/synthesis pair, and a linalg.Op view of the synthesis operator
// so the solver never materializes Ψ as a matrix.
//
// Filter coefficients are not hard-coded: they are derived at
// construction time by the classical spectral-factorization recipe
// (Daubechies, "Ten Lectures on Wavelets", ch. 6) — build the maximally
// flat half-band polynomial, root it with a Durand-Kerner iteration, keep
// the minimum-phase half, and renormalize. Orthonormality and the p
// vanishing moments are asserted by the package tests, which pins down
// the construction far more tightly than a typed-in table would.
package wavelet

import (
	"fmt"
	"math"
	"math/cmplx"
)

// DaubechiesFilter returns the 2p-tap Daubechies-p orthonormal scaling
// (low-pass) filter h with Σh = √2. Order 1 is the Haar filter. Orders
// up to 10 are supported; beyond that the double-precision root finding
// loses too much accuracy to guarantee orthonormality.
func DaubechiesFilter(p int) ([]float64, error) {
	if p < 1 || p > 10 {
		return nil, fmt.Errorf("wavelet: Daubechies order %d out of [1, 10]", p)
	}
	if p == 1 {
		v := 1 / math.Sqrt2
		return []float64{v, v}, nil
	}
	// P(y) = Σ_{k=0}^{p-1} C(p-1+k, k) y^k — the maximally flat residual.
	c := make([]float64, p)
	c[0] = 1
	for k := 1; k < p; k++ {
		c[k] = c[k-1] * float64(p-1+k) / float64(k)
	}
	// Root the residual in y-space (degree p−1, well conditioned), then
	// map each y-root through the substitution y = (2 − z − z⁻¹)/4, i.e.
	// z² + (4y − 2)z + 1 = 0, and keep the root inside the unit circle.
	// The two z-roots of each quadratic are reciprocals, so exactly one
	// lies inside (Daubechies polynomials have no unit-circle roots).
	yRoots, err := durandKerner(c)
	if err != nil {
		return nil, fmt.Errorf("wavelet: factoring Daubechies-%d residual: %w", p, err)
	}
	inside := make([]complex128, 0, p-1)
	for _, y := range yRoots {
		b := 4*y - 2
		disc := cmplx.Sqrt(b*b - 4)
		z1 := (-b + disc) / 2
		z2 := (-b - disc) / 2
		z := z1
		if cmplx.Abs(z2) < cmplx.Abs(z1) {
			z = z2
		}
		if cmplx.Abs(z) >= 1 {
			return nil, fmt.Errorf("wavelet: Daubechies-%d root on/outside unit circle (|z| = %v)", p, cmplx.Abs(z))
		}
		inside = append(inside, z)
	}
	if len(inside) != p-1 {
		return nil, fmt.Errorf("wavelet: Daubechies-%d expected %d minimum-phase roots, found %d", p, p-1, len(inside))
	}
	// h(z) = ((1+z)/2)^p · ∏(z − r_i), then renormalize Σh = √2.
	hc := []complex128{1}
	for i := 0; i < p; i++ {
		hc = cpolyMul(hc, []complex128{0.5, 0.5}) // (1+z)/2
	}
	for _, r := range inside {
		hc = cpolyMul(hc, []complex128{-r, 1}) // (z − r)
	}
	h := make([]float64, len(hc))
	var sum float64
	for i, v := range hc {
		if math.Abs(imag(v)) > 1e-8 {
			return nil, fmt.Errorf("wavelet: Daubechies-%d produced complex tap %v", p, v)
		}
		h[i] = real(v)
		sum += h[i]
	}
	scale := math.Sqrt2 / sum
	for i := range h {
		h[i] *= scale
	}
	return h, nil
}

// QMF returns the quadrature-mirror (high-pass) filter of h:
// g[n] = (−1)^n · h[L−1−n].
func QMF(h []float64) []float64 {
	g := make([]float64, len(h))
	for n := range g {
		v := h[len(h)-1-n]
		if n%2 == 1 {
			v = -v
		}
		g[n] = v
	}
	return g
}

func cpolyMul(a, b []complex128) []complex128 {
	out := make([]complex128, len(a)+len(b)-1)
	for i, av := range a {
		for j, bv := range b {
			out[i+j] += av * bv
		}
	}
	return out
}

// durandKerner finds all complex roots of the real polynomial q
// (ascending coefficients) by simultaneous Weierstrass iteration.
func durandKerner(q []float64) ([]complex128, error) {
	// Trim leading (high-order) zeros.
	deg := len(q) - 1
	for deg > 0 && q[deg] == 0 {
		deg--
	}
	if deg < 1 {
		return nil, nil
	}
	// Monic normalization.
	monic := make([]complex128, deg+1)
	lead := q[deg]
	for i := 0; i <= deg; i++ {
		monic[i] = complex(q[i]/lead, 0)
	}
	eval := func(z complex128) complex128 {
		acc := monic[deg]
		for i := deg - 1; i >= 0; i-- {
			acc = acc*z + monic[i]
		}
		return acc
	}
	// Initial guesses on a slightly irrational spiral to break symmetry.
	roots := make([]complex128, deg)
	for i := range roots {
		angle := 2*math.Pi*float64(i)/float64(deg) + 0.39
		r := 0.6 + 0.31*float64(i%3)
		roots[i] = cmplx.Rect(r, angle)
	}
	const maxIter = 500
	for iter := 0; iter < maxIter; iter++ {
		var worst float64
		for i := range roots {
			num := eval(roots[i])
			den := complex(1, 0)
			for j := range roots {
				if j != i {
					den *= roots[i] - roots[j]
				}
			}
			if den == 0 {
				den = complex(1e-30, 0)
			}
			delta := num / den
			roots[i] -= delta
			if d := cmplx.Abs(delta); d > worst {
				worst = d
			}
		}
		if worst < 1e-14 {
			return roots, nil
		}
	}
	// Accept if residuals are tiny even without step convergence.
	for _, r := range roots {
		if cmplx.Abs(eval(r)) > 1e-10 {
			return nil, fmt.Errorf("root finder did not converge (deg %d)", deg)
		}
	}
	return roots, nil
}
