package wavelet

import (
	"math"
	"testing"
)

func loopFixtures(t testing.TB, n int) (x, h, g, d1, d2, d3 []float32) {
	t.Helper()
	h64, err := DaubechiesFilter(4)
	if err != nil {
		t.Fatal(err)
	}
	g64 := QMF(h64)
	h = make([]float32, len(h64))
	g = make([]float32, len(g64))
	for i := range h64 {
		h[i] = float32(h64[i])
		g[i] = float32(g64[i])
	}
	x = make([]float32, n)
	state := uint64(5)
	for i := range x {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		x[i] = float32(int64(state%2001)-1000) / 50
	}
	return x, h, g, make([]float32, n), make([]float32, n), make([]float32, n)
}

func TestLoopShapesAgree(t *testing.T) {
	for _, n := range []int{16, 64, 512} {
		x, h, g, d1, d2, d3 := loopFixtures(t, n)
		analyzeOnceScalar(d1, x, h, g)
		analyzeOnceInnerVec(d2, x, h, g)
		analyzeOnceOuterVec(d3, x, h, g)
		for i := range d1 {
			if math.Abs(float64(d1[i]-d2[i])) > 1e-3 {
				t.Fatalf("n=%d inner-vec diverges at %d: %v vs %v", n, i, d1[i], d2[i])
			}
			if math.Abs(float64(d1[i]-d3[i])) > 1e-3 {
				t.Fatalf("n=%d outer-vec diverges at %d: %v vs %v", n, i, d1[i], d3[i])
			}
		}
	}
}

func TestLoopShapesMatchTransform(t *testing.T) {
	// The loop-shape study must compute the same split as the production
	// transform's first level.
	const n = 256
	x, h, g, d1, _, _ := loopFixtures(t, n)
	analyzeOnceScalar(d1, x, h, g)
	w, err := New[float32](4, n, 1)
	if err != nil {
		t.Fatal(err)
	}
	ref := make([]float32, n)
	w.Forward(ref, x)
	for i := range ref {
		if math.Abs(float64(ref[i]-d1[i])) > 1e-4 {
			t.Fatalf("loop study diverges from Transform at %d: %v vs %v", i, ref[i], d1[i])
		}
	}
}

// Benchmarks reproducing Fig. 5: outer-loop vectorization avoids the
// inner shape's horizontal reductions.

func BenchmarkFilterLoopScalar512(b *testing.B) {
	x, h, g, d, _, _ := loopFixtures(b, 512)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		analyzeOnceScalar(d, x, h, g)
	}
}

func BenchmarkFilterLoopInnerVec512(b *testing.B) {
	x, h, g, d, _, _ := loopFixtures(b, 512)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		analyzeOnceInnerVec(d, x, h, g)
	}
}

func BenchmarkFilterLoopOuterVec512(b *testing.B) {
	x, h, g, d, _, _ := loopFixtures(b, 512)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		analyzeOnceOuterVec(d, x, h, g)
	}
}
