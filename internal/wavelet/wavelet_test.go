package wavelet

import (
	"math"
	"testing"
	"testing/quick"

	"csecg/internal/linalg"
)

func TestDaubechiesHaar(t *testing.T) {
	h, err := DaubechiesFilter(1)
	if err != nil {
		t.Fatal(err)
	}
	v := 1 / math.Sqrt2
	if len(h) != 2 || math.Abs(h[0]-v) > 1e-15 || math.Abs(h[1]-v) > 1e-15 {
		t.Fatalf("Haar filter = %v", h)
	}
}

func TestDaubechiesDb2KnownValues(t *testing.T) {
	// db2 has the closed form ((1±√3)/(4√2), (3±√3)/(4√2)).
	h, err := DaubechiesFilter(2)
	if err != nil {
		t.Fatal(err)
	}
	s3 := math.Sqrt(3)
	want := []float64{
		(1 + s3) / (4 * math.Sqrt2),
		(3 + s3) / (4 * math.Sqrt2),
		(3 - s3) / (4 * math.Sqrt2),
		(1 - s3) / (4 * math.Sqrt2),
	}
	if len(h) != 4 {
		t.Fatalf("db2 length %d, want 4", len(h))
	}
	// The construction may yield the reversed filter; both are valid
	// orthonormal QMF pairs. Accept either orientation.
	match := func(a, b []float64) bool {
		for i := range a {
			if math.Abs(a[i]-b[i]) > 1e-10 {
				return false
			}
		}
		return true
	}
	rev := []float64{want[3], want[2], want[1], want[0]}
	if !match(h, want) && !match(h, rev) {
		t.Fatalf("db2 filter = %v, want %v (either orientation)", h, want)
	}
}

func TestDaubechiesOrthonormality(t *testing.T) {
	for p := 1; p <= 10; p++ {
		h, err := DaubechiesFilter(p)
		if err != nil {
			t.Fatalf("order %d: %v", p, err)
		}
		if len(h) != 2*p {
			t.Fatalf("order %d: length %d, want %d", p, len(h), 2*p)
		}
		var sum float64
		for _, v := range h {
			sum += v
		}
		if math.Abs(sum-math.Sqrt2) > 1e-9 {
			t.Errorf("order %d: Σh = %v, want √2", p, sum)
		}
		// Shifted orthonormality: Σ h[n]h[n+2k] = δ_k.
		for k := 0; k < p; k++ {
			var dot float64
			for n := 0; n+2*k < len(h); n++ {
				dot += h[n] * h[n+2*k]
			}
			want := 0.0
			if k == 0 {
				want = 1
			}
			if math.Abs(dot-want) > 1e-9 {
				t.Errorf("order %d shift %d: autocorrelation %v, want %v", p, k, dot, want)
			}
		}
	}
}

func TestDaubechiesVanishingMoments(t *testing.T) {
	// The wavelet filter g of Daubechies-p annihilates polynomials of
	// degree < p: Σ g[n]·n^m = 0 for m = 0..p−1. This pins the filter to
	// being genuinely Daubechies, not just any orthonormal pair.
	for p := 1; p <= 10; p++ {
		h, err := DaubechiesFilter(p)
		if err != nil {
			t.Fatal(err)
		}
		g := QMF(h)
		for m := 0; m < p; m++ {
			var s, scale float64
			for n, v := range g {
				s += v * math.Pow(float64(n), float64(m))
				scale += math.Abs(v) * math.Pow(float64(n), float64(m))
			}
			if scale == 0 {
				scale = 1
			}
			if math.Abs(s)/scale > 1e-7 {
				t.Errorf("order %d: moment %d = %v (relative %v), want 0", p, m, s, s/scale)
			}
		}
	}
}

func TestDaubechiesInvalidOrder(t *testing.T) {
	for _, p := range []int{0, -1, 11} {
		if _, err := DaubechiesFilter(p); err == nil {
			t.Errorf("order %d: expected error", p)
		}
	}
}

func TestNewValidation(t *testing.T) {
	cases := []struct{ order, n, levels int }{
		{4, 0, 1},    // bad length
		{4, 512, 0},  // bad levels
		{4, 502, 2},  // not divisible
		{4, 512, 7},  // coarsest block 4 < 8 taps
		{11, 512, 3}, // bad order
	}
	for _, c := range cases {
		if _, err := New[float64](c.order, c.n, c.levels); err == nil {
			t.Errorf("New(%d, %d, %d): expected error", c.order, c.n, c.levels)
		}
	}
	if _, err := New[float64](4, 512, 5); err != nil {
		t.Errorf("New(4, 512, 5): %v", err)
	}
}

func TestMaxLevels(t *testing.T) {
	if got := MaxLevels(4, 512); got != 6 {
		t.Errorf("MaxLevels(4, 512) = %d, want 6", got)
	}
	if got := MaxLevels(1, 512); got != 8 {
		t.Errorf("MaxLevels(1, 512) = %d, want 8", got)
	}
	if got := MaxLevels(8, 16); got != 0 {
		t.Errorf("MaxLevels(8, 16) = %d, want 0", got)
	}
}

func TestPerfectReconstruction(t *testing.T) {
	for _, order := range []int{1, 2, 4, 8} {
		for _, levels := range []int{1, 3, 5} {
			w, err := New[float64](order, 512, levels)
			if err != nil {
				t.Fatalf("order %d levels %d: %v", order, levels, err)
			}
			x := make([]float64, 512)
			state := uint64(7)
			for i := range x {
				state ^= state << 13
				state ^= state >> 7
				state ^= state << 17
				x[i] = float64(int64(state%4001)-2000) / 100
			}
			coeffs := make([]float64, 512)
			back := make([]float64, 512)
			w.Forward(coeffs, x)
			w.Inverse(back, coeffs)
			if d := linalg.MaxAbsDiff(x, back); d > 1e-9 {
				t.Errorf("order %d levels %d: reconstruction error %v", order, levels, d)
			}
		}
	}
}

func TestParsevalEnergyPreserved(t *testing.T) {
	// Orthonormal transform preserves the l2 norm.
	w, err := New[float64](4, 256, 4)
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed uint64) bool {
		x := make([]float64, 256)
		s := seed | 1
		for i := range x {
			s ^= s << 13
			s ^= s >> 7
			s ^= s << 17
			x[i] = float64(int64(s%2001)-1000) / 250
		}
		coeffs := make([]float64, 256)
		w.Forward(coeffs, x)
		return math.Abs(float64(linalg.Norm2(x)-linalg.Norm2(coeffs))) < 1e-9*(1+float64(linalg.Norm2(x)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSynthesisOpAdjoint(t *testing.T) {
	w, err := New[float64](4, 512, 5)
	if err != nil {
		t.Fatal(err)
	}
	if mm := linalg.AdjointMismatch(w.SynthesisOp(), 5); mm > 1e-10 {
		t.Errorf("synthesis operator adjoint mismatch %v", mm)
	}
}

func TestForwardOfConstantIsDCOnly(t *testing.T) {
	// A constant signal must land entirely in the approximation band:
	// all detail coefficients vanish (one vanishing moment is enough).
	w, err := New[float64](4, 512, 5)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, 512)
	for i := range x {
		x[i] = 3.25
	}
	coeffs := make([]float64, 512)
	w.Forward(coeffs, x)
	coarse := 512 >> 5
	for i := coarse; i < len(coeffs); i++ {
		if math.Abs(coeffs[i]) > 1e-9 {
			t.Fatalf("detail coefficient %d = %v, want 0", i, coeffs[i])
		}
	}
}

func TestRampDetailsVanishDb2Plus(t *testing.T) {
	// db2 has two vanishing moments: a linear ramp's interior detail
	// coefficients are zero (periodization affects only the wrap-around).
	w, err := New[float64](2, 256, 1)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, 256)
	for i := range x {
		x[i] = float64(i)
	}
	coeffs := make([]float64, 256)
	w.Forward(coeffs, x)
	// details are coeffs[128:256]; wrap-around pollutes the last couple.
	for i := 128; i < 254; i++ {
		if math.Abs(coeffs[i]) > 1e-8 {
			t.Fatalf("ramp detail %d = %v, want ~0", i, coeffs[i])
		}
	}
}

func TestFloat32Instantiation(t *testing.T) {
	w, err := New[float32](4, 512, 5)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float32, 512)
	for i := range x {
		x[i] = float32(math.Sin(float64(i) * 0.1))
	}
	coeffs := make([]float32, 512)
	back := make([]float32, 512)
	w.Forward(coeffs, x)
	w.Inverse(back, coeffs)
	if d := linalg.MaxAbsDiff(x, back); d > 1e-5 {
		t.Errorf("float32 reconstruction error %v", d)
	}
}

func TestLargestK(t *testing.T) {
	c := []float64{5, -3, 1, 0.5, -8, 2}
	LargestK(c, 2)
	want := []float64{0, 0, 0, 0, -8, 0}
	want[0] = 5
	for i := range c {
		if c[i] != want[i] {
			t.Errorf("LargestK[%d] = %v, want %v", i, c[i], want[i])
		}
	}
}

func TestLargestKEdge(t *testing.T) {
	c := []float64{1, 2, 3}
	LargestK(c, 5) // k ≥ len: untouched
	if c[0] != 1 || c[2] != 3 {
		t.Error("LargestK with k>len modified the slice")
	}
	LargestK(c, 0)
	for _, v := range c {
		if v != 0 {
			t.Error("LargestK(0) did not zero everything")
		}
	}
	// Ties: four equal magnitudes, keep exactly 2.
	c = []float64{1, -1, 1, -1}
	LargestK(c, 2)
	nz := 0
	for _, v := range c {
		if v != 0 {
			nz++
		}
	}
	if nz != 2 {
		t.Errorf("LargestK tie handling kept %d, want 2", nz)
	}
}

func TestLargestKProperty(t *testing.T) {
	f := func(raw []float64, kRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		c := make([]float64, len(raw))
		for i, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = 0
			}
			c[i] = math.Mod(v, 1e6)
		}
		k := int(kRaw) % (len(c) + 1)
		LargestK(c, k)
		nz := 0
		for _, v := range c {
			if v != 0 {
				nz++
			}
		}
		return nz <= k
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestECGLikeSignalIsSparse(t *testing.T) {
	// A spiky quasi-periodic signal should compress: keeping 10% of db4
	// coefficients must retain > 99% of the energy. This is the sparsity
	// premise of the whole paper.
	n := 512
	x := make([]float64, n)
	for i := range x {
		ti := float64(i) / 256
		phase := math.Mod(ti, 0.8) / 0.8
		// Narrow Gaussian "R peak" plus small T wave per 0.8 s beat.
		x[i] = 1000*math.Exp(-math.Pow((phase-0.3)*30, 2)) +
			200*math.Exp(-math.Pow((phase-0.55)*8, 2))
	}
	w, err := New[float64](4, n, 5)
	if err != nil {
		t.Fatal(err)
	}
	coeffs := make([]float64, n)
	w.Forward(coeffs, x)
	full := float64(linalg.Norm2(coeffs))
	LargestK(coeffs, n/10)
	kept := float64(linalg.Norm2(coeffs))
	if kept/full < 0.99 {
		t.Errorf("top-10%% coefficients hold %.4f of energy, want > 0.99", kept/full)
	}
}

func BenchmarkForward512Db4Float32(b *testing.B) {
	w, _ := New[float32](4, 512, 5)
	x := make([]float32, 512)
	for i := range x {
		x[i] = float32(i % 37)
	}
	dst := make([]float32, 512)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Forward(dst, x)
	}
}

func BenchmarkInverse512Db4Float32(b *testing.B) {
	w, _ := New[float32](4, 512, 5)
	c := make([]float32, 512)
	for i := range c {
		c[i] = float32(i % 37)
	}
	dst := make([]float32, 512)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Inverse(dst, c)
	}
}

func BenchmarkDaubechiesConstruction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := DaubechiesFilter(8); err != nil {
			b.Fatal(err)
		}
	}
}
