package huffman

import "testing"

// FuzzDeserialize hardens the codebook loader: arbitrary bytes must
// never panic, and an accepted codebook must round-trip symbols.
func FuzzDeserialize(f *testing.F) {
	freq := make([]int, 512)
	for i := range freq {
		d := i - 256
		if d < 0 {
			d = -d
		}
		freq[i] = 1 + 10000/(1+d)
	}
	cb, err := Train(freq)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(cb.Serialize())
	f.Add([]byte{})
	f.Add([]byte{0x16, 0xCB, 0x00, 0x04})
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := Deserialize(data)
		if err != nil {
			return
		}
		// An accepted codebook must encode/decode its first coded
		// symbol consistently.
		for s := 0; s < got.NumSymbols(); s++ {
			if got.CodeLen(s) == 0 {
				continue
			}
			blob, _, err := got.EncodeAll([]int{s})
			if err != nil {
				t.Fatalf("accepted codebook cannot encode symbol %d: %v", s, err)
			}
			back, err := got.DecodeAll(blob, 1)
			if err != nil || back[0] != s {
				t.Fatalf("round trip failed for symbol %d: %v %v", s, back, err)
			}
			break
		}
	})
}

// FuzzDecodeStream hardens the canonical decoder against garbage
// bitstreams: it must either error or return in-range symbols, and the
// accepted prefix must re-encode to the same bits.
func FuzzDecodeStream(f *testing.F) {
	freq := make([]int, 64)
	for i := range freq {
		freq[i] = 1 + (64-i)*(64-i)
	}
	cb, err := Train(freq)
	if err != nil {
		f.Fatal(err)
	}
	valid, _, _ := cb.EncodeAll([]int{0, 5, 63, 17})
	f.Add(valid, 4)
	f.Add([]byte{0xFF, 0xFF, 0xFF}, 10)
	f.Fuzz(func(t *testing.T, data []byte, count int) {
		if count < 0 || count > 1024 {
			return
		}
		symbols, err := cb.DecodeAll(data, count)
		if err != nil {
			return
		}
		w := NewBitWriter()
		for _, s := range symbols {
			if s < 0 || s >= 64 {
				t.Fatalf("decoded out-of-range symbol %d", s)
			}
			if err := cb.Encode(w, s); err != nil {
				t.Fatalf("re-encoding decoded symbol %d: %v", s, err)
			}
		}
		re := w.Bytes()
		// The re-encoded stream must be a bit-prefix of the input.
		for i := range re {
			if i == len(re)-1 {
				break // final byte may differ in padding bits
			}
			if i < len(data) && re[i] != data[i] {
				t.Fatalf("re-encoded stream diverges at byte %d", i)
			}
		}
	})
}
