package huffman

import (
	"math"
	"testing"
	"testing/quick"
)

func TestBitWriterReaderRoundTrip(t *testing.T) {
	w := NewBitWriter()
	w.WriteBits(0b101, 3)
	w.WriteBits(0b1, 1)
	w.WriteBits(0xABCD, 16)
	w.WriteBits(0, 0)
	w.WriteBits(0x3, 2)
	bits := w.BitLen()
	if bits != 22 {
		t.Fatalf("BitLen = %d, want 22", bits)
	}
	r := NewBitReader(w.Bytes())
	checks := []struct {
		width uint
		want  uint32
	}{{3, 0b101}, {1, 1}, {16, 0xABCD}, {2, 3}}
	for i, c := range checks {
		got, err := r.ReadBits(c.width)
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Fatalf("field %d = %#x, want %#x", i, got, c.want)
		}
	}
}

func TestBitReaderExhaustion(t *testing.T) {
	r := NewBitReader([]byte{0xFF})
	if _, err := r.ReadBits(8); err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReadBit(); err != ErrOutOfBits {
		t.Fatalf("expected ErrOutOfBits, got %v", err)
	}
}

func TestBitRoundTripProperty(t *testing.T) {
	f := func(vals []uint32, widthsRaw []uint8) bool {
		n := len(vals)
		if len(widthsRaw) < n {
			n = len(widthsRaw)
		}
		w := NewBitWriter()
		widths := make([]uint, n)
		for i := 0; i < n; i++ {
			widths[i] = uint(widthsRaw[i]%32) + 1
			w.WriteBits(vals[i], widths[i])
		}
		r := NewBitReader(w.Bytes())
		for i := 0; i < n; i++ {
			got, err := r.ReadBits(widths[i])
			if err != nil {
				return false
			}
			want := vals[i] & (1<<widths[i] - 1)
			if got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestLengthLimitedBasic(t *testing.T) {
	// Classic example: freq 1,1,2,3,5 → optimal Huffman lengths 3,3,2,2,1...
	// verify Kraft equality and optimality within limit.
	freq := []int{1, 1, 2, 3, 5}
	lengths, err := LengthLimitedCodeLengths(freq, 16)
	if err != nil {
		t.Fatal(err)
	}
	if kraftSum(lengths, MaxCodeLen) != 1<<MaxCodeLen {
		t.Errorf("Kraft sum not exactly 1: lengths %v", lengths)
	}
	// Higher frequency never gets a longer code.
	for i := range freq {
		for j := range freq {
			if freq[i] > freq[j] && lengths[i] > lengths[j] {
				t.Errorf("freq %d > %d but length %d > %d", freq[i], freq[j], lengths[i], lengths[j])
			}
		}
	}
}

func TestLengthLimitEnforced(t *testing.T) {
	// Fibonacci-like frequencies force unlimited Huffman depth ~ n; the
	// limit must cap it.
	freq := make([]int, 24)
	a, b := 1, 1
	for i := range freq {
		freq[i] = a
		a, b = b, a+b
	}
	lengths, err := LengthLimitedCodeLengths(freq, 8)
	if err != nil {
		t.Fatal(err)
	}
	for s, l := range lengths {
		if l > 8 {
			t.Errorf("symbol %d length %d exceeds limit 8", s, l)
		}
		if l == 0 && freq[s] > 0 {
			t.Errorf("symbol %d with freq %d got no code", s, freq[s])
		}
	}
	if kraftSum(lengths, MaxCodeLen) != 1<<MaxCodeLen {
		t.Error("Kraft equality violated under length limit")
	}
}

func TestLengthLimitedMatchesEntropy(t *testing.T) {
	// Average code length must be within 1 bit of the entropy
	// (Huffman optimality), and respect the entropy lower bound.
	freq := []int{100, 60, 30, 20, 10, 5, 3, 2, 1, 1}
	lengths, err := LengthLimitedCodeLengths(freq, 16)
	if err != nil {
		t.Fatal(err)
	}
	var total float64
	for _, f := range freq {
		total += float64(f)
	}
	var entropy, avg float64
	for s, f := range freq {
		p := float64(f) / total
		entropy -= p * math.Log2(p)
		avg += p * float64(lengths[s])
	}
	if avg < entropy-1e-9 {
		t.Errorf("average length %v below entropy %v (impossible)", avg, entropy)
	}
	if avg > entropy+1 {
		t.Errorf("average length %v more than 1 bit above entropy %v", avg, entropy)
	}
}

func TestLengthLimitedEdgeCases(t *testing.T) {
	if _, err := LengthLimitedCodeLengths(nil, 16); err == nil {
		t.Error("empty alphabet: expected error")
	}
	if _, err := LengthLimitedCodeLengths([]int{0, 0}, 16); err == nil {
		t.Error("all-zero frequencies: expected error")
	}
	if _, err := LengthLimitedCodeLengths([]int{1, -1}, 16); err == nil {
		t.Error("negative frequency: expected error")
	}
	if _, err := LengthLimitedCodeLengths(make([]int, 10), 0); err == nil {
		t.Error("maxLen 0: expected error")
	}
	// Single symbol gets one bit.
	lengths, err := LengthLimitedCodeLengths([]int{0, 7, 0}, 16)
	if err != nil {
		t.Fatal(err)
	}
	if lengths[1] != 1 || lengths[0] != 0 || lengths[2] != 0 {
		t.Errorf("single-symbol lengths = %v", lengths)
	}
	// 5 symbols cannot fit in 2-bit codes.
	if _, err := LengthLimitedCodeLengths([]int{1, 1, 1, 1, 1}, 2); err == nil {
		t.Error("5 symbols at maxLen 2: expected error")
	}
	// 4 symbols exactly fit 2-bit codes.
	lengths, err = LengthLimitedCodeLengths([]int{1, 1, 1, 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range lengths {
		if l != 2 {
			t.Errorf("uniform 4-symbol lengths = %v, want all 2", lengths)
		}
	}
}

func TestCodebookRoundTrip(t *testing.T) {
	freq := make([]int, 512)
	// Laplacian-ish distribution centered at 256 (diff = 0).
	for i := range freq {
		d := i - 256
		if d < 0 {
			d = -d
		}
		freq[i] = 1 + 100000/(1+d*d)
	}
	cb, err := Train(freq)
	if err != nil {
		t.Fatal(err)
	}
	symbols := []int{256, 255, 257, 0, 511, 300, 100, 256, 256}
	data, bits, err := cb.EncodeAll(symbols)
	if err != nil {
		t.Fatal(err)
	}
	if bits <= 0 || len(data) != (bits+7)/8 {
		t.Fatalf("bits %d, bytes %d inconsistent", bits, len(data))
	}
	back, err := cb.DecodeAll(data, len(symbols))
	if err != nil {
		t.Fatal(err)
	}
	for i := range symbols {
		if back[i] != symbols[i] {
			t.Fatalf("symbol %d: decoded %d, want %d", i, back[i], symbols[i])
		}
	}
}

func TestCodebookCompleteness512(t *testing.T) {
	// The paper's codebook covers all 512 symbols with ≤ 16-bit words.
	freq := make([]int, 512)
	for i := range freq {
		d := i - 256
		freq[i] = 1 + 50000/(1+d*d/4) // heavy center, smoothed tails
	}
	cb, err := Train(freq)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 512; s++ {
		l := cb.CodeLen(s)
		if l < 1 || l > 16 {
			t.Fatalf("symbol %d length %d out of [1, 16]", s, l)
		}
	}
	if cb.MaxLen() > 16 {
		t.Fatalf("MaxLen %d", cb.MaxLen())
	}
}

func TestCodebookRoundTripProperty(t *testing.T) {
	freq := make([]int, 64)
	for i := range freq {
		freq[i] = 1 + (64-i)*(64-i)
	}
	cb, err := Train(freq)
	if err != nil {
		t.Fatal(err)
	}
	f := func(raw []uint8) bool {
		symbols := make([]int, len(raw))
		for i, v := range raw {
			symbols[i] = int(v) % 64
		}
		data, _, err := cb.EncodeAll(symbols)
		if err != nil {
			return false
		}
		back, err := cb.DecodeAll(data, len(symbols))
		if err != nil {
			return false
		}
		for i := range symbols {
			if back[i] != symbols[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSerializeDeserialize(t *testing.T) {
	freq := make([]int, 512)
	for i := range freq {
		d := i - 256
		if d < 0 {
			d = -d
		}
		freq[i] = 1 + 10000/(1+d)
	}
	cb, err := Train(freq)
	if err != nil {
		t.Fatal(err)
	}
	blob := cb.Serialize()
	// Paper layout: 1 kB codewords + 512 B lengths (+ 4 B header).
	if len(blob) != 4+1024+512 {
		t.Fatalf("serialized size %d, want %d", len(blob), 4+1024+512)
	}
	back, err := Deserialize(blob)
	if err != nil {
		t.Fatal(err)
	}
	symbols := []int{0, 1, 255, 256, 257, 511}
	data, _, err := cb.EncodeAll(symbols)
	if err != nil {
		t.Fatal(err)
	}
	got, err := back.DecodeAll(data, len(symbols))
	if err != nil {
		t.Fatal(err)
	}
	for i := range symbols {
		if got[i] != symbols[i] {
			t.Fatalf("deserialized codebook mismatch at %d", i)
		}
	}
}

func TestDeserializeRejectsCorruption(t *testing.T) {
	freq := []int{5, 3, 2, 1}
	cb, _ := Train(freq)
	blob := cb.Serialize()
	bad := append([]byte(nil), blob...)
	bad[0] ^= 0xFF // magic
	if _, err := Deserialize(bad); err == nil {
		t.Error("corrupt magic accepted")
	}
	bad = append([]byte(nil), blob...)
	bad = bad[:len(bad)-1] // truncated
	if _, err := Deserialize(bad); err == nil {
		t.Error("truncated blob accepted")
	}
	bad = append([]byte(nil), blob...)
	bad[4] ^= 0x01 // non-canonical codeword
	if _, err := Deserialize(bad); err == nil {
		t.Error("non-canonical codeword accepted")
	}
}

func TestEncodeUnknownSymbol(t *testing.T) {
	cb, _ := Train([]int{1, 1, 0, 1})
	w := NewBitWriter()
	if err := cb.Encode(w, 2); err == nil {
		t.Error("encoding zero-frequency symbol should fail")
	}
	if err := cb.Encode(w, 99); err == nil {
		t.Error("encoding out-of-range symbol should fail")
	}
}

func TestDecodeGarbage(t *testing.T) {
	// A codebook that doesn't cover all 16-bit prefixes must reject
	// garbage rather than loop.
	cb, err := Train([]int{1000, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	_ = cb
	// All-ones stream will eventually hit an invalid prefix or run out.
	r := NewBitReader([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	for i := 0; i < 40; i++ {
		if _, err := cb.Decode(r); err != nil {
			return // expected: either invalid codeword or out of bits
		}
	}
}

func TestExpectedBits(t *testing.T) {
	freq := []int{8, 4, 2, 2}
	cb, err := Train(freq)
	if err != nil {
		t.Fatal(err)
	}
	// Optimal: lengths 1,2,3,3 → avg = (8·1+4·2+2·3+2·3)/16 = 1.75.
	if got := cb.ExpectedBits(freq); math.Abs(got-1.75) > 1e-12 {
		t.Errorf("ExpectedBits = %v, want 1.75", got)
	}
}

func TestCompressionBeatsRaw(t *testing.T) {
	// Encoding a peaked distribution must beat the 9-bit raw width of
	// the 512-symbol alphabet.
	freq := make([]int, 512)
	for i := range freq {
		d := i - 256
		if d < 0 {
			d = -d
		}
		freq[i] = 1 + 200000/(1+d*d)
	}
	cb, err := Train(freq)
	if err != nil {
		t.Fatal(err)
	}
	if avg := cb.ExpectedBits(freq); avg >= 9 {
		t.Errorf("average %v bits/symbol does not beat raw 9", avg)
	}
}

func BenchmarkTrain512(b *testing.B) {
	freq := make([]int, 512)
	for i := range freq {
		d := i - 256
		if d < 0 {
			d = -d
		}
		freq[i] = 1 + 100000/(1+d*d)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Train(freq); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncode256Symbols(b *testing.B) {
	freq := make([]int, 512)
	for i := range freq {
		d := i - 256
		if d < 0 {
			d = -d
		}
		freq[i] = 1 + 100000/(1+d*d)
	}
	cb, _ := Train(freq)
	symbols := make([]int, 256)
	for i := range symbols {
		symbols[i] = 256 + (i%21 - 10)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := cb.EncodeAll(symbols); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecode256Symbols(b *testing.B) {
	freq := make([]int, 512)
	for i := range freq {
		d := i - 256
		if d < 0 {
			d = -d
		}
		freq[i] = 1 + 100000/(1+d*d)
	}
	cb, _ := Train(freq)
	symbols := make([]int, 256)
	for i := range symbols {
		symbols[i] = 256 + (i%21 - 10)
	}
	data, _, _ := cb.EncodeAll(symbols)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cb.DecodeAll(data, len(symbols)); err != nil {
			b.Fatal(err)
		}
	}
}
