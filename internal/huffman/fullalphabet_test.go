package huffman

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// TestDeserializeFullUint16Alphabet reproduces the counter-width hazard
// rangecheck flagged in the decode tables: a complete 2¹⁶-symbol
// alphabet of 16-bit codes drives countByLen[16] to 65536 and the
// firstIndex accumulation to the full symbol count — values the old
// int32 arithmetic approached with no guard. The all-length-16 codebook
// is canonical with codes[i] = i, which Deserialize verifies while
// rebuilding the tables. (Train is not used: package-merge is quadratic
// in the alphabet and this shape needs no optimization.)
func TestDeserializeFullUint16Alphabet(t *testing.T) {
	const n = 1 << 16
	data := make([]byte, SerializedSize(n))
	binary.LittleEndian.PutUint16(data[0:], serialMagic)
	binary.LittleEndian.PutUint16(data[2:], 0) // nsym wraps: 0 encodes 1<<16
	for s := 0; s < n; s++ {
		binary.LittleEndian.PutUint16(data[4+2*s:], uint16(s))
		data[4+2*n+s] = MaxCodeLen
	}
	cb, err := Deserialize(data)
	if err != nil {
		t.Fatal(err)
	}
	if cb.NumSymbols() != n || cb.MaxLen() != MaxCodeLen {
		t.Fatalf("NumSymbols = %d, MaxLen = %d", cb.NumSymbols(), cb.MaxLen())
	}

	// Encode→decode through the rebuilt tables, including the last
	// symbol, whose decode offset spans the whole 65536-entry table.
	for _, sym := range []int{0, 1, 32767, 65534, 65535} {
		w := NewBitWriter()
		if err := cb.Encode(w, sym); err != nil {
			t.Fatal(err)
		}
		got, err := cb.Decode(NewBitReader(w.Bytes()))
		if err != nil {
			t.Fatalf("decoding symbol %d: %v", sym, err)
		}
		if got != sym {
			t.Errorf("symbol %d decodes as %d", sym, got)
		}
	}

	// The wire form survives a round trip, n = 65536 re-encoding as 0.
	if out := cb.Serialize(); !bytes.Equal(out, data) {
		t.Error("serialize round trip differs")
	}
}
