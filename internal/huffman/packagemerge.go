package huffman

import (
	"fmt"
	"sort"
)

// LengthLimitedCodeLengths computes optimal prefix-code lengths for the
// given symbol frequencies under a maximum codeword length, using the
// package-merge algorithm (Larmore & Hirschberg 1990). Frequencies of
// zero are allowed; such symbols receive length 0 (no codeword). The
// returned lengths satisfy the Kraft equality Σ 2^{−len} = 1 over coded
// symbols (when more than one symbol is coded).
//
// The paper's codebook is "complete" — all 512 difference symbols get a
// codeword — which callers achieve by add-one smoothing before training.
func LengthLimitedCodeLengths(freq []int, maxLen int) ([]int, error) {
	n := len(freq)
	if n == 0 {
		return nil, fmt.Errorf("huffman: empty alphabet")
	}
	if maxLen < 1 || maxLen > 57 {
		return nil, fmt.Errorf("huffman: max length %d out of [1, 57]", maxLen)
	}
	type leaf struct {
		sym  int
		freq int
	}
	var leaves []leaf
	for s, f := range freq {
		if f < 0 {
			return nil, fmt.Errorf("huffman: negative frequency for symbol %d", s)
		}
		if f > 0 {
			leaves = append(leaves, leaf{s, f})
		}
	}
	lengths := make([]int, n)
	switch len(leaves) {
	case 0:
		return nil, fmt.Errorf("huffman: all frequencies zero")
	case 1:
		// A single coded symbol still needs one bit on the wire.
		lengths[leaves[0].sym] = 1
		return lengths, nil
	}
	if 1<<uint(maxLen) < len(leaves) {
		return nil, fmt.Errorf("huffman: %d symbols cannot fit in %d-bit codes", len(leaves), maxLen)
	}
	sort.Slice(leaves, func(i, j int) bool { return leaves[i].freq < leaves[j].freq })

	// Package-merge. An item is either a leaf or a package of two items
	// from the previous level. Selecting the cheapest 2(k−1) items of the
	// final merged list (k = #leaves) increments each contained leaf's
	// code length once per containment.
	// Multiplicity counters are int, not int32: package weights double
	// per level, and on a large alphabet the per-leaf multiplicities
	// approach 2·maxLen·k — the old int32 sums in pack/tally were the
	// unguarded additions rangecheck flags. Training runs off-device, so
	// the width costs the mote nothing.
	type item struct {
		weight int64
		count  []int // per-leaf-multiplicity of this item (indexed by leaves order)
	}
	mkLeafItems := func() []item {
		items := make([]item, len(leaves))
		for i, lf := range leaves {
			c := make([]int, len(leaves))
			c[i] = 1
			items[i] = item{weight: int64(lf.freq), count: c}
		}
		return items
	}
	merge := func(a, b []item) []item {
		out := make([]item, 0, len(a)+len(b))
		i, j := 0, 0
		for i < len(a) && j < len(b) {
			if a[i].weight <= b[j].weight {
				out = append(out, a[i])
				i++
			} else {
				out = append(out, b[j])
				j++
			}
		}
		out = append(out, a[i:]...)
		out = append(out, b[j:]...)
		return out
	}
	pack := func(items []item) []item {
		out := make([]item, 0, len(items)/2)
		for i := 0; i+1 < len(items); i += 2 {
			c := make([]int, len(leaves))
			for k := range c {
				c[k] = items[i].count[k] + items[i+1].count[k]
			}
			out = append(out, item{weight: items[i].weight + items[i+1].weight, count: c})
		}
		return out
	}
	list := mkLeafItems()
	for level := 1; level < maxLen; level++ {
		list = merge(pack(list), mkLeafItems())
	}
	need := 2 * (len(leaves) - 1)
	if len(list) < need {
		return nil, fmt.Errorf("huffman: package-merge shortfall (%d items, need %d)", len(list), need)
	}
	tally := make([]int, len(leaves))
	for _, it := range list[:need] {
		for k, c := range it.count {
			tally[k] += c
		}
	}
	for i, lf := range leaves {
		lengths[lf.sym] = tally[i]
	}
	return lengths, nil
}

// kraftSum returns Σ 2^{−len} scaled by 2^{maxLen} for exact integer
// comparison; used by validation and tests.
func kraftSum(lengths []int, maxLen int) int64 {
	var s int64
	for _, l := range lengths {
		if l > 0 {
			s += int64(1) << uint(maxLen-l)
		}
	}
	return s
}
