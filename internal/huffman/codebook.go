package huffman

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// MaxCodeLen is the paper's hard codeword-length limit: 16 bits, so the
// mote stores each codeword in one uint16.
const MaxCodeLen = 16

// Codebook is a canonical, length-limited Huffman code over symbols
// 0..NumSymbols−1. The zero value is unusable; build with Train or
// Deserialize.
type Codebook struct {
	lengths []uint8  // per-symbol codeword lengths (0 = never coded)
	codes   []uint16 // per-symbol canonical codewords, right-aligned
	// Canonical decode tables, one entry per length 1..MaxCodeLen. The
	// counters are int, not int32: a full 2¹⁶-symbol alphabet of
	// 16-bit codes makes countByLen[16] = 65536, and the old int32
	// accumulation in fromLengths/Decode sat 2 bits from wrapping with
	// no guard (rangecheck flags exactly that). Decode tables live on
	// the coordinator — only codes and lengths are serialized to flash —
	// so the widening costs the mote ledger nothing.
	firstCode  [MaxCodeLen + 1]uint32 // first canonical code of each length
	firstIndex [MaxCodeLen + 1]int    // index into symByCode of that code
	countByLen [MaxCodeLen + 1]int
	symByCode  []uint16 // symbols sorted by (length, code)
}

// Train builds a codebook from symbol frequencies. Every symbol with a
// nonzero frequency receives a codeword of at most MaxCodeLen bits; pass
// smoothed frequencies (all ≥ 1) to get the paper's complete 512-entry
// codebook. Training is an offline step — the mote only stores the
// result.
func Train(freq []int) (*Codebook, error) {
	if len(freq) > 1<<MaxCodeLen {
		return nil, fmt.Errorf("huffman: alphabet %d too large for %d-bit codes", len(freq), MaxCodeLen)
	}
	lengths, err := LengthLimitedCodeLengths(freq, MaxCodeLen)
	if err != nil {
		return nil, err
	}
	return fromLengths(lengths)
}

func fromLengths(lengths []int) (*Codebook, error) {
	cb := &Codebook{
		lengths: make([]uint8, len(lengths)),
		codes:   make([]uint16, len(lengths)),
	}
	type entry struct{ sym, length int }
	var coded []entry
	for s, l := range lengths {
		if l < 0 || l > MaxCodeLen {
			return nil, fmt.Errorf("huffman: symbol %d length %d out of [0, %d]", s, l, MaxCodeLen)
		}
		cb.lengths[s] = uint8(l)
		if l > 0 {
			coded = append(coded, entry{s, l})
		}
	}
	if len(coded) == 0 {
		return nil, fmt.Errorf("huffman: no coded symbols")
	}
	// Kraft inequality must hold or decoding is ambiguous.
	if kraftSum(lengths, MaxCodeLen) > 1<<MaxCodeLen {
		return nil, fmt.Errorf("huffman: lengths violate Kraft inequality")
	}
	// Canonical assignment: sort by (length, symbol), codes count up and
	// shift left at each length increase.
	sort.Slice(coded, func(i, j int) bool {
		if coded[i].length != coded[j].length {
			return coded[i].length < coded[j].length
		}
		return coded[i].sym < coded[j].sym
	})
	code := uint32(0)
	prevLen := coded[0].length
	cb.symByCode = make([]uint16, len(coded))
	for idx, e := range coded {
		code <<= uint(e.length - prevLen)
		prevLen = e.length
		cb.codes[e.sym] = uint16(code)
		cb.symByCode[idx] = uint16(e.sym)
		cb.countByLen[e.length]++
		code++
	}
	// Decode tables: first canonical code and start index per length.
	var first uint32
	var index int
	for l := 1; l <= MaxCodeLen; l++ {
		cb.firstCode[l] = first
		cb.firstIndex[l] = index
		first = (first + uint32(cb.countByLen[l])) << 1
		index += cb.countByLen[l]
	}
	return cb, nil
}

// NumSymbols returns the alphabet size.
func (cb *Codebook) NumSymbols() int { return len(cb.lengths) }

// CodeLen returns the codeword length of symbol s (0 if s is not coded).
func (cb *Codebook) CodeLen(s int) int { return int(cb.lengths[s]) }

// MaxLen returns the longest codeword length in use.
func (cb *Codebook) MaxLen() int {
	for l := MaxCodeLen; l >= 1; l-- {
		if cb.countByLen[l] > 0 {
			return l
		}
	}
	return 0
}

// Encode appends the codeword of symbol s to w. It returns an error if s
// has no codeword.
//
//csecg:hotpath one table lookup per coded symbol
func (cb *Codebook) Encode(w *BitWriter, s int) error {
	if s < 0 || s >= len(cb.lengths) || cb.lengths[s] == 0 {
		return fmt.Errorf("huffman: symbol %d not in codebook", s) //csecg:allocok error path, never taken per-sample
	}
	w.WriteBits(uint32(cb.codes[s]), uint(cb.lengths[s]))
	return nil
}

// Decode reads one symbol from r using the canonical decode tables
// (at most MaxLen bit reads, no tree walk).
func (cb *Codebook) Decode(r *BitReader) (int, error) {
	var code uint32
	for l := 1; l <= MaxCodeLen; l++ {
		b, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		code = code<<1 | b
		cnt := cb.countByLen[l]
		if cnt == 0 {
			continue
		}
		offset := int64(code) - int64(cb.firstCode[l])
		if offset >= 0 && offset < int64(cnt) {
			return int(cb.symByCode[cb.firstIndex[l]+int(offset)]), nil
		}
	}
	return 0, fmt.Errorf("huffman: invalid codeword")
}

// EncodeAll encodes the symbol slice and returns the packed bytes plus
// the exact bit count (before byte padding).
func (cb *Codebook) EncodeAll(symbols []int) ([]byte, int, error) {
	w := NewBitWriter()
	for _, s := range symbols {
		if err := cb.Encode(w, s); err != nil {
			return nil, 0, err
		}
	}
	bits := w.BitLen()
	return w.Bytes(), bits, nil
}

// DecodeAll decodes exactly count symbols from data.
func (cb *Codebook) DecodeAll(data []byte, count int) ([]int, error) {
	r := NewBitReader(data)
	out := make([]int, count)
	for i := range out {
		s, err := cb.Decode(r)
		if err != nil {
			return nil, fmt.Errorf("huffman: decoding symbol %d/%d: %w", i, count, err)
		}
		out[i] = s
	}
	return out, nil
}

// serialization layout (all little-endian):
//
//	magic  uint16 = 0xCB16
//	nsym   uint16
//	codes  nsym × uint16   (the paper's 1 kB for 512 symbols)
//	length nsym × uint8    (the paper's 512 B)
//
// Codewords are redundant with the lengths (canonical codes are
// derivable), but the mote stores both to avoid rebuild cost at boot —
// this mirrors the paper's 1 kB + 512 B flash budget, which
// internal/mote accounts for.
const serialMagic = 0xCB16

// SerializedSize returns the byte size of a serialized codebook over n
// symbols.
func SerializedSize(n int) int { return 4 + 2*n + n }

// Serialize encodes the codebook in the mote's flash layout.
func (cb *Codebook) Serialize() []byte {
	n := len(cb.lengths)
	out := make([]byte, SerializedSize(n))
	binary.LittleEndian.PutUint16(out[0:], serialMagic)
	binary.LittleEndian.PutUint16(out[2:], uint16(n))
	for s := 0; s < n; s++ {
		binary.LittleEndian.PutUint16(out[4+2*s:], cb.codes[s])
	}
	copy(out[4+2*n:], cb.lengths)
	return out
}

// Deserialize reconstructs a codebook from Serialize output, rebuilding
// the decode tables and verifying the stored codewords against the
// canonical assignment implied by the lengths.
func Deserialize(data []byte) (*Codebook, error) {
	if len(data) < 4 {
		return nil, fmt.Errorf("huffman: serialized codebook too short")
	}
	if binary.LittleEndian.Uint16(data[0:]) != serialMagic {
		return nil, fmt.Errorf("huffman: bad codebook magic")
	}
	n := int(binary.LittleEndian.Uint16(data[2:]))
	if n == 0 {
		n = 1 << 16
	}
	if len(data) != SerializedSize(n) {
		return nil, fmt.Errorf("huffman: serialized size %d, want %d for %d symbols", len(data), SerializedSize(n), n)
	}
	lengths := make([]int, n)
	for s := 0; s < n; s++ {
		lengths[s] = int(data[4+2*n+s])
	}
	cb, err := fromLengths(lengths)
	if err != nil {
		return nil, err
	}
	for s := 0; s < n; s++ {
		stored := binary.LittleEndian.Uint16(data[4+2*s:])
		if cb.lengths[s] > 0 && stored != cb.codes[s] {
			return nil, fmt.Errorf("huffman: stored codeword for symbol %d is not canonical", s)
		}
	}
	return cb, nil
}

// ExpectedBits returns the average codeword length (in bits/symbol) under
// the given frequency distribution, the quantity the offline training
// minimizes.
//
//csecg:host training statistic, evaluated off-device
func (cb *Codebook) ExpectedBits(freq []int) float64 {
	var total, weighted int64
	for s, f := range freq {
		if s >= len(cb.lengths) {
			break
		}
		total += int64(f)
		weighted += int64(f) * int64(cb.lengths[s])
	}
	if total == 0 {
		return 0
	}
	return float64(weighted) / float64(total)
}
