// Package huffman implements the entropy-coding stage of the encoder: a
// canonical, length-limited Huffman code over the 512-symbol alphabet of
// inter-packet difference values [−256, 255].
//
// The paper stores an offline-generated codebook of 512 codewords (1 kB,
// 16-bit codewords) plus 512 codeword lengths (512 B) in the mote's
// flash, with a maximum codeword length of 16 bits. This package
// reproduces that exact layout: codebooks are trained with the
// package-merge algorithm (optimal under a hard length limit), assigned
// canonically, and serialize to the same 1 kB + 512 B footprint.
package huffman

import (
	"errors"
	"fmt"
)

// BitWriter accumulates codewords MSB-first into a byte slice.
type BitWriter struct {
	buf  []byte
	cur  uint64 // pending bits, left-aligned within nbits
	nbit uint   // number of pending bits in cur
}

// NewBitWriter returns an empty BitWriter.
func NewBitWriter() *BitWriter { return &BitWriter{} }

// WriteBits appends the low `width` bits of code, most significant first.
// width must be in [0, 32].
//
//csecg:hotpath the Huffman emit inner loop, one call per symbol
func (w *BitWriter) WriteBits(code uint32, width uint) {
	if width > 32 {
		panic("huffman: WriteBits width > 32")
	}
	w.cur = w.cur<<width | uint64(code&(1<<width-1))
	w.nbit += width
	for w.nbit >= 8 {
		w.nbit -= 8
		w.buf = append(w.buf, byte(w.cur>>w.nbit)) //csecg:allocok amortized: buf is retained across Reset
	}
}

// Bytes flushes any partial byte (zero-padded on the right) and returns
// the accumulated buffer. The writer remains usable; subsequent writes
// start on a byte boundary.
//
//csecg:hotpath closes each delta frame's bitstream
func (w *BitWriter) Bytes() []byte {
	if w.nbit > 0 {
		w.buf = append(w.buf, byte(w.cur<<(8-w.nbit))) //csecg:allocok amortized: buf is retained across Reset
		w.cur, w.nbit = 0, 0
	}
	return w.buf
}

// BitLen returns the number of bits written so far (before padding).
func (w *BitWriter) BitLen() int { return len(w.buf)*8 + int(w.nbit) }

// Reset clears the writer for reuse.
func (w *BitWriter) Reset() { w.buf, w.cur, w.nbit = w.buf[:0], 0, 0 }

// BitReader consumes bits MSB-first from a byte slice.
type BitReader struct {
	buf []byte
	pos int  // next byte index
	cur uint // bit position within buf[pos] (0 = MSB)
}

// NewBitReader wraps data for reading.
func NewBitReader(data []byte) *BitReader { return &BitReader{buf: data} }

// ErrOutOfBits is returned when a read runs past the end of the buffer.
var ErrOutOfBits = errors.New("huffman: out of bits")

// ReadBit returns the next bit.
func (r *BitReader) ReadBit() (uint32, error) {
	if r.pos >= len(r.buf) {
		return 0, ErrOutOfBits
	}
	b := (r.buf[r.pos] >> (7 - r.cur)) & 1
	r.cur++
	if r.cur == 8 {
		r.cur = 0
		r.pos++
	}
	return uint32(b), nil
}

// ReadBits returns the next width bits, MSB-first. width must be ≤ 32.
func (r *BitReader) ReadBits(width uint) (uint32, error) {
	if width > 32 {
		return 0, fmt.Errorf("huffman: ReadBits width %d > 32", width)
	}
	var v uint32
	for i := uint(0); i < width; i++ {
		b, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		v = v<<1 | b
	}
	return v, nil
}

// BitsRemaining reports how many unread bits remain (including padding).
func (r *BitReader) BitsRemaining() int {
	return (len(r.buf)-r.pos)*8 - int(r.cur)
}
