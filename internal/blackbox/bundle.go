// Diagnostics bundle format: versioned JSONL, one self-describing
// record per line. Line 1 is the header (record counts, eviction
// accounting, session metadata); then one metrics record (the telemetry
// snapshot), the event records, the per-window decode summaries, and
// finally the raw frames (base64 wire bytes) oldest-first. The format
// is append-only versioned: readers reject versions they do not know,
// and unknown JSON fields are ignored so old readers survive additive
// changes within a version.

package blackbox

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"csecg/internal/coordinator"
	"csecg/internal/core"
	"csecg/internal/telemetry"
)

// BundleVersion is the current bundle format version; ParseBundle
// rejects anything else.
const BundleVersion = 1

// SessionMeta is everything replay needs to rebuild the decode stack:
// the resolved CS parameters, the platform mode, and the transport
// configuration. Store resolved params (coordinator.Decoder.Params),
// not user input — replay must not re-derive defaults that may change.
type SessionMeta struct {
	Session string `json:"session"`

	// Resolved core.Params (MeasurementShift is the resolved value; 0
	// really means zero shift).
	N                int    `json:"n"`
	M                int    `json:"m"`
	D                int    `json:"d"`
	Seed             uint16 `json:"seed"`
	Basis            int    `json:"basis"`
	WaveletOrder     int    `json:"wavelet_order"`
	WaveletLevels    int    `json:"wavelet_levels"`
	KeyFrameInterval int    `json:"key_frame_interval"`
	MeasurementShift int    `json:"measurement_shift"`
	// CustomCodebook marks a session whose entropy codebook was not the
	// default — its bundles cannot be replayed (the table is not
	// serialized).
	CustomCodebook bool `json:"custom_codebook,omitempty"`

	// Mode is the platform cost model (coordinator.Mode).
	Mode int `json:"mode"`

	// Transport configuration (resolved fields of
	// coordinator.TransportConfig).
	NACK           bool `json:"nack,omitempty"`
	ReorderWindow  int  `json:"reorder_window,omitempty"`
	MaxRetries     int  `json:"max_retries,omitempty"`
	BackoffWindows int  `json:"backoff_windows,omitempty"`
	WaitWindows    int  `json:"wait_windows,omitempty"`
	QueueLimit     int  `json:"queue_limit,omitempty"`
	DecodesPerSlot int  `json:"decodes_per_slot,omitempty"`

	// Reproducible is false when the session mutated decode state in
	// ways a bundle cannot capture (e.g. SetCosts mid-run); replay
	// refuses to diff rather than reporting false divergence.
	Reproducible         bool   `json:"reproducible"`
	UnreproducibleReason string `json:"unreproducible_reason,omitempty"`

	// TraceSeed is the session's causal trace-ID seed
	// (telemetry.TraceSeed of the session label; 0 → untraced). Replay
	// installs it on the rebuilt receiver so replayed window records
	// reproduce the recorded trace IDs bit-for-bit. Added in-place
	// within bundle version 1: readers ignore the unknown field, absent
	// fields decode as 0.
	TraceSeed uint64 `json:"trace_seed,omitempty"`
}

// NewSessionMeta captures replayable session metadata. p must be the
// decoder's resolved params (dec.Params()), t the receiver's transport
// configuration as constructed.
func NewSessionMeta(session string, p core.Params, mode coordinator.Mode, t coordinator.TransportConfig) SessionMeta {
	return SessionMeta{
		Session:          session,
		N:                p.N,
		M:                p.M,
		D:                p.D,
		Seed:             p.Seed,
		Basis:            int(p.Basis),
		WaveletOrder:     p.WaveletOrder,
		WaveletLevels:    p.WaveletLevels,
		KeyFrameInterval: p.KeyFrameInterval,
		MeasurementShift: p.MeasurementShift,
		CustomCodebook:   p.Codebook != nil && p.Codebook != core.DefaultCodebook(),
		Mode:             int(mode),
		NACK:             t.NACK,
		ReorderWindow:    t.ReorderWindow,
		MaxRetries:       t.MaxRetries,
		BackoffWindows:   t.BackoffWindows,
		WaitWindows:      t.WaitWindows,
		QueueLimit:       t.QueueLimit,
		DecodesPerSlot:   t.DecodesPerSlot,
		Reproducible:     true,
	}
}

// Params rebuilds the core parameters for replay.
func (m SessionMeta) Params() (core.Params, error) {
	if m.CustomCodebook {
		return core.Params{}, fmt.Errorf("blackbox: session %q used a custom codebook; bundle is not replayable", m.Session)
	}
	if m.N == 0 || m.M == 0 {
		return core.Params{}, fmt.Errorf("blackbox: bundle metadata missing resolved params (n=%d m=%d)", m.N, m.M)
	}
	shift := m.MeasurementShift
	if shift == 0 {
		// core.Params treats 0 as "use the default"; a recorded zero is
		// the resolved value zero, spelled -1 on input.
		shift = -1
	}
	return core.Params{
		N:                m.N,
		M:                m.M,
		D:                m.D,
		Seed:             m.Seed,
		Basis:            core.Basis(m.Basis),
		WaveletOrder:     m.WaveletOrder,
		WaveletLevels:    m.WaveletLevels,
		KeyFrameInterval: m.KeyFrameInterval,
		MeasurementShift: shift,
	}, nil
}

// Transport rebuilds the receiver configuration for replay.
func (m SessionMeta) Transport() coordinator.TransportConfig {
	return coordinator.TransportConfig{
		NACK:           m.NACK,
		ReorderWindow:  m.ReorderWindow,
		MaxRetries:     m.MaxRetries,
		BackoffWindows: m.BackoffWindows,
		WaitWindows:    m.WaitWindows,
		QueueLimit:     m.QueueLimit,
		DecodesPerSlot: m.DecodesPerSlot,
	}
}

// Header is a bundle's first record.
type Header struct {
	Version int    `json:"version"`
	Session string `json:"session"`
	// Ordinal numbers this session's bundles from 0 (it appears in the
	// filename, keeping names deterministic without a wall clock).
	Ordinal int    `json:"ordinal"`
	Cause   string `json:"cause"`
	Detail  string `json:"detail,omitempty"`
	// TimelineNs is the modeled session time of the trigger (0 when the
	// trigger source has no timeline).
	TimelineNs int64 `json:"timeline_ns,omitempty"`
	// Slot is the receiver's last observed window slot at seal.
	Slot int `json:"slot"`
	// Record counts (after any size-cap truncation).
	Windows int `json:"windows"`
	Frames  int `json:"frames"`
	Events  int `json:"events"`
	// Captured is the monotonic all-time window count; with the
	// eviction counters it tells how much history the rings dropped.
	Captured       int64 `json:"captured_windows"`
	EvictedFrames  int64 `json:"evicted_frames,omitempty"`
	EvictedWindows int64 `json:"evicted_windows,omitempty"`
	EvictedEvents  int64 `json:"evicted_events,omitempty"`
	// Wrapped means the frame ring evicted history: the bundle does not
	// reach back to the session start, so replay resumes mid-stream and
	// compares solver fields only (see Replay). Truncated means the
	// size cap dropped oldest frames at seal time — same consequence.
	Wrapped   bool `json:"wrapped,omitempty"`
	Truncated bool `json:"truncated,omitempty"`
	// DroppedFrames counts frames the size cap removed.
	DroppedFrames int `json:"dropped_frames,omitempty"`

	Meta SessionMeta `json:"meta"`
}

// Complete reports whether the frame stream reaches back to the session
// start — the precondition for bit-exact replay.
func (h Header) Complete() bool { return !h.Wrapped && !h.Truncated }

// WindowRecord is one released window's decode summary — the fields
// replay must reproduce bit-for-bit, keyed by (Ordinal, Seq).
type WindowRecord struct {
	Slot            int     `json:"slot"`
	Ordinal         int64   `json:"ordinal"`
	Seq             uint32  `json:"seq"`
	Rung            int     `json:"rung"`
	Iterations      int     `json:"iterations"`
	EscapeCount     int     `json:"escape_count"`
	Converged       bool    `json:"converged"`
	DeadlineExpired bool    `json:"deadline_expired,omitempty"`
	Degraded        bool    `json:"degraded,omitempty"`
	ResidualNorm    float64 `json:"residual_norm"`
	EstPRDN         float64 `json:"est_prdn"`
	Bad             bool    `json:"bad,omitempty"`
	ModeledNs       int64   `json:"modeled_ns"`
	// Trace is the window's causal trace ID (0 when the session streamed
	// untraced); telemetry.TraceIDString renders the 16-hex-digit form
	// /sessions and the stage-seconds exemplars use. Kept numeric so the
	// hotpath capture ring stores it without formatting.
	Trace uint64 `json:"trace,omitempty"`
}

// EventRecord is one health/SLO/failure/trigger event.
type EventRecord struct {
	Kind       string `json:"kind"`
	Slot       int    `json:"slot"`
	TimelineNs int64  `json:"timeline_ns,omitempty"`
	Ordinal    int64  `json:"ordinal"`
	Seq        uint32 `json:"seq,omitempty"`
	Name       string `json:"name,omitempty"`
	From       string `json:"from,omitempty"`
	To         string `json:"to,omitempty"`
	Cause      string `json:"cause,omitempty"`
	Panicked   bool   `json:"panicked,omitempty"`
	Suppressed bool   `json:"suppressed,omitempty"`
}

// FrameRecord is one raw post-CRC wire frame and the receiver slot it
// arrived in.
type FrameRecord struct {
	Slot int    `json:"slot"`
	Seq  uint32 `json:"seq"`
	Kind uint8  `json:"kind"`
	Data []byte `json:"data"`
}

// Bundle is a parsed diagnostics bundle.
type Bundle struct {
	Header  Header
	Metrics telemetry.Snapshot
	Events  []EventRecord
	Windows []WindowRecord
	Frames  []FrameRecord
}

// JSONL line wrappers: each record carries a "type" discriminator.
type headerLine struct {
	Type string `json:"type"`
	Header
}

type metricsLine struct {
	Type string `json:"type"`
	telemetry.Snapshot
}

type eventLine struct {
	Type string `json:"type"`
	EventRecord
}

type windowLine struct {
	Type string `json:"type"`
	WindowRecord
}

type frameLine struct {
	Type string `json:"type"`
	FrameRecord
}

// bundleName builds the deterministic bundle filename: session, per-
// session seal ordinal, and cause. No wall clock — two identical
// sessions produce identical names.
func bundleName(h Header) string {
	return fmt.Sprintf("bundle-%s-%03d-%s.jsonl", sanitizeName(h.Session), h.Ordinal, h.Cause)
}

// sanitizeName maps a session name to a filesystem-safe slug.
func sanitizeName(s string) string {
	if s == "" {
		return "session"
	}
	b := []byte(s)
	for i, c := range b {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '_', c == '.':
		default:
			b[i] = '-'
		}
	}
	return string(b)
}

// encodeBundle renders the JSONL bytes, enforcing the size cap by
// dropping oldest frames (decode summaries and events always survive —
// they are the incident narrative; frames are the replay payload).
func encodeBundle(b *Bundle, maxBytes int) ([]byte, error) {
	line := func(v any) ([]byte, error) {
		enc, err := json.Marshal(v)
		if err != nil {
			return nil, fmt.Errorf("blackbox: encoding bundle record: %w", err)
		}
		return append(enc, '\n'), nil
	}

	var body bytes.Buffer
	ml, err := line(metricsLine{Type: "metrics", Snapshot: b.Metrics})
	if err != nil {
		return nil, err
	}
	body.Write(ml) //csecg:errok bytes.Buffer never fails
	for _, e := range b.Events {
		l, err := line(eventLine{Type: "event", EventRecord: e})
		if err != nil {
			return nil, err
		}
		body.Write(l) //csecg:errok bytes.Buffer never fails
	}
	for _, w := range b.Windows {
		l, err := line(windowLine{Type: "window", WindowRecord: w})
		if err != nil {
			return nil, err
		}
		body.Write(l) //csecg:errok bytes.Buffer never fails
	}

	frameLines := make([][]byte, len(b.Frames))
	framesBytes := 0
	for i, f := range b.Frames {
		if frameLines[i], err = line(frameLine{Type: "frame", FrameRecord: f}); err != nil {
			return nil, err
		}
		framesBytes += len(frameLines[i])
	}

	// Measure the header at its largest (truncation flags set) so the
	// frame budget is conservative, then drop oldest frames to fit.
	h := b.Header
	h.Truncated = true
	h.DroppedFrames = len(b.Frames)
	worst, err := line(headerLine{Type: "header", Header: h})
	if err != nil {
		return nil, err
	}
	budget := maxBytes - body.Len() - len(worst)
	keepFrom := 0
	for keepFrom < len(frameLines) && framesBytes > budget {
		framesBytes -= len(frameLines[keepFrom])
		keepFrom++
	}

	h = b.Header
	h.Frames = len(b.Frames) - keepFrom
	h.DroppedFrames = keepFrom
	h.Truncated = keepFrom > 0
	hl, err := line(headerLine{Type: "header", Header: h})
	if err != nil {
		return nil, err
	}
	var out bytes.Buffer
	out.Grow(len(hl) + body.Len() + framesBytes)
	out.Write(hl)           //csecg:errok bytes.Buffer never fails
	out.Write(body.Bytes()) //csecg:errok bytes.Buffer never fails
	for _, fl := range frameLines[keepFrom:] {
		out.Write(fl) //csecg:errok bytes.Buffer never fails
	}
	return out.Bytes(), nil
}

// ParseBundle decodes JSONL bundle bytes. It is strict about the
// envelope (header first, known version) and lenient about unknown
// fields, so version-1 readers survive additive changes.
func ParseBundle(data []byte) (*Bundle, error) {
	b := &Bundle{}
	sawHeader := false
	for lineNo, raw := range bytes.Split(data, []byte("\n")) {
		raw = bytes.TrimSpace(raw)
		if len(raw) == 0 {
			continue
		}
		var disc struct {
			Type string `json:"type"`
		}
		if err := json.Unmarshal(raw, &disc); err != nil {
			return nil, fmt.Errorf("blackbox: bundle line %d: %w", lineNo+1, err)
		}
		if !sawHeader && disc.Type != "header" {
			return nil, fmt.Errorf("blackbox: bundle line %d: first record is %q, want header", lineNo+1, disc.Type)
		}
		switch disc.Type {
		case "header":
			if sawHeader {
				return nil, fmt.Errorf("blackbox: bundle line %d: duplicate header", lineNo+1)
			}
			var hl headerLine
			if err := json.Unmarshal(raw, &hl); err != nil {
				return nil, fmt.Errorf("blackbox: bundle header: %w", err)
			}
			if hl.Version != BundleVersion {
				return nil, fmt.Errorf("blackbox: bundle version %d, this reader understands %d", hl.Version, BundleVersion)
			}
			b.Header = hl.Header
			sawHeader = true
		case "metrics":
			var ml metricsLine
			if err := json.Unmarshal(raw, &ml); err != nil {
				return nil, fmt.Errorf("blackbox: bundle line %d: %w", lineNo+1, err)
			}
			b.Metrics = ml.Snapshot
		case "event":
			var el eventLine
			if err := json.Unmarshal(raw, &el); err != nil {
				return nil, fmt.Errorf("blackbox: bundle line %d: %w", lineNo+1, err)
			}
			b.Events = append(b.Events, el.EventRecord)
		case "window":
			var wl windowLine
			if err := json.Unmarshal(raw, &wl); err != nil {
				return nil, fmt.Errorf("blackbox: bundle line %d: %w", lineNo+1, err)
			}
			b.Windows = append(b.Windows, wl.WindowRecord)
		case "frame":
			var fl frameLine
			if err := json.Unmarshal(raw, &fl); err != nil {
				return nil, fmt.Errorf("blackbox: bundle line %d: %w", lineNo+1, err)
			}
			b.Frames = append(b.Frames, fl.FrameRecord)
		default:
			return nil, fmt.Errorf("blackbox: bundle line %d: unknown record type %q", lineNo+1, disc.Type)
		}
	}
	if !sawHeader {
		return nil, fmt.Errorf("blackbox: bundle has no header record")
	}
	if len(b.Windows) != b.Header.Windows || len(b.Frames) != b.Header.Frames || len(b.Events) != b.Header.Events {
		return nil, fmt.Errorf("blackbox: bundle record counts (%d windows, %d frames, %d events) disagree with header (%d, %d, %d)",
			len(b.Windows), len(b.Frames), len(b.Events), b.Header.Windows, b.Header.Frames, b.Header.Events)
	}
	return b, nil
}

// ReadBundleFile loads and parses one bundle.
func ReadBundleFile(path string) (*Bundle, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return ParseBundle(data)
}

// DirSink persists bundles as files in a directory (created on first
// write).
type DirSink string

// WriteBundle implements Sink.
func (d DirSink) WriteBundle(name string, data []byte) (string, error) {
	if err := os.MkdirAll(string(d), 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(string(d), name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return "", err
	}
	return path, nil
}
