package blackbox_test

import (
	"strings"
	"testing"

	"csecg/internal/blackbox"
	"csecg/internal/chaos"
	"csecg/internal/link"
)

// runRecorded executes one chaos scenario with the flight recorder
// attached and returns the report.
func runRecorded(t *testing.T, sc chaos.Scenario, dir string) *chaos.Report {
	t.Helper()
	sc.Record = &blackbox.Config{Sink: blackbox.DirSink(dir)}
	rep, err := chaos.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Recorder == nil {
		t.Fatal("scenario ran without a recorder")
	}
	if err := rep.Recorder.SealErr(); err != nil {
		t.Fatal(err)
	}
	return rep
}

// replayFile loads and replays one bundle.
func replayFile(t *testing.T, path string) (*blackbox.Bundle, *blackbox.ReplayReport) {
	t.Helper()
	b, err := blackbox.ReadBundleFile(path)
	if err != nil {
		t.Fatalf("%s: %v", path, err)
	}
	rep, err := blackbox.Replay(b)
	if err != nil {
		t.Fatalf("%s: %v", path, err)
	}
	return b, rep
}

// TestQualitySLOTripSealsReplayableBundle is the acceptance pin: a
// chaos run whose burst loss burns the quality SLO budget seals a
// bundle at the warn escalation, and replaying that bundle through the
// real receiver + solver stack reproduces every recorded window
// bit-for-bit — same rung, residual norm, and EstPRDN.
func TestQualitySLOTripSealsReplayableBundle(t *testing.T) {
	dir := t.TempDir()
	rep := runRecorded(t, chaos.Scenario{
		Name:    "slo-trip",
		Windows: 48,
		Burst:   &link.BurstConfig{PGoodBad: 0.25, PBadGood: 0.25},
		// Tightened objective: the gap-rate margin the burst losses put
		// on the PRDN estimate must register as SLO burn (see
		// Scenario.QualityBadPRDN).
		QualityBadPRDN: 3.2,
	}, dir)

	var sloBundle string
	for _, p := range rep.Bundles {
		if strings.HasSuffix(p, "-slo.jsonl") {
			sloBundle = p
			break
		}
	}
	if sloBundle == "" {
		t.Fatalf("quality SLO never tripped under burst loss; bundles: %v", rep.Bundles)
	}

	b, rr := replayFile(t, sloBundle)
	if !b.Header.Complete() {
		t.Fatalf("48-window session should fit the default rings: %+v", b.Header)
	}
	if b.Header.Cause != "slo" {
		t.Fatalf("cause %q, want slo", b.Header.Cause)
	}
	if rr.Skipped || !rr.Complete {
		t.Fatalf("replay did not run the bit-exact tier: %+v", rr)
	}
	if rr.Compared == 0 || rr.Compared != rr.Windows {
		t.Fatalf("compared %d of %d windows", rr.Compared, rr.Windows)
	}
	if !rr.OK() {
		t.Fatalf("replay diverged: %+v", rr.Divergences)
	}
	// The bundle carries the incident narrative: the SLO transition
	// events that led to the seal.
	sawSLO := false
	for _, e := range b.Events {
		if e.Kind == "slo" && e.Name == "quality" {
			sawSLO = true
		}
	}
	if !sawSLO {
		t.Fatal("no quality SLO transition event in the bundle")
	}
}

// TestPanicBundleReplaysScriptedFailures: injected decode panics seal a
// decode-panic bundle whose recorded failures replay by attempt
// ordinal — the scripted decoder reproduces each contained panic
// without touching the real solver's state.
func TestPanicBundleReplaysScriptedFailures(t *testing.T) {
	dir := t.TempDir()
	rep := runRecorded(t, chaos.Scenario{
		Name:    "panic-replay",
		Windows: 36,
		// Every 5th decode attempt panics: enough contained panics for a
		// trigger plus scripted-failure coverage in replay.
		PanicEvery: 5,
	}, dir)
	if rep.ContainedPanics == 0 {
		t.Fatal("scenario injected no panics")
	}

	var panicBundle string
	for _, p := range rep.Bundles {
		if strings.HasSuffix(p, "-decode-panic.jsonl") {
			panicBundle = p
			break
		}
	}
	if panicBundle == "" {
		t.Fatalf("contained panic sealed no bundle; bundles: %v", rep.Bundles)
	}

	b, rr := replayFile(t, panicBundle)
	sawFailure := false
	for _, e := range b.Events {
		if e.Kind == "decode-failure" && e.Panicked {
			sawFailure = true
		}
	}
	if !sawFailure {
		t.Fatal("no panicked decode-failure event recorded")
	}
	if rr.Skipped || !rr.OK() {
		t.Fatalf("panic bundle replay failed: %+v", rr)
	}
	if rr.Compared == 0 {
		t.Fatal("nothing compared")
	}
}

// TestWrappedBundleReplaysSolverTier: a tiny frame ring forces
// wraparound, so replay resumes mid-stream and holds the
// solver-deterministic fields to account on rung-matched windows.
func TestWrappedBundleReplaysSolverTier(t *testing.T) {
	dir := t.TempDir()
	sc := chaos.Scenario{Name: "wrapped", Windows: 48}
	sc.Record = &blackbox.Config{
		Sink: blackbox.DirSink(dir),
		// Room for ~12 windows of frames: the ring must wrap.
		FrameArenaBytes: 2 << 10,
		FrameCap:        16,
	}
	rep, err := chaos.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Bundles) == 0 {
		rep.Recorder.SealNow(blackbox.TriggerManual, "wrap test") //csecg:errok checked below
	}
	if err := rep.Recorder.SealErr(); err != nil {
		t.Fatal(err)
	}

	b, rr := replayFile(t, rep.Recorder.Bundles()[0])
	if b.Header.Complete() {
		t.Fatalf("frame ring was sized to wrap, header says complete: %+v", b.Header)
	}
	if rr.Complete || rr.Skipped {
		t.Fatalf("wrapped bundle took the wrong replay tier: %+v", rr)
	}
	if rr.Compared == 0 {
		t.Fatalf("no rung-matched windows compared: %+v", rr)
	}
	if !rr.OK() {
		t.Fatalf("solver fields diverged on replay: %+v", rr.Divergences)
	}
}

// TestUnreproducibleBundleSkipped: scenarios that perturb solver costs
// mid-run are marked unreproducible, and replay refuses to diff them
// instead of reporting false divergence.
func TestUnreproducibleBundleSkipped(t *testing.T) {
	dir := t.TempDir()
	rep := runRecorded(t, chaos.Scenario{
		Name: "slowdown", Windows: 36,
		Slowdown: 2, BurstArrival: 4, DecodesPerSlot: 4,
	}, dir)
	if len(rep.Bundles) == 0 {
		rep.Recorder.SealNow(blackbox.TriggerManual, "slowdown capture") //csecg:errok checked below
	}
	if err := rep.Recorder.SealErr(); err != nil {
		t.Fatal(err)
	}
	_, rr := replayFile(t, rep.Recorder.Bundles()[0])
	if !rr.Skipped || !rr.OK() {
		t.Fatalf("unreproducible bundle was diffed: %+v", rr)
	}
	if !strings.Contains(rr.SkipReason, "slowdown") {
		t.Fatalf("skip reason %q does not name the cause", rr.SkipReason)
	}
}

// TestReplayFlagsTamperedBundle: the divergence detector actually
// detects — altering one recorded field fails the replay.
func TestReplayFlagsTamperedBundle(t *testing.T) {
	dir := t.TempDir()
	rep := runRecorded(t, chaos.Scenario{Name: "tamper", Windows: 24}, dir)
	if len(rep.Bundles) == 0 {
		rep.Recorder.SealNow(blackbox.TriggerManual, "tamper capture") //csecg:errok checked below
	}
	if err := rep.Recorder.SealErr(); err != nil {
		t.Fatal(err)
	}
	b, err := blackbox.ReadBundleFile(rep.Recorder.Bundles()[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Windows) == 0 {
		t.Fatal("bundle has no windows to tamper with")
	}
	b.Windows[len(b.Windows)/2].Iterations += 3
	rr, err := blackbox.Replay(b)
	if err != nil {
		t.Fatal(err)
	}
	if rr.OK() {
		t.Fatal("tampered bundle replayed clean")
	}
	found := false
	for _, d := range rr.Divergences {
		if d.Field == "iterations" {
			found = true
		}
	}
	if !found {
		t.Fatalf("divergences %+v do not name the tampered field", rr.Divergences)
	}
}
