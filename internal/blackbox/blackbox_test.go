package blackbox

import (
	"bytes"
	"sync"
	"testing"

	"csecg/internal/coordinator"
)

// memSink collects sealed bundles in memory.
type memSink struct {
	mu      sync.Mutex
	bundles map[string][]byte
	order   []string
}

func (s *memSink) WriteBundle(name string, data []byte) (string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.bundles == nil {
		s.bundles = map[string][]byte{}
	}
	s.bundles[name] = append([]byte(nil), data...)
	s.order = append(s.order, name)
	return "mem://" + name, nil
}

func (s *memSink) last(t *testing.T) []byte {
	t.Helper()
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.order) == 0 {
		t.Fatal("no bundle sealed")
	}
	return s.bundles[s.order[len(s.order)-1]]
}

// testFrame renders a deterministic per-index payload so retained
// frames can be checked byte-for-byte after arena wraparound.
func testFrame(i, n int) []byte {
	b := make([]byte, n)
	for j := range b {
		b[j] = byte(i*31 + j)
	}
	return b
}

// TestFrameRingWraparound drives the byte arena and entry ring past
// capacity and checks that the retained frames are exactly the newest
// suffix, byte-for-byte, across arena wrap boundaries.
func TestFrameRingWraparound(t *testing.T) {
	cases := []struct {
		name       string
		arena, cap int
		sizes      []int
		wantKept   int // newest frames that must survive
	}{
		{"arena-bound", 64, 16, repeat(24, 10), 2},
		{"entry-bound", 1 << 12, 4, repeat(8, 10), 4},
		{"uneven-wrap", 64, 16, []int{24, 17, 9, 31, 5, 23, 11}, 3},
		{"exact-fit", 48, 16, repeat(24, 6), 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sink := &memSink{}
			rec := NewRecorder(Config{Session: "wrap", Sink: sink,
				FrameArenaBytes: tc.arena, FrameCap: tc.cap})
			for i, n := range tc.sizes {
				rec.RecordFrame(i, uint32(i), 1, testFrame(i, n))
			}
			if _, err := rec.SealNow(TriggerManual, "test"); err != nil {
				t.Fatal(err)
			}
			b, err := ParseBundle(sink.last(t))
			if err != nil {
				t.Fatal(err)
			}
			if len(b.Frames) != tc.wantKept {
				t.Fatalf("kept %d frames, want %d", len(b.Frames), tc.wantKept)
			}
			first := len(tc.sizes) - tc.wantKept
			for k, f := range b.Frames {
				i := first + k
				if f.Seq != uint32(i) || !bytes.Equal(f.Data, testFrame(i, tc.sizes[i])) {
					t.Fatalf("frame %d: seq %d data %x, want seq %d data %x",
						k, f.Seq, f.Data, i, testFrame(i, tc.sizes[i]))
				}
			}
			wantEvicted := int64(first)
			if b.Header.EvictedFrames != wantEvicted || b.Header.Wrapped != (wantEvicted > 0) {
				t.Fatalf("evicted %d wrapped %v, want %d %v",
					b.Header.EvictedFrames, b.Header.Wrapped, wantEvicted, wantEvicted > 0)
			}
		})
	}
}

func repeat(size, n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = size
	}
	return out
}

// TestOversizeFrameCounted: a frame larger than the whole arena is
// dropped (and counted), not recorded or wedged.
func TestOversizeFrameCounted(t *testing.T) {
	sink := &memSink{}
	rec := NewRecorder(Config{Session: "big", Sink: sink, FrameArenaBytes: 32, FrameCap: 4})
	rec.RecordFrame(0, 0, 1, testFrame(0, 64))
	rec.RecordFrame(1, 1, 1, testFrame(1, 16))
	if _, err := rec.SealNow(TriggerManual, "test"); err != nil {
		t.Fatal(err)
	}
	b, err := ParseBundle(sink.last(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Frames) != 1 || b.Frames[0].Seq != 1 {
		t.Fatalf("frames %+v, want only seq 1", b.Frames)
	}
	if !b.Header.Wrapped || b.Header.EvictedFrames != 1 {
		t.Fatalf("oversize frame not accounted: %+v", b.Header)
	}
}

// TestWindowAndEventRingWraparound: both fixed rings evict oldest-first
// and the snapshot preserves order.
func TestWindowAndEventRingWraparound(t *testing.T) {
	sink := &memSink{}
	rec := NewRecorder(Config{Session: "rings", Sink: sink, WindowCap: 4, EventCap: 3})
	for i := 0; i < 10; i++ {
		rec.RecordWindow(coordinator.WindowCapture{Slot: i, Ordinal: int64(i), Seq: uint32(i)})
		rec.RecordHealth(i, coordinator.HealthStarting, coordinator.HealthDecoding)
	}
	if got := rec.CapturedWindows(); got != 10 {
		t.Fatalf("captured %d windows, want 10", got)
	}
	if _, err := rec.SealNow(TriggerManual, "test"); err != nil {
		t.Fatal(err)
	}
	b, err := ParseBundle(sink.last(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Windows) != 4 || b.Windows[0].Ordinal != 6 || b.Windows[3].Ordinal != 9 {
		t.Fatalf("window ring snapshot wrong: %+v", b.Windows)
	}
	if b.Header.EvictedWindows != 6 || b.Header.Captured != 10 {
		t.Fatalf("window accounting wrong: %+v", b.Header)
	}
	// 10 health events + the seal's own trigger event through a 3-slot
	// ring: the two newest health events plus the trigger survive.
	if len(b.Events) != 3 || b.Events[0].Slot != 8 || b.Events[1].Slot != 9 ||
		b.Events[2].Kind != "trigger" {
		t.Fatalf("event ring snapshot wrong: %+v", b.Events)
	}
	if b.Events[0].Kind != "health" || b.Events[0].From != "starting" || b.Events[0].To != "decoding" {
		t.Fatalf("health event mangled: %+v", b.Events[0])
	}
}

// TestTriggerRateLimiting pins the seal throttle: the first automatic
// trigger seals, a second inside the window gap is suppressed, enough
// captured windows re-arm it, SealNow bypasses the gap, and MaxBundles
// caps the lifetime total no matter what.
func TestTriggerRateLimiting(t *testing.T) {
	sink := &memSink{}
	rec := NewRecorder(Config{Session: "limit", Sink: sink,
		RateLimitWindows: 4, MaxBundles: 3})

	if path := rec.TriggerSeal(TriggerSLO, 100, "first"); path == "" {
		t.Fatalf("first trigger suppressed: %v", rec.SealErr())
	}
	if path := rec.TriggerSeal(TriggerSLO, 200, "too soon"); path != "" {
		t.Fatalf("gap-violating trigger sealed %s", path)
	}
	if rec.Suppressed() != 1 {
		t.Fatalf("suppressed %d, want 1", rec.Suppressed())
	}
	for i := 0; i < 4; i++ {
		rec.RecordWindow(coordinator.WindowCapture{Ordinal: int64(i)})
	}
	if path := rec.TriggerSeal(TriggerPanic, 300, "re-armed"); path == "" {
		t.Fatal("re-armed trigger suppressed")
	}
	// Manual seal bypasses the gap...
	if _, err := rec.SealNow(TriggerManual, "operator"); err != nil {
		t.Fatalf("manual seal inside gap: %v", err)
	}
	// ...but nothing bypasses the lifetime cap.
	if _, err := rec.SealNow(TriggerManual, "over cap"); err != ErrSuppressed {
		t.Fatalf("seal over MaxBundles: err %v, want ErrSuppressed", err)
	}
	if got := rec.BundlesWritten(); got != 3 {
		t.Fatalf("wrote %d bundles, want 3", got)
	}
	// Deterministic names: session, per-session ordinal, cause.
	want := []string{
		"bundle-limit-000-slo.jsonl",
		"bundle-limit-001-decode-panic.jsonl",
		"bundle-limit-002-manual.jsonl",
	}
	for i, name := range want {
		if sink.order[i] != name {
			t.Fatalf("bundle %d named %s, want %s", i, sink.order[i], name)
		}
	}
	// The suppressed trigger left its audit event behind.
	b, err := ParseBundle(sink.bundles[want[2]])
	if err != nil {
		t.Fatal(err)
	}
	sawSuppressed := false
	for _, e := range b.Events {
		if e.Kind == "trigger" && e.Suppressed {
			sawSuppressed = true
		}
	}
	if !sawSuppressed {
		t.Fatal("suppressed trigger not recorded in the event ring")
	}
}

// TestSealWithoutSink: triggers on a sink-less recorder report ErrNoSink
// and never wedge the capture path.
func TestSealWithoutSink(t *testing.T) {
	rec := NewRecorder(Config{Session: "nosink"})
	if _, err := rec.SealNow(TriggerManual, "test"); err != ErrNoSink {
		t.Fatalf("err %v, want ErrNoSink", err)
	}
	rec.RecordWindow(coordinator.WindowCapture{})
	if rec.CapturedWindows() != 1 {
		t.Fatal("capture broken after sink-less seal")
	}
}

// TestConcurrentCaptureAndSeal hammers every capture method from
// parallel goroutines while seals race them — the -race build is the
// real assertion; the parses check the snapshots stayed coherent.
func TestConcurrentCaptureAndSeal(t *testing.T) {
	sink := &memSink{}
	rec := NewRecorder(Config{Session: "race", Sink: sink,
		FrameArenaBytes: 1 << 10, FrameCap: 32, WindowCap: 32, EventCap: 16,
		RateLimitWindows: 1, MaxBundles: 64})
	rec.AttachRegistry(nil)

	const iters = 400
	var wg sync.WaitGroup
	wg.Add(4)
	go func() {
		defer wg.Done()
		frame := testFrame(7, 48)
		for i := 0; i < iters; i++ {
			rec.RecordFrame(i, uint32(i), 1, frame)
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			rec.RecordWindow(coordinator.WindowCapture{Slot: i, Ordinal: int64(i), Seq: uint32(i)})
			rec.RecordSlot(i)
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			rec.RecordHealth(i, coordinator.HealthDecoding, coordinator.HealthDegraded)
			rec.RecordSLOTransition(int64(i), "quality", 0, 1)
			rec.RecordDecodeFailure(i, int64(i), uint32(i), false)
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 32; i++ {
			rec.TriggerSeal(TriggerSLO, int64(i), "concurrent")
			rec.SealNow(TriggerManual, "concurrent") //csecg:errok cap/suppression expected
		}
	}()
	wg.Wait()
	rec.Drain()
	if err := rec.SealErr(); err != nil {
		t.Fatal(err)
	}
	sink.mu.Lock()
	defer sink.mu.Unlock()
	if len(sink.order) == 0 {
		t.Fatal("no bundle survived the race")
	}
	for _, name := range sink.order {
		if _, err := ParseBundle(sink.bundles[name]); err != nil {
			t.Fatalf("torn bundle %s: %v", name, err)
		}
	}
}

// TestCaptureAllocsFree pins the zero-allocation contract on every
// capture-path method — the runtime check backing the csecg-vet noalloc
// static analysis.
func TestCaptureAllocsFree(t *testing.T) {
	rec := NewRecorder(Config{Session: "alloc",
		FrameArenaBytes: 1 << 12, FrameCap: 16, WindowCap: 16, EventCap: 16})
	frame := testFrame(3, 96)
	w := coordinator.WindowCapture{Slot: 1, Ordinal: 1, Seq: 1, ResidualNorm: 0.5}
	methods := []struct {
		name string
		fn   func()
	}{
		{"RecordFrame", func() { rec.RecordFrame(1, 1, 1, frame) }},
		{"RecordWindow", func() { rec.RecordWindow(w) }},
		{"RecordHealth", func() { rec.RecordHealth(1, coordinator.HealthDecoding, coordinator.HealthDegraded) }},
		{"RecordSLOTransition", func() { rec.RecordSLOTransition(1, "quality", 0, 1) }},
		{"RecordSlot", func() { rec.RecordSlot(2) }},
		{"RecordDecodeFailure", func() { rec.RecordDecodeFailure(1, 1, 1, false) }},
	}
	for _, m := range methods {
		if n := testing.AllocsPerRun(200, m.fn); n != 0 {
			t.Errorf("%s allocates %.1f per call, want 0", m.name, n)
		}
	}
}

// TestBundleSizeCapDropsOldestFrames: the size cap sheds the oldest
// frames (the replay payload) while the incident narrative — windows,
// events, metrics — always survives, and the header says so honestly.
func TestBundleSizeCapDropsOldestFrames(t *testing.T) {
	const capBytes = 8192
	sink := &memSink{}
	rec := NewRecorder(Config{Session: "cap", Sink: sink,
		FrameArenaBytes: 1 << 14, FrameCap: 64, MaxBundleBytes: capBytes})
	for i := 0; i < 40; i++ {
		rec.RecordFrame(i, uint32(i), 1, testFrame(i, 80))
		rec.RecordWindow(coordinator.WindowCapture{Slot: i, Ordinal: int64(i), Seq: uint32(i)})
	}
	if _, err := rec.SealNow(TriggerManual, "test"); err != nil {
		t.Fatal(err)
	}
	data := sink.last(t)
	if len(data) > capBytes {
		t.Fatalf("bundle %d bytes exceeds the %d cap", len(data), capBytes)
	}
	b, err := ParseBundle(data)
	if err != nil {
		t.Fatal(err)
	}
	if !b.Header.Truncated || b.Header.DroppedFrames == 0 {
		t.Fatalf("cap not reflected in header: %+v", b.Header)
	}
	if len(b.Windows) != 40 {
		t.Fatalf("size cap ate %d windows, must only drop frames", 40-len(b.Windows))
	}
	if len(b.Frames) == 0 {
		t.Fatal("cap dropped every frame; budget accounting too aggressive")
	}
	// The kept frames are the newest suffix.
	if b.Frames[len(b.Frames)-1].Seq != 39 {
		t.Fatalf("newest frame seq %d, want 39", b.Frames[len(b.Frames)-1].Seq)
	}
	if b.Header.Complete() {
		t.Fatal("truncated bundle claims completeness")
	}
}

// TestParseBundleRejects: envelope strictness.
func TestParseBundleRejects(t *testing.T) {
	valid := func() []byte {
		sink := &memSink{}
		rec := NewRecorder(Config{Session: "v", Sink: sink})
		rec.RecordWindow(coordinator.WindowCapture{Ordinal: 1})
		if _, err := rec.SealNow(TriggerManual, "t"); err != nil {
			t.Fatal(err)
		}
		return sink.last(t)
	}()
	if _, err := ParseBundle(valid); err != nil {
		t.Fatalf("valid bundle rejected: %v", err)
	}
	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"no-header", []byte(`{"type":"window","ordinal":1}`)},
		{"bad-version", []byte(`{"type":"header","version":99,"meta":{}}`)},
		{"unknown-type", append(append([]byte{}, valid...), []byte(`{"type":"mystery"}`)...)},
		{"duplicate-header", append(append([]byte{}, valid...), valid...)},
		{"count-mismatch", append(append([]byte{}, valid...), []byte(`{"type":"window","ordinal":2}`)...)},
		{"garbage", []byte("not json at all")},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ParseBundle(tc.data); err == nil {
				t.Fatal("malformed bundle accepted")
			}
		})
	}
}

func TestSanitizeName(t *testing.T) {
	cases := map[string]string{
		"":              "session",
		"record 100":    "record-100",
		"a/b\\c:d":      "a-b-c-d",
		"ok-name_1.2":   "ok-name_1.2",
		"ünïcode":       "--n--code",
		"record\n100\t": "record-100-",
	}
	for in, want := range cases {
		if got := sanitizeName(in); got != want {
			t.Errorf("sanitizeName(%q) = %q, want %q", in, got, want)
		}
	}
	h := Header{Session: "record 100", Ordinal: 7, Cause: "slo"}
	if got := bundleName(h); got != "bundle-record-100-007-slo.jsonl" {
		t.Errorf("bundleName = %q", got)
	}
}

// FuzzParseBundle: the parser must never panic, and anything it
// accepts must survive an encode→parse round trip.
func FuzzParseBundle(f *testing.F) {
	sink := &memSink{}
	rec := NewRecorder(Config{Session: "fuzz-seed", Sink: sink})
	rec.RecordFrame(0, 0, 1, testFrame(0, 32))
	rec.RecordWindow(coordinator.WindowCapture{Ordinal: 0, ResidualNorm: 1.25})
	rec.RecordHealth(0, coordinator.HealthStarting, coordinator.HealthDecoding)
	if _, err := rec.SealNow(TriggerManual, "seed"); err != nil {
		f.Fatal(err)
	}
	f.Add(sink.bundles[sink.order[0]])
	f.Add([]byte(`{"type":"header","version":1,"meta":{}}`))
	f.Add([]byte(`{"type":"header","version":1,"frames":1,"meta":{}}` + "\n" +
		`{"type":"frame","data":"AAECAw=="}`))
	f.Add([]byte("{}\n{}"))
	f.Fuzz(func(t *testing.T, data []byte) {
		b, err := ParseBundle(data)
		if err != nil {
			return
		}
		enc, err := encodeBundle(b, DefaultMaxBundleBytes)
		if err != nil {
			t.Fatalf("accepted bundle failed to re-encode: %v", err)
		}
		if _, err := ParseBundle(enc); err != nil {
			t.Fatalf("round trip broke: %v\nbundle: %s", err, enc)
		}
	})
}
