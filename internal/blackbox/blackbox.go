// Package blackbox is the coordinator's flight recorder: an always-on,
// bounded-memory ring of recent session history — raw ingested frames
// (post-CRC, pre-decode), per-window decode summaries, health and SLO
// transitions — that seals a self-contained diagnostics bundle to disk
// when an anomaly trigger fires. The capture path (the
// coordinator.FlightRecorder methods plus RecordSLOTransition) is
// allocation-free: fixed-size rings allocated once at construction,
// copy-in semantics, no wall clock. Sealing and parsing are host-side
// operations and allocate freely.
//
// A sealed bundle (see bundle.go) replays deterministically through the
// real receiver and solver stack (see replay.go and cmd/csecg-replay):
// every field incident becomes a reproducible test case.
package blackbox

import (
	"fmt"
	"sync"

	"csecg/internal/coordinator"
	"csecg/internal/telemetry"
)

// Defaults for Config zero fields, sized so a recorder rings roughly
// the last 30 s of a one-lead session (≈15 windows/s worst case under
// burst arrival) in well under a megabyte.
const (
	DefaultFrameArenaBytes  = 256 << 10
	DefaultFrameCap         = 1024
	DefaultWindowCap        = 512
	DefaultEventCap         = 256
	DefaultMaxBundleBytes   = 1 << 20
	DefaultRateLimitWindows = 64
	DefaultMaxBundles       = 8
)

// labelCap bounds the per-event name/detail text captured on the hot
// path; longer strings are truncated, never allocated around.
const labelCap = 48

// Sink persists sealed bundles. WriteBundle stores data under name and
// returns the full path (or URL) it landed at. Implementations must be
// safe for concurrent use.
type Sink interface {
	WriteBundle(name string, data []byte) (string, error)
}

// Config sizes a Recorder. Zero fields take the Default* constants; a
// nil Sink records but never persists (TriggerSeal and SealNow report
// ErrNoSink).
type Config struct {
	// Session names the stream; it lands in the bundle header and
	// filename.
	Session string
	// Sink persists sealed bundles (DirSink writes files).
	Sink Sink
	// FrameArenaBytes bounds the raw-frame byte ring; FrameCap the
	// frame count ring. Whichever fills first evicts oldest-first.
	FrameArenaBytes int
	FrameCap        int
	// WindowCap bounds the per-window decode-summary ring.
	WindowCap int
	// EventCap bounds the health/SLO/failure/trigger event ring.
	EventCap int
	// MaxBundleBytes caps a sealed bundle's encoded size; oldest
	// frames are dropped (and the bundle marked truncated) to fit.
	MaxBundleBytes int
	// RateLimitWindows is the minimum number of newly captured windows
	// between two automatic seals (manual SealNow bypasses it).
	RateLimitWindows int
	// MaxBundles caps total bundles sealed over the recorder's
	// lifetime — a runaway trigger cannot fill the disk.
	MaxBundles int
}

func (c Config) withDefaults() Config {
	if c.FrameArenaBytes == 0 {
		c.FrameArenaBytes = DefaultFrameArenaBytes
	}
	if c.FrameCap == 0 {
		c.FrameCap = DefaultFrameCap
	}
	if c.WindowCap == 0 {
		c.WindowCap = DefaultWindowCap
	}
	if c.EventCap == 0 {
		c.EventCap = DefaultEventCap
	}
	if c.MaxBundleBytes == 0 {
		c.MaxBundleBytes = DefaultMaxBundleBytes
	}
	if c.RateLimitWindows == 0 {
		c.RateLimitWindows = DefaultRateLimitWindows
	}
	if c.MaxBundles == 0 {
		c.MaxBundles = DefaultMaxBundles
	}
	return c
}

// TriggerCause identifies what sealed a bundle.
type TriggerCause uint8

// Trigger causes, in the order the tentpole lists them.
const (
	TriggerSLO TriggerCause = iota + 1
	TriggerPanic
	TriggerChaosViolation
	TriggerManual
)

func (c TriggerCause) String() string {
	switch c {
	case TriggerSLO:
		return "slo"
	case TriggerPanic:
		return "decode-panic"
	case TriggerChaosViolation:
		return "chaos-violation"
	case TriggerManual:
		return "manual"
	default:
		return "unknown"
	}
}

// frameEntry locates one captured frame inside the byte arena.
type frameEntry struct {
	off, n int
	slot   int
	seq    uint32
	kind   uint8
}

// event kinds in the fixed ring.
const (
	eventHealth uint8 = iota + 1
	eventSLO
	eventFailure
	eventTrigger
)

// event is one fixed-size ring entry; label holds SLO names and trigger
// detail, truncated to labelCap bytes.
type event struct {
	kind     uint8
	flag     bool // failure: panicked; trigger: suppressed
	slot     int
	tsNs     int64
	ordinal  int64
	seq      uint32
	a, b     int64 // health/SLO from→to codes; trigger: cause
	label    [labelCap]byte
	labelLen uint8
}

// Recorder is the flight recorder. It implements
// coordinator.FlightRecorder; all methods are safe for concurrent use
// (capture runs on the stream goroutine while HTTP triggers seal).
type Recorder struct {
	cfg Config

	mu sync.Mutex
	// Raw-frame ring: a byte arena consumed modularly plus a parallel
	// entry ring. aStart/aUsed track the live arena span (it wraps).
	arena  []byte
	aStart int
	aUsed  int
	frames []frameEntry
	fHead  int
	fLen   int
	// Window and event rings.
	windows []WindowRecord
	wHead   int
	wLen    int
	events  []event
	eHead   int
	eLen    int
	// lastSlot is the highest receiver slot observed (RecordSlot keeps
	// it advancing through frame-less tail slots).
	lastSlot int
	// Monotonic capture accounting.
	capturedWindows int64
	evictedFrames   int64
	evictedWindows  int64
	evictedEvents   int64
	oversizeFrames  int64
	// Seal state.
	meta            SessionMeta
	reg             *telemetry.Registry
	sealsStarted    int
	lastSealWindows int64
	sealedAny       bool
	suppressed      int64
	bundles         []string
	sealErr         error

	// inflight tracks seals whose sink write is still running, so a
	// draining server can wait for bundles to hit disk.
	inflight sync.WaitGroup
}

// NewRecorder builds a recorder; every ring is allocated here, once.
func NewRecorder(cfg Config) *Recorder {
	cfg = cfg.withDefaults()
	r := &Recorder{
		cfg:     cfg,
		arena:   make([]byte, cfg.FrameArenaBytes),
		frames:  make([]frameEntry, cfg.FrameCap),
		windows: make([]WindowRecord, cfg.WindowCap),
		events:  make([]event, cfg.EventCap),
	}
	r.meta.Session = cfg.Session
	r.meta.Reproducible = true
	return r
}

// SetMeta records the session parameters a bundle needs to rebuild the
// decode stack for replay. Call before streaming; FromDecoder builds
// one from resolved params.
func (r *Recorder) SetMeta(m SessionMeta) {
	r.mu.Lock()
	if m.Session == "" {
		m.Session = r.cfg.Session
	}
	r.meta = m
	r.mu.Unlock()
}

// MarkUnreproducible flags the session as not bit-replayable from its
// frame stream (e.g. solver costs were perturbed mid-run); csecg-replay
// will refuse to diff such a bundle instead of reporting false
// divergence.
func (r *Recorder) MarkUnreproducible(reason string) {
	r.mu.Lock()
	r.meta.Reproducible = false
	if r.meta.UnreproducibleReason == "" {
		r.meta.UnreproducibleReason = reason
	}
	r.mu.Unlock()
}

// AttachRegistry points the recorder at the session's telemetry
// registry; sealed bundles embed a Snapshot of it.
func (r *Recorder) AttachRegistry(reg *telemetry.Registry) {
	r.mu.Lock()
	r.reg = reg
	r.mu.Unlock()
}

// RecordFrame captures one post-CRC wire frame: copy-in to the byte
// arena, evicting oldest frames until it fits.
//
//csecg:hotpath
func (r *Recorder) RecordFrame(slot int, seq uint32, kind uint8, frame []byte) {
	r.mu.Lock()
	n := len(frame)
	if n > len(r.arena) {
		r.oversizeFrames++
		r.mu.Unlock()
		return
	}
	for r.fLen > 0 && (r.aUsed+n > len(r.arena) || r.fLen == len(r.frames)) {
		r.evictOldestFrameLocked()
	}
	off := r.aStart + r.aUsed
	if off >= len(r.arena) {
		off -= len(r.arena)
	}
	first := len(r.arena) - off
	if first > n {
		first = n
	}
	copy(r.arena[off:off+first], frame[:first])
	copy(r.arena[:n-first], frame[first:])
	e := &r.frames[(r.fHead+r.fLen)%len(r.frames)]
	e.off, e.n, e.slot, e.seq, e.kind = off, n, slot, seq, kind
	r.fLen++
	r.aUsed += n
	if slot > r.lastSlot {
		r.lastSlot = slot
	}
	r.mu.Unlock()
}

func (r *Recorder) evictOldestFrameLocked() {
	e := &r.frames[r.fHead]
	r.aStart += e.n
	if r.aStart >= len(r.arena) {
		r.aStart -= len(r.arena)
	}
	r.aUsed -= e.n
	r.fHead = (r.fHead + 1) % len(r.frames)
	r.fLen--
	r.evictedFrames++
}

// RecordWindow captures one released window's decode summary.
//
//csecg:hotpath
func (r *Recorder) RecordWindow(w coordinator.WindowCapture) {
	r.mu.Lock()
	if r.wLen == len(r.windows) {
		r.wHead = (r.wHead + 1) % len(r.windows)
		r.wLen--
		r.evictedWindows++
	}
	r.windows[(r.wHead+r.wLen)%len(r.windows)] = WindowRecord{
		Slot:            w.Slot,
		Ordinal:         w.Ordinal,
		Seq:             w.Seq,
		Rung:            int(w.Rung),
		Iterations:      w.Iterations,
		EscapeCount:     w.EscapeCount,
		Converged:       w.Converged,
		DeadlineExpired: w.DeadlineExpired,
		Degraded:        w.Degraded,
		ResidualNorm:    w.ResidualNorm,
		EstPRDN:         w.EstPRDN,
		Bad:             w.Bad,
		ModeledNs:       w.ModeledNs,
		Trace:           w.Trace,
	}
	r.wLen++
	r.capturedWindows++
	if w.Slot > r.lastSlot {
		r.lastSlot = w.Slot
	}
	r.mu.Unlock()
}

// RecordHealth captures a receiver health transition.
//
//csecg:hotpath
func (r *Recorder) RecordHealth(slot int, from, to coordinator.Health) {
	r.mu.Lock()
	e := r.pushEventLocked()
	e.kind = eventHealth
	e.slot = slot
	e.a, e.b = int64(from), int64(to)
	r.mu.Unlock()
}

// RecordSLOTransition captures an SLO alert-ladder move (codes are
// monitor.AlertState values: 0 ok, 1 warning, 2 critical).
//
//csecg:hotpath
func (r *Recorder) RecordSLOTransition(timelineNs int64, name string, from, to int64) {
	r.mu.Lock()
	e := r.pushEventLocked()
	e.kind = eventSLO
	e.slot = r.lastSlot
	e.tsNs = timelineNs
	e.a, e.b = from, to
	e.labelLen = uint8(copy(e.label[:], name))
	r.mu.Unlock()
}

// RecordDecodeFailure captures one failed decode attempt. A contained
// panic is an anomaly trigger: the recorder seals a bundle before
// returning (heavier work, so this method is not a noalloc hotpath —
// the receive path only reaches it when a window is already lost).
func (r *Recorder) RecordDecodeFailure(slot int, ordinal int64, seq uint32, panicked bool) {
	r.mu.Lock()
	e := r.pushEventLocked()
	e.kind = eventFailure
	e.slot = slot
	e.ordinal = ordinal
	e.seq = seq
	e.flag = panicked
	if slot > r.lastSlot {
		r.lastSlot = slot
	}
	r.mu.Unlock()
	if panicked {
		r.TriggerSeal(TriggerPanic, 0, "contained decode panic")
	}
}

// RecordSlot notes the receiver's slot counter advancing.
//
//csecg:hotpath
func (r *Recorder) RecordSlot(slot int) {
	r.mu.Lock()
	if slot > r.lastSlot {
		r.lastSlot = slot
	}
	r.mu.Unlock()
}

// pushEventLocked claims the next event ring entry (evicting the oldest
// when full) and returns it zeroed.
func (r *Recorder) pushEventLocked() *event {
	if r.eLen == len(r.events) {
		r.eHead = (r.eHead + 1) % len(r.events)
		r.eLen--
		r.evictedEvents++
	}
	e := &r.events[(r.eHead+r.eLen)%len(r.events)]
	*e = event{}
	r.eLen++
	return e
}

// TriggerSeal is the automatic anomaly path: record the trigger event,
// then seal a bundle unless rate-limited (fewer than RateLimitWindows
// windows captured since the last seal, or MaxBundles reached).
// Returns the sealed bundle's path, or "" when suppressed or the sink
// write failed (the error is retained for SealErr).
func (r *Recorder) TriggerSeal(cause TriggerCause, timelineNs int64, detail string) string {
	path, _ := r.seal(cause, timelineNs, detail, false)
	return path
}

// SealNow seals a bundle on explicit operator request (POST
// /debug/bundle). It bypasses the window-gap rate limit but still
// honors MaxBundles.
func (r *Recorder) SealNow(cause TriggerCause, detail string) (string, error) {
	return r.seal(cause, 0, detail, true)
}

// ErrNoSink reports a seal with nowhere to write.
var ErrNoSink = fmt.Errorf("blackbox: no bundle sink configured")

// ErrSuppressed reports a seal suppressed by rate limiting.
var ErrSuppressed = fmt.Errorf("blackbox: bundle suppressed by rate limit")

func (r *Recorder) seal(cause TriggerCause, timelineNs int64, detail string, manual bool) (string, error) {
	r.mu.Lock()
	allowed := r.sealsStarted < r.cfg.MaxBundles &&
		(manual || !r.sealedAny || r.capturedWindows-r.lastSealWindows >= int64(r.cfg.RateLimitWindows))
	e := r.pushEventLocked()
	e.kind = eventTrigger
	e.slot = r.lastSlot
	e.tsNs = timelineNs
	e.a = int64(cause)
	e.flag = !allowed
	e.labelLen = uint8(copy(e.label[:], detail))
	if !allowed {
		r.suppressed++
		r.mu.Unlock()
		return "", ErrSuppressed
	}
	if r.cfg.Sink == nil {
		r.suppressed++
		r.mu.Unlock()
		return "", ErrNoSink
	}
	ordinal := r.sealsStarted
	r.sealsStarted++
	r.sealedAny = true
	r.lastSealWindows = r.capturedWindows
	b := r.snapshotLocked(cause, timelineNs, detail, ordinal)
	reg := r.reg
	r.inflight.Add(1)
	defer r.inflight.Done()
	r.mu.Unlock()

	// Registry snapshot and sink write run outside the capture mutex:
	// capture never blocks on disk.
	if reg != nil {
		b.Metrics = reg.Snapshot()
	}
	data, err := encodeBundle(b, r.cfg.MaxBundleBytes)
	var path string
	if err == nil {
		path, err = r.cfg.Sink.WriteBundle(bundleName(b.Header), data)
	}
	r.mu.Lock()
	if err != nil {
		if r.sealErr == nil {
			r.sealErr = err
		}
	} else {
		r.bundles = append(r.bundles, path)
	}
	r.mu.Unlock()
	return path, err
}

// snapshotLocked copies the rings into a Bundle (metrics attached by
// the caller after unlocking).
func (r *Recorder) snapshotLocked(cause TriggerCause, timelineNs int64, detail string, ordinal int) *Bundle {
	b := &Bundle{
		Header: Header{
			Version:        BundleVersion,
			Session:        r.meta.Session,
			Ordinal:        ordinal,
			Cause:          cause.String(),
			Detail:         detail,
			TimelineNs:     timelineNs,
			Slot:           r.lastSlot,
			Windows:        r.wLen,
			Frames:         r.fLen,
			Events:         r.eLen,
			Captured:       r.capturedWindows,
			EvictedFrames:  r.evictedFrames + r.oversizeFrames,
			EvictedWindows: r.evictedWindows,
			EvictedEvents:  r.evictedEvents,
			Wrapped:        r.evictedFrames+r.oversizeFrames > 0,
			Meta:           r.meta,
		},
	}
	b.Frames = make([]FrameRecord, r.fLen)
	for i := 0; i < r.fLen; i++ {
		e := &r.frames[(r.fHead+i)%len(r.frames)]
		data := make([]byte, e.n)
		first := len(r.arena) - e.off
		if first > e.n {
			first = e.n
		}
		copy(data, r.arena[e.off:e.off+first])
		copy(data[first:], r.arena[:e.n-first])
		b.Frames[i] = FrameRecord{Slot: e.slot, Seq: e.seq, Kind: e.kind, Data: data}
	}
	b.Windows = make([]WindowRecord, r.wLen)
	for i := 0; i < r.wLen; i++ {
		b.Windows[i] = r.windows[(r.wHead+i)%len(r.windows)]
	}
	b.Events = make([]EventRecord, r.eLen)
	for i := 0; i < r.eLen; i++ {
		b.Events[i] = r.events[(r.eHead+i)%len(r.events)].record()
	}
	return b
}

// record converts a ring event to its bundle form.
func (e *event) record() EventRecord {
	rec := EventRecord{
		Slot:       e.slot,
		TimelineNs: e.tsNs,
		Ordinal:    e.ordinal,
		Seq:        e.seq,
		Name:       string(e.label[:e.labelLen]),
	}
	switch e.kind {
	case eventHealth:
		rec.Kind = "health"
		rec.From = coordinator.Health(e.a).String()
		rec.To = coordinator.Health(e.b).String()
	case eventSLO:
		rec.Kind = "slo"
		rec.From = alertName(e.a)
		rec.To = alertName(e.b)
	case eventFailure:
		rec.Kind = "decode-failure"
		rec.Panicked = e.flag
	case eventTrigger:
		rec.Kind = "trigger"
		rec.Cause = TriggerCause(e.a).String()
		rec.Suppressed = e.flag
	}
	return rec
}

// alertName mirrors monitor.AlertState.String without importing monitor
// (monitor imports blackbox).
func alertName(code int64) string {
	switch code {
	case 1:
		return "warning"
	case 2:
		return "critical"
	default:
		return "ok"
	}
}

// Drain blocks until every in-flight seal has finished writing — the
// monitor server calls this from WaitIdle so shutdown never truncates a
// bundle.
func (r *Recorder) Drain() { r.inflight.Wait() }

// Bundles returns the paths of every bundle sealed so far.
func (r *Recorder) Bundles() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, len(r.bundles))
	copy(out, r.bundles)
	return out
}

// BundlesWritten returns the count of bundles successfully persisted.
func (r *Recorder) BundlesWritten() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.bundles)
}

// Suppressed returns how many triggers the rate limiter (or a missing
// sink) swallowed.
func (r *Recorder) Suppressed() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.suppressed
}

// SealErr returns the first sink write or encode error, if any.
func (r *Recorder) SealErr() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.sealErr
}

// WindowRecords copies the current window ring, oldest first — the
// replay harness records a fresh session with one of these and diffs.
func (r *Recorder) WindowRecords() []WindowRecord {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]WindowRecord, r.wLen)
	for i := 0; i < r.wLen; i++ {
		out[i] = r.windows[(r.wHead+i)%len(r.windows)]
	}
	return out
}

// CapturedWindows returns the monotonic count of windows ever captured.
func (r *Recorder) CapturedWindows() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.capturedWindows
}
