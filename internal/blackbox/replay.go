// Deterministic bundle replay: feed a bundle's raw frames back through
// the real transport.Receiver and solver stack and diff the per-window
// decode results against the recorded summaries.
//
// The determinism contract has two tiers:
//
//   - Complete bundles (the frame ring never evicted and the size cap
//     never truncated) carry every frame since session start. Replay
//     rebuilds the decoder from the recorded metadata, re-runs the
//     stream on the same slot grid, scripts the recorded decode
//     failures by attempt ordinal (a contained panic is injected
//     upstream of the decoder, so skipping the inner decode reproduces
//     it exactly), and demands bit-for-bit equality on every recorded
//     field — rung, iterations, residual norm, EstPRDN, modeled time.
//
//   - Wrapped bundles start mid-stream: the degradation ladder's rung,
//     the transport gap-rate ring that feeds EstPRDN, and the decoder's
//     cross-window state (difference frames decode against the previous
//     window) depend on history the bundle no longer holds. Replay
//     resumes the receiver at the first recorded frame, aligns windows
//     by sequence number, and on windows where the replayed ladder rung
//     matches the recorded one demands the entropy-decode observables
//     (escape count) and convergence verdict bit-for-bit and the final
//     residual within a 5 % relative tolerance — the re-seeded warm
//     start perturbs the solve trajectory, so iteration counts and the
//     residual's low bits are not reproducible from a partial stream.
//     The rest are counted, not failed.
//
// Either way a session flagged unreproducible (solver costs perturbed
// mid-run) is skipped, not diffed — the frames alone cannot reproduce
// it and a false divergence is worse than an honest refusal.

package blackbox

import (
	"fmt"
	"math"
	"strconv"

	"csecg/internal/coordinator"
	"csecg/internal/core"
	"csecg/internal/telemetry"
)

// scriptedDecoder forces the recorded decode failures at their original
// attempt ordinals. A recorded panic is reproduced without touching the
// inner decoder (the original panic fired upstream of it, leaving its
// state unchanged); a recorded plain failure lets the inner decoder run
// and verifies it still fails.
type scriptedDecoder struct {
	inner    coordinator.Decoder
	fail     map[int64]bool // attempt ordinal → panicked
	calls    int64
	unforced []int64 // ordinals whose recorded failure did not reproduce
}

func (s *scriptedDecoder) Decode(pkt *core.Packet) (*coordinator.Result, error) {
	ord := s.calls
	s.calls++
	panicked, scripted := s.fail[ord]
	if scripted && panicked {
		return nil, fmt.Errorf("blackbox: replaying contained panic at decode ordinal %d", ord)
	}
	res, err := s.inner.Decode(pkt)
	if scripted && err == nil {
		s.unforced = append(s.unforced, ord)
		return nil, fmt.Errorf("blackbox: recorded failure at decode ordinal %d did not reproduce", ord)
	}
	return res, err
}

func (s *scriptedDecoder) Params() core.Params { return s.inner.Params() }

// Divergence is one field where replay disagreed with the record.
type Divergence struct {
	Ordinal int64  `json:"ordinal"`
	Seq     uint32 `json:"seq"`
	Field   string `json:"field"`
	Want    string `json:"want"`
	Got     string `json:"got"`
}

// ReplayReport is the outcome of one bundle replay.
type ReplayReport struct {
	Session string `json:"session"`
	Cause   string `json:"cause"`
	// Complete selects the bit-exact tier of the determinism contract.
	Complete bool `json:"complete"`
	// Skipped marks a bundle replay refused to diff (unreproducible
	// session); SkipReason says why.
	Skipped    bool   `json:"skipped,omitempty"`
	SkipReason string `json:"skip_reason,omitempty"`
	// Windows is the recorded window count; Compared how many were
	// diffed; Missing how many the replay never produced (a failure in
	// complete mode); NotReplayed / RungSkipped count wrapped-mode
	// windows outside the comparable region; Extra the replayed
	// windows with no recorded counterpart (informational).
	Windows     int `json:"windows"`
	Compared    int `json:"compared"`
	Missing     int `json:"missing,omitempty"`
	NotReplayed int `json:"not_replayed,omitempty"`
	RungSkipped int `json:"rung_skipped,omitempty"`
	Extra       int `json:"extra,omitempty"`

	Divergences []Divergence `json:"divergences,omitempty"`
}

// OK reports whether the replay upheld the determinism contract.
func (r *ReplayReport) OK() bool {
	return r.Skipped || (len(r.Divergences) == 0 && r.Missing == 0)
}

// Replay feeds b's raw frames through a freshly built receiver + solver
// stack (with an injected manual clock — nothing reads wall time) and
// diffs the resulting per-window summaries against the recorded ones.
// An error means the replay harness could not run (bad metadata,
// protocol violation); divergence is reported in the ReplayReport, not
// the error.
func Replay(b *Bundle) (*ReplayReport, error) {
	h := b.Header
	rep := &ReplayReport{
		Session:  h.Session,
		Cause:    h.Cause,
		Complete: h.Complete(),
		Windows:  len(b.Windows),
	}
	if !h.Meta.Reproducible {
		rep.Skipped = true
		rep.SkipReason = h.Meta.UnreproducibleReason
		if rep.SkipReason == "" {
			rep.SkipReason = "session marked unreproducible"
		}
		return rep, nil
	}
	if !rep.Complete && len(b.Frames) == 0 {
		rep.Skipped = true
		rep.SkipReason = "wrapped bundle carries no frames"
		return rep, nil
	}

	params, err := h.Meta.Params()
	if err != nil {
		return nil, err
	}
	dec, err := coordinator.NewRealTimeDecoder(params, coordinator.Mode(h.Meta.Mode))
	if err != nil {
		return nil, fmt.Errorf("blackbox: rebuilding decoder: %w", err)
	}
	reg := telemetry.NewRegistry() //csecg:metricok replay-local measurement registry, inspected in-process only
	dec.Instrument(reg, telemetry.NewManualClock(0))

	sd := &scriptedDecoder{inner: dec}
	if rep.Complete {
		sd.fail = recordedFailures(b.Events)
	}
	rx := coordinator.NewReceiver(sd, h.Meta.Transport())
	// Reinstall the session's trace seed so replayed window records
	// reproduce the recorded causal trace IDs bit-for-bit.
	rx.SetTraceSeed(h.Meta.TraceSeed)

	// The replay records itself with a mirror recorder — the diff is
	// record-vs-record, field for field.
	mirror := NewRecorder(Config{
		Session:         h.Session,
		FrameArenaBytes: 1 << 16,
		FrameCap:        64,
		WindowCap:       len(b.Frames) + len(b.Windows) + 64,
		EventCap:        len(b.Frames) + 64,
	})
	rx.SetRecorder(mirror)

	curSlot := 0
	if !rep.Complete {
		rx.ResumeAt(b.Frames[0].Seq, b.Frames[0].Slot)
		curSlot = b.Frames[0].Slot
	}
	for _, f := range b.Frames {
		for curSlot < f.Slot {
			rx.EndSlot()
			curSlot++
		}
		if _, err := rx.IngestFrame(f.Data); err != nil {
			return nil, fmt.Errorf("blackbox: replaying frame seq %d: %w", f.Seq, err)
		}
	}
	for curSlot < h.Slot {
		rx.EndSlot()
		curSlot++
	}
	rx.Close()

	got := mirror.WindowRecords()
	if rep.Complete {
		diffComplete(rep, b.Windows, got)
	} else {
		diffWrapped(rep, b.Windows, got)
	}
	for _, ord := range sd.unforced {
		rep.Divergences = append(rep.Divergences, Divergence{
			Ordinal: ord, Field: "decode-failure", Want: "failure", Got: "success",
		})
	}
	return rep, nil
}

// recordedFailures extracts the decode-failure script from the event
// records: attempt ordinal → panicked.
func recordedFailures(events []EventRecord) map[int64]bool {
	m := map[int64]bool{}
	for _, e := range events {
		if e.Kind == "decode-failure" {
			m[e.Ordinal] = e.Panicked
		}
	}
	return m
}

// diffComplete demands bit-for-bit equality on every recorded window,
// aligned by decode-attempt ordinal.
func diffComplete(rep *ReplayReport, want, got []WindowRecord) {
	byOrd := make(map[int64]WindowRecord, len(got))
	for _, g := range got {
		byOrd[g.Ordinal] = g
	}
	for _, w := range want {
		g, ok := byOrd[w.Ordinal]
		if !ok {
			rep.Missing++
			rep.Divergences = append(rep.Divergences, Divergence{
				Ordinal: w.Ordinal, Seq: w.Seq, Field: "window", Want: "decoded", Got: "missing",
			})
			continue
		}
		rep.Compared++
		diffWindow(rep, w, g, true)
	}
	rep.Extra = len(got) - rep.Compared
}

// diffWrapped aligns by sequence number and compares only the fields a
// mid-stream resume can reproduce, and only where the ladder rung
// matches.
func diffWrapped(rep *ReplayReport, want, got []WindowRecord) {
	used := make([]bool, len(got))
	for _, w := range want {
		idx := -1
		for i := range got {
			if !used[i] && got[i].Seq == w.Seq {
				idx = i
				break
			}
		}
		if idx < 0 {
			rep.NotReplayed++
			continue
		}
		used[idx] = true
		if got[idx].Rung != w.Rung {
			rep.RungSkipped++
			continue
		}
		rep.Compared++
		diffWindow(rep, w, got[idx], false)
	}
	rep.Extra = len(got) - (rep.Compared + rep.RungSkipped)
}

// diffWindow appends a divergence per unequal field. Full mode covers
// every recorded field; otherwise only the solver-deterministic subset.
func diffWindow(rep *ReplayReport, w, g WindowRecord, full bool) {
	miss := func(field, want, got string) {
		rep.Divergences = append(rep.Divergences, Divergence{
			Ordinal: w.Ordinal, Seq: w.Seq, Field: field, Want: want, Got: got,
		})
	}
	eqI := func(field string, want, got int) {
		if want != got {
			miss(field, strconv.Itoa(want), strconv.Itoa(got))
		}
	}
	eqB := func(field string, want, got bool) {
		if want != got {
			miss(field, strconv.FormatBool(want), strconv.FormatBool(got))
		}
	}
	eqF := func(field string, want, got float64) {
		if math.Float64bits(want) != math.Float64bits(got) {
			miss(field, strconv.FormatFloat(want, 'g', -1, 64), strconv.FormatFloat(got, 'g', -1, 64))
		}
	}
	// approxF is the wrapped-tier float comparison: the resumed decoder's
	// warm start differs from the original, so the solve lands near, not
	// on, the recorded residual.
	approxF := func(field string, want, got float64) {
		diff := math.Abs(want - got)
		scale := math.Max(math.Abs(want), math.Abs(got))
		if diff > 0.05*scale {
			miss(field, strconv.FormatFloat(want, 'g', -1, 64), strconv.FormatFloat(got, 'g', -1, 64))
		}
	}
	if w.Seq != g.Seq {
		miss("seq", strconv.FormatUint(uint64(w.Seq), 10), strconv.FormatUint(uint64(g.Seq), 10))
	}
	eqI("escape_count", w.EscapeCount, g.EscapeCount)
	eqB("converged", w.Converged, g.Converged)
	if !full {
		approxF("residual_norm", w.ResidualNorm, g.ResidualNorm)
		return
	}
	eqI("iterations", w.Iterations, g.Iterations)
	eqF("residual_norm", w.ResidualNorm, g.ResidualNorm)
	eqI("slot", w.Slot, g.Slot)
	eqI("rung", w.Rung, g.Rung)
	eqB("deadline_expired", w.DeadlineExpired, g.DeadlineExpired)
	eqB("degraded", w.Degraded, g.Degraded)
	eqF("est_prdn", w.EstPRDN, g.EstPRDN)
	eqB("bad", w.Bad, g.Bad)
	if w.ModeledNs != g.ModeledNs {
		miss("modeled_ns", strconv.FormatInt(w.ModeledNs, 10), strconv.FormatInt(g.ModeledNs, 10))
	}
	if w.Trace != g.Trace {
		miss("trace", strconv.FormatUint(w.Trace, 10), strconv.FormatUint(g.Trace, 10))
	}
}
