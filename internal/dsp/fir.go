// Package dsp provides the signal-processing substrate of the pipeline:
// windowed-sinc FIR design, convolution and a polyphase rational
// resampler.
//
// The paper feeds the MIT-BIH records (360 Hz) to the Shimmer mote
// "re-sampled at 256 Hz". 256/360 reduces to 32/45, so the record loader
// uses a polyphase L=32, M=45 rational resampler built from a windowed-
// sinc low-pass prototype.
package dsp

import "math"

// Window selects the tapering window applied to the sinc prototype.
type Window int

// Supported FIR design windows.
const (
	Rectangular Window = iota
	Hamming
	Blackman
)

// FIRLowpass designs a linear-phase low-pass FIR filter with numTaps
// coefficients and normalized cutoff fc ∈ (0, 0.5) (fraction of the
// sample rate) using the windowed-sinc method. The filter has unit DC
// gain. It panics on invalid arguments.
func FIRLowpass(numTaps int, fc float64, w Window) []float64 {
	if numTaps < 3 {
		panic("dsp: FIRLowpass needs at least 3 taps")
	}
	if fc <= 0 || fc >= 0.5 {
		panic("dsp: FIRLowpass cutoff out of (0, 0.5)")
	}
	h := make([]float64, numTaps)
	mid := float64(numTaps-1) / 2
	for n := range h {
		t := float64(n) - mid
		var s float64
		if t == 0 {
			s = 2 * fc
		} else {
			s = math.Sin(2*math.Pi*fc*t) / (math.Pi * t)
		}
		h[n] = s * windowValue(w, n, numTaps)
	}
	// Normalize to exact unit DC gain.
	var sum float64
	for _, v := range h {
		sum += v
	}
	for i := range h {
		h[i] /= sum
	}
	return h
}

func windowValue(w Window, n, numTaps int) float64 {
	x := float64(n) / float64(numTaps-1)
	switch w {
	case Hamming:
		return 0.54 - 0.46*math.Cos(2*math.Pi*x)
	case Blackman:
		return 0.42 - 0.5*math.Cos(2*math.Pi*x) + 0.08*math.Cos(4*math.Pi*x)
	default:
		return 1
	}
}

// Convolve returns the full linear convolution of x and h, of length
// len(x)+len(h)−1. Either input may be empty, yielding an empty result.
func Convolve(x, h []float64) []float64 {
	if len(x) == 0 || len(h) == 0 {
		return nil
	}
	out := make([]float64, len(x)+len(h)-1)
	for i, xi := range x {
		if xi == 0 {
			continue
		}
		for j, hj := range h {
			out[i+j] += xi * hj
		}
	}
	return out
}

// FilterSame filters x with h and returns an output aligned with x (the
// "same" mode of convolution): group delay of the linear-phase filter is
// removed so features stay time-aligned.
func FilterSame(x, h []float64) []float64 {
	full := Convolve(x, h)
	if full == nil {
		return nil
	}
	start := (len(h) - 1) / 2
	out := make([]float64, len(x))
	copy(out, full[start:start+len(x)])
	return out
}

// FrequencyResponseMag returns |H(e^{j2πf})| of the FIR filter h at
// normalized frequency f ∈ [0, 0.5].
func FrequencyResponseMag(h []float64, f float64) float64 {
	var re, im float64
	for n, v := range h {
		re += v * math.Cos(2*math.Pi*f*float64(n))
		im -= v * math.Sin(2*math.Pi*f*float64(n))
	}
	return math.Hypot(re, im)
}
