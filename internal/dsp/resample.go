package dsp

// Resampler converts a signal between two sample rates related by a
// rational factor L/M (upsample by L, low-pass, downsample by M) using a
// polyphase decomposition so only the retained output samples are ever
// computed.
type Resampler struct {
	l, m  int
	proto []float64 // low-pass prototype at rate fs·L, gain L
}

// NewResampler creates an L/M rational resampler. tapsPerPhase controls
// the prototype length (len = tapsPerPhase·L, a few tens of ms of signal
// at ECG rates is plenty). It panics if L or M is not positive.
func NewResampler(l, m, tapsPerPhase int) *Resampler {
	if l <= 0 || m <= 0 {
		panic("dsp: NewResampler with non-positive factor")
	}
	if tapsPerPhase < 2 {
		tapsPerPhase = 2
	}
	g := gcd(l, m)
	l, m = l/g, m/g
	numTaps := tapsPerPhase*l | 1 // odd length for symmetric linear phase
	// Cutoff at min(1/(2L), 1/(2M)) of the upsampled rate.
	fc := 0.5 / float64(max(l, m))
	proto := FIRLowpass(numTaps, fc*0.92, Blackman) // 8% transition guard
	// Interpolation gain: the zero-stuffed signal has 1/L the power.
	for i := range proto {
		proto[i] *= float64(l)
	}
	return &Resampler{l: l, m: m, proto: proto}
}

// Ratio returns the reduced (L, M) pair.
func (r *Resampler) Ratio() (l, m int) { return r.l, r.m }

// Process resamples x from rate fs to fs·L/M. The output length is
// ceil(len(x)·L/M). Polyphase evaluation: output sample k taps the
// prototype at phase (k·M mod L) and input offset (k·M div L).
func (r *Resampler) Process(x []float64) []float64 {
	if len(x) == 0 {
		return nil
	}
	outLen := (len(x)*r.l + r.m - 1) / r.m
	out := make([]float64, outLen)
	center := (len(r.proto) - 1) / 2 // remove group delay (in upsampled ticks)
	for k := 0; k < outLen; k++ {
		up := k*r.m + center // index in the upsampled-time grid
		// x contributes at upsampled positions i·L; find the taps that hit them.
		// h index j must satisfy (up − j) ≡ 0 (mod L).
		jStart := up % r.l
		var acc float64
		for j := jStart; j < len(r.proto); j += r.l {
			i := (up - j) / r.l
			if i < 0 {
				break
			}
			if i >= len(x) {
				continue
			}
			acc += r.proto[j] * x[i]
		}
		out[k] = acc
	}
	return out
}

// Resample360To256 converts a 360 Hz MIT-BIH-format channel to the 256 Hz
// rate the mote encoder consumes, matching the paper's Section IV-A.1.
func Resample360To256(x []float64) []float64 {
	return NewResampler(32, 45, 24).Process(x)
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
