package dsp

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFIRLowpassDCGain(t *testing.T) {
	for _, w := range []Window{Rectangular, Hamming, Blackman} {
		h := FIRLowpass(63, 0.2, w)
		var sum float64
		for _, v := range h {
			sum += v
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Errorf("window %d: DC gain = %v, want 1", w, sum)
		}
	}
}

func TestFIRLowpassSymmetric(t *testing.T) {
	h := FIRLowpass(51, 0.15, Hamming)
	for i := range h {
		j := len(h) - 1 - i
		if math.Abs(h[i]-h[j]) > 1e-15 {
			t.Fatalf("tap %d and %d differ: %v vs %v (not linear phase)", i, j, h[i], h[j])
		}
	}
}

func TestFIRLowpassStopband(t *testing.T) {
	h := FIRLowpass(101, 0.1, Blackman)
	// Passband: near-unit gain at DC and 0.05.
	if g := FrequencyResponseMag(h, 0.0); math.Abs(g-1) > 0.01 {
		t.Errorf("gain at DC = %v", g)
	}
	if g := FrequencyResponseMag(h, 0.05); math.Abs(g-1) > 0.05 {
		t.Errorf("gain at 0.05 = %v", g)
	}
	// Stopband: strong attenuation past 1.5× cutoff.
	for _, f := range []float64{0.18, 0.25, 0.4, 0.49} {
		if g := FrequencyResponseMag(h, f); g > 0.01 {
			t.Errorf("stopband gain at %v = %v, want < 0.01", f, g)
		}
	}
}

func TestFIRLowpassPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { FIRLowpass(2, 0.2, Hamming) },
		func() { FIRLowpass(11, 0, Hamming) },
		func() { FIRLowpass(11, 0.5, Hamming) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestConvolveKnown(t *testing.T) {
	got := Convolve([]float64{1, 2, 3}, []float64{1, 1})
	want := []float64{1, 3, 5, 3}
	if len(got) != len(want) {
		t.Fatalf("Convolve length %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Convolve[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if Convolve(nil, []float64{1}) != nil {
		t.Error("Convolve with empty input should be nil")
	}
}

func TestConvolveCommutative(t *testing.T) {
	f := func(a, b []float64) bool {
		if len(a) == 0 || len(b) == 0 {
			return true
		}
		for i := range a {
			if math.IsNaN(a[i]) || math.IsInf(a[i], 0) {
				return true
			}
			a[i] = math.Mod(a[i], 1e3)
		}
		for i := range b {
			if math.IsNaN(b[i]) || math.IsInf(b[i], 0) {
				return true
			}
			b[i] = math.Mod(b[i], 1e3)
		}
		ab := Convolve(a, b)
		ba := Convolve(b, a)
		for i := range ab {
			if math.Abs(ab[i]-ba[i]) > 1e-6*(1+math.Abs(ab[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestFilterSameAlignment(t *testing.T) {
	// An impulse through a symmetric filter must stay centered.
	x := make([]float64, 21)
	x[10] = 1
	h := FIRLowpass(31, 0.2, Hamming)
	y := FilterSame(x, h)
	if len(y) != len(x) {
		t.Fatalf("FilterSame length %d, want %d", len(y), len(x))
	}
	// Peak must remain at index 10.
	best, bestIdx := 0.0, -1
	for i, v := range y {
		if v > best {
			best, bestIdx = v, i
		}
	}
	if bestIdx != 10 {
		t.Errorf("impulse peak moved to %d, want 10", bestIdx)
	}
}

func TestResamplerRatioReduced(t *testing.T) {
	r := NewResampler(256, 360, 16)
	l, m := r.Ratio()
	if l != 32 || m != 45 {
		t.Errorf("Ratio = %d/%d, want 32/45", l, m)
	}
}

func TestResamplerOutputLength(t *testing.T) {
	x := make([]float64, 3600) // 10 s at 360 Hz
	y := Resample360To256(x)
	want := (3600*32 + 44) / 45 // = 2560
	if len(y) != want {
		t.Errorf("output length %d, want %d", len(y), want)
	}
}

func TestResamplerPreservesSine(t *testing.T) {
	// 5 Hz sine at 360 Hz in, expect the same 5 Hz sine at 256 Hz out.
	const fs, f = 360.0, 5.0
	n := 3600
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(2 * math.Pi * f * float64(i) / fs)
	}
	y := Resample360To256(x)
	// Compare against the ideal 256 Hz sine, skipping filter edges.
	const fsOut = 256.0
	var maxErr float64
	for i := 100; i < len(y)-100; i++ {
		want := math.Sin(2 * math.Pi * f * float64(i) / fsOut)
		if e := math.Abs(y[i] - want); e > maxErr {
			maxErr = e
		}
	}
	if maxErr > 0.01 {
		t.Errorf("max resampling error %v, want < 0.01", maxErr)
	}
}

func TestResamplerDCPreserved(t *testing.T) {
	x := make([]float64, 2000)
	for i := range x {
		x[i] = 2.5
	}
	y := NewResampler(32, 45, 24).Process(x)
	for i := 200; i < len(y)-200; i++ {
		if math.Abs(y[i]-2.5) > 1e-3 {
			t.Fatalf("DC level at %d = %v, want 2.5", i, y[i])
		}
	}
}

func TestResamplerIdentity(t *testing.T) {
	// L == M reduces to 1/1: output ≈ input away from edges.
	x := make([]float64, 500)
	for i := range x {
		x[i] = math.Sin(0.05 * float64(i))
	}
	y := NewResampler(3, 3, 16).Process(x)
	if len(y) != len(x) {
		t.Fatalf("identity resampler length %d, want %d", len(y), len(x))
	}
	for i := 50; i < len(x)-50; i++ {
		if math.Abs(y[i]-x[i]) > 1e-3 {
			t.Fatalf("identity resampler deviates at %d: %v vs %v", i, y[i], x[i])
		}
	}
}

func TestResamplerEmptyAndPanics(t *testing.T) {
	if NewResampler(2, 1, 8).Process(nil) != nil {
		t.Error("Process(nil) should be nil")
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic for L=0")
		}
	}()
	NewResampler(0, 1, 8)
}

func BenchmarkResample10s(b *testing.B) {
	x := make([]float64, 3600)
	for i := range x {
		x[i] = math.Sin(0.1 * float64(i))
	}
	r := NewResampler(32, 45, 24)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Process(x)
	}
}

func BenchmarkFIRLowpassDesign(b *testing.B) {
	for i := 0; i < b.N; i++ {
		FIRLowpass(769, 0.01, Blackman)
	}
}
