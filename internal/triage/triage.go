// Package triage turns causal span traces into a critical-path latency
// report: per-stage p50/p95/p99 contribution to window decode latency,
// dominant-stage ranking per degradation rung, a tiling-integrity check
// (depth-1 span durations must sum to the recorded end-to-end latency),
// and a one-line verdict naming what the p99 tail is dominated by —
// e.g. "p99 dominated by solver stage fista/2 under rung 1".
//
// The input is the trace JSONL a CausalTracer retains (csecg-bench
// -spans, csecg-monitor -spans-out) or a diagnostics bundle sealed by
// the flight recorder. A bundle carries per-window decode summaries but
// no span trees, so bundle analysis is honestly scoped to the
// decode-side stages and performs no tiling check.
package triage

import (
	"fmt"
	"sort"
	"strings"

	"csecg/internal/blackbox"
	"csecg/internal/coordinator"
	"csecg/internal/telemetry"
)

// DefaultMaxDivergence is the tiling-integrity tolerance: the relative
// gap allowed between a trace's depth-1 leaf sum and its recorded
// end-to-end latency.
const DefaultMaxDivergence = 0.01

// Options tunes an analysis.
type Options struct {
	// MaxDivergence overrides DefaultMaxDivergence (0 = default).
	MaxDivergence float64
}

// StageStat is one depth-1 stage's contribution distribution across
// the analyzed traces.
type StageStat struct {
	Stage string `json:"stage"`
	// Count is the number of traces the stage appears in; a stage's
	// contribution within one trace is the sum of its leaves there
	// (retransmit attempts aggregate).
	Count int   `json:"count"`
	P50Ns int64 `json:"p50_ns"`
	P95Ns int64 `json:"p95_ns"`
	P99Ns int64 `json:"p99_ns"`
	// TotalNs is the stage's summed contribution across every trace;
	// Share is TotalNs over the summed end-to-end latency.
	TotalNs int64   `json:"total_ns"`
	Share   float64 `json:"share"`
}

// RungStat ranks the dominant stage within one degradation rung.
type RungStat struct {
	Rung     int    `json:"rung"`
	RungName string `json:"rung_name"`
	Windows  int    `json:"windows"`
	// Dominant is the stage with the largest summed contribution among
	// this rung's traces, and DominantShare its fraction of the rung's
	// summed latency.
	Dominant      string  `json:"dominant_stage"`
	DominantShare float64 `json:"dominant_share"`
	P99LatencyNs  int64   `json:"p99_latency_ns"`
}

// DivergentTrace is one trace whose leaves fail to tile its latency.
type DivergentTrace struct {
	TraceID    string  `json:"trace_id"`
	Session    string  `json:"session,omitempty"`
	Seq        uint32  `json:"seq"`
	LatencyNs  int64   `json:"latency_ns"`
	LeafSumNs  int64   `json:"leaf_sum_ns"`
	Divergence float64 `json:"divergence"`
}

// Report is the critical-path analysis result.
type Report struct {
	// Source says what was analyzed: "traces" or "bundle".
	Source string `json:"source"`
	// Windows counts analyzed traces; Shed the shed windows excluded
	// from latency attribution (they never decoded).
	Windows int `json:"windows"`
	Shed    int `json:"shed,omitempty"`

	// Stages is the per-stage contribution table, largest total first.
	Stages []StageStat `json:"stages"`
	// Rungs is the per-rung dominant-stage ranking, rung order.
	Rungs []RungStat `json:"rungs"`

	// P99LatencyNs is the end-to-end p99; DominantStage the stage
	// contributing most within the p99 tail (traces at or above the
	// p99), DominantShare its fraction of the tail's latency, and
	// DominantRung the most common rung among the tail's traces.
	P99LatencyNs  int64   `json:"p99_latency_ns"`
	DominantStage string  `json:"dominant_stage"`
	DominantShare float64 `json:"dominant_share"`
	DominantRung  int     `json:"dominant_rung"`

	// Verdict is the one-line human summary.
	Verdict string `json:"verdict"`

	// Divergent lists traces failing the tiling-integrity check (first
	// few), DivergentCount the full count, WorstDivergence the largest
	// observed relative gap, and Clean whether attribution is trusted.
	Divergent       []DivergentTrace `json:"divergent,omitempty"`
	DivergentCount  int              `json:"divergent_count"`
	WorstDivergence float64          `json:"worst_divergence"`
	Clean           bool             `json:"clean"`
}

// solverStages is the closed set of solver-leaf names.
var solverStages = map[string]bool{
	telemetry.SolverStageFISTA1: true,
	telemetry.SolverStageFISTA2: true,
	telemetry.SolverStageGPSR2:  true,
	telemetry.SolverStageGPSR4:  true,
}

// describeStage spells a stage for the verdict ("solver stage fista/2"
// vs "queue-wait").
func describeStage(stage string) string {
	if solverStages[stage] {
		return "solver stage " + stage
	}
	return stage
}

// percentile returns the q-th percentile of sorted (ascending) values
// using the chaos harness's nearest-rank convention.
func percentile(sorted []int64, q int) int64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := (len(sorted)*q + 99) / 100
	if idx > len(sorted) {
		idx = len(sorted)
	}
	if idx < 1 {
		idx = 1
	}
	return sorted[idx-1]
}

// hasFlag reports whether a trace record carries the named flag.
func hasFlag(t *telemetry.TraceRecord, name string) bool {
	for _, f := range t.Flags {
		if f == name {
			return true
		}
	}
	return false
}

// stageContribs aggregates one trace's depth-1 leaves by stage
// (rung-change markers are zero-duration and excluded).
func stageContribs(t *telemetry.TraceRecord) map[string]int64 {
	m := make(map[string]int64, 8)
	for i := range t.Spans {
		s := &t.Spans[i]
		if s.Parent != 0 || s.Stage == telemetry.StageRungChange {
			continue
		}
		m[s.Stage] += s.DurNs
	}
	return m
}

// Analyze runs the critical-path analysis over trace JSONL records.
func Analyze(traces []telemetry.TraceRecord, opts Options) *Report {
	maxDiv := opts.MaxDivergence
	if maxDiv <= 0 {
		maxDiv = DefaultMaxDivergence
	}
	rep := &Report{Source: "traces", Clean: true}

	type window struct {
		rec     *telemetry.TraceRecord
		contrib map[string]int64
	}
	var wins []window
	for i := range traces {
		t := &traces[i]
		if hasFlag(t, "shed") || t.LatencyNs <= 0 {
			rep.Shed++
			continue
		}
		wins = append(wins, window{rec: t, contrib: stageContribs(t)})
	}
	rep.Windows = len(wins)
	if len(wins) == 0 {
		rep.Verdict = "no decoded traces to analyze"
		return rep
	}

	// Tiling integrity: every decoded window's depth-1 leaves must sum
	// to its recorded end-to-end latency.
	for _, w := range wins {
		var sum int64
		//csecg:orderok sum reduction, independent of iteration order
		for _, d := range w.contrib {
			sum += d
		}
		gap := sum - w.rec.LatencyNs
		if gap < 0 {
			gap = -gap
		}
		div := float64(gap) / float64(w.rec.LatencyNs)
		if div > rep.WorstDivergence {
			rep.WorstDivergence = div
		}
		if div > maxDiv {
			rep.DivergentCount++
			if len(rep.Divergent) < 8 {
				rep.Divergent = append(rep.Divergent, DivergentTrace{
					TraceID: w.rec.TraceID, Session: w.rec.Session, Seq: w.rec.Seq,
					LatencyNs: w.rec.LatencyNs, LeafSumNs: sum, Divergence: div,
				})
			}
		}
	}
	rep.Clean = rep.DivergentCount == 0

	// Per-stage contribution distributions and overall shares.
	perStage := map[string][]int64{}
	var totalLatency int64
	for _, w := range wins {
		totalLatency += w.rec.LatencyNs
		//csecg:orderok each pair lands under its own key; window order fixes slice order
		for stage, d := range w.contrib {
			perStage[stage] = append(perStage[stage], d)
		}
	}
	//csecg:orderok rep.Stages is fully sorted (total, then name) below
	for stage, vals := range perStage {
		sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
		var total int64
		for _, v := range vals {
			total += v
		}
		st := StageStat{
			Stage: stage, Count: len(vals),
			P50Ns: percentile(vals, 50), P95Ns: percentile(vals, 95), P99Ns: percentile(vals, 99),
			TotalNs: total,
		}
		if totalLatency > 0 {
			st.Share = float64(total) / float64(totalLatency)
		}
		rep.Stages = append(rep.Stages, st)
	}
	sort.Slice(rep.Stages, func(i, j int) bool {
		if rep.Stages[i].TotalNs != rep.Stages[j].TotalNs {
			return rep.Stages[i].TotalNs > rep.Stages[j].TotalNs
		}
		return rep.Stages[i].Stage < rep.Stages[j].Stage
	})

	// Per-rung dominant-stage ranking.
	byRung := map[int][]window{}
	for _, w := range wins {
		byRung[w.rec.Rung] = append(byRung[w.rec.Rung], w)
	}
	var rungs []int
	//csecg:orderok keys are sorted immediately below
	for r := range byRung {
		rungs = append(rungs, r)
	}
	sort.Ints(rungs)
	for _, r := range rungs {
		group := byRung[r]
		stageTotal := map[string]int64{}
		var lats []int64
		var groupLatency int64
		for _, w := range group {
			lats = append(lats, w.rec.LatencyNs)
			groupLatency += w.rec.LatencyNs
			//csecg:orderok sum reduction, independent of iteration order
			for stage, d := range w.contrib {
				stageTotal[stage] += d
			}
		}
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		dom, domNs := rankDominant(stageTotal)
		rs := RungStat{
			Rung: r, RungName: coordinator.Rung(r).String(), Windows: len(group),
			Dominant: dom, P99LatencyNs: percentile(lats, 99),
		}
		if groupLatency > 0 {
			rs.DominantShare = float64(domNs) / float64(groupLatency)
		}
		rep.Rungs = append(rep.Rungs, rs)
	}

	// The p99 tail: traces at or above the end-to-end p99 latency.
	var allLats []int64
	for _, w := range wins {
		allLats = append(allLats, w.rec.LatencyNs)
	}
	sort.Slice(allLats, func(i, j int) bool { return allLats[i] < allLats[j] })
	rep.P99LatencyNs = percentile(allLats, 99)
	tailStage := map[string]int64{}
	rungCount := map[int]int{}
	var tailLatency int64
	for _, w := range wins {
		if w.rec.LatencyNs < rep.P99LatencyNs {
			continue
		}
		tailLatency += w.rec.LatencyNs
		rungCount[w.rec.Rung]++
		//csecg:orderok sum reduction, independent of iteration order
		for stage, d := range w.contrib {
			tailStage[stage] += d
		}
	}
	domStage, domNs := rankDominant(tailStage)
	rep.DominantStage = domStage
	if tailLatency > 0 {
		rep.DominantShare = float64(domNs) / float64(tailLatency)
	}
	best := -1
	//csecg:orderok max reduction with a lowest-rung tie-break; order-independent
	for r, c := range rungCount {
		if c > best || (c == best && r < rep.DominantRung) {
			best, rep.DominantRung = c, r
		}
	}

	rep.Verdict = fmt.Sprintf("p99 dominated by %s under rung %d (%s, %.0f%% of tail latency)",
		describeStage(rep.DominantStage), rep.DominantRung,
		coordinator.Rung(rep.DominantRung).String(), 100*rep.DominantShare)
	if !rep.Clean {
		rep.Verdict += fmt.Sprintf("; ATTRIBUTION SUSPECT: %d/%d traces fail tiling (worst %.1f%%)",
			rep.DivergentCount, rep.Windows, 100*rep.WorstDivergence)
	}
	return rep
}

// rankDominant returns the stage with the largest total (ties broken
// lexicographically for determinism).
func rankDominant(totals map[string]int64) (string, int64) {
	var stages []string
	//csecg:orderok keys are sorted immediately below
	for s := range totals {
		stages = append(stages, s)
	}
	sort.Strings(stages)
	var dom string
	var domNs int64 = -1
	for _, s := range stages {
		if totals[s] > domNs {
			dom, domNs = s, totals[s]
		}
	}
	if domNs < 0 {
		return "", 0
	}
	return dom, domNs
}

// AnalyzeBundle runs the decode-side analysis over a diagnostics
// bundle. Bundles record per-window solver summaries (ModeledNs, rung,
// trace ID) but no span trees, so the report covers only the solver
// stages and skips the tiling check.
func AnalyzeBundle(b *blackbox.Bundle) *Report {
	rep := &Report{Source: "bundle", Clean: true}
	rep.Windows = len(b.Windows)
	if rep.Windows == 0 {
		rep.Verdict = "bundle records no decoded windows"
		return rep
	}

	perStage := map[string][]int64{}
	byRung := map[int][]int64{}
	rungCount := map[int]int{}
	var total int64
	for i := range b.Windows {
		w := &b.Windows[i]
		stage := coordinator.Rung(w.Rung).SolverStage()
		perStage[stage] = append(perStage[stage], w.ModeledNs)
		byRung[w.Rung] = append(byRung[w.Rung], w.ModeledNs)
		rungCount[w.Rung]++
		total += w.ModeledNs
	}
	//csecg:orderok rep.Stages is fully sorted (total, then name) below
	for stage, vals := range perStage {
		sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
		var sum int64
		for _, v := range vals {
			sum += v
		}
		st := StageStat{
			Stage: stage, Count: len(vals),
			P50Ns: percentile(vals, 50), P95Ns: percentile(vals, 95), P99Ns: percentile(vals, 99),
			TotalNs: sum,
		}
		if total > 0 {
			st.Share = float64(sum) / float64(total)
		}
		rep.Stages = append(rep.Stages, st)
	}
	sort.Slice(rep.Stages, func(i, j int) bool {
		if rep.Stages[i].TotalNs != rep.Stages[j].TotalNs {
			return rep.Stages[i].TotalNs > rep.Stages[j].TotalNs
		}
		return rep.Stages[i].Stage < rep.Stages[j].Stage
	})

	var rungs []int
	//csecg:orderok keys are sorted immediately below
	for r := range byRung {
		rungs = append(rungs, r)
	}
	sort.Ints(rungs)
	for _, r := range rungs {
		vals := byRung[r]
		sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
		rep.Rungs = append(rep.Rungs, RungStat{
			Rung: r, RungName: coordinator.Rung(r).String(), Windows: len(vals),
			Dominant: coordinator.Rung(r).SolverStage(), DominantShare: 1,
			P99LatencyNs: percentile(vals, 99),
		})
	}

	var allNs []int64
	//csecg:orderok values are sorted immediately below
	for _, vals := range byRung {
		allNs = append(allNs, vals...)
	}
	sort.Slice(allNs, func(i, j int) bool { return allNs[i] < allNs[j] })
	rep.P99LatencyNs = percentile(allNs, 99)
	best := -1
	//csecg:orderok max reduction with a lowest-rung tie-break; order-independent
	for r, c := range rungCount {
		if c > best || (c == best && r < rep.DominantRung) {
			best, rep.DominantRung = c, r
		}
	}
	rep.DominantStage = coordinator.Rung(rep.DominantRung).SolverStage()
	rep.DominantShare = 1
	rep.Verdict = fmt.Sprintf("decode-side only (bundle carries no span trees): p99 solver time %.1f ms, mostly %s under rung %d (%s)",
		float64(rep.P99LatencyNs)/1e6, describeStage(rep.DominantStage),
		rep.DominantRung, coordinator.Rung(rep.DominantRung).String())
	return rep
}

// Render formats the report as a human-readable text block.
func (r *Report) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "critical-path latency attribution (%s, %d windows", r.Source, r.Windows)
	if r.Shed > 0 {
		fmt.Fprintf(&b, ", %d shed", r.Shed)
	}
	b.WriteString(")\n\n")
	if r.Windows == 0 {
		b.WriteString(r.Verdict + "\n")
		return b.String()
	}
	fmt.Fprintf(&b, "%-16s %8s %12s %12s %12s %7s\n", "stage", "windows", "p50 (ms)", "p95 (ms)", "p99 (ms)", "share")
	for _, s := range r.Stages {
		fmt.Fprintf(&b, "%-16s %8d %12.3f %12.3f %12.3f %6.1f%%\n",
			s.Stage, s.Count, float64(s.P50Ns)/1e6, float64(s.P95Ns)/1e6, float64(s.P99Ns)/1e6, 100*s.Share)
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, "%-6s %-14s %8s %-16s %7s %12s\n", "rung", "name", "windows", "dominant", "share", "p99 (ms)")
	for _, rs := range r.Rungs {
		fmt.Fprintf(&b, "%-6d %-14s %8d %-16s %6.1f%% %12.3f\n",
			rs.Rung, rs.RungName, rs.Windows, rs.Dominant, 100*rs.DominantShare, float64(rs.P99LatencyNs)/1e6)
	}
	b.WriteString("\n")
	if r.DivergentCount > 0 {
		fmt.Fprintf(&b, "tiling check: %d/%d traces diverge past tolerance (worst %.2f%%)\n",
			r.DivergentCount, r.Windows, 100*r.WorstDivergence)
		for _, d := range r.Divergent {
			fmt.Fprintf(&b, "  trace %s seq %d: leaves sum %.3f ms vs latency %.3f ms (%.2f%%)\n",
				d.TraceID, d.Seq, float64(d.LeafSumNs)/1e6, float64(d.LatencyNs)/1e6, 100*d.Divergence)
		}
	} else if r.Source == "traces" {
		fmt.Fprintf(&b, "tiling check: all %d traces sum to their recorded latency (worst gap %.3f%%)\n",
			r.Windows, 100*r.WorstDivergence)
	}
	b.WriteString("\nverdict: " + r.Verdict + "\n")
	return b.String()
}
