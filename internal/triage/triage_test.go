package triage

import (
	"strings"
	"testing"

	"csecg/internal/chaos"
	"csecg/internal/coordinator"
	"csecg/internal/telemetry"
)

// trace builds a synthetic record whose depth-1 leaves are given as
// stage/duration pairs; latency is their sum unless overridden.
func trace(seq uint32, rung int, leaves ...any) telemetry.TraceRecord {
	rec := telemetry.TraceRecord{
		TraceID: telemetry.TraceIDString(telemetry.DeriveTraceID(1, seq)),
		Seq:     seq,
		Rung:    rung,
	}
	rec.Spans = append(rec.Spans, telemetry.SpanRecord{Stage: telemetry.StageWindow, Parent: -1, Rung: -1})
	var start int64
	for i := 0; i < len(leaves); i += 2 {
		stage := leaves[i].(string)
		dur := int64(leaves[i+1].(int))
		rec.Spans = append(rec.Spans, telemetry.SpanRecord{
			Stage: stage, Parent: 0, StartNs: start, DurNs: dur, Rung: -1,
		})
		start += dur
		rec.LatencyNs += dur
	}
	rec.Spans[0].DurNs = rec.LatencyNs
	return rec
}

func TestAnalyzeVerdictNamesDominantSolverStage(t *testing.T) {
	// Nine fast windows on rung 0, one slow window on rung 1 whose
	// latency is dominated by the halved-budget FISTA stage — the tail.
	var traces []telemetry.TraceRecord
	for seq := uint32(0); seq < 9; seq++ {
		traces = append(traces, trace(seq, 0,
			telemetry.StageLinkTransit, 20_000_000,
			telemetry.SolverStageFISTA1, 80_000_000,
			telemetry.StageReconstruct, 1_000_000))
	}
	traces = append(traces, trace(9, 1,
		telemetry.StageLinkTransit, 30_000_000,
		telemetry.SolverStageFISTA2, 900_000_000,
		telemetry.StageReconstruct, 1_000_000))

	rep := Analyze(traces, Options{})
	if !rep.Clean {
		t.Fatalf("synthetic traces flagged divergent: %s", rep.Verdict)
	}
	if rep.Windows != 10 {
		t.Errorf("analyzed %d windows, want 10", rep.Windows)
	}
	if rep.DominantStage != telemetry.SolverStageFISTA2 {
		t.Errorf("dominant stage %q, want %q", rep.DominantStage, telemetry.SolverStageFISTA2)
	}
	if rep.DominantRung != 1 {
		t.Errorf("dominant rung %d, want 1", rep.DominantRung)
	}
	if !strings.Contains(rep.Verdict, "p99 dominated by solver stage fista/2 under rung 1") {
		t.Errorf("verdict %q does not name the solver stage and rung", rep.Verdict)
	}
	// The per-rung table must rank each rung's own dominant stage.
	if len(rep.Rungs) != 2 {
		t.Fatalf("got %d rung rows, want 2", len(rep.Rungs))
	}
	if rep.Rungs[0].Dominant != telemetry.SolverStageFISTA1 || rep.Rungs[1].Dominant != telemetry.SolverStageFISTA2 {
		t.Errorf("rung dominants %q/%q, want fista/1 and fista/2",
			rep.Rungs[0].Dominant, rep.Rungs[1].Dominant)
	}
}

func TestAnalyzeFlagsTilingDivergence(t *testing.T) {
	good := trace(0, 0, telemetry.SolverStageFISTA1, 100_000_000)
	bad := trace(1, 0, telemetry.SolverStageFISTA1, 100_000_000)
	bad.LatencyNs = 150_000_000 // 50% of the latency unaccounted for
	bad.Spans[0].DurNs = bad.LatencyNs

	rep := Analyze([]telemetry.TraceRecord{good, bad}, Options{})
	if rep.Clean {
		t.Fatal("report clean despite a 50% tiling gap")
	}
	if rep.DivergentCount != 1 || len(rep.Divergent) != 1 {
		t.Fatalf("divergent count %d (listed %d), want 1", rep.DivergentCount, len(rep.Divergent))
	}
	if rep.Divergent[0].Seq != 1 {
		t.Errorf("flagged seq %d, want 1", rep.Divergent[0].Seq)
	}
	if rep.WorstDivergence < 0.3 {
		t.Errorf("worst divergence %.3f, want ≈ 1/3", rep.WorstDivergence)
	}
	if !strings.Contains(rep.Verdict, "ATTRIBUTION SUSPECT") {
		t.Errorf("verdict %q does not flag suspect attribution", rep.Verdict)
	}
	// A looser tolerance accepts the same traces.
	if rep := Analyze([]telemetry.TraceRecord{good, bad}, Options{MaxDivergence: 0.5}); !rep.Clean {
		t.Error("divergence below the configured tolerance still flagged")
	}
}

func TestAnalyzeExcludesShed(t *testing.T) {
	decoded := trace(0, 0, telemetry.SolverStageFISTA1, 100_000_000)
	shed := trace(1, 0, telemetry.StageTX, 20_000_000)
	shed.LatencyNs = 0
	shed.Spans[0].DurNs = 0
	shed.Flags = []string{"shed"}

	rep := Analyze([]telemetry.TraceRecord{decoded, shed}, Options{})
	if rep.Windows != 1 || rep.Shed != 1 {
		t.Errorf("windows %d shed %d, want 1 and 1", rep.Windows, rep.Shed)
	}
	if !rep.Clean {
		t.Error("shed trace must not trip the tiling check")
	}
}

// TestSolverStageNamesPinned ties the coordinator's ladder to the
// telemetry stage vocabulary: every rung's solver-stage name must be a
// member of the closed histogram stage set, or its latency contribution
// would silently vanish from csecg_window_stage_seconds.
func TestSolverStageNamesPinned(t *testing.T) {
	known := map[string]bool{}
	for _, s := range telemetry.SpanStages() {
		known[s] = true
	}
	for r := coordinator.RungNominal; r <= coordinator.RungBestEffort; r++ {
		if name := r.SolverStage(); !known[name] {
			t.Errorf("rung %d solver stage %q missing from telemetry.SpanStages()", r, name)
		}
	}
}

// TestSlowdownAttributionNamesSolver is the chaos-matrix truthfulness
// assertion: under an injected 2× solver slowdown with paced arrival,
// the report must attribute the tail to a solver stage — not to
// queue-wait, which a lazier span model would blame because slow solves
// and queue pressure are correlated.
func TestSlowdownAttributionNamesSolver(t *testing.T) {
	spans := telemetry.NewCausalTracer(telemetry.CausalConfig{
		Label:           "chaos slowdown-paced",
		RetainAnomalous: 512,
		RetainAll:       true,
	})
	rep, err := chaos.Run(chaos.Scenario{
		Name:     "slowdown-paced",
		Slowdown: 2,
		Spans:    spans,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Decoded == 0 {
		t.Fatal("slowdown scenario decoded nothing")
	}

	report := Analyze(spans.Records(), Options{})
	if !report.Clean {
		t.Fatalf("attribution suspect under slowdown: %s", report.Verdict)
	}
	if !solverStages[report.DominantStage] {
		t.Errorf("p99 dominated by %q, want a solver stage (slowdown must not masquerade as %s)",
			report.DominantStage, telemetry.StageQueueWait)
	}
	if report.DominantStage == telemetry.StageQueueWait {
		t.Error("slowdown misattributed to queueing")
	}
	if !strings.Contains(report.Verdict, "solver stage") {
		t.Errorf("verdict %q does not name a solver stage", report.Verdict)
	}
}
