package dwtcomp

import (
	"testing"

	"csecg/internal/ecg"
	"csecg/internal/metrics"
)

func window(t testing.TB) []int16 {
	t.Helper()
	rec, err := ecg.RecordByID("100")
	if err != nil {
		t.Fatal(err)
	}
	adc, err := rec.Channel256(6, 0)
	if err != nil {
		t.Fatal(err)
	}
	win := make([]int16, 512)
	for i := range win {
		win[i] = adc[i+512] - ecg.ADCBaseline
	}
	return win
}

func TestNewEncoderValidation(t *testing.T) {
	cases := []struct{ n, order, levels, k int }{
		{500, 4, 5, 100}, // not a power of two
		{32, 4, 5, 10},   // too short
		{512, 4, 5, 0},   // bad K
		{512, 4, 5, 513}, // K > n
		{512, 4, 9, 100}, // too deep
		{512, 99, 5, 100},
	}
	for i, c := range cases {
		if _, err := NewEncoder(c.n, c.order, c.levels, c.k); err == nil {
			t.Errorf("case %d accepted: %+v", i, c)
		}
	}
	if _, err := NewEncoder(512, 4, 5, 128); err != nil {
		t.Fatal(err)
	}
}

func TestRoundTripQuality(t *testing.T) {
	enc, err := NewEncoder(512, 4, 5, 145) // ≈ CR 50 bit budget
	if err != nil {
		t.Fatal(err)
	}
	dec, err := NewDecoder(512, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	win := window(t)
	data, err := enc.Encode(win)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(data), (enc.PacketBits()+7)/8; got != want {
		t.Errorf("packet %d B, want %d", got, want)
	}
	back, err := dec.Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	orig := make([]float64, 512)
	reco := make([]float64, 512)
	for i := range win {
		orig[i] = float64(win[i])
		reco[i] = float64(back[i])
	}
	prdn, err := metrics.PRDN(orig, reco)
	if err != nil {
		t.Fatal(err)
	}
	// Transform coding at 145 coefficients on a clean window is strong:
	// expect diagnostic-quality reconstruction.
	if prdn > 6 {
		t.Errorf("DWT-thresholding PRDN %.2f, want < 6", prdn)
	}
}

func TestMoreCoefficientsImproveQuality(t *testing.T) {
	win := window(t)
	dec, _ := NewDecoder(512, 4, 5)
	prdnAt := func(k int) float64 {
		enc, err := NewEncoder(512, 4, 5, k)
		if err != nil {
			t.Fatal(err)
		}
		data, err := enc.Encode(win)
		if err != nil {
			t.Fatal(err)
		}
		back, err := dec.Decode(data)
		if err != nil {
			t.Fatal(err)
		}
		orig := make([]float64, 512)
		reco := make([]float64, 512)
		for i := range win {
			orig[i] = float64(win[i])
			reco[i] = float64(back[i])
		}
		p, err := metrics.PRDN(orig, reco)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	p32, p128, p400 := prdnAt(32), prdnAt(128), prdnAt(400)
	if !(p32 > p128 && p128 > p400) {
		t.Errorf("PRDN not improving with K: %v, %v, %v", p32, p128, p400)
	}
}

func TestEncodeValidatesLength(t *testing.T) {
	enc, _ := NewEncoder(512, 4, 5, 64)
	if _, err := enc.Encode(make([]int16, 7)); err == nil {
		t.Error("short window accepted")
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	dec, _ := NewDecoder(512, 4, 5)
	if _, err := dec.Decode(nil); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := dec.Decode([]byte{0xFF, 0xFF, 0x0F}); err == nil {
		t.Error("absurd coefficient count accepted")
	}
	// Truncated mid-coefficient.
	enc, _ := NewEncoder(512, 4, 5, 64)
	data, err := enc.Encode(window(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dec.Decode(data[:len(data)/2]); err == nil {
		t.Error("truncated packet accepted")
	}
}

func TestKForBudget(t *testing.T) {
	// CR 50 on 512×12-bit windows: 3072-bit budget.
	k := KForBudget(3072)
	if k < 140 || k > 150 {
		t.Errorf("KForBudget(3072) = %d, want ≈145", k)
	}
	if KForBudget(0) != 1 {
		t.Error("degenerate budget should clamp to 1")
	}
}

func TestEncoderCyclesScale(t *testing.T) {
	e4, _ := NewEncoder(512, 4, 5, 128)
	e8, _ := NewEncoder(512, 8, 5, 128)
	if e8.EncoderCycles() <= e4.EncoderCycles() {
		t.Error("longer filter not more expensive")
	}
	if e4.EncoderCycles() <= 0 {
		t.Error("non-positive cycle estimate")
	}
}

func BenchmarkEncode512(b *testing.B) {
	enc, _ := NewEncoder(512, 4, 5, 145)
	win := window(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := enc.Encode(win); err != nil {
			b.Fatal(err)
		}
	}
}
