// Package dwtcomp implements the classical transform-coding alternative
// the CS literature positions itself against: wavelet-thresholding ECG
// compression (DWT → keep the K largest coefficients → quantize → pack).
//
// This is the "nonlinear digital technique" of the paper's introduction:
// it achieves excellent rate-distortion but demands a full filter-bank
// transform and a magnitude selection on the encoder — exactly the
// "resource-intensive DSP operations" CS avoids. To make the comparison
// honest on the mote model, the encoder's DWT runs in 16-bit fixed
// point (Q15 filter taps, 32-bit accumulators, the arithmetic an
// FPU-less MSP430 would use), and the cycle model prices its multiplies
// through the hardware multiplier.
//
// The experiment in internal/experiments compares this baseline against
// the CS encoder at matched wire budgets: transform coding wins on
// rate-distortion, CS wins on encoder cost and memory — the trade the
// paper's introduction describes.
package dwtcomp

import (
	"fmt"

	"csecg/internal/huffman"
	"csecg/internal/wavelet"
)

// Encoder is the mote-side wavelet-thresholding compressor.
type Encoder struct {
	n, levels int
	// Q15 analysis filters.
	h, g []int16
	// keepK is the number of retained coefficients.
	keepK int
	// scratch
	coeffs []int32
	buf    []int32
}

// Fixed bit widths of the packed format.
const (
	posBits = 9  // coefficient index within N=512
	valBits = 12 // sign + 11-bit magnitude after shift
	hdrBits = 16 + 4
)

// NewEncoder builds a fixed-point encoder for length-n windows keeping
// keepK coefficients of a db`order`, `levels`-deep decomposition.
func NewEncoder(n, order, levels, keepK int) (*Encoder, error) {
	if n != 1<<uint(bitsLen(n)-1) || n < 64 {
		return nil, fmt.Errorf("dwtcomp: window length %d must be a power of two ≥ 64", n)
	}
	if n > 1<<posBits {
		return nil, fmt.Errorf("dwtcomp: window length %d exceeds the %d-bit position field", n, posBits)
	}
	if keepK <= 0 || keepK > n {
		return nil, fmt.Errorf("dwtcomp: keepK %d out of [1, %d]", keepK, n)
	}
	h64, err := wavelet.DaubechiesFilter(order)
	if err != nil {
		return nil, err
	}
	if n>>uint(levels) < len(h64) || levels < 1 {
		return nil, fmt.Errorf("dwtcomp: %d levels too deep for db%d at n=%d", levels, order, n)
	}
	g64 := wavelet.QMF(h64)
	e := &Encoder{
		n: n, levels: levels, keepK: keepK,
		h:      make([]int16, len(h64)),
		g:      make([]int16, len(g64)),
		coeffs: make([]int32, n),
		buf:    make([]int32, n),
	}
	for i := range h64 {
		e.h[i] = int16(h64[i]*32768 + signOf(h64[i])*0.5)
		e.g[i] = int16(g64[i]*32768 + signOf(g64[i])*0.5)
	}
	return e, nil
}

func signOf(v float64) float64 {
	if v < 0 {
		return -1
	}
	return 1
}

func bitsLen(v int) int {
	n := 0
	for v > 0 {
		v >>= 1
		n++
	}
	return n
}

// KeepK returns the retained-coefficient count.
func (e *Encoder) KeepK() int { return e.keepK }

// PacketBits returns the fixed packed size in bits.
func (e *Encoder) PacketBits() int { return hdrBits + e.keepK*(posBits+valBits) }

// Encode compresses one zero-centered window (ADC counts − baseline).
func (e *Encoder) Encode(window []int16) ([]byte, error) {
	if len(window) != e.n {
		return nil, fmt.Errorf("dwtcomp: window length %d, want %d", len(window), e.n)
	}
	// Fixed-point DWT: samples carried as int32 with 4 fractional bits
	// so the Q15 multiplies keep headroom (|x| ≤ 1024·16 = 16384;
	// orthonormal growth stays < 2^31 by a wide margin).
	for i, v := range window {
		e.coeffs[i] = int32(v) << 4
	}
	size := e.n
	for lev := 0; lev < e.levels; lev++ {
		e.analyzeOne(e.buf[:size], e.coeffs[:size])
		copy(e.coeffs[:size], e.buf[:size])
		size /= 2
	}
	// Top-K selection by magnitude.
	type kv struct {
		pos int
		val int32
	}
	kept := make([]kv, 0, e.keepK)
	minIdx := 0
	absv := func(v int32) int32 {
		if v < 0 {
			return -v
		}
		return v
	}
	for pos, val := range e.coeffs {
		if len(kept) < e.keepK {
			kept = append(kept, kv{pos, val})
			if absv(val) < absv(kept[minIdx].val) {
				minIdx = len(kept) - 1
			}
			continue
		}
		if absv(val) > absv(kept[minIdx].val) {
			kept[minIdx] = kv{pos, val}
			minIdx = 0
			for i := range kept {
				if absv(kept[i].val) < absv(kept[minIdx].val) {
					minIdx = i
				}
			}
		}
	}
	// Quantize: shift magnitudes so the largest fits 11 bits.
	var maxAbs int32
	for _, c := range kept {
		if a := absv(c.val); a > maxAbs {
			maxAbs = a
		}
	}
	shift := 0
	for maxAbs>>uint(shift) > 2047 {
		shift++
	}
	w := huffman.NewBitWriter()
	w.WriteBits(uint32(uint16(e.keepK)), 16)
	w.WriteBits(uint32(shift), 4)
	for _, c := range kept {
		w.WriteBits(uint32(c.pos), posBits)
		mag := absv(c.val) >> uint(shift)
		sign := uint32(0)
		if c.val < 0 {
			sign = 1
		}
		w.WriteBits(sign<<11|uint32(mag), valBits)
	}
	return w.Bytes(), nil
}

// analyzeOne performs one fixed-point analysis split: Q15 taps, 64-bit
// accumulate, round, shift back.
func (e *Encoder) analyzeOne(dst, x []int32) {
	n := len(x)
	half := n / 2
	for k := 0; k < half; k++ {
		var a, d int64
		base := 2 * k
		for i := 0; i < len(e.h); i++ {
			idx := base + i
			if idx >= n {
				idx -= n
			}
			v := int64(x[idx])
			a += v * int64(e.h[i])
			d += v * int64(e.g[i])
		}
		dst[k] = int32((a + 1<<14) >> 15)
		dst[half+k] = int32((d + 1<<14) >> 15)
	}
}

// Decoder reconstructs on the coordinator (which has floating point).
type Decoder struct {
	n, levels int
	w         *wavelet.Transform[float64]
}

// NewDecoder mirrors the encoder's basis.
func NewDecoder(n, order, levels int) (*Decoder, error) {
	w, err := wavelet.New[float64](order, n, levels)
	if err != nil {
		return nil, err
	}
	return &Decoder{n: n, levels: levels, w: w}, nil
}

// Decode unpacks and inverse-transforms one window, returning
// zero-centered samples.
func (d *Decoder) Decode(data []byte) ([]int16, error) {
	r := huffman.NewBitReader(data)
	kRaw, err := r.ReadBits(16)
	if err != nil {
		return nil, fmt.Errorf("dwtcomp: reading header: %w", err)
	}
	k := int(kRaw)
	if k <= 0 || k > d.n {
		return nil, fmt.Errorf("dwtcomp: coefficient count %d out of [1, %d]", k, d.n)
	}
	shift, err := r.ReadBits(4)
	if err != nil {
		return nil, fmt.Errorf("dwtcomp: reading shift: %w", err)
	}
	coeffs := make([]float64, d.n)
	for i := 0; i < k; i++ {
		pos, err := r.ReadBits(posBits)
		if err != nil {
			return nil, fmt.Errorf("dwtcomp: reading position %d: %w", i, err)
		}
		if int(pos) >= d.n {
			return nil, fmt.Errorf("dwtcomp: position %d out of range", pos)
		}
		val, err := r.ReadBits(valBits)
		if err != nil {
			return nil, fmt.Errorf("dwtcomp: reading value %d: %w", i, err)
		}
		mag := float64(val&0x7FF) * float64(int64(1)<<shift)
		if val>>11 == 1 {
			mag = -mag
		}
		// Undo the encoder's 4 fractional bits.
		coeffs[pos] = mag / 16
	}
	x := make([]float64, d.n)
	d.w.Inverse(x, coeffs)
	out := make([]int16, d.n)
	for i, v := range x {
		switch {
		case v > 32767:
			out[i] = 32767
		case v < -32768:
			out[i] = -32768
		default:
			if v >= 0 {
				out[i] = int16(v + 0.5)
			} else {
				out[i] = int16(v - 0.5)
			}
		}
	}
	return out, nil
}

// EncoderCycles models the MSP430 cost of one window: the filter-bank
// MACs through the hardware multiplier, the top-K scan, and the packing.
func (e *Encoder) EncoderCycles() int64 {
	const (
		macCycles  = 42 // 16×32 multiply-accumulate via MPYS + carries + loads
		scanCycles = 14 // magnitude compare + bookkeeping per coefficient
		packCycles = 30 // per kept coefficient bit packing
	)
	// Σ block sizes over levels = 2N − N/2^{levels−1}; filterLen MACs per
	// output sample pair.
	blockSum := int64(2*e.n - e.n>>uint(e.levels-1))
	macs := blockSum * int64(len(e.h))
	return macs*macCycles + int64(e.n)*scanCycles + int64(e.keepK)*packCycles
}

// KForBudget returns the keepK that fits a bit budget.
func KForBudget(bits int) int {
	k := (bits - hdrBits) / (posBits + valBits)
	if k < 1 {
		k = 1
	}
	return k
}
