// Package bench defines the machine-readable benchmark summary that
// csecg-bench emits with -json, and the regression comparison the CI
// gate runs against a committed baseline.
//
// Raw nanoseconds are useless across machines, so every benchmark is
// also reported normalized: its ns/op divided by the ns/op of a fixed
// floating-point calibration workload measured in the same process.
// The normalized number is a pure "how many calibration units does
// this cost" ratio that survives CPU differences, and it is what the
// regression gate compares.
package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Schema is the summary format version.
const Schema = 1

// DefaultTolerance is the allowed normalized-time growth before the
// regression gate fails (0.15 = 15 %).
const DefaultTolerance = 0.15

// Result is one benchmark's measurement.
type Result struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	// Normalized is NsPerOp divided by the summary's calibration
	// ns/op — the machine-independent cost the gate compares.
	Normalized float64 `json:"normalized"`
}

// Summary is the -json document.
type Summary struct {
	Schema int    `json:"schema"`
	GoOS   string `json:"goos"`
	GoArch string `json:"goarch"`
	// CalibrationNs is the measured ns/op of the fixed calibration
	// workload on this machine.
	CalibrationNs float64  `json:"calibration_ns_per_op"`
	Results       []Result `json:"benchmarks"`
}

// Normalize fills every result's Normalized field from CalibrationNs.
func (s *Summary) Normalize() error {
	if s.CalibrationNs <= 0 {
		return fmt.Errorf("bench: calibration ns/op %v not positive", s.CalibrationNs)
	}
	for i := range s.Results {
		s.Results[i].Normalized = s.Results[i].NsPerOp / s.CalibrationNs
	}
	return nil
}

// Write emits the summary as indented JSON.
func (s *Summary) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// Read parses a summary and validates its schema.
func Read(r io.Reader) (*Summary, error) {
	var s Summary
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("bench: parsing summary: %w", err)
	}
	if s.Schema != Schema {
		return nil, fmt.Errorf("bench: summary schema %d, want %d", s.Schema, Schema)
	}
	if s.CalibrationNs <= 0 {
		return nil, fmt.Errorf("bench: summary calibration ns/op %v not positive", s.CalibrationNs)
	}
	return &s, nil
}

// Delta is one benchmark's baseline-to-current comparison.
type Delta struct {
	Name string
	// Baseline and Current are the normalized costs; Ratio is
	// Current/Baseline (1.0 = unchanged, 2.0 = twice as slow).
	Baseline, Current, Ratio float64
	// Regressed marks deltas past the gate's tolerance.
	Regressed bool
}

// Compare evaluates current against baseline at the given tolerance
// (0 → DefaultTolerance). It returns one Delta per benchmark present
// in both summaries, sorted by name, and errs when the summaries share
// no benchmarks at all.
func Compare(baseline, current *Summary, tolerance float64) ([]Delta, error) {
	if tolerance == 0 {
		tolerance = DefaultTolerance
	}
	base := map[string]Result{}
	for _, r := range baseline.Results {
		base[r.Name] = r
	}
	var deltas []Delta
	for _, r := range current.Results {
		b, ok := base[r.Name]
		if !ok || b.Normalized <= 0 {
			continue
		}
		ratio := r.Normalized / b.Normalized
		deltas = append(deltas, Delta{
			Name:      r.Name,
			Baseline:  b.Normalized,
			Current:   r.Normalized,
			Ratio:     ratio,
			Regressed: ratio > 1+tolerance,
		})
	}
	if len(deltas) == 0 {
		return nil, fmt.Errorf("bench: baseline and current share no benchmarks")
	}
	sort.Slice(deltas, func(i, j int) bool { return deltas[i].Name < deltas[j].Name })
	return deltas, nil
}

// Regressions filters a comparison down to the failures.
func Regressions(deltas []Delta) []Delta {
	var out []Delta
	for _, d := range deltas {
		if d.Regressed {
			out = append(out, d)
		}
	}
	return out
}
