package bench

import (
	"bytes"
	"strings"
	"testing"
)

func summary(calib float64, pairs ...interface{}) *Summary {
	s := &Summary{Schema: Schema, GoOS: "linux", GoArch: "amd64", CalibrationNs: calib}
	for i := 0; i < len(pairs); i += 2 {
		s.Results = append(s.Results, Result{
			Name:    pairs[i].(string),
			NsPerOp: pairs[i+1].(float64),
		})
	}
	if err := s.Normalize(); err != nil {
		panic(err)
	}
	return s
}

// TestCompareRoundTrip pins the JSON round trip and the comparison on
// an unchanged workload.
func TestCompareRoundTrip(t *testing.T) {
	s := summary(100, "decode", 5000.0, "encode", 800.0)
	var buf bytes.Buffer
	if err := s.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	deltas, err := Compare(back, s, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(deltas) != 2 {
		t.Fatalf("got %d deltas, want 2", len(deltas))
	}
	for _, d := range deltas {
		if d.Ratio != 1 || d.Regressed {
			t.Errorf("unchanged workload flagged: %+v", d)
		}
	}
}

// TestCompareNormalizationCancelsMachineSpeed runs the same workload
// on a "machine" twice as fast across the board: raw times halve, the
// calibration halves with them, and the gate stays green.
func TestCompareNormalizationCancelsMachineSpeed(t *testing.T) {
	slow := summary(200, "decode", 10000.0, "encode", 1600.0)
	fast := summary(100, "decode", 5000.0, "encode", 800.0)
	deltas, err := Compare(slow, fast, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := Regressions(deltas); len(got) != 0 {
		t.Errorf("machine speed difference flagged as regression: %+v", got)
	}
}

// TestCompareCatchesInjectedSlowdown is the gate check: a 2× slowdown
// in one benchmark — with the calibration workload unchanged — must
// fail, and a within-tolerance wiggle must not.
func TestCompareCatchesInjectedSlowdown(t *testing.T) {
	baseline := summary(100, "decode", 5000.0, "encode", 800.0)
	slowed := summary(100, "decode", 10000.0, "encode", 820.0)
	deltas, err := Compare(baseline, slowed, 0)
	if err != nil {
		t.Fatal(err)
	}
	regs := Regressions(deltas)
	if len(regs) != 1 || regs[0].Name != "decode" {
		t.Fatalf("2x decode slowdown: regressions %+v, want exactly decode", regs)
	}
	if regs[0].Ratio < 1.9 || regs[0].Ratio > 2.1 {
		t.Errorf("ratio %.2f, want ~2.0", regs[0].Ratio)
	}
}

// TestCompareToleranceBoundary pins the 15 % default boundary.
func TestCompareToleranceBoundary(t *testing.T) {
	baseline := summary(100, "decode", 1000.0)
	within := summary(100, "decode", 1140.0)  // +14 %
	outside := summary(100, "decode", 1160.0) // +16 %
	if d, err := Compare(baseline, within, 0); err != nil || len(Regressions(d)) != 0 {
		t.Errorf("+14%% flagged (err %v, deltas %+v)", err, d)
	}
	if d, err := Compare(baseline, outside, 0); err != nil || len(Regressions(d)) != 1 {
		t.Errorf("+16%% passed (err %v, deltas %+v)", err, d)
	}
}

// TestReadRejects pins the validation errors.
func TestReadRejects(t *testing.T) {
	for _, bad := range []string{
		`{"schema":2,"calibration_ns_per_op":100}`,
		`{"schema":1,"calibration_ns_per_op":0}`,
		`not json`,
	} {
		if _, err := Read(strings.NewReader(bad)); err == nil {
			t.Errorf("Read accepted %q", bad)
		}
	}
	disjointA := summary(100, "a", 1.0)
	disjointB := summary(100, "b", 1.0)
	if _, err := Compare(disjointA, disjointB, 0); err == nil {
		t.Error("Compare accepted summaries with no shared benchmarks")
	}
}
