package qrs

import (
	"testing"

	"csecg/internal/ecg"
)

// classifyRecord runs the full detect-and-classify path on a record and
// scores it against ground truth.
func classifyRecord(t *testing.T, id string, seconds float64) ClassificationStats {
	t.Helper()
	rec, err := ecg.RecordByID(id)
	if err != nil {
		t.Fatal(err)
	}
	sig, err := rec.Synthesize(seconds)
	if err != nil {
		t.Fatal(err)
	}
	det, err := NewDetector(ecg.FsMITBIH)
	if err != nil {
		t.Fatal(err)
	}
	beats := det.DetectBeats(sig.MV[0])
	var refS []int
	var refV []bool
	for _, a := range sig.Ann {
		if a.Type == ecg.Dropped {
			continue
		}
		refS = append(refS, a.Sample)
		refV = append(refV, a.Type == ecg.PVC)
	}
	return ScoreClassification(beats, refS, refV, 18)
}

func TestPVCClassificationOnEctopicRecord(t *testing.T) {
	st := classifyRecord(t, "208", 120) // very frequent PVCs
	if st.TruePVC+st.MissedPVC < 10 {
		t.Fatalf("too few PVCs matched (%d)", st.TruePVC+st.MissedPVC)
	}
	if se := st.PVCSensitivity(); se < 0.85 {
		t.Errorf("PVC sensitivity %.3f (TP %d, missed %d)", se, st.TruePVC, st.MissedPVC)
	}
	if sp := st.NormalSpecificity(); sp < 0.90 {
		t.Errorf("normal specificity %.3f (FP %d of %d)", sp, st.FalsePVC, st.NormalTotal)
	}
}

func TestClassificationOnNormalRecord(t *testing.T) {
	st := classifyRecord(t, "122", 60) // clean normal rhythm
	if st.NormalTotal < 40 {
		t.Fatalf("too few normals matched (%d)", st.NormalTotal)
	}
	if sp := st.NormalSpecificity(); sp < 0.95 {
		t.Errorf("normal specificity %.3f on clean record", sp)
	}
}

func TestDetectBeatsWidthsSane(t *testing.T) {
	rec, err := ecg.RecordByID("100")
	if err != nil {
		t.Fatal(err)
	}
	sig, err := rec.Synthesize(30)
	if err != nil {
		t.Fatal(err)
	}
	det, _ := NewDetector(ecg.FsMITBIH)
	beats := det.DetectBeats(sig.MV[0])
	if len(beats) < 20 {
		t.Fatalf("only %d beats", len(beats))
	}
	for _, b := range beats {
		if b.WidthSec <= 0.01 || b.WidthSec > 0.35 {
			t.Fatalf("beat at %d has implausible width %.3f s", b.Sample, b.WidthSec)
		}
	}
}

func TestDetectBeatsEmpty(t *testing.T) {
	det, _ := NewDetector(256)
	if got := det.DetectBeats(make([]float64, 100)); got != nil {
		t.Error("short input produced beats")
	}
}

func TestSetScoreThreshold(t *testing.T) {
	det, _ := NewDetector(256)
	if det.scoreThreshold() != VentricularScore {
		t.Error("default score threshold wrong")
	}
	det.SetScoreThreshold(1.5)
	if det.scoreThreshold() != 1.5 {
		t.Error("override ignored")
	}
	det.SetScoreThreshold(0)
	if det.scoreThreshold() != VentricularScore {
		t.Error("reset ignored")
	}
}

func TestMedian(t *testing.T) {
	if median(nil) != 0 {
		t.Error("empty median not 0")
	}
	if m := median([]float64{3, 1, 2}); m != 2 {
		t.Errorf("median = %v", m)
	}
	if m := median([]float64{4, 1, 3, 2}); m != 3 {
		t.Errorf("even median = %v, want upper-middle 3", m)
	}
}

func TestClassificationStableAcrossHeartRates(t *testing.T) {
	// Bradycardic record 117 (HR 51): its wider-in-seconds normal beats
	// must not be called ventricular (the ratio classifier's point).
	st := classifyRecord(t, "117", 60)
	if st.NormalTotal < 30 {
		t.Fatalf("too few normals (%d)", st.NormalTotal)
	}
	if sp := st.NormalSpecificity(); sp < 0.93 {
		t.Errorf("bradycardia specificity %.3f", sp)
	}
}

func TestScoreClassificationCases(t *testing.T) {
	beats := []Beat{
		{Sample: 100, Ventricular: false},
		{Sample: 200, Ventricular: true},
		{Sample: 300, Ventricular: false},
	}
	refS := []int{100, 200, 300, 400}
	refV := []bool{false, true, false, true}
	st := ScoreClassification(beats, refS, refV, 5)
	if st.TruePVC != 1 || st.MissedPVC != 1 || st.NormalCorrect != 2 || st.FalsePVC != 0 {
		t.Errorf("confusion: %+v", st)
	}
	if st.PVCSensitivity() != 0.5 {
		t.Errorf("PVC Se = %v", st.PVCSensitivity())
	}
	if st.NormalSpecificity() != 1 {
		t.Errorf("normal Sp = %v", st.NormalSpecificity())
	}
	// Degenerate inputs.
	empty := ScoreClassification(nil, nil, nil, 5)
	if empty.PVCSensitivity() != 1 || empty.NormalSpecificity() != 1 {
		t.Error("degenerate stats not neutral")
	}
}

func BenchmarkDetectBeats60s(b *testing.B) {
	rec, _ := ecg.RecordByID("208")
	sig, _ := rec.Synthesize(60)
	det, _ := NewDetector(ecg.FsMITBIH)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		det.DetectBeats(sig.MV[0])
	}
}
