package qrs

// Beat augments a detection with the morphology measurements used for
// rhythm interpretation: the QRS width (ventricular ectopics conduct
// cell-to-cell instead of through the His-Purkinje system, widening the
// complex ~2-3×) and the classifier's verdict.
type Beat struct {
	// Sample index of the R peak.
	Sample int
	// WidthSec is the measured QRS duration in seconds.
	WidthSec float64
	// PeakToPeak is the QRS amplitude (max − min within ±40 ms),
	// baseline-invariant.
	PeakToPeak float64
	// Score is the record-relative wideness×amplitude product the
	// classifier thresholds: conducted beats cluster near 1.
	Score float64
	// Ventricular is true when Score exceeds the classification
	// threshold (a PVC-like beat).
	Ventricular bool
}

// VentricularScore is the default classification boundary on the
// combined score (width/median-width) × (amplitude/median-amplitude).
// Conducted beats cluster in [0.8, 1.15] across heart rates and noise
// levels; PVC-like complexes — wider *and* taller — score ≥ 1.35. The
// record-relative form self-calibrates across morphology scales, which
// an absolute millisecond threshold does not.
const VentricularScore = 1.25

// DetectBeats runs Detect and measures each detection's QRS width on
// the derivative envelope of the raw signal: the contiguous region
// around the peak where |dx/dt| (lightly smoothed) stays above 25% of
// its local peak. The derivative suppresses the slow P and T waves
// while preserving the QRS span, and — unlike the detector's narrow
// 5-15 Hz bandpass — does not ring the width measurement out.
func (d *Detector) DetectBeats(x []float64) []Beat {
	detections := d.Detect(x)
	if len(detections) == 0 {
		return nil
	}
	env := make([]float64, len(x))
	for i := 1; i < len(x); i++ {
		v := (x[i] - x[i-1]) * d.fs
		if v < 0 {
			v = -v
		}
		env[i] = v
	}
	// Light smoothing bridges the zero crossings between the Q, R and S
	// deflections.
	env = movingAverage(env, int(0.020*d.fs+0.5))
	beats := make([]Beat, len(detections))
	maxHalf := int(0.160 * d.fs) // beyond ±160 ms it's not QRS anymore
	for i, p := range detections {
		peak := env[p]
		// Re-center on the local envelope max (the detection sits on the
		// filtered-signal extremum, which the smoothing may shift).
		for j := p - maxHalf/4; j <= p+maxHalf/4; j++ {
			if j >= 0 && j < len(env) && env[j] > peak {
				peak = env[j]
			}
		}
		thresh := 0.25 * peak
		lo := p
		for lo > 0 && p-lo < maxHalf && env[lo-1] > thresh {
			lo--
		}
		hi := p
		for hi < len(env)-1 && hi-p < maxHalf && env[hi+1] > thresh {
			hi++
		}
		width := float64(hi-lo+1) / d.fs
		// Peak-to-peak amplitude on the raw signal (baseline drops out).
		ampHalf := int(0.040 * d.fs)
		alo, ahi := p-ampHalf, p+ampHalf
		if alo < 0 {
			alo = 0
		}
		if ahi >= len(x) {
			ahi = len(x) - 1
		}
		minV, maxV := x[alo], x[alo]
		for j := alo + 1; j <= ahi; j++ {
			if x[j] < minV {
				minV = x[j]
			}
			if x[j] > maxV {
				maxV = x[j]
			}
		}
		beats[i] = Beat{Sample: p, WidthSec: width, PeakToPeak: maxV - minV}
	}
	// Score each beat against the record medians.
	widths := make([]float64, len(beats))
	amps := make([]float64, len(beats))
	for i, b := range beats {
		widths[i] = b.WidthSec
		amps[i] = b.PeakToPeak
	}
	medW := median(widths)
	medA := median(amps)
	for i := range beats {
		if medW > 0 && medA > 0 {
			beats[i].Score = (beats[i].WidthSec / medW) * (beats[i].PeakToPeak / medA)
		}
		beats[i].Ventricular = beats[i].Score > d.scoreThreshold()
	}
	return beats
}

// median returns the middle element, destroying the slice order.
func median(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	// Insertion sort: beat counts per record segment stay small.
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
	return v[len(v)/2]
}

// SetScoreThreshold overrides the ventricular classification score
// boundary. Zero restores VentricularScore.
func (d *Detector) SetScoreThreshold(score float64) { d.widthThresh = score }

func (d *Detector) scoreThreshold() float64 {
	if d.widthThresh > 0 {
		return d.widthThresh
	}
	return VentricularScore
}

// ClassificationStats scores beat classification against labeled
// references.
type ClassificationStats struct {
	// TruePVC/FalsePVC/MissedPVC count wide-complex classification
	// against the reference labels; NormalCorrect counts narrow beats
	// classified narrow.
	TruePVC, FalsePVC, MissedPVC, NormalCorrect, NormalTotal int
}

// PVCSensitivity returns the fraction of reference PVCs classified
// ventricular (1 when no PVCs exist).
func (c ClassificationStats) PVCSensitivity() float64 {
	den := c.TruePVC + c.MissedPVC
	if den == 0 {
		return 1
	}
	return float64(c.TruePVC) / float64(den)
}

// NormalSpecificity returns the fraction of reference normal beats
// classified narrow (1 when none exist).
func (c ClassificationStats) NormalSpecificity() float64 {
	if c.NormalTotal == 0 {
		return 1
	}
	return float64(c.NormalCorrect) / float64(c.NormalTotal)
}

// ScoreClassification matches classified beats to labeled references
// (ascending sample indices; ventricular flags per reference) within tol
// samples and tallies the confusion counts. Unmatched detections are
// ignored here — use Match for detection-level statistics.
func ScoreClassification(beats []Beat, refSamples []int, refVentricular []bool, tol int) ClassificationStats {
	var st ClassificationStats
	bi := 0
	for ri, ref := range refSamples {
		for bi < len(beats) && beats[bi].Sample < ref-tol {
			bi++
		}
		if bi >= len(beats) || beats[bi].Sample > ref+tol {
			if refVentricular[ri] {
				st.MissedPVC++
			}
			continue
		}
		b := beats[bi]
		bi++
		switch {
		case refVentricular[ri] && b.Ventricular:
			st.TruePVC++
		case refVentricular[ri] && !b.Ventricular:
			st.MissedPVC++
		case !refVentricular[ri] && b.Ventricular:
			st.FalsePVC++
			st.NormalTotal++
		default:
			st.NormalCorrect++
			st.NormalTotal++
		}
	}
	return st
}
