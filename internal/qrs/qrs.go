// Package qrs implements a Pan-Tompkins-style QRS detector and the
// beat-matching statistics used to validate reconstruction quality
// clinically rather than numerically.
//
// PRD measures waveform fidelity; what a tele-cardiology system actually
// needs is that the *diagnostic content* survives compression. This
// package detects R peaks on original and reconstructed signals and
// scores them against the generator's ground-truth annotations
// (sensitivity and positive predictive value with the standard ±50 ms
// matching window), giving the experiments a clinical axis for the CR
// sweep.
package qrs

import (
	"fmt"
	"math"

	"csecg/internal/dsp"
)

// Detector is a Pan-Tompkins-style QRS detector for a fixed sample rate.
// The zero value is unusable; build with NewDetector.
type Detector struct {
	fs float64
	// Bandpass FIR (5-15 Hz passband) isolating QRS energy.
	bandpass []float64
	// Integration window length (150 ms).
	integLen int
	// Refractory period (200 ms) and searchback window (1.66 × mean RR).
	refractory int
	// widthThresh overrides the beat classifier's ventricular width
	// ratio (0 selects VentricularWidthRatio).
	widthThresh float64
}

// NewDetector builds a detector for sample rate fs (Hz). Rates below
// 100 Hz cannot resolve the QRS complex and are rejected.
func NewDetector(fs float64) (*Detector, error) {
	if fs < 100 {
		return nil, fmt.Errorf("qrs: sample rate %.0f Hz too low for QRS detection", fs)
	}
	// Linear-phase bandpass as a difference of two low-pass designs:
	// lp(15 Hz) − lp(5 Hz).
	taps := int(fs/4)*2 + 1 // ~0.5 s of taps, odd for symmetry
	lpHi := dsp.FIRLowpass(taps, 15/fs, dsp.Hamming)
	lpLo := dsp.FIRLowpass(taps, 5/fs, dsp.Hamming)
	bp := make([]float64, taps)
	for i := range bp {
		bp[i] = lpHi[i] - lpLo[i]
	}
	return &Detector{
		fs:         fs,
		bandpass:   bp,
		integLen:   int(0.150*fs + 0.5),
		refractory: int(0.200*fs + 0.5),
	}, nil
}

// Detect returns the sample indices of detected R peaks in x, in
// ascending order.
func (d *Detector) Detect(x []float64) []int {
	if len(x) < d.integLen*2 {
		return nil
	}
	// Stage 1: bandpass.
	filtered := dsp.FilterSame(x, d.bandpass)
	// Stage 2: five-point derivative.
	deriv := make([]float64, len(filtered))
	for n := 4; n < len(filtered); n++ {
		deriv[n] = (2*filtered[n] + filtered[n-1] - filtered[n-3] - 2*filtered[n-4]) / 8
	}
	// Stage 3: squaring.
	for i, v := range deriv {
		deriv[i] = v * v
	}
	// Stage 4: moving-window integration.
	integ := movingAverage(deriv, d.integLen)
	// Stage 5: adaptive dual-threshold peak picking with refractory
	// period and searchback.
	dets := d.pickPeaks(integ, filtered)
	// Suppress the filter's start-up/tail transient region, where the
	// bandpass output is dominated by edge effects.
	edge := len(d.bandpass) / 2
	kept := dets[:0]
	for _, p := range dets {
		if p >= edge && p < len(x)-edge {
			kept = append(kept, p)
		}
	}
	return kept
}

// movingAverage computes the centered moving mean over win samples.
func movingAverage(x []float64, win int) []float64 {
	out := make([]float64, len(x))
	var acc float64
	for i, v := range x {
		acc += v
		if i >= win {
			acc -= x[i-win]
		}
		out[i] = acc / float64(win)
	}
	return out
}

// pickPeaks runs the adaptive thresholding of Pan-Tompkins: signal and
// noise peak estimates (SPK/NPK) track detected peaks, the detection
// threshold sits between them, missed-beat searchback applies half the
// threshold when no beat arrives within 1.66 × the running RR mean.
func (d *Detector) pickPeaks(integ, filtered []float64) []int {
	peaks := localMaxima(integ, d.integLen/2)
	if len(peaks) == 0 {
		return nil
	}
	// Initialize estimates from the first two seconds.
	init := int(2 * d.fs)
	if init > len(integ) {
		init = len(integ)
	}
	var maxInit, meanInit float64
	for _, v := range integ[:init] {
		meanInit += v
		if v > maxInit {
			maxInit = v
		}
	}
	meanInit /= float64(init)
	spk := maxInit * 0.6
	npk := meanInit * 0.5
	threshold := npk + 0.25*(spk-npk)

	var detections []int
	var rrSum float64
	var rrCount int
	lastDet := -d.refractory
	for _, p := range peaks {
		v := integ[p]
		if p-lastDet < d.refractory {
			continue
		}
		if v > threshold {
			det := refineOnFiltered(filtered, p, d.integLen)
			if len(detections) > 0 {
				rrSum += float64(det - lastDet)
				rrCount++
			}
			detections = append(detections, det)
			lastDet = det
			spk = 0.125*v + 0.875*spk
		} else {
			npk = 0.125*v + 0.875*npk
			// Searchback: if a long gap elapsed, accept the strongest
			// sub-threshold peak over half the threshold.
			if rrCount >= 2 {
				meanRR := rrSum / float64(rrCount)
				if float64(p-lastDet) > 1.66*meanRR && v > threshold/2 {
					det := refineOnFiltered(filtered, p, d.integLen)
					rrSum += float64(det - lastDet)
					rrCount++
					detections = append(detections, det)
					lastDet = det
					spk = 0.25*v + 0.75*spk
				}
			}
		}
		threshold = npk + 0.25*(spk-npk)
	}
	return detections
}

// localMaxima returns indices that dominate a ±halfWin neighbourhood.
func localMaxima(x []float64, halfWin int) []int {
	var out []int
	for i := halfWin; i < len(x)-halfWin; i++ {
		v := x[i]
		if v == 0 {
			continue
		}
		isMax := true
		for j := i - halfWin; j <= i+halfWin && isMax; j++ {
			if x[j] > v {
				isMax = false
			}
		}
		if isMax {
			out = append(out, i)
			i += halfWin // skip the dominated span
		}
	}
	return out
}

// refineOnFiltered moves an integration-peak index onto the nearest
// absolute maximum of the bandpassed signal, compensating the
// integrator's group delay.
func refineOnFiltered(filtered []float64, p, halfWin int) int {
	lo, hi := p-halfWin, p+halfWin/2
	if lo < 0 {
		lo = 0
	}
	if hi > len(filtered) {
		hi = len(filtered)
	}
	best, bestV := p, 0.0
	for i := lo; i < hi; i++ {
		if v := math.Abs(filtered[i]); v > bestV {
			bestV, best = v, i
		}
	}
	return best
}

// MatchStats scores detections against reference beat locations.
type MatchStats struct {
	// TruePositives, FalsePositives and FalseNegatives under the
	// matching tolerance.
	TruePositives, FalsePositives, FalseNegatives int
}

// Sensitivity returns TP/(TP+FN), or 1 when no reference beats exist.
func (m MatchStats) Sensitivity() float64 {
	den := m.TruePositives + m.FalseNegatives
	if den == 0 {
		return 1
	}
	return float64(m.TruePositives) / float64(den)
}

// PPV returns TP/(TP+FP), or 1 when there are no detections.
func (m MatchStats) PPV() float64 {
	den := m.TruePositives + m.FalsePositives
	if den == 0 {
		return 1
	}
	return float64(m.TruePositives) / float64(den)
}

// F1 returns the harmonic mean of sensitivity and PPV.
func (m MatchStats) F1() float64 {
	s, p := m.Sensitivity(), m.PPV()
	if s+p == 0 {
		return 0
	}
	return 2 * s * p / (s + p)
}

// Match greedily pairs detections with references within tol samples
// (both slices must be ascending). The standard AAMI tolerance is
// 150 ms, but compression studies use the stricter ±50 ms.
func Match(detections, reference []int, tol int) MatchStats {
	var st MatchStats
	used := make([]bool, len(detections))
	di := 0
	for _, ref := range reference {
		// advance to the closest detection
		for di < len(detections) && detections[di] < ref-tol {
			di++
		}
		matched := false
		for j := di; j < len(detections) && detections[j] <= ref+tol; j++ {
			if !used[j] {
				used[j] = true
				matched = true
				break
			}
		}
		if matched {
			st.TruePositives++
		} else {
			st.FalseNegatives++
		}
	}
	for _, u := range used {
		if !u {
			st.FalsePositives++
		}
	}
	return st
}
