package qrs

import (
	"math"
	"testing"

	"csecg/internal/dsp"
	"csecg/internal/ecg"
)

func TestNewDetectorValidation(t *testing.T) {
	if _, err := NewDetector(50); err == nil {
		t.Error("50 Hz accepted")
	}
	if _, err := NewDetector(256); err != nil {
		t.Error(err)
	}
}

func TestDetectCleanSignal360(t *testing.T) {
	cfg := ecg.Config{
		HeartRateBPM: 72, HRVariability: 0.04, RespRateHz: 0.25,
		AmplitudeScale: 1, Seed: 11,
	}
	sig, err := ecg.Generate(cfg, 60)
	if err != nil {
		t.Fatal(err)
	}
	det, err := NewDetector(ecg.FsMITBIH)
	if err != nil {
		t.Fatal(err)
	}
	found := det.Detect(sig.MV[0])
	ref := make([]int, 0, len(sig.Ann))
	for _, a := range sig.Ann {
		ref = append(ref, a.Sample)
	}
	st := Match(found, ref, int(0.05*ecg.FsMITBIH))
	if st.Sensitivity() < 0.97 {
		t.Errorf("clean-signal sensitivity %.3f (TP %d FN %d)", st.Sensitivity(), st.TruePositives, st.FalseNegatives)
	}
	if st.PPV() < 0.97 {
		t.Errorf("clean-signal PPV %.3f (TP %d FP %d)", st.PPV(), st.TruePositives, st.FalsePositives)
	}
}

func TestDetectNoisySignal(t *testing.T) {
	cfg := ecg.Config{
		HeartRateBPM: 80, HRVariability: 0.06, RespRateHz: 0.25,
		AmplitudeScale: 1, BaselineWanderMV: 0.1, MuscleNoiseMV: 0.04,
		PowerlineMV: 0.01, PowerlineHz: 60, Seed: 12,
	}
	sig, err := ecg.Generate(cfg, 60)
	if err != nil {
		t.Fatal(err)
	}
	det, _ := NewDetector(ecg.FsMITBIH)
	found := det.Detect(sig.MV[0])
	ref := make([]int, 0, len(sig.Ann))
	for _, a := range sig.Ann {
		ref = append(ref, a.Sample)
	}
	st := Match(found, ref, int(0.05*ecg.FsMITBIH))
	if st.Sensitivity() < 0.90 || st.PPV() < 0.90 {
		t.Errorf("noisy-signal Se %.3f PPV %.3f", st.Sensitivity(), st.PPV())
	}
}

func TestDetectAt256Hz(t *testing.T) {
	// The reconstruction-side use case: resampled to the mote rate.
	cfg := ecg.Config{
		HeartRateBPM: 65, HRVariability: 0.05, RespRateHz: 0.25,
		AmplitudeScale: 1, Seed: 13,
	}
	sig, err := ecg.Generate(cfg, 40)
	if err != nil {
		t.Fatal(err)
	}
	x := dsp.Resample360To256(sig.MV[0])
	det, _ := NewDetector(256)
	found := det.Detect(x)
	ref := make([]int, 0, len(sig.Ann))
	for _, a := range sig.Ann {
		ref = append(ref, int(a.Time*256+0.5))
	}
	st := Match(found, ref, 13) // ±50 ms at 256 Hz
	if st.Sensitivity() < 0.95 || st.PPV() < 0.95 {
		t.Errorf("256 Hz Se %.3f PPV %.3f", st.Sensitivity(), st.PPV())
	}
}

func TestDetectEdgeCases(t *testing.T) {
	det, _ := NewDetector(256)
	if got := det.Detect(nil); got != nil {
		t.Error("nil input produced detections")
	}
	if got := det.Detect(make([]float64, 10)); got != nil {
		t.Error("too-short input produced detections")
	}
	flat := make([]float64, 5000)
	for i := range flat {
		flat[i] = 3.3
	}
	if got := det.Detect(flat); len(got) > 0 {
		t.Errorf("constant signal produced %d detections", len(got))
	}
}

func TestDetectRefractory(t *testing.T) {
	// Detections must respect the 200 ms refractory period.
	cfg := ecg.Config{
		HeartRateBPM: 110, HRVariability: 0.03, RespRateHz: 0.3,
		AmplitudeScale: 1, Seed: 14,
	}
	sig, _ := ecg.Generate(cfg, 30)
	det, _ := NewDetector(ecg.FsMITBIH)
	found := det.Detect(sig.MV[0])
	minGap := int(0.2 * ecg.FsMITBIH)
	for i := 1; i < len(found); i++ {
		if found[i]-found[i-1] < minGap {
			t.Fatalf("detections %d and %d only %d samples apart", found[i-1], found[i], found[i]-found[i-1])
		}
	}
}

func TestMatchKnownCases(t *testing.T) {
	// Perfect match.
	st := Match([]int{100, 200, 300}, []int{100, 200, 300}, 5)
	if st.TruePositives != 3 || st.FalsePositives != 0 || st.FalseNegatives != 0 {
		t.Errorf("perfect: %+v", st)
	}
	// One miss, one extra.
	st = Match([]int{100, 305, 400}, []int{100, 200, 300}, 10)
	if st.TruePositives != 2 || st.FalseNegatives != 1 || st.FalsePositives != 1 {
		t.Errorf("mixed: %+v", st)
	}
	// Each detection matches at most one reference.
	st = Match([]int{100}, []int{98, 102}, 10)
	if st.TruePositives != 1 || st.FalseNegatives != 1 {
		t.Errorf("double-claim: %+v", st)
	}
	// Empty inputs.
	st = Match(nil, nil, 5)
	if st.Sensitivity() != 1 || st.PPV() != 1 {
		t.Errorf("empty: Se %v PPV %v", st.Sensitivity(), st.PPV())
	}
	st = Match(nil, []int{5}, 5)
	if st.Sensitivity() != 0 {
		t.Errorf("all-missed sensitivity %v", st.Sensitivity())
	}
	st = Match([]int{5}, nil, 5)
	if st.PPV() != 0 {
		t.Errorf("all-false PPV %v", st.PPV())
	}
}

func TestF1(t *testing.T) {
	st := MatchStats{TruePositives: 8, FalsePositives: 2, FalseNegatives: 2}
	// Se = 0.8, PPV = 0.8 → F1 = 0.8.
	if math.Abs(st.F1()-0.8) > 1e-12 {
		t.Errorf("F1 = %v, want 0.8", st.F1())
	}
	zero := MatchStats{FalsePositives: 1, FalseNegatives: 1}
	if zero.F1() != 0 {
		t.Errorf("degenerate F1 = %v", zero.F1())
	}
}

func BenchmarkDetect60s(b *testing.B) {
	cfg := ecg.Config{
		HeartRateBPM: 75, HRVariability: 0.05, RespRateHz: 0.25,
		AmplitudeScale: 1, Seed: 15,
	}
	sig, _ := ecg.Generate(cfg, 60)
	det, _ := NewDetector(ecg.FsMITBIH)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		det.Detect(sig.MV[0])
	}
}
