package coordinator

import (
	"strings"
	"testing"

	"csecg/internal/core"
	"csecg/internal/telemetry"
)

// faultDecoder wraps a Decoder and panics on configured sequence
// numbers — the containment path's test double.
type faultDecoder struct {
	inner   Decoder
	panicOn map[uint32]bool
}

func (f *faultDecoder) Decode(pkt *core.Packet) (*Result, error) {
	if f.panicOn[pkt.Seq] {
		panic("injected decode fault")
	}
	return f.inner.Decode(pkt)
}

func (f *faultDecoder) Params() core.Params { return f.inner.Params() }

// survivalRig is transportRig with the decoder wrapped in a panic
// injector.
func survivalRig(t *testing.T, keyInterval int, cfg TransportConfig, panicOn ...uint32) (*core.Encoder, *Receiver) {
	t.Helper()
	params := core.Params{Seed: 0x31, M: 64, N: 128, WaveletLevels: 3, KeyFrameInterval: keyInterval}
	enc, err := core.NewEncoder(params)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := NewRealTimeDecoder(params, VFP)
	if err != nil {
		t.Fatal(err)
	}
	tun, err := dec.SolverTuning()
	if err != nil {
		t.Fatal(err)
	}
	tun.SolverOptions.MaxIter = 1
	fd := &faultDecoder{inner: dec, panicOn: map[uint32]bool{}}
	for _, s := range panicOn {
		fd.panicOn[s] = true
	}
	return enc, NewReceiver(fd, cfg)
}

// TestDecodePanicContained pins the survival contract: a panicking
// window is recorded as a decode failure and the session continues —
// later windows decode and health returns to decoding.
func TestDecodePanicContained(t *testing.T) {
	enc, rx := survivalRig(t, 4, TransportConfig{}, 2)
	reg := telemetry.NewRegistry()
	rx.Instrument(reg)
	pkts := encodeN(t, enc, 8)
	decoded := 0
	for _, p := range pkts {
		decoded += len(push(t, rx, p))
		rx.EndSlot()
	}
	decoded += len(rx.Close())
	st := rx.Stats()
	if st.DecodePanics != 1 {
		t.Fatalf("DecodePanics = %d, want 1", st.DecodePanics)
	}
	if st.DecodeFailures < 1 {
		t.Fatalf("panic not recorded as a decode failure: %+v", st)
	}
	// Window 2 is lost (and window 3, a delta desynchronized by the
	// decoder's advanced state, may be too); the stream recovers at the
	// next key frame.
	if decoded < 6 {
		t.Fatalf("decoded %d of 8 windows after one injected panic", decoded)
	}
	if h := rx.Health(); h != HealthDecoding {
		t.Fatalf("health %v after recovery, want decoding", h)
	}
	if got := reg.Counter("transport_decode_panics_total").Load(); got != 1 {
		t.Fatalf("transport_decode_panics_total = %d, want 1", got)
	}
}

// TestIngestFrameRejectsCorruption pins the acceptance criterion: a
// deliberately corrupted frame is rejected by the CRC at ingest and
// counted in telemetry rather than reaching the decoder.
func TestIngestFrameRejectsCorruption(t *testing.T) {
	enc, rx := survivalRig(t, 4, TransportConfig{})
	reg := telemetry.NewRegistry()
	rx.Instrument(reg)
	pkts := encodeN(t, enc, 2)
	blob, err := pkts[0].Marshal()
	if err != nil {
		t.Fatal(err)
	}
	good := append([]byte(nil), blob...)
	blob[len(blob)/2] ^= 0x40
	if out, err := rx.IngestFrame(blob); err != nil || len(out) != 0 {
		t.Fatalf("corrupt frame: out=%v err=%v, want silent drop", out, err)
	}
	st := rx.Stats()
	if st.Rejected != 1 || st.Received != 0 {
		t.Fatalf("corrupt frame not rejected at ingest: %+v", st)
	}
	if got := reg.Counter("transport_crc_rejected_total").Load(); got != 1 {
		t.Fatalf("transport_crc_rejected_total = %d, want 1", got)
	}
	// The pristine image of the same packet still decodes.
	out, err := rx.IngestFrame(good)
	if err != nil || len(out) != 1 {
		t.Fatalf("pristine frame: out=%v err=%v", out, err)
	}
}

// TestAdmissionQueueShedsOldestNonKey drives a burst through a slow
// decoder: the queue must stay bounded, shed the oldest non-key windows
// first, and keep the key frame so the stream stays decodable.
func TestAdmissionQueueShedsOldestNonKey(t *testing.T) {
	enc, rx := survivalRig(t, 16, TransportConfig{QueueLimit: 4, DecodesPerSlot: 1, ReorderWindow: 64})
	pkts := encodeN(t, enc, 12)
	// Burst: all 12 windows arrive within one slot while the decoder can
	// retire only one per slot.
	for _, p := range pkts {
		push(t, rx, p)
	}
	st := rx.Stats()
	if st.QueuePeak > 4 {
		t.Fatalf("queue peak %d exceeds limit 4", st.QueuePeak)
	}
	if st.Shed == 0 {
		t.Fatal("burst over a full queue shed nothing")
	}
	decoded := 0
	for i := 0; i < 32; i++ {
		_, late := rx.EndSlot()
		decoded += len(late)
	}
	decoded += len(rx.Close())
	// Window 0 (the key frame) must have survived shedding: without it
	// nothing decodes at all.
	if decoded == 0 {
		t.Fatal("no windows decoded: key frame was shed")
	}
	if st := rx.Stats(); st.Decoded+st.DecodeFailures+st.Shed < 12 {
		t.Fatalf("windows unaccounted for: %+v", st)
	}
}

// TestMoteRebootResync restarts the encoder mid-stream: the receiver
// must detect the sequence reset, abandon the dead epoch, and decode
// the new boot's stream from its key frame.
func TestMoteRebootResync(t *testing.T) {
	enc, rx := survivalRig(t, 4, TransportConfig{})
	decoded := 0
	feed := func(n int) {
		for _, p := range encodeN(t, enc, n) {
			decoded += len(push(t, rx, p))
			rx.EndSlot()
		}
	}
	feed(10)
	enc.Reset() // mote brownout: sequence space restarts
	feed(6)
	decoded += len(rx.Close())
	st := rx.Stats()
	if st.Reboots != 1 {
		t.Fatalf("Reboots = %d, want 1: %+v", st.Reboots, st)
	}
	if decoded < 14 {
		t.Fatalf("decoded %d of 16 windows across a reboot", decoded)
	}
	if h := rx.Health(); h != HealthDecoding {
		t.Fatalf("health %v after reboot recovery, want decoding", h)
	}
}

// TestDegradationLadderEngagesAndRecovers models a 2× CPU slowdown: the
// decoder must walk down the ladder (missed modeled deadlines), flag
// windows Degraded, then climb back to nominal once the slowdown ends.
func TestDegradationLadderEngagesAndRecovers(t *testing.T) {
	params := core.Params{Seed: 0x31, M: 64, N: 128, WaveletLevels: 3, KeyFrameInterval: 4}
	dec, err := NewRealTimeDecoder(params, VFP)
	if err != nil {
		t.Fatal(err)
	}
	// Pin the iteration count at the full budget so the modeled time
	// tracks the cost model exactly (Tol off: every decode runs MaxIter).
	tun, err := dec.SolverTuning()
	if err != nil {
		t.Fatal(err)
	}
	tun.SolverOptions.Tol = -1
	enc, err := core.NewEncoder(params)
	if err != nil {
		t.Fatal(err)
	}
	win := make([]int16, 128)
	for i := range win {
		win[i] = int16(1024 + i%5)
	}
	decode := func() *Result {
		t.Helper()
		p, err := enc.EncodeWindow(win)
		if err != nil {
			t.Fatal(err)
		}
		res, err := dec.Decode(p.Clone())
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	if res := decode(); res.Degraded || dec.Rung() != RungNominal {
		t.Fatalf("nominal costs already degraded: rung %v", dec.Rung())
	}
	// 2× slowdown: full-budget decodes now model 2 s against the 1 s
	// budget; two consecutive misses escalate.
	slow := DefaultCosts()
	slow.VFPCyclesPerMAC *= 2
	slow.NEONCyclesPerMAC *= 2
	dec.SetCosts(slow)
	var reachedRung Rung
	for i := 0; i < 6; i++ {
		res := decode()
		if res.Rung > reachedRung {
			reachedRung = res.Rung
		}
		if res.Rung != RungNominal && !res.Degraded {
			t.Fatalf("off-nominal rung %v not flagged Degraded", res.Rung)
		}
	}
	if reachedRung == RungNominal {
		t.Fatal("2x slowdown never engaged the ladder")
	}
	// At the settled rung the halved budget fits the slowed model again,
	// and recovery must follow once the slowdown ends.
	dec.SetCosts(DefaultCosts())
	for i := 0; i < 3*deescalateAfterHits*int(numRungs); i++ {
		if decode(); dec.Rung() == RungNominal {
			break
		}
	}
	if dec.Rung() != RungNominal {
		t.Fatalf("ladder stuck at %v after slowdown ended", dec.Rung())
	}
}

// TestContainedPanicErrorNamesWindow checks the contained error carries
// the window for operator-facing events.
func TestContainedPanicErrorNamesWindow(t *testing.T) {
	enc, rx := survivalRig(t, 4, TransportConfig{}, 0)
	pkts := encodeN(t, enc, 1)
	res, err := rx.decodeContained(pkts[0])
	if res != nil || err == nil || !strings.Contains(err.Error(), "window 0") {
		t.Fatalf("contained panic: res=%v err=%v", res, err)
	}
}
