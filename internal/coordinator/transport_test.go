package coordinator

import (
	"testing"

	"csecg/internal/core"
)

// transportRig builds a small encoder/receiver pair with cheap decodes.
func transportRig(t *testing.T, keyInterval int, cfg TransportConfig) (*core.Encoder, *Receiver) {
	t.Helper()
	params := core.Params{Seed: 0x31, M: 64, N: 128, WaveletLevels: 3, KeyFrameInterval: keyInterval}
	enc, err := core.NewEncoder(params)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := NewRealTimeDecoder(params, VFP)
	if err != nil {
		t.Fatal(err)
	}
	tun, err := dec.SolverTuning()
	if err != nil {
		t.Fatal(err)
	}
	tun.SolverOptions.MaxIter = 1
	return enc, NewReceiver(dec, cfg)
}

// encodeN produces n packets of a flat test window.
func encodeN(t *testing.T, enc *core.Encoder, n int) []*core.Packet {
	t.Helper()
	win := make([]int16, 128)
	for i := range win {
		win[i] = int16(1024 + i%5)
	}
	var pkts []*core.Packet
	for i := 0; i < n; i++ {
		p, err := enc.EncodeWindow(win)
		if err != nil {
			t.Fatal(err)
		}
		pkts = append(pkts, p.Clone())
	}
	return pkts
}

// push feeds a packet and fails the test on a transport error.
func push(t *testing.T, r *Receiver, p *core.Packet) []Decoded {
	t.Helper()
	out, err := r.Push(p)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestReceiverInOrderStream(t *testing.T) {
	enc, rx := transportRig(t, 4, TransportConfig{})
	pkts := encodeN(t, enc, 8)
	decoded := 0
	for _, p := range pkts {
		decoded += len(push(t, rx, p))
		ctrl, late := rx.EndSlot()
		if len(ctrl) != 0 || len(late) != 0 {
			t.Fatal("clean stream produced control traffic or abandonment")
		}
	}
	decoded += len(rx.Close())
	st := rx.Stats()
	if decoded != 8 || st.Decoded != 8 || st.Gaps != 0 || st.Abandoned != 0 {
		t.Errorf("clean stream stats: %+v", st)
	}
}

func TestReceiverSuppressesDuplicatesAndReorders(t *testing.T) {
	enc, rx := transportRig(t, 4, TransportConfig{})
	pkts := encodeN(t, enc, 4)
	push(t, rx, pkts[0])
	rx.EndSlot()
	// Adjacent swap: 2 before 1, plus a duplicate of each.
	if got := push(t, rx, pkts[2]); len(got) != 0 {
		t.Fatal("future packet released early")
	}
	push(t, rx, pkts[2]) // duplicate of buffered
	got := push(t, rx, pkts[1])
	if len(got) != 2 || got[0].Seq != 1 || got[1].Seq != 2 {
		t.Fatalf("swap released %v, want seqs 1,2", got)
	}
	rx.EndSlot()
	rx.EndSlot()
	push(t, rx, pkts[1]) // duplicate of decoded
	push(t, rx, pkts[3])
	rx.EndSlot()
	rx.Close()
	st := rx.Stats()
	if st.Duplicates != 2 {
		t.Errorf("Duplicates = %d, want 2", st.Duplicates)
	}
	// The swap resolved within one window slot, so no stall episode was
	// ever observed at a slot boundary.
	if st.Decoded != 4 || st.Abandoned != 0 || st.Gaps != 0 {
		t.Errorf("stats: %+v", st)
	}
	if st.Buffered != 1 {
		t.Errorf("Buffered = %d, want 1", st.Buffered)
	}
}

// TestReceiverNackRetransmitRecovers walks the happy resync path: a gap
// triggers a NACK, the "mote" answers from its ring, and the stream
// catches up with no abandoned windows.
func TestReceiverNackRetransmitRecovers(t *testing.T) {
	enc, rx := transportRig(t, 64, TransportConfig{NACK: true})
	pkts := encodeN(t, enc, 6)
	push(t, rx, pkts[0])
	rx.EndSlot()
	// seq 1 lost on the downlink.
	ctrl, _ := rx.EndSlot()
	if len(ctrl) != 1 || ctrl[0].Kind != core.KindNack {
		t.Fatalf("gap did not NACK: %v", ctrl)
	}
	first, count, err := core.NackRange(ctrl[0])
	if err != nil || first != 1 || count < 1 {
		t.Fatalf("NACK range (%d, %d, %v), want first=1", first, count, err)
	}
	// seq 2 arrives while the retransmit is in flight.
	push(t, rx, pkts[2])
	// Retransmit of seq 1 arrives: both release in order.
	got := push(t, rx, pkts[1])
	if len(got) != 2 || got[0].Seq != 1 || got[1].Seq != 2 {
		t.Fatalf("retransmit released %v", got)
	}
	ctrl, late := rx.EndSlot()
	if len(ctrl) != 0 || len(late) != 0 {
		t.Fatal("recovered stream still emitting control traffic")
	}
	for _, p := range pkts[3:] {
		if len(push(t, rx, p)) != 1 {
			t.Fatal("post-recovery packet not released")
		}
		rx.EndSlot()
	}
	rx.Close()
	st := rx.Stats()
	if st.Decoded != 6 || st.Abandoned != 0 || st.DecodeFailures != 0 {
		t.Errorf("stats: %+v", st)
	}
	if st.Gaps != 1 || st.NacksSent != 1 || st.KeyRequestsSent != 0 {
		t.Errorf("control stats: %+v", st)
	}
	if len(st.RecoveryWindows) != 1 || st.RecoveryWindows[0] > 2 {
		t.Errorf("recovery latency %v, want one short gap", st.RecoveryWindows)
	}
}

// TestReceiverBackoffExhaustionFallsBackToKeyFrame scripts a dead
// control channel: NACK retries back off 1, 2, 4 windows and exhaust,
// key requests exhaust, and the scheduled key frame finally recovers
// the stream.
func TestReceiverBackoffExhaustionFallsBackToKeyFrame(t *testing.T) {
	enc, rx := transportRig(t, 8, TransportConfig{NACK: true, MaxRetries: 2, BackoffWindows: 1})
	pkts := encodeN(t, enc, 11)
	push(t, rx, pkts[0])
	rx.EndSlot() // slot 1
	var nacks, keyReqs int
	retrySlots := map[int][]int{}
	// Windows 1..7 all lost; every NACK and key request is lost too.
	for slot := 2; slot <= 7; slot++ {
		ctrl, late := rx.EndSlot()
		if len(late) != 0 {
			t.Fatalf("slot %d: abandoned %v before the scheduled key", slot, late)
		}
		for _, c := range ctrl {
			switch c.Kind {
			case core.KindNack:
				nacks++
				retrySlots[1] = append(retrySlots[1], slot)
			case core.KindKeyRequest:
				keyReqs++
				retrySlots[2] = append(retrySlots[2], slot)
			}
		}
	}
	// Exponential spacing: NACKs at slots 2 and 3 (backoff 1, 2), a key
	// request at slot 5 (backoff 4); the next attempt would land at slot
	// 9, beyond the scheduled key frame.
	if nacks != 2 || keyReqs != 1 {
		t.Fatalf("nacks=%d keyReqs=%d, want 2 and 1", nacks, keyReqs)
	}
	if got := retrySlots[1]; got[0] != 2 || got[1] != 3 {
		t.Errorf("NACK slots %v, want [2 3]", got)
	}
	if got := retrySlots[2]; got[0] != 5 {
		t.Errorf("key-request slots %v, want first at 5", got)
	}
	// Scheduled key frame (seq 8) arrives and must recover the stream.
	got := push(t, rx, pkts[8])
	ctrl, late := rx.EndSlot()
	released := append(got, late...)
	if len(released) != 1 || released[0].Seq != 8 {
		t.Fatalf("key frame released %v, want seq 8", released)
	}
	if len(ctrl) != 0 {
		t.Errorf("control traffic after recovery: %v", ctrl)
	}
	for _, p := range pkts[9:] {
		if len(push(t, rx, p)) != 1 {
			t.Fatal("post-recovery delta not released")
		}
		rx.EndSlot()
	}
	rx.Close()
	st := rx.Stats()
	if st.Abandoned != 7 {
		t.Errorf("Abandoned = %d, want 7 (seqs 1-7)", st.Abandoned)
	}
	if st.Decoded != 4 {
		t.Errorf("Decoded = %d, want 4 (seqs 0, 8, 9, 10)", st.Decoded)
	}
	if st.Gaps != 1 || st.LongestOutage != 7 {
		t.Errorf("gap stats: %+v", st)
	}
	if st.Resyncs != 1 {
		t.Errorf("Resyncs = %d, want 1", st.Resyncs)
	}
	if len(st.RecoveryWindows) != 1 {
		t.Errorf("recovery distribution %v, want one episode", st.RecoveryWindows)
	}
}

// TestReceiverNoNackAbandonsAfterWait reproduces the baseline decoder
// behavior: without a control channel, a gap is held WaitWindows slots
// and then the stream limps to the next scheduled key frame.
func TestReceiverNoNackAbandonsAfterWait(t *testing.T) {
	enc, rx := transportRig(t, 4, TransportConfig{})
	pkts := encodeN(t, enc, 9)
	push(t, rx, pkts[0])
	rx.EndSlot()
	push(t, rx, pkts[1])
	rx.EndSlot()
	// seq 2 lost; deltas 3 and key 4 keep arriving.
	ctrl, _ := rx.EndSlot()
	if len(ctrl) != 0 {
		t.Fatal("NACK-less receiver emitted control traffic")
	}
	push(t, rx, pkts[3])
	_, late := rx.EndSlot() // wait expired: abandon seq 2, feed delta 3
	for _, d := range late {
		t.Errorf("desynced delta released: seq %d", d.Seq)
	}
	got := push(t, rx, pkts[4]) // scheduled key frame resyncs
	if len(got) != 1 || got[0].Seq != 4 {
		t.Fatalf("key frame released %v, want seq 4", got)
	}
	rx.EndSlot()
	for _, p := range pkts[5:] {
		if len(push(t, rx, p)) != 1 {
			t.Fatal("post-recovery delta not released")
		}
		rx.EndSlot()
	}
	rx.Close()
	st := rx.Stats()
	if st.Abandoned != 1 || st.DecodeFailures != 1 {
		t.Errorf("stats: %+v", st)
	}
	if st.Decoded != 7 {
		t.Errorf("Decoded = %d, want 7", st.Decoded)
	}
	if st.Resyncs != 1 || st.Gaps != 1 {
		t.Errorf("resync stats: %+v", st)
	}
}

// TestReceiverKeyJumpDropsOvertakenDeltas wedges a delta behind the key
// frame the receiver jumps to: the overtaken packet must be discarded
// (it is already counted abandoned), not parked in the buffer forever.
func TestReceiverKeyJumpDropsOvertakenDeltas(t *testing.T) {
	enc, rx := transportRig(t, 8, TransportConfig{NACK: true, MaxRetries: 1, BackoffWindows: 1})
	pkts := encodeN(t, enc, 9)
	push(t, rx, pkts[0])
	rx.EndSlot()
	// seq 1 lost; the NACK ladder exhausts after one try.
	ctrl, _ := rx.EndSlot()
	if len(ctrl) != 1 || ctrl[0].Kind != core.KindNack {
		t.Fatalf("expected one NACK, got %v", ctrl)
	}
	push(t, rx, pkts[2]) // delta parked behind the gap
	push(t, rx, pkts[8]) // scheduled key frame, buffered ahead
	_, late := rx.EndSlot()
	if len(late) != 1 || late[0].Seq != 8 {
		t.Fatalf("key jump released %v, want seq 8", late)
	}
	rx.Close() // must terminate with the overtaken delta discarded
	st := rx.Stats()
	if st.Abandoned != 7 || st.Decoded != 2 {
		t.Errorf("stats after key jump: %+v", st)
	}
	if st.Gaps != 1 || len(st.RecoveryWindows) != 1 {
		t.Errorf("gap accounting: %+v", st)
	}
}

func TestReceiverRejectsControlOnDownlink(t *testing.T) {
	_, rx := transportRig(t, 4, TransportConfig{})
	if _, err := rx.Push(core.NewNack(0, 1)); err == nil {
		t.Error("downlink NACK accepted")
	}
	if _, err := rx.Push(core.NewKeyRequest(0)); err == nil {
		t.Error("downlink key request accepted")
	}
}

func TestReceiverBufferOverflow(t *testing.T) {
	// A long WaitWindows keeps the gap open so the buffer, not the
	// abandon path, absorbs the out-of-order arrivals.
	enc, rx := transportRig(t, 64, TransportConfig{ReorderWindow: 2, WaitWindows: 100})
	pkts := encodeN(t, enc, 8)
	push(t, rx, pkts[0])
	rx.EndSlot()
	// seq 1 lost; 2, 3 fill the 2-slot buffer; 4, 5 overflow.
	for _, p := range pkts[2:6] {
		push(t, rx, p)
		rx.EndSlot()
	}
	st := rx.Stats()
	if st.Buffered != 2 || st.Overflows != 2 {
		t.Errorf("overflow stats: %+v", st)
	}
}

func TestReceiverTailLossIsAccounted(t *testing.T) {
	enc, rx := transportRig(t, 4, TransportConfig{})
	pkts := encodeN(t, enc, 6)
	for _, p := range pkts[:3] {
		push(t, rx, p)
		rx.EndSlot()
	}
	// Windows 3..5 encoded but all lost; the session then ends.
	rx.EndSlot()
	rx.EndSlot()
	rx.EndSlot()
	rx.Close()
	st := rx.Stats()
	if st.Abandoned != 3 {
		t.Errorf("Abandoned = %d, want 3 tail windows", st.Abandoned)
	}
	if st.Gaps != 1 || len(st.RecoveryWindows) != 1 {
		t.Errorf("tail gap not recorded: %+v", st)
	}
	if st.LongestOutage != 3 {
		t.Errorf("LongestOutage = %d, want 3", st.LongestOutage)
	}
}
