package coordinator

import (
	"fmt"

	"csecg/internal/core"
	"csecg/internal/metrics"
	"csecg/internal/telemetry"
)

// Health is the receiver's liveness summary — what the monitor's
// /readyz endpoint reports for the stream.
type Health int

// Health states. The transition graph is Starting → Decoding (first
// window reconstructed, i.e. the coordinator is keyed) and
// Decoding ⇄ Degraded (a gap episode opens / the stream catches up).
const (
	// HealthStarting: no window decoded yet (awaiting the first key
	// frame).
	HealthStarting Health = iota
	// HealthDecoding: keyed and caught up — the ready state.
	HealthDecoding
	// HealthDegraded: a gap episode is open (missing windows, resync in
	// progress).
	HealthDegraded
)

// String names the state.
func (h Health) String() string {
	switch h {
	case HealthDecoding:
		return "decoding"
	case HealthDegraded:
		return "degraded"
	default:
		return "starting"
	}
}

// recentSlots is the sliding window (in 2-second slots) of the
// receiver's loss-rate observable feeding the quality estimator.
const recentSlots = 32

// TransportConfig tunes the coordinator's fault-tolerant receive path.
// The zero value enables reorder buffering and duplicate suppression
// only — the decoder's scheduled-key-frame recovery, made observable.
// Setting NACK adds the control channel: on a sequence gap the receiver
// requests selective retransmission from the mote's bounded ring with
// exponential backoff, falls back to an on-demand key-frame request
// when retransmission is exhausted, and finally goes passive to await
// the scheduled key frame.
type TransportConfig struct {
	// NACK enables the uplink control channel.
	NACK bool
	// ReorderWindow caps the packets buffered ahead of a gap
	// (default 8).
	ReorderWindow int
	// MaxRetries caps NACK attempts per gap episode, and again the
	// key-frame request attempts that follow (default 3).
	MaxRetries int
	// BackoffWindows is the initial retry spacing in window slots; it
	// doubles after every attempt (default 1).
	BackoffWindows int
	// WaitWindows is how long a NACK-less receiver holds a gap open for
	// late (reordered) arrivals before abandoning the missing windows
	// (default 2).
	WaitWindows int
	// QueueLimit bounds the admission queue between in-order release
	// and the decoder (default 16): under burst arrival a slow solver
	// sheds load instead of growing unbounded memory.
	QueueLimit int
	// DecodesPerSlot caps decodes per window slot, modeling the
	// coordinator's finite CPU under burst arrival; admitted windows
	// beyond the cap wait in the queue. 0 (the default) decodes every
	// admitted window immediately.
	DecodesPerSlot int
}

// withDefaults fills zero fields.
func (c TransportConfig) withDefaults() TransportConfig {
	if c.ReorderWindow == 0 {
		c.ReorderWindow = 8
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = 3
	}
	if c.BackoffWindows == 0 {
		c.BackoffWindows = 1
	}
	if c.WaitWindows == 0 {
		c.WaitWindows = 2
	}
	if c.QueueLimit == 0 {
		c.QueueLimit = 16
	}
	return c
}

// TransportStats reports what the channel did to the session — the
// per-window gap accounting the paper's clean-link demo never needed.
type TransportStats struct {
	// Received counts packets entering the receiver (including
	// duplicates); Decoded the windows actually reconstructed;
	// DecodeFailures the in-order packets the decoder rejected
	// (desynchronized deltas after an abandoned gap).
	Received, Decoded, DecodeFailures int
	// Duplicates counts suppressed duplicate arrivals, Buffered the
	// packets held past a gap and delivered late, Overflows the packets
	// discarded because the reorder buffer was full.
	Duplicates, Buffered, Overflows int
	// Gaps counts stall episodes (first missing window to full
	// catch-up); Resyncs the key-frame resynchronizations the decoder
	// performed after a gap.
	Gaps, Resyncs int
	// NacksSent and KeyRequestsSent count control packets emitted.
	NacksSent, KeyRequestsSent int
	// Abandoned counts windows given up for good.
	Abandoned int
	// BadWindows counts decoded windows whose ground-truth-free quality
	// estimate crossed the paper's 9 % PRDN boundary; Recoveries counts
	// Degraded → Decoding health transitions.
	BadWindows, Recoveries int
	// LongestOutage is the longest run of consecutive undecoded
	// windows.
	LongestOutage int
	// RecoveryWindows is the per-gap recovery latency distribution:
	// window slots from gap detection to stream catch-up.
	RecoveryWindows []int
	// Rejected counts frames the ingest integrity check (CRC/framing)
	// refused — corruption stopped before the decoder.
	Rejected int
	// DecodePanics counts panics contained in the decode path: the
	// window is lost, the session survives.
	DecodePanics int
	// Shed counts admitted windows dropped by the bounded queue's
	// load-shedding policy (oldest non-key first).
	Shed int
	// QueuePeak is the admission queue's high-water mark.
	QueuePeak int
	// Reboots counts mote restarts (sequence reset mid-stream) the
	// receiver resynchronized to.
	Reboots int
}

// MeanRecovery returns the mean gap-recovery latency in windows.
func (s TransportStats) MeanRecovery() float64 {
	if len(s.RecoveryWindows) == 0 {
		return 0
	}
	sum := 0
	for _, w := range s.RecoveryWindows {
		sum += w
	}
	return float64(sum) / float64(len(s.RecoveryWindows))
}

// Decoded pairs a reconstruction with its window sequence number (the
// receiver releases windows strictly in sequence order).
type Decoded struct {
	Seq uint32
	Res *Result
	// EstPRDN is the window's ground-truth-free quality estimate
	// (metrics.EstimatePRDN over the decode's observables) and Bad its
	// classification against the paper's 9 % boundary.
	EstPRDN float64
	Bad     bool
}

// gapState tracks one stall episode.
type gapState struct {
	openedSlot int
	first      uint32
	retries    int // NACK attempts used
	keyRetries int // key-frame request attempts used
	nextRetry  int // slot at which the next control packet fires
	backoff    int
	passive    bool // exhausted; awaiting the scheduled key frame
}

// Decoder abstracts the platform decoder the receiver releases windows
// to. *RealTimeDecoder is the production implementation; the chaos
// harness wraps it with fault injectors (panics, stalls) to exercise
// the containment path.
type Decoder interface {
	Decode(pkt *core.Packet) (*Result, error)
	Params() core.Params
}

// WindowCapture is one released window's decode summary as the flight
// recorder sees it — every field the replay harness must reproduce
// bit-for-bit, plus the capture coordinates (slot and decode ordinal)
// that align a bundle's records with its raw frame stream.
type WindowCapture struct {
	// Slot is the receiver's window-period counter at release; Ordinal
	// the session-monotonic decode-attempt index (failures included).
	Slot    int
	Ordinal int64
	// Seq is the window sequence number (per mote boot epoch).
	Seq uint32
	// Rung/Iterations/Converged/DeadlineExpired/Degraded summarize the
	// solve; EscapeCount the entropy decoder's escape symbols.
	Rung            Rung
	Iterations      int
	EscapeCount     int
	Converged       bool
	DeadlineExpired bool
	Degraded        bool
	// ResidualNorm, EstPRDN and Bad are the ground-truth-free quality
	// verdict; ModeledNs the cycle-model decode time.
	ResidualNorm float64
	EstPRDN      float64
	Bad          bool
	ModeledNs    int64
	// Trace is the window's causal trace ID (0 when the session streams
	// untraced), derived deterministically from the session's trace seed
	// and Seq — the link between a sealed bundle's window records, the
	// stage-seconds exemplars and a retained span tree.
	Trace uint64
}

// FlightRecorder taps the receive path for the black-box flight
// recorder (internal/blackbox implements it). Capture calls run inline
// on the receive path, so implementations must be allocation-free and
// fast; RecordDecodeFailure with panicked=true is the anomaly path and
// may do heavier work (it seals a diagnostics bundle).
type FlightRecorder interface {
	// RecordFrame captures one post-CRC wire frame at the given slot,
	// in arrival order. The recorder must copy the bytes — the caller's
	// buffer is reused.
	RecordFrame(slot int, seq uint32, kind uint8, frame []byte)
	// RecordWindow captures one released window's decode summary.
	RecordWindow(w WindowCapture)
	// RecordHealth captures a health transition.
	RecordHealth(slot int, from, to Health)
	// RecordDecodeFailure captures one failed decode attempt; panicked
	// marks a contained panic (an anomaly trigger).
	RecordDecodeFailure(slot int, ordinal int64, seq uint32, panicked bool)
	// RecordSlot notes the receiver's slot counter advancing, so a
	// sealed bundle knows how many window periods it spans even when
	// the tail slots carried no frames.
	RecordSlot(slot int)
}

// Receiver is the coordinator's transport endpoint: it ingests packets
// off the (lossy, reordering, duplicating) link, releases windows to
// the platform decoder strictly in order through a bounded admission
// queue, and drives the NACK resync state machine. Call Push (or
// IngestFrame for raw wire frames) for every arrival, EndSlot once per
// window period (its return is the control traffic to send uplink), and
// Close when the stream ends.
//
// The receiver is not safe for concurrent use; one goroutine must own
// it.
type Receiver struct {
	dec Decoder
	cfg TransportConfig

	expected uint32 // next sequence number (current epoch) to release
	maxSeen  uint32 // highest sequence number observed (current epoch)
	anySeen  bool
	slot     int // window slots elapsed = windows produced by the mote
	// epoch is the slot at which the current mote boot's sequence 0
	// aligns: a mote reboot resets the wire sequence mid-stream, and
	// slot-versus-sequence comparisons use epoch + seq.
	epoch int
	buf   map[uint32]*core.Packet
	// queue is the bounded admission queue between in-order release and
	// the decoder; decodesLeft is the per-slot decode budget remaining.
	queue       []*core.Packet
	decodesLeft int
	gap         *gapState
	outage      int // current run of undecoded windows

	// recent is the sliding per-slot lost-window ring behind the
	// quality estimator's GapRate observable.
	recent    [recentSlots]int
	recentIdx int

	// rec, when non-nil, is the black-box flight recorder tapping the
	// receive path; ordinal counts decode attempts (the alignment key
	// between bundle window records and scripted replay failures);
	// panicked flags the last contained decode panic for the tap.
	rec      FlightRecorder
	ordinal  int64
	panicked bool
	// traceSeed derives per-window causal trace IDs for WindowCapture
	// (0 → untraced); shedHook, when set, observes admission-queue sheds.
	traceSeed uint64
	shedHook  func(seq uint32)

	stats TransportStats
	met   *transportMetrics
}

// transportMetrics caches the telemetry pointers the receive path
// records into.
type transportMetrics struct {
	received, decoded, duplicates, failures *telemetry.Counter
	gaps, nacks, keyRequests, abandoned     *telemetry.Counter
	recoverySlots                           *telemetry.Histogram
	qualityWindows, qualityBad              *telemetry.Counter
	estPRDNCenti                            *telemetry.Histogram
	health                                  *telemetry.Gauge
	recoveries                              *telemetry.Counter
	rejected, panics, shed, reboots         *telemetry.Counter
	queueDepth                              *telemetry.Gauge
}

// NewReceiver builds a receiver around the platform decoder.
func NewReceiver(dec Decoder, cfg TransportConfig) *Receiver {
	return &Receiver{
		dec: dec,
		cfg: cfg.withDefaults(),
		buf: map[uint32]*core.Packet{},
	}
}

// Instrument attaches session telemetry: the transport counters and
// the gap-recovery latency histogram (in window slots). A nil registry
// detaches.
func (r *Receiver) Instrument(reg *telemetry.Registry) {
	if reg == nil {
		r.met = nil
		return
	}
	r.met = &transportMetrics{
		received:       reg.Counter("transport_received_total"),
		decoded:        reg.Counter("transport_decoded_total"),
		duplicates:     reg.Counter("transport_duplicates_total"),
		failures:       reg.Counter("transport_decode_failures_total"),
		gaps:           reg.Counter("transport_gaps_total"),
		nacks:          reg.Counter("transport_nacks_sent_total"),
		keyRequests:    reg.Counter("transport_key_requests_sent_total"),
		abandoned:      reg.Counter("transport_abandoned_total"),
		recoverySlots:  reg.Histogram("transport_recovery_slots"),
		qualityWindows: reg.Counter("quality_windows_total"),
		qualityBad:     reg.Counter("quality_bad_windows_total"),
		estPRDNCenti:   reg.Histogram("quality_est_prdn_centi"),
		health:         reg.Gauge("transport_health_state"),
		recoveries:     reg.Counter("transport_recoveries_total"),
		rejected:       reg.Counter("transport_crc_rejected_total"),
		panics:         reg.Counter("transport_decode_panics_total"),
		shed:           reg.Counter("transport_shed_total"),
		reboots:        reg.Counter("transport_reboots_total"),
		queueDepth:     reg.Gauge("transport_queue_depth"),
	}
	reg.SetHelp("transport_crc_rejected_total", "wire frames refused by the ingest CRC/framing check")
	reg.SetHelp("transport_decode_panics_total", "decode panics contained to their window")
	reg.SetHelp("transport_shed_total", "windows dropped by admission-queue load shedding")
	reg.SetHelp("transport_reboots_total", "mote sequence resets resynchronized mid-stream")
	reg.SetHelp("transport_queue_depth", "admission queue depth after the last pump")
	reg.SetHelp("quality_windows_total", "decoded windows scored by the ground-truth-free quality estimator")
	reg.SetHelp("quality_bad_windows_total", "windows whose estimated PRDN crossed the 9% diagnostic boundary")
	reg.SetHelp("quality_est_prdn_centi", "estimated PRDN per decoded window, in 0.01% units")
	reg.SetHelp("transport_health_state", "receiver health: 0 starting, 1 decoding, 2 degraded")
	reg.SetHelp("transport_recoveries_total", "degraded-to-decoding health transitions")
}

// SetRecorder attaches a flight recorder to the receive path (nil
// detaches). Attach before the first Push so the recorded frame stream
// is complete from the session start.
func (r *Receiver) SetRecorder(rec FlightRecorder) { r.rec = rec }

// SetTraceSeed installs the session's causal trace-ID seed
// (telemetry.TraceSeed of the session label): every released window's
// WindowCapture.Trace becomes telemetry.DeriveTraceID(seed, seq), the
// same ID the span tracer, monitor and replay harness compute. Zero
// disables trace stamping.
func (r *Receiver) SetTraceSeed(seed uint64) { r.traceSeed = seed }

// SetShedHook installs an observer for admission-queue sheds, called
// with the shed window's sequence number before the packet is dropped —
// the span tracer retains the partial trace of a window that will never
// decode. Install before streaming starts.
func (r *Receiver) SetShedHook(hook func(seq uint32)) { r.shedHook = hook }

// ResumeAt positions a fresh receiver mid-stream for bundle replay: the
// next expected sequence number and the slot-grid origin of a bundle
// whose frame ring wrapped. The epoch is aligned so slot-versus-sequence
// comparisons stay consistent.
func (r *Receiver) ResumeAt(seq uint32, slot int) {
	r.expected = seq
	r.maxSeen = seq
	r.slot = slot
	r.epoch = slot - int(seq)
}

// Health returns the receiver's current liveness state.
func (r *Receiver) Health() Health {
	switch {
	case r.gap != nil:
		return HealthDegraded
	case r.stats.Decoded > 0:
		return HealthDecoding
	default:
		return HealthStarting
	}
}

// GapRate returns the recent loss fraction: windows lost (abandoned or
// undecodable) over the last recentSlots window slots — the estimator's
// transport observable.
func (r *Receiver) GapRate() float64 {
	lost := 0
	for _, n := range r.recent {
		lost += n
	}
	rate := float64(lost) / float64(recentSlots)
	if rate > 1 {
		rate = 1
	}
	return rate
}

// noteLost attributes n lost windows to the current slot of the
// sliding loss window.
func (r *Receiver) noteLost(n int) {
	r.recent[r.recentIdx] += n
}

// syncHealth publishes the health gauge and counts recoveries; callers
// invoke it after any state-changing step.
func (r *Receiver) syncHealth(before Health) {
	now := r.Health()
	if before == HealthDegraded && now == HealthDecoding {
		r.stats.Recoveries++
		if r.met != nil {
			r.met.recoveries.Inc()
		}
	}
	if r.met != nil {
		r.met.health.Set(int64(now))
	}
	if r.rec != nil && now != before {
		r.rec.RecordHealth(r.slot, before, now)
	}
}

// Stats returns a snapshot of the transport counters.
func (r *Receiver) Stats() TransportStats {
	s := r.stats
	s.RecoveryWindows = append([]int(nil), r.stats.RecoveryWindows...)
	return s
}

// ParseFrame parses one wire frame, enforcing the CRC at ingest: a
// frame the integrity check refuses is counted (stats.Rejected,
// transport_crc_rejected_total) and never reaches the decoder.
func (r *Receiver) ParseFrame(frame []byte) (*core.Packet, error) {
	pkt, _, err := core.UnmarshalPacket(frame)
	if err != nil {
		r.stats.Rejected++
		if r.met != nil {
			r.met.rejected.Inc()
		}
		return nil, err
	}
	if r.rec != nil {
		r.rec.RecordFrame(r.slot, pkt.Seq, uint8(pkt.Kind), frame)
	}
	return pkt, nil
}

// IngestFrame parses and pushes one wire frame. A corrupt frame is
// counted and dropped (equivalent to a channel loss — the gap machinery
// recovers it); the error return is reserved for protocol violations
// from Push.
func (r *Receiver) IngestFrame(frame []byte) ([]Decoded, error) {
	pkt, err := r.ParseFrame(frame)
	if err != nil {
		return nil, nil
	}
	return r.Push(pkt)
}

// Push ingests one packet from the link, returning any windows released
// (in sequence order). Control-kind packets are rejected — they belong
// on the uplink.
func (r *Receiver) Push(pkt *core.Packet) ([]Decoded, error) {
	if pkt == nil {
		return nil, nil
	}
	if pkt.Kind.IsControl() {
		return nil, fmt.Errorf("coordinator: control packet kind %d on the downlink", pkt.Kind)
	}
	before := r.Health()
	defer func() { r.syncHealth(before) }()
	r.stats.Received++
	if r.met != nil {
		r.met.received.Inc()
	}
	// A key frame restarting the sequence space far behind the release
	// point is a mote reboot, not a stale duplicate: resynchronize the
	// epoch instead of silently discarding the new boot's stream.
	if pkt.Kind == core.KindKey && pkt.Seq == 0 && r.anySeen &&
		r.expected > uint32(r.cfg.ReorderWindow) {
		r.rebootResync()
	}
	if pkt.Seq > r.maxSeen || !r.anySeen {
		r.maxSeen = pkt.Seq
		r.anySeen = true
	}
	if pkt.Seq < r.expected {
		r.countDuplicate()
		return nil, nil
	}
	if _, dup := r.buf[pkt.Seq]; dup {
		r.countDuplicate()
		return nil, nil
	}
	if pkt.Seq != r.expected {
		if len(r.buf) >= r.cfg.ReorderWindow {
			r.stats.Overflows++
			return nil, nil
		}
		r.buf[pkt.Seq] = pkt
		r.stats.Buffered++
		return nil, nil
	}
	r.buf[pkt.Seq] = pkt
	return r.drain(), nil
}

// rebootResync realigns the receiver to a rebooted mote: the windows
// the old boot still owed (missing, buffered or queued) are abandoned,
// the buffers cleared, and the sequence space restarted with the
// current slot as the new epoch origin. The incoming key frame then
// resynchronizes the decoder's measurement state as any key frame does.
func (r *Receiver) rebootResync() {
	lost := r.slot - (r.epoch + int(r.expected)) + len(r.queue)
	if lost > 0 {
		r.stats.Abandoned += lost
		if r.met != nil {
			r.met.abandoned.Add(int64(lost))
		}
		r.bumpOutage(lost)
		r.noteLost(lost)
	}
	r.buf = map[uint32]*core.Packet{}
	r.queue = r.queue[:0]
	if r.gap != nil {
		// The reboot key frame is this episode's recovery point.
		r.stats.RecoveryWindows = append(r.stats.RecoveryWindows, r.slot-r.gap.openedSlot+1)
		if r.met != nil {
			r.met.recoverySlots.Observe(int64(r.slot - r.gap.openedSlot + 1))
		}
		r.gap = nil
	}
	r.epoch = r.slot
	r.expected = 0
	r.maxSeen = 0
	r.stats.Reboots++
	if r.met != nil {
		r.met.reboots.Inc()
		r.met.queueDepth.Set(0)
	}
}

// drain admits consecutive buffered windows starting at expected into
// the bounded queue, then pumps the decoder.
func (r *Receiver) drain() []Decoded {
	for {
		pkt, ok := r.buf[r.expected]
		if !ok {
			break
		}
		delete(r.buf, r.expected)
		r.expected++
		r.admit(pkt)
	}
	out := r.pump()
	r.closeGapIfCaughtUp()
	return out
}

// traceID stamps a released window with its causal trace ID (0 when
// the session streams untraced).
func (r *Receiver) traceID(seq uint32) uint64 {
	if r.traceSeed == 0 {
		return 0
	}
	return telemetry.DeriveTraceID(r.traceSeed, seq)
}

// admit appends one in-order window to the admission queue. When the
// queue is full, the oldest non-key window is shed first: key frames
// are resync points, and the freshest windows are the ones the display
// still has time to show.
func (r *Receiver) admit(pkt *core.Packet) {
	if len(r.queue) >= r.cfg.QueueLimit {
		drop := -1
		for i, p := range r.queue {
			if p.Kind != core.KindKey {
				drop = i
				break
			}
		}
		if drop < 0 {
			drop = 0
		}
		if r.shedHook != nil {
			r.shedHook(r.queue[drop].Seq)
		}
		r.queue = append(r.queue[:drop], r.queue[drop+1:]...)
		r.stats.Shed++
		r.noteLost(1)
		r.bumpOutage(1)
		if r.met != nil {
			r.met.shed.Inc()
		}
	}
	r.queue = append(r.queue, pkt)
	if len(r.queue) > r.stats.QueuePeak {
		r.stats.QueuePeak = len(r.queue)
	}
}

// pump decodes admitted windows in order, within the per-slot decode
// budget (unlimited when DecodesPerSlot is 0).
func (r *Receiver) pump() []Decoded {
	var out []Decoded
	for len(r.queue) > 0 {
		if r.cfg.DecodesPerSlot > 0 && r.decodesLeft <= 0 {
			break
		}
		pkt := r.queue[0]
		r.queue[0] = nil
		r.queue = r.queue[1:]
		r.decodesLeft--
		ord := r.ordinal
		r.ordinal++
		res, err := r.decodeContained(pkt)
		if err != nil {
			// In-order window the decoder still rejects (a delta behind
			// an abandoned gap, desynchronized until the next key frame)
			// or a contained panic. The window is lost.
			r.stats.DecodeFailures++
			if r.met != nil {
				r.met.failures.Inc()
			}
			if r.rec != nil {
				r.rec.RecordDecodeFailure(r.slot, ord, pkt.Seq, r.panicked)
			}
			r.panicked = false
			r.bumpOutage(1)
			r.noteLost(1)
			continue
		}
		r.stats.Decoded++
		if r.met != nil {
			r.met.decoded.Inc()
		}
		r.outage = 0
		if res.Resynced {
			r.stats.Resyncs++
		}
		d := r.score(Decoded{Seq: pkt.Seq, Res: res})
		if r.rec != nil {
			r.rec.RecordWindow(WindowCapture{
				Slot:            r.slot,
				Ordinal:         ord,
				Seq:             pkt.Seq,
				Rung:            res.Rung,
				Iterations:      res.Iterations,
				EscapeCount:     res.EscapeCount,
				Converged:       res.Converged,
				DeadlineExpired: res.DeadlineExpired,
				Degraded:        res.Degraded,
				ResidualNorm:    res.ResidualNorm,
				EstPRDN:         d.EstPRDN,
				Bad:             d.Bad,
				ModeledNs:       int64(res.ModeledTime),
				Trace:           r.traceID(pkt.Seq),
			})
		}
		out = append(out, d)
	}
	if r.met != nil {
		r.met.queueDepth.Set(int64(len(r.queue)))
	}
	return out
}

// decodeContained isolates one window's decode: a panic anywhere in the
// reconstruction pipeline is contained to that window — counted,
// converted to a decode failure, and the session continues. The decoder
// may be left mid-update; the next key frame rebuilds its measurement
// state from scratch, so containment needs no decoder cooperation.
func (r *Receiver) decodeContained(pkt *core.Packet) (res *Result, err error) {
	defer func() {
		if p := recover(); p != nil {
			r.stats.DecodePanics++
			r.panicked = true
			if r.met != nil {
				r.met.panics.Inc()
			}
			res, err = nil, fmt.Errorf("coordinator: decode panic on window %d: %v", pkt.Seq, p)
		}
	}()
	return r.dec.Decode(pkt)
}

// score attaches the ground-truth-free quality estimate to a released
// window: the decoder's residual/convergence/escape observables plus
// the transport's recent gap rate, through the calibrated estimator.
func (r *Receiver) score(d Decoded) Decoded {
	p := r.dec.Params()
	esc := 0.0
	if p.M > 0 {
		esc = float64(d.Res.EscapeCount) / float64(p.M)
	}
	d.EstPRDN = metrics.EstimatePRDN(metrics.QualityObservables{
		Residual:   d.Res.ResidualNorm,
		M:          p.M,
		N:          p.N,
		Converged:  d.Res.Converged,
		EscapeRate: esc,
		GapRate:    r.GapRate(),
	})
	d.Bad = d.EstPRDN > metrics.GoodPRDN
	if d.Bad {
		r.stats.BadWindows++
	}
	if r.met != nil {
		r.met.qualityWindows.Inc()
		if d.Bad {
			r.met.qualityBad.Inc()
		}
		r.met.estPRDNCenti.Observe(int64(d.EstPRDN * 100))
	}
	return d
}

// countDuplicate records one suppressed duplicate arrival.
func (r *Receiver) countDuplicate() {
	r.stats.Duplicates++
	if r.met != nil {
		r.met.duplicates.Inc()
	}
}

// bumpOutage extends the current undecoded run by n windows.
func (r *Receiver) bumpOutage(n int) {
	r.outage += n
	if r.outage > r.stats.LongestOutage {
		r.stats.LongestOutage = r.outage
	}
}

// closeGapIfCaughtUp ends the stall episode once every produced window
// has been released or abandoned and nothing is parked in the buffer.
func (r *Receiver) closeGapIfCaughtUp() {
	if r.gap == nil {
		return
	}
	if len(r.buf) == 0 && r.epoch+int(r.expected) >= r.slot {
		r.stats.RecoveryWindows = append(r.stats.RecoveryWindows, r.slot-r.gap.openedSlot+1)
		if r.met != nil {
			r.met.recoverySlots.Observe(int64(r.slot - r.gap.openedSlot + 1))
		}
		r.gap = nil
	}
}

// abandonTo gives up on the windows in [expected, to): they can no
// longer arrive (or retransmission is exhausted). Buffered successors
// are then drained; desynchronized deltas among them fail decode and
// the next key frame resynchronizes.
func (r *Receiver) abandonTo(to uint32) []Decoded {
	if to <= r.expected {
		return nil
	}
	n := int(to - r.expected)
	r.stats.Abandoned += n
	if r.met != nil {
		r.met.abandoned.Add(int64(n))
	}
	r.bumpOutage(n)
	r.noteLost(n)
	r.expected = to
	// Drop buffered packets the jump overtook (deltas parked behind the
	// key frame we skipped to): they are already counted abandoned, and
	// leaving them would wedge the buffer forever.
	//csecg:orderok unconditional filter; result is order-independent
	for seq := range r.buf {
		if seq < r.expected {
			delete(r.buf, seq)
		}
	}
	return r.drain()
}

// earliestBufferedKey returns the smallest buffered key-frame sequence.
func (r *Receiver) earliestBufferedKey() (uint32, bool) {
	var min uint32
	found := false
	//csecg:orderok min reduction, independent of iteration order
	for seq, pkt := range r.buf {
		if pkt.Kind == core.KindKey && (!found || seq < min) {
			min = seq
			found = true
		}
	}
	return min, found
}

// minBuffered returns the smallest buffered sequence number.
func (r *Receiver) minBuffered() (uint32, bool) {
	var min uint32
	found := false
	//csecg:orderok min reduction, independent of iteration order
	for seq := range r.buf {
		if !found || seq < min {
			min = seq
			found = true
		}
	}
	return min, found
}

// EndSlot marks the end of one window period: the mote has produced
// (and the channel has delivered, dropped or delayed) exactly one more
// window. It returns the control packets to send on the uplink, plus
// any windows released by abandoning a hopeless gap.
func (r *Receiver) EndSlot() ([]*core.Packet, []Decoded) {
	before := r.Health()
	defer func() { r.syncHealth(before) }()
	r.slot++
	if r.rec != nil {
		r.rec.RecordSlot(r.slot)
	}
	r.recentIdx = (r.recentIdx + 1) % recentSlots
	r.recent[r.recentIdx] = 0
	// A fresh slot brings a fresh decode budget: work off the admission
	// queue's backlog before any gap/control decisions.
	r.decodesLeft = r.cfg.DecodesPerSlot
	released := r.pump()
	r.closeGapIfCaughtUp()
	if r.epoch+int(r.expected) >= r.slot && len(r.buf) == 0 {
		// Fully caught up (gap already closed by drain).
		return nil, released
	}
	if r.gap == nil {
		r.gap = &gapState{
			openedSlot: r.slot,
			first:      r.expected,
			nextRetry:  r.slot,
			backoff:    r.cfg.BackoffWindows,
		}
		r.stats.Gaps++
		if r.met != nil {
			r.met.gaps.Inc()
		}
	}
	g := r.gap
	if !r.cfg.NACK {
		// No control channel: hold briefly for reordered late
		// arrivals, then fall back to the scheduled key frame.
		if r.slot-g.openedSlot+1 >= r.cfg.WaitWindows {
			return nil, append(released, r.abandonBehindBuffer()...)
		}
		return nil, released
	}
	if g.passive {
		return nil, append(released, r.abandonBehindBuffer()...)
	}
	if ks, ok := r.earliestBufferedKey(); ok {
		// A guaranteed resync point is already in hand. Give the last
		// NACK's retransmits one backoff round to restore the full
		// history; once the NACK ladder is exhausted or the round
		// expires, jumping to the key frame beats stalling the display.
		if g.retries >= r.cfg.MaxRetries || r.slot >= g.nextRetry {
			return nil, append(released, r.abandonTo(ks)...)
		}
		return nil, released
	}
	if r.slot < g.nextRetry {
		return nil, released
	}
	if g.retries < r.cfg.MaxRetries {
		g.retries++
		g.nextRetry = r.slot + g.backoff
		g.backoff *= 2
		r.stats.NacksSent++
		if r.met != nil {
			r.met.nacks.Inc()
		}
		return []*core.Packet{core.NewNack(r.expected, r.missingCount())}, released
	}
	if g.keyRetries < r.cfg.MaxRetries {
		g.keyRetries++
		g.nextRetry = r.slot + g.backoff
		g.backoff *= 2
		r.stats.KeyRequestsSent++
		if r.met != nil {
			r.met.keyRequests.Inc()
		}
		return []*core.Packet{core.NewKeyRequest(r.expected)}, released
	}
	// Both request ladders exhausted (the control channel itself is
	// too lossy): degrade gracefully to the scheduled key frame.
	g.passive = true
	return nil, append(released, r.abandonBehindBuffer()...)
}

// abandonBehindBuffer abandons the missing windows in front of the
// earliest buffered packet, letting the stream limp forward on whatever
// arrived (deltas fail desynchronized; a key frame resyncs).
func (r *Receiver) abandonBehindBuffer() []Decoded {
	if min, ok := r.minBuffered(); ok {
		return r.abandonTo(min)
	}
	return nil
}

// missingCount sizes a NACK: the contiguous missing run at expected,
// bounded by the first buffered successor or the newest sequence seen.
func (r *Receiver) missingCount() int {
	end := r.maxSeen + 1
	if min, ok := r.minBuffered(); ok && min < end {
		end = min
	}
	if end <= r.expected {
		return 1
	}
	return int(end - r.expected)
}

// Close finalizes the session: missing trailing windows are abandoned
// and the last gap episode's latency is recorded.
func (r *Receiver) Close() []Decoded {
	before := r.Health()
	defer func() { r.syncHealth(before) }()
	// The final flush ignores the per-slot decode budget: everything
	// admitted is decoded before the session ends.
	r.decodesLeft = int(^uint(0) >> 1)
	out := r.pump()
	// Each abandonBehindBuffer consumes at least the earliest buffered
	// packet, so this terminates even across multiple holes.
	for len(r.buf) > 0 {
		out = append(out, r.abandonBehindBuffer()...)
	}
	if r.epoch+int(r.expected) < r.slot {
		n := r.slot - r.epoch - int(r.expected)
		r.stats.Abandoned += n
		if r.met != nil {
			r.met.abandoned.Add(int64(n))
		}
		r.bumpOutage(n)
		r.noteLost(n)
		r.expected = uint32(r.slot - r.epoch)
	}
	r.closeGapIfCaughtUp()
	return out
}
