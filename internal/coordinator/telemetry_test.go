package coordinator

import (
	"testing"

	"csecg/internal/core"
	"csecg/internal/ecg"
	"csecg/internal/metrics"
	"csecg/internal/telemetry"
)

// TestDecoderInstrumentationAndIterationTrace round-trips real windows
// through an instrumented decoder and checks both the registry metrics
// and the per-iteration solver trace attached to each result.
func TestDecoderInstrumentationAndIterationTrace(t *testing.T) {
	params := core.Params{Seed: 9, M: metrics.MForCR(50, core.WindowSize)}
	enc, err := core.NewEncoder(params)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := NewRealTimeDecoder(params, NEON)
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	clk := telemetry.NewManualClock(0)
	dec.Instrument(reg, clk)
	dec.EnableIterationTrace()

	rec, err := ecg.RecordByID("100")
	if err != nil {
		t.Fatal(err)
	}
	samples, err := rec.Channel256(8, 0)
	if err != nil {
		t.Fatal(err)
	}
	decodes := 0
	for o := 0; o+core.WindowSize <= len(samples); o += core.WindowSize {
		pkt, err := enc.EncodeWindow(samples[o : o+core.WindowSize])
		if err != nil {
			t.Fatal(err)
		}
		res, err := dec.Decode(pkt)
		if err != nil {
			t.Fatal(err)
		}
		decodes++
		if len(res.IterTrace) != res.Iterations {
			t.Fatalf("window %d: IterTrace has %d samples, solver ran %d iterations",
				pkt.Seq, len(res.IterTrace), res.Iterations)
		}
		for i, s := range res.IterTrace {
			if s.Residual < 0 {
				t.Fatalf("window %d iteration %d: negative residual %v", pkt.Seq, i, s.Residual)
			}
		}
	}
	if decodes < 2 {
		t.Fatal("test needs at least two windows")
	}
	if got := reg.Counter("coordinator_decodes_total").Load(); got != int64(decodes) {
		t.Errorf("decode counter %d, want %d", got, decodes)
	}
	ih := reg.Histogram("coordinator_iterations")
	if ih.Count() != int64(decodes) || ih.Max() == 0 {
		t.Errorf("iteration histogram count %d max %d, want %d observations", ih.Count(), ih.Max(), decodes)
	}
	if reg.Histogram("coordinator_decode_modeled_ns").Count() != int64(decodes) {
		t.Error("modeled-time histogram missing observations")
	}
	// The manual clock never advances, so measured wall time is zero but
	// still observed once per decode.
	if reg.Histogram("coordinator_solve_wall_ns").Count() != int64(decodes) {
		t.Error("solve wall-time histogram missing observations")
	}
}

// TestDecoderIterTraceIsolatedPerResult ensures each result carries its
// own copy — decoding the next window must not mutate a prior trace.
func TestDecoderIterTraceIsolatedPerResult(t *testing.T) {
	params := core.Params{Seed: 9, M: metrics.MForCR(50, core.WindowSize)}
	enc, err := core.NewEncoder(params)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := NewRealTimeDecoder(params, NEON)
	if err != nil {
		t.Fatal(err)
	}
	dec.EnableIterationTrace()
	rec, err := ecg.RecordByID("101")
	if err != nil {
		t.Fatal(err)
	}
	samples, err := rec.Channel256(4, 0)
	if err != nil {
		t.Fatal(err)
	}
	pkt1, err := enc.EncodeWindow(samples[:core.WindowSize])
	if err != nil {
		t.Fatal(err)
	}
	res1, err := dec.Decode(pkt1)
	if err != nil {
		t.Fatal(err)
	}
	first := append([]float64(nil), res1.IterTrace[0].Objective, res1.IterTrace[len(res1.IterTrace)-1].Objective)
	pkt2, err := enc.EncodeWindow(samples[core.WindowSize : 2*core.WindowSize])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dec.Decode(pkt2); err != nil {
		t.Fatal(err)
	}
	if res1.IterTrace[0].Objective != first[0] ||
		res1.IterTrace[len(res1.IterTrace)-1].Objective != first[1] {
		t.Error("second decode mutated the first result's IterTrace")
	}
}
