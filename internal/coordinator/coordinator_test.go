package coordinator

import (
	"math"
	"testing"

	"csecg/internal/core"
	"csecg/internal/ecg"
	"csecg/internal/metrics"
)

func TestIterationBudgetsMatchPaper(t *testing.T) {
	p := core.Params{M: metrics.MForCR(50, core.WindowSize)}
	c := DefaultCosts()
	vfp := c.IterationBudget(p, VFP, RealTimeBudgetSeconds)
	neon := c.IterationBudget(p, NEON, RealTimeBudgetSeconds)
	// Paper: ≈800 iterations without optimizations, ≈2000 with.
	if vfp < 700 || vfp > 950 {
		t.Errorf("VFP budget %d, want ≈800", vfp)
	}
	if neon < 1800 || neon > 2300 {
		t.Errorf("NEON budget %d, want ≈2000", neon)
	}
}

func TestSpeedupMatchesPaper(t *testing.T) {
	s := Speedup(core.Params{M: metrics.MForCR(50, core.WindowSize)})
	if math.Abs(s-2.43) > 0.01 {
		t.Errorf("modeled speedup %v, want 2.43", s)
	}
}

func TestMACsPerIterationScales(t *testing.T) {
	base := MACsPerIteration(core.Params{M: 256})
	moreMeas := MACsPerIteration(core.Params{M: 384})
	heavierPhi := MACsPerIteration(core.Params{M: 256, D: 24})
	if moreMeas <= base {
		t.Error("MACs not increasing in M")
	}
	if heavierPhi <= base {
		t.Error("MACs not increasing in d")
	}
	// Zero-value params resolve to defaults rather than zero work.
	if MACsPerIteration(core.Params{}) <= 0 {
		t.Error("default params produced non-positive MAC count")
	}
}

func TestModeString(t *testing.T) {
	if VFP.String() != "VFP" || NEON.String() != "NEON" {
		t.Error("mode names wrong")
	}
}

func TestRealTimeDecoderEndToEnd(t *testing.T) {
	params := core.Params{Seed: 5, M: metrics.MForCR(50, core.WindowSize)}
	enc, err := core.NewEncoder(params)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := NewRealTimeDecoder(params, NEON)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Mode() != NEON {
		t.Error("mode not recorded")
	}
	rec, err := ecg.RecordByID("100")
	if err != nil {
		t.Fatal(err)
	}
	samples, err := rec.Channel256(14, 0)
	if err != nil {
		t.Fatal(err)
	}
	for o := 0; o+core.WindowSize <= len(samples); o += core.WindowSize {
		pkt, err := enc.EncodeWindow(samples[o : o+core.WindowSize])
		if err != nil {
			t.Fatal(err)
		}
		res, err := dec.Decode(pkt)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Deadline {
			t.Errorf("packet %d missed the 1 s deadline: %v", pkt.Seq, res.ModeledTime)
		}
		if res.Iterations > dec.IterationBudget() {
			t.Errorf("iterations %d exceed budget %d", res.Iterations, dec.IterationBudget())
		}
	}
	// Paper: 17.7% average CPU at CR=50 (NEON). Accept the right regime.
	cpu := dec.AverageCPUUsage()
	if cpu <= 0.02 || cpu >= 0.5 {
		t.Errorf("average coordinator CPU %.1f%%, want tens of percent", cpu*100)
	}
	t.Logf("NEON coordinator CPU at CR=50: %.1f%%", cpu*100)
}

func TestVFPSlowerThanNEON(t *testing.T) {
	p := core.Params{M: 256}
	c := DefaultCosts()
	if c.IterationTime(p, VFP) <= c.IterationTime(p, NEON) {
		t.Error("VFP iteration not slower than NEON")
	}
	if c.DecodeTime(p, VFP, 100) != 100*c.IterationTime(p, VFP) {
		t.Error("DecodeTime not linear in iterations")
	}
}

func TestSimulateDisplayHealthy(t *testing.T) {
	// 30 packets, decode always 0.4 s (the Fig. 7 regime): no underruns
	// after startup, occupancy within the 6 s buffer, latency < buffer.
	times := make([]float64, 30)
	for i := range times {
		times[i] = 0.4
	}
	rep, err := SimulateDisplay(DisplayConfig{}, 2.0, times)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Underruns != 0 {
		t.Errorf("healthy run has %d underruns", rep.Underruns)
	}
	if rep.Overflows != 0 {
		t.Errorf("healthy run has %d overflows", rep.Overflows)
	}
	if rep.MaxOccupancySeconds > 6 {
		t.Errorf("occupancy %v exceeds 6 s buffer", rep.MaxOccupancySeconds)
	}
	if rep.EndToEndLatency > 6 {
		t.Errorf("latency %v exceeds buffer depth", rep.EndToEndLatency)
	}
	if rep.DrawnSeconds < 50 {
		t.Errorf("drew only %v s of 60", rep.DrawnSeconds)
	}
}

func TestSimulateDisplayOverloadedDecoder(t *testing.T) {
	// Decode slower than real time (2.5 s per 2 s packet): the consumer
	// must starve.
	times := make([]float64, 20)
	for i := range times {
		times[i] = 2.5
	}
	rep, err := SimulateDisplay(DisplayConfig{}, 2.0, times)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Underruns == 0 {
		t.Error("overloaded decoder produced no underruns")
	}
}

func TestSimulateDisplayErrors(t *testing.T) {
	if _, err := SimulateDisplay(DisplayConfig{}, 0, []float64{0.1}); err == nil {
		t.Error("zero period accepted")
	}
	if _, err := SimulateDisplay(DisplayConfig{}, 2, nil); err == nil {
		t.Error("empty decode times accepted")
	}
	if _, err := SimulateDisplay(DisplayConfig{}, 2, []float64{-1}); err == nil {
		t.Error("negative decode time accepted")
	}
}

func TestSimulateDisplayDrainRateSufficient(t *testing.T) {
	// 4 px / 15 ms = 266.7 samples/s > 256 samples/s: the consumer keeps
	// up, so occupancy must stay bounded over a long run.
	times := make([]float64, 200)
	for i := range times {
		times[i] = 0.3
	}
	rep, err := SimulateDisplay(DisplayConfig{}, 2.0, times)
	if err != nil {
		t.Fatal(err)
	}
	if rep.MaxOccupancySeconds > 6 {
		t.Errorf("long-run occupancy %v s grows beyond buffer", rep.MaxOccupancySeconds)
	}
}

func TestSolverTuningAccess(t *testing.T) {
	dec, err := NewRealTimeDecoder(core.Params{Seed: 1}, VFP)
	if err != nil {
		t.Fatal(err)
	}
	inner, err := dec.SolverTuning()
	if err != nil || inner == nil {
		t.Fatal("SolverTuning failed")
	}
	if inner.SolverOptions.Vectorized {
		t.Error("VFP decoder should use scalar kernels")
	}
}

func BenchmarkSimulateDisplay200Packets(b *testing.B) {
	times := make([]float64, 200)
	for i := range times {
		times[i] = 0.4
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SimulateDisplay(DisplayConfig{}, 2.0, times); err != nil {
			b.Fatal(err)
		}
	}
}
