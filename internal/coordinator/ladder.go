package coordinator

import (
	"csecg/internal/solver"
	"csecg/internal/telemetry"
)

// Rung indexes the coordinator's degradation ladder. Under deadline
// pressure the decoder walks down — trading reconstruction quality for
// per-window decode time — and climbs back up once decodes fit the
// budget again. Overload costs quality, never availability.
type Rung int

// Ladder rungs, best first.
const (
	// RungNominal runs the paper's configuration: FISTA (with
	// continuation on cold starts) at the full iteration budget.
	RungNominal Rung = iota
	// RungReducedIter halves the iteration budget, keeping FISTA.
	RungReducedIter
	// RungGPSR switches to GPSR at the halved budget: its BB-stepped
	// projected-gradient iterations make more early progress per
	// iteration at the ladder's operating λ.
	RungGPSR
	// RungBestEffort is the floor: GPSR at a quarter budget. Every
	// window still produces samples — flagged Degraded — so the display
	// never starves.
	RungBestEffort

	numRungs
)

// String names the rung for telemetry and status endpoints.
func (r Rung) String() string {
	switch r {
	case RungNominal:
		return "nominal"
	case RungReducedIter:
		return "reduced-iter"
	case RungGPSR:
		return "gpsr"
	case RungBestEffort:
		return "best-effort"
	}
	return "unknown"
}

// SolverStage names the rung's solver configuration as
// algorithm/iter-divisor ("fista/1", "fista/2", "gpsr/2", "gpsr/4") —
// the depth-1 solver-leaf stage of the causal span trace
// (telemetry.SolverStage*; a test pins the two lists together). The
// strings are constants, so hotpath span capture never allocates.
//
//csecg:hotpath
func (r Rung) SolverStage() string {
	switch r {
	case RungReducedIter:
		return telemetry.SolverStageFISTA2
	case RungGPSR:
		return telemetry.SolverStageGPSR2
	case RungBestEffort:
		return telemetry.SolverStageGPSR4
	}
	return telemetry.SolverStageFISTA1
}

// Algorithm returns the sparse-recovery algorithm the rung runs.
func (r Rung) Algorithm() solver.Algorithm {
	if r < 0 || r >= numRungs {
		return solver.AlgoFISTA
	}
	return rungSettings[r].algo
}

// rungSetting is one rung's solver configuration: the algorithm and the
// divisor applied to the nominal iteration budget.
type rungSetting struct {
	algo    solver.Algorithm
	iterDiv int
}

var rungSettings = [numRungs]rungSetting{
	RungNominal:     {solver.AlgoFISTA, 1},
	RungReducedIter: {solver.AlgoFISTA, 2},
	RungGPSR:        {solver.AlgoGPSR, 2},
	RungBestEffort:  {solver.AlgoGPSR, 4},
}

// Ladder hysteresis: escalate after escalateAfterMisses consecutive
// modeled-deadline misses, de-escalate after deescalateAfterHits
// consecutive hits. The asymmetry keeps the ladder from oscillating
// when load sits near a rung boundary.
const (
	escalateAfterMisses = 2
	deescalateAfterHits = 8
)

// ladder is the per-decoder degradation state machine. With the default
// cost calibration the iteration budget is derived from the real-time
// budget, every decode meets its modeled deadline, and the ladder never
// leaves RungNominal — it engages only when SetCosts models a slowed
// CPU (thermal throttling, contention, the chaos harness).
type ladder struct {
	rung                  Rung
	missStreak, hitStreak int
}

// observe feeds one decode's deadline outcome to the state machine and
// reports whether the rung changed.
func (l *ladder) observe(metDeadline bool) bool {
	if metDeadline {
		l.missStreak = 0
		l.hitStreak++
		if l.hitStreak >= deescalateAfterHits && l.rung > RungNominal {
			l.rung--
			l.hitStreak = 0
			return true
		}
		return false
	}
	l.hitStreak = 0
	l.missStreak++
	if l.missStreak >= escalateAfterMisses && l.rung < numRungs-1 {
		l.rung++
		l.missStreak = 0
		return true
	}
	return false
}
