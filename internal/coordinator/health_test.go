package coordinator

import (
	"testing"

	"csecg/internal/telemetry"
)

// TestHealthTransitionsUnderBurstLoss drives the receiver through the
// full health graph — starting → decoding (keyed) → degraded (forced
// burst loss) → decoding (recovered) — and checks the gauge and
// recovery counter track it.
func TestHealthTransitionsUnderBurstLoss(t *testing.T) {
	enc, rx := transportRig(t, 4, TransportConfig{})
	reg := telemetry.NewRegistry()
	rx.Instrument(reg)
	pkts := encodeN(t, enc, 12)

	if got := rx.Health(); got != HealthStarting {
		t.Fatalf("before any packet: health %v, want starting", got)
	}

	// Windows 0-1 arrive cleanly: the coordinator keys and decodes.
	for _, p := range pkts[:2] {
		push(t, rx, p)
		rx.EndSlot()
	}
	if got := rx.Health(); got != HealthDecoding {
		t.Fatalf("after clean windows: health %v, want decoding", got)
	}
	if g := reg.Gauge("transport_health_state").Load(); g != int64(HealthDecoding) {
		t.Errorf("health gauge %d, want %d", g, HealthDecoding)
	}

	// Forced burst: windows 2-3 are destroyed on the channel. The first
	// slot that ends with the stream behind opens a gap episode.
	rx.EndSlot()
	if got := rx.Health(); got != HealthDegraded {
		t.Fatalf("during burst: health %v, want degraded", got)
	}
	if g := reg.Gauge("transport_health_state").Load(); g != int64(HealthDegraded) {
		t.Errorf("health gauge %d, want %d", g, HealthDegraded)
	}
	rx.EndSlot()

	// The burst ends: window 4 is the scheduled key frame, buffered
	// behind the gap until the no-NACK wait expires, then the stream
	// abandons the lost windows and resynchronizes.
	push(t, rx, pkts[4])
	for i := 0; i < 4 && rx.Health() != HealthDecoding; i++ {
		rx.EndSlot()
	}
	if got := rx.Health(); got != HealthDecoding {
		t.Fatalf("after resync: health %v, want decoding (recovered)", got)
	}
	st := rx.Stats()
	if st.Recoveries != 1 {
		t.Errorf("recoveries = %d, want 1", st.Recoveries)
	}
	if c := reg.Counter("transport_recoveries_total").Load(); c != 1 {
		t.Errorf("recoveries counter = %d, want 1", c)
	}
	if st.Abandoned == 0 || st.Gaps != 1 {
		t.Errorf("burst accounting: %+v", st)
	}

	// Clean tail: stays decoding, no further gap episodes.
	for _, p := range pkts[5:] {
		push(t, rx, p)
		rx.EndSlot()
	}
	if got := rx.Health(); got != HealthDecoding {
		t.Errorf("clean tail: health %v, want decoding", got)
	}
	if got := rx.Stats().Gaps; got != 1 {
		t.Errorf("gaps = %d, want 1", got)
	}
}

// TestHealthGapRateWindow checks the sliding loss-rate observable decays
// back to zero as clean slots push the burst out of the window.
func TestHealthGapRateWindow(t *testing.T) {
	enc, rx := transportRig(t, 4, TransportConfig{WaitWindows: 1})
	pkts := encodeN(t, enc, recentSlots+8)

	// Key the stream, then lose windows 1-2.
	push(t, rx, pkts[0])
	rx.EndSlot()
	rx.EndSlot()
	rx.EndSlot()
	// Window 3 arrives; WaitWindows=1 abandons the hole immediately.
	push(t, rx, pkts[3])
	rx.EndSlot()
	if got := rx.GapRate(); got == 0 {
		t.Fatal("gap rate stayed zero through a burst")
	}
	// A full clean window of slots later the loss has aged out.
	for i := 4; i < 4+recentSlots; i++ {
		push(t, rx, pkts[i])
		rx.EndSlot()
	}
	if got := rx.GapRate(); got != 0 {
		t.Errorf("gap rate %v after %d clean slots, want 0", got, recentSlots)
	}
}
