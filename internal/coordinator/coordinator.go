// Package coordinator models the decoder-side platform: an iPhone
// 3GS-class WBSN coordinator (ARM Cortex-A8 at 600 MHz) running the
// float32 FISTA reconstruction in real time.
//
// The reconstruction itself is executed by internal/core at genuine
// float32 precision; this package adds the platform bookkeeping the
// paper evaluates:
//
//   - a calibrated cycle model for the solver's multiply-accumulate
//     traffic under the scalar VFP unit versus the NEON SIMD engine
//     (the paper's measured end-to-end gain of the Section IV-B
//     vectorization work is 2.43× at CR = 50);
//   - the real-time iteration budget: reconstruction may spend at most
//     1 second per 2-second packet, which admits ≈800 iterations on the
//     VFP path and ≈2000 on the NEON path;
//   - the producer-consumer display application: a 6-second shared
//     sample buffer (2 s being decoded + 2 s being drawn + 2 s of
//     display latency) drained 4 pixels every 15 ms.
package coordinator

import (
	"fmt"
	"time"

	"csecg/internal/core"
	"csecg/internal/solver"
	"csecg/internal/telemetry"
)

// ClockHz is the Cortex-A8 clock of the iPhone 3GS.
const ClockHz = 600e6

// RealTimeBudgetSeconds is the decode-time allowance per 2-second packet.
const RealTimeBudgetSeconds = 1.0

// Mode selects the floating-point execution model.
type Mode int

// Execution modes.
const (
	// VFP is the scalar Vector Floating Point unit: a single-precision
	// multiply-accumulate occupies 18-21 cycles (non-pipelined).
	VFP Mode = iota
	// NEON is the 4-wide SIMD engine programmed with the Section IV-B
	// vectorization techniques (loop peeling, if-conversion, outer-loop
	// vectorization).
	NEON
)

// String names the mode.
func (m Mode) String() string {
	if m == NEON {
		return "NEON"
	}
	return "VFP"
}

// CostModel is the effective per-MAC cycle cost of the FISTA inner
// loops, including address generation and load/store traffic (which is
// why the NEON figure is far above the theoretical 0.5 cycles/MAC: the
// engine retires 2 MACs per cycle but the loops are memory-bound). The
// defaults are calibrated to the paper's two anchors: ≈800 VFP
// iterations fit the 1-second budget, and the NEON path is 2.43× faster.
type CostModel struct {
	VFPCyclesPerMAC  float64
	NEONCyclesPerMAC float64
}

// DefaultCosts returns the calibrated cost model.
func DefaultCosts() CostModel {
	return CostModel{VFPCyclesPerMAC: 23.0, NEONCyclesPerMAC: 23.0 / 2.43}
}

// MACsPerIteration counts the multiply-accumulate operations of one
// FISTA iteration for the given pipeline parameters: one operator apply
// and one adjoint apply (each a wavelet filter-bank pass plus a sparse
// measurement pass) plus the vector arithmetic of the prox and momentum
// steps.
func MACsPerIteration(p core.Params) int64 {
	n := int64(p.N)
	if n == 0 {
		n = core.WindowSize
	}
	m := int64(p.M)
	if m == 0 {
		m = n / 2
	}
	d := int64(p.D)
	if d == 0 {
		d = core.DefaultColumnWeight
	}
	var basisMACs int64
	if p.Basis == core.BasisDCT {
		// Dense orthonormal DCT: N² MACs per transform pass.
		basisMACs = n * n
	} else {
		order := int64(p.WaveletOrder)
		if order == 0 {
			order = core.DefaultWaveletOrder
		}
		levels := p.WaveletLevels
		if levels == 0 {
			levels = core.DefaultWaveletLevels
		}
		filterLen := 2 * order
		// Filter-bank MACs: each level processes a block of n_j samples
		// at filterLen MACs per sample (low and high band together);
		// Σ n_j = 2N − N/2^{levels−1}.
		blockSum := 2*n - n>>uint(levels-1)
		basisMACs = blockSum * filterLen
	}
	sparseMACs := n * d
	gradient := 2 * (basisMACs + sparseMACs) // apply + adjoint
	vectorOps := 7*n + m                     // residual, prox, momentum, convergence
	return gradient + vectorOps
}

// IterationTime returns the modeled wall time of one FISTA iteration.
func (c CostModel) IterationTime(p core.Params, mode Mode) time.Duration {
	per := c.VFPCyclesPerMAC
	if mode == NEON {
		per = c.NEONCyclesPerMAC
	}
	cycles := float64(MACsPerIteration(p)) * per
	return time.Duration(cycles / ClockHz * float64(time.Second))
}

// IterationBudget returns the largest iteration count whose modeled
// decode time fits budgetSeconds (the paper's real-time constraint with
// budgetSeconds = 1).
func (c CostModel) IterationBudget(p core.Params, mode Mode, budgetSeconds float64) int {
	it := c.IterationTime(p, mode).Seconds()
	if it <= 0 {
		return 0
	}
	return int(budgetSeconds / it)
}

// DecodeTime returns the modeled time of a decode that ran iters
// iterations.
func (c CostModel) DecodeTime(p core.Params, mode Mode, iters int) time.Duration {
	return time.Duration(float64(iters) * float64(c.IterationTime(p, mode)))
}

// RealTimeDecoder wraps the float32 pipeline decoder with the platform
// model: the iteration cap is set from the mode's real-time budget and
// every decode reports its modeled on-device time and CPU share.
type RealTimeDecoder struct {
	dec   *core.Decoder[float32]
	costs CostModel
	mode  Mode

	totalModeled time.Duration
	packets      int64

	// baseMaxIter is the nominal (RungNominal) iteration budget; the
	// degradation ladder divides it per rung.
	baseMaxIter int
	lad         ladder
	// solveBudgetNs, when nonzero, arms the solver's soft wall-clock
	// deadline for each decode (EnableSolveDeadline).
	solveBudgetNs int64

	met       *decoderMetrics
	clock     telemetry.Clock
	iterTrace bool
	curTrace  []solver.IterSample
}

// decoderMetrics caches the telemetry pointers the decode path records
// into.
type decoderMetrics struct {
	decodes, failures, deadlineMisses  *telemetry.Counter
	degraded, rungShifts               *telemetry.Counter
	rung                               *telemetry.Gauge
	iterations, modeledNs, solveWallNs *telemetry.Histogram
}

// NewRealTimeDecoder builds the platform decoder. The NEON mode uses the
// 4-wide solver kernels, VFP the scalar ones, mirroring the two builds
// the paper compares.
func NewRealTimeDecoder(p core.Params, mode Mode) (*RealTimeDecoder, error) {
	dec, err := core.NewDecoder[float32](p)
	if err != nil {
		return nil, err
	}
	costs := DefaultCosts()
	dec.SolverOptions.Vectorized = mode == NEON
	dec.SolverOptions.MaxIter = costs.IterationBudget(dec.Params(), mode, RealTimeBudgetSeconds)
	return &RealTimeDecoder{dec: dec, costs: costs, mode: mode, baseMaxIter: dec.SolverOptions.MaxIter}, nil
}

// SetCosts overrides the cycle-cost calibration — the chaos harness
// models a slowed CPU (thermal throttling, contention) this way. The
// iteration budget is left at the nominal calibration, so a slowdown
// makes decodes miss their modeled deadline and engages the
// degradation ladder.
func (r *RealTimeDecoder) SetCosts(c CostModel) { r.costs = c }

// Costs returns the cycle-cost calibration in use.
func (r *RealTimeDecoder) Costs() CostModel { return r.costs }

// EnableSolveDeadline arms a soft wall-clock deadline of budget per
// decode on the instrumented clock: the solver stops at the deadline
// and the window is released with its best-so-far reconstruction,
// flagged Degraded. Call after Instrument when a deterministic clock is
// wanted; without Instrument the wall clock is used.
func (r *RealTimeDecoder) EnableSolveDeadline(budget time.Duration) {
	r.solveBudgetNs = int64(budget)
}

// Rung returns the degradation ladder's current rung.
func (r *RealTimeDecoder) Rung() Rung { return r.lad.rung }

// Instrument attaches session telemetry. The clock times the actual
// host-side solve (nil → telemetry.WallClock); inject a ManualClock for
// reproducible tests. A nil registry detaches.
func (r *RealTimeDecoder) Instrument(reg *telemetry.Registry, clock telemetry.Clock) {
	if reg == nil {
		r.met = nil
		return
	}
	if clock == nil {
		clock = telemetry.WallClock{}
	}
	r.clock = clock
	r.met = &decoderMetrics{
		decodes:        reg.Counter("coordinator_decodes_total"),
		failures:       reg.Counter("coordinator_decode_failures_total"),
		deadlineMisses: reg.Counter("coordinator_deadline_misses_total"),
		degraded:       reg.Counter("coordinator_degraded_windows_total"),
		rungShifts:     reg.Counter("coordinator_rung_shifts_total"),
		rung:           reg.Gauge("coordinator_degradation_rung"),
		iterations:     reg.Histogram("coordinator_iterations"),
		modeledNs:      reg.Histogram("coordinator_decode_modeled_ns"),
		solveWallNs:    reg.Histogram("coordinator_solve_wall_ns"),
	}
	reg.SetHelp("coordinator_degraded_windows_total", "windows released with reduced-quality reconstruction (ladder rung > nominal or solver deadline cut)")
	reg.SetHelp("coordinator_rung_shifts_total", "degradation ladder transitions in either direction")
	reg.SetHelp("coordinator_degradation_rung", "current ladder rung: 0 nominal, 1 reduced-iter, 2 gpsr, 3 best-effort")
}

// EnableIterationTrace makes every decode collect the solver's
// per-iteration telemetry (objective, residual, step) into
// Result.IterTrace. It costs one extra operator apply per iteration.
func (r *RealTimeDecoder) EnableIterationTrace() {
	r.iterTrace = true
	r.dec.SolverOptions.Trace = func(iter int, s solver.IterSample) {
		r.curTrace = append(r.curTrace, s)
	}
}

// Params returns the resolved pipeline parameters.
func (r *RealTimeDecoder) Params() core.Params { return r.dec.Params() }

// Mode returns the execution model in use.
func (r *RealTimeDecoder) Mode() Mode { return r.mode }

// IterationBudget returns the decoder's per-packet iteration cap.
func (r *RealTimeDecoder) IterationBudget() int { return r.dec.SolverOptions.MaxIter }

// Result augments the pipeline decode with platform figures.
type Result struct {
	*core.DecodeResult[float32]
	// ModeledTime is the decode time under the cycle model.
	ModeledTime time.Duration
	// CPUUsage is ModeledTime over the 2-second packet period.
	CPUUsage float64
	// Deadline reports whether the decode met the 1-second budget.
	Deadline bool
	// SolveWallTime is the measured host-side solve duration on the
	// instrumented clock (0 when the decoder is not instrumented).
	SolveWallTime time.Duration
	// IterTrace carries the solver's per-iteration telemetry when
	// EnableIterationTrace was called.
	IterTrace []solver.IterSample
	// Rung is the degradation-ladder rung this window decoded at.
	Rung Rung
	// Degraded marks a reduced-quality release: the ladder was off
	// nominal, or the solver's soft deadline cut the recovery short.
	// The samples are still clinically displayable best-so-far output.
	Degraded bool
}

// Decode processes one packet at the ladder's current rung.
func (r *RealTimeDecoder) Decode(pkt *core.Packet) (*Result, error) {
	if r.iterTrace {
		r.curTrace = r.curTrace[:0]
	}
	rung := r.lad.rung
	s := rungSettings[rung]
	r.dec.Algorithm = s.algo
	if iter := r.baseMaxIter / s.iterDiv; iter >= 1 {
		r.dec.SolverOptions.MaxIter = iter
	} else {
		r.dec.SolverOptions.MaxIter = 1
	}
	if r.solveBudgetNs > 0 {
		clk := r.clock
		if clk == nil {
			clk = telemetry.WallClock{}
		}
		r.dec.SolverOptions.Now = clk.Now
		r.dec.SolverOptions.DeadlineNs = clk.Now() + r.solveBudgetNs
	}
	var start int64
	if r.met != nil {
		start = r.clock.Now()
	}
	res, err := r.dec.DecodePacket(pkt)
	var wall time.Duration
	if r.met != nil {
		wall = time.Duration(r.clock.Now() - start)
	}
	if err != nil {
		if r.met != nil {
			r.met.failures.Inc()
		}
		return nil, err
	}
	modeled := r.costs.DecodeTime(r.dec.Params(), r.mode, res.Iterations)
	r.totalModeled += modeled
	r.packets++
	period := float64(r.dec.Params().N) / core.FsMote
	out := &Result{
		DecodeResult:  res,
		ModeledTime:   modeled,
		CPUUsage:      modeled.Seconds() / period,
		Deadline:      modeled.Seconds() <= RealTimeBudgetSeconds,
		SolveWallTime: wall,
		Rung:          rung,
	}
	out.Degraded = rung != RungNominal || res.DeadlineExpired
	if r.iterTrace && len(r.curTrace) > 0 {
		out.IterTrace = append([]solver.IterSample(nil), r.curTrace...)
	}
	shifted := r.lad.observe(out.Deadline)
	if r.met != nil {
		r.met.decodes.Inc()
		if !out.Deadline {
			r.met.deadlineMisses.Inc()
		}
		if out.Degraded {
			r.met.degraded.Inc()
		}
		if shifted {
			r.met.rungShifts.Inc()
		}
		r.met.rung.Set(int64(r.lad.rung))
		r.met.iterations.Observe(int64(res.Iterations))
		r.met.modeledNs.Observe(int64(modeled))
		r.met.solveWallNs.Observe(int64(wall))
	}
	return out, nil
}

// AverageCPUUsage returns the mean modeled CPU share across all decoded
// packets (the paper reports 17.7 % at CR = 50).
func (r *RealTimeDecoder) AverageCPUUsage() float64 {
	if r.packets == 0 {
		return 0
	}
	period := float64(r.dec.Params().N) / core.FsMote
	return r.totalModeled.Seconds() / (float64(r.packets) * period)
}

// Speedup returns the modeled NEON-over-VFP gain for the configuration —
// by construction of the default calibration this reproduces the paper's
// 2.43× when both paths run the same iteration count.
func Speedup(p core.Params) float64 {
	c := DefaultCosts()
	return float64(c.IterationTime(p, VFP)) / float64(c.IterationTime(p, NEON))
}

// SolverTuning exposes the wrapped decoder's solver options for
// experiment harnesses (tolerance, λ, continuation).
func (r *RealTimeDecoder) SolverTuning() (*core.Decoder[float32], error) {
	if r.dec == nil {
		return nil, fmt.Errorf("coordinator: decoder not initialized")
	}
	return r.dec, nil
}
