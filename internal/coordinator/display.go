package coordinator

import (
	"fmt"
	"time"
)

// DisplayConfig describes the producer-consumer ECG viewer of Section
// IV-B.1: one thread receives and decodes packets into a shared sample
// buffer, a second thread wakes every DrawInterval to draw PixelsPerDraw
// new samples. The buffer must hold 6 seconds — 2 s being written, 2 s
// being read, and 2 s absorbed by the drawing hardware's latency.
type DisplayConfig struct {
	// BufferSeconds is the shared ring capacity (default 6).
	BufferSeconds float64
	// DrawInterval is the consumer period (default 15 ms).
	DrawInterval time.Duration
	// PixelsPerDraw is the samples consumed per wakeup (default 4).
	PixelsPerDraw int
	// SampleRate is the display's sample rate (default core.FsMote).
	SampleRate float64
	// StartupBuffer is how much signal the consumer waits for before
	// the first draw (default 4 s — two packets, the "2 s being
	// written plus 2 s being read" headroom of the paper's buffer
	// analysis; the remaining 2 s of the ring absorbs display latency).
	StartupBuffer float64
}

func (c DisplayConfig) withDefaults() DisplayConfig {
	if c.BufferSeconds == 0 {
		c.BufferSeconds = 6
	}
	if c.DrawInterval == 0 {
		c.DrawInterval = 15 * time.Millisecond
	}
	if c.PixelsPerDraw == 0 {
		c.PixelsPerDraw = 4
	}
	if c.SampleRate == 0 {
		c.SampleRate = 256
	}
	if c.StartupBuffer == 0 {
		c.StartupBuffer = 4
	}
	return c
}

// DisplayReport summarizes a simulated viewer run.
type DisplayReport struct {
	// Underruns counts draw wakeups that found too few samples.
	Underruns int
	// Overflows counts producer writes that would have overrun the ring.
	Overflows int
	// MaxOccupancySeconds is the peak buffered signal.
	MaxOccupancySeconds float64
	// DrawnSeconds is the signal actually displayed.
	DrawnSeconds float64
	// EndToEndLatency is the worst packet-arrival→drawn latency.
	EndToEndLatency float64
}

// SimulateDisplay runs a discrete-event simulation of the viewer:
// packet k (2 s of signal) finishes decoding at arrival k·period +
// decodeTimes[k]; the consumer drains the ring at its draw cadence. It
// returns an error for non-positive periods or missing decode times.
//
// The simulation is deterministic and runs in virtual time, so tests can
// sweep decode-time profiles without waiting out wall-clock seconds.
func SimulateDisplay(cfg DisplayConfig, packetPeriod float64, decodeTimes []float64) (*DisplayReport, error) {
	cfg = cfg.withDefaults()
	if packetPeriod <= 0 {
		return nil, fmt.Errorf("coordinator: packet period %v must be positive", packetPeriod)
	}
	if len(decodeTimes) == 0 {
		return nil, fmt.Errorf("coordinator: no decode times supplied")
	}
	samplesPerPacket := int(packetPeriod * cfg.SampleRate)
	capacity := int(cfg.BufferSeconds * cfg.SampleRate)
	rep := &DisplayReport{}

	// Producer events: the single decode thread starts packet k when it
	// has both arrived and the previous decode finished, so a decoder
	// slower than real time falls behind cumulatively.
	type ready struct {
		t       float64
		samples int
		arrival float64
	}
	events := make([]ready, len(decodeTimes))
	prevFinish := 0.0
	for k, dt := range decodeTimes {
		if dt < 0 {
			return nil, fmt.Errorf("coordinator: negative decode time at packet %d", k)
		}
		arrival := float64(k) * packetPeriod
		start := arrival
		if prevFinish > start {
			start = prevFinish
		}
		prevFinish = start + dt
		events[k] = ready{t: prevFinish, samples: samplesPerPacket, arrival: arrival}
	}
	// Consumer ticks. Each wakeup draws PixelsPerDraw pixels, which
	// advances the signal by SampleRate·DrawInterval samples (the
	// pixel-to-sample mapping is cosmetic); a fractional accumulator
	// keeps the long-run drain rate exactly real-time.
	drawDT := cfg.DrawInterval.Seconds()
	end := events[len(events)-1].t + packetPeriod
	samplesPerTick := cfg.SampleRate * drawDT

	occupied := 0
	drawn := 0
	var wantFrac float64
	started := false
	nextEvent := 0
	// Latency tracking: remember each packet's (readyTime, lastSample
	// cumulative index) to compute when its last sample is drawn.
	type span struct {
		arrival float64
		lastIdx int
	}
	var spans []span
	produced := 0
	for t := 0.0; t <= end; t += drawDT {
		// Deliver any packets that completed by t.
		for nextEvent < len(events) && events[nextEvent].t <= t {
			ev := events[nextEvent]
			if occupied+ev.samples > capacity {
				rep.Overflows++
				// Drop oldest to make room, as the real app's ring does.
				occupied = capacity - ev.samples
			}
			occupied += ev.samples
			produced += ev.samples
			spans = append(spans, span{arrival: ev.arrival, lastIdx: produced - 1})
			if occ := float64(occupied) / cfg.SampleRate; occ > rep.MaxOccupancySeconds {
				rep.MaxOccupancySeconds = occ
			}
			nextEvent++
		}
		if !started {
			if float64(occupied)/cfg.SampleRate >= cfg.StartupBuffer {
				started = true
			} else {
				continue
			}
		}
		// Draw: advance by the real-time sample budget of one tick.
		wantFrac += samplesPerTick
		want := int(wantFrac)
		wantFrac -= float64(want)
		if occupied >= want {
			occupied -= want
			drawn += want
			// Latency of any packet whose last sample was just drawn.
			for len(spans) > 0 && spans[0].lastIdx < drawn {
				if lat := t - spans[0].arrival; lat > rep.EndToEndLatency {
					rep.EndToEndLatency = lat
				}
				spans = spans[1:]
			}
		} else if nextEvent < len(events) {
			// Starved mid-stream: the trace visibly stalls; the unmet
			// demand is skipped, not queued (the display shows a gap).
			rep.Underruns++
			drawn += occupied
			occupied = 0
		}
	}
	rep.DrawnSeconds = float64(drawn) / cfg.SampleRate
	return rep, nil
}
