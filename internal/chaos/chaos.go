// Package chaos is the survival-layer proving ground: it drives the
// full mote → link → coordinator pipeline through fault cocktails —
// bit-flip corruption, Gilbert–Elliott burst loss, mote reboots, clock
// drift, modeled CPU slowdown under burst arrival, and injected decode
// panics — and reports whether the session survived on the layer's
// contract: zero escaped panics, a bounded admission queue, bounded
// decode latency, and health back to decoding by session end.
//
// Every run is deterministic: the faults come from the seeded channel
// model and the injectors below, the clocks are modeled, and nothing
// reads wall time or global randomness.
package chaos

import (
	"fmt"
	"math"
	"sort"
	"time"

	"csecg/internal/blackbox"
	"csecg/internal/coordinator"
	"csecg/internal/core"
	"csecg/internal/link"
	"csecg/internal/monitor"
	"csecg/internal/mote"
	"csecg/internal/rng"
	"csecg/internal/telemetry"
)

// Scenario is one fault cocktail over a synthetic monitoring session.
// The zero value (plus a Name) is a clean run.
type Scenario struct {
	Name string
	// Windows is the session length (default 96).
	Windows int

	// Channel faults (applied to the data downlink).
	BitFlipProb float64           // per-byte corruption probability
	DropProb    float64           // i.i.d. frame loss
	Burst       *link.BurstConfig // Gilbert–Elliott burst loss

	// ClockDriftPPM models the mote crystal's frequency error: when the
	// accumulated skew crosses a window period the mote has produced an
	// extra window within the coordinator's slot grid, which the driver
	// injects mid-session.
	ClockDriftPPM float64

	// RebootAt reboots the mote (sequence space restarts at a key
	// frame) before encoding the given window index (0 = never).
	RebootAt int

	// Slowdown multiplies the coordinator's modeled cycle costs during
	// the middle third of the session (≤ 1 = nominal). The solver
	// tolerance is pinned off so every decode spends its full iteration
	// budget — the worst-case window the ladder must absorb.
	Slowdown float64

	// BurstArrival delivers frames in batches of this many windows per
	// slot (0 or 1 = paced arrival), pressuring the admission queue.
	BurstArrival int

	// PanicEvery injects a decode panic on every n-th window (0 =
	// never); the containment path must absorb each one.
	PanicEvery int

	// Transport pressure: QueueLimit bounds the admission queue
	// (default 8) and DecodesPerSlot the decode budget per slot
	// (default 0 = unlimited).
	QueueLimit     int
	DecodesPerSlot int

	// Seed drives the channel model and the signal synthesizer.
	Seed uint64

	// Record, when non-nil, attaches a black-box flight recorder sized
	// by this config to the receive path, plus a quality SLO tracker
	// whose warn/page escalations trigger bundle seals — the
	// bundle-under-fault proving ground. Scenarios that perturb solver
	// costs mid-run (Slowdown > 1) are marked unreproducible so replay
	// refuses to diff them instead of reporting false divergence.
	Record *blackbox.Config

	// QualityBadPRDN overrides the paper's 9 % good/bad boundary for the
	// recorded quality SLO (0 = keep the decoder's Bad verdict). The
	// synthetic chaos signal reconstructs far inside the boundary even
	// under heavy loss, so scenarios proving the SLO→bundle trigger
	// wiring tighten the objective until fault-induced quality erosion —
	// the gap-rate margin on the PRDN estimate — registers as burn.
	QualityBadPRDN float64

	// Spans, when non-nil, captures each decoded window's causal span
	// tree on the harness's slot-granular modeled timeline: link-transit
	// (acquisition end → delivery slot), queue-wait (slots a bounded
	// decode budget deferred the window), the solver rung and
	// reconstruction. The harness has no decode-core serialization, so
	// queue-wait reflects only the DecodesPerSlot deferral — attribution
	// under a solver slowdown names the solver, truthfully.
	Spans *telemetry.CausalTracer
}

func (s Scenario) withDefaults() Scenario {
	if s.Windows == 0 {
		s.Windows = 96
	}
	if s.QueueLimit == 0 {
		s.QueueLimit = 8
	}
	if s.Seed == 0 {
		s.Seed = 0xC4A05
	}
	return s
}

// Report is one scenario's survival accounting.
type Report struct {
	Scenario string
	// Windows counts encoder-produced windows (drift slips included);
	// Decoded the windows reconstructed; DegradedWindows the decodes
	// flagged reduced-quality by the ladder or the solver deadline.
	Windows, Decoded, DegradedWindows int
	// EscapedPanics counts panics that crossed the containment boundary
	// into the harness — the contract requires zero. ContainedPanics
	// counts the ones the decode path absorbed.
	EscapedPanics, ContainedPanics int
	// CRCRejected counts frames the ingest integrity check refused;
	// Shed the windows dropped by the bounded queue; QueuePeak its
	// high-water mark; Reboots the sequence resets resynchronized.
	CRCRejected, Shed, QueuePeak, Reboots int
	// Abandoned counts windows given up for good (loss, shed, desync).
	Abandoned int
	// P99DecodeNs is the 99th-percentile modeled decode time;
	// BoundNs is the packet period it must stay within (a decode
	// slower than its window's arrival cadence falls behind forever).
	P99DecodeNs, BoundNs int64
	// MaxRung is the deepest degradation rung the ladder reached;
	// FinalRung must be back to nominal by session end.
	MaxRung, FinalRung coordinator.Rung
	// FinalHealth is the receiver's health at session end.
	FinalHealth coordinator.Health
	// DriftSkew is the accumulated clock skew; DriftSlips the extra
	// windows the fast mote clock squeezed into the session.
	DriftSkew  time.Duration
	DriftSlips int
	// Bundles lists the diagnostics bundles the flight recorder sealed
	// (empty without Scenario.Record); Recorder is the live recorder so
	// the caller can seal more (e.g. on a contract violation).
	Bundles  []string
	Recorder *blackbox.Recorder
}

// Survived checks the survival contract and returns the first
// violation, or nil when the session degraded gracefully.
func (r *Report) Survived(queueLimit int) error {
	switch {
	case r.EscapedPanics != 0:
		return fmt.Errorf("chaos %s: %d panics escaped containment", r.Scenario, r.EscapedPanics)
	case queueLimit > 0 && r.QueuePeak > queueLimit:
		return fmt.Errorf("chaos %s: queue peak %d exceeds limit %d", r.Scenario, r.QueuePeak, queueLimit)
	case r.Decoded == 0:
		return fmt.Errorf("chaos %s: nothing decoded", r.Scenario)
	case r.P99DecodeNs > r.BoundNs:
		return fmt.Errorf("chaos %s: p99 decode %v exceeds the %v packet period",
			r.Scenario, time.Duration(r.P99DecodeNs), time.Duration(r.BoundNs))
	case r.FinalHealth != coordinator.HealthDecoding:
		return fmt.Errorf("chaos %s: final health %v, want decoding", r.Scenario, r.FinalHealth)
	case r.FinalRung != coordinator.RungNominal:
		return fmt.Errorf("chaos %s: ladder stuck at %v", r.Scenario, r.FinalRung)
	}
	return nil
}

// Matrix returns the acceptance scenario set. Short mode shrinks the
// sessions for CI smoke runs; every fault class stays covered.
func Matrix(short bool) []Scenario {
	windows := 96
	if short {
		windows = 36
	}
	burst := &link.BurstConfig{PGoodBad: 0.05, PBadGood: 0.5}
	return []Scenario{
		{Name: "clean", Windows: windows},
		// ≥1e-4 BER: 8e-4 per byte ≈ 1e-4 per bit.
		{Name: "bitflip", Windows: windows, BitFlipProb: 8e-4},
		{Name: "burst-loss", Windows: windows, Burst: burst},
		{Name: "reboot", Windows: windows, RebootAt: windows / 2},
		{Name: "slowdown-burst", Windows: windows, Slowdown: 2,
			BurstArrival: 4, DecodesPerSlot: 4},
		{Name: "panic-inject", Windows: windows, PanicEvery: 7},
		{Name: "clock-drift", Windows: windows, ClockDriftPPM: 30_000},
		{Name: "kitchen-sink", Windows: windows, BitFlipProb: 4e-4,
			Burst: burst, RebootAt: windows / 2, Slowdown: 2,
			BurstArrival: 2, DecodesPerSlot: 2, PanicEvery: 11,
			ClockDriftPPM: 30_000},
	}
}

// panicDecoder injects a decode panic on every n-th window.
type panicDecoder struct {
	inner coordinator.Decoder
	every int
	calls int
}

func (p *panicDecoder) Decode(pkt *core.Packet) (*coordinator.Result, error) {
	p.calls++
	if p.every > 0 && p.calls%p.every == 0 {
		panic(fmt.Sprintf("chaos: injected fault on window %d", pkt.Seq))
	}
	return p.inner.Decode(pkt)
}

func (p *panicDecoder) Params() core.Params { return p.inner.Params() }

// synthWindow renders a deterministic ECG-like window: baseline
// wander, a sinus component, one QRS-like spike per second, and mild
// sensor noise from the seeded generator.
func synthWindow(w, n int, rg *rng.Xoshiro) []int16 {
	win := make([]int16, n)
	for i := range win {
		t := float64(w*n + i)
		v := 1000 + 120*math.Sin(2*math.Pi*t/600) + 40*math.Sin(2*math.Pi*t/37)
		if i%core.FsMote == core.FsMote/3 {
			v += 900 // R peak
		}
		v += 8 * rg.NormFloat64()
		win[i] = int16(v)
	}
	return win
}

// Run executes one scenario and returns its survival report. An error
// means the harness itself failed (configuration, encode), not that
// the scenario was survived badly — judge that with Report.Survived.
func Run(sc Scenario) (*Report, error) {
	sc = sc.withDefaults()
	params := core.Params{Seed: 0x31, M: 64, N: 128, WaveletLevels: 3, KeyFrameInterval: 8}
	m, err := mote.New(params)
	if err != nil {
		return nil, err
	}
	lcfg := link.DefaultConfig()
	lcfg.BitFlipProb = sc.BitFlipProb
	lcfg.DropProb = sc.DropProb
	lcfg.Burst = sc.Burst
	lcfg.ClockDriftPPM = sc.ClockDriftPPM
	lcfg.Seed = sc.Seed
	lnk, err := link.New(lcfg)
	if err != nil {
		return nil, err
	}
	dec, err := coordinator.NewRealTimeDecoder(params, coordinator.VFP)
	if err != nil {
		return nil, err
	}
	if sc.Slowdown > 1 {
		// Worst-case windows: no early convergence, every decode spends
		// the full iteration budget of its rung.
		tun, err := dec.SolverTuning()
		if err != nil {
			return nil, err
		}
		tun.SolverOptions.Tol = -1
	}
	pd := &panicDecoder{inner: dec, every: sc.PanicEvery}
	tcfg := coordinator.TransportConfig{
		QueueLimit:     sc.QueueLimit,
		DecodesPerSlot: sc.DecodesPerSlot,
	}
	rx := coordinator.NewReceiver(pd, tcfg)

	spans := sc.Spans
	if spans != nil {
		rx.SetTraceSeed(spans.Seed())
		rx.SetShedHook(func(seq uint32) {
			if wt := spans.Lookup(seq); wt != nil {
				spans.FinishDropped(wt, telemetry.FlagShed)
			}
		})
	}

	var rec *blackbox.Recorder
	var slo *monitor.SLO
	if sc.Record != nil {
		rcfg := *sc.Record
		if rcfg.Session == "" {
			rcfg.Session = sc.Name
		}
		rec = blackbox.NewRecorder(rcfg)
		rec.SetMeta(blackbox.NewSessionMeta(rcfg.Session, dec.Params(), coordinator.VFP, tcfg))
		if sc.Slowdown > 1 {
			rec.MarkUnreproducible("solver costs perturbed mid-run (slowdown scenario)")
		}
		rx.SetRecorder(rec)
		slo = monitor.NewSLO(monitor.SLOConfig{Name: "quality"}, rcfg.Session, nil, nil)
		monitor.WireRecorder(slo, rec)
	}

	rep := &Report{
		Scenario: sc.Name,
		BoundNs:  int64(2 * coordinator.RealTimeBudgetSeconds * float64(time.Second)),
	}
	rg := rng.New(sc.Seed ^ 0xEC6)
	n := dec.Params().N
	windowNs := time.Duration(float64(n) / core.FsMote * float64(time.Second))
	slow := coordinator.DefaultCosts()
	slow.VFPCyclesPerMAC *= sc.Slowdown
	slow.NEONCyclesPerMAC *= sc.Slowdown
	slowFrom, slowTo := sc.Windows/3, 2*sc.Windows/3

	// Span-tree timeline model: modelNow is the slot-granular modeled
	// time of the deliver pass currently scoring; planArrive maps each
	// sequence to its scheduled delivery-slot end. The harness has no
	// per-frame clock, so leaves tile [acquisition end, decode end) at
	// slot granularity and the recorded latency is their sum.
	reconstructNs := int64(coordinator.DefaultCosts().IterationTime(dec.Params(), coordinator.VFP))
	var modelNow int64
	planArrive := map[uint32]int64{}
	lastRung := coordinator.RungNominal

	var decodeNs []int64
	score := func(out []coordinator.Decoded) {
		for _, d := range out {
			rep.Decoded++
			decodeNs = append(decodeNs, int64(d.Res.ModeledTime))
			if d.Res.Degraded {
				rep.DegradedWindows++
			}
			if d.Res.Rung > rep.MaxRung {
				rep.MaxRung = d.Res.Rung
			}
			if spans != nil {
				if wt := spans.Lookup(d.Seq); wt != nil {
					acqEnd := wt.FrontierNs()
					arrive := planArrive[d.Seq]
					if arrive < acqEnd {
						arrive = acqEnd
					}
					decodeAt := modelNow
					if decodeAt < arrive {
						decodeAt = arrive
					}
					wt.Leaf(telemetry.StageLinkTransit, acqEnd, arrive-acqEnd)
					if decodeAt > arrive {
						wt.Leaf(telemetry.StageQueueWait, arrive, decodeAt-arrive)
					}
					fistaNs := int64(d.Res.ModeledTime)
					wt.SolverLeaf(d.Res.Rung.SolverStage(), decodeAt, fistaNs, int(d.Res.Rung))
					wt.Leaf(telemetry.StageReconstruct, decodeAt+fistaNs, reconstructNs)
					if d.Res.Rung != lastRung {
						wt.MarkRungChange(decodeAt, int(d.Res.Rung))
					}
					var flags uint32
					if d.Bad {
						flags |= telemetry.FlagBad
					}
					if d.Res.Degraded {
						flags |= telemetry.FlagDegraded
					}
					if d.Res.DeadlineExpired {
						flags |= telemetry.FlagDeadline
					}
					wt.Mark(flags)
					spans.Finish(wt, int(d.Res.Rung), wt.LeafSumNs())
				}
				lastRung = d.Res.Rung
			}
			if slo != nil {
				bad := d.Bad
				if sc.QualityBadPRDN > 0 {
					bad = d.EstPRDN > sc.QualityBadPRDN
				}
				// Modeled timeline: one window period per decode keeps
				// the SLO transition timestamps deterministic.
				slo.Observe(int64(rep.Decoded)*int64(windowNs), bad)
			}
		}
	}
	// safely runs one receiver interaction behind a containment check:
	// a panic reaching this recover escaped the survival layer.
	safely := func(f func()) {
		defer func() {
			if p := recover(); p != nil {
				rep.EscapedPanics++
			}
		}()
		f()
	}

	var pending [][]byte
	burstEvery := sc.BurstArrival
	if burstEvery < 1 {
		burstEvery = 1
	}
	var skewConsumed time.Duration
	encode := func(w int) error {
		mr, err := m.EncodeWindow(synthWindow(w, n, rg))
		if err != nil {
			return fmt.Errorf("chaos %s: encoding window %d: %w", sc.Name, w, err)
		}
		rep.Windows++
		if spans != nil {
			// Acquisition of the k-th encoded window (drift slips
			// included) ends at k·T; delivery lands at the end of the
			// next batch slot.
			wt := spans.Begin(mr.Packet.Seq)
			wt.Root(int64(rep.Windows) * int64(windowNs))
			planArrive[mr.Packet.Seq] = int64((w+burstEvery)/burstEvery*burstEvery) * int64(windowNs)
		}
		blob, err := mr.Packet.Marshal()
		if err != nil {
			return err
		}
		frames, _ := lnk.TransmitMulti(blob)
		pending = append(pending, frames...)
		return nil
	}
	deliver := func() {
		frames := pending
		pending = nil
		safely(func() {
			for _, fr := range frames {
				if out, err := rx.IngestFrame(fr); err == nil {
					score(out)
				}
			}
			_, late := rx.EndSlot()
			score(late)
		})
	}

	for w := 0; w < sc.Windows; w++ {
		if sc.Slowdown > 1 {
			if w == slowFrom {
				dec.SetCosts(slow)
			}
			if w == slowTo {
				dec.SetCosts(coordinator.DefaultCosts())
			}
		}
		if sc.RebootAt > 0 && w == sc.RebootAt {
			m.Reboot()
		}
		if err := encode(w); err != nil {
			return nil, err
		}
		// A fast mote clock squeezes extra windows into the slot grid.
		if skew := lnk.EndWindow(windowNs); skew-skewConsumed >= windowNs {
			skewConsumed += windowNs
			rep.DriftSlips++
			if err := encode(w); err != nil {
				return nil, err
			}
		}
		if (w+1)%burstEvery == 0 {
			modelNow = int64(w+1) * int64(windowNs)
			deliver()
		}
	}
	// Session end: flush the reorder model, deliver stragglers, close.
	modelNow = int64(sc.Windows) * int64(windowNs)
	pending = append(pending, lnk.Flush()...)
	deliver()
	safely(func() { score(rx.Close()) })

	st := rx.Stats()
	rep.ContainedPanics = st.DecodePanics
	rep.CRCRejected = st.Rejected
	rep.Shed = st.Shed
	rep.QueuePeak = st.QueuePeak
	rep.Reboots = st.Reboots
	rep.Abandoned = st.Abandoned
	rep.FinalHealth = rx.Health()
	rep.FinalRung = dec.Rung()
	rep.DriftSkew = lnk.DriftSkew()
	if rec != nil {
		rep.Recorder = rec
		rep.Bundles = rec.Bundles()
	}
	if len(decodeNs) > 0 {
		sort.Slice(decodeNs, func(i, j int) bool { return decodeNs[i] < decodeNs[j] })
		idx := (len(decodeNs)*99 + 99) / 100
		if idx > len(decodeNs) {
			idx = len(decodeNs)
		}
		rep.P99DecodeNs = decodeNs[idx-1]
	}
	return rep, nil
}
