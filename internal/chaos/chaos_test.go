package chaos

import (
	"reflect"
	"testing"

	"csecg/internal/coordinator"
)

// TestChaosMatrixDegradesGracefully pins the acceptance criterion: the
// full fault matrix — bit flips at ≥1e-4 BER, burst loss, a mote
// reboot mid-stream, a 2× solver slowdown under burst arrival, decode
// panics, clock drift, and all of it at once — completes with zero
// escaped panics, a bounded queue, p99 decode within the packet
// period, and the session back to decoding health.
func TestChaosMatrixDegradesGracefully(t *testing.T) {
	for _, sc := range Matrix(testing.Short()) {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			rep, err := Run(sc)
			if err != nil {
				t.Fatal(err)
			}
			if err := rep.Survived(sc.withDefaults().QueueLimit); err != nil {
				t.Fatalf("%v\nreport: %+v", err, rep)
			}
			if rep.ContainedPanics != rep.EscapedPanics && rep.EscapedPanics != 0 {
				t.Fatalf("panic accounting inconsistent: %+v", rep)
			}
		})
	}
}

// TestChaosScenariosExerciseTheirFaults checks each scenario actually
// triggered the machinery it exists to prove — a matrix whose faults
// never fire proves nothing.
func TestChaosScenariosExerciseTheirFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("full matrix only")
	}
	reports := map[string]*Report{}
	for _, sc := range Matrix(false) {
		rep, err := Run(sc)
		if err != nil {
			t.Fatal(err)
		}
		reports[sc.Name] = rep
	}
	if r := reports["bitflip"]; r.CRCRejected == 0 {
		t.Errorf("bitflip scenario rejected no frames: %+v", r)
	}
	if r := reports["burst-loss"]; r.Abandoned == 0 {
		t.Errorf("burst-loss scenario lost nothing: %+v", r)
	}
	if r := reports["reboot"]; r.Reboots != 1 {
		t.Errorf("reboot scenario saw %d resyncs, want 1", r.Reboots)
	}
	if r := reports["slowdown-burst"]; r.MaxRung == coordinator.RungNominal {
		t.Errorf("slowdown scenario never engaged the ladder: %+v", r)
	} else if r.DegradedWindows == 0 {
		t.Errorf("slowdown scenario flagged no degraded windows: %+v", r)
	}
	if r := reports["panic-inject"]; r.ContainedPanics == 0 {
		t.Errorf("panic scenario contained no panics: %+v", r)
	}
	if r := reports["clock-drift"]; r.DriftSlips == 0 || r.DriftSkew == 0 {
		t.Errorf("drift scenario accrued no skew: %+v", r)
	}
	if r := reports["kitchen-sink"]; r.ContainedPanics == 0 || r.Reboots != 1 {
		t.Errorf("kitchen-sink scenario too gentle: %+v", r)
	}
}

// TestChaosRunDeterministic: identical scenarios produce identical
// reports — the harness is replayable by construction.
func TestChaosRunDeterministic(t *testing.T) {
	sc := Matrix(true)[7] // kitchen-sink
	a, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("non-deterministic run:\n%+v\n%+v", a, b)
	}
}
