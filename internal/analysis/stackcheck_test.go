package analysis

import (
	"testing"

	"csecg/internal/mote"
)

// TestStackBoundCoversLedger pins the machine-checked form of the RAM
// ledger's "call stack and misc" line: the worst-case stack bound over
// every device entry point must fit under mote.RAMStackMisc. If a
// refactor deepens a device call chain past the ledger, this fails
// before csecg-vet does in CI.
func TestStackBoundCoversLedger(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module type-check is slow; run without -short")
	}
	mod, err := LoadModule(".")
	if err != nil {
		t.Fatal(err)
	}
	bounds := DeviceStackBounds(mod, DefaultConfig(mod.Path))
	if len(bounds) == 0 {
		t.Fatal("no device entry points found")
	}
	var deepest StackBound
	for _, b := range bounds {
		if b.Unbounded {
			t.Errorf("entry point %s has no static stack bound (cycle %v)", b.Entry, b.Cycle)
			continue
		}
		if b.Bytes > deepest.Bytes {
			deepest = b
		}
	}
	if deepest.Bytes == 0 {
		t.Fatal("deepest stack bound is zero; the frame model is broken")
	}
	if deepest.Bytes > mote.RAMStackMisc {
		t.Errorf("worst-case device stack %d bytes (entry %s) exceeds the RAMStackMisc ledger of %d",
			deepest.Bytes, deepest.Entry, int(mote.RAMStackMisc))
	}
	if len(deepest.Chain) == 0 {
		t.Errorf("deepest entry %s has no call chain", deepest.Entry)
	}
	t.Logf("deepest device stack: %s, %d bytes over %d frames (ledger %d)",
		deepest.Entry, deepest.Bytes, len(deepest.Chain), int(mote.RAMStackMisc))
}
