package analysis

import (
	"strings"
	"testing"
)

// TestCallGraphSoundness pins known edges of the real module's call
// graph: the encode pipeline's static chain (EncodeWindow down to the
// bit writer), a goroutine edge, and an interface-dispatch edge. If
// edge resolution regresses — a refactor stops resolving method calls,
// or interface satisfaction sets go missing — the transitive analyzers
// silently stop seeing through those calls, so this test is the canary.
func TestCallGraphSoundness(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module type-check is slow; run without -short")
	}
	mod, err := LoadModule(".")
	if err != nil {
		t.Fatal(err)
	}
	g := BuildCallGraph(mod)

	// The paper's encode pipeline, edge by edge.
	chain := [][2]string{
		{"core.(*Encoder).EncodeWindow", "core.(*Encoder).finishWindow"},
		{"core.(*Encoder).finishWindow", "core.(*Encoder).encodeDelta"},
		{"core.(*Encoder).encodeDelta", "huffman.(*Codebook).Encode"},
		{"huffman.(*Codebook).Encode", "huffman.(*BitWriter).WriteBits"},
	}
	for _, e := range chain {
		if !g.EdgeBetween(e[0], e[1]) {
			t.Errorf("missing static edge %s → %s", e[0], e[1])
		}
	}

	root := g.Lookup("core.(*Encoder).EncodeWindow")
	if root == nil {
		t.Fatal("EncodeWindow not in graph")
	}
	if !root.InModule() {
		t.Error("EncodeWindow should be a module node with a body")
	}

	// PathTo walks the chain transitively: WriteBits must be reachable
	// from EncodeWindow through module bodies only.
	path, desc := g.PathTo(root, func(n *FuncNode) string {
		if n.ShortName() == "huffman.(*BitWriter).WriteBits" {
			return "target"
		}
		return ""
	}, func(e *Edge) bool { return true })
	if path == nil || desc != "target" {
		t.Fatal("no path EncodeWindow → … → WriteBits")
	}
	if got := FormatChain(root, path); !strings.Contains(got, "WriteBits") {
		t.Errorf("FormatChain(%q) does not end at WriteBits", got)
	}

	// Interface dispatch: the monitor's HTTP mux calls handlers through
	// http.HandlerFunc values, and the coordinator solves through the
	// solver interface — at least one interface edge must exist
	// somewhere in the module.
	foundIface, foundGo := false, false
	for _, n := range g.Nodes() {
		for _, e := range n.Out {
			if e.Kind == EdgeInterface {
				foundIface = true
			}
			if e.Go {
				foundGo = true
			}
		}
	}
	if !foundIface {
		t.Error("no interface-dispatch edges resolved anywhere in the module")
	}
	if !foundGo {
		t.Error("no goroutine-launch edges resolved anywhere in the module")
	}

	// Lookup also accepts full go/types names.
	if g.Lookup("csecg/internal/core.EncodeWindow") == nil && g.Lookup("(*csecg/internal/core.Encoder).EncodeWindow") == nil {
		t.Error("Lookup by full name resolves nothing for EncodeWindow")
	}
}

// TestCallGraphDisabledDetection proves the golden tests actually gate
// detection: running the transitive noalloc testdata with edges
// suppressed must report nothing, i.e. the findings come from the call
// graph, not from some intraprocedural shortcut.
func TestCallGraphDisabledDetection(t *testing.T) {
	pkg, fset, err := LoadDir("testdata/src/noalloctrans", "noalloctranstest")
	if err != nil {
		t.Fatal(err)
	}
	mod := &Module{Root: "testdata/src/noalloctrans", Path: "noalloctranstest", Fset: fset, Pkgs: []*Package{pkg}}
	diags := RunModule(mod, Config{}, []*Analyzer{NoAlloc})
	transitive := 0
	for _, d := range diags {
		if strings.Contains(d.Message, "reaches an allocation") {
			transitive++
		}
	}
	if transitive == 0 {
		t.Fatal("transitive noalloc reported nothing on testdata that requires call-graph edges")
	}

	// Now sever every edge (simulating a broken graph) and re-run just
	// the module half: the transitive findings must disappear, showing
	// they depend on edge resolution.
	graph := BuildCallGraph(mod)
	for _, n := range graph.Nodes() {
		n.Out = nil
	}
	var out []Diagnostic
	mp := &ModulePass{
		Analyzer: NoAlloc,
		Config:   Config{},
		Fset:     fset,
		Module:   mod,
		Graph:    graph,
		dirs:     map[string]*Directives{},
		diags:    &out,
		seen:     map[string]bool{},
	}
	NoAlloc.RunModule(mp)
	for _, d := range out {
		t.Errorf("finding with no call edges should be impossible: %s", d)
	}
}
