// Package shiftidxtest exercises the advisory shiftidx analyzer: hotpath
// indexing the interval engine can and cannot prove in bounds.
package shiftidxtest

// SumProven indexes with the range key: i < len(xs) is a structural
// fact, so the index is proven.
//
//csecg:hotpath per-sample accumulation
func SumProven(xs []int16) int32 {
	var acc int32
	for i := range xs {
		acc += int32(xs[i])
	}
	return acc
}

// Gather indexes dst with values read from another slice — correct by a
// cross-function invariant the engine cannot see.
//
//csecg:hotpath scatter-add
func Gather(dst []int32, idx []int) {
	for _, r := range idx {
		dst[r]++ // want "hotpath index dst\[r\] not provably in bounds"
	}
}

// Guarded proves the index with an explicit bounds test.
//
//csecg:hotpath guarded lookup
func Guarded(s []int32, i int) int32 {
	if i >= 0 && i < len(s) {
		return s[i]
	}
	return 0
}

// Table proves an array index purely by interval: the clamps refine i
// to [0, 7], the array's exact index range.
//
//csecg:hotpath clamped table lookup
func Table(i int32) int16 {
	var lut [8]int16
	if i < 0 {
		i = 0
	}
	if i > 7 {
		i = 7
	}
	return lut[i]
}

// WaivedIdx carries the invariant as a waiver instead.
//
//csecg:hotpath waived scatter-add
func WaivedIdx(dst []int32, idx []int) {
	for _, r := range idx {
		dst[r]++ //csecg:rangeok rows validated against len(dst) at construction
	}
}

// coldGather is the same shape as Gather but not a hotpath: the
// advisory analyzer only inspects //csecg:hotpath functions.
func coldGather(dst []int32, idx []int) {
	for _, r := range idx {
		dst[r]++
	}
}
