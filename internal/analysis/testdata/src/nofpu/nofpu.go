// Package nofputest exercises the nofpu analyzer: the test harness
// registers this package as device-side, so every float construct below
// must be flagged unless exempted with //csecg:host.
package nofputest

import "math"

var globalF float64 = 1 // want "floating-point type float64"

const scaleConst = 1.5 // want "floating-point"

func floatDecl() { // integer name, float body
	var v float32 // want "floating-point type float32"
	_ = v
}

func floatConversion(i int32) {
	_ = float64(i) // want "conversion to floating-point type float64"
}

func floatArith(a, b int) {
	_ = untypedRatio(a) * untypedRatio(b) // want "floating-point arithmetic"
}

//csecg:host helper for the arithmetic case above
func untypedRatio(x int) float64 { return float64(x) }

func floatCall(x int) {
	_ = math.Sqrt(untypedRatio(x)) // want "calls math.Sqrt, whose signature uses floating point"
}

// hostExempt is full of floats but carries the directive, so the
// analyzer must stay silent inside it.
//
//csecg:host cycle accounting for the test
func hostExempt() float64 {
	v := 2.5
	return v * float64(3)
}

// integerOnly is the false-positive guard: the real mote path, nothing
// to flag.
func integerOnly(x []int16) int32 {
	var acc int32
	for _, v := range x {
		acc += int32(v)
	}
	return acc >> 3
}

// Number mimics linalg.Float-style constraints: a generic function over
// a float-capable type parameter is not device float usage (it is only
// instantiated host-side), so nothing here may be flagged.
type Number interface {
	~int32 | ~float64
}

func genericSum[T Number](xs []T) T {
	var acc T
	for _, v := range xs {
		acc += v
	}
	return acc
}
