// Package noalloctest exercises the noalloc analyzer: only functions
// marked //csecg:hotpath are checked, and //csecg:allocok waives a
// proven-bounded allocation.
package noalloctest

type enc struct {
	buf  []byte
	syms []int
}

//csecg:hotpath per-window path under test
func (e *enc) hot(n int, name string) {
	scratch := make([]int, n) // want "make allocates in hotpath enc.hot"
	_ = scratch
	p := new(enc) // want "new allocates in hotpath enc.hot"
	_ = p
	e.syms = append(e.syms, n) // want "append may grow past capacity in hotpath enc.hot"
	m := map[int]int{}         // want "map literal allocates in hotpath enc.hot"
	_ = m
	s := []int{1, 2} // want "slice literal allocates in hotpath enc.hot"
	_ = s
	q := &enc{} // want "composite literal may escape"
	_ = q
	f := func() {} // want "closure allocates in hotpath enc.hot"
	_ = f
	label := name + "!" // want "string concatenation allocates in hotpath enc.hot"
	label += "?"        // want "string concatenation allocates in hotpath enc.hot"
	_ = label
	b := []byte(name) // want "conversion allocates in hotpath enc.hot"
	_ = b
}

//csecg:hotpath waiver cases: every allocation below is waived
func (e *enc) hotWaived(v byte) {
	e.buf = append(e.buf, v) //csecg:allocok amortized, buffer retained across calls
}

// cold allocates freely: it is not marked hotpath, so the analyzer must
// stay silent (false-positive guard).
func cold(n int) []int {
	out := make([]int, n)
	out = append(out, n)
	return out
}

// hotClean is the clean hotpath guard: index writes into preallocated
// buffers, no findings.
//
//csecg:hotpath clean guard
func (e *enc) hotClean(v byte, i int) {
	e.buf[i] = v
	e.syms[i] = int(v)
}
