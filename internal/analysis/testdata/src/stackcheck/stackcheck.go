// Package stackchecktest exercises the stackcheck analyzer: recursion
// (no static bound), a frame exceeding the ledger constant, bounded
// entry points, and the `go` / //csecg:stackok exclusions. The golden
// config points StackBudgetConst at stackBudget below.
package stackchecktest

// stackBudget plays the role of RAMStackMisc in the golden module.
const stackBudget = 64

// Recurse has no static stack bound. // want is on the declaration line
// because stackcheck reports at the entry point, not the call site.
func Recurse(n int) int { // want "entry point .*Recurse has no static stack bound: recursion cycle"
	if n <= 0 {
		return 0
	}
	return Recurse(n-1) + 1
}

// BigFrame's local array alone exceeds the 64-byte budget.
func BigFrame() int16 { // want "worst-case stack of entry point .*BigFrame is \d+ bytes, exceeding the stackBudget ledger of 64"
	var buf [100]int16
	for i := range buf {
		buf[i] = int16(i)
	}
	return buf[0]
}

// Small stays within budget through a leaf call.
func Small(v int16) int16 {
	return leaf(v)
}

func leaf(v int16) int16 {
	return v + 0
}

// Waived calls the recursive function through a waived call site, so
// its own bound stays finite (Recurse still reports above).
func Waived() int {
	return Recurse(3) //csecg:stackok depth bounded to 3 by the literal argument
}

// Spawn starts the recursion on a fresh goroutine stack: `go` edges are
// excluded from the caller's bound.
func Spawn() {
	go Recurse(10)
}
