// Package budgettest exercises the budget analyzer: //csecg:ram and
// //csecg:flash ledger constants are summed against RAMBudget /
// FlashBudget / CodebookFlashBudget in the same package.
package budgettest

// RAMBudget is deliberately smaller than the ledger below.
const RAMBudget = 1024

// CodebookFlashBudget is deliberately smaller than the codebook entry.
const CodebookFlashBudget = 100

const (
	BufA = 600 //csecg:ram sample buffer // want "RAM ledger totals 1300 bytes, exceeding RAMBudget = 1024 bytes by 276"
	BufB = 700 //csecg:ram scratch
)

// Code has a flash marker but the package declares no FlashBudget
// constant, which is itself a finding.
const Code = 4096 //csecg:flash encoder code // want "no FlashBudget constant"

const Book = 150 //csecg:codebookflash serialized table // want "codebook flash ledger totals 150 bytes, exceeding CodebookFlashBudget = 100 bytes by 50"

// NotAConst carries a ledger marker but is a variable, so it cannot be
// summed at vet time.
var NotAConst = len("xx") //csecg:ram bogus // want "not a constant"

// Unmarked constants never contribute to any ledger (guard).
const Unrelated = 1 << 20
