// Package lockchecktest exercises lockcheck: blocking operations under
// a held mutex, non-reentrant double acquisition, transitive blocking
// through the call graph, and inconsistent lock ordering.
package lockchecktest

import (
	"sync"
	"time"
)

type server struct {
	mu    sync.Mutex
	aux   sync.Mutex
	cond  *sync.Cond
	ch    chan int
	state int
}

func (s *server) SleepUnderLock() {
	s.mu.Lock()
	time.Sleep(time.Millisecond) // want "s.mu held while calling time.Sleep"
	s.mu.Unlock()
}

func (s *server) DeferSleep() {
	s.mu.Lock()
	defer s.mu.Unlock()
	time.Sleep(time.Millisecond) // want "s.mu held while calling time.Sleep"
}

func (s *server) RecvUnderLock() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.state = <-s.ch // want "s.mu held while receiving from a channel"
}

func (s *server) SendAfterUnlock() {
	s.mu.Lock()
	s.state++
	s.mu.Unlock()
	s.ch <- s.state // fine: lock released first
}

// slowPath blocks, but only transitively matters when called under a
// lock.
func (s *server) slowPath() {
	time.Sleep(time.Millisecond)
}

func (s *server) TransitiveBlock() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.slowPath() // want "s.mu held while calling .*slowPath, which blocks"
}

func (s *server) DoubleAcquire() {
	s.mu.Lock()
	s.mu.Lock() // want "s.mu acquired while already held"
	s.mu.Unlock()
	s.mu.Unlock()
}

// CondWait is fine: sync.Cond.Wait releases the lock while parked.
func (s *server) CondWait() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for s.state == 0 {
		s.cond.Wait()
	}
}

// NonBlockingSelect is fine: the default clause makes it a poll.
func (s *server) NonBlockingSelect() {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case v := <-s.ch:
		s.state = v
	default:
	}
}

func (s *server) Waived() {
	s.mu.Lock()
	defer s.mu.Unlock()
	//csecg:lockok serializer by design; callers expect the stall
	time.Sleep(time.Millisecond)
}

func (s *server) OrderAB() {
	s.mu.Lock()
	s.aux.Lock() // want "inconsistent lock ordering: s.aux acquired while s.mu held"
	s.state++
	s.aux.Unlock()
	s.mu.Unlock()
}

func (s *server) OrderBA() {
	s.aux.Lock()
	s.mu.Lock()
	s.state++
	s.mu.Unlock()
	s.aux.Unlock()
}
