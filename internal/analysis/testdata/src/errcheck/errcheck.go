// Package errchecktest exercises the errcheck analyzer.
package errchecktest

import (
	"errors"
	"fmt"
	"strings"
)

func fallible() error { return errors.New("boom") }

func twoValues() (int, error) { return 0, nil }

func dropped() {
	fallible() // want "result of fallible includes an error that is dropped"
}

func droppedMulti() {
	twoValues() // want "result of twoValues includes an error that is dropped"
}

func droppedDefer() {
	defer fallible() // want "result of fallible includes an error that is dropped"
}

func explicitDiscard() {
	_ = fallible() // explicit discard is deliberate: not flagged
	_, _ = twoValues()
}

func handled() error {
	if err := fallible(); err != nil {
		return err
	}
	return nil
}

func waived() {
	fallible() //csecg:errok error is advisory in this context
}

func allowlisted(sb *strings.Builder) {
	fmt.Println("stdout convention")      // not flagged
	fmt.Fprintf(sb, "never-fails writer") // not flagged
	sb.WriteString("never fails")         // not flagged
}

func pureCall() int { return 42 }

func noError() {
	pureCall() // no error result: not flagged
}
