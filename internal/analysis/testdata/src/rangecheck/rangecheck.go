// Package rangechecktest exercises the rangecheck interval analyzer:
// wrapping arithmetic, narrowing conversions, degenerate shifts, and the
// refinements (saturation clamps, guarded conversions) that prove the
// corresponding sites clean.
package rangechecktest

const (
	maxQ15 = 1<<15 - 1
	minQ15 = -1 << 15
)

// mulWrap keeps a 16×16 product in int16 — the canonical un-widened
// multiply the analyzer exists to catch.
func mulWrap(a, b int16) int16 {
	return a * b // want "int16 multiplication may wrap"
}

// mulWidened is the correct idiom: widen before multiplying. The int32
// product of two int16 ranges fits int32, so nothing fires.
func mulWidened(a, b int16) int32 {
	return int32(a) * int32(b)
}

// addWrap adds two full-range int32 values.
func addWrap(a, b int32) int32 {
	return a + b // want "int32 addition may wrap"
}

// negWrap negates a full-range int16: -(-32768) = 32768 does not fit.
func negWrap(v int16) int16 {
	return -v // want "int16 negation may wrap"
}

// shiftWrap shifts value bits off the top of an int16.
func shiftWrap(v int16) int16 {
	return v << 2 // want "int16 left shift may wrap"
}

// shiftAway discards every value bit: the count equals the width.
func shiftAway(v int16) int16 {
	return v >> 16 // want "shift count .* every value bit is discarded"
}

// narrow converts a full-range int32 to int16 with no guard.
func narrow(s int32) int16 {
	return int16(s) // want "conversion int32→int16 may truncate: source interval .* exceeds destination range"
}

// satAdd is the fixedpoint.SatAdd shape: the tagless-switch saturation
// clamp refines s to [minQ15, maxQ15] on the fall-through path, so the
// final narrowing conversion is proven and nothing fires.
func satAdd(a, b int16) int16 {
	s := int32(a) + int32(b)
	switch {
	case s > maxQ15:
		s = maxQ15
	case s < minQ15:
		s = minQ15
	}
	return int16(s)
}

// guardedNarrow proves the conversion through an explicit branch test
// (&& refinement) instead of a clamp.
func guardedNarrow(v int32) int16 {
	if v >= minQ15 && v <= maxQ15 {
		return int16(v)
	}
	return 0
}

// loopWrap increments an int16 counter with no bound: loop widening
// drives the counter interval to +inf and the increment reports.
func loopWrap(n int) int16 {
	var c int16
	for i := 0; i < n; i++ {
		c++ // want "int16 addition may wrap"
	}
	return c
}

// accumulate64 is the tree's infinite-precision-accumulator idiom:
// 64-bit results never report.
func accumulate64(xs []int16) int64 {
	var acc int64
	for _, x := range xs {
		acc += int64(x)
	}
	return acc
}

// crcStep uses unsigned arithmetic: defined modular, never reports.
func crcStep(crc, b uint16) uint16 {
	return crc*31 + b
}

// waived documents intentional wraparound per statement.
func waived(a, b int16) int16 {
	return a * b //csecg:rangeok deliberate modular mixing step
}

// hostOnly is exempt wholesale: host-side code may rely on 64-bit int.
//
//csecg:host offline helper, never runs on the mote
func hostOnly(a, b int16) int16 {
	return a * b
}
