// Package leakchecktest exercises leakcheck: goroutines that loop
// forever with no context or channel in reach have no shutdown path.
package leakchecktest

import "context"

type pump struct {
	done chan struct{}
	n    int
}

func (p *pump) spin() {
	for {
		p.n++
	}
}

func (p *pump) drain() {
	for {
		select {
		case <-p.done:
			return
		default:
			p.n++
		}
	}
}

func bounded() int {
	total := 0
	for i := 0; i < 10; i++ {
		total += i
	}
	return total
}

func Launch(p *pump) {
	go func() { // want "goroutine loops without a shutdown path"
		for {
			p.n++
		}
	}()

	go p.spin() // want "spin loops without a shutdown path"

	go p.drain() // fine: selects on p.done

	go func() { // fine: observes the done channel
		for {
			select {
			case <-p.done:
				return
			default:
			}
		}
	}()

	go func(ctx context.Context) { // fine: context parameter
		for ctx.Err() == nil {
			p.n++
		}
	}(context.Background())

	go func() { // fine: no loop, bounded work
		p.n = bounded()
	}()

	//csecg:leakok torn down by process exit in this tool
	go func() {
		for {
			p.n++
		}
	}()
}
