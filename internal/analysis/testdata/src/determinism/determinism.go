// Package determtest exercises the determinism analyzer: the harness
// treats it as a library package (not under cmd/ or examples/).
package determtest

import (
	"math/rand" // want "imports math/rand"
	"sort"
	"time"
)

func usesGlobalRand() int { return rand.Int() }

func wallClock() int64 {
	return time.Now().UnixNano() // want "time.Now in a library package"
}

func wallClockWaived() int64 {
	t := time.Now() //csecg:nondet intentional instrumentation
	return t.UnixNano()
}

func mapOrder(m map[int]int) int {
	sum := 0
	for _, v := range m { // want "map iteration order is randomized"
		sum += v
	}
	return sum
}

func mapOrderWaived(m map[int]int) int {
	sum := 0
	//csecg:orderok sum is order-independent
	for _, v := range m {
		sum += v
	}
	return sum
}

// sortedKeys is the deterministic idiom and must not be flagged after
// the waived extraction loop.
func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	//csecg:orderok keys are sorted immediately below
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// sliceOrder ranges over a slice, which is always ordered (guard).
func sliceOrder(xs []int) int {
	sum := 0
	for _, v := range xs {
		sum += v
	}
	return sum
}
