// Package noalloctranstest exercises the transitive half of noalloc:
// a //csecg:hotpath function must not reach an allocation through any
// chain of unannotated callees, including interface dispatch.
package noalloctranstest

import "fmt"

type state struct {
	buf  []int
	sink sink
}

// sink is implemented by one module type; a call through it must be
// resolved to the implementation's body (interface dispatch).
type sink interface {
	put(x int)
}

type growingSink struct {
	xs []int
}

func (g *growingSink) put(x int) {
	g.xs = append(g.xs, x) // the allocation behind the interface
}

// helper allocates but carries no annotation — the intraprocedural
// half never looks at it.
func helper(s *state) {
	s.buf = make([]int, 16)
}

// cleanHelper is allocation-free all the way down.
func cleanHelper(s *state) int {
	if len(s.buf) == 0 {
		return 0
	}
	return s.buf[0]
}

// deep reaches helper through one more hop.
func deep(s *state) {
	helper(s)
}

//csecg:hotpath
func DirectChain(s *state) {
	helper(s) // want "hotpath .*DirectChain reaches an allocation: .*DirectChain → .*helper — make allocates"
}

//csecg:hotpath
func DeepChain(s *state) {
	deep(s) // want "hotpath .*DeepChain reaches an allocation: .*DeepChain → .*deep → .*helper — make allocates"
}

//csecg:hotpath
func IfaceChain(s *state) {
	s.sink.put(1) // want "hotpath .*IfaceChain reaches an allocation: .*IfaceChain → .*put \(interface\) — append may grow past capacity"
}

//csecg:hotpath
func ErrPath(n int) error {
	if n < 0 {
		return fmt.Errorf("bad %d", n) // want "hotpath .*ErrPath reaches an allocation: .*ErrPath → fmt.Errorf — formats and allocates an error"
	}
	return nil
}

//csecg:hotpath
func Clean(s *state) int {
	return cleanHelper(s)
}

//csecg:hotpath
func Waived(s *state) {
	helper(s) //csecg:allocok warm-up call, runs once before streaming
}

//csecg:hotpath
func CallsHotpath(s *state) int {
	// The callee is itself a hotpath: its body is checked where it is
	// declared, so no transitive finding is repeated here.
	return HotLeaf(s)
}

//csecg:hotpath
func HotLeaf(s *state) int {
	s.buf = make([]int, 4) // want "make allocates in hotpath HotLeaf"
	return len(s.buf)
}
