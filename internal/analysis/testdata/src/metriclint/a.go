// Package metriclinttest exercises metriclint against a local
// registry shaped like internal/telemetry's: named Registry type with
// Counter/Gauge/Histogram methods, WritePrometheus* exporters and a
// Label type. Detection is structural, so the stand-in works exactly
// like the real one.
package metriclinttest

import "io"

type Counter struct{ v int64 }

func (c *Counter) Inc() { c.v++ }

type Gauge struct{ v int64 }

func (g *Gauge) Set(v int64) { g.v = v }

type Histogram struct{ n int64 }

func (h *Histogram) Observe(v int64) { h.n++ }

type Registry struct {
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

func NewRegistry() *Registry {
	return &Registry{
		counters:   map[string]*Counter{},
		gauges:     map[string]*Gauge{},
		histograms: map[string]*Histogram{},
	}
}

func (r *Registry) Counter(name string) *Counter {
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

func (r *Registry) Gauge(name string) *Gauge {
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

func (r *Registry) Histogram(name string) *Histogram {
	h, ok := r.histograms[name]
	if !ok {
		h = &Histogram{}
		r.histograms[name] = h
	}
	return h
}

type Label struct {
	Key, Value string
}

func WritePrometheus(w io.Writer, r *Registry) error {
	return WritePrometheusLabeled(w, r)
}

func WritePrometheusLabeled(w io.Writer, r *Registry, labels ...Label) error {
	_, err := w.Write([]byte("# metrics\n"))
	return err
}

// export reaches WritePrometheus through one hop; handing a registry to
// it counts as exporting.
func export(w io.Writer, r *Registry) {
	_ = WritePrometheus(w, r)
}

// keep swallows a registry without exporting it — the analyzer cannot
// prove anything about it, so handing a registry here counts as an
// escape, not a leak.
var kept *Registry

func keep(r *Registry) { kept = r }
