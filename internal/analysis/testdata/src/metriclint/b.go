package metriclinttest

import (
	"io"
	"strings"
)

func GoodNames(w io.Writer) {
	reg := NewRegistry()
	reg.Counter("frames_total").Inc()
	reg.Gauge("queue_depth").Set(3)
	reg.Histogram("decode_latency_ns").Observe(5)
	reg.Histogram("wire_bytes_per_window").Observe(64)
	_ = WritePrometheus(w, reg)
}

func BadNames(w io.Writer) {
	reg := NewRegistry()
	reg.Counter("framesTotal").Inc()        // want "not snake_case"
	reg.Counter("frames_count").Inc()       // want "counter .* must end in _total"
	reg.Gauge("queue").Set(1)               // want "gauge .* has no unit suffix"
	reg.Histogram("decode_time").Observe(1) // want "histogram .* has no unit suffix"
	_ = WritePrometheus(w, reg)
}

func DynamicNames(w io.Writer, stage string) {
	reg := NewRegistry()
	reg.Counter(stage).Inc()                           // want "metric name is not compile-time constant"
	reg.Histogram("stage_" + stage + "_ns").Observe(1) // fine: constant unit suffix
	reg.Counter("link_" + stage).Inc()                 // want "unit suffix is not compile-time constant"
	_ = WritePrometheus(w, reg)
}

func Waived(w io.Writer, name string) {
	reg := NewRegistry()
	//csecg:metricok replaying names recorded by an earlier run
	reg.Counter(name).Inc()
	_ = WritePrometheus(w, reg)
}

func NeverExported() {
	reg := NewRegistry() // want "registry reg registers metrics but is never exported"
	reg.Counter("orphan_total").Inc()
}

func ExportedIndirectly(w io.Writer) {
	reg := NewRegistry()
	reg.Counter("fine_total").Inc()
	export(w, reg)
}

func EscapesElsewhere() {
	reg := NewRegistry()
	reg.Counter("kept_total").Inc()
	keep(reg)
}

func Labels(w io.Writer, session string) {
	reg := NewRegistry()
	reg.Counter("sessions_total").Inc()
	_ = WritePrometheusLabeled(w, reg,
		Label{Key: "session", Value: session},
		Label{Key: "UpperKey", Value: session},              // want "label key .* is not snake_case"
		Label{Key: strings.ToLower("HOST"), Value: session}) // want "label key is not compile-time constant"
}
