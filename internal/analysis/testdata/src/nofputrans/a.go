// Package nofputranstest exercises the transitive half of nofpu: a
// device-side function must not reach floating point through a callee
// with a clean integer signature.
package nofputranstest

// scale is host-side modeling code: its body may use floats, but a
// device function has no business calling it.
//
//csecg:host offline gain model
func scale(x int) int {
	return int(float64(x) * 1.5)
}

// intOnly is clean all the way down.
func intOnly(x int) int {
	return x << 1
}

// deeper hides the float behind one more integer-signature hop — and
// is itself a device function, so it gets its own finding too.
func deeper(x int) int {
	return scale(x) // want "device function .*deeper reaches floating point: .*deeper → .*scale — .*float"
}

func Encode(x int) int {
	return scale(x) // want "device function .*Encode reaches floating point: .*Encode → .*scale — .*float"
}

func EncodeDeep(x int) int {
	return deeper(x) // want "device function .*EncodeDeep reaches floating point: .*EncodeDeep → .*deeper → .*scale — .*float"
}

func EncodeClean(x int) int {
	return intOnly(x)
}

func Calibrate(x int) int {
	//csecg:host calibration runs on the workstation, not the mote
	return scale(x)
}

// The direct float-signature call is the intraprocedural analyzer's
// finding; the transitive half must not repeat it on the same edge.
func direct(x int) int {
	return int(raw(float64(x))) // want "calls raw, whose signature uses floating point"
}

//csecg:host
func raw(f float64) float64 { return f * 2 }
