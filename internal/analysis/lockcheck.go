package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockCheck guards the host plane's mutexes (coordinator, monitor,
// telemetry): holding a sync.Mutex/RWMutex across a blocking operation
// — a channel op, time.Sleep, network or file I/O, a WaitGroup.Wait, or
// a call that transitively reaches one through the call graph — stalls
// every reader of that lock for the duration (a slow Prometheus scrape
// or JSONL sink must never freeze the streaming goroutine). It also
// flags re-acquiring a mutex already held (Go mutexes are not
// reentrant) and module-wide inconsistent lock-acquisition order (the
// classic AB/BA deadlock). The walk is lexical — statements are
// visited in source order and branch effects merge — so a conditional
// unlock can over- or under-approximate; waive a deliberate pattern
// (e.g. a writer whose whole purpose is serializing I/O) with
// //csecg:lockok.
var LockCheck = &Analyzer{
	Name:      "lockcheck",
	Doc:       "forbid blocking calls while a mutex is held; check lock ordering",
	RunModule: runLockCheck,
}

const lockSuggestion = "shrink the critical section: snapshot under the lock, release, then block; or waive a deliberate serializer with //csecg:lockok"

// lockMethod classifies sync.Mutex/RWMutex method calls.
type lockMethod int

const (
	lockNone lockMethod = iota
	lockAcquire
	lockRelease
)

// classifyLockCall reports whether call is a Lock/RLock/Unlock/RUnlock
// on a sync.Mutex or sync.RWMutex, and resolves the mutex to a stable
// identity object (the field or variable holding it).
func classifyLockCall(info *types.Info, call *ast.CallExpr) (lockMethod, types.Object, string) {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return lockNone, nil, ""
	}
	var method lockMethod
	switch sel.Sel.Name {
	case "Lock", "RLock":
		method = lockAcquire
	case "Unlock", "RUnlock":
		method = lockRelease
	default:
		return lockNone, nil, ""
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return lockNone, nil, ""
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return lockNone, nil, ""
	}
	obj := mutexIdentity(info, sel.X)
	return method, obj, exprString(sel.X)
}

// mutexIdentity resolves the expression holding the mutex to its
// variable or field object ("s.mu" → the mu field of S). nil when the
// expression is too dynamic to name.
func mutexIdentity(info *types.Info, e ast.Expr) types.Object {
	switch e := unparen(e).(type) {
	case *ast.Ident:
		return info.Uses[e]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[e]; ok {
			return sel.Obj()
		}
		return info.Uses[e.Sel]
	case *ast.StarExpr:
		return mutexIdentity(info, e.X)
	}
	return nil
}

// ioInterfaceMethods are interface methods that mean "dynamic I/O of
// unknown latency" when dispatched through an io (or net/http)
// interface value.
var ioInterfaceMethods = map[string]bool{
	"Read": true, "Write": true, "Close": true, "ReadFrom": true,
	"WriteTo": true, "WriteString": true, "Flush": true,
}

// stdlibBlockingCall classifies calls into the standard library that
// can block for an unbounded time. It returns a human description or
// "".
func stdlibBlockingCall(info *types.Info, call *ast.CallExpr) string {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	// Interface dispatch: io.Writer/io.Reader style methods on an
	// interface value are I/O of unknown latency.
	if s, ok := info.Selections[sel]; ok && s.Kind() == types.MethodVal {
		if fn, ok := s.Obj().(*types.Func); ok && fn.Pkg() != nil {
			recvSig := fn.Type().(*types.Signature)
			if recvSig.Recv() != nil {
				if _, isIface := recvSig.Recv().Type().Underlying().(*types.Interface); isIface {
					p := fn.Pkg().Path()
					if (p == "io" || p == "net/http") && ioInterfaceMethods[fn.Name()] {
						return fmt.Sprintf("calling %s.%s through an %s interface (dynamic I/O)", exprString(sel.X), fn.Name(), p)
					}
				}
			}
		}
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return ""
	}
	pkg, name := fn.Pkg().Path(), fn.Name()
	recvNamed := func() string {
		sig := fn.Type().(*types.Signature)
		if sig.Recv() == nil {
			return ""
		}
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if n, ok := t.(*types.Named); ok {
			return n.Obj().Name()
		}
		return ""
	}
	switch {
	case pkg == "time" && name == "Sleep":
		return "calling time.Sleep"
	case pkg == "sync" && name == "Wait" && recvNamed() == "WaitGroup":
		return "calling sync.WaitGroup.Wait"
	case pkg == "net" || strings.HasPrefix(pkg, "net/") || pkg == "os/exec":
		return fmt.Sprintf("calling %s.%s (network/process I/O)", pkg, name)
	case pkg == "encoding/json" && (name == "Encode" || name == "Decode"):
		return fmt.Sprintf("calling (*json.%s).%s (reads/writes an io stream)", recvNamed(), name)
	case pkg == "io" && (name == "Copy" || name == "CopyN" || name == "ReadAll" || name == "ReadFull"):
		return "calling io." + name
	case pkg == "io" && name == "WriteString":
		if len(call.Args) > 0 && neverFailsWriter(info, call.Args[0]) {
			return ""
		}
		return "calling io.WriteString to an unknown writer"
	case pkg == "fmt" && strings.HasPrefix(name, "Fprint"):
		if len(call.Args) > 0 && neverFailsWriter(info, call.Args[0]) {
			return ""
		}
		return "calling fmt." + name + " to an unknown writer"
	case pkg == "bufio" && name == "Flush":
		return "calling (*bufio.Writer).Flush"
	case pkg == "os" && recvNamed() == "File" &&
		(name == "Read" || name == "Write" || name == "WriteString" || name == "Sync" || name == "ReadFrom"):
		return "calling (*os.File)." + name + " (file I/O)"
	}
	return ""
}

// condWaitCall reports a sync.Cond.Wait call — it blocks, but it also
// releases the lock it was built with, so the intraprocedural walk must
// not flag it; it only feeds the transitive blocking fact.
func condWaitCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Wait" {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return false
	}
	sig := fn.Type().(*types.Signature)
	if sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	return ok && n.Obj().Name() == "Cond"
}

// lockChecker carries the module-wide state of one lockcheck run.
type lockChecker struct {
	p *ModulePass
	// blocks memoizes the transitive does-this-function-block fact.
	blocks map[*FuncNode]string
	inProg map[*FuncNode]bool
	// order records lock-acquisition pairs: order[a][b] = first site
	// where b was acquired while a was held.
	order map[types.Object]map[types.Object]orderSite
	// edgesAt indexes call-graph edges by call-site position, per node.
	edgesAt map[*FuncNode]map[token.Pos][]*Edge
}

type orderSite struct {
	pos          token.Pos
	first, later string
}

// selectBlocking reports whether a select statement can block (no
// default clause).
func selectBlocking(s *ast.SelectStmt) bool {
	for _, c := range s.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			return false
		}
	}
	return true
}

// directBlockDesc describes the first directly-blocking operation in
// the body of n ("" when none): channel ops, blocking selects, known
// stdlib blockers, Cond.Wait. Used for the transitive fact, so
// Cond.Wait counts here even though the walk never reports it
// directly.
func (lc *lockChecker) directBlockDesc(n *FuncNode) string {
	if !n.InModule() {
		return ""
	}
	info := n.Pkg.Info
	nonBlockingComm := lc.nonBlockingCommSpans(n)
	desc := ""
	ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
		if node == nil || desc != "" {
			return desc == ""
		}
		switch node := node.(type) {
		case *ast.SendStmt:
			if !nonBlockingComm.covers(node.Pos()) {
				desc = "sending on a channel"
			}
		case *ast.UnaryExpr:
			if node.Op == token.ARROW && !nonBlockingComm.covers(node.Pos()) {
				desc = "receiving from a channel"
			}
		case *ast.SelectStmt:
			if selectBlocking(node) {
				desc = "blocking in a select"
			}
		case *ast.RangeStmt:
			if tv, ok := info.Types[node.X]; ok && tv.Type != nil {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					desc = "ranging over a channel"
				}
			}
		case *ast.CallExpr:
			if condWaitCall(info, node) {
				desc = "calling sync.Cond.Wait"
			} else if d := stdlibBlockingCall(info, node); d != "" {
				desc = d
			}
		}
		return desc == ""
	})
	return desc
}

// spanSet is a small position-interval set.
type spanSet []span

func (s spanSet) covers(pos token.Pos) bool {
	for _, sp := range s {
		if sp.contains(pos) {
			return true
		}
	}
	return false
}

// nonBlockingCommSpans collects the comm-clause headers of selects WITH
// a default clause — channel ops there never block.
func (lc *lockChecker) nonBlockingCommSpans(n *FuncNode) spanSet {
	var out spanSet
	ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
		sel, ok := node.(*ast.SelectStmt)
		if !ok || selectBlocking(sel) {
			return true
		}
		for _, c := range sel.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm != nil {
				out = append(out, span{cc.Comm.Pos(), cc.Comm.End()})
			}
		}
		return true
	})
	return out
}

// transitiveBlocks reports whether calling n can block, following
// non-goroutine call edges through module bodies.
func (lc *lockChecker) transitiveBlocks(n *FuncNode) string {
	if d, ok := lc.blocks[n]; ok {
		return d
	}
	if lc.inProg[n] {
		return "" // cycle: assume non-blocking unless proven elsewhere
	}
	lc.inProg[n] = true
	defer delete(lc.inProg, n)
	d := lc.directBlockDesc(n)
	if d == "" && n.InModule() {
		for _, e := range n.Out {
			if e.Go {
				continue
			}
			if sub := lc.transitiveBlocks(e.Callee); sub != "" {
				d = fmt.Sprintf("%s, which blocks: %s", FormatChain(n, []*Edge{e}), sub)
				break
			}
		}
	}
	lc.blocks[n] = d
	return d
}

func runLockCheck(p *ModulePass) {
	lc := &lockChecker{
		p:       p,
		blocks:  map[*FuncNode]string{},
		inProg:  map[*FuncNode]bool{},
		order:   map[types.Object]map[types.Object]orderSite{},
		edgesAt: map[*FuncNode]map[token.Pos][]*Edge{},
	}
	for _, n := range p.Graph.Nodes() {
		if !n.InModule() {
			continue
		}
		idx := map[token.Pos][]*Edge{}
		for _, e := range n.Out {
			idx[e.Pos] = append(idx[e.Pos], e)
		}
		lc.edgesAt[n] = idx
		lc.walkFunction(n)
	}
	lc.reportOrdering()
}

// walkFunction tracks the held-lock set through one body in source
// order and reports blocking operations inside critical sections.
func (lc *lockChecker) walkFunction(n *FuncNode) {
	info := n.Pkg.Info
	dirs := lc.p.Dirs(n.Pkg)
	nonBlockingComm := lc.nonBlockingCommSpans(n)
	held := map[types.Object]string{} // identity → display name
	heldOrder := []types.Object{}     // acquisition order for messages

	report := func(pos token.Pos, desc string) {
		if len(held) == 0 || dirs.covered("lockok", pos) {
			return
		}
		names := make([]string, 0, len(held))
		for _, o := range heldOrder {
			if name, ok := held[o]; ok {
				names = append(names, name)
			}
		}
		lc.p.Report(pos, fmt.Sprintf("%s held while %s in %s", strings.Join(names, ", "), desc, n.ShortName()), lockSuggestion)
	}

	ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
		if node == nil {
			return true
		}
		switch node := node.(type) {
		case *ast.FuncLit:
			// A closure body runs later, not inside this critical
			// section; its own locks are walked via the enclosing
			// declaration's graph attribution only for edges, which is
			// a documented approximation.
			return false
		case *ast.DeferStmt:
			if m, obj, _ := classifyLockCall(info, node.Call); m == lockRelease && obj != nil {
				// defer Unlock: the lock stays held until return — keep
				// it in the held set for the rest of the walk.
				return false
			}
			return true
		case *ast.SendStmt:
			if !nonBlockingComm.covers(node.Pos()) {
				report(node.Pos(), "sending on a channel")
			}
		case *ast.UnaryExpr:
			if node.Op == token.ARROW && !nonBlockingComm.covers(node.Pos()) {
				report(node.Pos(), "receiving from a channel")
			}
		case *ast.SelectStmt:
			if selectBlocking(node) {
				report(node.Pos(), "blocking in a select")
			}
		case *ast.RangeStmt:
			if tv, ok := info.Types[node.X]; ok && tv.Type != nil {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					report(node.Pos(), "ranging over a channel")
				}
			}
		case *ast.CallExpr:
			m, obj, name := classifyLockCall(info, node)
			switch m {
			case lockAcquire:
				if obj != nil {
					if _, already := held[obj]; already {
						if !dirs.covered("lockok", node.Pos()) {
							lc.p.Report(node.Pos(), fmt.Sprintf("%s acquired while already held in %s (Go mutexes are not reentrant)", name, n.ShortName()), lockSuggestion)
						}
					} else {
						for _, h := range heldOrder {
							if _, ok := held[h]; ok && h != obj {
								lc.recordOrder(h, obj, held[h], name, node.Pos())
							}
						}
						held[obj] = name
						heldOrder = append(heldOrder, obj)
					}
				}
				return false
			case lockRelease:
				if obj != nil {
					delete(held, obj)
				}
				return false
			}
			if condWaitCall(info, node) {
				return true // releases its lock; not a critical-section stall
			}
			if d := stdlibBlockingCall(info, node); d != "" {
				report(node.Pos(), d)
				return true
			}
			if len(held) > 0 {
				for _, e := range lc.edgesAt[n][node.Pos()] {
					if e.Go || !e.Callee.InModule() {
						continue
					}
					if sub := lc.transitiveBlocks(e.Callee); sub != "" {
						report(node.Pos(), fmt.Sprintf("calling %s, which blocks: %s", e.Callee.ShortName(), sub))
						break
					}
				}
			}
		}
		return true
	})
}

// recordOrder notes "later acquired while first held" at pos.
func (lc *lockChecker) recordOrder(first, later types.Object, firstName, laterName string, pos token.Pos) {
	m, ok := lc.order[first]
	if !ok {
		m = map[types.Object]orderSite{}
		lc.order[first] = m
	}
	if _, ok := m[later]; !ok {
		m[later] = orderSite{pos: pos, first: firstName, later: laterName}
	}
}

// reportOrdering flags AB/BA cycles across the whole module.
func (lc *lockChecker) reportOrdering() {
	type finding struct {
		a, b orderSite
	}
	var findings []finding
	//csecg:orderok findings are sorted by position before reporting
	for a, m := range lc.order {
		//csecg:orderok findings are sorted by position before reporting
		for b, site := range m {
			rev, ok := lc.order[b][a]
			if !ok {
				continue
			}
			// Emit each unordered pair once, from its lower position.
			if site.pos < rev.pos {
				findings = append(findings, finding{a: site, b: rev})
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool { return findings[i].a.pos < findings[j].a.pos })
	for _, f := range findings {
		lc.p.Report(f.a.pos,
			fmt.Sprintf("inconsistent lock ordering: %s acquired while %s held here, but the opposite order occurs at %s",
				f.a.later, f.a.first, lc.p.Fset.Position(f.b.pos)),
			"pick one acquisition order module-wide, or collapse the two critical sections")
	}
}
