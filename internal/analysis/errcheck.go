package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
)

// ErrCheck flags call statements that drop an error return, module-wide.
// A silently swallowed error in the transport or decoder path turns a
// recoverable telemetry fault into corrupt reconstruction. Explicitly
// assigning the error to _ counts as a deliberate discard and is not
// flagged; the same goes for the //csecg:errok waiver and a small
// allowlist of never-fails writers (strings.Builder, bytes.Buffer,
// fmt.Print*).
var ErrCheck = &Analyzer{
	Name: "errcheck",
	Doc:  "flag dropped error returns",
	Run:  runErrCheck,
}

var errorType = types.Universe.Lookup("error").Type()

// errcheckAllowedFmt are fmt functions whose error returns are
// conventionally ignored (they write to stdout).
var errcheckAllowedFmt = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
}

// errcheckAllowedFprint are fmt functions whose error is ignorable when
// the destination writer never fails (strings.Builder, bytes.Buffer) or
// is a process standard stream (same convention as fmt.Print*).
var errcheckAllowedFprint = map[string]bool{
	"Fprint": true, "Fprintf": true, "Fprintln": true,
}

// errcheckAllowedRecv are receiver types whose methods document that the
// returned error is always nil.
var errcheckAllowedRecv = map[string]bool{
	"strings.Builder": true,
	"bytes.Buffer":    true,
}

func runErrCheck(pass *Pass) {
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			var call *ast.CallExpr
			switch n := n.(type) {
			case *ast.ExprStmt:
				c, ok := n.X.(*ast.CallExpr)
				if !ok {
					return true
				}
				call = c
			case *ast.DeferStmt:
				call = n.Call
			case *ast.GoStmt:
				call = n.Call
			default:
				return true
			}
			if pass.Dirs.covered("errok", call.Pos()) {
				return true
			}
			if !callReturnsError(info, call) || callErrorAllowed(info, call) {
				return true
			}
			pass.Report(call.Pos(), fmt.Sprintf("result of %s includes an error that is dropped", exprString(call.Fun)),
				"handle the error, assign it to _ to discard explicitly, or waive with //csecg:errok")
			return true
		})
	}
}

// callReturnsError reports whether any result of the call is an error.
func callReturnsError(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call.Fun]
	if !ok || tv.IsType() {
		return false
	}
	sig, ok := tv.Type.(*types.Signature)
	if !ok {
		return false
	}
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		if types.Identical(res.At(i).Type(), errorType) {
			return true
		}
	}
	return false
}

// callErrorAllowed reports whether the callee is on the never-fails
// allowlist.
func callErrorAllowed(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj, ok := info.Uses[sel.Sel]
	if !ok {
		return false
	}
	fn, ok := obj.(*types.Func)
	if !ok {
		return false
	}
	if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		if errcheckAllowedFmt[fn.Name()] {
			return true
		}
		if errcheckAllowedFprint[fn.Name()] && len(call.Args) > 0 && neverFailsWriter(info, call.Args[0]) {
			return true
		}
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	recv := sig.Recv().Type()
	if p, ok := recv.(*types.Pointer); ok {
		recv = p.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	key := named.Obj().Pkg().Path() + "." + named.Obj().Name()
	return errcheckAllowedRecv[key]
}

// neverFailsWriter reports whether arg is a writer whose Write never
// returns a non-nil error: a *strings.Builder, a *bytes.Buffer, or one
// of the process standard streams (os.Stdout, os.Stderr).
func neverFailsWriter(info *types.Info, arg ast.Expr) bool {
	if sel, ok := arg.(*ast.SelectorExpr); ok {
		if obj, ok := info.Uses[sel.Sel]; ok && obj.Pkg() != nil &&
			obj.Pkg().Path() == "os" && (obj.Name() == "Stdout" || obj.Name() == "Stderr") {
			return true
		}
	}
	tv, ok := info.Types[arg]
	if !ok || tv.Type == nil {
		return false
	}
	t := tv.Type
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return errcheckAllowedRecv[named.Obj().Pkg().Path()+"."+named.Obj().Name()]
}
