package analysis

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// satQ15RE matches the whole satQ15 function in internal/fixedpoint.
var satQ15RE = regexp.MustCompile(`(?s)func satQ15\(s int32\) Q15 \{.*?\n\}`)

// loadFixedpointVariant copies internal/fixedpoint's source (optionally
// mutated) into a temp package and runs rangecheck over it.
func loadFixedpointVariant(t *testing.T, mutate func(string) string) []Diagnostic {
	t.Helper()
	src, err := os.ReadFile(filepath.Join("..", "fixedpoint", "fixedpoint.go"))
	if err != nil {
		t.Fatal(err)
	}
	code := string(src)
	if mutate != nil {
		code = mutate(code)
	}
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "fixedpoint.go"), []byte(code), 0o644); err != nil {
		t.Fatal(err)
	}
	const ip = "fixedpointvariant"
	pkg, fset, err := LoadDir(dir, ip)
	if err != nil {
		t.Fatalf("type-checking variant: %v", err)
	}
	return RunPackage(fset, pkg, Config{DevicePackages: []string{ip}}, []*Analyzer{RangeCheck})
}

// TestFixedpointProvesClean pins the ISSUE's core soundness claim: the
// saturation clamps in internal/fixedpoint are themselves the proof.
// rangecheck must find nothing there without a single waiver.
func TestFixedpointProvesClean(t *testing.T) {
	for _, d := range loadFixedpointVariant(t, nil) {
		t.Errorf("unexpected finding on unmodified fixedpoint: %s", d)
	}
}

// TestFixedpointClampRemovalDetected is the negative control: deleting
// the satQ15 saturation clamp must make rangecheck fail. This is what
// distinguishes a proof from a lint — the analyzer passes because the
// clamp is there, not because the file is waived.
func TestFixedpointClampRemovalDetected(t *testing.T) {
	diags := loadFixedpointVariant(t, func(code string) string {
		mutated := satQ15RE.ReplaceAllString(code, "func satQ15(s int32) Q15 {\n\treturn Q15(s)\n}")
		if mutated == code {
			t.Fatal("satQ15 clamp pattern not found; update satQ15RE alongside fixedpoint.go")
		}
		return mutated
	})
	if len(diags) == 0 {
		t.Fatal("rangecheck found nothing after the satQ15 clamp was deleted")
	}
	found := false
	for _, d := range diags {
		if d.Analyzer == "rangecheck" && strings.Contains(d.Message, "may truncate") {
			found = true
		}
	}
	if !found {
		t.Errorf("expected a truncation finding on the unclamped Q15 conversion, got: %v", diags)
	}
}
