package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// NoFPU forbids floating-point types, literals, conversions, arithmetic
// and calls in device-side packages. The MSP430F1611 encoder has no FPU
// — the paper defers every real-valued scale (notably the sensing
// matrix's 1/√d) to the decoder — so any float reaching the mote path is
// a porting bug. Host-side modeling code inside a device package (cycle
// accounting, decoder halves, offline training) is exempted with
// //csecg:host.
var NoFPU = &Analyzer{
	Name: "nofpu",
	Doc:  "forbid floating point in device-side (mote) packages, transitively through the call graph",
	Run:  runNoFPU,
	// The transitive half (DESIGN.md §12) walks the call graph so a
	// device function cannot smuggle floats in through a callee with a
	// clean integer signature.
	RunModule: runNoFPUTransitive,
}

const fpSuggestion = "use integer or internal/fixedpoint Q15/Q31 arithmetic, or mark host-side modeling code //csecg:host"

// containsFloat reports whether t directly stores float32/float64 data:
// a float basic type, or a slice/array/map/chan of one. Traversal
// deliberately stops at pointers and struct types — a struct holding a
// float field is caught once, at the field's own declaration, rather
// than at every use of the containing type; and type parameters never
// count (a generic is only float-bearing at a float instantiation,
// which lives host-side).
func containsFloat(t types.Type) bool {
	return typeHasFloat(t, map[types.Type]bool{})
}

func typeHasFloat(t types.Type, seen map[types.Type]bool) bool {
	if t == nil || seen[t] {
		return false
	}
	seen[t] = true
	switch t := t.Underlying().(type) {
	case *types.Basic:
		switch t.Kind() {
		case types.Float32, types.Float64, types.Complex64, types.Complex128,
			types.UntypedFloat, types.UntypedComplex:
			return true
		}
	case *types.Slice:
		return typeHasFloat(t.Elem(), seen)
	case *types.Array:
		return typeHasFloat(t.Elem(), seen)
	case *types.Map:
		return typeHasFloat(t.Key(), seen) || typeHasFloat(t.Elem(), seen)
	case *types.Chan:
		return typeHasFloat(t.Elem(), seen)
	}
	return false
}

// signatureHasFloat reports whether any concrete parameter or result of
// sig is floating point (type parameters don't count: a generic function
// is only float-bearing at a float instantiation, which the call site's
// own types reveal).
func signatureHasFloat(sig *types.Signature) bool {
	tuples := []*types.Tuple{sig.Params(), sig.Results()}
	for _, tp := range tuples {
		for i := 0; i < tp.Len(); i++ {
			if containsFloat(tp.At(i).Type()) {
				return true
			}
		}
	}
	return false
}

func runNoFPU(pass *Pass) {
	if !pass.Config.isDevice(pass.Pkg.ImportPath) {
		return
	}
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			if n == nil {
				return true
			}
			if pass.Dirs.covered("host", n.Pos()) {
				// Still descend: covered() is checked per node, and an
				// exempt range covers all its children anyway — skipping
				// the subtree is just an optimization.
				return false
			}
			switch n := n.(type) {
			case *ast.Ident:
				obj := info.Defs[n]
				if obj == nil {
					return true
				}
				switch obj.(type) {
				case *types.Var, *types.Const, *types.TypeName:
					if containsFloat(obj.Type()) {
						pass.Report(n.Pos(), fmt.Sprintf("declares %q with floating-point type %s", n.Name, obj.Type()), fpSuggestion)
					}
				}
			case *ast.BasicLit:
				if tv, ok := info.Types[ast.Expr(n)]; ok && tv.Type != nil && containsFloat(tv.Type) {
					pass.Report(n.Pos(), fmt.Sprintf("floating-point constant %s", n.Value), fpSuggestion)
				}
			case *ast.CallExpr:
				tv, ok := info.Types[n.Fun]
				if !ok {
					return true
				}
				if tv.IsType() {
					if containsFloat(tv.Type) {
						pass.Report(n.Pos(), fmt.Sprintf("conversion to floating-point type %s", tv.Type), fpSuggestion)
					}
					return true
				}
				if sig, ok := tv.Type.(*types.Signature); ok && signatureHasFloat(sig) {
					pass.Report(n.Pos(), fmt.Sprintf("calls %s, whose signature uses floating point", exprString(n.Fun)), fpSuggestion)
				}
			case *ast.BinaryExpr:
				if tv, ok := info.Types[ast.Expr(n)]; ok && tv.Type != nil && containsFloat(tv.Type) {
					pass.Report(n.Pos(), "floating-point arithmetic", fpSuggestion)
				}
			case *ast.UnaryExpr:
				if tv, ok := info.Types[ast.Expr(n)]; ok && tv.Type != nil && containsFloat(tv.Type) {
					pass.Report(n.Pos(), "floating-point arithmetic", fpSuggestion)
				}
			}
			return true
		})
	}
}

// floatUseIn returns the first floating-point use in root (declaration,
// constant, conversion, call with a float-bearing signature, or float
// arithmetic), without applying any //csecg:host exemption — the
// transitive nofpu half uses it to characterize callee bodies, where
// reaching host-side float code from a device function is exactly the
// finding.
func floatUseIn(info *types.Info, root ast.Node) (token.Pos, string, bool) {
	var pos token.Pos
	var desc string
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil || found {
			return !found
		}
		switch n := n.(type) {
		case *ast.Ident:
			obj := info.Defs[n]
			if obj == nil {
				return true
			}
			switch obj.(type) {
			case *types.Var, *types.Const, *types.TypeName:
				if containsFloat(obj.Type()) {
					pos, desc, found = n.Pos(), fmt.Sprintf("declares %q with floating-point type %s", n.Name, obj.Type()), true
				}
			}
		case *ast.BasicLit:
			if tv, ok := info.Types[ast.Expr(n)]; ok && tv.Type != nil && containsFloat(tv.Type) {
				pos, desc, found = n.Pos(), fmt.Sprintf("floating-point constant %s", n.Value), true
			}
		case *ast.CallExpr:
			tv, ok := info.Types[n.Fun]
			if !ok {
				return true
			}
			if tv.IsType() {
				if containsFloat(tv.Type) {
					pos, desc, found = n.Pos(), fmt.Sprintf("conversion to floating-point type %s", tv.Type), true
				}
				return !found
			}
			if sig, ok := tv.Type.(*types.Signature); ok && signatureHasFloat(sig) {
				pos, desc, found = n.Pos(), fmt.Sprintf("calls %s, whose signature uses floating point", exprString(n.Fun)), true
			}
		case *ast.BinaryExpr, *ast.UnaryExpr:
			if tv, ok := info.Types[n.(ast.Expr)]; ok && tv.Type != nil && containsFloat(tv.Type) {
				pos, desc, found = n.Pos(), "floating-point arithmetic", true
			}
		}
		return !found
	})
	return pos, desc, found
}

// exprString renders a (selector) expression compactly for messages.
func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.IndexExpr:
		return exprString(e.X)
	case *ast.IndexListExpr:
		return exprString(e.X)
	case *ast.ParenExpr:
		return exprString(e.X)
	default:
		return "expression"
	}
}
