package analysis

import "testing"

// Repro 2: state reaching the next case via fallthrough is dropped.
func TestScratchFallthrough(t *testing.T) {
	diags := runScratch(t, `package scratchpkg

func H(n int, k int16) int16 {
	var acc int16
	switch {
	case n > 0:
		acc = 30000
		fallthrough
	case n < 100:
		acc += 3000
	}
	return acc
}
`)
	if len(diags) == 0 {
		t.Error("repro2: expected overflow finding (30000+3000 wraps int16), got none")
	}
	for _, d := range diags {
		t.Logf("repro2: %s", d)
	}
}
