package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
	"strconv"
)

// Determinism protects bit-reproducibility in library packages
// (everything outside cmd/ and examples/): the mote and coordinator
// regenerate the same sparse Φ from a shared seed, so wire output must
// not depend on math/rand's global state, wall-clock time, or Go's
// randomized map iteration order. Flags: math/rand imports, time.Now
// calls (waive intentional uses with //csecg:nondet) and ranging over a
// map (waive order-independent reductions with //csecg:orderok).
var Determinism = &Analyzer{
	Name: "determinism",
	Doc:  "forbid nondeterminism sources in library packages",
	Run:  runDeterminism,
}

func runDeterminism(pass *Pass) {
	if !pass.Config.isLibrary(pass.Pkg.ImportPath) {
		return
	}
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		for _, imp := range file.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if path == "math/rand" || path == "math/rand/v2" {
				if pass.Dirs.covered("nondet", imp.Pos()) {
					continue
				}
				pass.Report(imp.Pos(), fmt.Sprintf("library package imports %s, whose global state breaks seeded reproducibility", path),
					"use internal/rng (seeded Xoshiro256**) so mote and coordinator regenerate identical streams")
			}
		}
		ast.Inspect(file, func(n ast.Node) bool {
			if n == nil {
				return true
			}
			switch n := n.(type) {
			case *ast.CallExpr:
				sel, ok := n.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				obj, ok := info.Uses[sel.Sel]
				if !ok || obj.Pkg() == nil {
					return true
				}
				if obj.Pkg().Path() == "time" && obj.Name() == "Now" {
					if !pass.Dirs.covered("nondet", n.Pos()) {
						pass.Report(n.Pos(), "time.Now in a library package makes output depend on wall-clock time",
							"inject a clock from the caller, or waive intentional instrumentation with //csecg:nondet")
					}
				}
			case *ast.RangeStmt:
				tv, ok := info.Types[n.X]
				if !ok || tv.Type == nil {
					return true
				}
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
					if !pass.Dirs.covered("orderok", n.Pos()) {
						pass.Report(n.Pos(), "map iteration order is randomized; ranging over a map in a library package risks nondeterministic output",
							"iterate sorted keys, or waive an order-independent reduction with //csecg:orderok")
					}
				}
			}
			return true
		})
	}
}
