package analysis

import (
	"go/types"
	"testing"
)

func TestIntervalLatticeOps(t *testing.T) {
	a := Interval{-5, 10}
	b := Interval{3, 20}
	if got := a.Union(b); got != (Interval{-5, 20}) {
		t.Errorf("Union = %v", got)
	}
	if got := a.Intersect(b); got != (Interval{3, 10}) {
		t.Errorf("Intersect = %v", got)
	}
	if got := a.Intersect(Interval{11, 12}); !got.Empty() {
		t.Errorf("disjoint Intersect = %v, want empty", got)
	}
	if !a.ContainedIn(topInterval) || topInterval.ContainedIn(a) {
		t.Error("ContainedIn wrong against top")
	}
	if !a.Contains(0) || a.Contains(11) {
		t.Error("Contains wrong")
	}
}

func TestIntervalWiden(t *testing.T) {
	prev := Interval{0, 10}
	if got := (Interval{0, 11}).WidenFrom(prev); got != (Interval{0, posInf}) {
		t.Errorf("moved hi: WidenFrom = %v", got)
	}
	if got := (Interval{-1, 10}).WidenFrom(prev); got != (Interval{negInf, 10}) {
		t.Errorf("moved lo: WidenFrom = %v", got)
	}
	if got := prev.WidenFrom(prev); got != prev {
		t.Errorf("stable: WidenFrom = %v", got)
	}
}

func TestIntervalArithmetic(t *testing.T) {
	if got := single(3).Add(Interval{-2, 5}); got != (Interval{1, 8}) {
		t.Errorf("Add = %v", got)
	}
	if got := (Interval{1, 4}).Sub(Interval{2, 3}); got != (Interval{-2, 2}) {
		t.Errorf("Sub = %v", got)
	}
	if got := (Interval{-3, 2}).Neg(); got != (Interval{-2, 3}) {
		t.Errorf("Neg = %v", got)
	}
	// Mul takes the corner products, covering sign flips.
	if got := (Interval{-2, 3}).Mul(Interval{-5, 4}); got != (Interval{-15, 12}) {
		t.Errorf("Mul = %v", got)
	}
	if got := (Interval{1, 1}).Shl(single(4)); got != (Interval{16, 16}) {
		t.Errorf("Shl = %v", got)
	}
	if got := (Interval{-32768, 32767}).Shr(single(15)); got != (Interval{-1, 0}) {
		t.Errorf("Shr = %v", got)
	}
	// Positive divisor: straightforward quotient corners.
	if got := (Interval{-10, 9}).Div(single(3)); got != (Interval{-3, 3}) {
		t.Errorf("Div = %v", got)
	}
	// Mod magnitude is bounded by the divisor and follows the dividend's sign.
	if got := (Interval{0, 100}).Mod(single(8)); got != (Interval{0, 7}) {
		t.Errorf("Mod = %v", got)
	}
	// Masking with a non-negative operand bounds the result.
	if got := (Interval{0, 1000}).BitOp(single(15), "&"); got != (Interval{0, 15}) {
		t.Errorf("BitOp & = %v", got)
	}
	// A possibly-negative operand defeats the bit-level bound.
	if got := (Interval{-1, 1000}).BitOp(single(15), "&"); got != topInterval {
		t.Errorf("BitOp & with negative operand = %v, want top", got)
	}
}

func TestIntervalSaturation(t *testing.T) {
	// Finite overflow saturates to the sentinel instead of wrapping.
	big := Interval{posInf - 1, posInf - 1}
	if got := big.Add(single(10)); got.Hi != posInf {
		t.Errorf("Add near MaxInt64 = %v, want +inf hi", got)
	}
	if got := big.Mul(single(2)); got.Hi != posInf {
		t.Errorf("Mul near MaxInt64 = %v, want +inf hi", got)
	}
	// Sentinels are absorbing through negation and subtraction.
	if got := (Interval{negInf, 0}).Neg(); got != (Interval{0, posInf}) {
		t.Errorf("Neg of [-inf, 0] = %v", got)
	}
	if got := (Interval{0, posInf}).Sub(single(1)); got != (Interval{-1, posInf}) {
		t.Errorf("Sub from [0, +inf] = %v", got)
	}
}

func TestTypeInterval(t *testing.T) {
	cases := []struct {
		kind types.BasicKind
		want Interval
	}{
		{types.Int16, Interval{-32768, 32767}},
		{types.Int32, Interval{-1 << 31, 1<<31 - 1}},
		{types.Uint8, Interval{0, 255}},
		{types.Int8, Interval{-128, 127}},
	}
	for _, c := range cases {
		got, ok := typeInterval(types.Typ[c.kind])
		if !ok || got != c.want {
			t.Errorf("typeInterval(%v) = %v, %v; want %v", c.kind, got, ok, c.want)
		}
	}
	if _, ok := typeInterval(types.Typ[types.Float64]); ok {
		t.Error("typeInterval accepted float64")
	}
}

func TestIntervalString(t *testing.T) {
	if got := (Interval{-3, 7}).String(); got != "[-3, 7]" {
		t.Errorf("String = %q", got)
	}
	if got := topInterval.String(); got != "[-inf, +inf]" {
		t.Errorf("top String = %q", got)
	}
	if got := emptyInterval.String(); got != "∅" {
		t.Errorf("empty String = %q", got)
	}
}
