package analysis

import (
	"fmt"
	"go/constant"
	"go/types"
	"math"
)

// This file is the abstract domain of the v3 interval engine: signed
// integer intervals with saturating int64 bounds. math.MinInt64 and
// math.MaxInt64 double as -∞/+∞ sentinels — every concrete value a Go
// integer expression of width ≤ 64 can take fits strictly inside, except
// the extremes themselves, and conflating "exactly MinInt64" with "−∞"
// only ever widens an interval, which is the sound direction for an
// analyzer whose findings are "this may wrap".

const (
	negInf = math.MinInt64
	posInf = math.MaxInt64
)

// Interval is the inclusive value range [Lo, Hi]; Lo > Hi is the empty
// set (an unreachable value, e.g. after contradictory refinements).
type Interval struct{ Lo, Hi int64 }

var (
	topInterval   = Interval{negInf, posInf}
	emptyInterval = Interval{1, 0}
)

func single(v int64) Interval { return Interval{v, v} }

// Empty reports whether the interval contains no values.
func (iv Interval) Empty() bool { return iv.Lo > iv.Hi }

// Contains reports whether v is in the interval.
func (iv Interval) Contains(v int64) bool { return iv.Lo <= v && v <= iv.Hi }

// ContainedIn reports iv ⊆ o (the empty interval is contained in all).
func (iv Interval) ContainedIn(o Interval) bool {
	return iv.Empty() || !o.Empty() && o.Lo <= iv.Lo && iv.Hi <= o.Hi
}

// Union returns the convex hull of both intervals.
func (iv Interval) Union(o Interval) Interval {
	if iv.Empty() {
		return o
	}
	if o.Empty() {
		return iv
	}
	return Interval{min(iv.Lo, o.Lo), max(iv.Hi, o.Hi)}
}

// Intersect returns the common sub-range (possibly empty).
func (iv Interval) Intersect(o Interval) Interval {
	return Interval{max(iv.Lo, o.Lo), min(iv.Hi, o.Hi)}
}

// WidenFrom accelerates a fixpoint: any bound that moved since prev
// jumps straight to its infinity, so loops converge in O(1) passes.
func (iv Interval) WidenFrom(prev Interval) Interval {
	if prev.Empty() || iv.Empty() {
		return iv
	}
	w := iv
	if iv.Lo < prev.Lo {
		w.Lo = negInf
	}
	if iv.Hi > prev.Hi {
		w.Hi = posInf
	}
	return w
}

// String renders "[lo, hi]" with infinity sentinels spelled out.
func (iv Interval) String() string {
	if iv.Empty() {
		return "∅"
	}
	lo, hi := "-inf", "+inf"
	if iv.Lo != negInf {
		lo = fmt.Sprintf("%d", iv.Lo)
	}
	if iv.Hi != posInf {
		hi = fmt.Sprintf("%d", iv.Hi)
	}
	return "[" + lo + ", " + hi + "]"
}

// Saturating bound arithmetic. Sentinels are absorbing; finite overflow
// saturates toward the overflow direction.

func addBound(a, b int64) int64 {
	switch {
	case a == negInf || b == negInf:
		return negInf
	case a == posInf || b == posInf:
		return posInf
	}
	s := a + b
	switch {
	case b > 0 && s < a:
		return posInf
	case b < 0 && s > a:
		return negInf
	}
	return s
}

func negBound(a int64) int64 {
	switch a {
	case negInf:
		return posInf
	case posInf:
		return negInf
	}
	return -a
}

func mulBound(a, b int64) int64 {
	if a == 0 || b == 0 {
		return 0
	}
	neg := (a < 0) != (b < 0)
	inf := int64(posInf)
	if neg {
		inf = negInf
	}
	if a == negInf || a == posInf || b == negInf || b == posInf {
		return inf
	}
	p := a * b
	if p/b != a {
		return inf
	}
	return p
}

func shlBound(a, k int64) int64 {
	if a == 0 {
		return 0
	}
	if a == negInf || a == posInf {
		return a
	}
	inf := int64(posInf)
	if a < 0 {
		inf = negInf
	}
	if k >= 63 {
		return inf
	}
	r := a << uint(k)
	if r>>uint(k) != a {
		return inf
	}
	return r
}

func shrBound(a, k int64) int64 {
	if a == negInf || a == posInf {
		return a
	}
	if k > 63 {
		k = 63
	}
	return a >> uint(k)
}

// Add returns the interval of a+b over all pairs.
func (iv Interval) Add(o Interval) Interval {
	if iv.Empty() || o.Empty() {
		return emptyInterval
	}
	return Interval{addBound(iv.Lo, o.Lo), addBound(iv.Hi, o.Hi)}
}

// Sub returns the interval of a−b over all pairs.
func (iv Interval) Sub(o Interval) Interval {
	if iv.Empty() || o.Empty() {
		return emptyInterval
	}
	return Interval{addBound(iv.Lo, negBound(o.Hi)), addBound(iv.Hi, negBound(o.Lo))}
}

// Neg returns the interval of −a.
func (iv Interval) Neg() Interval {
	if iv.Empty() {
		return emptyInterval
	}
	return Interval{negBound(iv.Hi), negBound(iv.Lo)}
}

// Mul returns the interval of a×b; products are monotone in each
// operand, so the four corner products bound the result.
func (iv Interval) Mul(o Interval) Interval {
	if iv.Empty() || o.Empty() {
		return emptyInterval
	}
	c := [4]int64{
		mulBound(iv.Lo, o.Lo), mulBound(iv.Lo, o.Hi),
		mulBound(iv.Hi, o.Lo), mulBound(iv.Hi, o.Hi),
	}
	r := Interval{c[0], c[0]}
	for _, v := range c[1:] {
		r.Lo = min(r.Lo, v)
		r.Hi = max(r.Hi, v)
	}
	return r
}

// Shl returns the interval of a << k for shift counts clamped to
// [0, 63] (counts beyond only shift more bits out, which the clamp
// already saturates; negative counts panic at runtime, not here).
func (iv Interval) Shl(k Interval) Interval {
	if iv.Empty() || k.Empty() {
		return emptyInterval
	}
	kl, kh := max(k.Lo, 0), min(max(k.Hi, 0), 63)
	c := [4]int64{
		shlBound(iv.Lo, kl), shlBound(iv.Lo, kh),
		shlBound(iv.Hi, kl), shlBound(iv.Hi, kh),
	}
	r := Interval{c[0], c[0]}
	for _, v := range c[1:] {
		r.Lo = min(r.Lo, v)
		r.Hi = max(r.Hi, v)
	}
	return r
}

// Shr returns the interval of the arithmetic shift a >> k.
func (iv Interval) Shr(k Interval) Interval {
	if iv.Empty() || k.Empty() {
		return emptyInterval
	}
	kl, kh := max(k.Lo, 0), min(max(k.Hi, 0), 63)
	c := [4]int64{
		shrBound(iv.Lo, kl), shrBound(iv.Lo, kh),
		shrBound(iv.Hi, kl), shrBound(iv.Hi, kh),
	}
	r := Interval{c[0], c[0]}
	for _, v := range c[1:] {
		r.Lo = min(r.Lo, v)
		r.Hi = max(r.Hi, v)
	}
	return r
}

func divBound(a, d int64) int64 {
	if a == negInf || a == posInf {
		if d < 0 {
			return negBound(a)
		}
		return a
	}
	if d == negInf || d == posInf {
		return 0 // |d| > |a|: quotient truncates to zero
	}
	return a / d
}

// Div returns the interval of the truncating quotient a/b. Division by
// zero panics at runtime and contributes no value; MinInt/−1 (the one
// wrapping case) is absorbed by the sentinel bounds.
func (iv Interval) Div(o Interval) Interval {
	if iv.Empty() || o.Empty() {
		return emptyInterval
	}
	r := emptyInterval
	// Positive divisors [max(Lo,1), Hi] and negative [Lo, min(Hi,−1)],
	// each monotone in both operands.
	if ph := o.Hi; ph >= 1 {
		pl := max(o.Lo, 1)
		part := Interval{
			min(divBound(iv.Lo, pl), divBound(iv.Lo, ph)),
			max(divBound(iv.Hi, pl), divBound(iv.Hi, ph)),
		}
		r = r.Union(part)
	}
	if nl := o.Lo; nl <= -1 {
		nh := min(o.Hi, -1)
		part := Interval{
			min(divBound(iv.Hi, nl), divBound(iv.Hi, nh)),
			max(divBound(iv.Lo, nl), divBound(iv.Lo, nh)),
		}
		r = r.Union(part)
	}
	return r
}

func magHi(iv Interval) int64 {
	return max(negBound(iv.Lo), iv.Hi)
}

// Mod returns the interval of a%b: the remainder's sign follows a and
// its magnitude is below both |a| and |b|.
func (iv Interval) Mod(o Interval) Interval {
	if iv.Empty() || o.Empty() {
		return emptyInterval
	}
	m := magHi(o)
	if m != posInf && m > 0 {
		m--
	}
	m = min(m, magHi(iv))
	r := Interval{negBound(m), m}
	if iv.Lo >= 0 {
		r.Lo = 0
	}
	if iv.Hi <= 0 {
		r.Hi = 0
	}
	return r
}

// BitOp returns a bound for &, |, ^ and &^. Only non-negative operands
// get a useful bound (the common masking idiom); anything else is top.
func (iv Interval) BitOp(o Interval, op string) Interval {
	if iv.Empty() || o.Empty() {
		return emptyInterval
	}
	if iv.Lo < 0 || o.Lo < 0 {
		return topInterval
	}
	switch op {
	case "&":
		return Interval{0, min(iv.Hi, o.Hi)}
	case "&^":
		return Interval{0, iv.Hi}
	default: // | and ^ stay below the next power of two
		h := max(iv.Hi, o.Hi)
		if h == posInf {
			return Interval{0, posInf}
		}
		b := int64(1)
		for b <= h && b < 1<<62 {
			b <<= 1
		}
		return Interval{0, b - 1}
	}
}

// intSpec resolves t (through named types) to an integer width and
// signedness. The host model sizes int/uint/uintptr at 64 bits — the
// 16-bit device story lives in stackcheck's types.Sizes model, while
// rangecheck deliberately skips 64-bit results (DESIGN.md §15).
func intSpec(t types.Type) (width int, signed, ok bool) {
	b, isBasic := t.Underlying().(*types.Basic)
	if !isBasic {
		return 0, false, false
	}
	switch b.Kind() {
	case types.Int8:
		return 8, true, true
	case types.Int16:
		return 16, true, true
	case types.Int32, types.UntypedRune:
		return 32, true, true
	case types.Int64, types.Int, types.UntypedInt:
		return 64, true, true
	case types.Uint8:
		return 8, false, true
	case types.Uint16:
		return 16, false, true
	case types.Uint32:
		return 32, false, true
	case types.Uint64, types.Uint, types.Uintptr:
		return 64, false, true
	}
	return 0, false, false
}

// typeInterval returns the representable range of an integer type
// (named types — Q15, Q31 — resolve through their underlying basic).
func typeInterval(t types.Type) (Interval, bool) {
	w, signed, ok := intSpec(t)
	if !ok {
		return topInterval, false
	}
	if !signed {
		if w >= 64 {
			return Interval{0, posInf}, true
		}
		return Interval{0, 1<<uint(w) - 1}, true
	}
	if w >= 64 {
		return topInterval, true
	}
	return Interval{-1 << uint(w-1), 1<<uint(w-1) - 1}, true
}

// constInterval converts a typed or untyped constant to an interval.
// Constants beyond int64 saturate toward the matching sentinel.
func constInterval(v constant.Value) (Interval, bool) {
	if v == nil {
		return topInterval, false
	}
	v = constant.ToInt(v)
	if v.Kind() != constant.Int {
		return topInterval, false
	}
	if x, exact := constant.Int64Val(v); exact {
		return single(x), true
	}
	if constant.Sign(v) > 0 {
		return single(posInf), true
	}
	return single(negInf), true
}
