package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// The //csecg: directive grammar. A directive is a line comment of the
// form
//
//	//csecg:<verb> [free-text reason]
//
// whose scope depends on where it sits:
//
//   - in a comment group entirely before the package clause: the whole
//     file;
//   - in the doc (or trailing) comment of a declaration, struct field or
//     const/var spec: that declaration;
//   - trailing a statement, or alone on the line above one: the smallest
//     statement starting on that line.
//
// Verbs:
//
//	host     nofpu exemption — host-side modeling/decoder code; on a
//	         call site it also stops the transitive nofpu walk
//	hotpath  noalloc opt-in — function must not allocate, nor reach an
//	         allocation through any callee (transitive)
//	allocok  noalloc waiver — allocation proven amortized/capped; on a
//	         call site it also stops the transitive noalloc walk
//	orderok  determinism waiver — map iteration proven order-independent
//	nondet   determinism waiver — intentional wall-clock/nondeterminism
//	errok    errcheck waiver — error intentionally discarded
//	lockok   lockcheck waiver — blocking under the lock is the point
//	         (e.g. a writer whose job is serializing I/O)
//	leakok   leakcheck waiver — goroutine terminated by external means
//	         the analyzer cannot see (cond-wakeup, process exit)
//	metricok metriclint waiver — dynamic metric name or unexported
//	         registry proven intentional (export loops, benchmarks)
//	rangeok  rangecheck/shiftidx waiver — wraparound or unprovable
//	         index with an out-of-band bound proof (cite it in the
//	         reason text)
//	stackok  stackcheck waiver — call-site edge excluded from the
//	         worst-case stack walk (proven-cold or proven-bounded
//	         recursion the analyzer cannot see)
//	ram      budget marker — const contributes to the RAM ledger
//	flash    budget marker — const contributes to the flash ledger
//	codebookflash  budget marker — const counts against both the flash
//	         ledger and the codebook sub-budget
const directivePrefix = "//csecg:"

// span is a half-open position interval.
type span struct{ lo, hi token.Pos }

func (s span) contains(pos token.Pos) bool { return pos >= s.lo && pos < s.hi }

// Directives indexes every //csecg: directive of one package by verb.
type Directives struct {
	fset *token.FileSet
	// spans maps verb -> exempted source ranges.
	spans map[string][]span
	// specs maps verb -> marked const/var specs (budget ledgers).
	specs map[string][]*ast.ValueSpec
	// hotpath holds the function declarations opted into noalloc.
	hotpath []*ast.FuncDecl
}

// covered reports whether pos falls inside a verb's exempted range.
func (d *Directives) covered(verb string, pos token.Pos) bool {
	for _, s := range d.spans[verb] {
		if s.contains(pos) {
			return true
		}
	}
	return false
}

// parseVerb extracts the directive verb from one comment, or "".
func parseVerb(c *ast.Comment) string {
	if !strings.HasPrefix(c.Text, directivePrefix) {
		return ""
	}
	rest := c.Text[len(directivePrefix):]
	if i := strings.IndexAny(rest, " \t"); i >= 0 {
		rest = rest[:i]
	}
	return rest
}

// scanDirectives builds the directive index for a package.
func scanDirectives(fset *token.FileSet, pkg *Package) *Directives {
	d := &Directives{
		fset:  fset,
		spans: map[string][]span{},
		specs: map[string][]*ast.ValueSpec{},
	}
	for _, file := range pkg.Files {
		d.scanFile(fset, file)
	}
	return d
}

func (d *Directives) scanFile(fset *token.FileSet, file *ast.File) {
	// Directives attached to declarations, fields and specs.
	claimed := map[*ast.Comment]bool{}
	attach := func(cg *ast.CommentGroup, lo, hi token.Pos, spec *ast.ValueSpec) {
		if cg == nil {
			return
		}
		for _, c := range cg.List {
			verb := parseVerb(c)
			if verb == "" {
				continue
			}
			claimed[c] = true
			d.spans[verb] = append(d.spans[verb], span{lo, hi})
			if spec != nil {
				d.specs[verb] = append(d.specs[verb], spec)
			}
		}
	}
	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if hasVerb(n.Doc, "hotpath") {
				d.hotpath = append(d.hotpath, n)
			}
			attach(n.Doc, n.Pos(), n.End(), nil)
		case *ast.GenDecl:
			attach(n.Doc, n.Pos(), n.End(), nil)
		case *ast.ValueSpec:
			attach(n.Doc, n.Pos(), n.End(), n)
			attach(n.Comment, n.Pos(), n.End(), n)
		case *ast.TypeSpec:
			attach(n.Doc, n.Pos(), n.End(), nil)
			attach(n.Comment, n.Pos(), n.End(), nil)
		case *ast.Field:
			attach(n.Doc, n.Pos(), n.End(), nil)
			attach(n.Comment, n.Pos(), n.End(), nil)
		}
		return true
	})

	// Index the smallest statement starting on each line, for
	// statement-scoped directives.
	stmtByLine := map[int]ast.Stmt{}
	ast.Inspect(file, func(n ast.Node) bool {
		st, ok := n.(ast.Stmt)
		if !ok {
			return true
		}
		// A body block starts on the same line as its for/if/func header;
		// letting it win would shrink the directive span to exclude the
		// header (where a range expression lives).
		if _, isBlock := st.(*ast.BlockStmt); isBlock {
			return true
		}
		line := fset.Position(st.Pos()).Line
		if prev, ok := stmtByLine[line]; !ok || st.Pos() >= prev.Pos() && st.End() <= prev.End() {
			stmtByLine[line] = st
		}
		return true
	})

	for _, cg := range file.Comments {
		for _, c := range cg.List {
			verb := parseVerb(c)
			if verb == "" || claimed[c] {
				continue
			}
			// Entirely before the package clause: whole file.
			if c.End() < file.Package {
				d.spans[verb] = append(d.spans[verb], span{file.Pos(), file.End()})
				continue
			}
			// Trailing a statement on the same line, or alone on the
			// line above one.
			line := fset.Position(c.Pos()).Line
			st := stmtByLine[line]
			if st == nil || st.Pos() > c.Pos() {
				if next, ok := stmtByLine[line+1]; ok {
					st = next
				}
			}
			if st != nil {
				d.spans[verb] = append(d.spans[verb], span{st.Pos(), st.End()})
			}
		}
	}
}

func hasVerb(cg *ast.CommentGroup, verb string) bool {
	if cg == nil {
		return false
	}
	for _, c := range cg.List {
		if parseVerb(c) == verb {
			return true
		}
	}
	return false
}
