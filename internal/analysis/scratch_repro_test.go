package analysis

import (
	"os"
	"path/filepath"
	"testing"
)

func runScratch(t *testing.T, code string) []Diagnostic {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "p.go"), []byte(code), 0o644); err != nil {
		t.Fatal(err)
	}
	const ip = "scratchpkg"
	pkg, fset, err := LoadDir(dir, ip)
	if err != nil {
		t.Fatalf("type-checking: %v", err)
	}
	return RunPackage(fset, pkg, Config{DevicePackages: []string{ip}}, []*Analyzer{RangeCheck})
}

// Control: accumulation in a plain loop must report int16 overflow.
func TestScratchControl(t *testing.T) {
	diags := runScratch(t, `package scratchpkg

func F(n int) int16 {
	var acc int16
	for i := 0; i < n; i++ {
		acc += 1000
	}
	return acc
}
`)
	if len(diags) == 0 {
		t.Error("control: expected overflow finding, got none")
	}
	for _, d := range diags {
		t.Logf("control: %s", d)
	}
}

// Repro: same accumulation, but reached via continue inside a switch.
func TestScratchContinueInSwitch(t *testing.T) {
	diags := runScratch(t, `package scratchpkg

func G(n int) int16 {
	var acc int16
	for i := 0; i < n; i++ {
		switch {
		case i%2 == 0:
			acc += 1000
			continue
		}
	}
	return acc
}
`)
	if len(diags) == 0 {
		t.Error("repro: expected overflow finding, got none (continue-in-switch env dropped)")
	}
	for _, d := range diags {
		t.Logf("repro: %s", d)
	}
}
