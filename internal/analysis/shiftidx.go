package analysis

import (
	"fmt"
	"go/ast"
)

// ShiftIdx is the advisory half of the v3 interval engine: inside
// //csecg:hotpath functions (which already ban allocation, hence also
// the compiler's bounds-check-elimination-friendly append patterns) it
// flags slice and array index expressions the interval engine cannot
// prove in bounds. Unlike rangecheck it is advisory: a hotpath index
// that depends on a cross-function invariant (a constructor-validated
// support table) is correct but unprovable intraprocedurally, so the
// driver leaves -shiftidx off by default and the clean-tree gate skips
// it. Proof rules: an array index is safe when its interval fits
// [0, len−1]; a slice index is safe when its interval is non-negative
// and the engine holds an i < len(s) fact (a range-loop key or an
// explicit bounds test).
var ShiftIdx = &Analyzer{
	Name:     "shiftidx",
	Doc:      "advise on hotpath slice/array indexing the interval engine cannot prove in bounds",
	Run:      runShiftIdx,
	Advisory: true,
}

func runShiftIdx(pass *Pass) {
	if !pass.Config.isDevice(pass.Pkg.ImportPath) {
		return
	}
	for _, fd := range pass.Dirs.hotpath {
		if fd.Body == nil || pass.Dirs.covered("host", fd.Pos()) {
			continue
		}
		hooks := flowHooks{
			index: func(e *ast.IndexExpr, idx Interval, proven bool) {
				if proven || pass.Dirs.covered("rangeok", e.Pos()) {
					return
				}
				pass.Report(e.Pos(),
					fmt.Sprintf("hotpath index %s[%s] not provably in bounds (index interval %s)", exprString(e.X), exprString(e.Index), idx.String()),
					"iterate with `for i := range`, guard with an explicit `i >= 0 && i < len(s)` test, or hoist the bound into the loop condition")
			},
		}
		analyzeFuncBody(pass.Pkg.Info, fd.Body, hooks)
	}
}
