package analysis

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// The golden tests run each analyzer over a small package under
// testdata/src/<analyzer>/ whose sources carry analysistest-style
// expectations: a `// want "regex"` comment on a line means exactly one
// diagnostic whose message matches the regex must be reported there,
// and any diagnostic without a matching want fails the test.

var wantRE = regexp.MustCompile(`// want "(.*)"`)

type wantDiag struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

func parseWants(t *testing.T, dir string) []*wantDiag {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var wants []*wantDiag
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRE.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			re, err := regexp.Compile(m[1])
			if err != nil {
				t.Fatalf("%s:%d: bad want regex %q: %v", e.Name(), i+1, m[1], err)
			}
			wants = append(wants, &wantDiag{file: e.Name(), line: i + 1, re: re})
		}
	}
	return wants
}

func matchWants(t *testing.T, dir string, diags []Diagnostic) {
	t.Helper()
	wants := parseWants(t, dir)
	for _, d := range diags {
		base := filepath.Base(d.Pos.Filename)
		matched := false
		for _, w := range wants {
			if !w.hit && w.file == base && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.re)
		}
	}
}

func runGolden(t *testing.T, name string, a *Analyzer, cfg func(importPath string) Config) {
	t.Helper()
	dir := filepath.Join("testdata", "src", name)
	importPath := name + "test"
	pkg, fset, err := LoadDir(dir, importPath)
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}
	matchWants(t, dir, RunPackage(fset, pkg, cfg(importPath), []*Analyzer{a}))
}

// runGoldenModule is runGolden for analyzers with a RunModule half: the
// testdata package is wrapped into a single-package module so the call
// graph and directive index exist.
func runGoldenModule(t *testing.T, name string, a *Analyzer, cfg func(importPath string) Config) {
	t.Helper()
	dir := filepath.Join("testdata", "src", name)
	importPath := name + "test"
	pkg, fset, err := LoadDir(dir, importPath)
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}
	mod := &Module{Root: dir, Path: importPath, Fset: fset, Pkgs: []*Package{pkg}}
	matchWants(t, dir, RunModule(mod, cfg(importPath), []*Analyzer{a}))
}

func TestNoFPUGolden(t *testing.T) {
	runGolden(t, "nofpu", NoFPU, func(ip string) Config {
		return Config{DevicePackages: []string{ip}}
	})
}

func TestNoAllocGolden(t *testing.T) {
	runGolden(t, "noalloc", NoAlloc, func(ip string) Config { return Config{} })
}

func TestBudgetGolden(t *testing.T) {
	runGolden(t, "budget", Budget, func(ip string) Config {
		return Config{DevicePackages: []string{ip}}
	})
}

func TestDeterminismGolden(t *testing.T) {
	// No exclude prefixes: the testdata package counts as a library.
	runGolden(t, "determinism", Determinism, func(ip string) Config { return Config{} })
}

func TestErrCheckGolden(t *testing.T) {
	runGolden(t, "errcheck", ErrCheck, func(ip string) Config { return Config{} })
}

func TestNoAllocTransitiveGolden(t *testing.T) {
	runGoldenModule(t, "noalloctrans", NoAlloc, func(ip string) Config { return Config{} })
}

func TestNoFPUTransitiveGolden(t *testing.T) {
	runGoldenModule(t, "nofputrans", NoFPU, func(ip string) Config {
		return Config{DevicePackages: []string{ip}}
	})
}

func TestLockCheckGolden(t *testing.T) {
	runGoldenModule(t, "lockcheck", LockCheck, func(ip string) Config { return Config{} })
}

func TestLeakCheckGolden(t *testing.T) {
	runGoldenModule(t, "leakcheck", LeakCheck, func(ip string) Config { return Config{} })
}

func TestMetricLintGolden(t *testing.T) {
	runGoldenModule(t, "metriclint", MetricLint, func(ip string) Config { return Config{} })
}

func TestRangeCheckGolden(t *testing.T) {
	runGolden(t, "rangecheck", RangeCheck, func(ip string) Config {
		return Config{DevicePackages: []string{ip}}
	})
}

func TestShiftIdxGolden(t *testing.T) {
	runGolden(t, "shiftidx", ShiftIdx, func(ip string) Config {
		return Config{DevicePackages: []string{ip}}
	})
}

func TestStackCheckGolden(t *testing.T) {
	runGoldenModule(t, "stackcheck", StackCheck, func(ip string) Config {
		return Config{DevicePackages: []string{ip}, StackBudgetConst: "stackBudget"}
	})
}

// TestModuleIsClean is the end-to-end gate: the full suite over the
// whole repository must report nothing — the same invariant CI enforces
// with `go run ./cmd/csecg-vet ./...`. Advisory analyzers (shiftidx)
// are excluded here as they are in the csecg-vet defaults: their hints
// flag honest can't-prove cases, not violations.
func TestModuleIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module type-check is slow; run without -short")
	}
	mod, err := LoadModule(".")
	if err != nil {
		t.Fatal(err)
	}
	var gating []*Analyzer
	for _, a := range Analyzers() {
		if !a.Advisory {
			gating = append(gating, a)
		}
	}
	diags := RunModule(mod, DefaultConfig(mod.Path), gating)
	for _, d := range diags {
		t.Errorf("unexpected finding on clean tree: %s", d)
	}
}
