package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// This file is the v3 intraprocedural abstract interpreter: it walks one
// function body in execution order, carrying an interval per tracked
// local variable, and invokes analyzer-supplied hooks wherever an
// operation's mathematical result range escapes its Go result type
// (wraparound), a conversion can truncate, a shift count provably
// reaches the operand width, or a hotpath slice index cannot be proven
// in bounds. Soundness posture (DESIGN.md §15): variables whose address
// is taken or that are assigned inside a closure are never tracked
// (they stay at their type range); calls return their full result-type
// range; slice/array/map loads return the full element-type range;
// branch conditions refine intervals on both arms; loops run to a
// widened fixpoint silently and report on one final pass.

// valueFact is the abstract state of one tracked variable.
type valueFact struct {
	iv Interval
	// src is where the current bounds were established — surfaced as a
	// relatedLocation so findings carry their interval derivation.
	src token.Pos
	// ltLen records slice variables s with var < len(s) proven (set by
	// comparisons against len(s) and by range-loop keys).
	ltLen map[types.Object]bool
}

// absEnv maps tracked variables to facts; nil is the unreachable state.
// A variable missing from a reachable env is at its type range.
type absEnv map[*types.Var]valueFact

func cloneEnv(env absEnv) absEnv {
	if env == nil {
		return nil
	}
	out := make(absEnv, len(env))
	//csecg:orderok map copy, result is order-independent
	for v, f := range env {
		out[v] = f
	}
	return out
}

// joinEnv merges two branch exits: variables refined in only one arm
// fall back to their type range (dropped), intervals union, ltLen facts
// intersect.
func joinEnv(a, b absEnv) absEnv {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	out := absEnv{}
	//csecg:orderok join is a pointwise lattice op, order-independent
	for v, fa := range a {
		fb, ok := b[v]
		if !ok {
			continue
		}
		f := valueFact{iv: fa.iv.Union(fb.iv), src: fa.src}
		if len(fa.ltLen) > 0 && len(fb.ltLen) > 0 {
			//csecg:orderok set intersection, order-independent
			for o := range fa.ltLen {
				if fb.ltLen[o] {
					if f.ltLen == nil {
						f.ltLen = map[types.Object]bool{}
					}
					f.ltLen[o] = true
				}
			}
		}
		out[v] = f
	}
	return out
}

func envEqual(a, b absEnv) bool {
	if (a == nil) != (b == nil) || len(a) != len(b) {
		return false
	}
	//csecg:orderok equality test, order-independent
	for v, fa := range a {
		fb, ok := b[v]
		if !ok || fa.iv != fb.iv || len(fa.ltLen) != len(fb.ltLen) {
			return false
		}
		//csecg:orderok subset test, order-independent
		for o := range fa.ltLen {
			if !fb.ltLen[o] {
				return false
			}
		}
	}
	return true
}

// operandRef is one interval-derivation site handed to report hooks.
type operandRef struct {
	pos  token.Pos
	desc string
}

// flowHooks are the analyzer callbacks. Each is optional; hooks fire
// only on the reporting pass (never while a loop fixpoint converges).
type flowHooks struct {
	// overflow: the math range of an arithmetic op escapes its result
	// type (potential wraparound).
	overflow func(e ast.Expr, opDesc string, math Interval, t types.Type, ops []operandRef)
	// truncate: an integer→integer conversion can lose value bits.
	truncate func(e ast.Expr, from Interval, src, dst types.Type, ops []operandRef)
	// shiftWide: the shift count is provably ≥ the operand bit width.
	shiftWide func(e ast.Expr, count Interval, width int, t types.Type)
	// index: a slice/array index expression; proven reports whether the
	// engine established 0 ≤ idx < len.
	index func(e *ast.IndexExpr, idx Interval, proven bool)
}

// valueFlow interprets one function body.
type valueFlow struct {
	info      *types.Info
	hooks     flowHooks
	untracked map[*types.Var]bool
	// mute > 0 suppresses hooks (loop fixpoint passes).
	mute int
	// frames is the open loop stack for break/continue env collection.
	frames []*loopFrame
	// analyzedLits dedups closure bodies across fixpoint re-execution.
	analyzedLits map[*ast.FuncLit]bool
}

type loopFrame struct {
	breakEnv    absEnv
	continueEnv absEnv
}

// analyzeFuncBody runs the engine over one declared function.
func analyzeFuncBody(info *types.Info, body *ast.BlockStmt, hooks flowHooks) {
	if body == nil || hasGoto(body) {
		// goto control flow is not modeled; stay silent (sound for a
		// may-wrap reporter, and the tree has none on the device path).
		return
	}
	f := &valueFlow{
		info:         info,
		hooks:        hooks,
		untracked:    computeUntracked(info, body),
		analyzedLits: map[*ast.FuncLit]bool{},
	}
	f.execStmt(body, absEnv{})
}

func hasGoto(body ast.Node) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if b, ok := n.(*ast.BranchStmt); ok && b.Tok == token.GOTO {
			found = true
		}
		return !found
	})
	return found
}

// computeUntracked collects the variables the engine must not track:
// address-taken ones and those assigned inside a nested function
// literal (whose execution order is invisible).
func computeUntracked(info *types.Info, body ast.Node) map[*types.Var]bool {
	u := map[*types.Var]bool{}
	markTargets := func(root ast.Node) {
		ast.Inspect(root, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					if id, ok := unparen(lhs).(*ast.Ident); ok {
						if v, ok := objOf(info, id).(*types.Var); ok {
							u[v] = true
						}
					}
				}
			case *ast.IncDecStmt:
				if id, ok := unparen(n.X).(*ast.Ident); ok {
					if v, ok := objOf(info, id).(*types.Var); ok {
						u[v] = true
					}
				}
			case *ast.RangeStmt:
				for _, lhs := range []ast.Expr{n.Key, n.Value} {
					if id, ok := lhs.(*ast.Ident); ok && id != nil {
						if v, ok := objOf(info, id).(*types.Var); ok {
							u[v] = true
						}
					}
				}
			}
			return true
		})
	}
	var walk func(n ast.Node, inLit bool)
	walk = func(root ast.Node, inLit bool) {
		ast.Inspect(root, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.UnaryExpr:
				if n.Op == token.AND {
					if id, ok := unparen(n.X).(*ast.Ident); ok {
						if v, ok := objOf(info, id).(*types.Var); ok {
							u[v] = true
						}
					}
				}
			case *ast.FuncLit:
				if !inLit {
					markTargets(n.Body)
					walk(n.Body, true)
					return false
				}
			}
			return true
		})
	}
	walk(body, false)
	return u
}

func objOf(info *types.Info, id *ast.Ident) types.Object {
	if o := info.Uses[id]; o != nil {
		return o
	}
	return info.Defs[id]
}

// exprInterval returns the declared range of an expression's static
// type (top for non-integers).
func (f *valueFlow) exprTypeInterval(e ast.Expr) (Interval, types.Type, bool) {
	tv, ok := f.info.Types[e]
	if !ok || tv.Type == nil {
		return topInterval, nil, false
	}
	iv, ok := typeInterval(tv.Type)
	return iv, tv.Type, ok
}

func (f *valueFlow) varFact(env absEnv, v *types.Var) valueFact {
	if fct, ok := env[v]; ok {
		return fct
	}
	iv, _ := typeInterval(v.Type())
	return valueFact{iv: iv, src: v.Pos()}
}

// derivation summarizes a binary op's operands for relatedLocations.
func (f *valueFlow) derivation(env absEnv, exprs ...ast.Expr) []operandRef {
	var refs []operandRef
	for _, e := range exprs {
		id, ok := unparen(e).(*ast.Ident)
		if !ok {
			continue
		}
		v, ok := objOf(f.info, id).(*types.Var)
		if !ok || f.untracked[v] {
			continue
		}
		fct := f.varFact(env, v)
		if !fct.src.IsValid() {
			continue
		}
		refs = append(refs, operandRef{pos: fct.src, desc: id.Name + " ∈ " + fct.iv.String() + " established here"})
	}
	return refs
}

// adjust clamps a math interval to the expression's result type: if the
// math range fits, it is kept (no wrap possible); otherwise the stored
// value may be anything representable.
func adjustToType(math Interval, t types.Type) Interval {
	tr, ok := typeInterval(t)
	if !ok {
		return topInterval
	}
	if math.ContainedIn(tr) {
		return math
	}
	return tr
}

// eval computes the interval of e under env, firing hooks as a side
// effect. Non-integer expressions evaluate to top (their sub-expressions
// are still visited so nested integer arithmetic is checked).
func (f *valueFlow) eval(env absEnv, e ast.Expr) Interval {
	if e == nil {
		return topInterval
	}
	// Compile-time constants are exact and already compiler-checked.
	if tv, ok := f.info.Types[e]; ok && tv.Value != nil {
		iv, _ := constInterval(tv.Value)
		return iv
	}
	switch e := e.(type) {
	case *ast.ParenExpr:
		return f.eval(env, e.X)
	case *ast.Ident:
		if v, ok := objOf(f.info, e).(*types.Var); ok && !f.untracked[v] {
			return f.varFact(env, v).iv
		}
		iv, _, _ := f.exprTypeInterval(e)
		return iv
	case *ast.BinaryExpr:
		return f.evalBinary(env, e)
	case *ast.UnaryExpr:
		return f.evalUnary(env, e)
	case *ast.CallExpr:
		return f.evalCall(env, e)
	case *ast.IndexExpr:
		return f.evalIndex(env, e)
	case *ast.SelectorExpr:
		f.eval(env, e.X)
		iv, _, _ := f.exprTypeInterval(e)
		return iv
	case *ast.StarExpr:
		f.eval(env, e.X)
		iv, _, _ := f.exprTypeInterval(e)
		return iv
	case *ast.SliceExpr:
		f.eval(env, e.X)
		f.eval(env, e.Low)
		f.eval(env, e.High)
		f.eval(env, e.Max)
		return topInterval
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				f.eval(env, kv.Value)
				continue
			}
			f.eval(env, el)
		}
		return topInterval
	case *ast.KeyValueExpr:
		f.eval(env, e.Value)
		return topInterval
	case *ast.TypeAssertExpr:
		f.eval(env, e.X)
		iv, _, _ := f.exprTypeInterval(e)
		return iv
	case *ast.FuncLit:
		f.analyzeLit(e)
		return topInterval
	}
	iv, _, _ := f.exprTypeInterval(e)
	return iv
}

// analyzeLit runs a nested closure body through a fresh engine (once —
// loop fixpoints would otherwise re-analyze it each pass).
func (f *valueFlow) analyzeLit(lit *ast.FuncLit) {
	if f.mute > 0 || f.analyzedLits[lit] || hasGoto(lit.Body) {
		return
	}
	f.analyzedLits[lit] = true
	inner := &valueFlow{
		info:         f.info,
		hooks:        f.hooks,
		untracked:    computeUntracked(f.info, lit.Body),
		analyzedLits: f.analyzedLits,
	}
	inner.execStmt(lit.Body, absEnv{})
}

func opDescription(op token.Token, t types.Type) string {
	name := typeString(t)
	switch op {
	case token.ADD:
		return name + " addition"
	case token.SUB:
		return name + " subtraction"
	case token.MUL:
		return name + " multiplication"
	case token.SHL:
		return name + " left shift"
	default:
		return name + " " + op.String()
	}
}

func typeString(t types.Type) string {
	if t == nil {
		return "?"
	}
	return types.TypeString(t, func(p *types.Package) string { return p.Name() })
}

func (f *valueFlow) evalBinary(env absEnv, e *ast.BinaryExpr) Interval {
	x := f.eval(env, e.X)
	y := f.eval(env, e.Y)
	switch e.Op {
	case token.LAND, token.LOR, token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ:
		return topInterval
	}
	_, t, isInt := f.exprTypeInterval(e)
	if !isInt {
		return topInterval
	}
	var math Interval
	overflowable := false
	switch e.Op {
	case token.ADD:
		math, overflowable = x.Add(y), true
	case token.SUB:
		math, overflowable = x.Sub(y), true
	case token.MUL:
		math, overflowable = x.Mul(y), true
	case token.QUO:
		math = x.Div(y)
	case token.REM:
		math = x.Mod(y)
	case token.SHL:
		f.checkShiftWidth(e, y)
		math, overflowable = x.Shl(y), true
	case token.SHR:
		f.checkShiftWidth(e, y)
		math = x.Shr(y)
	case token.AND, token.OR, token.XOR, token.AND_NOT:
		math = x.BitOp(y, e.Op.String())
	default:
		return topInterval
	}
	if overflowable {
		if tr, ok := typeInterval(t); ok && !math.ContainedIn(tr) {
			if f.mute == 0 && f.hooks.overflow != nil {
				f.hooks.overflow(e, opDescription(e.Op, t), math, t, f.derivation(env, e.X, e.Y))
			}
		}
	}
	return adjustToType(math, t)
}

// checkShiftWidth fires when the shift count is provably at least the
// shifted operand's bit width: every bit is discarded (and the same
// expression is undefined behavior in the C port).
func (f *valueFlow) checkShiftWidth(e *ast.BinaryExpr, count Interval) {
	if f.mute > 0 || f.hooks.shiftWide == nil || count.Empty() {
		return
	}
	tv, ok := f.info.Types[e.X]
	if !ok || tv.Type == nil {
		return
	}
	w, _, ok := intSpec(tv.Type)
	if !ok || count.Lo < int64(w) {
		return
	}
	f.hooks.shiftWide(e, count, w, tv.Type)
}

func (f *valueFlow) evalUnary(env absEnv, e *ast.UnaryExpr) Interval {
	x := f.eval(env, e.X)
	switch e.Op {
	case token.SUB:
		_, t, isInt := f.exprTypeInterval(e)
		if !isInt {
			return topInterval
		}
		math := x.Neg()
		if tr, ok := typeInterval(t); ok && !math.ContainedIn(tr) {
			if f.mute == 0 && f.hooks.overflow != nil {
				f.hooks.overflow(e, typeString(t)+" negation", math, t, f.derivation(env, e.X))
			}
		}
		return adjustToType(math, t)
	case token.ADD:
		return x
	case token.XOR: // ^x = −x − 1
		_, t, isInt := f.exprTypeInterval(e)
		if !isInt {
			return topInterval
		}
		return adjustToType(x.Neg().Sub(single(1)), t)
	}
	iv, _, _ := f.exprTypeInterval(e)
	return iv
}

func (f *valueFlow) evalCall(env absEnv, e *ast.CallExpr) Interval {
	// Conversion T(x)?
	if tv, ok := f.info.Types[e.Fun]; ok && tv.IsType() && len(e.Args) == 1 {
		return f.evalConversion(env, e, tv.Type)
	}
	// Builtins with known ranges.
	if id, ok := unparen(e.Fun).(*ast.Ident); ok {
		if b, ok := objOf(f.info, id).(*types.Builtin); ok {
			return f.evalBuiltin(env, e, b.Name())
		}
	}
	f.eval(env, e.Fun)
	for _, a := range e.Args {
		f.eval(env, a)
	}
	// Calls return their full result-type range — the engine is
	// intraprocedural by design.
	iv, _, _ := f.exprTypeInterval(e)
	return iv
}

func (f *valueFlow) evalBuiltin(env absEnv, e *ast.CallExpr, name string) Interval {
	var args []Interval
	for _, a := range e.Args {
		args = append(args, f.eval(env, a))
	}
	switch name {
	case "len", "cap":
		if len(e.Args) == 1 {
			if n, ok := constArrayLen(f.info, e.Args[0]); ok {
				return single(n)
			}
		}
		return Interval{0, posInf}
	case "min":
		if len(args) > 0 {
			r := args[0]
			for _, a := range args[1:] {
				r = Interval{min(r.Lo, a.Lo), min(r.Hi, a.Hi)}
			}
			return r
		}
	case "max":
		if len(args) > 0 {
			r := args[0]
			for _, a := range args[1:] {
				r = Interval{max(r.Lo, a.Lo), max(r.Hi, a.Hi)}
			}
			return r
		}
	}
	iv, _, _ := f.exprTypeInterval(e)
	return iv
}

// constArrayLen resolves the length of an array-typed expression
// (through pointers-to-array).
func constArrayLen(info *types.Info, e ast.Expr) (int64, bool) {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return 0, false
	}
	t := tv.Type.Underlying()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem().Underlying()
	}
	if a, ok := t.(*types.Array); ok {
		return a.Len(), true
	}
	return 0, false
}

func (f *valueFlow) evalConversion(env absEnv, e *ast.CallExpr, dst types.Type) Interval {
	arg := e.Args[0]
	x := f.eval(env, arg)
	dr, dstInt := typeInterval(dst)
	if !dstInt {
		return topInterval
	}
	srcTV, ok := f.info.Types[arg]
	if !ok || srcTV.Type == nil {
		return dr
	}
	if _, _, srcInt := intSpec(srcTV.Type); !srcInt {
		return dr // float→int etc.: unbounded by this domain
	}
	if !x.ContainedIn(dr) {
		if f.mute == 0 && f.hooks.truncate != nil {
			f.hooks.truncate(e, x, srcTV.Type, dst, f.derivation(env, arg))
		}
		return dr
	}
	return x
}

func (f *valueFlow) evalIndex(env absEnv, e *ast.IndexExpr) Interval {
	f.eval(env, e.X)
	idx := f.eval(env, e.Index)
	f.checkIndex(env, e, idx)
	iv, _, _ := f.exprTypeInterval(e)
	return iv
}

func (f *valueFlow) checkIndex(env absEnv, e *ast.IndexExpr, idx Interval) {
	if f.mute > 0 || f.hooks.index == nil {
		return
	}
	tv, ok := f.info.Types[e.X]
	if !ok || tv.Type == nil {
		return
	}
	base := tv.Type.Underlying()
	if p, ok := base.(*types.Pointer); ok {
		base = p.Elem().Underlying()
	}
	switch bt := base.(type) {
	case *types.Array:
		proven := !idx.Empty() && idx.Lo >= 0 && idx.Hi < bt.Len()
		f.hooks.index(e, idx, proven)
	case *types.Slice:
		proven := false
		if !idx.Empty() && idx.Lo >= 0 {
			if bid, ok := unparen(e.X).(*ast.Ident); ok {
				if bv, ok := objOf(f.info, bid).(*types.Var); ok && !f.untracked[bv] {
					if iid, ok := unparen(e.Index).(*ast.Ident); ok {
						if ivr, ok := objOf(f.info, iid).(*types.Var); ok && !f.untracked[ivr] {
							proven = f.varFact(env, ivr).ltLen[bv]
						}
					}
				}
			}
		}
		f.hooks.index(e, idx, proven)
	}
}

// setFact stores a fact for an ident target (no-op for untracked vars
// and non-ident targets); assignments to a slice variable invalidate
// every ltLen fact about it.
func (f *valueFlow) setFact(env absEnv, target ast.Expr, iv Interval, src token.Pos) {
	id, ok := unparen(target).(*ast.Ident)
	if !ok || id.Name == "_" {
		return
	}
	v, ok := objOf(f.info, id).(*types.Var)
	if !ok || f.untracked[v] {
		return
	}
	//csecg:orderok pointwise fact invalidation, order-independent
	for tv, fct := range env {
		if fct.ltLen[v] {
			nl := make(map[types.Object]bool, len(fct.ltLen))
			//csecg:orderok set filter, order-independent
			for o := range fct.ltLen {
				if o != types.Object(v) {
					nl[o] = true
				}
			}
			fct.ltLen = nl
			env[tv] = fct
		}
	}
	env[v] = valueFact{iv: adjustToType(iv, v.Type()), src: src}
}

// refine narrows env by assuming cond evaluates to sense. It returns
// nil when the assumption is contradictory (the branch is dead).
func (f *valueFlow) refine(env absEnv, cond ast.Expr, sense bool) absEnv {
	if env == nil || cond == nil {
		return env
	}
	switch c := unparen(cond).(type) {
	case *ast.UnaryExpr:
		if c.Op == token.NOT {
			return f.refine(env, c.X, !sense)
		}
	case *ast.BinaryExpr:
		switch c.Op {
		case token.LAND:
			if sense {
				return f.refine(f.refine(env, c.X, true), c.Y, true)
			}
			// !(a && b) = !a ∨ (a ∧ !b)
			left := f.refine(cloneEnv(env), c.X, false)
			right := f.refine(f.refine(cloneEnv(env), c.X, true), c.Y, false)
			return joinEnv(left, right)
		case token.LOR:
			if !sense {
				return f.refine(f.refine(env, c.X, false), c.Y, false)
			}
			left := f.refine(cloneEnv(env), c.X, true)
			right := f.refine(f.refine(cloneEnv(env), c.X, false), c.Y, true)
			return joinEnv(left, right)
		case token.LSS, token.LEQ, token.GTR, token.GEQ, token.EQL, token.NEQ:
			return f.refineCompare(env, c, sense)
		}
	}
	return env
}

// refineCompare applies one comparison to both operands.
func (f *valueFlow) refineCompare(env absEnv, c *ast.BinaryExpr, sense bool) absEnv {
	op := c.Op
	if !sense {
		op = negateCmp(op)
	}
	f.mute++
	xv := f.eval(env, c.X)
	yv := f.eval(env, c.Y)
	f.mute--

	env = f.refineOperand(env, c.X, op, yv)
	env = f.refineOperand(env, c.Y, flipCmp(op), xv)
	if env == nil {
		return nil
	}
	// i < len(s) facts for slice-index proofs.
	if op == token.LSS || op == token.LEQ {
		f.noteLtLen(env, c.X, c.Y, op)
	}
	if op == token.GTR || op == token.GEQ {
		f.noteLtLen(env, c.Y, c.X, flipCmp(op))
	}
	return env
}

func negateCmp(op token.Token) token.Token {
	switch op {
	case token.LSS:
		return token.GEQ
	case token.LEQ:
		return token.GTR
	case token.GTR:
		return token.LEQ
	case token.GEQ:
		return token.LSS
	case token.EQL:
		return token.NEQ
	default:
		return token.EQL
	}
}

func flipCmp(op token.Token) token.Token {
	switch op {
	case token.LSS:
		return token.GTR
	case token.LEQ:
		return token.GEQ
	case token.GTR:
		return token.LSS
	case token.GEQ:
		return token.LEQ
	}
	return op
}

// refineOperand intersects a tracked ident's interval with the bound
// implied by `x op [other]`.
func (f *valueFlow) refineOperand(env absEnv, x ast.Expr, op token.Token, other Interval) absEnv {
	if env == nil || other.Empty() {
		return env
	}
	id, ok := unparen(x).(*ast.Ident)
	if !ok {
		return env
	}
	v, ok := objOf(f.info, id).(*types.Var)
	if !ok || f.untracked[v] {
		return env
	}
	if _, _, isInt := intSpec(v.Type()); !isInt {
		return env
	}
	fct := f.varFact(env, v)
	cur := fct.iv
	var bound Interval
	switch op {
	case token.LSS:
		bound = Interval{negInf, addBound(other.Hi, -1)}
	case token.LEQ:
		bound = Interval{negInf, other.Hi}
	case token.GTR:
		bound = Interval{addBound(other.Lo, 1), posInf}
	case token.GEQ:
		bound = Interval{other.Lo, posInf}
	case token.EQL:
		bound = other
	case token.NEQ:
		bound = topInterval
		if other.Lo == other.Hi {
			if cur.Lo == other.Lo {
				bound.Lo = addBound(other.Lo, 1)
			}
			if cur.Hi == other.Lo {
				bound.Hi = addBound(other.Lo, -1)
			}
		}
	default:
		return env
	}
	next := cur.Intersect(bound)
	if next.Empty() {
		return nil
	}
	if next != cur {
		fct.iv = next
		fct.src = x.Pos()
		env[v] = fct
	}
	return env
}

// noteLtLen records `i < len(s)` (or `i ≤ len(s)−1`-style facts only in
// the strict form) for tracked ident i and slice ident s.
func (f *valueFlow) noteLtLen(env absEnv, x, y ast.Expr, op token.Token) {
	if op != token.LSS {
		return
	}
	call, ok := unparen(y).(*ast.CallExpr)
	if !ok || len(call.Args) != 1 {
		return
	}
	fid, ok := unparen(call.Fun).(*ast.Ident)
	if !ok {
		return
	}
	if b, ok := objOf(f.info, fid).(*types.Builtin); !ok || b.Name() != "len" {
		return
	}
	sid, ok := unparen(call.Args[0]).(*ast.Ident)
	if !ok {
		return
	}
	sv, ok := objOf(f.info, sid).(*types.Var)
	if !ok || f.untracked[sv] {
		return
	}
	iid, ok := unparen(x).(*ast.Ident)
	if !ok {
		return
	}
	ivr, ok := objOf(f.info, iid).(*types.Var)
	if !ok || f.untracked[ivr] {
		return
	}
	fct := f.varFact(env, ivr)
	nl := make(map[types.Object]bool, len(fct.ltLen)+1)
	//csecg:orderok set copy, order-independent
	for o := range fct.ltLen {
		nl[o] = true
	}
	nl[sv] = true
	fct.ltLen = nl
	env[ivr] = fct
}

// execStmt interprets one statement, returning the exit env (nil when
// control provably does not fall through).
func (f *valueFlow) execStmt(s ast.Stmt, env absEnv) absEnv {
	if env == nil || s == nil {
		return env
	}
	switch s := s.(type) {
	case *ast.BlockStmt:
		for _, st := range s.List {
			env = f.execStmt(st, env)
			if env == nil {
				break
			}
		}
		return env
	case *ast.ExprStmt:
		f.eval(env, s.X)
		if isPanicCall(f.info, s.X) {
			return nil
		}
		return env
	case *ast.AssignStmt:
		return f.execAssign(s, env)
	case *ast.IncDecStmt:
		x := f.eval(env, s.X)
		op := token.ADD
		if s.Tok == token.DEC {
			op = token.SUB
		}
		math := x.Add(single(1))
		if op == token.SUB {
			math = x.Sub(single(1))
		}
		if _, t, isInt := f.exprTypeInterval(s.X); isInt {
			if tr, ok := typeInterval(t); ok && !math.ContainedIn(tr) {
				if f.mute == 0 && f.hooks.overflow != nil {
					f.hooks.overflow(s.X, opDescription(op, t), math, t, f.derivation(env, s.X))
				}
			}
			f.setFact(env, s.X, math, s.Pos())
		}
		return env
	case *ast.DeclStmt:
		return f.execDecl(s, env)
	case *ast.IfStmt:
		return f.execIf(s, env)
	case *ast.ForStmt:
		return f.execFor(s, env)
	case *ast.RangeStmt:
		return f.execRange(s, env)
	case *ast.SwitchStmt:
		return f.execSwitch(s, env)
	case *ast.TypeSwitchStmt:
		return f.execTypeSwitch(s, env)
	case *ast.SelectStmt:
		return f.execSelect(s, env)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			f.eval(env, r)
		}
		return nil
	case *ast.BranchStmt:
		return f.execBranch(s, env)
	case *ast.LabeledStmt:
		return f.execStmt(s.Stmt, env)
	case *ast.GoStmt:
		f.eval(env, s.Call)
		return env
	case *ast.DeferStmt:
		f.eval(env, s.Call)
		return env
	case *ast.SendStmt:
		f.eval(env, s.Chan)
		f.eval(env, s.Value)
		return env
	case *ast.EmptyStmt:
		return env
	}
	return env
}

func isPanicCall(info *types.Info, e ast.Expr) bool {
	call, ok := unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := objOf(info, id).(*types.Builtin)
	return ok && b.Name() == "panic"
}

func (f *valueFlow) execAssign(s *ast.AssignStmt, env absEnv) absEnv {
	if len(s.Lhs) == len(s.Rhs) {
		vals := make([]Interval, len(s.Rhs))
		if s.Tok == token.ASSIGN || s.Tok == token.DEFINE {
			for i, r := range s.Rhs {
				vals[i] = f.eval(env, r)
			}
		} else {
			// Compound assignment x op= y evaluates like the binary op,
			// including the overflow check.
			vals[0] = f.evalCompound(env, s)
		}
		for i, lhs := range s.Lhs {
			// Non-ident targets (index/field/deref stores) still need
			// their sub-expressions checked.
			if _, ok := unparen(lhs).(*ast.Ident); !ok {
				f.eval(env, lhs)
			}
			f.setFact(env, lhs, vals[i], s.Pos())
		}
		return env
	}
	// Tuple assignment (call, comma-ok): results are unknown.
	for _, r := range s.Rhs {
		f.eval(env, r)
	}
	for _, lhs := range s.Lhs {
		if _, ok := unparen(lhs).(*ast.Ident); !ok {
			f.eval(env, lhs)
		}
		iv, _, _ := f.exprTypeInterval(lhs)
		f.setFact(env, lhs, iv, s.Pos())
	}
	return env
}

// evalCompound handles x op= y with the same math as evalBinary.
func (f *valueFlow) evalCompound(env absEnv, s *ast.AssignStmt) Interval {
	lhs, rhs := s.Lhs[0], s.Rhs[0]
	x := f.eval(env, lhs)
	y := f.eval(env, rhs)
	_, t, isInt := f.exprTypeInterval(lhs)
	if !isInt {
		return topInterval
	}
	var math Interval
	overflowable := false
	switch s.Tok {
	case token.ADD_ASSIGN:
		math, overflowable = x.Add(y), true
	case token.SUB_ASSIGN:
		math, overflowable = x.Sub(y), true
	case token.MUL_ASSIGN:
		math, overflowable = x.Mul(y), true
	case token.QUO_ASSIGN:
		math = x.Div(y)
	case token.REM_ASSIGN:
		math = x.Mod(y)
	case token.SHL_ASSIGN:
		math, overflowable = x.Shl(y), true
	case token.SHR_ASSIGN:
		math = x.Shr(y)
	case token.AND_ASSIGN:
		math = x.BitOp(y, "&")
	case token.OR_ASSIGN:
		math = x.BitOp(y, "|")
	case token.XOR_ASSIGN:
		math = x.BitOp(y, "^")
	case token.AND_NOT_ASSIGN:
		math = x.BitOp(y, "&^")
	default:
		return topInterval
	}
	if overflowable {
		if tr, ok := typeInterval(t); ok && !math.ContainedIn(tr) {
			if f.mute == 0 && f.hooks.overflow != nil {
				op := assignBaseOp(s.Tok)
				f.hooks.overflow(s.Lhs[0], opDescription(op, t), math, t, f.derivation(env, lhs, rhs))
			}
		}
	}
	return adjustToType(math, t)
}

func assignBaseOp(tok token.Token) token.Token {
	switch tok {
	case token.ADD_ASSIGN:
		return token.ADD
	case token.SUB_ASSIGN:
		return token.SUB
	case token.MUL_ASSIGN:
		return token.MUL
	case token.SHL_ASSIGN:
		return token.SHL
	}
	return tok
}

func (f *valueFlow) execDecl(s *ast.DeclStmt, env absEnv) absEnv {
	gd, ok := s.Decl.(*ast.GenDecl)
	if !ok || gd.Tok != token.VAR {
		return env
	}
	for _, spec := range gd.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok {
			continue
		}
		for i, name := range vs.Names {
			var iv Interval
			if i < len(vs.Values) {
				iv = f.eval(env, vs.Values[i])
			} else {
				// Zero value.
				iv = single(0)
			}
			f.setFact(env, name, iv, name.Pos())
		}
	}
	return env
}

func (f *valueFlow) execIf(s *ast.IfStmt, env absEnv) absEnv {
	env = f.execStmt(s.Init, env)
	if env == nil {
		return nil
	}
	f.eval(env, s.Cond)
	thenEnv := f.refine(cloneEnv(env), s.Cond, true)
	elseEnv := f.refine(cloneEnv(env), s.Cond, false)
	thenEnv = f.execStmt(s.Body, thenEnv)
	if s.Else != nil {
		elseEnv = f.execStmt(s.Else, elseEnv)
	}
	return joinEnv(thenEnv, elseEnv)
}

// execLoopBody is the shared widened-fixpoint driver for for/range
// loops: body is run silently until the head env stabilizes, then once
// more with hooks live.
func (f *valueFlow) execLoopBody(
	entry absEnv,
	runOnce func(head absEnv) absEnv, // body (+post); returns fall-through env
	exitOf func(head absEnv) absEnv, // env after the loop condition fails
) absEnv {
	frame := &loopFrame{}
	f.frames = append(f.frames, frame)
	f.mute++
	cur := cloneEnv(entry)
	for iter := 0; ; iter++ {
		frame.continueEnv = nil
		out := runOnce(cloneEnv(cur))
		out = joinEnv(out, frame.continueEnv)
		next := joinEnv(cur, out)
		if iter >= 2 && next != nil {
			//csecg:orderok pointwise widening, order-independent
			for v, fct := range next {
				if prev, ok := cur[v]; ok {
					fct.iv = fct.iv.WidenFrom(prev.iv)
					next[v] = fct
				}
			}
		}
		if envEqual(next, cur) || iter > 8 {
			cur = next
			break
		}
		cur = next
	}
	f.mute--
	// Reporting pass over the stabilized head env.
	frame.continueEnv = nil
	frame.breakEnv = nil
	runOnce(cloneEnv(cur))
	exit := joinEnv(exitOf(cloneEnv(cur)), frame.breakEnv)
	f.frames = f.frames[:len(f.frames)-1]
	return exit
}

func (f *valueFlow) execFor(s *ast.ForStmt, env absEnv) absEnv {
	env = f.execStmt(s.Init, env)
	if env == nil {
		return nil
	}
	if s.Cond != nil {
		f.eval(env, s.Cond)
	}
	runOnce := func(head absEnv) absEnv {
		body := f.refine(head, s.Cond, true)
		out := f.execStmt(s.Body, body)
		// continue jumps here, before post.
		if len(f.frames) > 0 {
			fr := f.frames[len(f.frames)-1]
			out = joinEnv(out, fr.continueEnv)
			fr.continueEnv = nil
		}
		return f.execStmt(s.Post, out)
	}
	exitOf := func(head absEnv) absEnv {
		if s.Cond == nil {
			return nil // only break leaves a bare for{}
		}
		return f.refine(head, s.Cond, false)
	}
	return f.execLoopBody(env, runOnce, exitOf)
}

func (f *valueFlow) execRange(s *ast.RangeStmt, env absEnv) absEnv {
	f.eval(env, s.X)
	// Key/value facts at body entry.
	setup := func(head absEnv) absEnv {
		tv, ok := f.info.Types[s.X]
		if !ok || tv.Type == nil {
			return head
		}
		t := tv.Type.Underlying()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem().Underlying()
		}
		keyIv := Interval{0, posInf}
		var ltObj *types.Var
		switch rt := t.(type) {
		case *types.Array:
			if rt.Len() == 0 {
				return nil
			}
			keyIv = Interval{0, rt.Len() - 1}
		case *types.Slice:
			if id, ok := unparen(s.X).(*ast.Ident); ok {
				if v, ok := objOf(f.info, id).(*types.Var); ok && !f.untracked[v] {
					ltObj = v
				}
			}
		case *types.Basic:
			if rt.Info()&types.IsInteger != 0 { // range over int (go1.22)
				f.mute++
				n := f.eval(head, s.X)
				f.mute--
				keyIv = Interval{0, addBound(n.Hi, -1)}
			}
		case *types.Map, *types.Chan, *types.Signature:
			if s.Key != nil {
				kiv, _, _ := f.exprTypeInterval(s.Key)
				keyIv = kiv
			}
		}
		if s.Key != nil {
			if s.Tok == token.DEFINE || s.Tok == token.ASSIGN {
				f.setFact(head, s.Key, keyIv, s.Key.Pos())
				if ltObj != nil {
					if id, ok := unparen(s.Key).(*ast.Ident); ok {
						if kv, ok := objOf(f.info, id).(*types.Var); ok && !f.untracked[kv] {
							fct := f.varFact(head, kv)
							fct.ltLen = map[types.Object]bool{types.Object(ltObj): true}
							head[kv] = fct
						}
					}
				}
			}
		}
		if s.Value != nil {
			viv, _, _ := f.exprTypeInterval(s.Value)
			f.setFact(head, s.Value, viv, s.Value.Pos())
		}
		return head
	}
	runOnce := func(head absEnv) absEnv {
		return f.execStmt(s.Body, setup(head))
	}
	exitOf := func(head absEnv) absEnv { return head }
	return f.execLoopBody(env, runOnce, exitOf)
}

func (f *valueFlow) execBranch(s *ast.BranchStmt, env absEnv) absEnv {
	if len(f.frames) == 0 {
		return nil
	}
	switch s.Tok {
	case token.BREAK:
		// Unlabeled: innermost frame. Labeled: conservatively join into
		// every open frame (wider envs at all exits stay sound).
		if s.Label == nil {
			fr := f.frames[len(f.frames)-1]
			fr.breakEnv = joinEnv(fr.breakEnv, cloneEnv(env))
		} else {
			for _, fr := range f.frames {
				fr.breakEnv = joinEnv(fr.breakEnv, cloneEnv(env))
			}
		}
	case token.CONTINUE:
		if s.Label == nil {
			fr := f.frames[len(f.frames)-1]
			fr.continueEnv = joinEnv(fr.continueEnv, cloneEnv(env))
		} else {
			for _, fr := range f.frames {
				fr.continueEnv = joinEnv(fr.continueEnv, cloneEnv(env))
			}
		}
	}
	return nil
}

// execSwitch handles expression switches. Tagless switches refine each
// case condition (the saturation-clamp idiom: when every case body
// returns, the fall-through env carries the all-conditions-false
// refinement that proves the final conversion safe).
func (f *valueFlow) execSwitch(s *ast.SwitchStmt, env absEnv) absEnv {
	env = f.execStmt(s.Init, env)
	if env == nil {
		return nil
	}
	var tagIdent ast.Expr
	if s.Tag != nil {
		f.eval(env, s.Tag)
		tagIdent = s.Tag
	}
	// switch gets an implicit breakable frame.
	frame := &loopFrame{}
	f.frames = append(f.frames, frame)

	residual := cloneEnv(env)
	var exits absEnv
	hasDefault := false
	var clauses []*ast.CaseClause
	for _, c := range s.Body.List {
		if cc, ok := c.(*ast.CaseClause); ok {
			clauses = append(clauses, cc)
		}
	}
	var fallEnv absEnv
	for ci, cc := range clauses {
		var caseEnv absEnv
		if cc.List == nil {
			hasDefault = true
			caseEnv = cloneEnv(residual)
		} else {
			for _, ce := range cc.List {
				f.eval(joinEnv(cloneEnv(residual), cloneEnv(env)), ce)
				var one absEnv
				if tagIdent != nil {
					one = f.refineOperand(cloneEnv(residual), tagIdent, token.EQL, f.evalMuted(residual, ce))
					residual = f.refineOperand(residual, tagIdent, token.NEQ, f.evalMuted(residual, ce))
				} else {
					one = f.refine(cloneEnv(residual), ce, true)
					residual = f.refine(residual, ce, false)
				}
				caseEnv = joinEnv(caseEnv, one)
				if residual == nil {
					break
				}
			}
		}
		caseEnv = joinEnv(caseEnv, fallEnv)
		fallEnv = nil
		out := caseEnv
		for _, st := range cc.Body {
			out = f.execStmt(st, out)
			if out == nil {
				break
			}
		}
		if endsInFallthrough(cc.Body) && ci+1 < len(clauses) {
			fallEnv = out
			continue
		}
		exits = joinEnv(exits, out)
	}
	f.frames = f.frames[:len(f.frames)-1]
	exits = joinEnv(exits, frame.breakEnv)
	if !hasDefault {
		exits = joinEnv(exits, residual)
	}
	return exits
}

func (f *valueFlow) evalMuted(env absEnv, e ast.Expr) Interval {
	f.mute++
	iv := f.eval(env, e)
	f.mute--
	return iv
}

func endsInFallthrough(body []ast.Stmt) bool {
	if len(body) == 0 {
		return false
	}
	b, ok := body[len(body)-1].(*ast.BranchStmt)
	return ok && b.Tok == token.FALLTHROUGH
}

func (f *valueFlow) execTypeSwitch(s *ast.TypeSwitchStmt, env absEnv) absEnv {
	env = f.execStmt(s.Init, env)
	if env == nil {
		return nil
	}
	frame := &loopFrame{}
	f.frames = append(f.frames, frame)
	var exits absEnv
	for _, c := range s.Body.List {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		out := cloneEnv(env)
		for _, st := range cc.Body {
			out = f.execStmt(st, out)
			if out == nil {
				break
			}
		}
		exits = joinEnv(exits, out)
	}
	f.frames = f.frames[:len(f.frames)-1]
	exits = joinEnv(exits, frame.breakEnv)
	// The switch may match nothing only when there is no default; either
	// way the original env is a sound fall-through over-approximation.
	return joinEnv(exits, env)
}

func (f *valueFlow) execSelect(s *ast.SelectStmt, env absEnv) absEnv {
	frame := &loopFrame{}
	f.frames = append(f.frames, frame)
	var exits absEnv
	for _, c := range s.Body.List {
		cc, ok := c.(*ast.CommClause)
		if !ok {
			continue
		}
		out := cloneEnv(env)
		if cc.Comm != nil {
			out = f.execStmt(cc.Comm, out)
		}
		for _, st := range cc.Body {
			out = f.execStmt(st, out)
			if out == nil {
				break
			}
		}
		exits = joinEnv(exits, out)
	}
	f.frames = f.frames[:len(f.frames)-1]
	return joinEnv(exits, frame.breakEnv)
}
