package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
)

// RangeCheck proves the device packages' fixed-point arithmetic cannot
// silently wrap. It runs the interval engine (dataflow.go) over every
// function body in a device package and reports:
//
//   - arithmetic whose mathematical result interval escapes its signed
//     ≤ 32-bit result type — the un-widened 16×16 multiply and the
//     non-saturating Q31 accumulation the paper's MSP430 port must not
//     contain;
//   - shift counts provably ≥ the shifted operand's bit width (every
//     value bit discarded — and undefined behavior in a C port);
//   - integer→integer narrowing conversions whose source interval does
//     not fit the destination.
//
// Policy (DESIGN.md §15): unsigned results never report (unsigned Go
// arithmetic is defined modular and the tree uses it only for bit
// packing, CRCs and PRNG state); 64-bit results never report (int64 is
// the tree's infinite-precision-accumulator idiom, and a genuine int64
// overflow needs operands the interval domain would have flagged at
// their own narrowing). Saturation guards — the MaxQ15/MinQ15 clamp
// switches in internal/fixedpoint — refine operand intervals on each
// branch, which is how fixedpoint itself proves clean with no waiver.
// Intentional wraparound is waived per statement with //csecg:rangeok.
var RangeCheck = &Analyzer{
	Name: "rangecheck",
	Doc:  "prove device-side integer arithmetic cannot overflow, via interval abstract interpretation",
	Run:  runRangeCheck,
}

const rangeSuggestion = "widen the operands (int32/int64) before the operation, clamp with a fixedpoint-style saturation guard, or waive intentional wraparound with //csecg:rangeok"

// rangeReportable gates findings on the result type per the analyzer
// policy: signed integers of width ≤ 32.
func rangeReportable(t types.Type) bool {
	w, signed, ok := intSpec(t)
	return ok && signed && w <= 32
}

func runRangeCheck(pass *Pass) {
	if !pass.Config.isDevice(pass.Pkg.ImportPath) {
		return
	}
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if pass.Dirs.covered("host", fd.Pos()) {
				continue
			}
			runRangeCheckBody(pass, fd.Body)
		}
	}
}

func (p *Pass) relatedOf(ops []operandRef) []Related {
	var rel []Related
	for _, op := range ops {
		rel = append(rel, Related{Pos: p.Fset.Position(op.pos), Message: op.desc})
	}
	return rel
}

// waived reports whether a finding at pos is inside a //csecg:host or
// //csecg:rangeok span.
func rangeWaived(pass *Pass, pos ast.Node) bool {
	return pass.Dirs.covered("host", pos.Pos()) || pass.Dirs.covered("rangeok", pos.Pos())
}

func runRangeCheckBody(pass *Pass, body *ast.BlockStmt) {
	hooks := flowHooks{
		overflow: func(e ast.Expr, opDesc string, math Interval, t types.Type, ops []operandRef) {
			if !rangeReportable(t) || rangeWaived(pass, e) {
				return
			}
			tr, _ := typeInterval(t)
			pass.ReportRelated(e.Pos(),
				fmt.Sprintf("%s may wrap: result interval %s exceeds %s range %s", opDesc, math.String(), typeString(t), tr.String()),
				rangeSuggestion, pass.relatedOf(ops))
		},
		truncate: func(e ast.Expr, from Interval, src, dst types.Type, ops []operandRef) {
			if !rangeReportable(dst) || rangeWaived(pass, e) {
				return
			}
			dr, _ := typeInterval(dst)
			pass.ReportRelated(e.Pos(),
				fmt.Sprintf("conversion %s→%s may truncate: source interval %s exceeds destination range %s", typeString(src), typeString(dst), from.String(), dr.String()),
				rangeSuggestion, pass.relatedOf(ops))
		},
		shiftWide: func(e ast.Expr, count Interval, width int, t types.Type) {
			if rangeWaived(pass, e) {
				return
			}
			pass.Report(e.Pos(),
				fmt.Sprintf("shift count %s is always ≥ the %d-bit width of %s: every value bit is discarded", count.String(), width, typeString(t)),
				"bound the shift count below the operand width, or waive with //csecg:rangeok")
		},
	}
	analyzeFuncBody(pass.Pkg.Info, body, hooks)
}
