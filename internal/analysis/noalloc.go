package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// NoAlloc forbids heap allocation inside functions marked
// //csecg:hotpath: the per-sample encoder path must allocate nothing
// after construction, matching the firmware's static buffers. Flagged
// forms: make, new, append (which may grow past capacity), map/slice
// composite literals, &T{...}, closures, string concatenation and
// string<->[]byte conversions. An allocation proven amortized or
// capacity-bounded is waived with //csecg:allocok.
var NoAlloc = &Analyzer{
	Name: "noalloc",
	Doc:  "forbid allocation in //csecg:hotpath functions, transitively through the call graph",
	Run:  runNoAlloc,
	// The transitive half (DESIGN.md §12) walks the call graph so a
	// hotpath cannot reach an allocation through an unannotated helper.
	RunModule: runNoAllocTransitive,
}

const allocSuggestion = "preallocate in the constructor and reuse, or waive a capacity-bounded append with //csecg:allocok"

func runNoAlloc(pass *Pass) {
	info := pass.Pkg.Info
	for _, fn := range pass.Dirs.hotpath {
		if fn.Body == nil {
			continue
		}
		name := fn.Name.Name
		if fn.Recv != nil && len(fn.Recv.List) > 0 {
			name = recvTypeName(fn.Recv.List[0].Type) + "." + name
		}
		forEachAllocSite(info, pass.Dirs, fn.Body, func(pos token.Pos, form string) bool {
			pass.Report(pos, fmt.Sprintf("%s in hotpath %s", form, name), allocSuggestion)
			return true
		})
	}
}

// forEachAllocSite walks root and calls report for every allocating
// form not covered by an //csecg:allocok waiver: make, new, append,
// map/slice composite literals, &T{...}, closures, string
// concatenation, string<->[]byte conversions and goroutine launches.
// report returning false stops the walk — the transitive noalloc half
// only needs the first site of a callee's body, while the
// intraprocedural analyzer reports them all.
func forEachAllocSite(info *types.Info, dirs *Directives, root ast.Node, report func(pos token.Pos, form string) bool) {
	stop := false
	emit := func(pos token.Pos, form string) {
		if !stop && !report(pos, form) {
			stop = true
		}
	}
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil || stop {
			return !stop
		}
		if dirs.covered("allocok", n.Pos()) {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if pos, form, ok := allocCallForm(info, n); ok {
				emit(pos, form)
			}
		case *ast.CompositeLit:
			tv, ok := info.Types[ast.Expr(n)]
			if !ok || tv.Type == nil {
				return true
			}
			switch tv.Type.Underlying().(type) {
			case *types.Map:
				emit(n.Pos(), "map literal allocates")
			case *types.Slice:
				emit(n.Pos(), "slice literal allocates")
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := n.X.(*ast.CompositeLit); ok {
					emit(n.Pos(), "&composite literal may escape to the heap")
				}
			}
		case *ast.FuncLit:
			emit(n.Pos(), "closure allocates")
			return false
		case *ast.BinaryExpr:
			if n.Op == token.ADD {
				if tv, ok := info.Types[ast.Expr(n)]; ok && isString(tv.Type) {
					emit(n.Pos(), "string concatenation allocates")
				}
			}
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 {
				if tv, ok := info.Types[n.Lhs[0]]; ok && tv.Type != nil && isString(tv.Type) {
					emit(n.Pos(), "string concatenation allocates")
				}
			}
		case *ast.GoStmt:
			emit(n.Pos(), "goroutine launch allocates")
		}
		return true
	})
}

// allocCallForm classifies allocating call forms: make, new, append,
// and string<->[]byte conversions.
func allocCallForm(info *types.Info, call *ast.CallExpr) (token.Pos, string, bool) {
	if id, ok := call.Fun.(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make", "new":
				return call.Pos(), b.Name() + " allocates", true
			case "append":
				return call.Pos(), "append may grow past capacity", true
			}
			return token.NoPos, "", false
		}
	}
	tv, ok := info.Types[call.Fun]
	if !ok || !tv.IsType() || len(call.Args) != 1 {
		return token.NoPos, "", false
	}
	argTV, ok := info.Types[call.Args[0]]
	if !ok || argTV.Type == nil {
		return token.NoPos, "", false
	}
	to, from := tv.Type, argTV.Type
	if (isString(to) && isByteSlice(from)) || (isByteSlice(to) && isString(from)) {
		return call.Pos(), "string/[]byte conversion allocates", true
	}
	return token.NoPos, "", false
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Uint8
}

// recvTypeName extracts the receiver base type name for messages.
func recvTypeName(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.StarExpr:
		return recvTypeName(e.X)
	case *ast.IndexExpr:
		return recvTypeName(e.X)
	case *ast.IndexListExpr:
		return recvTypeName(e.X)
	default:
		return "?"
	}
}
