package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// NoAlloc forbids heap allocation inside functions marked
// //csecg:hotpath: the per-sample encoder path must allocate nothing
// after construction, matching the firmware's static buffers. Flagged
// forms: make, new, append (which may grow past capacity), map/slice
// composite literals, &T{...}, closures, string concatenation and
// string<->[]byte conversions. An allocation proven amortized or
// capacity-bounded is waived with //csecg:allocok.
var NoAlloc = &Analyzer{
	Name: "noalloc",
	Doc:  "forbid allocation in //csecg:hotpath functions",
	Run:  runNoAlloc,
}

const allocSuggestion = "preallocate in the constructor and reuse, or waive a capacity-bounded append with //csecg:allocok"

func runNoAlloc(pass *Pass) {
	info := pass.Pkg.Info
	for _, fn := range pass.Dirs.hotpath {
		if fn.Body == nil {
			continue
		}
		name := fn.Name.Name
		if fn.Recv != nil && len(fn.Recv.List) > 0 {
			name = recvTypeName(fn.Recv.List[0].Type) + "." + name
		}
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			if n == nil {
				return true
			}
			if pass.Dirs.covered("allocok", n.Pos()) {
				return false
			}
			switch n := n.(type) {
			case *ast.CallExpr:
				checkAllocCall(pass, info, name, n)
			case *ast.CompositeLit:
				tv, ok := info.Types[ast.Expr(n)]
				if !ok || tv.Type == nil {
					return true
				}
				switch tv.Type.Underlying().(type) {
				case *types.Map:
					pass.Report(n.Pos(), fmt.Sprintf("map literal allocates in hotpath %s", name), allocSuggestion)
				case *types.Slice:
					pass.Report(n.Pos(), fmt.Sprintf("slice literal allocates in hotpath %s", name), allocSuggestion)
				}
			case *ast.UnaryExpr:
				if n.Op == token.AND {
					if _, ok := n.X.(*ast.CompositeLit); ok {
						pass.Report(n.Pos(), fmt.Sprintf("&composite literal may escape to the heap in hotpath %s", name), allocSuggestion)
					}
				}
			case *ast.FuncLit:
				pass.Report(n.Pos(), fmt.Sprintf("closure allocates in hotpath %s", name), allocSuggestion)
				return false
			case *ast.BinaryExpr:
				if n.Op == token.ADD {
					if tv, ok := info.Types[ast.Expr(n)]; ok && isString(tv.Type) {
						pass.Report(n.Pos(), fmt.Sprintf("string concatenation allocates in hotpath %s", name), allocSuggestion)
					}
				}
			case *ast.AssignStmt:
				if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 {
					if tv, ok := info.Types[n.Lhs[0]]; ok && tv.Type != nil && isString(tv.Type) {
						pass.Report(n.Pos(), fmt.Sprintf("string concatenation allocates in hotpath %s", name), allocSuggestion)
					}
				}
			case *ast.GoStmt:
				pass.Report(n.Pos(), fmt.Sprintf("goroutine launch allocates in hotpath %s", name), allocSuggestion)
			}
			return true
		})
	}
}

// checkAllocCall flags allocating call forms: make, new, append, and
// string<->[]byte conversions.
func checkAllocCall(pass *Pass, info *types.Info, fname string, call *ast.CallExpr) {
	if id, ok := call.Fun.(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make", "new":
				pass.Report(call.Pos(), fmt.Sprintf("%s allocates in hotpath %s", b.Name(), fname), allocSuggestion)
			case "append":
				pass.Report(call.Pos(), fmt.Sprintf("append may grow past capacity in hotpath %s", fname), allocSuggestion)
			}
			return
		}
	}
	tv, ok := info.Types[call.Fun]
	if !ok || !tv.IsType() || len(call.Args) != 1 {
		return
	}
	argTV, ok := info.Types[call.Args[0]]
	if !ok || argTV.Type == nil {
		return
	}
	to, from := tv.Type, argTV.Type
	if (isString(to) && isByteSlice(from)) || (isByteSlice(to) && isString(from)) {
		pass.Report(call.Pos(), fmt.Sprintf("string/[]byte conversion allocates in hotpath %s", fname), allocSuggestion)
	}
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Uint8
}

// recvTypeName extracts the receiver base type name for messages.
func recvTypeName(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.StarExpr:
		return recvTypeName(e.X)
	case *ast.IndexExpr:
		return recvTypeName(e.X)
	case *ast.IndexListExpr:
		return recvTypeName(e.X)
	default:
		return "?"
	}
}
