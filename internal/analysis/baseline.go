package analysis

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"regexp"
	"sort"
)

// A Baseline is a committed list of accepted findings: adopting a new
// analyzer on a tree with pre-existing findings would otherwise force
// fixing everything in one change. Entries match on a
// position-insensitive hash of (file, analyzer, scrubbed message) —
// line numbers churn with every edit, and v3 messages embed positions
// of their own (interval derivations cite file:line), so the scrub
// rewrites any file:line(:col) fragment inside the message before
// hashing. A baselined finding therefore stays suppressed until it is
// actually fixed (or multiplied: new instances of the same message in
// the same file are also suppressed, the standard ratchet trade-off).
// The project keeps its committed baseline empty (CI fails otherwise);
// the mechanism exists for bisecting and for bootstrapping future
// analyzers. Entries written before the hash field existed still match
// on the exact (file, analyzer, message) triple.
type BaselineEntry struct {
	File     string `json:"file"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
	// Hash is the position-insensitive entry key (see EntryHash).
	Hash string `json:"hash,omitempty"`
}

// posRE matches file:line(:col) fragments inside messages.
var posRE = regexp.MustCompile(`\.go:\d+(:\d+)?`)

// scrubPositions rewrites embedded source positions to a fixed marker
// so a message hash survives unrelated line shifts.
func scrubPositions(msg string) string {
	return posRE.ReplaceAllString(msg, ".go:#")
}

// EntryHash is the position-insensitive baseline key of one finding.
func EntryHash(file, analyzer, message string) string {
	h := fnv.New64a()
	for _, s := range []string{file, analyzer, scrubPositions(message)} {
		h.Write([]byte(s)) //csecg:errok hash.Hash Write never returns an error
		h.Write([]byte{0}) //csecg:errok hash.Hash Write never returns an error
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// WriteBaseline writes diags as a baseline, sorted and deduplicated.
func WriteBaseline(w io.Writer, diags []Diagnostic) error {
	entries := make([]BaselineEntry, 0, len(diags))
	seen := map[string]bool{}
	for _, d := range diags {
		e := BaselineEntry{
			File:     d.Pos.Filename,
			Analyzer: d.Analyzer,
			Message:  d.Message,
			Hash:     EntryHash(d.Pos.Filename, d.Analyzer, d.Message),
		}
		if seen[e.Hash] {
			continue
		}
		seen[e.Hash] = true
		entries = append(entries, e)
	}
	sort.Slice(entries, func(i, j int) bool {
		a, b := entries[i], entries[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(entries)
}

// ReadBaseline loads a baseline file. A missing file is an empty
// baseline, not an error.
func ReadBaseline(path string) ([]BaselineEntry, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var entries []BaselineEntry
	if err := json.Unmarshal(data, &entries); err != nil {
		return nil, fmt.Errorf("analysis: baseline %s: %w", path, err)
	}
	return entries, nil
}

// FilterBaseline drops findings present in the baseline and returns
// the rest, plus the count suppressed. Hashed entries match on the
// position-insensitive key; pre-hash entries fall back to the exact
// (file, analyzer, message) triple.
func FilterBaseline(diags []Diagnostic, baseline []BaselineEntry) (kept []Diagnostic, suppressed int) {
	hashes := make(map[string]bool, len(baseline))
	exact := map[BaselineEntry]bool{}
	for _, e := range baseline {
		if e.Hash != "" {
			hashes[e.Hash] = true
			continue
		}
		exact[e] = true
	}
	for _, d := range diags {
		if hashes[EntryHash(d.Pos.Filename, d.Analyzer, d.Message)] ||
			exact[BaselineEntry{File: d.Pos.Filename, Analyzer: d.Analyzer, Message: d.Message}] {
			suppressed++
			continue
		}
		kept = append(kept, d)
	}
	return kept, suppressed
}
