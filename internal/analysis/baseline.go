package analysis

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// A Baseline is a committed list of accepted findings: adopting a new
// analyzer on a tree with pre-existing findings would otherwise force
// fixing everything in one change. Entries match on file, analyzer and
// message — not line numbers, which churn with every edit — so a
// baselined finding stays suppressed until it is actually fixed (or
// multiplied: new instances of the same message in the same file are
// also suppressed, the standard ratchet trade-off). The project keeps
// its committed baseline empty (CI fails otherwise); the mechanism
// exists for bisecting and for bootstrapping future analyzers.
type BaselineEntry struct {
	File     string `json:"file"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// WriteBaseline writes diags as a baseline, sorted and deduplicated.
func WriteBaseline(w io.Writer, diags []Diagnostic) error {
	entries := make([]BaselineEntry, 0, len(diags))
	seen := map[BaselineEntry]bool{}
	for _, d := range diags {
		e := BaselineEntry{File: d.Pos.Filename, Analyzer: d.Analyzer, Message: d.Message}
		if seen[e] {
			continue
		}
		seen[e] = true
		entries = append(entries, e)
	}
	sort.Slice(entries, func(i, j int) bool {
		a, b := entries[i], entries[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(entries)
}

// ReadBaseline loads a baseline file. A missing file is an empty
// baseline, not an error.
func ReadBaseline(path string) ([]BaselineEntry, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var entries []BaselineEntry
	if err := json.Unmarshal(data, &entries); err != nil {
		return nil, fmt.Errorf("analysis: baseline %s: %w", path, err)
	}
	return entries, nil
}

// FilterBaseline drops findings present in the baseline and returns
// the rest, plus the count suppressed.
func FilterBaseline(diags []Diagnostic, baseline []BaselineEntry) (kept []Diagnostic, suppressed int) {
	idx := make(map[BaselineEntry]bool, len(baseline))
	for _, e := range baseline {
		idx[e] = true
	}
	for _, d := range diags {
		if idx[BaselineEntry{File: d.Pos.Filename, Analyzer: d.Analyzer, Message: d.Message}] {
			suppressed++
			continue
		}
		kept = append(kept, d)
	}
	return kept, suppressed
}
