package analysis

import (
	"bytes"
	"go/token"
	"os"
	"path/filepath"
	"testing"
)

func TestEntryHashPositionInsensitive(t *testing.T) {
	a := EntryHash("pkg/f.go", "rangecheck", "operand derived at pkg/f.go:41:7 exceeds range")
	b := EntryHash("pkg/f.go", "rangecheck", "operand derived at pkg/f.go:98:12 exceeds range")
	if a != b {
		t.Errorf("hashes differ across embedded positions: %s vs %s", a, b)
	}
	if c := EntryHash("pkg/g.go", "rangecheck", "operand derived at pkg/f.go:41:7 exceeds range"); c == a {
		t.Error("hash ignores the file")
	}
	if c := EntryHash("pkg/f.go", "stackcheck", "operand derived at pkg/f.go:41:7 exceeds range"); c == a {
		t.Error("hash ignores the analyzer")
	}
	if c := EntryHash("pkg/f.go", "rangecheck", "a different message"); c == a {
		t.Error("hash ignores the message")
	}
}

func TestScrubPositions(t *testing.T) {
	in := "chain a.go:3 → b.go:14:2 → c.go:900"
	want := "chain a.go:# → b.go:# → c.go:#"
	if got := scrubPositions(in); got != want {
		t.Errorf("scrubPositions = %q, want %q", got, want)
	}
}

func TestBaselineRoundTrip(t *testing.T) {
	diags := []Diagnostic{
		{Pos: token.Position{Filename: "a.go", Line: 10}, Analyzer: "rangecheck", Message: "int16 addition may wrap at a.go:10:5"},
		{Pos: token.Position{Filename: "b.go", Line: 3}, Analyzer: "stackcheck", Message: "too deep"},
	}
	var buf bytes.Buffer
	if err := WriteBaseline(&buf, diags); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	entries, err := ReadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("round trip kept %d entries, want 2", len(entries))
	}

	// The same findings are suppressed even after their lines move —
	// both the reported position and the position inside the message.
	moved := []Diagnostic{
		{Pos: token.Position{Filename: "a.go", Line: 99}, Analyzer: "rangecheck", Message: "int16 addition may wrap at a.go:99:1"},
		{Pos: token.Position{Filename: "b.go", Line: 7}, Analyzer: "stackcheck", Message: "too deep"},
		{Pos: token.Position{Filename: "c.go", Line: 1}, Analyzer: "rangecheck", Message: "a new finding"},
	}
	kept, suppressed := FilterBaseline(moved, entries)
	if suppressed != 2 || len(kept) != 1 || kept[0].Pos.Filename != "c.go" {
		t.Errorf("FilterBaseline kept %v (suppressed %d), want only the c.go finding", kept, suppressed)
	}
}

func TestFilterBaselinePreHashEntries(t *testing.T) {
	// Entries written before the hash field existed match on the exact
	// triple only.
	entries := []BaselineEntry{{File: "a.go", Analyzer: "budget", Message: "over budget"}}
	diags := []Diagnostic{
		{Pos: token.Position{Filename: "a.go", Line: 4}, Analyzer: "budget", Message: "over budget"},
		{Pos: token.Position{Filename: "a.go", Line: 5}, Analyzer: "budget", Message: "different"},
	}
	kept, suppressed := FilterBaseline(diags, entries)
	if suppressed != 1 || len(kept) != 1 || kept[0].Message != "different" {
		t.Errorf("pre-hash entry: kept %v (suppressed %d)", kept, suppressed)
	}
}
