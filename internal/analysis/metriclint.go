package analysis

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// MetricLint enforces the telemetry naming contract module-wide. The
// registry hands out series on first use, so a typo'd or unit-less
// metric name silently becomes a new series — the dashboards never
// notice until the real one flatlines. Three rules:
//
//  1. Metric names are compile-time constant (a literal, const, or a
//     concatenation whose last operand is constant), snake_case, and
//     unit-suffixed: counters end in _total; gauges and histograms end
//     in a recognized unit (_ns, _bytes, _cycles, …), optionally
//     followed by a _per_<word> denominator.
//  2. Prometheus label keys are compile-time-constant snake_case.
//  3. A registry constructed locally whose metrics are registered but
//     never handed to an exporter (WritePrometheus*, or a function that
//     reaches one through the call graph) records into the void.
//
// Registry detection is structural — any named type with Counter,
// Gauge and Histogram methods taking a name string — so the contract
// follows the type, not the import path. Waive a deliberate exception
// (an export loop re-reading existing series, a measurement-only
// registry in a benchmark) with //csecg:metricok.
var MetricLint = &Analyzer{
	Name:      "metriclint",
	Doc:       "enforce metric naming, constant label sets, and registry export",
	RunModule: runMetricLint,
}

// metricUnits are the recognized unit suffixes for gauges and
// histograms (counters take _total). The vocabulary is the project's
// own: cycle and iteration counts are first-class units here because
// the paper's budget is measured in MSP430 cycles and FISTA
// iterations, not seconds.
var metricUnits = []string{
	"_ns", "_seconds", "_bytes", "_bits", "_ratio", "_permille",
	"_milli", "_centi", "_state", "_rung", "_depth", "_slots",
	"_cycles", "_iterations",
}

// registryMethods are the methods of a registry-like type whose use
// does not leak the registry anywhere.
var registryMethods = map[string]bool{
	"Counter": true, "Gauge": true, "Histogram": true,
	"SetHelp": true, "Help": true,
	"CounterNames": true, "GaugeNames": true, "HistogramNames": true,
}

// registryLike reports whether t (or *t) is a metrics registry:
// a named type with Counter, Gauge and Histogram methods, each taking
// exactly one string parameter and returning a pointer.
func registryLike(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	for _, want := range []string{"Counter", "Gauge", "Histogram"} {
		found := false
		for i := 0; i < n.NumMethods(); i++ {
			m := n.Method(i)
			if m.Name() != want {
				continue
			}
			sig := m.Type().(*types.Signature)
			if sig.Params().Len() == 1 && isString(sig.Params().At(0).Type()) &&
				sig.Results().Len() == 1 {
				if _, isPtr := sig.Results().At(0).Type().(*types.Pointer); isPtr {
					found = true
				}
			}
			break
		}
		if !found {
			return false
		}
	}
	return true
}

// registrationCall reports whether call is reg.Counter/Gauge/Histogram
// on a registry-like receiver, returning the metric kind and name
// argument.
func registrationCall(info *types.Info, call *ast.CallExpr) (kind string, nameArg ast.Expr, ok bool) {
	sel, isSel := unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel || len(call.Args) != 1 {
		return "", nil, false
	}
	switch sel.Sel.Name {
	case "Counter", "Gauge", "Histogram":
	default:
		return "", nil, false
	}
	s, isMethod := info.Selections[sel]
	if !isMethod || s.Kind() != types.MethodVal || !registryLike(s.Recv()) {
		return "", nil, false
	}
	return sel.Sel.Name, call.Args[0], true
}

// nameFragments flattens a metric-name expression into its constant
// string fragments, in order; a non-constant operand yields "". A
// single fully-constant expression comes back as one fragment.
func nameFragments(info *types.Info, e ast.Expr) []string {
	e = unparen(e)
	if tv, ok := info.Types[e]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
		return []string{constant.StringVal(tv.Value)}
	}
	if b, ok := e.(*ast.BinaryExpr); ok && b.Op == token.ADD {
		return append(nameFragments(info, b.X), nameFragments(info, b.Y)...)
	}
	return []string{""}
}

// validNameChars reports whether s is snake_case: [a-z0-9_] only, no
// run of consecutive underscores.
func validNameChars(s string) bool {
	if strings.Contains(s, "__") {
		return false
	}
	for _, r := range s {
		if (r < 'a' || r > 'z') && (r < '0' || r > '9') && r != '_' {
			return false
		}
	}
	return true
}

// stripPerDenominator removes one trailing _per_<word> denominator
// ("mote_wire_bytes_per_window" → "mote_wire_bytes").
func stripPerDenominator(name string) string {
	i := strings.LastIndex(name, "_per_")
	if i > 0 && validNameChars(name[i+len("_per_"):]) && name[i+len("_per_"):] != "" {
		return name[:i]
	}
	return name
}

// checkMetricName validates one registration's name expression and
// returns a finding message, or "".
func checkMetricName(info *types.Info, kind string, nameArg ast.Expr) string {
	frags := nameFragments(info, nameArg)
	full := true
	anyConst := false
	for _, f := range frags {
		if f == "" {
			full = false
		} else {
			anyConst = true
			if !validNameChars(f) {
				return fmt.Sprintf("metric name fragment %q is not snake_case [a-z0-9_]", f)
			}
		}
	}
	if !anyConst {
		return "metric name is not compile-time constant"
	}
	last := frags[len(frags)-1]
	if last == "" {
		return "metric name's unit suffix is not compile-time constant"
	}
	if full {
		name := strings.Join(frags, "")
		if name == "" || name[0] < 'a' || name[0] > 'z' {
			return fmt.Sprintf("metric name %q must start with a lowercase letter", name)
		}
		last = name
	}
	if kind == "Counter" {
		if !strings.HasSuffix(last, "_total") {
			return fmt.Sprintf("counter %q must end in _total", strings.Join(frags, "…"))
		}
		return ""
	}
	base := stripPerDenominator(last)
	for _, u := range metricUnits {
		if strings.HasSuffix(base, u) {
			return ""
		}
	}
	return fmt.Sprintf("%s %q has no unit suffix (want one of %s, optionally _per_<word>)",
		strings.ToLower(kind), strings.Join(frags, "…"), strings.Join(metricUnits, " "))
}

// exportsRegistry reports (memoized) whether calling n can put a
// registry on the wire: the function's name starts with
// WritePrometheus, or a callee's transitively does.
func exportsRegistry(n *FuncNode, memo map[*FuncNode]bool) bool {
	if v, ok := memo[n]; ok {
		return v
	}
	memo[n] = false // cycle guard
	v := strings.HasPrefix(n.Fn.Name(), "WritePrometheus")
	if !v {
		for _, e := range n.Out {
			if exportsRegistry(e.Callee, memo) {
				v = true
				break
			}
		}
	}
	memo[n] = v
	return v
}

func runMetricLint(p *ModulePass) {
	exportMemo := map[*FuncNode]bool{}
	for _, pkg := range p.Module.Pkgs {
		info := pkg.Info
		dirs := p.Dirs(pkg)
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if kind, nameArg, ok := registrationCall(info, call); ok {
					if !dirs.covered("metricok", call.Pos()) {
						if msg := checkMetricName(info, kind, nameArg); msg != "" {
							p.Report(call.Pos(), msg,
								"use a constant snake_case name with a unit suffix, or waive with //csecg:metricok")
						}
					}
				}
				checkLabelArgs(p, info, dirs, call)
				return true
			})
			checkLocalRegistries(p, pkg, file, exportMemo)
		}
	}
}

// checkLabelArgs validates Label composite literals passed to an
// exporter: the Key field must be a compile-time-constant snake_case
// string.
func checkLabelArgs(p *ModulePass, info *types.Info, dirs *Directives, call *ast.CallExpr) {
	fn := staticCallee(info, call)
	if fn == nil || !strings.HasPrefix(fn.Name(), "WritePrometheus") {
		return
	}
	for _, arg := range call.Args {
		lit, ok := unparen(arg).(*ast.CompositeLit)
		if !ok {
			continue
		}
		tv, ok := info.Types[ast.Expr(lit)]
		if !ok || tv.Type == nil {
			continue
		}
		named, ok := tv.Type.(*types.Named)
		if !ok || named.Obj().Name() != "Label" {
			continue
		}
		for _, el := range lit.Elts {
			kv, ok := el.(*ast.KeyValueExpr)
			if !ok {
				continue
			}
			key, ok := kv.Key.(*ast.Ident)
			if !ok || key.Name != "Key" {
				continue
			}
			if dirs.covered("metricok", kv.Pos()) {
				continue
			}
			vtv, ok := info.Types[kv.Value]
			if !ok || vtv.Value == nil || vtv.Value.Kind() != constant.String {
				p.Report(kv.Pos(), "label key is not compile-time constant",
					"label sets must be fixed at build time; waive with //csecg:metricok")
				continue
			}
			k := constant.StringVal(vtv.Value)
			if k == "" || k[0] == '_' || !validNameChars(k) {
				p.Report(kv.Pos(), fmt.Sprintf("label key %q is not snake_case", k),
					"label sets must be fixed at build time; waive with //csecg:metricok")
			}
		}
	}
}

// checkLocalRegistries flags function-local registries that register
// metrics but never reach an exporter and never escape the function.
func checkLocalRegistries(p *ModulePass, pkg *Package, file *ast.File, exportMemo map[*FuncNode]bool) {
	info := pkg.Info
	dirs := p.Dirs(pkg)
	ast.Inspect(file, func(n ast.Node) bool {
		decl, ok := n.(*ast.FuncDecl)
		if !ok || decl.Body == nil {
			return true
		}
		// Local registry constructions: reg := NewSomething() where the
		// result is registry-like.
		locals := map[types.Object]token.Pos{}
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || as.Tok != token.DEFINE || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
				return true
			}
			id, ok := as.Lhs[0].(*ast.Ident)
			if !ok {
				return true
			}
			call, ok := unparen(as.Rhs[0]).(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := staticCallee(info, call)
			if callee == nil || !strings.HasPrefix(callee.Name(), "New") {
				return true
			}
			if obj := info.Defs[id]; obj != nil && registryLike(obj.Type()) {
				locals[obj] = as.Pos()
			}
			return true
		})
		if len(locals) == 0 {
			return true
		}
		// Classify every use of each local registry.
		type usage struct {
			registers, exported, escapes bool
		}
		use := map[types.Object]*usage{}
		//csecg:orderok populating a map keyed by the one above
		for obj := range locals {
			use[obj] = &usage{}
		}
		localObj := func(e ast.Expr) types.Object {
			id, ok := unparen(e).(*ast.Ident)
			if !ok {
				return nil
			}
			obj := info.Uses[id]
			if _, tracked := use[obj]; !tracked {
				return nil
			}
			return obj
		}
		accounted := map[token.Pos]bool{}
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok {
				if obj := localObj(sel.X); obj != nil && registryMethods[sel.Sel.Name] {
					accounted[unparen(sel.X).Pos()] = true
					if sel.Sel.Name == "Counter" || sel.Sel.Name == "Gauge" || sel.Sel.Name == "Histogram" {
						use[obj].registers = true
					}
					return true
				}
			}
			callee := staticCallee(info, call)
			for _, arg := range call.Args {
				obj := localObj(arg)
				if obj == nil {
					continue
				}
				accounted[unparen(arg).Pos()] = true
				if callee != nil && calleeExports(p, callee, exportMemo) {
					use[obj].exported = true
				} else {
					// Handed to a function we can't prove exports it —
					// assume the callee takes ownership.
					use[obj].escapes = true
				}
			}
			return true
		})
		// Any use outside the accounted contexts (returned, stored in a
		// struct, captured address, …) counts as an escape.
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj := info.Uses[id]
			u, tracked := use[obj]
			if tracked && !accounted[id.Pos()] {
				u.escapes = true
			}
			return true
		})
		//csecg:orderok diagnostics are position-sorted by RunModule
		for obj, pos := range locals {
			u := use[obj]
			if u.registers && !u.exported && !u.escapes && !dirs.covered("metricok", pos) {
				p.Report(pos,
					fmt.Sprintf("registry %s registers metrics but is never exported", obj.Name()),
					"hand it to WritePrometheus/WritePrometheusLabeled (or a function that does), or waive a measurement-only registry with //csecg:metricok")
			}
		}
		return true
	})
}

// calleeExports reports whether fn (by graph node, or by name for
// out-of-module functions) can export a registry.
func calleeExports(p *ModulePass, fn *types.Func, memo map[*FuncNode]bool) bool {
	if node := p.Graph.Node(fn); node != nil {
		return exportsRegistry(node, memo)
	}
	return strings.HasPrefix(fn.Name(), "WritePrometheus")
}
