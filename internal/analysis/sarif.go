package analysis

import (
	"encoding/json"
	"io"
)

// Minimal SARIF 2.1.0 output so csecg-vet findings land in code-review
// UIs (GitHub code scanning and friends) without a format shim. Only
// the fields those consumers require are emitted.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
	// RelatedLocations carry a finding's supporting evidence — the
	// interval derivation of a rangecheck finding or the worst-case call
	// chain of a stackcheck finding — so code-scanning UIs render them
	// as navigable links.
	RelatedLocations []sarifLocation `json:"relatedLocations,omitempty"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
	Message          *sarifMessage `json:"message,omitempty"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// WriteSARIF renders diags as one SARIF run. Every registered analyzer
// appears as a rule (so a clean run still documents the rule set);
// each finding carries its suggestion inline when present.
func WriteSARIF(w io.Writer, diags []Diagnostic, analyzers []*Analyzer) error {
	rules := make([]sarifRule, 0, len(analyzers))
	for _, a := range analyzers {
		rules = append(rules, sarifRule{
			ID:               a.Name,
			ShortDescription: sarifMessage{Text: a.Doc},
		})
	}
	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		text := d.Message
		if d.Suggestion != "" {
			text += " (suggestion: " + d.Suggestion + ")"
		}
		var related []sarifLocation
		for _, r := range d.Related {
			related = append(related, sarifLocation{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: r.Pos.Filename},
					Region:           sarifRegion{StartLine: r.Pos.Line, StartColumn: r.Pos.Column},
				},
				Message: &sarifMessage{Text: r.Message},
			})
		}
		results = append(results, sarifResult{
			RuleID:  d.Analyzer,
			Level:   "error",
			Message: sarifMessage{Text: text},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: d.Pos.Filename},
					Region:           sarifRegion{StartLine: d.Pos.Line, StartColumn: d.Pos.Column},
				},
			}},
			RelatedLocations: related,
		})
	}
	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "csecg-vet", Rules: rules}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}
