package analysis

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// StackCheck turns the RAM ledger's "call stack and misc" line from a
// hand-waved estimate into a machine-checked bound: for every exported
// entry point of a device package it computes the worst-case stack
// depth over the v2 call graph — per-function frames from a 16-bit
// types.Sizes model of the MSP430 (2-byte words, 2-byte max alignment)
// plus a fixed call overhead — and asserts the maximum against the
// //csecg:ram budget constant named by Config.StackBudgetConst
// (RAMStackMisc in this tree). Recursion cycles have no static bound
// and are reported as unbounded. The worst-case call chain rides along
// as relatedLocations so the finding is navigable.
//
// Model (DESIGN.md §15): a frame is receiver + params + results +
// every local declared anywhere in the body (closures fold into the
// enclosing declaration — an over-approximation, since Go would only
// materialize a closure frame when called) each rounded up to the
// 2-byte word, plus stackCallOverhead for the return address and frame
// pointer; calls out of the module (runtime, stdlib leaves) cost a
// flat stackExternCost. `go` statements start their own stack and are
// excluded; a call-site edge can be waived with //csecg:stackok.
var StackCheck = &Analyzer{
	Name:      "stackcheck",
	Doc:       "bound worst-case device stack per entry point against the RAM ledger, over the call graph",
	RunModule: runStackCheckModule,
}

const (
	// stackCallOverhead models CALL's pushed return address plus a saved
	// frame pointer on the MSP430 (2 bytes each).
	stackCallOverhead = 4
	// stackExternCost is the flat charge for a callee whose body is
	// outside the module (mote firmware links no stdlib, so these are
	// modeling seams, not real device calls — the charge keeps the bound
	// conservative without chasing the Go runtime).
	stackExternCost = 48
)

// mspSizes is the 16-bit device layout model.
var mspSizes = &types.StdSizes{WordSize: 2, MaxAlign: 2}

// StackFrame is one hop of a worst-case call chain.
type StackFrame struct {
	Func  string
	Pos   token.Position
	Bytes int64
}

// StackBound is the computed worst-case stack of one device entry point.
type StackBound struct {
	Entry string
	Pos   token.Position
	// Bytes is the worst-case stack depth (0 when Unbounded).
	Bytes     int64
	Unbounded bool
	// Cycle names the recursion cycle when Unbounded.
	Cycle []string
	// Chain is the worst-case call path, entry first.
	Chain []StackFrame
}

// stackResult memoizes one node's worst-case cost including its own
// frame. Memoization across contexts is safe because the graph is
// static: a node that reaches a cycle is unbounded from everywhere.
type stackResult struct {
	bytes     int64
	unbounded bool
	cycle     []string
	// cycleOpen tracks cycle-path reconstruction during unwind.
	cycleOpen bool
	cycleHead *FuncNode
	// worst is the callee edge realizing the bound (nil for leaves).
	worst *Edge
}

type stackChecker struct {
	fset *token.FileSet
	cfg  Config
	dirs func(*Package) *Directives
	memo map[*FuncNode]stackResult
	on   map[*FuncNode]bool
}

// frameBytes estimates one module function's stack frame.
func (c *stackChecker) frameBytes(n *FuncNode) int64 {
	var total int64
	add := func(t types.Type) {
		sz := sizeofSafe(t)
		total += (sz + 1) &^ 1 // round up to the 2-byte word
	}
	sig, _ := n.Fn.Type().(*types.Signature)
	if sig != nil {
		if r := sig.Recv(); r != nil {
			add(r.Type())
		}
		for i := 0; i < sig.Params().Len(); i++ {
			add(sig.Params().At(i).Type())
		}
		for i := 0; i < sig.Results().Len(); i++ {
			add(sig.Results().At(i).Type())
		}
	}
	if n.Decl != nil && n.Decl.Body != nil && n.Pkg != nil {
		seen := map[*types.Var]bool{}
		ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
			id, ok := node.(*ast.Ident)
			if !ok {
				return true
			}
			if v, ok := n.Pkg.Info.Defs[id].(*types.Var); ok && !seen[v] {
				seen[v] = true
				add(v.Type())
			}
			return true
		})
	}
	return total + stackCallOverhead
}

// sizeofSafe is mspSizes.Sizeof with a recover guard: types the 16-bit
// model cannot size (unsized type parameters) fall back to one word.
func sizeofSafe(t types.Type) (sz int64) {
	defer func() {
		if recover() != nil {
			sz = 2
		}
	}()
	return mspSizes.Sizeof(t)
}

// cost returns the worst-case stack of calling n (frame + deepest
// callee), memoized.
func (c *stackChecker) cost(n *FuncNode) stackResult {
	if r, ok := c.memo[n]; ok {
		return r
	}
	if !n.InModule() {
		r := stackResult{bytes: stackExternCost}
		c.memo[n] = r
		return r
	}
	if c.on[n] {
		// Recursion: unwind collecting the cycle until n reappears.
		return stackResult{unbounded: true, cycleOpen: true, cycleHead: n, cycle: []string{n.ShortName()}}
	}
	c.on[n] = true
	frame := c.frameBytes(n)
	var worst stackResult
	var worstEdge *Edge
	dirs := c.dirs(n.Pkg)
	for _, e := range n.Out {
		if e.Go {
			continue // new goroutine, new stack
		}
		if dirs != nil && dirs.covered("stackok", e.Pos) {
			continue
		}
		r := c.cost(e.Callee)
		if r.unbounded {
			if r.cycleOpen {
				r.cycle = append([]string{n.ShortName()}, r.cycle...)
				if r.cycleHead == n {
					r.cycleOpen = false
				}
			}
			delete(c.on, n)
			// Memoize only closed cycles: while the cycle is open the
			// result depends on the path above n.
			if !r.cycleOpen {
				c.memo[n] = r
			}
			return r
		}
		if worstEdge == nil || r.bytes > worst.bytes {
			worst = r
			worstEdge = e
		}
	}
	delete(c.on, n)
	out := stackResult{bytes: frame + worst.bytes, worst: worstEdge}
	c.memo[n] = out
	return out
}

// chainOf reconstructs the worst-case call path from the memo.
func (c *stackChecker) chainOf(entry *FuncNode) []StackFrame {
	var chain []StackFrame
	n := entry
	for n != nil {
		r, ok := c.memo[n]
		if !ok {
			break
		}
		bytes := int64(stackExternCost)
		if n.InModule() {
			bytes = c.frameBytes(n)
		}
		chain = append(chain, StackFrame{Func: n.ShortName(), Pos: c.fset.Position(n.Fn.Pos()), Bytes: bytes})
		if r.worst == nil {
			break
		}
		n = r.worst.Callee
	}
	return chain
}

// deviceEntries lists the analyzable entry points: exported functions
// declared in device packages, excluding //csecg:host-covered ones.
func (c *stackChecker) deviceEntries(g *CallGraph) []*FuncNode {
	var entries []*FuncNode
	for _, n := range g.Nodes() {
		if !n.InModule() || n.Pkg == nil || !c.cfg.isDevice(n.Pkg.ImportPath) {
			continue
		}
		if !n.Decl.Name.IsExported() {
			continue
		}
		if d := c.dirs(n.Pkg); d != nil && d.covered("host", n.Decl.Pos()) {
			continue
		}
		entries = append(entries, n)
	}
	return entries
}

// bounds computes every device entry point's StackBound, sorted by
// descending depth (unbounded first), then name.
func (c *stackChecker) bounds(g *CallGraph) []StackBound {
	var out []StackBound
	for _, n := range c.deviceEntries(g) {
		r := c.cost(n)
		b := StackBound{
			Entry:     n.ShortName(),
			Pos:       c.fset.Position(n.Decl.Pos()),
			Bytes:     r.bytes,
			Unbounded: r.unbounded,
			Cycle:     r.cycle,
		}
		if !r.unbounded {
			b.Chain = c.chainOf(n)
		}
		out = append(out, b)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Unbounded != b.Unbounded {
			return a.Unbounded
		}
		if a.Bytes != b.Bytes {
			return a.Bytes > b.Bytes
		}
		return a.Entry < b.Entry
	})
	return out
}

// stackBudget locates the ledger constant named by cfg.StackBudgetConst
// in the device packages.
func stackBudget(mod *Module, cfg Config) (int64, token.Pos, bool) {
	if cfg.StackBudgetConst == "" {
		return 0, token.NoPos, false
	}
	for _, pkg := range mod.Pkgs {
		if !cfg.isDevice(pkg.ImportPath) {
			continue
		}
		obj, ok := pkg.Types.Scope().Lookup(cfg.StackBudgetConst).(*types.Const)
		if !ok {
			continue
		}
		if v, exact := constant.Int64Val(constant.ToInt(obj.Val())); exact {
			return v, obj.Pos(), true
		}
	}
	return 0, token.NoPos, false
}

// DeviceStackBounds computes the worst-case stack bound of every device
// entry point — the machine-checked form of the RAMStackMisc ledger
// line, also behind csecg-vet's -stack-report and
// TestStackBoundCoversLedger.
func DeviceStackBounds(mod *Module, cfg Config) []StackBound {
	g := BuildCallGraph(mod)
	dirs := map[string]*Directives{}
	c := &stackChecker{
		fset: mod.Fset,
		cfg:  cfg,
		dirs: func(pkg *Package) *Directives {
			d, ok := dirs[pkg.ImportPath]
			if !ok {
				d = scanDirectives(mod.Fset, pkg)
				dirs[pkg.ImportPath] = d
			}
			return d
		},
		memo: map[*FuncNode]stackResult{},
		on:   map[*FuncNode]bool{},
	}
	return c.bounds(g)
}

func runStackCheckModule(pass *ModulePass) {
	c := &stackChecker{
		fset: pass.Fset,
		cfg:  pass.Config,
		dirs: pass.Dirs,
		memo: map[*FuncNode]stackResult{},
		on:   map[*FuncNode]bool{},
	}
	budget, budgetPos, haveBudget := stackBudget(pass.Module, pass.Config)
	for _, n := range c.deviceEntries(pass.Graph) {
		r := c.cost(n)
		if r.unbounded {
			pass.Report(n.Decl.Pos(),
				fmt.Sprintf("entry point %s has no static stack bound: recursion cycle %s", n.ShortName(), strings.Join(r.cycle, " → ")),
				"rewrite the recursion as a loop, or waive a proven-bounded call site with //csecg:stackok")
			continue
		}
		if haveBudget && r.bytes > budget {
			var rel []Related
			for _, fr := range c.chainOf(n) {
				rel = append(rel, Related{Pos: fr.Pos, Message: fmt.Sprintf("%s: frame %d bytes", fr.Func, fr.Bytes)})
			}
			rel = append(rel, Related{Pos: pass.Fset.Position(budgetPos), Message: fmt.Sprintf("budget %s = %d declared here", pass.Config.StackBudgetConst, budget)})
			pass.ReportRelated(n.Decl.Pos(),
				fmt.Sprintf("worst-case stack of entry point %s is %d bytes, exceeding the %s ledger of %d", n.ShortName(), r.bytes, pass.Config.StackBudgetConst, budget),
				"shrink the deepest frames (see related locations), raise the ledger within the RAM budget, or waive a proven-cold call site with //csecg:stackok",
				rel)
		}
	}
}
