package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
)

// LeakCheck flags goroutines launched without a shutdown path. The
// host plane spawns workers for streaming, draining and export; one
// that loops forever with no context.Context or done channel in reach
// outlives its session and leaks (ROADMAP: the monitor must survive
// mote churn without accreting goroutines). A goroutine passes if its
// body can observe a cancellation signal — it mentions a
// context.Context or channel-typed expression (parameter, captured
// variable, struct field or receiver) — or if it has no loop at all
// (bounded work terminates by itself). Spawns through dynamic function
// values are skipped (soundness limit, DESIGN.md §12); an
// externally-terminated goroutine is waived with //csecg:leakok.
var LeakCheck = &Analyzer{
	Name:      "leakcheck",
	Doc:       "flag goroutines launched without a reachable shutdown path",
	RunModule: runLeakCheck,
}

const leakSuggestion = "pass a context.Context or done channel and select on it in the loop, or waive an externally-terminated goroutine with //csecg:leakok"

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// isSignalType reports whether t can carry a shutdown signal: a channel
// or a context.Context (directly, not buried in a struct — a goroutine
// holding a struct must still name the signal field to observe it, and
// that selector expression is what the body scan sees).
func isSignalType(t types.Type) bool {
	if t == nil {
		return false
	}
	if isContextType(t) {
		return true
	}
	_, isChan := t.Underlying().(*types.Chan)
	return isChan
}

// bodyHasShutdownPath reports whether the goroutine body (or its
// signature) can observe cancellation: any expression of channel or
// context type appears, or the body has no loop (bounded work).
func bodyHasShutdownPath(info *types.Info, sig *types.Signature, body *ast.BlockStmt) bool {
	if sig != nil {
		if r := sig.Recv(); r != nil && isSignalType(r.Type()) {
			return true
		}
		for i := 0; i < sig.Params().Len(); i++ {
			if isSignalType(sig.Params().At(i).Type()) {
				return true
			}
		}
	}
	hasLoop, hasSignal := false, false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			hasLoop = true
		case *ast.SelectStmt:
			// A select observes its channels even when they only appear
			// inside comm clauses the type-checker records normally —
			// covered by the expression scan below.
		case ast.Expr:
			if tv, ok := info.Types[n]; ok && isSignalType(tv.Type) {
				hasSignal = true
			}
		}
		return !(hasLoop && hasSignal)
	})
	return hasSignal || !hasLoop
}

func runLeakCheck(p *ModulePass) {
	for _, pkg := range p.Module.Pkgs {
		info := pkg.Info
		dirs := p.Dirs(pkg)
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				g, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				if dirs.covered("leakok", g.Pos()) {
					return true
				}
				var sig *types.Signature
				var body *ast.BlockStmt
				bodyInfo := info
				label := "goroutine"
				switch fun := unparen(g.Call.Fun).(type) {
				case *ast.FuncLit:
					if tv, ok := info.Types[fun.Type]; ok {
						sig, _ = tv.Type.(*types.Signature)
					}
					body = fun.Body
				default:
					// Named function or method: resolve through the call
					// graph's view of the module.
					fn := staticCallee(info, g.Call)
					if fn == nil {
						return true // dynamic spawn — documented soundness limit
					}
					node := p.Graph.Node(fn)
					if node == nil || !node.InModule() {
						return true // out-of-module target: body not visible
					}
					sig, _ = fn.Type().(*types.Signature)
					body = node.Decl.Body
					bodyInfo = node.Pkg.Info
					label = node.ShortName()
				}
				if body == nil || bodyHasShutdownPath(bodyInfo, sig, body) {
					return true
				}
				p.Report(g.Pos(),
					fmt.Sprintf("%s loops without a shutdown path: no context.Context or channel is reachable from its body", label),
					leakSuggestion)
				return true
			})
		}
	}
}

// staticCallee resolves a call to its static *types.Func target, or nil
// for dynamic calls.
func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}
