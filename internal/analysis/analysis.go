// Package analysis is csecg's in-tree static-analysis engine: it loads,
// parses and type-checks the module with the standard library's go/ast
// and go/types (no external dependencies) and runs a suite of
// domain-specific analyzers that turn the paper's embedded constraints —
// an integer-only MSP430 encoder path, allocation-free hot loops, a
// 10 kB RAM / 48 kB flash budget, and bit-reproducible wire output —
// into machine-checked invariants. cmd/csecg-vet is the command-line
// driver; DESIGN.md §8 documents the invariants and the directive
// grammar (//csecg:host, //csecg:hotpath, …) used to scope them.
package analysis

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// Config scopes the analyzers to the repository layout.
type Config struct {
	// DevicePackages are the import paths whose code models the mote
	// firmware: the nofpu analyzer forbids floating point there and the
	// budget analyzer sums their //csecg:ram and //csecg:flash ledgers.
	DevicePackages []string
	// LibraryExcludePrefixes name import-path prefixes (cmd/, examples/)
	// exempt from the determinism analyzer.
	LibraryExcludePrefixes []string
	// StackBudgetConst names the device-package constant (a //csecg:ram
	// ledger line) that stackcheck asserts the worst-case static stack
	// bound against. Empty disables the assertion.
	StackBudgetConst string
}

// DefaultConfig returns the csecg repository scoping for a module path.
func DefaultConfig(modPath string) Config {
	return Config{
		DevicePackages: []string{
			modPath + "/internal/core",
			modPath + "/internal/sensing",
			modPath + "/internal/huffman",
			modPath + "/internal/fixedpoint",
			modPath + "/internal/mote",
		},
		LibraryExcludePrefixes: []string{
			modPath + "/cmd/",
			modPath + "/examples/",
		},
		StackBudgetConst: "RAMStackMisc",
	}
}

// isDevice reports whether importPath is a device-side package.
func (c Config) isDevice(importPath string) bool {
	for _, p := range c.DevicePackages {
		if importPath == p {
			return true
		}
	}
	return false
}

// isLibrary reports whether importPath is a library package (everything
// outside the exclude prefixes).
func (c Config) isLibrary(importPath string) bool {
	for _, p := range c.LibraryExcludePrefixes {
		if strings.HasPrefix(importPath, p) {
			return false
		}
	}
	return true
}

// Diagnostic is one analyzer finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
	// Suggestion, when non-empty, names the nearest allowed alternative
	// (printed by the driver's -suggest mode).
	Suggestion string
	// Related holds supporting locations: the interval derivation of a
	// rangecheck finding, or the worst-case call chain of a stackcheck
	// finding. SARIF exports them as relatedLocations.
	Related []Related
}

// Related is one supporting location of a finding.
type Related struct {
	Pos     token.Position
	Message string
}

// String renders the canonical file:line:col: [analyzer] message form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Pass is one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Config   Config
	Fset     *token.FileSet
	Pkg      *Package
	// Dirs indexes the package's //csecg: directives.
	Dirs  *Directives
	diags *[]Diagnostic
	seen  map[string]bool
}

// Report records a finding at pos. Findings are deduplicated per
// analyzer and source line so one offending expression yields one line
// of output.
func (p *Pass) Report(pos token.Pos, msg, suggestion string) {
	p.ReportRelated(pos, msg, suggestion, nil)
}

// ReportRelated is Report with supporting locations attached.
func (p *Pass) ReportRelated(pos token.Pos, msg, suggestion string, related []Related) {
	position := p.Fset.Position(pos)
	key := fmt.Sprintf("%s:%d", position.Filename, position.Line)
	if p.seen[key] {
		return
	}
	p.seen[key] = true
	*p.diags = append(*p.diags, Diagnostic{
		Pos:        position,
		Analyzer:   p.Analyzer.Name,
		Message:    msg,
		Suggestion: suggestion,
		Related:    related,
	})
}

// Analyzer is one named check. Run (per package) and RunModule (over
// the whole module with the call graph available) are both optional;
// an analyzer may define either or both halves under one name — nofpu
// and noalloc pair an intraprocedural Run with a transitive RunModule.
type Analyzer struct {
	Name      string
	Doc       string
	Run       func(*Pass)
	RunModule func(*ModulePass)
	// Advisory marks hint-grade analyzers (shiftidx): findings that are
	// honest but not always provable-clean on a correct tree. The driver
	// leaves them off by default and the clean-tree gate skips them.
	Advisory bool
}

// Analyzers returns the full suite in reporting order: the five
// original per-package analyzers (nofpu and noalloc now also carrying
// their transitive halves), the three call-graph analyzers for the
// host plane, and the v3 interval-engine analyzers (rangecheck,
// stackcheck, plus the advisory shiftidx).
func Analyzers() []*Analyzer {
	return []*Analyzer{NoFPU, NoAlloc, Budget, Determinism, ErrCheck, LockCheck, LeakCheck, MetricLint, RangeCheck, StackCheck, ShiftIdx}
}

// ModulePass is one module-wide analyzer's view of the whole module:
// every package, the call graph, and the directive index of each
// package.
type ModulePass struct {
	Analyzer *Analyzer
	Config   Config
	Fset     *token.FileSet
	Module   *Module
	Graph    *CallGraph
	dirs     map[string]*Directives
	diags    *[]Diagnostic
	seen     map[string]bool
}

// Dirs returns (building on demand) the directive index of pkg.
func (p *ModulePass) Dirs(pkg *Package) *Directives {
	d, ok := p.dirs[pkg.ImportPath]
	if !ok {
		d = scanDirectives(p.Fset, pkg)
		p.dirs[pkg.ImportPath] = d
	}
	return d
}

// NodeDirs returns the directive index of the package declaring n (nil
// for out-of-module nodes).
func (p *ModulePass) NodeDirs(n *FuncNode) *Directives {
	if n == nil || n.Pkg == nil {
		return nil
	}
	return p.Dirs(n.Pkg)
}

// Report records a module-wide finding, deduplicated per analyzer and
// source line like Pass.Report.
func (p *ModulePass) Report(pos token.Pos, msg, suggestion string) {
	p.ReportRelated(pos, msg, suggestion, nil)
}

// ReportRelated is Report with supporting locations attached.
func (p *ModulePass) ReportRelated(pos token.Pos, msg, suggestion string, related []Related) {
	position := p.Fset.Position(pos)
	key := fmt.Sprintf("%s:%d", position.Filename, position.Line)
	if p.seen[key] {
		return
	}
	p.seen[key] = true
	*p.diags = append(*p.diags, Diagnostic{
		Pos:        position,
		Analyzer:   p.Analyzer.Name,
		Message:    msg,
		Suggestion: suggestion,
		Related:    related,
	})
}

// RunPackage executes the per-package half of the given analyzers over
// one package (module-wide halves need RunModule).
func RunPackage(fset *token.FileSet, pkg *Package, cfg Config, analyzers []*Analyzer) []Diagnostic {
	dirs := scanDirectives(fset, pkg)
	var diags []Diagnostic
	for _, a := range analyzers {
		if a.Run == nil {
			continue
		}
		pass := &Pass{
			Analyzer: a,
			Config:   cfg,
			Fset:     fset,
			Pkg:      pkg,
			Dirs:     dirs,
			diags:    &diags,
			seen:     map[string]bool{},
		}
		a.Run(pass)
	}
	return diags
}

// RunModule executes the analyzers over every package of the module —
// per-package halves first, then the module-wide halves over a shared
// call graph — and returns the findings sorted by position.
func RunModule(mod *Module, cfg Config, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range mod.Pkgs {
		diags = append(diags, RunPackage(mod.Fset, pkg, cfg, analyzers)...)
	}
	var graph *CallGraph
	dirs := map[string]*Directives{}
	for _, a := range analyzers {
		if a.RunModule == nil {
			continue
		}
		if graph == nil {
			graph = BuildCallGraph(mod)
		}
		mp := &ModulePass{
			Analyzer: a,
			Config:   cfg,
			Fset:     mod.Fset,
			Module:   mod,
			Graph:    graph,
			dirs:     dirs,
			diags:    &diags,
			seen:     map[string]bool{},
		}
		a.RunModule(mp)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags
}
