package analysis

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"testing"
)

// TestSARIFRelatedLocations renders real rangecheck findings (from the
// golden package) as SARIF and checks the interval derivation rides
// along as relatedLocations with messages — the evidence trail
// code-scanning UIs link to.
func TestSARIFRelatedLocations(t *testing.T) {
	dir := filepath.Join("testdata", "src", "rangecheck")
	const ip = "rangechecktest"
	pkg, fset, err := LoadDir(dir, ip)
	if err != nil {
		t.Fatal(err)
	}
	diags := RunPackage(fset, pkg, Config{DevicePackages: []string{ip}}, []*Analyzer{RangeCheck})
	if len(diags) == 0 {
		t.Fatal("golden package produced no findings")
	}
	var buf bytes.Buffer
	if err := WriteSARIF(&buf, diags, Analyzers()); err != nil {
		t.Fatal(err)
	}
	var log sarifLog
	if err := json.Unmarshal(buf.Bytes(), &log); err != nil {
		t.Fatalf("invalid SARIF JSON: %v", err)
	}
	if len(log.Runs) != 1 || len(log.Runs[0].Results) != len(diags) {
		t.Fatalf("SARIF carries %d runs / %d results, want 1 run / %d results",
			len(log.Runs), len(log.Runs[0].Results), len(diags))
	}
	withRelated := 0
	for _, r := range log.Runs[0].Results {
		for _, rel := range r.RelatedLocations {
			if rel.PhysicalLocation.ArtifactLocation.URI == "" || rel.PhysicalLocation.Region.StartLine == 0 {
				t.Errorf("related location without a position: %+v", rel)
			}
			if rel.Message == nil || rel.Message.Text == "" {
				t.Errorf("related location without a derivation message: %+v", rel)
			}
		}
		if len(r.RelatedLocations) > 0 {
			withRelated++
		}
	}
	if withRelated == 0 {
		t.Error("no SARIF result carries relatedLocations; the derivation plumbing is broken")
	}
}
