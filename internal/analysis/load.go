package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked package of the module under analysis.
type Package struct {
	// ImportPath is the package's import path ("csecg/internal/core").
	ImportPath string
	// Dir is the absolute directory holding the package sources.
	Dir string
	// Files are the parsed non-test sources, in file-name order.
	Files []*ast.File
	// Types and Info carry the go/types results.
	Types *types.Package
	Info  *types.Info
}

// Module is a loaded, parsed and type-checked Go module.
type Module struct {
	// Root is the directory containing go.mod.
	Root string
	// Path is the module path from go.mod.
	Path string
	// Fset positions every parsed file.
	Fset *token.FileSet
	// Pkgs holds every non-test package, sorted by import path.
	Pkgs []*Package
}

// loader resolves module-internal imports from source and delegates the
// standard library to the gc source importer, so the whole analysis
// stays inside the standard library (no external module loader).
type loader struct {
	root, modPath string
	fset          *token.FileSet
	std           types.Importer
	dirs          map[string]string // import path -> dir
	pkgs          map[string]*Package
	loading       map[string]bool // cycle detection
}

// findModuleRoot walks up from dir to the directory containing go.mod.
func findModuleRoot(dir string) (root, modPath string, err error) {
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("analysis: %s/go.mod has no module directive", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("analysis: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// discover maps every package directory of the module to its import
// path. testdata, hidden and vendor directories are skipped, as are
// directories holding only test files.
func (l *loader) discover() error {
	l.dirs = map[string]string{}
	return filepath.WalkDir(l.root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.root && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		if len(goSources(path)) == 0 {
			return nil
		}
		rel, err := filepath.Rel(l.root, path)
		if err != nil {
			return err
		}
		ip := l.modPath
		if rel != "." {
			ip = l.modPath + "/" + filepath.ToSlash(rel)
		}
		l.dirs[ip] = path
		return nil
	})
}

// goSources lists the non-test .go files of dir in name order.
func goSources(dir string) []string {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil
	}
	var out []string
	for _, e := range entries {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") ||
			strings.HasSuffix(n, "_test.go") || strings.HasPrefix(n, ".") {
			continue
		}
		out = append(out, filepath.Join(dir, n))
	}
	sort.Strings(out)
	return out
}

// Import implements types.Importer over both halves of the world.
func (l *loader) Import(path string) (*types.Package, error) {
	if path == l.modPath || strings.HasPrefix(path, l.modPath+"/") {
		pkg, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// load parses and type-checks one module package (memoized).
func (l *loader) load(importPath string) (*Package, error) {
	if pkg, ok := l.pkgs[importPath]; ok {
		return pkg, nil
	}
	if l.loading[importPath] {
		return nil, fmt.Errorf("analysis: import cycle through %s", importPath)
	}
	dir, ok := l.dirs[importPath]
	if !ok {
		return nil, fmt.Errorf("analysis: package %s not found in module %s", importPath, l.modPath)
	}
	l.loading[importPath] = true
	defer delete(l.loading, importPath)

	pkg, err := typeCheckDir(l.fset, dir, importPath, l)
	if err != nil {
		return nil, err
	}
	l.pkgs[importPath] = pkg
	return pkg, nil
}

// typeCheckDir parses and type-checks the non-test files of one
// directory as a single package using imp for imports.
func typeCheckDir(fset *token.FileSet, dir, importPath string, imp types.Importer) (*Package, error) {
	srcs := goSources(dir)
	if len(srcs) == 0 {
		return nil, fmt.Errorf("analysis: no Go sources in %s", dir)
	}
	var files []*ast.File
	for _, src := range srcs {
		f, err := parser.ParseFile(fset, src, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("analysis: %w", err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Instances:  map[*ast.Ident]types.Instance{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", importPath, err)
	}
	return &Package{ImportPath: importPath, Dir: dir, Files: files, Types: tpkg, Info: info}, nil
}

// LoadModule parses and type-checks every non-test package of the module
// containing dir.
func LoadModule(dir string) (*Module, error) {
	root, modPath, err := findModuleRoot(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	l := &loader{
		root:    root,
		modPath: modPath,
		fset:    fset,
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    map[string]*Package{},
		loading: map[string]bool{},
	}
	if err := l.discover(); err != nil {
		return nil, err
	}
	paths := make([]string, 0, len(l.dirs))
	//csecg:orderok keys are sorted immediately below
	for ip := range l.dirs {
		paths = append(paths, ip)
	}
	sort.Strings(paths)
	mod := &Module{Root: root, Path: modPath, Fset: fset}
	for _, ip := range paths {
		pkg, err := l.load(ip)
		if err != nil {
			return nil, err
		}
		mod.Pkgs = append(mod.Pkgs, pkg)
	}
	return mod, nil
}

// LoadDir parses and type-checks a single directory as one package with
// the given import path, resolving only standard-library imports — the
// loader behind the analyzer golden tests.
func LoadDir(dir, importPath string) (*Package, *token.FileSet, error) {
	fset := token.NewFileSet()
	pkg, err := typeCheckDir(fset, dir, importPath, importer.ForCompiler(fset, "source", nil))
	if err != nil {
		return nil, nil, err
	}
	return pkg, fset, nil
}
