package analysis

import (
	"fmt"
	"go/token"
	"go/types"
)

// The transitive halves of nofpu and noalloc. The intraprocedural
// halves check only the body of a device function or //csecg:hotpath
// function; a hotpath that calls an unannotated helper which allocates
// — or a device function that calls into host-side float code through a
// clean integer signature — passes them silently. These module passes
// close that hole: they walk the call graph from every root and flag
// the first reachable offender, printing the full call chain.

// stdlibAllocating names standard-library functions known to allocate
// on every call — the ones that actually appear on embedded paths
// (error construction and string formatting). The list is deliberately
// small: it exists to catch error-path formatting inside hotpaths, not
// to model the whole standard library.
var stdlibAllocating = map[string]string{
	"fmt.Errorf":   "formats and allocates an error",
	"fmt.Sprintf":  "allocates the formatted string",
	"fmt.Sprint":   "allocates the formatted string",
	"fmt.Sprintln": "allocates the formatted string",
	"errors.New":   "allocates the error value",
	"strings.Join": "allocates the joined string",
	"bytes.Join":   "allocates the joined slice",
}

// isHotpath reports whether the node is opted into noalloc directly.
func isHotpath(n *FuncNode) bool {
	return n.Decl != nil && hasVerb(n.Decl.Doc, "hotpath")
}

// runNoAllocTransitive flags hotpath functions that reach an allocation
// through a callee the intraprocedural half never looks at. Callees
// that are themselves //csecg:hotpath are skipped (their bodies are
// checked directly, so the finding sits where the allocation is);
// //csecg:allocok on the call site waives the whole subtree behind it.
// Goroutine launches are not followed: the spawned body does not run on
// the synchronous hotpath (and the launch itself is already flagged).
func runNoAllocTransitive(p *ModulePass) {
	facts := map[*FuncNode]string{}
	allocDesc := func(n *FuncNode) string {
		if d, ok := facts[n]; ok {
			return d
		}
		d := ""
		switch {
		case isHotpath(n):
			// Checked intraprocedurally; a transitive report would
			// duplicate every finding one level up the chain.
		case n.InModule():
			forEachAllocSite(n.Pkg.Info, p.Dirs(n.Pkg), n.Decl.Body, func(pos token.Pos, form string) bool {
				d = fmt.Sprintf("%s (%s)", form, p.Fset.Position(pos))
				return false
			})
		default:
			d = stdlibAllocating[n.Fn.FullName()]
		}
		facts[n] = d
		return d
	}
	through := func(e *Edge) bool {
		if e.Go {
			return false
		}
		if d := p.NodeDirs(e.Caller); d != nil && d.covered("allocok", e.Pos) {
			return false
		}
		return true
	}
	for _, root := range p.Graph.Nodes() {
		if !isHotpath(root) || !root.InModule() {
			continue
		}
		path, desc := p.Graph.PathTo(root, allocDesc, through)
		if path == nil {
			continue
		}
		p.Report(path[0].Pos,
			fmt.Sprintf("hotpath %s reaches an allocation: %s — %s",
				root.ShortName(), FormatChain(root, path), desc),
			"make the callee allocation-free (annotate it //csecg:hotpath to pin that), or waive the call with //csecg:allocok")
	}
}

// runNoFPUTransitive flags non-host device functions that reach
// floating point through a callee with a clean integer signature — the
// direct float-signature call is already flagged intraprocedurally, so
// those edges are skipped rather than re-reported. A //csecg:host
// directive on the call site waives the subtree (the call is declared
// host-side modeling).
func runNoFPUTransitive(p *ModulePass) {
	isDeviceChecked := func(n *FuncNode) bool {
		// Device-package functions outside //csecg:host spans have their
		// whole bodies checked by the intraprocedural half.
		if !n.InModule() || !p.Config.isDevice(n.Pkg.ImportPath) {
			return false
		}
		return !p.Dirs(n.Pkg).covered("host", n.Decl.Pos())
	}
	facts := map[*FuncNode]string{}
	floatDesc := func(n *FuncNode) string {
		if d, ok := facts[n]; ok {
			return d
		}
		d := ""
		switch {
		case isDeviceChecked(n):
			// Its body is intraprocedurally float-free already.
		case n.InModule():
			if pos, desc, ok := floatUseIn(n.Pkg.Info, n.Decl.Body); ok {
				d = fmt.Sprintf("%s (%s)", desc, p.Fset.Position(pos))
			}
		default:
			if sig, ok := n.Fn.Type().(*types.Signature); ok && signatureHasFloat(sig) {
				d = "signature uses floating point"
			}
		}
		facts[n] = d
		return d
	}
	through := func(e *Edge) bool {
		if d := p.NodeDirs(e.Caller); d != nil && d.covered("host", e.Pos) {
			return false
		}
		// A float-signature callee called from intraprocedurally-checked
		// device code is already reported at this exact call site.
		if isDeviceChecked(e.Caller) {
			if sig, ok := e.Callee.Fn.Type().(*types.Signature); ok && signatureHasFloat(sig) {
				return false
			}
		}
		return true
	}
	for _, root := range p.Graph.Nodes() {
		if !isDeviceChecked(root) || root.Decl.Body == nil {
			continue
		}
		path, desc := p.Graph.PathTo(root, floatDesc, through)
		if path == nil {
			continue
		}
		p.Report(path[0].Pos,
			fmt.Sprintf("device function %s reaches floating point: %s — %s",
				root.ShortName(), FormatChain(root, path), desc),
			fpSuggestion)
	}
}
