package analysis

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/types"
)

// Budget sums the device-side memory ledgers declared with //csecg:ram,
// //csecg:flash and //csecg:codebookflash const markers and fails when a
// ledger exceeds its budget constant (RAMBudget, FlashBudget,
// CodebookFlashBudget) in the same package. The ledger mirrors the
// MSP430F1611 envelope the paper reports: 10 kB RAM / 48 kB flash total,
// with the measured firmware at 6.5 kB RAM / 7.5 kB flash and a ~1.5 kB
// Huffman codebook.
var Budget = &Analyzer{
	Name: "budget",
	Doc:  "sum //csecg:ram and //csecg:flash ledgers against their budget constants",
	Run:  runBudget,
}

// ledgerBudgets maps ledger verb -> (budget const name, ledger label).
var ledgerBudgets = []struct {
	verb, budgetConst, label string
}{
	{"ram", "RAMBudget", "RAM"},
	{"flash", "FlashBudget", "flash"},
	{"codebookflash", "CodebookFlashBudget", "codebook flash"},
}

func runBudget(pass *Pass) {
	if !pass.Config.isDevice(pass.Pkg.ImportPath) {
		return
	}
	info := pass.Pkg.Info
	scope := pass.Pkg.Types.Scope()

	// The codebook is stored in flash: its ledger counts against both the
	// codebook sub-budget and the overall flash budget.
	sums := map[string]int64{}
	firstSpec := map[string]*ast.ValueSpec{}
	addVerb := func(verb, into string) {
		for _, spec := range pass.Dirs.specs[verb] {
			if firstSpec[into] == nil {
				firstSpec[into] = spec
			}
			for _, name := range spec.Names {
				c, ok := info.Defs[name].(*types.Const)
				if !ok {
					pass.Report(name.Pos(), fmt.Sprintf("//csecg:%s marker on %q, which is not a constant", verb, name.Name),
						"budget ledger entries must be untyped integer constants")
					continue
				}
				v, exact := constant.Int64Val(c.Val())
				if c.Val().Kind() != constant.Int || !exact {
					pass.Report(name.Pos(), fmt.Sprintf("//csecg:%s marker on %q, which is not an integer constant", verb, name.Name),
						"budget ledger entries must be untyped integer constants")
					continue
				}
				sums[into] += v
			}
		}
	}
	addVerb("ram", "ram")
	addVerb("flash", "flash")
	addVerb("codebookflash", "flash")
	addVerb("codebookflash", "codebookflash")

	for _, lb := range ledgerBudgets {
		spec := firstSpec[lb.verb]
		if spec == nil {
			continue // no ledger of this kind in the package
		}
		obj := scope.Lookup(lb.budgetConst)
		c, ok := obj.(*types.Const)
		if !ok {
			pass.Report(spec.Pos(), fmt.Sprintf("package has a //csecg:%s ledger but no %s constant to check it against", lb.verb, lb.budgetConst),
				fmt.Sprintf("declare const %s in this package", lb.budgetConst))
			continue
		}
		budget, exact := constant.Int64Val(c.Val())
		if !exact {
			pass.Report(spec.Pos(), fmt.Sprintf("%s is not an integer constant", lb.budgetConst), "")
			continue
		}
		if sums[lb.verb] > budget {
			pass.Report(spec.Pos(), fmt.Sprintf("%s ledger totals %d bytes, exceeding %s = %d bytes by %d",
				lb.label, sums[lb.verb], lb.budgetConst, budget, sums[lb.verb]-budget),
				"shrink a buffer or raise the budget constant with justification from the datasheet")
		}
	}
}
