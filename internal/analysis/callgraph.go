package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"io"
	"sort"
	"strings"
)

// This file builds the module-wide call graph behind the v2 analyzers:
// transitive nofpu/noalloc, lockcheck, leakcheck and metriclint. The
// graph is intentionally simple — it resolves three kinds of edges and
// documents what it cannot see (DESIGN.md §12):
//
//   - static calls: plain function calls, qualified package calls, and
//     method calls on concrete receivers;
//   - interface dispatch: a call through an interface method fans out to
//     the matching method of every module type that satisfies the
//     interface (the satisfaction set), plus the abstract interface
//     method itself;
//   - function values: a call through a func-typed variable fans out to
//     every module function whose address is taken somewhere in the
//     module and whose signature is identical.
//
// Function literals are attributed to their enclosing declaration:
// a call inside a closure becomes an edge from the named function that
// lexically contains it. Reflection, unresolved function values and
// calls from package-level variable initializers are invisible.

// EdgeKind classifies how a call edge was resolved.
type EdgeKind uint8

// Edge kinds.
const (
	// EdgeStatic is a direct call to a known function or method.
	EdgeStatic EdgeKind = iota
	// EdgeInterface is a dispatch through an interface method: one edge
	// to the abstract method plus one per satisfying module type.
	EdgeInterface
	// EdgeFuncValue is a call through a func-typed value, resolved to
	// the address-taken functions with an identical signature.
	EdgeFuncValue
)

func (k EdgeKind) String() string {
	switch k {
	case EdgeInterface:
		return "interface"
	case EdgeFuncValue:
		return "funcvalue"
	default:
		return "static"
	}
}

// Edge is one resolved call site.
type Edge struct {
	Caller *FuncNode
	Callee *FuncNode
	// Pos is the call site within the caller's body.
	Pos token.Pos
	// Kind records how the callee was resolved.
	Kind EdgeKind
	// Go marks a `go` statement: the callee runs on a new goroutine.
	Go bool
}

// FuncNode is one function in the graph. Module functions carry their
// declaration and package; functions outside the module (standard
// library, abstract interface methods) are leaves with Decl == nil.
type FuncNode struct {
	Fn   *types.Func
	Decl *ast.FuncDecl // nil outside the module
	Pkg  *Package      // nil outside the module
	Out  []*Edge
}

// InModule reports whether the node's body is available for analysis.
func (n *FuncNode) InModule() bool { return n.Decl != nil && n.Decl.Body != nil }

// ShortName renders "pkg.(*Recv).Name" with the package base name.
func (n *FuncNode) ShortName() string { return shortFuncName(n.Fn) }

func shortFuncName(fn *types.Func) string {
	name := fn.Name()
	sig, _ := fn.Type().(*types.Signature)
	pkgBase := ""
	if fn.Pkg() != nil {
		p := fn.Pkg().Path()
		pkgBase = p[strings.LastIndex(p, "/")+1:] + "."
	}
	if sig != nil && sig.Recv() != nil {
		recv := sig.Recv().Type()
		ptr := ""
		if p, ok := recv.(*types.Pointer); ok {
			recv = p.Elem()
			ptr = "*"
		}
		switch r := recv.(type) {
		case *types.Named:
			return fmt.Sprintf("%s(%s%s).%s", pkgBase, ptr, r.Obj().Name(), name)
		case *types.Interface:
			return fmt.Sprintf("%s(interface).%s", pkgBase, name)
		}
	}
	return pkgBase + name
}

// CallGraph is the module-wide graph.
type CallGraph struct {
	Fset  *token.FileSet
	nodes map[*types.Func]*FuncNode
	// implCache memoizes interface-method satisfaction sets.
	implCache map[implKey][]*types.Func
	// allTypes lists every non-interface named type of the module, in
	// deterministic (type-string) order, for satisfaction scans.
	allTypes []*types.Named
	// addrTaken holds every function used as a value somewhere in the
	// module — the candidate targets of function-value calls.
	addrTaken map[*types.Func]bool
}

type implKey struct {
	iface *types.Interface
	name  string
}

// Node returns (creating on demand) the node for fn.
func (g *CallGraph) Node(fn *types.Func) *FuncNode {
	if n, ok := g.nodes[fn]; ok {
		return n
	}
	n := &FuncNode{Fn: fn}
	g.nodes[fn] = n
	return n
}

// Nodes returns every node sorted by name (module nodes first), for
// deterministic iteration.
func (g *CallGraph) Nodes() []*FuncNode {
	out := make([]*FuncNode, 0, len(g.nodes))
	//csecg:orderok nodes are sorted immediately below
	for _, n := range g.nodes {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool {
		if a, b := out[i].InModule(), out[j].InModule(); a != b {
			return a
		}
		return out[i].ShortName() < out[j].ShortName()
	})
	return out
}

// Lookup finds a node by its ShortName ("core.(*Encoder).EncodeWindow")
// or full go/types name; nil when absent.
func (g *CallGraph) Lookup(name string) *FuncNode {
	//csecg:orderok membership scan, first match returned deterministically by name equality
	for fn, n := range g.nodes {
		if shortFuncName(fn) == name || fn.FullName() == name {
			return n
		}
	}
	return nil
}

// EdgeBetween reports whether an edge caller→callee exists, by
// ShortName.
func (g *CallGraph) EdgeBetween(caller, callee string) bool {
	n := g.Lookup(caller)
	if n == nil {
		return false
	}
	for _, e := range n.Out {
		if e.Callee.ShortName() == callee {
			return true
		}
	}
	return false
}

// PathTo runs a breadth-first search from root and returns the shortest
// edge path to the first node for which offends returns a non-empty
// description (and that description), traversing only module-internal
// bodies. through filters edges (return false to skip a call site, e.g.
// one waived by a directive). Returns nil when nothing offending is
// reachable.
func (g *CallGraph) PathTo(root *FuncNode, offends func(*FuncNode) string, through func(*Edge) bool) ([]*Edge, string) {
	type item struct {
		node *FuncNode
		path []*Edge
	}
	seen := map[*FuncNode]bool{root: true}
	queue := []item{{node: root}}
	for len(queue) > 0 {
		it := queue[0]
		queue = queue[1:]
		for _, e := range it.node.Out {
			if through != nil && !through(e) {
				continue
			}
			next := e.Callee
			if seen[next] {
				continue
			}
			seen[next] = true
			path := append(append([]*Edge(nil), it.path...), e)
			if desc := offends(next); desc != "" {
				return path, desc
			}
			if next.InModule() {
				queue = append(queue, item{node: next, path: path})
			}
		}
	}
	return nil, ""
}

// FormatChain renders root and an edge path as "a → b → c".
func FormatChain(root *FuncNode, path []*Edge) string {
	var b strings.Builder
	b.WriteString(root.ShortName())
	for _, e := range path {
		b.WriteString(" → ")
		b.WriteString(e.Callee.ShortName())
		if e.Kind != EdgeStatic {
			fmt.Fprintf(&b, " (%s)", e.Kind)
		}
	}
	return b.String()
}

// WriteDOT dumps the graph in Graphviz DOT form: solid edges are static
// calls, dashed interface dispatch, dotted function-value resolution;
// bold edges mark `go` statements. Out-of-module leaves are drawn grey.
func (g *CallGraph) WriteDOT(w io.Writer) error {
	var b strings.Builder
	b.WriteString("digraph csecg {\n\trankdir=LR;\n\tnode [shape=box, fontsize=10];\n")
	for _, n := range g.Nodes() {
		if !n.InModule() && len(n.Out) == 0 {
			// Declared only as an edge target below.
			continue
		}
		attr := ""
		if !n.InModule() {
			attr = " [color=grey, fontcolor=grey]"
		}
		fmt.Fprintf(&b, "\t%q%s;\n", n.ShortName(), attr)
	}
	for _, n := range g.Nodes() {
		for _, e := range n.Out {
			var attrs []string
			switch e.Kind {
			case EdgeInterface:
				attrs = append(attrs, "style=dashed")
			case EdgeFuncValue:
				attrs = append(attrs, "style=dotted")
			}
			if e.Go {
				attrs = append(attrs, "penwidth=2")
			}
			if !e.Callee.InModule() {
				attrs = append(attrs, "color=grey")
			}
			suffix := ""
			if len(attrs) > 0 {
				suffix = " [" + strings.Join(attrs, ", ") + "]"
			}
			fmt.Fprintf(&b, "\t%q -> %q%s;\n", n.ShortName(), e.Callee.ShortName(), suffix)
		}
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// BuildCallGraph resolves the call graph of every package in mod.
func BuildCallGraph(mod *Module) *CallGraph {
	g := &CallGraph{
		Fset:      mod.Fset,
		nodes:     map[*types.Func]*FuncNode{},
		implCache: map[implKey][]*types.Func{},
		addrTaken: map[*types.Func]bool{},
	}
	g.collectTypes(mod)
	g.collectAddrTaken(mod)
	for _, pkg := range mod.Pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				node := g.Node(fn)
				node.Decl = fd
				node.Pkg = pkg
				if fd.Body != nil {
					g.walkBody(node, pkg)
				}
			}
		}
	}
	return g
}

// collectTypes gathers the module's concrete named types, sorted for
// deterministic satisfaction scans.
func (g *CallGraph) collectTypes(mod *Module) {
	for _, pkg := range mod.Pkgs {
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok {
				continue
			}
			if _, isIface := named.Underlying().(*types.Interface); isIface {
				continue
			}
			g.allTypes = append(g.allTypes, named)
		}
	}
	sort.Slice(g.allTypes, func(i, j int) bool {
		return g.allTypes[i].String() < g.allTypes[j].String()
	})
}

// collectAddrTaken records every named function referenced outside call
// position — the possible targets of a function-value call.
func (g *CallGraph) collectAddrTaken(mod *Module) {
	for _, pkg := range mod.Pkgs {
		info := pkg.Info
		// Idents appearing directly as a call's Fun (or its selector).
		callPos := map[*ast.Ident]bool{}
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				switch fun := unparen(call.Fun).(type) {
				case *ast.Ident:
					callPos[fun] = true
				case *ast.SelectorExpr:
					callPos[fun.Sel] = true
				}
				return true
			})
		}
		//csecg:orderok populates a set; membership is order-independent
		for id, obj := range info.Uses {
			fn, ok := obj.(*types.Func)
			if !ok || callPos[id] {
				continue
			}
			g.addrTaken[fn] = true
		}
	}
}

// walkBody resolves every call inside one declaration (closures
// included, attributed to the enclosing declaration).
func (g *CallGraph) walkBody(caller *FuncNode, pkg *Package) {
	info := pkg.Info
	var walk func(n ast.Node, inGo bool)
	walk = func(root ast.Node, inGo bool) {
		ast.Inspect(root, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				g.resolveCall(caller, pkg, n.Call, true)
				// Descend into the call's children manually so the call
				// itself is not resolved twice.
				for _, arg := range n.Call.Args {
					walk(arg, inGo)
				}
				if lit, ok := unparen(n.Call.Fun).(*ast.FuncLit); ok {
					walk(lit.Body, true)
				}
				return false
			case *ast.CallExpr:
				g.resolveCall(caller, pkg, n, inGo)
			}
			return true
		})
	}
	walk(caller.Decl.Body, false)
	_ = info
}

// resolveCall adds the edges for one call expression.
func (g *CallGraph) resolveCall(caller *FuncNode, pkg *Package, call *ast.CallExpr, isGo bool) {
	info := pkg.Info
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		return // conversion
	}
	addEdge := func(fn *types.Func, kind EdgeKind) {
		e := &Edge{Caller: caller, Callee: g.Node(fn), Pos: call.Pos(), Kind: kind, Go: isGo}
		caller.Out = append(caller.Out, e)
	}
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		switch obj := info.Uses[fun].(type) {
		case *types.Func:
			addEdge(obj, EdgeStatic)
			return
		case *types.Builtin, *types.TypeName, nil:
			return
		}
		// Func-typed variable: dynamic call.
		g.resolveFuncValue(caller, call, info)
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok && sel.Kind() == types.MethodVal {
			m, ok := sel.Obj().(*types.Func)
			if !ok {
				return
			}
			recvSig, _ := m.Type().(*types.Signature)
			if recvSig != nil && recvSig.Recv() != nil {
				if iface, ok := recvSig.Recv().Type().Underlying().(*types.Interface); ok {
					// Interface dispatch: abstract method plus the
					// satisfaction set.
					addEdge(m, EdgeInterface)
					for _, impl := range g.implementers(iface, m) {
						addEdge(impl, EdgeInterface)
					}
					return
				}
			}
			addEdge(m, EdgeStatic)
			return
		}
		if obj, ok := info.Uses[fun.Sel].(*types.Func); ok {
			addEdge(obj, EdgeStatic) // qualified package call
			return
		}
		// Func-typed field or variable reached through a selector.
		g.resolveFuncValue(caller, call, info)
	case *ast.FuncLit:
		// Immediately-invoked literal; body already attributed to caller.
	default:
		g.resolveFuncValue(caller, call, info)
	}
}

// resolveFuncValue links a dynamic call to every address-taken function
// with an identical signature.
func (g *CallGraph) resolveFuncValue(caller *FuncNode, call *ast.CallExpr, info *types.Info) {
	tv, ok := info.Types[call.Fun]
	if !ok || tv.Type == nil {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	var targets []*types.Func
	//csecg:orderok candidates are sorted immediately below
	for fn := range g.addrTaken {
		fnSig, ok := fn.Type().(*types.Signature)
		if !ok {
			continue
		}
		// Compare parameter/result tuples; a method value's signature
		// already excludes the receiver.
		if types.Identical(stripRecv(fnSig), stripRecv(sig)) {
			targets = append(targets, fn)
		}
	}
	sort.Slice(targets, func(i, j int) bool {
		return targets[i].FullName() < targets[j].FullName()
	})
	for _, fn := range targets {
		caller.Out = append(caller.Out, &Edge{Caller: caller, Callee: g.Node(fn), Pos: call.Pos(), Kind: EdgeFuncValue, Go: false})
	}
}

// stripRecv normalizes a signature to its parameter/result tuples.
func stripRecv(sig *types.Signature) *types.Signature {
	if sig.Recv() == nil {
		return sig
	}
	return types.NewSignatureType(nil, nil, nil, sig.Params(), sig.Results(), sig.Variadic())
}

// implementers returns the module methods satisfying iface's method m.
func (g *CallGraph) implementers(iface *types.Interface, m *types.Func) []*types.Func {
	key := implKey{iface: iface, name: m.Name()}
	if impls, ok := g.implCache[key]; ok {
		return impls
	}
	var impls []*types.Func
	for _, named := range g.allTypes {
		var recv types.Type
		switch {
		case types.Implements(named, iface):
			recv = named
		case types.Implements(types.NewPointer(named), iface):
			recv = types.NewPointer(named)
		default:
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(recv, true, m.Pkg(), m.Name())
		if fn, ok := obj.(*types.Func); ok {
			impls = append(impls, fn)
		}
	}
	g.implCache[key] = impls
	return impls
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}
