package linalg

import "math"

// Op is a linear operator presented as a pair of closures: Apply computes
// dst = A·x and ApplyT computes dst = Aᵀ·y. The CS reconstruction never
// materializes A = ΦΨ; both sensing and wavelet stages expose this
// interface instead (the paper's contribution (1): no large dense
// matrix operations at recovery).
type Op[T Float] struct {
	// InDim is the domain dimension (length of x in Apply).
	InDim int
	// OutDim is the range dimension (length of dst in Apply).
	OutDim int
	// Apply computes dst = A·x. len(x) == InDim, len(dst) == OutDim.
	Apply func(dst, x []T)
	// ApplyT computes dst = Aᵀ·y. len(y) == OutDim, len(dst) == InDim.
	ApplyT func(dst, y []T)
}

// PowerIterOpNorm estimates ‖A‖₂² = λ_max(AᵀA) by power iteration, which
// is the Lipschitz constant of ∇‖Ax−y‖₂² up to the factor 2. The
// iteration starts from a deterministic pseudo-random vector so the
// estimate (and therefore the whole reconstruction) is reproducible.
// iters around 30 gives 3 significant digits for the well-conditioned
// CS operators in this codebase.
func PowerIterOpNorm[T Float](a Op[T], iters int) T {
	if iters <= 0 {
		iters = 30
	}
	v := make([]T, a.InDim)
	// Deterministic start vector with sign flips to avoid being
	// orthogonal to the top eigenvector.
	state := uint64(0x1234_5678_9abc_def1)
	for i := range v {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		v[i] = T(int64(state%2001)-1000) / 1000
	}
	tmp := make([]T, a.OutDim)
	next := make([]T, a.InDim)
	var lambda T
	for k := 0; k < iters; k++ {
		a.Apply(tmp, v)
		a.ApplyT(next, tmp)
		lambda = Norm2(next)
		if lambda == 0 {
			return 0 // A maps the start vector to zero; treat as null operator
		}
		Scale(1/lambda, next)
		v, next = next, v
	}
	return lambda
}

// OpFromDense wraps a Dense matrix as an Op, for the Gaussian-sensing
// baseline and for tests that compare operator and matrix paths.
func OpFromDense[T Float](m *Dense[T]) Op[T] {
	return Op[T]{
		InDim:  m.Cols(),
		OutDim: m.Rows(),
		Apply:  func(dst, x []T) { m.MatVec(dst, x) },
		ApplyT: func(dst, y []T) { m.MatTVec(dst, y) },
	}
}

// Compose returns the operator (outer ∘ inner): x ↦ outer(inner(x)).
// The CS recovery operator is Compose(Φ, Ψ) with Ψ the inverse-wavelet
// synthesis operator.
func Compose[T Float](outer, inner Op[T]) Op[T] {
	if inner.OutDim != outer.InDim {
		panic("linalg: Compose dimension mismatch")
	}
	return Op[T]{
		InDim:  inner.InDim,
		OutDim: outer.OutDim,
		Apply: func(dst, x []T) {
			mid := make([]T, inner.OutDim)
			inner.Apply(mid, x)
			outer.Apply(dst, mid)
		},
		ApplyT: func(dst, y []T) {
			mid := make([]T, outer.InDim)
			outer.ApplyT(mid, y)
			inner.ApplyT(dst, mid)
		},
	}
}

// AdjointMismatch measures max |⟨A·x, y⟩ − ⟨x, Aᵀ·y⟩| over a few random
// probe pairs, normalized by the probe magnitudes. A correct adjoint
// pair returns a value at the level of floating-point round-off; solver
// construction asserts this in tests to catch transposition bugs.
func AdjointMismatch[T Float](a Op[T], probes int) float64 {
	if probes <= 0 {
		probes = 3
	}
	state := uint64(0xfeed_face_cafe_beef)
	randv := func(n int) []T {
		v := make([]T, n)
		for i := range v {
			state ^= state << 13
			state ^= state >> 7
			state ^= state << 17
			v[i] = T(int64(state%2001)-1000) / 1000
		}
		return v
	}
	var worst float64
	for p := 0; p < probes; p++ {
		x := randv(a.InDim)
		y := randv(a.OutDim)
		ax := make([]T, a.OutDim)
		aty := make([]T, a.InDim)
		a.Apply(ax, x)
		a.ApplyT(aty, y)
		lhs := float64(Dot(ax, y))
		rhs := float64(Dot(x, aty))
		scale := math.Max(math.Abs(lhs), math.Abs(rhs))
		if scale == 0 {
			scale = 1
		}
		if d := math.Abs(lhs-rhs) / scale; d > worst {
			worst = d
		}
	}
	return worst
}
