package linalg

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestDotBasic(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{4, 5, 6}
	if got := Dot(a, b); got != 32 {
		t.Errorf("Dot = %v, want 32", got)
	}
	if got := Dot([]float32{0.5, 0.5}, []float32{2, 2}); got != 2 {
		t.Errorf("Dot float32 = %v, want 2", got)
	}
}

func TestDot4MatchesDot(t *testing.T) {
	f := func(raw []float64) bool {
		a := make([]float64, len(raw))
		b := make([]float64, len(raw))
		for i, v := range raw {
			// Keep magnitudes sane so reassociation error stays tiny.
			a[i] = math.Mod(v, 100)
			b[i] = math.Mod(v*3.7, 100)
			if math.IsNaN(a[i]) || math.IsNaN(b[i]) {
				a[i], b[i] = 1, 1
			}
		}
		want := Dot(a, b)
		got := Dot4(a, b)
		return almostEq(got, want, 1e-6*(1+math.Abs(want)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDot4TailLengths(t *testing.T) {
	// Exercise every leftover count A ∈ {0,1,2,3} of Fig. 3.
	for n := 0; n <= 9; n++ {
		a := make([]float64, n)
		b := make([]float64, n)
		for i := range a {
			a[i] = float64(i + 1)
			b[i] = float64(2 * (i + 1))
		}
		if got, want := Dot4(a, b), Dot(a, b); got != want {
			t.Errorf("n=%d: Dot4 = %v, want %v", n, got, want)
		}
	}
}

func TestAxpyVariants(t *testing.T) {
	for n := 0; n <= 9; n++ {
		x := make([]float64, n)
		d1 := make([]float64, n)
		d2 := make([]float64, n)
		for i := range x {
			x[i] = float64(i) - 2.5
			d1[i] = float64(i) * 0.5
			d2[i] = d1[i]
		}
		Axpy(1.5, x, d1)
		Axpy4(1.5, x, d2)
		for i := range d1 {
			if d1[i] != d2[i] {
				t.Errorf("n=%d i=%d: Axpy=%v Axpy4=%v", n, i, d1[i], d2[i])
			}
		}
	}
}

func TestSoftThresholdCases(t *testing.T) {
	u := []float64{3, -3, 0.5, -0.5, 0, 1.0001, -1.0001}
	want := []float64{2, -2, 0, 0, 0, 0.0001, -0.0001}
	dst := make([]float64, len(u))
	SoftThreshold(dst, u, 1)
	for i := range want {
		if !almostEq(dst[i], want[i], 1e-12) {
			t.Errorf("SoftThreshold[%d] = %v, want %v", i, dst[i], want[i])
		}
	}
}

func TestSoftThreshold4MatchesScalar(t *testing.T) {
	f := func(raw []float64, tRaw float64) bool {
		t0 := math.Abs(math.Mod(tRaw, 5))
		u := make([]float64, len(raw))
		for i, v := range raw {
			u[i] = math.Mod(v, 10)
			if math.IsNaN(u[i]) {
				u[i] = 0
			}
		}
		d1 := make([]float64, len(u))
		d2 := make([]float64, len(u))
		SoftThreshold(d1, u, t0)
		SoftThreshold4(d2, u, t0)
		for i := range d1 {
			if !almostEq(d1[i], d2[i], 1e-12) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSoftThresholdShrinksTowardZero(t *testing.T) {
	// Property: |prox(u)| ≤ |u| and sign preserved (or zero).
	f := func(v, tRaw float64) bool {
		tt := math.Abs(math.Mod(tRaw, 3))
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return true
		}
		got := shrinkBranchless(v, tt)
		if math.Abs(got) > math.Abs(v)+1e-12 {
			return false
		}
		return got == 0 || (got > 0) == (v > 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNorms(t *testing.T) {
	x := []float64{3, -4}
	if got := Norm2(x); !almostEq(got, 5, 1e-12) {
		t.Errorf("Norm2 = %v, want 5", got)
	}
	if got := Norm1(x); got != 7 {
		t.Errorf("Norm1 = %v, want 7", got)
	}
	if got := NormInf(x); got != 4 {
		t.Errorf("NormInf = %v, want 4", got)
	}
	if got := Norm2([]float64{}); got != 0 {
		t.Errorf("Norm2(empty) = %v, want 0", got)
	}
}

func TestNorm2NoOverflowFloat32(t *testing.T) {
	x := []float32{3e19, 4e19}
	if got := Norm2(x); math.IsInf(float64(got), 0) {
		t.Error("Norm2 float32 overflowed; scaling missing")
	} else if !almostEq(float64(got), 5e19, 1e15) {
		t.Errorf("Norm2 = %v, want 5e19", got)
	}
}

func TestSubCombine(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5}
	b := []float64{5, 4, 3, 2, 1}
	dst := make([]float64, 5)
	Sub(dst, a, b)
	want := []float64{-4, -2, 0, 2, 4}
	for i := range want {
		if dst[i] != want[i] {
			t.Errorf("Sub[%d] = %v, want %v", i, dst[i], want[i])
		}
	}
	d4 := make([]float64, 5)
	Sub4(d4, a, b)
	for i := range want {
		if d4[i] != want[i] {
			t.Errorf("Sub4[%d] = %v, want %v", i, d4[i], want[i])
		}
	}
	// Combine4: dst = a + 0.5*(a−b)
	Combine4(dst, a, b, 0.5)
	for i := range a {
		w := a[i] + 0.5*(a[i]-b[i])
		if !almostEq(dst[i], w, 1e-12) {
			t.Errorf("Combine4[%d] = %v, want %v", i, dst[i], w)
		}
	}
}

func TestDenseMatVec(t *testing.T) {
	m := NewDense[float64](2, 3)
	// [1 2 3; 4 5 6]
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			m.Set(i, j, float64(i*3+j+1))
		}
	}
	dst := make([]float64, 2)
	m.MatVec(dst, []float64{1, 1, 1})
	if dst[0] != 6 || dst[1] != 15 {
		t.Errorf("MatVec = %v, want [6 15]", dst)
	}
	dt := make([]float64, 3)
	m.MatTVec(dt, []float64{1, 1})
	if dt[0] != 5 || dt[1] != 7 || dt[2] != 9 {
		t.Errorf("MatTVec = %v, want [5 7 9]", dt)
	}
}

func TestDensePanics(t *testing.T) {
	m := NewDense[float64](2, 3)
	for _, fn := range []func(){
		func() { m.MatVec(make([]float64, 2), make([]float64, 2)) },
		func() { m.MatTVec(make([]float64, 3), make([]float64, 3)) },
		func() { NewDense[float64](0, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic on dimension error")
				}
			}()
			fn()
		}()
	}
}

func TestPowerIterKnownMatrix(t *testing.T) {
	// diag(3, 1): top singular value 3, so ‖A‖₂² estimate... PowerIterOpNorm
	// returns λ_max(AᵀA) = 9.
	m := NewDense[float64](2, 2)
	m.Set(0, 0, 3)
	m.Set(1, 1, 1)
	got := PowerIterOpNorm(OpFromDense(m), 50)
	if !almostEq(got, 9, 1e-6) {
		t.Errorf("PowerIterOpNorm = %v, want 9", got)
	}
}

func TestPowerIterAtLeastGramDiag(t *testing.T) {
	m := NewDense[float64](20, 30)
	state := uint64(99)
	for i := 0; i < 20; i++ {
		for j := 0; j < 30; j++ {
			state ^= state << 13
			state ^= state >> 7
			state ^= state << 17
			m.Set(i, j, float64(int64(state%2001)-1000)/1000)
		}
	}
	lam := PowerIterOpNorm(OpFromDense(m), 100)
	if lam < m.GramDiagMax()-1e-9 {
		t.Errorf("operator norm %v below Gram diagonal bound %v", lam, m.GramDiagMax())
	}
}

func TestAdjointMismatchDetectsBug(t *testing.T) {
	m := NewDense[float64](4, 6)
	for i := 0; i < 4; i++ {
		for j := 0; j < 6; j++ {
			m.Set(i, j, float64(i+j)+0.5)
		}
	}
	good := OpFromDense(m)
	if mm := AdjointMismatch(good, 4); mm > 1e-10 {
		t.Errorf("correct adjoint reported mismatch %v", mm)
	}
	// Break the adjoint: scale it by 2.
	bad := good
	bad.ApplyT = func(dst, y []T64) {
		m.MatTVec(dst, y)
		Scale(2, dst)
	}
	if mm := AdjointMismatch(bad, 4); mm < 0.1 {
		t.Errorf("broken adjoint reported mismatch %v, want large", mm)
	}
}

// T64 aliases float64 for the closure above.
type T64 = float64

func TestCompose(t *testing.T) {
	// outer = [[2,0],[0,3]], inner = [[1,1],[1,-1]] (2x2 each)
	outer := NewDense[float64](2, 2)
	outer.Set(0, 0, 2)
	outer.Set(1, 1, 3)
	inner := NewDense[float64](2, 2)
	inner.Set(0, 0, 1)
	inner.Set(0, 1, 1)
	inner.Set(1, 0, 1)
	inner.Set(1, 1, -1)
	comp := Compose(OpFromDense(outer), OpFromDense(inner))
	dst := make([]float64, 2)
	comp.Apply(dst, []float64{1, 2})
	// inner*[1,2] = [3,-1]; outer*[3,-1] = [6,-3]
	if dst[0] != 6 || dst[1] != -3 {
		t.Errorf("Compose Apply = %v, want [6 -3]", dst)
	}
	if mm := AdjointMismatch(comp, 3); mm > 1e-10 {
		t.Errorf("Compose adjoint mismatch %v", mm)
	}
}

func TestMaxAbsDiff(t *testing.T) {
	if got := MaxAbsDiff([]float64{1, 2}, []float64{1.5, 1}); got != 1 {
		t.Errorf("MaxAbsDiff = %v, want 1", got)
	}
}

func TestFillAndCopyInto(t *testing.T) {
	d := make([]float64, 4)
	Fill(d, 7)
	for _, v := range d {
		if v != 7 {
			t.Fatal("Fill failed")
		}
	}
	s := []float64{1, 2, 3, 4}
	CopyInto(d, s)
	if d[3] != 4 {
		t.Fatal("CopyInto failed")
	}
}

// Benchmarks backing the Figs. 3-5 vectorization study: scalar vs 4-wide
// unrolled kernels at the solver's working sizes (N=512 coefficients,
// M=256 measurements).

func benchVecs(n int) ([]float32, []float32, []float32) {
	a := make([]float32, n)
	b := make([]float32, n)
	c := make([]float32, n)
	for i := range a {
		a[i] = float32(i%17) - 8
		b[i] = float32(i%23) - 11
	}
	return a, b, c
}

func BenchmarkKernelScalarDot512(b *testing.B) {
	x, y, _ := benchVecs(512)
	var s float32
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s += Dot(x, y)
	}
	_ = s
}

func BenchmarkKernelUnrolledDot512(b *testing.B) {
	x, y, _ := benchVecs(512)
	var s float32
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s += Dot4(x, y)
	}
	_ = s
}

func BenchmarkKernelScalarSoftThresh512(b *testing.B) {
	x, _, dst := benchVecs(512)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SoftThreshold(dst, x, 2)
	}
}

func BenchmarkKernelUnrolledSoftThresh512(b *testing.B) {
	x, _, dst := benchVecs(512)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SoftThreshold4(dst, x, 2)
	}
}

func BenchmarkKernelScalarAxpy512(b *testing.B) {
	x, _, dst := benchVecs(512)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Axpy(1.001, x, dst)
	}
}

func BenchmarkKernelUnrolledAxpy512(b *testing.B) {
	x, _, dst := benchVecs(512)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Axpy4(1.001, x, dst)
	}
}

func BenchmarkDenseMatVec256x512(b *testing.B) {
	m := NewDense[float32](256, 512)
	for i := 0; i < 256; i++ {
		for j := 0; j < 512; j++ {
			m.Set(i, j, float32((i*j)%7)-3)
		}
	}
	x := make([]float32, 512)
	dst := make([]float32, 256)
	for i := range x {
		x[i] = float32(i % 5)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.MatVec(dst, x)
	}
}
