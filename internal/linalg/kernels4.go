package linalg

// 4-wide unrolled, branch-free kernel variants.
//
// These reproduce the three vectorization techniques of Section IV-B of
// the paper on the reconstruction hot loops:
//
//   - single-loop vectorization with loop peeling for the leftover
//     elements (Fig. 3): the main loop advances four lanes at a time and
//     a scalar epilogue handles the n mod 4 tail;
//   - if-conversion for the soft-threshold sign selection (Fig. 4): the
//     comparison results are used as arithmetic values instead of
//     branches, so all four lanes follow the same instruction stream;
//   - outer-loop vectorization of two-level filter loops (Fig. 5),
//     implemented in internal/wavelet on top of Dot4.
//
// The shapes here intentionally match what a NEON (or SSE) build would
// emit; internal/coordinator charges them NEON cycle costs when modeling
// the iPhone decode time.

// Dot4 is the 4-wide unrolled inner product with four independent
// accumulators, summed once at the end. It computes the same value as
// Dot up to floating-point reassociation.
func Dot4[T Float](a, b []T) T {
	if len(a) != len(b) {
		panic("linalg: Dot4 length mismatch")
	}
	var s0, s1, s2, s3 T
	n4 := len(a) &^ 3
	for i := 0; i < n4; i += 4 {
		s0 += a[i] * b[i]
		s1 += a[i+1] * b[i+1]
		s2 += a[i+2] * b[i+2]
		s3 += a[i+3] * b[i+3]
	}
	s := (s0 + s1) + (s2 + s3)
	for i := n4; i < len(a); i++ { // peeled tail
		s += a[i] * b[i]
	}
	return s
}

// Axpy4 is the 4-wide unrolled dst += alpha*x.
func Axpy4[T Float](alpha T, x, dst []T) {
	if len(x) != len(dst) {
		panic("linalg: Axpy4 length mismatch")
	}
	n4 := len(x) &^ 3
	for i := 0; i < n4; i += 4 {
		dst[i] += alpha * x[i]
		dst[i+1] += alpha * x[i+1]
		dst[i+2] += alpha * x[i+2]
		dst[i+3] += alpha * x[i+3]
	}
	for i := n4; i < len(x); i++ {
		dst[i] += alpha * x[i]
	}
}

// SoftThreshold4 is the branch-free 4-wide shrinkage operator. Following
// the paper's if-conversion (Fig. 4), the magnitude is shrunk with a
// boolean-as-value multiply and the sign of the input is re-applied by
// selecting between +1 and −1 comparisons, so the loop body contains no
// data-dependent branch.
func SoftThreshold4[T Float](dst, u []T, t T) {
	if len(dst) != len(u) {
		panic("linalg: SoftThreshold4 length mismatch")
	}
	n4 := len(u) &^ 3
	for i := 0; i < n4; i += 4 {
		dst[i] = shrinkBranchless(u[i], t)
		dst[i+1] = shrinkBranchless(u[i+1], t)
		dst[i+2] = shrinkBranchless(u[i+2], t)
		dst[i+3] = shrinkBranchless(u[i+3], t)
	}
	for i := n4; i < len(u); i++ {
		dst[i] = shrinkBranchless(u[i], t)
	}
}

// shrinkBranchless computes sign(v)·max(|v|−t, 0) without branches:
// comparisons become 0/1 values exactly as in the paper's NEON
// implementation (vcgt + vbsl), which the Go compiler lowers to
// conditional moves.
func shrinkBranchless[T Float](v, t T) T {
	av := v
	if av < 0 { // |v|: compiles to ANDPS/conditional move, no branch needed
		av = -v
	}
	m := av - t
	pos := T(0)
	if m > 0 {
		pos = 1
	}
	m *= pos // max(|v|−t, 0) via boolean-as-value multiply
	sgn := T(0)
	if v > 0 {
		sgn = 1
	}
	if v < 0 {
		sgn = -1
	}
	return m * sgn
}

// Sub4 is the 4-wide unrolled dst = a − b.
func Sub4[T Float](dst, a, b []T) {
	if len(a) != len(b) || len(dst) != len(a) {
		panic("linalg: Sub4 length mismatch")
	}
	n4 := len(a) &^ 3
	for i := 0; i < n4; i += 4 {
		dst[i] = a[i] - b[i]
		dst[i+1] = a[i+1] - b[i+1]
		dst[i+2] = a[i+2] - b[i+2]
		dst[i+3] = a[i+3] - b[i+3]
	}
	for i := n4; i < len(a); i++ {
		dst[i] = a[i] - b[i]
	}
}

// Combine4 computes dst = a + beta*(a − b), the FISTA momentum update
// (Eq. 6 of the paper), fused into a single pass and unrolled 4-wide.
func Combine4[T Float](dst, a, b []T, beta T) {
	if len(a) != len(b) || len(dst) != len(a) {
		panic("linalg: Combine4 length mismatch")
	}
	n4 := len(a) &^ 3
	for i := 0; i < n4; i += 4 {
		dst[i] = a[i] + beta*(a[i]-b[i])
		dst[i+1] = a[i+1] + beta*(a[i+1]-b[i+1])
		dst[i+2] = a[i+2] + beta*(a[i+2]-b[i+2])
		dst[i+3] = a[i+3] + beta*(a[i+3]-b[i+3])
	}
	for i := n4; i < len(a); i++ {
		dst[i] = a[i] + beta*(a[i]-b[i])
	}
}
