package linalg

// Dense is a row-major dense matrix. The CS pipeline only needs it for
// the Gaussian/Bernoulli sensing baselines (the sparse binary path never
// materializes a matrix), so the API is deliberately small: construction,
// element access and the two matrix-vector products the solver needs.
type Dense[T Float] struct {
	rows, cols int
	data       []T
}

// NewDense allocates a rows×cols zero matrix. It panics if either
// dimension is not positive.
func NewDense[T Float](rows, cols int) *Dense[T] {
	if rows <= 0 || cols <= 0 {
		panic("linalg: NewDense with non-positive dimension")
	}
	return &Dense[T]{rows: rows, cols: cols, data: make([]T, rows*cols)}
}

// Rows returns the number of rows.
func (m *Dense[T]) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Dense[T]) Cols() int { return m.cols }

// At returns the element at (i, j).
func (m *Dense[T]) At(i, j int) T { return m.data[i*m.cols+j] }

// Set assigns the element at (i, j).
func (m *Dense[T]) Set(i, j int, v T) { m.data[i*m.cols+j] = v }

// Row returns a view of row i; mutations through the returned slice
// mutate the matrix.
func (m *Dense[T]) Row(i int) []T { return m.data[i*m.cols : (i+1)*m.cols] }

// MatVec computes dst = M·x. It panics on dimension mismatch.
func (m *Dense[T]) MatVec(dst, x []T) {
	if len(x) != m.cols || len(dst) != m.rows {
		panic("linalg: MatVec dimension mismatch")
	}
	for i := 0; i < m.rows; i++ {
		dst[i] = Dot4(m.Row(i), x)
	}
}

// MatTVec computes dst = Mᵀ·x. It panics on dimension mismatch.
func (m *Dense[T]) MatTVec(dst, x []T) {
	if len(x) != m.rows || len(dst) != m.cols {
		panic("linalg: MatTVec dimension mismatch")
	}
	Fill(dst, 0)
	for i := 0; i < m.rows; i++ {
		Axpy4(x[i], m.Row(i), dst)
	}
}

// GramDiagMax returns max_j (MᵀM)_{jj} = max column squared norm, a cheap
// lower bound on the operator norm used to sanity-check the power-
// iteration result in tests.
func (m *Dense[T]) GramDiagMax() T {
	var best T
	for j := 0; j < m.cols; j++ {
		var s T
		for i := 0; i < m.rows; i++ {
			v := m.At(i, j)
			s += v * v
		}
		if s > best {
			best = s
		}
	}
	return best
}
