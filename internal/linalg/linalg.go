// Package linalg provides the small dense linear-algebra kernels the CS
// reconstruction uses: vector arithmetic, dense matrix-vector products
// for the Gaussian sensing baseline, and operator-norm estimation.
//
// Every hot kernel exists in two variants, mirroring the paper's ARM
// port:
//
//   - a scalar reference version (the "VFP" path, plain loops with
//     branches), and
//   - a 4-wide unrolled, branch-free version (the "NEON" path) using the
//     same loop-peeling and if-conversion transformations described in
//     Section IV-B of the paper (Figs. 3-5).
//
// On amd64 the unrolled versions give the Go compiler straight-line code
// it can schedule well; the point of keeping both is (a) the micro-
// benchmarks that reproduce the paper's vectorization study and (b) the
// cycle-cost model in internal/coordinator, which charges VFP costs to
// the scalar shapes and NEON costs to the 4-wide shapes.
//
// All kernels are generic over float32 and float64 so the same solver
// code instantiates as the paper's "iPhone (32-bit)" and "Matlab
// (64-bit)" configurations.
package linalg

import "math"

// Float is the constraint shared by all numeric kernels in this module.
type Float interface {
	~float32 | ~float64
}

// Dot returns the inner product of a and b. It panics if the lengths
// differ.
func Dot[T Float](a, b []T) T {
	if len(a) != len(b) {
		panic("linalg: Dot length mismatch")
	}
	var s T
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Axpy computes dst[i] += alpha*x[i]. It panics if the lengths differ.
func Axpy[T Float](alpha T, x, dst []T) {
	if len(x) != len(dst) {
		panic("linalg: Axpy length mismatch")
	}
	for i := range x {
		dst[i] += alpha * x[i]
	}
}

// Scale multiplies every element of dst by alpha.
func Scale[T Float](alpha T, dst []T) {
	for i := range dst {
		dst[i] *= alpha
	}
}

// Add stores a+b into dst. All three slices must have equal length.
func Add[T Float](dst, a, b []T) {
	if len(a) != len(b) || len(dst) != len(a) {
		panic("linalg: Add length mismatch")
	}
	for i := range dst {
		dst[i] = a[i] + b[i]
	}
}

// Sub stores a−b into dst. All three slices must have equal length.
func Sub[T Float](dst, a, b []T) {
	if len(a) != len(b) || len(dst) != len(a) {
		panic("linalg: Sub length mismatch")
	}
	for i := range dst {
		dst[i] = a[i] - b[i]
	}
}

// Norm2 returns the Euclidean norm of x, with scaling to avoid overflow
// for float32 inputs.
func Norm2[T Float](x []T) T {
	var maxAbs T
	for _, v := range x {
		if v < 0 {
			v = -v
		}
		if v > maxAbs {
			maxAbs = v
		}
	}
	if maxAbs == 0 {
		return 0
	}
	var s T
	for _, v := range x {
		r := v / maxAbs
		s += r * r
	}
	return maxAbs * T(math.Sqrt(float64(s)))
}

// Norm1 returns the sum of absolute values of x.
func Norm1[T Float](x []T) T {
	var s T
	for _, v := range x {
		if v < 0 {
			v = -v
		}
		s += v
	}
	return s
}

// NormInf returns the maximum absolute value of x.
func NormInf[T Float](x []T) T {
	var m T
	for _, v := range x {
		if v < 0 {
			v = -v
		}
		if v > m {
			m = v
		}
	}
	return m
}

// SoftThreshold applies the scalar shrinkage operator
// y[i] = sign(u[i])·max(|u[i]|−t, 0), the prox of t·‖·‖₁. This is the
// branchy reference version the paper's Section IV-B.2a starts from.
func SoftThreshold[T Float](dst, u []T, t T) {
	if len(dst) != len(u) {
		panic("linalg: SoftThreshold length mismatch")
	}
	for i, v := range u {
		switch {
		case v > t:
			dst[i] = v - t
		case v < -t:
			dst[i] = v + t
		default:
			dst[i] = 0
		}
	}
}

// CopyInto copies src into dst, panicking on length mismatch. A thin
// wrapper over copy that catches silent truncation bugs in solver code.
func CopyInto[T Float](dst, src []T) {
	if len(dst) != len(src) {
		panic("linalg: CopyInto length mismatch")
	}
	copy(dst, src)
}

// Fill sets every element of dst to v.
func Fill[T Float](dst []T, v T) {
	for i := range dst {
		dst[i] = v
	}
}

// MaxAbsDiff returns max_i |a[i]−b[i]|, used for convergence checks and
// test assertions.
func MaxAbsDiff[T Float](a, b []T) T {
	if len(a) != len(b) {
		panic("linalg: MaxAbsDiff length mismatch")
	}
	var m T
	for i := range a {
		d := a[i] - b[i]
		if d < 0 {
			d = -d
		}
		if d > m {
			m = d
		}
	}
	return m
}
