// Package ecg synthesizes the evaluation data set: a deterministic
// substitute for the MIT-BIH Arrhythmia Database.
//
// The real database (48 half-hour two-channel ambulatory records, 360 Hz,
// 11-bit over 10 mV) cannot be redistributed or fetched in this offline
// build, so this package generates records with the same format and the
// two properties the CS pipeline actually exploits:
//
//   - wavelet-domain sparsity: each beat is a sum of narrow Gaussian
//     waves (the McSharry/ECGSYN morphology model), giving the compact
//     PQRST support that makes α sparse, and
//   - quasi-periodicity: consecutive 2-second windows look alike, which
//     drives the inter-packet redundancy removal stage.
//
// Records include beat-to-beat variability, respiration coupling,
// baseline wander, muscle noise, powerline interference, and arrhythmia
// (PVCs, APCs, dropped beats) with MIT-BIH-style prevalence: the
// 100-series records are mostly normal sinus rhythm, the 200-series are
// ectopy-rich. Every record is reproducible from its ID.
package ecg

import "math"

// BeatType labels a synthesized beat, mirroring MIT-BIH annotation codes.
type BeatType int

// Beat classes produced by the generator.
const (
	Normal  BeatType = iota // N: normal sinus beat
	PVC                     // V: premature ventricular contraction
	APC                     // A: atrial premature beat
	Dropped                 // missed beat (sinus pause)
)

// String returns the MIT-BIH-style annotation symbol.
func (b BeatType) String() string {
	switch b {
	case Normal:
		return "N"
	case PVC:
		return "V"
	case APC:
		return "A"
	case Dropped:
		return "-"
	default:
		return "?"
	}
}

// wave is one Gaussian component of the beat morphology: an amplitude
// (mV), a phase center within the beat cycle [0, 2π), and a width in
// phase radians.
type wave struct {
	amp   float64
	theta float64
	width float64
}

// morphology is the sum-of-Gaussians PQRST template of one beat class on
// one lead.
type morphology []wave

// value evaluates the template at beat phase p ∈ (−∞, ∞); contributions
// decay smoothly outside [0, 2π), which lets adjacent beats overlap
// (P-on-T at high rates) exactly as in the continuous ECGSYN model.
func (m morphology) value(p float64) float64 {
	var v float64
	for _, w := range m {
		d := p - w.theta
		v += w.amp * math.Exp(-d*d/(2*w.width*w.width))
	}
	return v
}

// Morphology templates. Phases place P at ~0.35π, QRS around π, T at
// ~1.55π, so a beat occupies one 2π cycle with R at its center. Lead 1
// approximates MLII (the primary MIT-BIH lead); lead 2 approximates V1
// with its characteristic lower R and inverted-ish complexes.
var (
	normalLead1 = morphology{
		{amp: 0.15, theta: 0.35 * math.Pi, width: 0.09 * math.Pi}, // P
		{amp: -0.12, theta: 0.92 * math.Pi, width: 0.025 * math.Pi},
		{amp: 1.20, theta: 1.00 * math.Pi, width: 0.028 * math.Pi}, // R
		{amp: -0.25, theta: 1.08 * math.Pi, width: 0.025 * math.Pi},
		{amp: 0.31, theta: 1.55 * math.Pi, width: 0.14 * math.Pi}, // T
	}
	normalLead2 = morphology{
		{amp: 0.08, theta: 0.35 * math.Pi, width: 0.09 * math.Pi},
		{amp: -0.35, theta: 0.95 * math.Pi, width: 0.03 * math.Pi},
		{amp: 0.45, theta: 1.02 * math.Pi, width: 0.03 * math.Pi},
		{amp: -0.10, theta: 1.10 * math.Pi, width: 0.03 * math.Pi},
		{amp: 0.12, theta: 1.55 * math.Pi, width: 0.15 * math.Pi},
	}
	// PVC: no P wave, wide bizarre QRS, discordant (inverted) T.
	pvcLead1 = morphology{
		{amp: -0.30, theta: 0.88 * math.Pi, width: 0.07 * math.Pi},
		{amp: 1.55, theta: 1.02 * math.Pi, width: 0.09 * math.Pi},
		{amp: -0.45, theta: 1.20 * math.Pi, width: 0.08 * math.Pi},
		{amp: -0.40, theta: 1.62 * math.Pi, width: 0.16 * math.Pi},
	}
	pvcLead2 = morphology{
		{amp: 0.25, theta: 0.90 * math.Pi, width: 0.08 * math.Pi},
		{amp: -1.05, theta: 1.03 * math.Pi, width: 0.10 * math.Pi},
		{amp: 0.35, theta: 1.22 * math.Pi, width: 0.08 * math.Pi},
		{amp: 0.28, theta: 1.62 * math.Pi, width: 0.16 * math.Pi},
	}
	// AF-conducted beats: the normal complexes without their P wave.
	normalLead1NoP = normalLead1[1:]
	normalLead2NoP = normalLead2[1:]
	// APC: early beat, flattened ectopic P, otherwise near-normal QRS.
	apcLead1 = morphology{
		{amp: 0.08, theta: 0.30 * math.Pi, width: 0.12 * math.Pi},
		{amp: -0.11, theta: 0.92 * math.Pi, width: 0.025 * math.Pi},
		{amp: 1.05, theta: 1.00 * math.Pi, width: 0.028 * math.Pi},
		{amp: -0.22, theta: 1.08 * math.Pi, width: 0.025 * math.Pi},
		{amp: 0.27, theta: 1.55 * math.Pi, width: 0.14 * math.Pi},
	}
	apcLead2 = morphology{
		{amp: 0.05, theta: 0.30 * math.Pi, width: 0.12 * math.Pi},
		{amp: -0.32, theta: 0.95 * math.Pi, width: 0.03 * math.Pi},
		{amp: 0.40, theta: 1.02 * math.Pi, width: 0.03 * math.Pi},
		{amp: -0.09, theta: 1.10 * math.Pi, width: 0.03 * math.Pi},
		{amp: 0.11, theta: 1.55 * math.Pi, width: 0.15 * math.Pi},
	}
)

// templateFor returns the two-lead morphology of a beat class.
func templateFor(bt BeatType) (lead1, lead2 morphology) {
	switch bt {
	case PVC:
		return pvcLead1, pvcLead2
	case APC:
		return apcLead1, apcLead2
	default:
		return normalLead1, normalLead2
	}
}
