package ecg

import (
	"math"
	"testing"

	"csecg/internal/linalg"
	"csecg/internal/wavelet"
)

func defaultCfg() Config {
	return Config{
		HeartRateBPM:     75,
		HRVariability:    0.05,
		RespRateHz:       0.25,
		AmplitudeScale:   1,
		BaselineWanderMV: 0.05,
		MuscleNoiseMV:    0.02,
		PowerlineMV:      0.004,
		PowerlineHz:      60,
		Seed:             1,
	}
}

func TestGenerateBasicShape(t *testing.T) {
	sig, err := Generate(defaultCfg(), 10)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(sig.MV[0]); got != 3600 {
		t.Fatalf("channel 0 length %d, want 3600", got)
	}
	if got := len(sig.MV[1]); got != 3600 {
		t.Fatalf("channel 1 length %d, want 3600", got)
	}
	if d := sig.Duration(); math.Abs(d-10) > 1e-9 {
		t.Errorf("Duration = %v", d)
	}
	// ~75 bpm for 10 s ⇒ ~12-13 beats.
	if n := len(sig.Ann); n < 9 || n > 16 {
		t.Errorf("annotation count %d, want ≈12", n)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, _ := Generate(defaultCfg(), 5)
	b, _ := Generate(defaultCfg(), 5)
	for i := range a.MV[0] {
		if a.MV[0][i] != b.MV[0][i] {
			t.Fatalf("same seed diverged at sample %d", i)
		}
	}
	cfg := defaultCfg()
	cfg.Seed = 2
	c, _ := Generate(cfg, 5)
	same := true
	for i := range a.MV[0] {
		if a.MV[0][i] != c.MV[0][i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical signal")
	}
}

func TestGenerateValidation(t *testing.T) {
	bad := defaultCfg()
	bad.HeartRateBPM = 10
	if _, err := Generate(bad, 5); err == nil {
		t.Error("expected error: heart rate too low")
	}
	bad = defaultCfg()
	bad.AmplitudeScale = 0
	if _, err := Generate(bad, 5); err == nil {
		t.Error("expected error: zero amplitude")
	}
	bad = defaultCfg()
	bad.PVCProb = 0.5
	bad.APCProb = 0.5
	if _, err := Generate(bad, 5); err == nil {
		t.Error("expected error: probabilities too high")
	}
	if _, err := Generate(defaultCfg(), 0); err == nil {
		t.Error("expected error: zero duration")
	}
}

func TestRPeaksNearAnnotations(t *testing.T) {
	cfg := defaultCfg()
	cfg.BaselineWanderMV = 0
	cfg.MuscleNoiseMV = 0
	cfg.PowerlineMV = 0
	sig, err := Generate(cfg, 20)
	if err != nil {
		t.Fatal(err)
	}
	for _, ann := range sig.Ann {
		if ann.Type != Normal {
			continue
		}
		// The true local max within ±40 ms must sit within one sample of
		// the annotation (phase quantization allows ±1) and be near the
		// nominal 1.2 mV R amplitude.
		v := sig.MV[0][ann.Sample]
		if v < 0.8 {
			t.Errorf("R at %v: amplitude %v too low", ann.Time, v)
		}
		lo, hi := ann.Sample-14, ann.Sample+14
		if lo < 0 || hi >= len(sig.MV[0]) {
			continue
		}
		argmax := lo
		for i := lo; i <= hi; i++ {
			if sig.MV[0][i] > sig.MV[0][argmax] {
				argmax = i
			}
		}
		if d := argmax - ann.Sample; d < -1 || d > 1 {
			t.Errorf("R annotation at %d but local max at %d", ann.Sample, argmax)
		}
	}
}

func TestHeartRateControlsBeatCount(t *testing.T) {
	for _, hr := range []float64{50, 75, 120} {
		cfg := defaultCfg()
		cfg.HeartRateBPM = hr
		cfg.HRVariability = 0.01
		sig, err := Generate(cfg, 60)
		if err != nil {
			t.Fatal(err)
		}
		want := hr
		got := float64(len(sig.Ann))
		if math.Abs(got-want) > want*0.08 {
			t.Errorf("hr %v: %v beats in 60 s, want ≈%v", hr, got, want)
		}
	}
}

func TestPVCInjection(t *testing.T) {
	cfg := defaultCfg()
	cfg.PVCProb = 0.2
	sig, err := Generate(cfg, 120)
	if err != nil {
		t.Fatal(err)
	}
	pvcs := 0
	for _, a := range sig.Ann {
		if a.Type == PVC {
			pvcs++
		}
	}
	frac := float64(pvcs) / float64(len(sig.Ann))
	if frac < 0.08 || frac > 0.40 {
		t.Errorf("PVC fraction %v, want ≈0.2", frac)
	}
}

func TestDroppedBeatsCreatePauses(t *testing.T) {
	cfg := defaultCfg()
	cfg.DropProb = 0.15
	cfg.HRVariability = 0.02
	sig, err := Generate(cfg, 120)
	if err != nil {
		t.Fatal(err)
	}
	meanRR := 60 / cfg.HeartRateBPM
	pauses := 0
	for i := 1; i < len(sig.Ann); i++ {
		if sig.Ann[i].Time-sig.Ann[i-1].Time > 1.7*meanRR {
			pauses++
		}
	}
	if pauses == 0 {
		t.Error("no pauses found despite 15% drop probability")
	}
}

func TestQuasiPeriodicity(t *testing.T) {
	// Beat-aligned correlation: 0.5 s windows centered on consecutive
	// normal R peaks must be nearly identical — the redundancy the
	// encoder's difference stage exploits.
	cfg := defaultCfg()
	cfg.MuscleNoiseMV = 0
	cfg.BaselineWanderMV = 0
	sig, err := Generate(cfg, 30)
	if err != nil {
		t.Fatal(err)
	}
	half := int(0.25 * FsMITBIH)
	x := sig.MV[0]
	var corrs []float64
	for i := 1; i < len(sig.Ann); i++ {
		a, b := sig.Ann[i-1], sig.Ann[i]
		if a.Type != Normal || b.Type != Normal {
			continue
		}
		if a.Sample-half < 0 || b.Sample+half >= len(x) {
			continue
		}
		var num, denA, denB float64
		for k := -half; k < half; k++ {
			va, vb := x[a.Sample+k], x[b.Sample+k]
			num += va * vb
			denA += va * va
			denB += vb * vb
		}
		corrs = append(corrs, num/math.Sqrt(denA*denB))
	}
	if len(corrs) < 10 {
		t.Fatalf("only %d beat pairs available", len(corrs))
	}
	var mean float64
	for _, c := range corrs {
		mean += c
	}
	mean /= float64(len(corrs))
	if mean < 0.95 {
		t.Errorf("mean beat-aligned correlation %v, want > 0.95", mean)
	}
}

func TestWaveletSparsity(t *testing.T) {
	// The premise of the paper: ECG windows are compressible in a
	// wavelet basis. Keeping the top 15% of db4 coefficients of a clean
	// 2-second window must retain ≥ 99% of the energy.
	cfg := defaultCfg()
	cfg.MuscleNoiseMV = 0
	cfg.PowerlineMV = 0
	sig, err := Generate(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	win := sig.MV[0][:512]
	w, err := wavelet.New[float64](4, 512, 5)
	if err != nil {
		t.Fatal(err)
	}
	coeffs := make([]float64, 512)
	w.Forward(coeffs, win)
	full := float64(linalg.Norm2(coeffs))
	wavelet.LargestK(coeffs, 512*15/100)
	kept := float64(linalg.Norm2(coeffs))
	if kept/full < 0.99 {
		t.Errorf("top-15%% energy fraction %v, want ≥ 0.99", kept/full)
	}
}

func TestDigitizeRoundTrip(t *testing.T) {
	mv := []float64{0, 1, -1, 2.5, -2.5, 5.2, -5.2, 0.001}
	adc := Digitize(mv)
	back := ToMillivolts(adc)
	for i, v := range mv {
		want := v
		// Clamp: ±(1023/200 or 1024/200) mV representable.
		if want > (ADCMax-ADCBaseline)/ADCGain {
			want = (ADCMax - ADCBaseline) / ADCGain
		}
		if want < -ADCBaseline/ADCGain {
			want = -ADCBaseline / ADCGain
		}
		if math.Abs(back[i]-want) > 1.0/ADCGain {
			t.Errorf("sample %d: %v -> %d -> %v", i, v, adc[i], back[i])
		}
	}
}

func TestDigitizeClamps(t *testing.T) {
	adc := Digitize([]float64{100, -100})
	if adc[0] != ADCMax {
		t.Errorf("positive rail = %d, want %d", adc[0], ADCMax)
	}
	if adc[1] != 0 {
		t.Errorf("negative rail = %d, want 0", adc[1])
	}
}

func TestDatabaseProperties(t *testing.T) {
	db := Database()
	if len(db) != 48 {
		t.Fatalf("database has %d records, want 48", len(db))
	}
	seen := map[string]bool{}
	for _, r := range db {
		if seen[r.ID] {
			t.Errorf("duplicate record ID %s", r.ID)
		}
		seen[r.ID] = true
		if err := r.Cfg.Validate(); err != nil {
			t.Errorf("record %s config invalid: %v", r.ID, err)
		}
		if r.Description == "" {
			t.Errorf("record %s missing description", r.ID)
		}
	}
	// Seeds must differ (IDs hash distinctly).
	seeds := map[uint64]string{}
	for _, r := range db {
		if prev, dup := seeds[r.Cfg.Seed]; dup {
			t.Errorf("records %s and %s share seed", prev, r.ID)
		}
		seeds[r.Cfg.Seed] = r.ID
	}
}

func TestRecordByID(t *testing.T) {
	r, err := RecordByID("208")
	if err != nil {
		t.Fatal(err)
	}
	if r.Cfg.PVCProb < 0.2 {
		t.Errorf("record 208 should be PVC-rich, got %v", r.Cfg.PVCProb)
	}
	if _, err := RecordByID("999"); err == nil {
		t.Error("expected error for unknown ID")
	}
}

func TestChannel256(t *testing.T) {
	r, err := RecordByID("100")
	if err != nil {
		t.Fatal(err)
	}
	samples, err := r.Channel256(4, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := int(4*FsMITBIH) * 32 / 45
	if math.Abs(float64(len(samples)-want)) > 2 {
		t.Errorf("256 Hz length %d, want ≈%d", len(samples), want)
	}
	// Values stay inside the 11-bit range and near baseline on average.
	var sum float64
	for _, v := range samples {
		if v < 0 || v > ADCMax {
			t.Fatalf("sample %d out of ADC range", v)
		}
		sum += float64(v)
	}
	mean := sum / float64(len(samples))
	if mean < 900 || mean > 1200 {
		t.Errorf("mean ADC level %v, want ≈%d", mean, ADCBaseline)
	}
	if _, err := r.Channel256(4, 2); err == nil {
		t.Error("expected error for channel 2")
	}
}

func TestBeatTypeString(t *testing.T) {
	cases := map[BeatType]string{Normal: "N", PVC: "V", APC: "A", Dropped: "-", BeatType(99): "?"}
	for bt, want := range cases {
		if got := bt.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", bt, got, want)
		}
	}
}

func BenchmarkGenerate10s(b *testing.B) {
	cfg := defaultCfg()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Generate(cfg, 10); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkChannel256TenSeconds(b *testing.B) {
	r, _ := RecordByID("100")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Channel256(10, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func TestAFRhythm(t *testing.T) {
	af := defaultCfg()
	af.AF = true
	af.Seed = 31
	sinus := defaultCfg()
	sinus.Seed = 31
	rrCV := func(cfg Config) float64 {
		sig, err := Generate(cfg, 120)
		if err != nil {
			t.Fatal(err)
		}
		var rrs []float64
		for i := 1; i < len(sig.Ann); i++ {
			rrs = append(rrs, sig.Ann[i].Time-sig.Ann[i-1].Time)
		}
		var mean float64
		for _, r := range rrs {
			mean += r
		}
		mean /= float64(len(rrs))
		var ss float64
		for _, r := range rrs {
			d := r - mean
			ss += d * d
		}
		return math.Sqrt(ss/float64(len(rrs))) / mean
	}
	cvAF, cvSinus := rrCV(af), rrCV(sinus)
	if cvAF < 2*cvSinus {
		t.Errorf("AF RR coefficient of variation %.3f not well above sinus %.3f", cvAF, cvSinus)
	}
	if cvAF < 0.15 {
		t.Errorf("AF RR CV %.3f below the irregularly-irregular range", cvAF)
	}
}

func TestAFNoMemoryInRR(t *testing.T) {
	// The annotated R peaks sit mid-cycle, so annotation RRs are a
	// 2-term moving average of the generator's true RR draws; an i.i.d.
	// AF rhythm therefore shows lag-1 autocorrelation ≈ 0.5 but lag-2
	// ≈ 0. Respiration-coupled sinus rhythm keeps substantial lag-2
	// memory. That contrast is what this test pins.
	lag2 := func(af bool) float64 {
		cfg := defaultCfg()
		cfg.AF = af
		cfg.Seed = 33
		sig, err := Generate(cfg, 300)
		if err != nil {
			t.Fatal(err)
		}
		var rrs []float64
		for i := 1; i < len(sig.Ann); i++ {
			rrs = append(rrs, sig.Ann[i].Time-sig.Ann[i-1].Time)
		}
		var mean float64
		for _, r := range rrs {
			mean += r
		}
		mean /= float64(len(rrs))
		var num, den float64
		for i := 2; i < len(rrs); i++ {
			num += (rrs[i] - mean) * (rrs[i-2] - mean)
		}
		for _, r := range rrs {
			den += (r - mean) * (r - mean)
		}
		return num / den
	}
	afCorr, sinusCorr := lag2(true), lag2(false)
	if math.Abs(afCorr) > 0.15 {
		t.Errorf("AF lag-2 RR autocorrelation %.3f, want ≈0", afCorr)
	}
	// Sinus rhythm carries respiratory structure at lag 2 — at 0.25 Hz
	// respiration and ~75 bpm the coupling phase makes it *negative*
	// (≈cos 144°); either sign, it must be clearly nonzero.
	if math.Abs(sinusCorr) < math.Abs(afCorr)+0.1 {
		t.Errorf("sinus |lag-2| %.3f not above AF %.3f", math.Abs(sinusCorr), math.Abs(afCorr))
	}
}

func TestAFFWavePresence(t *testing.T) {
	// Between beats, the AF baseline carries 4.5-8 Hz f-wave energy that
	// sinus rhythm lacks. Compare band energy in a TQ segment.
	bandEnergy := func(afOn bool) float64 {
		cfg := defaultCfg()
		cfg.AF = afOn
		cfg.FWaveMV = 0.1
		cfg.HeartRateBPM = 45 // long diastole keeps T-wave energy away
		cfg.MuscleNoiseMV = 0
		cfg.BaselineWanderMV = 0
		cfg.PowerlineMV = 0
		cfg.Seed = 35
		sig, err := Generate(cfg, 30)
		if err != nil {
			t.Fatal(err)
		}
		// Goertzel-style energy over 4.5-8 Hz on the full signal minus
		// QRS neighbourhoods is overkill; instead use a simple bandpass
		// via DFT bins over a beat-free gap. Find the longest annotation
		// gap and take its middle 0.3 s.
		best, bestGap := 0, 0.0
		for i := 1; i < len(sig.Ann); i++ {
			if g := sig.Ann[i].Time - sig.Ann[i-1].Time; g > bestGap {
				bestGap = g
				best = i
			}
		}
		// Mid-diastole: halfway into the gap, past the previous T wave
		// and before the next beat's onset.
		mid := sig.Ann[best-1].Time + 0.5*bestGap
		start := int((mid - 0.15) * FsMITBIH)
		seg := append([]float64(nil), sig.MV[0][start:start+int(0.3*FsMITBIH)]...)
		// Remove the mean: DC leaks into every non-integer-period DFT
		// bin of a short window and would swamp the f-wave band.
		var segMean float64
		for _, v := range seg {
			segMean += v
		}
		segMean /= float64(len(seg))
		for i := range seg {
			seg[i] -= segMean
		}
		var energy float64
		for f := 4.5; f <= 8; f += 0.5 {
			var re, im float64
			for n, v := range seg {
				re += v * math.Cos(2*math.Pi*f*float64(n)/FsMITBIH)
				im += v * math.Sin(2*math.Pi*f*float64(n)/FsMITBIH)
			}
			energy += re*re + im*im
		}
		return energy
	}
	af, sinus := bandEnergy(true), bandEnergy(false)
	if af < 5*sinus {
		t.Errorf("AF f-wave band energy %.3g not well above sinus %.3g", af, sinus)
	}
}

func TestAFRecordsInDatabase(t *testing.T) {
	afIDs := map[string]bool{"202": true, "219": true, "222": true}
	for _, r := range Database() {
		if r.Cfg.AF != afIDs[r.ID] {
			t.Errorf("record %s AF flag %v, want %v", r.ID, r.Cfg.AF, afIDs[r.ID])
		}
	}
}
