package ecg

import (
	"fmt"
	"math"

	"csecg/internal/rng"
)

// FsMITBIH is the sample rate of the substitute records, matching the
// MIT-BIH Arrhythmia Database.
const FsMITBIH = 360.0

// Config parameterizes a synthetic record.
type Config struct {
	// HeartRateBPM is the mean sinus rate.
	HeartRateBPM float64
	// HRVariability is the fractional standard deviation of the RR
	// interval (typical ambulatory values 0.03-0.10).
	HRVariability float64
	// RespRateHz couples a respiratory oscillation into the RR series
	// (respiratory sinus arrhythmia) and the baseline.
	RespRateHz float64
	// AmplitudeScale multiplies the beat morphology (inter-patient
	// electrode gain spread).
	AmplitudeScale float64
	// PVCProb, APCProb and DropProb are per-beat probabilities of each
	// arrhythmic event.
	PVCProb, APCProb, DropProb float64
	// AF switches the record to atrial fibrillation: irregularly
	// irregular RR intervals (uncorrelated, wide spread), conducted QRS
	// complexes without P waves, and continuous fibrillatory f-waves on
	// the baseline.
	AF bool
	// FWaveMV is the fibrillatory-wave amplitude (default 0.05 mV when
	// AF is set).
	FWaveMV float64
	// BaselineWanderMV, MuscleNoiseMV and PowerlineMV set noise
	// component amplitudes (mV).
	BaselineWanderMV, MuscleNoiseMV, PowerlineMV float64
	// PowerlineHz is 60 in the US recordings; 0 disables the component.
	PowerlineHz float64
	// Seed makes the record reproducible.
	Seed uint64
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.HeartRateBPM < 20 || c.HeartRateBPM > 250:
		return fmt.Errorf("ecg: heart rate %.1f bpm out of [20, 250]", c.HeartRateBPM)
	case c.HRVariability < 0 || c.HRVariability > 0.5:
		return fmt.Errorf("ecg: HR variability %.2f out of [0, 0.5]", c.HRVariability)
	case c.PVCProb < 0 || c.APCProb < 0 || c.DropProb < 0:
		return fmt.Errorf("ecg: negative event probability")
	case c.PVCProb+c.APCProb+c.DropProb > 0.9:
		return fmt.Errorf("ecg: event probabilities sum %.2f too high", c.PVCProb+c.APCProb+c.DropProb)
	case c.AmplitudeScale <= 0:
		return fmt.Errorf("ecg: amplitude scale must be positive")
	}
	return nil
}

// Annotation marks one synthesized beat.
type Annotation struct {
	// Time of the R peak in seconds from record start.
	Time float64
	// Sample index of the R peak at FsMITBIH.
	Sample int
	// Type of the beat.
	Type BeatType
}

// Signal is a synthesized two-channel record segment in millivolts.
type Signal struct {
	// Fs is the sample rate (FsMITBIH).
	Fs float64
	// MV holds the two channels.
	MV [2][]float64
	// Ann lists the beats in time order.
	Ann []Annotation
}

// Duration returns the segment length in seconds.
func (s *Signal) Duration() float64 {
	if len(s.MV[0]) == 0 {
		return 0
	}
	return float64(len(s.MV[0])) / s.Fs
}

// beat is one scheduled beat in the rhythm.
type beat struct {
	start, dur float64 // cycle start time and duration (seconds)
	typ        BeatType
}

// Generate synthesizes seconds of two-channel ECG under cfg.
func Generate(cfg Config, seconds float64) (*Signal, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if seconds <= 0 {
		return nil, fmt.Errorf("ecg: non-positive duration %v", seconds)
	}
	gen := rng.New(cfg.Seed)
	beats := scheduleBeats(cfg, seconds, gen)
	n := int(seconds * FsMITBIH)
	sig := &Signal{Fs: FsMITBIH}
	sig.MV[0] = make([]float64, n)
	sig.MV[1] = make([]float64, n)
	// Render each beat additively over its cycle ±25% (T and P tails
	// extend past the nominal cycle boundaries).
	for _, b := range beats {
		if b.typ == Dropped {
			continue
		}
		l1, l2 := templateFor(b.typ)
		if cfg.AF && b.typ == Normal {
			// Fibrillating atria conduct no organized P wave.
			l1, l2 = normalLead1NoP, normalLead2NoP
		}
		ext := 0.25 * b.dur
		i0 := int((b.start - ext) * FsMITBIH)
		i1 := int((b.start + b.dur + ext) * FsMITBIH)
		if i0 < 0 {
			i0 = 0
		}
		if i1 > n {
			i1 = n
		}
		for i := i0; i < i1; i++ {
			t := float64(i) / FsMITBIH
			phase := (t - b.start) / b.dur * 2 * math.Pi
			sig.MV[0][i] += cfg.AmplitudeScale * l1.value(phase)
			sig.MV[1][i] += cfg.AmplitudeScale * l2.value(phase)
		}
		// Annotate the R peak (phase π) of non-dropped beats.
		rT := b.start + b.dur/2
		rs := int(rT*FsMITBIH + 0.5)
		if rs >= 0 && rs < n {
			sig.Ann = append(sig.Ann, Annotation{Time: rT, Sample: rs, Type: b.typ})
		}
	}
	addNoise(cfg, sig, gen)
	return sig, nil
}

// scheduleBeats builds the RR series with respiration coupling and
// arrhythmia events until the record duration is covered.
func scheduleBeats(cfg Config, seconds float64, gen *rng.Xoshiro) []beat {
	meanRR := 60 / cfg.HeartRateBPM
	var beats []beat
	t := -0.2 * meanRR // start mid-cycle so the record begins inside a beat
	for t < seconds {
		var rr float64
		if cfg.AF {
			// Irregularly irregular: wide uniform spread, no memory and
			// no respiratory coupling (the sinus node is not driving).
			rr = meanRR * (0.6 + 0.8*gen.Float64())
		} else {
			rr = meanRR * (1 + cfg.HRVariability*gen.NormFloat64())
			if cfg.RespRateHz > 0 {
				rr *= 1 + 0.04*math.Sin(2*math.Pi*cfg.RespRateHz*t)
			}
		}
		if rr < 0.25 {
			rr = 0.25 // physiologic floor (240 bpm)
		}
		typ := Normal
		switch u := gen.Float64(); {
		case u < cfg.PVCProb:
			typ = PVC
		case u < cfg.PVCProb+cfg.APCProb:
			typ = APC
		case u < cfg.PVCProb+cfg.APCProb+cfg.DropProb:
			typ = Dropped
		}
		switch typ {
		case PVC:
			// Premature coupling then a full compensatory pause.
			coupling := 0.60 * rr
			beats = append(beats, beat{start: t, dur: coupling, typ: PVC})
			t += coupling + 1.35*rr
		case APC:
			coupling := 0.75 * rr
			beats = append(beats, beat{start: t, dur: coupling, typ: APC})
			t += coupling + 1.05*rr
		case Dropped:
			beats = append(beats, beat{start: t, dur: rr, typ: Dropped})
			t += 2 * rr // sinus pause
		default:
			beats = append(beats, beat{start: t, dur: rr, typ: Normal})
			t += rr
		}
	}
	return beats
}

// addNoise layers baseline wander, muscle artifact and powerline
// interference onto both channels with independent phases/streams.
func addNoise(cfg Config, sig *Signal, gen *rng.Xoshiro) {
	n := len(sig.MV[0])
	for ch := 0; ch < 2; ch++ {
		// Baseline wander: respiration-locked plus a slower drift.
		f1 := cfg.RespRateHz
		if f1 <= 0 {
			f1 = 0.25
		}
		p1 := gen.Float64() * 2 * math.Pi
		p2 := gen.Float64() * 2 * math.Pi
		f2 := 0.05 + 0.04*gen.Float64()
		// Muscle noise: white Gaussian through a one-pole smoother.
		musc := 0.0
		const pole = 0.9 // ≈ 6 Hz corner at 360 Hz — EMG-band energy kept
		plPhase := gen.Float64() * 2 * math.Pi
		// Fibrillatory f-waves: a 5-7 Hz oscillation whose frequency and
		// amplitude wander slowly, present only in AF.
		fAmp := cfg.FWaveMV
		if cfg.AF && fAmp == 0 {
			fAmp = 0.05
		}
		fPhase := gen.Float64() * 2 * math.Pi
		fFreq := 5.5 + gen.Float64()
		for i := 0; i < n; i++ {
			t := float64(i) / sig.Fs
			v := cfg.BaselineWanderMV * (0.7*math.Sin(2*math.Pi*f1*t+p1) + 0.3*math.Sin(2*math.Pi*f2*t+p2))
			musc = pole*musc + (1-pole)*gen.NormFloat64()
			v += cfg.MuscleNoiseMV * musc * 3.2 // restore unit variance after smoothing
			if cfg.PowerlineMV > 0 && cfg.PowerlineHz > 0 {
				v += cfg.PowerlineMV * math.Sin(2*math.Pi*cfg.PowerlineHz*t+plPhase)
			}
			if cfg.AF {
				fPhase += 2 * math.Pi * fFreq / sig.Fs
				fFreq += 0.001 * gen.NormFloat64() // slow frequency wander
				if fFreq < 4.5 {
					fFreq = 4.5
				}
				if fFreq > 8 {
					fFreq = 8
				}
				mod := 1 + 0.3*math.Sin(2*math.Pi*0.1*t)
				v += fAmp * mod * math.Sin(fPhase)
			}
			sig.MV[ch][i] += v
		}
	}
}
