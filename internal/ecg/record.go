package ecg

import (
	"fmt"

	"csecg/internal/dsp"
)

// ADC parameters of the MIT-BIH format: 11-bit resolution over a 10 mV
// range, 200 ADU/mV gain, baseline at mid-scale.
const (
	ADCBits     = 11
	ADCMax      = 1<<ADCBits - 1 // 2047
	ADCGain     = 200.0          // ADU per mV
	ADCBaseline = 1024
)

// Digitize converts millivolts to MIT-BIH-format ADC counts, clamping at
// the 11-bit rails.
func Digitize(mv []float64) []int16 {
	out := make([]int16, len(mv))
	for i, v := range mv {
		var c int32
		if v >= 0 {
			c = int32(v*ADCGain+0.5) + ADCBaseline
		} else {
			c = int32(v*ADCGain-0.5) + ADCBaseline
		}
		if c < 0 {
			c = 0
		}
		if c > ADCMax {
			c = ADCMax
		}
		out[i] = int16(c)
	}
	return out
}

// ToMillivolts inverts Digitize (up to quantization).
func ToMillivolts(adc []int16) []float64 {
	out := make([]float64, len(adc))
	for i, v := range adc {
		out[i] = float64(int32(v)-ADCBaseline) / ADCGain
	}
	return out
}

// Record describes one substitute-database record.
type Record struct {
	// ID uses MIT-BIH numbering ("100".."234").
	ID string
	// Cfg is the fully resolved generator configuration.
	Cfg Config
	// Description summarizes the rhythm, mirroring the database notes.
	Description string
}

// Synthesize renders the first `seconds` of the record (both channels,
// 360 Hz, millivolts). The full record is 30 minutes, but callers
// normally render only what an experiment consumes.
func (r Record) Synthesize(seconds float64) (*Signal, error) {
	return Generate(r.Cfg, seconds)
}

// FullDuration is the nominal length of each substitute record: half an
// hour, like the MIT-BIH excerpts.
const FullDuration = 1800.0

// Channel256 renders channel ch resampled to the mote's 256 Hz input
// rate, in ADC counts re-quantized after resampling (the paper feeds
// 256 Hz samples to the Shimmer serial port).
func (r Record) Channel256(seconds float64, ch int) ([]int16, error) {
	if ch < 0 || ch > 1 {
		return nil, fmt.Errorf("ecg: channel %d out of [0, 1]", ch)
	}
	sig, err := r.Synthesize(seconds)
	if err != nil {
		return nil, err
	}
	res := dsp.Resample360To256(sig.MV[ch])
	return Digitize(res), nil
}

// recordSpec drives Database construction.
type recordSpec struct {
	id    string
	hr    float64
	hrv   float64
	amp   float64
	pvc   float64
	apc   float64
	drop  float64
	noise float64 // muscle noise scale, mV
	af    bool
	desc  string
}

// Database returns the 48-record substitute set. IDs and rhythm
// character follow the MIT-BIH catalogue: the 100-series is dominated by
// normal sinus rhythm, the 200-series carries frequent ectopy. Every
// record's generator is seeded from its ID, so the data set is identical
// across runs and machines.
func Database() []Record {
	specs := []recordSpec{
		{"100", 75, 0.04, 1.00, 0.001, 0.015, 0.000, 0.010, false, "normal sinus rhythm, rare APCs"},
		{"101", 70, 0.05, 0.95, 0.001, 0.002, 0.000, 0.020, false, "normal sinus rhythm"},
		{"102", 72, 0.04, 0.80, 0.002, 0.001, 0.002, 0.015, false, "paced-like low amplitude"},
		{"103", 72, 0.05, 1.10, 0.001, 0.002, 0.000, 0.012, false, "normal sinus rhythm"},
		{"104", 74, 0.06, 0.85, 0.010, 0.002, 0.004, 0.030, false, "noisy, occasional PVCs"},
		{"105", 82, 0.06, 1.05, 0.015, 0.001, 0.000, 0.040, false, "high noise, PVCs"},
		{"106", 78, 0.08, 1.10, 0.170, 0.000, 0.000, 0.015, false, "frequent PVCs, bigeminy-like"},
		{"107", 71, 0.04, 1.30, 0.020, 0.000, 0.000, 0.012, false, "high-amplitude complexes"},
		{"108", 64, 0.07, 0.90, 0.005, 0.020, 0.005, 0.045, false, "noisy baseline, APCs"},
		{"109", 85, 0.04, 1.05, 0.013, 0.000, 0.000, 0.015, false, "LBBB-like, PVCs"},
		{"111", 70, 0.05, 0.90, 0.004, 0.000, 0.000, 0.020, false, "BBB-like morphology"},
		{"112", 84, 0.03, 0.95, 0.001, 0.001, 0.000, 0.010, false, "normal sinus rhythm"},
		{"113", 60, 0.09, 1.15, 0.000, 0.003, 0.000, 0.012, false, "sinus arrhythmia"},
		{"114", 58, 0.06, 0.85, 0.020, 0.005, 0.000, 0.018, false, "PVCs, slow rate"},
		{"115", 65, 0.05, 1.10, 0.000, 0.001, 0.000, 0.010, false, "normal sinus rhythm"},
		{"116", 80, 0.04, 1.20, 0.053, 0.001, 0.000, 0.014, false, "PVCs"},
		{"117", 51, 0.04, 1.00, 0.001, 0.001, 0.000, 0.010, false, "bradycardia"},
		{"118", 73, 0.05, 1.05, 0.007, 0.040, 0.000, 0.013, false, "RBBB-like, APCs"},
		{"119", 67, 0.07, 1.15, 0.220, 0.000, 0.000, 0.012, false, "trigeminy-like PVCs"},
		{"121", 62, 0.04, 0.95, 0.001, 0.001, 0.000, 0.022, false, "normal sinus rhythm"},
		{"122", 82, 0.03, 1.00, 0.000, 0.000, 0.000, 0.008, false, "clean normal rhythm"},
		{"123", 51, 0.05, 1.05, 0.002, 0.000, 0.000, 0.010, false, "bradycardia"},
		{"124", 54, 0.06, 1.10, 0.021, 0.012, 0.002, 0.011, false, "junctional-like, PVCs"},
		{"200", 88, 0.09, 1.00, 0.230, 0.010, 0.000, 0.030, false, "frequent multifocal PVCs"},
		{"201", 68, 0.12, 0.95, 0.080, 0.040, 0.010, 0.020, false, "AF-like irregularity, PVCs"},
		{"202", 63, 0.11, 1.00, 0.008, 0.015, 0.004, 0.016, true, "atrial fibrillation"},
		{"203", 98, 0.13, 0.95, 0.150, 0.000, 0.008, 0.050, false, "very noisy, frequent ectopy"},
		{"205", 89, 0.05, 1.05, 0.027, 0.001, 0.000, 0.010, false, "PVCs, runs"},
		{"207", 73, 0.1, 0.90, 0.070, 0.035, 0.012, 0.035, false, "mixed severe arrhythmia"},
		{"208", 99, 0.08, 1.10, 0.330, 0.001, 0.000, 0.025, false, "very frequent PVCs"},
		{"209", 90, 0.06, 1.00, 0.001, 0.120, 0.000, 0.014, false, "frequent APCs"},
		{"210", 89, 0.09, 0.95, 0.075, 0.008, 0.004, 0.020, false, "AF-like, PVCs"},
		{"212", 91, 0.04, 1.05, 0.000, 0.001, 0.000, 0.012, false, "RBBB-like, clean"},
		{"213", 109, 0.05, 1.25, 0.070, 0.009, 0.000, 0.015, false, "fast rate, PVCs"},
		{"214", 78, 0.06, 1.10, 0.110, 0.000, 0.002, 0.018, false, "LBBB-like, PVCs"},
		{"215", 112, 0.06, 0.90, 0.050, 0.001, 0.000, 0.020, false, "fast rate, PVCs"},
		{"217", 74, 0.06, 1.05, 0.090, 0.000, 0.004, 0.016, false, "paced-like with PVCs"},
		{"219", 74, 0.09, 1.10, 0.030, 0.003, 0.015, 0.014, true, "atrial fibrillation with pauses"},
		{"220", 69, 0.05, 1.00, 0.000, 0.045, 0.000, 0.010, false, "APCs"},
		{"221", 80, 0.1, 0.95, 0.160, 0.000, 0.000, 0.018, false, "AF-like, PVCs"},
		{"222", 84, 0.11, 0.90, 0.001, 0.090, 0.006, 0.022, true, "atrial fibrillation, APCs"},
		{"223", 87, 0.07, 1.15, 0.190, 0.030, 0.000, 0.013, false, "PVCs, bigeminy episodes"},
		{"228", 71, 0.08, 0.95, 0.160, 0.001, 0.006, 0.035, false, "noisy, frequent PVCs"},
		{"230", 75, 0.05, 1.05, 0.001, 0.001, 0.000, 0.012, false, "normal with WPW-like beats"},
		{"231", 62, 0.06, 1.00, 0.001, 0.001, 0.020, 0.012, false, "blocked beats, pauses"},
		{"232", 72, 0.08, 0.95, 0.000, 0.290, 0.012, 0.014, false, "very frequent APCs, pauses"},
		{"233", 102, 0.07, 1.10, 0.270, 0.003, 0.000, 0.018, false, "frequent PVCs, fast rate"},
		{"234", 90, 0.04, 1.00, 0.001, 0.002, 0.000, 0.010, false, "normal sinus rhythm"},
	}
	recs := make([]Record, len(specs))
	for i, s := range specs {
		seed := uint64(0xEC6_0000)
		for _, c := range s.id {
			seed = seed*131 + uint64(c)
		}
		recs[i] = Record{
			ID:          s.id,
			Description: s.desc,
			Cfg: Config{
				HeartRateBPM:     s.hr,
				HRVariability:    s.hrv,
				RespRateHz:       0.20 + 0.1*float64(i%5)/5,
				AmplitudeScale:   s.amp,
				PVCProb:          s.pvc,
				APCProb:          s.apc,
				DropProb:         s.drop,
				AF:               s.af,
				BaselineWanderMV: 0.04 + s.noise,
				MuscleNoiseMV:    s.noise,
				PowerlineMV:      0.004,
				PowerlineHz:      60,
				Seed:             seed,
			},
		}
	}
	return recs
}

// RecordByID returns the record with the given ID.
func RecordByID(id string) (Record, error) {
	for _, r := range Database() {
		if r.ID == id {
			return r, nil
		}
	}
	return Record{}, fmt.Errorf("ecg: no record %q in substitute database", id)
}
