// Package analogcs simulates the paper's stated "ultimate goal": analog
// compressed sensing, where the CS projection happens in the sensor
// read-out electronics *before* the ADC, so only M low-rate conversions
// per window are ever performed (Section II-A defers this to future
// work and implements "digital CS" instead).
//
// The architecture simulated here is the random-modulation
// pre-integrator (RMPI): M parallel branches each multiply the analog
// ECG by a ±1 pseudo-random chipping waveform (piecewise constant at an
// oversampled chip rate), integrate over the 2-second window, and one
// low-rate ADC digitizes each integrator output. Non-idealities that a
// real front end exhibits are modeled explicitly:
//
//   - integrator leakage (finite RC): earlier signal decays before
//     read-out;
//   - input-referred thermal noise;
//   - ADC quantization of the integrator outputs.
//
// Reconstruction uses the *ideal* discrete equivalent operator (the
// bucket-averaged chip matrix on the 256 Hz grid), so leakage and noise
// act as model mismatch — exactly the deployment situation. The
// experiment in internal/experiments compares digital CS, ideal analog
// CS and degraded analog CS at matched M.
package analogcs

import (
	"fmt"
	"math"

	"csecg/internal/linalg"
	"csecg/internal/rng"
	"csecg/internal/solver"
	"csecg/internal/wavelet"
)

// Config parameterizes the front end.
type Config struct {
	// M is the number of branches (measurements per window).
	M int
	// N is the discrete window length on the reconstruction grid
	// (512 = 2 s at 256 Hz).
	N int
	// Oversample is the chip-rate multiple of the reconstruction rate
	// (chips per 256 Hz sample). 8 models a ~2 kHz chip clock.
	Oversample int
	// ChipSeed seeds the chipping sequences (shared with the decoder).
	ChipSeed uint64
	// LeakagePerSecond is the integrator's fractional decay rate λ:
	// a contribution at time t is weighted e^{−λ(T−t)} at read-out.
	// 0 is an ideal integrator.
	LeakagePerSecond float64
	// NoiseRMS is input-referred noise in the signal's units added per
	// chip interval (scaled by √chip duration).
	NoiseRMS float64
	// NoiseSeed seeds the noise stream.
	NoiseSeed uint64
	// ADCBits quantizes each integrator output (0 disables).
	ADCBits int
	// FullScale is the ADC's full-scale magnitude in output units
	// (required when ADCBits > 0).
	FullScale float64
	// WindowSeconds is the integration window duration (2 s).
	WindowSeconds float64
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.M <= 0 || c.N <= 0:
		return fmt.Errorf("analogcs: non-positive dimensions M=%d N=%d", c.M, c.N)
	case c.M > c.N:
		return fmt.Errorf("analogcs: M=%d > N=%d is not a compression", c.M, c.N)
	case c.Oversample < 1:
		return fmt.Errorf("analogcs: oversample factor %d must be ≥ 1", c.Oversample)
	case c.LeakagePerSecond < 0:
		return fmt.Errorf("analogcs: negative leakage")
	case c.NoiseRMS < 0:
		return fmt.Errorf("analogcs: negative noise")
	case c.ADCBits < 0 || c.ADCBits > 24:
		return fmt.Errorf("analogcs: ADC bits %d out of [0, 24]", c.ADCBits)
	case c.ADCBits > 0 && c.FullScale <= 0:
		return fmt.Errorf("analogcs: ADC enabled but full scale %v not positive", c.FullScale)
	case c.WindowSeconds <= 0:
		return fmt.Errorf("analogcs: window %v must be positive", c.WindowSeconds)
	}
	return nil
}

// FrontEnd is an instantiated RMPI front end with fixed chipping
// sequences.
type FrontEnd struct {
	cfg Config
	// chips[i] holds branch i's ±1 sequence at the chip rate
	// (N·Oversample values).
	chips [][]int8
}

// New builds the front end, generating the chipping sequences from
// ChipSeed.
func New(cfg Config) (*FrontEnd, error) {
	if cfg.WindowSeconds == 0 {
		cfg.WindowSeconds = 2
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	gen := rng.New(cfg.ChipSeed)
	k := cfg.N * cfg.Oversample
	fe := &FrontEnd{cfg: cfg, chips: make([][]int8, cfg.M)}
	for i := range fe.chips {
		row := make([]int8, k)
		for j := range row {
			row[j] = int8(gen.Sign())
		}
		fe.chips[i] = row
	}
	return fe, nil
}

// Config returns the resolved configuration.
func (fe *FrontEnd) Config() Config { return fe.cfg }

// ChipCount returns the chips per window.
func (fe *FrontEnd) ChipCount() int { return fe.cfg.N * fe.cfg.Oversample }

// Measure integrates one window of the "analog" signal (sampled at the
// chip rate: N·Oversample values) through all M branches, applying
// leakage, noise and quantization, and returns the M read-out values.
func (fe *FrontEnd) Measure(analog []float64) ([]float64, error) {
	k := fe.ChipCount()
	if len(analog) != k {
		return nil, fmt.Errorf("analogcs: analog window has %d chips, want %d", len(analog), k)
	}
	chipDt := fe.cfg.WindowSeconds / float64(k)
	// Leakage weight for a contribution at chip j read out at chip k:
	// e^{−λ·(k−j)·dt}; computed incrementally as a running decay.
	decayPerChip := math.Exp(-fe.cfg.LeakagePerSecond * chipDt)
	noise := rng.New(fe.cfg.NoiseSeed)
	noiseScale := fe.cfg.NoiseRMS * math.Sqrt(chipDt)
	out := make([]float64, fe.cfg.M)
	for i, row := range fe.chips {
		var acc float64
		for j, c := range row {
			acc *= decayPerChip
			v := analog[j]
			if noiseScale > 0 {
				v += noise.NormFloat64() * noiseScale
			}
			acc += float64(c) * v
		}
		// Normalize to a per-sample average so the output scale matches
		// the effective operator.
		acc /= float64(fe.cfg.Oversample)
		out[i] = fe.quantize(acc)
	}
	return out, nil
}

// quantize applies the read-out ADC.
func (fe *FrontEnd) quantize(v float64) float64 {
	if fe.cfg.ADCBits == 0 {
		return v
	}
	levels := float64(int64(1) << uint(fe.cfg.ADCBits-1))
	step := fe.cfg.FullScale / levels
	q := math.Round(v/step) * step
	if q > fe.cfg.FullScale {
		q = fe.cfg.FullScale
	}
	if q < -fe.cfg.FullScale {
		q = -fe.cfg.FullScale
	}
	return q
}

// EffectiveMatrix returns the ideal discrete equivalent Φ on the
// reconstruction grid: entry (i, j) is the mean of branch i's chips over
// sample j's bucket. The decoder composes it with Ψ for recovery.
func (fe *FrontEnd) EffectiveMatrix() *linalg.Dense[float64] {
	m := linalg.NewDense[float64](fe.cfg.M, fe.cfg.N)
	os := fe.cfg.Oversample
	for i, row := range fe.chips {
		dst := m.Row(i)
		for j := 0; j < fe.cfg.N; j++ {
			var s int
			for k := j * os; k < (j+1)*os; k++ {
				s += int(row[k])
			}
			dst[j] = float64(s) / float64(os)
		}
	}
	return m
}

// CompensatedMatrix returns the discrete equivalent operator with the
// integrator leakage folded in: entry (i, j) is the decay-weighted mean
// of branch i's chips over bucket j. A deployed decoder calibrates the
// front end's RC constant once and recovers with this operator, which
// removes the model mismatch that leakage otherwise causes (see the
// package tests for the quantitative difference).
func (fe *FrontEnd) CompensatedMatrix() *linalg.Dense[float64] {
	m := linalg.NewDense[float64](fe.cfg.M, fe.cfg.N)
	k := fe.ChipCount()
	chipDt := fe.cfg.WindowSeconds / float64(k)
	decayPerChip := math.Exp(-fe.cfg.LeakagePerSecond * chipDt)
	// Weight of chip j at read-out: decay^(K−1−j).
	weights := make([]float64, k)
	w := 1.0
	for j := k - 1; j >= 0; j-- {
		weights[j] = w
		w *= decayPerChip
	}
	os := fe.cfg.Oversample
	for i, row := range fe.chips {
		dst := m.Row(i)
		for j := 0; j < fe.cfg.N; j++ {
			var s float64
			for c := j * os; c < (j+1)*os; c++ {
				s += float64(row[c]) * weights[c]
			}
			dst[j] = s / float64(os)
		}
	}
	return m
}

// Recover reconstructs one window from front-end measurements with the
// standard decoder configuration (db4/5-level wavelet basis, FISTA with
// λ-continuation). calibrated selects the leakage-compensated operator;
// a deployed decoder would calibrate once and always pass true.
func (fe *FrontEnd) Recover(y []float64, calibrated bool) ([]float64, error) {
	if len(y) != fe.cfg.M {
		return nil, fmt.Errorf("analogcs: %d measurements, want %d", len(y), fe.cfg.M)
	}
	w, err := wavelet.New[float64](4, fe.cfg.N, wavelet.MaxLevels(4, fe.cfg.N))
	if err != nil {
		return nil, err
	}
	phi := fe.EffectiveMatrix()
	if calibrated {
		phi = fe.CompensatedMatrix()
	}
	a := linalg.Compose(linalg.OpFromDense(phi), w.SynthesisOp())
	res, err := solver.FISTAContinuation(a, y, solver.Options[float64]{MaxIter: 2400, Tol: 1e-6}, 6)
	if err != nil {
		return nil, err
	}
	x := make([]float64, fe.cfg.N)
	w.Inverse(x, res.X)
	return x, nil
}

// Upsample converts a window on the reconstruction grid to the chip
// grid by zero-order hold — the test-side stand-in for the continuous
// signal (a real front end sees the bandlimited original; ZOH is exact
// for the piecewise-constant test signals and a second-order-small
// approximation for 256 Hz-bandlimited ECG at 8× oversampling).
func Upsample(x []float64, factor int) []float64 {
	out := make([]float64, len(x)*factor)
	for i, v := range x {
		for k := 0; k < factor; k++ {
			out[i*factor+k] = v
		}
	}
	return out
}
