package analogcs

import (
	"math"
	"testing"

	"csecg/internal/ecg"
	"csecg/internal/linalg"
	"csecg/internal/metrics"
	"csecg/internal/solver"
	"csecg/internal/wavelet"
)

func idealCfg() Config {
	return Config{M: 256, N: 512, Oversample: 8, ChipSeed: 1, WindowSeconds: 2}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{M: 0, N: 512, Oversample: 8, WindowSeconds: 2},
		{M: 600, N: 512, Oversample: 8, WindowSeconds: 2},
		{M: 256, N: 512, Oversample: 0, WindowSeconds: 2},
		{M: 256, N: 512, Oversample: 8, LeakagePerSecond: -1, WindowSeconds: 2},
		{M: 256, N: 512, Oversample: 8, ADCBits: 30, WindowSeconds: 2},
		{M: 256, N: 512, Oversample: 8, ADCBits: 10, FullScale: 0, WindowSeconds: 2},
	}
	for i, c := range bad {
		if _, err := New(c); err == nil {
			t.Errorf("config %d accepted: %+v", i, c)
		}
	}
	if _, err := New(idealCfg()); err != nil {
		t.Fatal(err)
	}
}

func TestIdealMeasureMatchesEffectiveOperator(t *testing.T) {
	// For a piecewise-constant analog signal (constant within each
	// 256 Hz bucket) the ideal front end must agree exactly with the
	// effective discrete matrix.
	fe, err := New(idealCfg())
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, 512)
	state := uint64(9)
	for i := range x {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		x[i] = float64(int64(state%2001)-1000) / 100
	}
	y, err := fe.Measure(Upsample(x, 8))
	if err != nil {
		t.Fatal(err)
	}
	want := make([]float64, 256)
	fe.EffectiveMatrix().MatVec(want, x)
	for i := range y {
		if math.Abs(y[i]-want[i]) > 1e-9*(1+math.Abs(want[i])) {
			t.Fatalf("branch %d: measured %v, operator %v", i, y[i], want[i])
		}
	}
}

func TestMeasureValidatesLength(t *testing.T) {
	fe, _ := New(idealCfg())
	if _, err := fe.Measure(make([]float64, 100)); err == nil {
		t.Error("wrong-length analog window accepted")
	}
}

func TestChipSequencesDeterministic(t *testing.T) {
	a, _ := New(idealCfg())
	b, _ := New(idealCfg())
	cfg := idealCfg()
	cfg.ChipSeed = 2
	c, _ := New(cfg)
	same := true
	diff := false
	for i := range a.chips {
		for j := range a.chips[i] {
			if a.chips[i][j] != b.chips[i][j] {
				same = false
			}
			if a.chips[i][j] != c.chips[i][j] {
				diff = true
			}
		}
	}
	if !same {
		t.Error("same seed produced different chips")
	}
	if !diff {
		t.Error("different seeds produced identical chips")
	}
}

func TestLeakageReducesEarlyContributions(t *testing.T) {
	// With leakage, an impulse early in the window contributes less
	// than the same impulse late in the window.
	cfg := idealCfg()
	cfg.LeakagePerSecond = 2
	fe, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	early := make([]float64, fe.ChipCount())
	late := make([]float64, fe.ChipCount())
	early[10] = 1
	late[fe.ChipCount()-10] = 1
	ye, err := fe.Measure(early)
	if err != nil {
		t.Fatal(err)
	}
	yl, err := fe.Measure(late)
	if err != nil {
		t.Fatal(err)
	}
	var eNorm, lNorm float64
	for i := range ye {
		eNorm += ye[i] * ye[i]
		lNorm += yl[i] * yl[i]
	}
	if eNorm >= lNorm/4 {
		t.Errorf("early energy %v not attenuated vs late %v under leakage", eNorm, lNorm)
	}
}

func TestQuantizationBounds(t *testing.T) {
	cfg := idealCfg()
	cfg.ADCBits = 8
	cfg.FullScale = 10
	fe, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, fe.ChipCount())
	for i := range x {
		x[i] = 100 // drives integrators far past full scale
	}
	y, err := fe.Measure(x)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range y {
		if v > 10 || v < -10 {
			t.Fatalf("branch %d output %v beyond full scale", i, v)
		}
	}
	// Quantization step: outputs must be multiples of FS/2^{bits−1}.
	step := 10.0 / 128
	for _, v := range y {
		if r := math.Mod(math.Abs(v)+step/2, step); math.Abs(r-step/2) > 1e-9 {
			t.Fatalf("output %v not on the quantization grid", v)
		}
	}
}

// analogRecovery runs end-to-end recovery through the front end and
// returns the reconstruction SNR on one synthetic ECG window. When
// compensate is true the decoder uses the leakage-compensated operator.
func analogRecovery(t *testing.T, cfg Config, compensate bool) float64 {
	t.Helper()
	fe, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := ecg.RecordByID("100")
	if err != nil {
		t.Fatal(err)
	}
	adc, err := rec.Channel256(6, 0)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, cfg.N)
	for i := range x {
		x[i] = float64(adc[i+cfg.N]) - ecg.ADCBaseline // skip the edge window
	}
	y, err := fe.Measure(Upsample(x, cfg.Oversample))
	if err != nil {
		t.Fatal(err)
	}
	w, err := wavelet.New[float64](4, cfg.N, 5)
	if err != nil {
		t.Fatal(err)
	}
	phi := fe.EffectiveMatrix()
	if compensate {
		phi = fe.CompensatedMatrix()
	}
	a := linalg.Compose(linalg.OpFromDense(phi), w.SynthesisOp())
	res, err := solver.FISTAContinuation(a, y, solver.Options[float64]{MaxIter: 2400, Tol: 1e-6}, 6)
	if err != nil {
		t.Fatal(err)
	}
	xhat := make([]float64, cfg.N)
	w.Inverse(xhat, res.X)
	prdn, err := metrics.PRDN(x, xhat)
	if err != nil {
		t.Fatal(err)
	}
	return metrics.SNR(prdn)
}

func TestAnalogRecoveryIdeal(t *testing.T) {
	snr := analogRecovery(t, idealCfg(), false)
	// Ideal analog CS at CR 50 should land in the same regime as
	// digital CS (≈20+ dB).
	if snr < 15 {
		t.Errorf("ideal analog CS SNR %.1f dB, want > 15", snr)
	}
}

func TestAnalogRecoveryDegradesGracefully(t *testing.T) {
	ideal := analogRecovery(t, idealCfg(), false)
	leaky := idealCfg()
	leaky.LeakagePerSecond = 1
	leakySNR := analogRecovery(t, leaky, false)
	if leakySNR >= ideal {
		t.Errorf("leakage did not degrade SNR (%.1f vs %.1f)", leakySNR, ideal)
	}
	noisy := idealCfg()
	noisy.NoiseRMS = 20
	noisy.NoiseSeed = 3
	noisySNR := analogRecovery(t, noisy, false)
	if noisySNR >= ideal {
		t.Errorf("noise did not degrade SNR (%.1f vs %.1f)", noisySNR, ideal)
	}
}

func TestLeakageCompensationRestoresQuality(t *testing.T) {
	// Recovering a leaky front end with the calibrated (compensated)
	// operator must restore most of the ideal quality; the ideal
	// operator must not.
	leaky := idealCfg()
	leaky.LeakagePerSecond = 1
	uncompensated := analogRecovery(t, leaky, false)
	compensated := analogRecovery(t, leaky, true)
	ideal := analogRecovery(t, idealCfg(), false)
	if compensated < uncompensated+5 {
		t.Errorf("compensation gained only %.1f dB (%.1f -> %.1f)",
			compensated-uncompensated, uncompensated, compensated)
	}
	// A residual gap remains physical: leakage attenuates early-sample
	// information that no operator correction can restore.
	if compensated < ideal-8 {
		t.Errorf("compensated SNR %.1f dB far below ideal %.1f dB", compensated, ideal)
	}
}

func TestCompensatedMatrixReducesToIdealWithoutLeakage(t *testing.T) {
	fe, _ := New(idealCfg())
	a := fe.EffectiveMatrix()
	b := fe.CompensatedMatrix()
	for i := 0; i < a.Rows(); i++ {
		for j := 0; j < a.Cols(); j++ {
			if math.Abs(a.At(i, j)-b.At(i, j)) > 1e-12 {
				t.Fatalf("matrices differ at (%d,%d) without leakage", i, j)
			}
		}
	}
}

func BenchmarkMeasure(b *testing.B) {
	fe, _ := New(idealCfg())
	x := make([]float64, fe.ChipCount())
	for i := range x {
		x[i] = math.Sin(float64(i) * 0.01)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fe.Measure(x); err != nil {
			b.Fatal(err)
		}
	}
}

func TestRecoverConvenience(t *testing.T) {
	fe, err := New(idealCfg())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fe.Recover(make([]float64, 3), false); err == nil {
		t.Error("wrong measurement count accepted")
	}
	// A wavelet-sparse window recovers through the convenience path.
	rec, err := ecg.RecordByID("100")
	if err != nil {
		t.Fatal(err)
	}
	adc, err := rec.Channel256(6, 0)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, 512)
	for i := range x {
		x[i] = float64(adc[i+512]) - ecg.ADCBaseline
	}
	y, err := fe.Measure(Upsample(x, 8))
	if err != nil {
		t.Fatal(err)
	}
	xhat, err := fe.Recover(y, false)
	if err != nil {
		t.Fatal(err)
	}
	prdn, err := metrics.PRDN(x, xhat)
	if err != nil {
		t.Fatal(err)
	}
	if snr := metrics.SNR(prdn); snr < 15 {
		t.Errorf("Recover SNR %.1f dB, want > 15", snr)
	}
}
