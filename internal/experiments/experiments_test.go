package experiments

import (
	"math"
	"strings"
	"testing"
)

// fastOpt keeps experiment tests quick: one clean and one ectopy-rich
// record, 8 s each.
func fastOpt() Options {
	return Options{Records: []string{"100", "208"}, SecondsPerRecord: 8}
}

func TestTableRender(t *testing.T) {
	tab := &Table{
		Title:  "T",
		Note:   "n",
		Header: []string{"a", "bb"},
		Rows:   [][]string{{"1", "2"}, {"333", "4"}},
	}
	out := tab.Render()
	for _, want := range []string{"== T ==", "a", "bb", "333"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestAllRecords(t *testing.T) {
	if got := len(AllRecords()); got != 48 {
		t.Errorf("AllRecords returned %d", got)
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if len(o.Records) == 0 || o.SecondsPerRecord <= 0 {
		t.Errorf("defaults not applied: %+v", o)
	}
}

func TestWindows256Errors(t *testing.T) {
	if _, err := windows256("bogus", 10, 512); err == nil {
		t.Error("unknown record accepted")
	}
	if _, err := windows256("100", 0.5, 512); err == nil {
		t.Error("sub-window duration accepted")
	}
}

func TestFig2Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("long experiment")
	}
	opt := fastOpt()
	res, err := Fig2(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 7 {
		t.Fatalf("expected 7 CR points, got %d", len(res.Points))
	}
	for i, p := range res.Points {
		// The paper's claim: no meaningful difference between sparse
		// binary and Gaussian sensing.
		if math.Abs(p.SparseSNR-p.GaussSNR) > 3 {
			t.Errorf("CR %.0f: sparse %.2f dB vs Gaussian %.2f dB differ too much", p.CR, p.SparseSNR, p.GaussSNR)
		}
		// SNR decreases with CR.
		if i > 0 && p.SparseSNR > res.Points[i-1].SparseSNR+1.5 {
			t.Errorf("sparse SNR not decreasing: %.2f -> %.2f at CR %.0f", res.Points[i-1].SparseSNR, p.SparseSNR, p.CR)
		}
	}
	if res.Points[0].SparseSNR < 15 {
		t.Errorf("CR=50 SNR %.2f dB too low (paper ≈22 dB)", res.Points[0].SparseSNR)
	}
	if tab := res.Table(); len(tab.Rows) != len(res.Points) {
		t.Error("table rows mismatch")
	}
}

func TestFig6Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("long experiment")
	}
	res, err := Fig6(fastOpt())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 7 {
		t.Fatalf("expected 7 CR points, got %d", len(res.Points))
	}
	for i, p := range res.Points {
		// Fig. 6's claim: 32-bit ≡ 64-bit.
		if math.Abs(p.PRD32-p.PRD64) > 1+0.15*p.PRD64 {
			t.Errorf("CR %.0f: PRD32 %.2f vs PRD64 %.2f diverge", p.CR, p.PRD32, p.PRD64)
		}
		// PRD grows with CR overall.
		if i >= 2 && p.PRD64 < res.Points[i-2].PRD64-1 {
			t.Errorf("PRD not growing with CR at %.0f", p.CR)
		}
	}
	if tab := res.Table(); len(tab.Rows) != len(res.Points) {
		t.Error("table rows mismatch")
	}
}

func TestFig7Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("long experiment")
	}
	res, err := Fig7(fastOpt())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 5 {
		t.Fatalf("expected 5 CR points, got %d", len(res.Points))
	}
	for _, p := range res.Points {
		if !p.Deadline {
			t.Errorf("CR %.0f misses the 1 s budget (%.2f s)", p.CR, p.MeanTime.Seconds())
		}
		if p.MeanIterations < 300 || p.MeanIterations > 2000 {
			t.Errorf("CR %.0f: %.0f mean iterations outside the plausible band", p.CR, p.MeanIterations)
		}
	}
	// Iterations grow with CR (harder problems at fewer measurements).
	if res.Points[len(res.Points)-1].MeanIterations <= res.Points[0].MeanIterations {
		t.Error("iterations do not grow with CR")
	}
}

func TestEncoderSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("long experiment")
	}
	res, err := Encoder(Options{Records: []string{"100"}, SecondsPerRecord: 8})
	if err != nil {
		t.Fatal(err)
	}
	var at12 *EncoderRow
	for i := range res.Rows {
		if res.Rows[i].D == 12 {
			at12 = &res.Rows[i]
		}
	}
	if at12 == nil {
		t.Fatal("d=12 missing from sweep")
	}
	// Paper: 82 ms at d=12.
	if ms := at12.Latency.Seconds() * 1000; ms < 70 || ms > 95 {
		t.Errorf("d=12 latency %.1f ms, want ≈82", ms)
	}
	// Latency monotone in d.
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i].Latency <= res.Rows[i-1].Latency {
			t.Error("latency not monotone in d")
		}
	}
}

func TestMemoryAndSpeedup(t *testing.T) {
	mem, err := Memory()
	if err != nil {
		t.Fatal(err)
	}
	if ram := mem.Mem.RAMTotal(); ram < 6000 || ram > 7200 {
		t.Errorf("RAM %d B, want ≈6.5 kB", ram)
	}
	sp, err := Speedup()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sp.Speedup-2.43) > 0.01 {
		t.Errorf("speedup %.3f, want 2.43", sp.Speedup)
	}
	if sp.VFPBudget < 700 || sp.VFPBudget > 950 || sp.NEONBudget < 1800 || sp.NEONBudget > 2300 {
		t.Errorf("budgets %d/%d, want ≈800/2000", sp.VFPBudget, sp.NEONBudget)
	}
}

func TestCPUAndLifetime(t *testing.T) {
	if testing.Short() {
		t.Skip("long experiment")
	}
	cpu, err := CPU(Options{Records: []string{"100"}, SecondsPerRecord: 10})
	if err != nil {
		t.Fatal(err)
	}
	if cpu.MoteCPU >= 0.05 {
		t.Errorf("mote CPU %.3f, want < 5%%", cpu.MoteCPU)
	}
	if cpu.CoordinatorCPU <= 0.05 || cpu.CoordinatorCPU >= 0.35 {
		t.Errorf("coordinator CPU %.3f, want ≈0.18", cpu.CoordinatorCPU)
	}
	lt, err := Lifetime(Options{Records: []string{"100"}, SecondsPerRecord: 10})
	if err != nil {
		t.Fatal(err)
	}
	var at50 *LifetimeRow
	for i := range lt.Rows {
		if lt.Rows[i].CR == 50 {
			at50 = &lt.Rows[i]
		}
	}
	if at50 == nil {
		t.Fatal("CR=50 missing")
	}
	if at50.Extension < 0.08 || at50.Extension > 0.18 {
		t.Errorf("CR=50 lifetime extension %.3f, paper 0.129", at50.Extension)
	}
	// Extension grows with CR.
	for i := 1; i < len(lt.Rows); i++ {
		if lt.Rows[i].Extension <= lt.Rows[i-1].Extension {
			t.Error("extension not monotone in CR")
		}
	}
}

func TestConvergenceShape(t *testing.T) {
	if testing.Short() {
		t.Skip("long experiment")
	}
	res, err := Convergence(Options{Records: []string{"100"}, SecondsPerRecord: 8})
	if err != nil {
		t.Fatal(err)
	}
	// FISTA gap must shrink much faster: at k=100 the ISTA/FISTA gap
	// ratio should exceed 2.
	for i, k := range res.Checkpoints {
		if k == 100 {
			if res.FISTAGap[i] <= 0 {
				break // already converged: even stronger
			}
			if res.ISTAGap[i]/res.FISTAGap[i] < 2 {
				t.Errorf("at k=100 ISTA/FISTA gap ratio %.2f, want > 2", res.ISTAGap[i]/res.FISTAGap[i])
			}
		}
	}
	// ISTA objective never below FISTA's floor trajectory at the end.
	last := len(res.Checkpoints) - 1
	if res.ISTAGap[last] < 0 {
		t.Error("negative ISTA gap (F* wrong)")
	}
}

func TestDiagnosticShape(t *testing.T) {
	if testing.Short() {
		t.Skip("long experiment")
	}
	res, err := Diagnostic(Options{Records: []string{"106"}, SecondsPerRecord: 16})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("expected 4 CR rows, got %d", len(res.Rows))
	}
	// At moderate CR the reconstruction's F1 must match the original's.
	low := res.Rows[0]
	if low.Reconstructed.F1() < low.Original.F1()-0.05 {
		t.Errorf("CR %.0f: recon F1 %.3f well below original %.3f",
			low.CR, low.Reconstructed.F1(), low.Original.F1())
	}
	// Quality degrades monotonically-ish: the highest CR must not beat
	// the lowest.
	hi := res.Rows[len(res.Rows)-1]
	if hi.Reconstructed.F1() > low.Reconstructed.F1()+0.02 {
		t.Errorf("F1 improved from CR %.0f (%.3f) to CR %.0f (%.3f)",
			low.CR, low.Reconstructed.F1(), hi.CR, hi.Reconstructed.F1())
	}
	if tab := res.Table(); len(tab.Rows) != 4 {
		t.Error("table rows mismatch")
	}
}

func TestBasisAblationShape(t *testing.T) {
	if testing.Short() {
		t.Skip("long experiment")
	}
	res, err := BasisAblation(Options{Records: []string{"100", "208"}, SecondsPerRecord: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("expected 2 rows, got %d", len(res.Rows))
	}
	wav, dctRow := res.Rows[0], res.Rows[1]
	if wav.Name != "wavelet" || dctRow.Name != "DCT" {
		t.Fatalf("unexpected row order: %s, %s", wav.Name, dctRow.Name)
	}
	if dctRow.MACsPerApply <= 10*wav.MACsPerApply {
		t.Errorf("DCT MACs %d not ≫ wavelet %d", dctRow.MACsPerApply, wav.MACsPerApply)
	}
	if dctRow.RealTimeBudget >= wav.RealTimeBudget {
		t.Error("DCT budget not below wavelet budget")
	}
	if wav.MeanPRDN >= dctRow.MeanPRDN {
		t.Errorf("wavelet PRDN %.2f not better than DCT %.2f", wav.MeanPRDN, dctRow.MeanPRDN)
	}
}

func TestTableCSV(t *testing.T) {
	tab := &Table{
		Title:  "T",
		Note:   "n",
		Header: []string{"a", "b"},
		Rows:   [][]string{{"1,x", "2"}},
	}
	out := tab.CSV()
	for _, want := range []string{"# T\n", "# n\n", "a,b\n", "\"1,x\",2\n"} {
		if !strings.Contains(out, want) {
			t.Errorf("CSV missing %q:\n%s", want, out)
		}
	}
}

func TestResilienceShape(t *testing.T) {
	if testing.Short() {
		t.Skip("long experiment")
	}
	res, err := Resilience(Options{Records: []string{"100"}, SecondsPerRecord: 30})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 9 {
		t.Fatalf("expected 9 rows, got %d", len(res.Rows))
	}
	byKey := map[int]map[float64]ResilienceRow{}
	for _, row := range res.Rows {
		if byKey[row.KeyInterval] == nil {
			byKey[row.KeyInterval] = map[float64]ResilienceRow{}
		}
		byKey[row.KeyInterval][row.LossPct] = row
	}
	for key, rows := range byKey {
		if c := rows[0].Coverage; c != 1 {
			t.Errorf("interval %d: lossless coverage %v, want 1", key, c)
		}
		if rows[15].Coverage > rows[0].Coverage {
			t.Errorf("interval %d: coverage improved under loss", key)
		}
	}
	// Short intervals must cover more under heavy loss than long ones.
	if byKey[8][15].Coverage <= byKey[64][15].Coverage {
		t.Errorf("interval 8 coverage %.2f not above interval 64 %.2f at 15%% loss",
			byKey[8][15].Coverage, byKey[64][15].Coverage)
	}
	// Long intervals must compress better.
	if byKey[64][0].WireCR <= byKey[8][0].WireCR {
		t.Errorf("interval 64 CR %.1f not above interval 8 %.1f", byKey[64][0].WireCR, byKey[8][0].WireCR)
	}
}

func TestTransportShape(t *testing.T) {
	if testing.Short() {
		t.Skip("long experiment")
	}
	res, err := Transport(Options{Records: []string{"100"}, SecondsPerRecord: 30})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 6 {
		t.Fatalf("expected 6 rows, got %d", len(res.Rows))
	}
	for i := 0; i < len(res.Rows); i += 2 {
		base, nack := res.Rows[i], res.Rows[i+1]
		if base.Mode != "wait-for-key" || nack.Mode != "nack" {
			t.Fatalf("row pair %d modes (%s, %s)", i, base.Mode, nack.Mode)
		}
		if nack.Coverage <= base.Coverage {
			t.Errorf("loss %.1f%%: NACK coverage %.2f not above baseline %.2f",
				base.MeanLossPct, nack.Coverage, base.Coverage)
		}
		if nack.Retransmits == 0 {
			t.Errorf("loss %.1f%%: no retransmits served", base.MeanLossPct)
		}
		if base.Retransmits != 0 {
			t.Errorf("baseline served %d retransmits without a control channel", base.Retransmits)
		}
		if nack.AirtimeMs <= base.AirtimeMs {
			t.Errorf("loss %.1f%%: retransmission airtime not accounted", base.MeanLossPct)
		}
	}
	table := res.Table()
	if len(table.Rows) != 6 || len(table.Header) != len(table.Rows[0]) {
		t.Errorf("table shape: %d rows, %d header cols", len(table.Rows), len(table.Header))
	}
}

func TestHolterReportShape(t *testing.T) {
	if testing.Short() {
		t.Skip("long experiment")
	}
	res, err := HolterReport(Options{Records: []string{"106"}, SecondsPerRecord: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("expected 4 rows, got %d", len(res.Rows))
	}
	// Report-level fidelity at the paper's operating point (CR 50) must
	// be essentially exact; the highest CR must be clearly worse.
	var at50, at85 float64 = -1, -1
	for _, row := range res.Rows {
		if row.CR == 50 {
			at50 = row.WorstRelErr
		}
		if row.CR == 85 {
			at85 = row.WorstRelErr
		}
	}
	if at50 < 0 || at50 > 0.05 {
		t.Errorf("CR 50 report error %.3f, want < 0.05", at50)
	}
	if at85 < at50*2 {
		t.Errorf("CR 85 error %.3f not clearly worse than CR 50 %.3f", at85, at50)
	}
}

func TestWindows256RejectsZeroN(t *testing.T) {
	if _, err := windows256("100", 10, 0); err == nil {
		t.Error("zero window length accepted (would loop forever)")
	}
}

func TestAnalogShape(t *testing.T) {
	if testing.Short() {
		t.Skip("long experiment")
	}
	res, err := Analog(Options{Records: []string{"100"}, SecondsPerRecord: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("expected 4 rows, got %d", len(res.Rows))
	}
	digital, ideal, degraded, calibrated := res.Rows[0], res.Rows[1], res.Rows[2], res.Rows[3]
	if math.Abs(digital.MeanSNR-ideal.MeanSNR) > 4 {
		t.Errorf("ideal analog %.1f dB far from digital %.1f dB", ideal.MeanSNR, digital.MeanSNR)
	}
	if degraded.MeanSNR >= ideal.MeanSNR-3 {
		t.Errorf("degraded front end (%.1f dB) not clearly below ideal (%.1f dB)", degraded.MeanSNR, ideal.MeanSNR)
	}
	if calibrated.MeanSNR <= degraded.MeanSNR+3 {
		t.Errorf("calibration (%.1f dB) did not recover the degraded front end (%.1f dB)", calibrated.MeanSNR, degraded.MeanSNR)
	}
}

func TestBaselineShape(t *testing.T) {
	if testing.Short() {
		t.Skip("long experiment")
	}
	res, err := Baseline(Options{Records: []string{"100", "208"}, SecondsPerRecord: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("expected 4 rows, got %d", len(res.Rows))
	}
	// At each budget: DWT thresholding beats CS on PRDN; CS uses less
	// working RAM.
	for i := 0; i < len(res.Rows); i += 2 {
		cs, dwt := res.Rows[i], res.Rows[i+1]
		if dwt.MeanPRDN >= cs.MeanPRDN {
			t.Errorf("budget %.0f: DWT PRDN %.2f not better than CS %.2f", cs.BudgetCR, dwt.MeanPRDN, cs.MeanPRDN)
		}
		if cs.EncoderRAM >= dwt.EncoderRAM {
			t.Errorf("budget %.0f: CS RAM %d not below DWT %d", cs.BudgetCR, cs.EncoderRAM, dwt.EncoderRAM)
		}
		if cs.EncoderCycles <= 0 || dwt.EncoderCycles <= 0 {
			t.Error("non-positive cycle estimates")
		}
	}
}

func TestAblations(t *testing.T) {
	if testing.Short() {
		t.Skip("long experiment")
	}
	wa, err := WaveletAblation(Options{Records: []string{"100", "208"}, SecondsPerRecord: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(wa.Rows) < 4 {
		t.Error("wavelet ablation too small")
	}
	// Haar must not beat db4 at equal depth (smoothness matters).
	var haar, db4 float64
	for _, r := range wa.Rows {
		if r.Order == 1 && r.Levels == 5 {
			haar = r.MeanPRDN
		}
		if r.Order == 4 && r.Levels == 5 {
			db4 = r.MeanPRDN
		}
	}
	if haar < db4-0.5 {
		t.Errorf("Haar (%.2f) materially beats db4 (%.2f), unexpected", haar, db4)
	}

	sa, err := SolverAblation(Options{Records: []string{"100"}, SecondsPerRecord: 8})
	if err != nil {
		t.Fatal(err)
	}
	var fista, ista float64
	for _, r := range sa.Rows {
		if strings.HasPrefix(r.Name, "FISTA") {
			fista = r.MeanPRDN
		}
		if r.Name == "ISTA" {
			ista = r.MeanPRDN
		}
	}
	if fista >= ista {
		t.Errorf("FISTA PRDN %.2f not better than ISTA %.2f at equal budget", fista, ista)
	}

	ra, err := RedundancyAblation(Options{Records: []string{"100"}, SecondsPerRecord: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(ra.Rows) != 2 {
		t.Fatal("redundancy ablation rows")
	}
	if ra.Rows[0].WireCR <= ra.Rows[1].WireCR {
		t.Errorf("Δ+Huffman CR %.1f not above raw-measurement CR %.1f", ra.Rows[0].WireCR, ra.Rows[1].WireCR)
	}

	sh, err := ShiftAblation(Options{Records: []string{"100", "208"}, SecondsPerRecord: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(sh.Rows) != 7 {
		t.Fatalf("shift ablation rows %d", len(sh.Rows))
	}
	// Wire CR must grow with shift; quality must degrade at the largest
	// shifts.
	for i := 1; i < len(sh.Rows); i++ {
		if sh.Rows[i].WireCR <= sh.Rows[i-1].WireCR {
			t.Errorf("wire CR not increasing at shift %d", sh.Rows[i].Shift)
		}
	}
	if sh.Rows[len(sh.Rows)-1].MeanPRDN <= sh.Rows[2].MeanPRDN+1 {
		t.Error("largest shift did not degrade quality")
	}

	ha, err := HuffmanAblation()
	if err != nil {
		t.Fatal(err)
	}
	limited, unlimited := ha.Rows[0], ha.Rows[1]
	if limited.MaxLen > 16 {
		t.Error("limited codebook exceeds 16 bits")
	}
	if limited.AvgBits > unlimited.AvgBits+0.05 {
		t.Errorf("length limit costs %.3f bits/symbol, should be ≈0", limited.AvgBits-unlimited.AvgBits)
	}
}

func TestChaosShape(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos matrix is exercised in internal/chaos under -short")
	}
	r, err := Chaos(true)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) < 7 {
		t.Fatalf("chaos matrix has %d scenarios, want ≥7", len(r.Rows))
	}
	if fails := r.Failures(); len(fails) != 0 {
		t.Fatalf("survival contract violated: %v", fails)
	}
	tab := r.Table()
	if len(tab.Rows) != len(r.Rows) {
		t.Fatalf("table rows %d != scenarios %d", len(tab.Rows), len(r.Rows))
	}
	for _, row := range tab.Rows {
		if len(row) != len(tab.Header) {
			t.Fatalf("ragged table row: %v", row)
		}
		if row[len(row)-1] != "survived" {
			t.Fatalf("scenario %s verdict %q", row[0], row[len(row)-1])
		}
	}
}
