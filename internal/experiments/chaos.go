package experiments

import (
	"fmt"
	"time"

	"csecg/internal/chaos"
)

// ChaosRow is one scenario's survival outcome.
type ChaosRow struct {
	Report *chaos.Report
	// QueueLimit is the bound the admission queue was held to.
	QueueLimit int
	// Violation is empty when the scenario was survived, else the
	// first contract breach.
	Violation string
}

// ChaosResult is the survival-layer acceptance matrix: every fault
// cocktail the coordinator must degrade through without dying.
type ChaosResult struct {
	Short bool
	Rows  []ChaosRow
}

// Failures lists the scenarios that broke the survival contract.
func (r *ChaosResult) Failures() []string {
	var out []string
	for _, row := range r.Rows {
		if row.Violation != "" {
			out = append(out, row.Violation)
		}
	}
	return out
}

// Chaos runs the survival matrix — bit flips, burst loss, mote reboot,
// CPU slowdown under burst arrival, decode panics, clock drift, and
// the kitchen sink — and judges each run on the contract: zero escaped
// panics, bounded queue, p99 decode within the packet period, health
// back to decoding. Short mode shrinks the sessions for CI smoke.
func Chaos(short bool) (*ChaosResult, error) {
	res := &ChaosResult{Short: short}
	for _, sc := range chaos.Matrix(short) {
		rep, err := chaos.Run(sc)
		if err != nil {
			return nil, fmt.Errorf("experiments: chaos scenario %s: %w", sc.Name, err)
		}
		limit := sc.QueueLimit
		if limit == 0 {
			limit = 8 // the runner's default bound
		}
		row := ChaosRow{Report: rep, QueueLimit: limit}
		if err := rep.Survived(limit); err != nil {
			row.Violation = err.Error()
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Table renders the matrix.
func (r *ChaosResult) Table() *Table {
	t := &Table{
		Title: "Extension — chaos matrix: coordinator survival under faults",
		Note:  "contract: zero escaped panics, bounded queue, p99 decode within the packet period, health back to decoding",
		Header: []string{"scenario", "windows", "decoded", "degraded", "crc-rej",
			"shed", "q-peak", "panics", "reboots", "p99 (ms)", "max rung", "health", "verdict"},
	}
	for _, row := range r.Rows {
		rep := row.Report
		verdict := "survived"
		if row.Violation != "" {
			verdict = "FAILED"
		}
		t.Rows = append(t.Rows, []string{
			rep.Scenario,
			fmt.Sprintf("%d", rep.Windows),
			fmt.Sprintf("%d", rep.Decoded),
			fmt.Sprintf("%d", rep.DegradedWindows),
			fmt.Sprintf("%d", rep.CRCRejected),
			fmt.Sprintf("%d", rep.Shed),
			fmt.Sprintf("%d/%d", rep.QueuePeak, row.QueueLimit),
			fmt.Sprintf("%d", rep.ContainedPanics),
			fmt.Sprintf("%d", rep.Reboots),
			f1(float64(rep.P99DecodeNs) / float64(time.Millisecond)),
			rep.MaxRung.String(),
			rep.FinalHealth.String(),
			verdict,
		})
	}
	return t
}
