package experiments

import (
	"fmt"
	"io"
	"time"

	"csecg/internal/blackbox"
	"csecg/internal/chaos"
	"csecg/internal/telemetry"
)

// ChaosRow is one scenario's survival outcome.
type ChaosRow struct {
	Report *chaos.Report
	// QueueLimit is the bound the admission queue was held to.
	QueueLimit int
	// Violation is empty when the scenario was survived, else the
	// first contract breach.
	Violation string
	// Bundles lists the diagnostics bundles the scenario sealed (only
	// with recording enabled).
	Bundles []string
}

// ChaosResult is the survival-layer acceptance matrix: every fault
// cocktail the coordinator must degrade through without dying.
type ChaosResult struct {
	Short bool
	Rows  []ChaosRow
	// Traces holds every scenario's retained causal span trees (only
	// when tracing was requested) — csecg-triage's input.
	Traces []telemetry.TraceRecord
}

// Failures lists the scenarios that broke the survival contract.
func (r *ChaosResult) Failures() []string {
	var out []string
	for _, row := range r.Rows {
		if row.Violation != "" {
			out = append(out, row.Violation)
		}
	}
	return out
}

// Chaos runs the survival matrix — bit flips, burst loss, mote reboot,
// CPU slowdown under burst arrival, decode panics, clock drift, and
// the kitchen sink — and judges each run on the contract: zero escaped
// panics, bounded queue, p99 decode within the packet period, health
// back to decoding. Short mode shrinks the sessions for CI smoke.
func Chaos(short bool) (*ChaosResult, error) { return ChaosRecorded(short, "") }

// ChaosRecorded is Chaos with the black-box flight recorder attached:
// when recordDir is non-empty every scenario records its session, a
// contract violation seals a diagnostics bundle naming the breach, and
// scenarios that triggered nothing seal one end-of-run bundle anyway —
// so a chaos run always leaves replayable evidence behind.
func ChaosRecorded(short bool, recordDir string) (*ChaosResult, error) {
	return ChaosTraced(short, recordDir, false)
}

// ChaosTraced is ChaosRecorded with causal span tracing: every scenario
// runs with a CausalTracer retaining all finished trees, and the
// result carries the combined trace records for csecg-triage — the
// pipeline behind `make triage-smoke`.
func ChaosTraced(short bool, recordDir string, traced bool) (*ChaosResult, error) {
	res := &ChaosResult{Short: short}
	for _, sc := range chaos.Matrix(short) {
		if recordDir != "" {
			sc.Record = &blackbox.Config{Sink: blackbox.DirSink(recordDir)}
		}
		var spans *telemetry.CausalTracer
		if traced {
			spans = telemetry.NewCausalTracer(telemetry.CausalConfig{
				Label:           "chaos " + sc.Name,
				RetainAnomalous: 512,
				RetainAll:       true,
			})
			sc.Spans = spans
		}
		rep, err := chaos.Run(sc)
		if err != nil {
			return nil, fmt.Errorf("experiments: chaos scenario %s: %w", sc.Name, err)
		}
		limit := sc.QueueLimit
		if limit == 0 {
			limit = 8 // the runner's default bound
		}
		row := ChaosRow{Report: rep, QueueLimit: limit}
		if err := rep.Survived(limit); err != nil {
			row.Violation = err.Error()
			if rep.Recorder != nil {
				//csecg:errok the seal error is retained in the recorder
				rep.Recorder.SealNow(blackbox.TriggerChaosViolation, err.Error())
			}
		}
		if rep.Recorder != nil {
			if len(rep.Recorder.Bundles()) == 0 {
				//csecg:errok the seal error is retained in the recorder
				rep.Recorder.SealNow(blackbox.TriggerManual, "end-of-scenario capture")
			}
			row.Bundles = rep.Recorder.Bundles()
			if err := rep.Recorder.SealErr(); err != nil {
				return nil, fmt.Errorf("experiments: chaos scenario %s: sealing bundle: %w", sc.Name, err)
			}
		}
		if spans != nil {
			res.Traces = append(res.Traces, spans.Records()...)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// WriteTraces writes the run's combined span trees as trace JSONL.
func (r *ChaosResult) WriteTraces(w io.Writer) error {
	return telemetry.WriteTraceRecords(w, r.Traces)
}

// Table renders the matrix.
func (r *ChaosResult) Table() *Table {
	t := &Table{
		Title: "Extension — chaos matrix: coordinator survival under faults",
		Note:  "contract: zero escaped panics, bounded queue, p99 decode within the packet period, health back to decoding",
		Header: []string{"scenario", "windows", "decoded", "degraded", "crc-rej",
			"shed", "q-peak", "panics", "reboots", "p99 (ms)", "max rung", "health", "verdict"},
	}
	for _, row := range r.Rows {
		rep := row.Report
		verdict := "survived"
		if row.Violation != "" {
			verdict = "FAILED"
		}
		t.Rows = append(t.Rows, []string{
			rep.Scenario,
			fmt.Sprintf("%d", rep.Windows),
			fmt.Sprintf("%d", rep.Decoded),
			fmt.Sprintf("%d", rep.DegradedWindows),
			fmt.Sprintf("%d", rep.CRCRejected),
			fmt.Sprintf("%d", rep.Shed),
			fmt.Sprintf("%d/%d", rep.QueuePeak, row.QueueLimit),
			fmt.Sprintf("%d", rep.ContainedPanics),
			fmt.Sprintf("%d", rep.Reboots),
			f1(float64(rep.P99DecodeNs) / float64(time.Millisecond)),
			rep.MaxRung.String(),
			rep.FinalHealth.String(),
			verdict,
		})
	}
	return t
}
