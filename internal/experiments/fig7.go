package experiments

import (
	"time"

	"csecg/internal/coordinator"
	"csecg/internal/core"
	"csecg/internal/metrics"
)

// Fig7Point is one (CR, iterations, time) sample.
type Fig7Point struct {
	CR             float64
	MeanIterations float64
	MeanTime       time.Duration
	Deadline       bool
}

// Fig7Result reproduces Fig. 7: average FISTA iteration count and
// average reconstruction time per 2-second packet on the NEON-optimized
// coordinator, across compression ratios.
type Fig7Result struct {
	Points []Fig7Point
}

// Fig7 runs the experiment on the real pipeline with the modeled
// Cortex-A8 clock. The paper reads 600-900 iterations and 0.34-0.46 s
// per packet over CR 30-70, all inside the 1-second real-time budget.
func Fig7(opt Options) (*Fig7Result, error) {
	opt = opt.withDefaults()
	res := &Fig7Result{}
	for cr := 30.0; cr <= 70.0; cr += 10 {
		p := core.Params{Seed: 0x0F17, M: metrics.MForCR(cr, core.WindowSize)}
		type recordCost struct {
			iters   int64
			modeled time.Duration
			count   int64
		}
		results, err := forEachRecord(opt.Records, func(id string) (recordCost, error) {
			var acc recordCost
			enc, err := core.NewEncoder(p)
			if err != nil {
				return acc, err
			}
			dec, err := coordinator.NewRealTimeDecoder(p, coordinator.NEON)
			if err != nil {
				return acc, err
			}
			wins, err := windows256(id, opt.SecondsPerRecord, enc.Params().N)
			if err != nil {
				return acc, err
			}
			for _, win := range wins {
				pkt, err := enc.EncodeWindow(win)
				if err != nil {
					return acc, err
				}
				out, err := dec.Decode(pkt)
				if err != nil {
					return acc, err
				}
				acc.iters += int64(out.Iterations)
				acc.modeled += out.ModeledTime
				acc.count++
			}
			return acc, nil
		})
		if err != nil {
			return nil, err
		}
		var iters, count int64
		var modeled time.Duration
		for _, r := range results {
			iters += r.iters
			modeled += r.modeled
			count += r.count
		}
		mean := float64(iters) / float64(count)
		meanTime := modeled / time.Duration(count)
		res.Points = append(res.Points, Fig7Point{
			CR:             cr,
			MeanIterations: mean,
			MeanTime:       meanTime,
			Deadline:       meanTime.Seconds() <= coordinator.RealTimeBudgetSeconds,
		})
	}
	return res, nil
}

// Table renders the result.
func (r *Fig7Result) Table() *Table {
	t := &Table{
		Title:  "Fig. 7 — Mean FISTA iterations and reconstruction time per 2 s packet vs CR",
		Note:   "NEON-optimized decoder, modeled Cortex-A8 @ 600 MHz; budget 1 s per packet",
		Header: []string{"CR (%)", "iterations", "time (s)", "within budget"},
	}
	for _, p := range r.Points {
		ok := "yes"
		if !p.Deadline {
			ok = "NO"
		}
		t.Rows = append(t.Rows, []string{
			f1(p.CR), f1(p.MeanIterations), f2(p.MeanTime.Seconds()), ok,
		})
	}
	return t
}
