package experiments

import (
	"csecg/internal/core"
	"csecg/internal/metrics"
)

// Fig6Point is one (CR, PRD) sample at both precisions.
type Fig6Point struct {
	CR               float64
	PRD64, PRD32     float64
	Qual64, Qual32   metrics.Quality
	WireCRPercentage float64
}

// Fig6Result reproduces Fig. 6: output PRD versus compression ratio for
// the float64 ("Matlab, 64-bit") and float32 ("iPhone, 32-bit") decoder
// builds running the full packet pipeline.
type Fig6Result struct {
	Points []Fig6Point
}

// Fig6 runs the experiment. The paper's claim: the 32-bit real-time
// implementation loses nothing against the 64-bit reference.
func Fig6(opt Options) (*Fig6Result, error) {
	opt = opt.withDefaults()
	res := &Fig6Result{}
	for cr := 30.0; cr <= 90.0; cr += 10 {
		p := core.Params{Seed: 0x0F16, M: metrics.MForCR(cr, core.WindowSize)}
		m64, wire, err := pipelinePRD[float64](opt, p)
		if err != nil {
			return nil, err
		}
		m32, _, err := pipelinePRD[float32](opt, p)
		if err != nil {
			return nil, err
		}
		res.Points = append(res.Points, Fig6Point{
			CR:    cr,
			PRD64: m64, PRD32: m32,
			Qual64: metrics.Classify(m64), Qual32: metrics.Classify(m32),
			WireCRPercentage: wire,
		})
	}
	return res, nil
}

// pipelinePRD runs the full encoder→decoder pipeline at one precision
// and returns the mean steady-state PRDN plus the achieved wire CR.
func pipelinePRD[T interface{ ~float32 | ~float64 }](opt Options, p core.Params) (float64, float64, error) {
	type recordStats struct {
		sum               float64
		count             int
		rawBits, compBits int
	}
	// Records run full encoder/decoder pairs independently; fan out.
	results, err := forEachRecord(opt.Records, func(id string) (recordStats, error) {
		var acc recordStats
		enc, err := core.NewEncoder(p)
		if err != nil {
			return acc, err
		}
		dec, err := core.NewDecoder[T](p)
		if err != nil {
			return acc, err
		}
		wins, err := windows256(id, opt.SecondsPerRecord, enc.Params().N)
		if err != nil {
			return acc, err
		}
		for wi, win := range wins {
			pkt, err := enc.EncodeWindow(win)
			if err != nil {
				return acc, err
			}
			acc.rawBits += enc.RawWindowBits()
			acc.compBits += pkt.WireSize() * 8
			out, err := dec.DecodePacket(pkt)
			if err != nil {
				return acc, err
			}
			if wi == 0 {
				continue // cold start not representative
			}
			orig := make([]float64, len(win))
			reco := make([]float64, len(win))
			for i := range win {
				orig[i] = float64(win[i])
				reco[i] = float64(out.Samples[i])
			}
			prdn, err := metrics.PRDN(orig, reco)
			if err != nil {
				return acc, err
			}
			acc.sum += prdn
			acc.count++
		}
		return acc, nil
	})
	if err != nil {
		return 0, 0, err
	}
	var total recordStats
	for _, r := range results {
		total.sum += r.sum
		total.count += r.count
		total.rawBits += r.rawBits
		total.compBits += r.compBits
	}
	return total.sum / float64(total.count), metrics.CR(total.rawBits, total.compBits), nil
}

// Table renders the result.
func (r *Fig6Result) Table() *Table {
	t := &Table{
		Title:  "Fig. 6 — Output PRD vs CR: float64 reference vs float32 real-time decoder",
		Note:   "full packet pipeline (measure→Δ→Huffman→decode→FISTA); PRD is mean-removed",
		Header: []string{"CS CR (%)", "wire CR (%)", "PRD 64-bit", "PRD 32-bit", "Δ", "quality"},
	}
	for _, p := range r.Points {
		t.Rows = append(t.Rows, []string{
			f1(p.CR), f1(p.WireCRPercentage), f2(p.PRD64), f2(p.PRD32),
			f2(p.PRD32 - p.PRD64), p.Qual32.String(),
		})
	}
	return t
}
