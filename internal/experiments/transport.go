package experiments

import (
	"fmt"

	"csecg"
	"csecg/internal/metrics"
	"csecg/internal/mote"
)

// TransportRow is one (burst severity, transport mode) operating point.
type TransportRow struct {
	// MeanLossPct is the channel's stationary loss rate.
	MeanLossPct float64
	// Mode is "wait-for-key" or "nack".
	Mode string
	// Coverage is the fraction of windows reconstructed.
	Coverage float64
	// Gaps and LongestOutage summarize the stall episodes; MeanRecovery
	// is the mean gap-recovery latency in windows.
	Gaps, LongestOutage int
	MeanRecovery        float64
	// Retransmits counts ring hits the mote served; AirtimeMs is the
	// radio-on time per window including retransmissions.
	Retransmits int64
	AirtimeMs   float64
	// Corrupted counts frames the checksum rejected; Resyncs the
	// key-frame resynchronizations after a gap.
	Corrupted int64
	Resyncs   int
}

// TransportResult compares the wait-for-key-frame baseline against
// NACK-driven resync across burst-loss severities.
type TransportResult struct {
	Rows []TransportRow
}

// Transport sweeps a Gilbert–Elliott burst channel from light to severe
// loss and runs each operating point twice: once riding out losses
// until the next scheduled key frame (the paper's implicit behavior
// over reliable Bluetooth) and once with the NACK/retransmission
// protocol and the mote's bounded ring.
func Transport(opt Options) (*TransportResult, error) {
	opt = opt.withDefaults()
	seconds := opt.SecondsPerRecord * 4
	if seconds < 120 {
		seconds = 120
	}
	channels := []csecg.BurstConfig{
		{PGoodBad: 0.02, PBadGood: 0.60}, // light: ~3% loss, short bursts
		{PGoodBad: 0.06, PBadGood: 0.50}, // moderate: ~11% loss
		{PGoodBad: 0.10, PBadGood: 0.30}, // severe: 25% loss, long bursts
	}
	res := &TransportResult{}
	for _, burst := range channels {
		b := burst
		for _, nack := range []bool{false, true} {
			cfg := csecg.StreamConfig{
				RecordID: opt.Records[0],
				Seconds:  seconds,
				Params: csecg.Params{
					Seed: 0x7A4,
					M:    metrics.MForCR(50, csecg.WindowSize),
				},
				Mode: csecg.ModeNEON,
			}
			cfg.Link = csecg.DefaultLinkConfig()
			cfg.Link.Burst = &b
			// A touch of post-CRC corruption keeps the checksum-reject
			// path visible in the table.
			cfg.Link.BitFlipProb = 0.0002
			cfg.Link.Seed = 0xC4A7
			cfg.Transport = csecg.TransportConfig{NACK: nack}
			cfg.RetransmitRing = mote.DefaultRetransmitRing
			mode := "wait-for-key"
			if nack {
				mode = "nack"
			}
			cfg.Metrics = opt.Metrics
			cfg.Trace = opt.Trace
			cfg.TraceLabel = fmt.Sprintf("transport %s, %.1f%% loss", mode, b.StationaryLoss()*100)
			rep, err := csecg.RunStream(cfg)
			if err != nil {
				return nil, err
			}
			res.Rows = append(res.Rows, TransportRow{
				MeanLossPct:   b.StationaryLoss() * 100,
				Mode:          mode,
				Coverage:      float64(rep.Decoded) / float64(rep.Windows),
				Gaps:          rep.Transport.Gaps,
				LongestOutage: rep.Transport.LongestOutage,
				MeanRecovery:  rep.Transport.MeanRecovery(),
				Retransmits:   rep.Retransmits,
				AirtimeMs:     rep.AirtimePerWindow.Seconds() * 1e3,
				Corrupted:     rep.LinkStats.Corrupted,
				Resyncs:       rep.Transport.Resyncs,
			})
		}
	}
	return res, nil
}

// Table renders the result.
func (r *TransportResult) Table() *Table {
	t := &Table{
		Title:  "Extension — fault-tolerant transport on a Gilbert–Elliott burst channel (CR=50)",
		Note:   "NACK resync buys coverage for retransmission airtime; the baseline waits for the scheduled key frame",
		Header: []string{"mean loss (%)", "mode", "coverage (%)", "gaps", "longest outage (win)", "mean recovery (win)", "retransmits", "corrupted", "resyncs", "airtime/win (ms)"},
	}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{
			f1(row.MeanLossPct), row.Mode,
			f1(row.Coverage * 100),
			fmt.Sprintf("%d", row.Gaps),
			fmt.Sprintf("%d", row.LongestOutage),
			f2(row.MeanRecovery),
			fmt.Sprintf("%d", row.Retransmits),
			fmt.Sprintf("%d", row.Corrupted),
			fmt.Sprintf("%d", row.Resyncs),
			f2(row.AirtimeMs),
		})
	}
	return t
}
