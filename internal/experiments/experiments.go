// Package experiments regenerates every table and figure of the paper's
// evaluation (Section V plus the embedded results of Section IV) on the
// substitute database. Each experiment returns both a structured result
// and a rendered text table; cmd/csecg-bench prints them and the
// repository-root benchmarks assert their shapes.
//
// The experiment index (paper figure → function) lives in DESIGN.md §4.
package experiments

import (
	"fmt"
	"runtime"
	"strings"
	"sync"

	"csecg"
	"csecg/internal/ecg"
)

// Table is a rendered experiment result.
type Table struct {
	// Title identifies the experiment ("Fig. 2 — ...").
	Title string
	// Note carries provenance or interpretation guidance.
	Note string
	// Header and Rows are the aligned text content.
	Header []string
	Rows   [][]string
}

// CSV formats the table as RFC-4180-style CSV (header row first); the
// title and note travel as "#"-prefixed comment lines.
func (t *Table) CSV() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s\n", t.Title)
	if t.Note != "" {
		fmt.Fprintf(&b, "# %s\n", t.Note)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			b.WriteString(c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// Render formats the table with aligned columns.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	if t.Note != "" {
		fmt.Fprintf(&b, "%s\n", t.Note)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	for _, row := range t.Rows {
		line(row)
	}
	return b.String()
}

// Options tunes how much data the experiments chew through. The defaults
// keep the full suite under a couple of minutes on a laptop; -all mode
// in csecg-bench raises them to the complete database.
type Options struct {
	// Records selects database record IDs (nil → a balanced 8-record
	// subset spanning clean, noisy and ectopy-rich rhythms).
	Records []string
	// SecondsPerRecord of signal per record (0 → 24 s = 12 windows).
	SecondsPerRecord float64
	// Metrics, when non-nil, attaches every streaming session the
	// experiment runs to the registry (csecg-bench -metrics).
	Metrics *csecg.Metrics
	// Trace, when non-nil, records window-lifecycle spans for every
	// streaming session (csecg-bench -trace/-events); each session gets
	// its own labeled track group.
	Trace *csecg.Tracer
}

func (o Options) withDefaults() Options {
	if len(o.Records) == 0 {
		o.Records = []string{"100", "103", "105", "119", "200", "208", "221", "232"}
	}
	if o.SecondsPerRecord == 0 {
		o.SecondsPerRecord = 24
	}
	return o
}

// AllRecords returns the IDs of the complete 48-record database.
func AllRecords() []string {
	db := ecg.Database()
	ids := make([]string, len(db))
	for i, r := range db {
		ids[i] = r.ID
	}
	return ids
}

// windows256 renders a record channel at the mote rate and slices it
// into encoder windows. n must be the *resolved* window length (a zero
// from un-defaulted Params would loop forever).
func windows256(id string, seconds float64, n int) ([][]int16, error) {
	if n <= 0 {
		return nil, fmt.Errorf("experiments: window length %d must be positive", n)
	}
	rec, err := ecg.RecordByID(id)
	if err != nil {
		return nil, err
	}
	samples, err := rec.Channel256(seconds, 0)
	if err != nil {
		return nil, err
	}
	var out [][]int16
	for o := 0; o+n <= len(samples); o += n {
		out = append(out, samples[o:o+n])
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("experiments: record %s too short for one window", id)
	}
	return out, nil
}

func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }

// forEachRecord runs fn once per record ID on a bounded worker pool and
// returns the per-record results in input order (deterministic
// regardless of scheduling). The first error wins.
func forEachRecord[R any](ids []string, fn func(id string) (R, error)) ([]R, error) {
	out := make([]R, len(ids))
	errs := make([]error, len(ids))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(ids) {
		workers = len(ids)
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				out[i], errs[i] = fn(ids[i])
			}
		}()
	}
	for i := range ids {
		next <- i
	}
	close(next)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
