package experiments

import (
	"csecg/internal/core"
	"csecg/internal/linalg"
	"csecg/internal/metrics"
	"csecg/internal/sensing"
	"csecg/internal/solver"
	"csecg/internal/wavelet"
)

// Fig2Point is one (CR, SNR) sample of a sensing-matrix family.
type Fig2Point struct {
	CR                  float64
	SparseSNR, GaussSNR float64
}

// Fig2Result reproduces Fig. 2: average output SNR versus compression
// ratio for sparse binary sensing (d = 12) against dense Gaussian
// sensing, both recovered with the float64 FISTA reference.
type Fig2Result struct {
	Points []Fig2Point
}

// Fig2 runs the experiment. The paper's claim: the two curves coincide —
// sparse binary sensing costs nothing in recovery quality while being
// integer-only and matrix-free on the mote.
func Fig2(opt Options) (*Fig2Result, error) {
	opt = opt.withDefaults()
	const n = core.WindowSize
	w, err := wavelet.New[float64](core.DefaultWaveletOrder, n, core.DefaultWaveletLevels)
	if err != nil {
		return nil, err
	}
	res := &Fig2Result{}
	for cr := 50.0; cr <= 80.0; cr += 5 {
		m := metrics.MForCR(cr, n)
		sparse, err := sensing.NewSparseBinaryLCG(m, n, core.DefaultColumnWeight, 0x5EED)
		if err != nil {
			return nil, err
		}
		gauss, err := sensing.NewGaussian[float64](m, n, 0xA0A0)
		if err != nil {
			return nil, err
		}
		sparseOp := sensing.Op[float64](sparse)
		gaussOp := linalg.OpFromDense(gauss)
		sSNR, err := meanRecoverySNR(opt, w, sparseOp, n, m)
		if err != nil {
			return nil, err
		}
		gSNR, err := meanRecoverySNR(opt, w, gaussOp, n, m)
		if err != nil {
			return nil, err
		}
		res.Points = append(res.Points, Fig2Point{CR: cr, SparseSNR: sSNR, GaussSNR: gSNR})
	}
	return res, nil
}

// meanRecoverySNR measures mean reconstruction SNR over the option's
// record windows for one sensing operator.
func meanRecoverySNR(opt Options, w *wavelet.Transform[float64], phi linalg.Op[float64], n, m int) (float64, error) {
	a := linalg.Compose(phi, w.SynthesisOp())
	lip := 2 * linalg.PowerIterOpNorm(a, 30)
	// Records are independent; fan them out over the CPU (the operator
	// closures are read-only and the solvers allocate their own state).
	type recordSNR struct {
		sum   float64
		count int
	}
	results, err := forEachRecord(opt.Records, func(id string) (recordSNR, error) {
		var acc recordSNR
		wins, err := windows256(id, opt.SecondsPerRecord, n)
		if err != nil {
			return acc, err
		}
		var warm []float64
		for _, win := range wins {
			x := make([]float64, n)
			for i, v := range win {
				x[i] = float64(v - core.ADCBaseline)
			}
			y := make([]float64, m)
			phi.Apply(y, x)
			sopt := solver.Options[float64]{MaxIter: 2400, Tol: 1e-5, Lipschitz: lip, X0: warm}
			var r solver.Result[float64]
			var err error
			if warm == nil {
				r, err = solver.FISTAContinuation(a, y, sopt, 6)
			} else {
				r, err = solver.FISTA(a, y, sopt)
			}
			if err != nil {
				return acc, err
			}
			warm = r.X
			xhat := make([]float64, n)
			w.Inverse(xhat, r.X)
			orig := make([]float64, n)
			reco := make([]float64, n)
			for i := range win {
				orig[i] = float64(win[i])
				reco[i] = xhat[i] + core.ADCBaseline
			}
			prdn, err := metrics.PRDN(orig, reco)
			if err != nil {
				return acc, err
			}
			acc.sum += metrics.SNR(prdn)
			acc.count++
		}
		return acc, nil
	})
	if err != nil {
		return 0, err
	}
	var sum float64
	var count int
	for _, r := range results {
		sum += r.sum
		count += r.count
	}
	return sum / float64(count), nil
}

// Table renders the result.
func (r *Fig2Result) Table() *Table {
	t := &Table{
		Title:  "Fig. 2 — Output SNR vs CR: sparse binary (d=12) vs Gaussian sensing",
		Note:   "float64 FISTA recovery; SNR from mean-removed PRD, averaged over records/windows",
		Header: []string{"CR (%)", "Sparse SNR (dB)", "Gaussian SNR (dB)", "Δ (dB)"},
	}
	for _, p := range r.Points {
		t.Rows = append(t.Rows, []string{
			f1(p.CR), f2(p.SparseSNR), f2(p.GaussSNR), f2(p.SparseSNR - p.GaussSNR),
		})
	}
	return t
}
