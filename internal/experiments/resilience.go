package experiments

import (
	"csecg/internal/core"
	"csecg/internal/link"
	"csecg/internal/metrics"
)

// ResilienceRow is one (loss rate, key-frame interval) operating point.
type ResilienceRow struct {
	LossPct     float64
	KeyInterval int
	// Coverage is the fraction of windows reconstructed.
	Coverage float64
	// MeanPRDN is the quality of the reconstructed windows.
	MeanPRDN float64
	// WireCR is the achieved compression (key frames cost rate).
	WireCR float64
}

// ResilienceResult sweeps packet loss against the key-frame interval:
// the interval trades compression (delta frames are ~2× smaller) against
// how long a loss blinds the decoder. The paper's system runs over
// Bluetooth (reliable link); this experiment covers the lossy-radio
// deployments the WBSN literature targets.
type ResilienceResult struct {
	Rows []ResilienceRow
}

// Resilience runs the sweep on one record. The stream must be long
// relative to the largest key-frame interval for stable coverage
// statistics, so at least 240 seconds (120 windows) are rendered
// regardless of the option's per-record duration.
func Resilience(opt Options) (*ResilienceResult, error) {
	opt = opt.withDefaults()
	seconds := opt.SecondsPerRecord * 4
	if seconds < 240 {
		seconds = 240
	}
	wins, err := windows256(opt.Records[0], seconds, core.WindowSize)
	if err != nil {
		return nil, err
	}
	res := &ResilienceResult{}
	for _, keyInt := range []int{8, 32, 64} {
		for _, loss := range []float64{0, 0.05, 0.15} {
			p := core.Params{Seed: 0x4E5, M: metrics.MForCR(50, core.WindowSize), KeyFrameInterval: keyInt}
			enc, err := core.NewEncoder(p)
			if err != nil {
				return nil, err
			}
			dec, err := core.NewDecoder[float32](p)
			if err != nil {
				return nil, err
			}
			cfg := link.DefaultConfig()
			cfg.DropProb = loss
			cfg.Seed = 0x1055
			lnk, err := link.New(cfg)
			if err != nil {
				return nil, err
			}
			var rawBits, compBits, decoded int
			var sumPRDN float64
			for _, win := range wins {
				pkt, err := enc.EncodeWindow(win)
				if err != nil {
					return nil, err
				}
				rawBits += enc.RawWindowBits()
				compBits += pkt.WireSize() * 8
				rx, _, err := lnk.TransmitPacket(pkt)
				if err != nil {
					return nil, err
				}
				if rx == nil {
					continue
				}
				out, err := dec.DecodePacket(rx)
				if err != nil {
					continue // desynced: waiting for a key frame
				}
				decoded++
				orig := make([]float64, len(win))
				reco := make([]float64, len(win))
				for i := range win {
					orig[i] = float64(win[i])
					reco[i] = float64(out.Samples[i])
				}
				if prdn, err := metrics.PRDN(orig, reco); err == nil {
					sumPRDN += prdn
				}
			}
			row := ResilienceRow{
				LossPct:     loss * 100,
				KeyInterval: keyInt,
				Coverage:    float64(decoded) / float64(len(wins)),
				WireCR:      metrics.CR(rawBits, compBits),
			}
			if decoded > 0 {
				row.MeanPRDN = sumPRDN / float64(decoded)
			}
			res.Rows = append(res.Rows, row)
		}
	}
	return res, nil
}

// Table renders the result.
func (r *ResilienceResult) Table() *Table {
	t := &Table{
		Title:  "Extension — packet loss vs key-frame interval (CR=50)",
		Note:   "short intervals recover faster from loss but spend rate on key frames",
		Header: []string{"loss (%)", "key interval", "coverage (%)", "mean PRDN (%)", "wire CR (%)"},
	}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{
			f1(row.LossPct), f1(float64(row.KeyInterval)),
			f1(row.Coverage * 100), f2(row.MeanPRDN), f1(row.WireCR),
		})
	}
	return t
}
