package experiments

import (
	"fmt"
	"time"

	"csecg/internal/coordinator"
	"csecg/internal/core"
	"csecg/internal/huffman"
	"csecg/internal/linalg"
	"csecg/internal/metrics"
	"csecg/internal/sensing"
	"csecg/internal/solver"
	"csecg/internal/wavelet"
)

// WaveletRow is one sparsifying-basis operating point.
type WaveletRow struct {
	Order, Levels int
	MeanPRDN      float64
}

// WaveletAblationResult sweeps the Daubechies order and decomposition
// depth of Ψ at CR = 50 (the paper fixes one orthonormal basis; this
// ablation shows the design space).
type WaveletAblationResult struct {
	Rows []WaveletRow
}

// WaveletAblation runs the sweep.
func WaveletAblation(opt Options) (*WaveletAblationResult, error) {
	opt = opt.withDefaults()
	res := &WaveletAblationResult{}
	cases := []struct{ order, levels int }{
		{1, 5}, {2, 5}, {4, 3}, {4, 5}, {6, 5}, {8, 4},
	}
	for _, c := range cases {
		p := core.Params{
			Seed: 0xAB, M: metrics.MForCR(50, core.WindowSize),
			WaveletOrder: c.order, WaveletLevels: c.levels,
		}
		prdn, _, err := pipelinePRD[float64](Options{Records: opt.Records[:2], SecondsPerRecord: opt.SecondsPerRecord}, p)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, WaveletRow{Order: c.order, Levels: c.levels, MeanPRDN: prdn})
	}
	return res, nil
}

// Table renders the result.
func (r *WaveletAblationResult) Table() *Table {
	t := &Table{
		Title:  "Ablation — sparsifying basis Ψ at CR=50",
		Note:   "Daubechies order / decomposition depth vs reconstruction quality",
		Header: []string{"wavelet", "levels", "mean PRDN (%)"},
	}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("db%d", row.Order), fmt.Sprintf("%d", row.Levels), f2(row.MeanPRDN),
		})
	}
	return t
}

// SolverRow compares recovery algorithms on the same measurement set.
type SolverRow struct {
	Name     string
	MeanPRDN float64
	MeanTime time.Duration
}

// SolverAblationResult compares FISTA against ISTA (same iteration
// budget) and greedy OMP, the alternatives Section I cites.
type SolverAblationResult struct {
	Rows []SolverRow
}

// SolverAblation runs the comparison at CR = 50 on host wall time.
func SolverAblation(opt Options) (*SolverAblationResult, error) {
	opt = opt.withDefaults()
	const n = core.WindowSize
	m := metrics.MForCR(50, n)
	w, err := wavelet.New[float64](core.DefaultWaveletOrder, n, core.DefaultWaveletLevels)
	if err != nil {
		return nil, err
	}
	phi, err := sensing.NewSparseBinaryLCG(m, n, core.DefaultColumnWeight, 0x50)
	if err != nil {
		return nil, err
	}
	phiOp := sensing.Op[float64](phi)
	a := linalg.Compose(phiOp, w.SynthesisOp())
	lip := 2 * linalg.PowerIterOpNorm(a, 30)

	wins, err := windows256(opt.Records[0], opt.SecondsPerRecord, n)
	if err != nil {
		return nil, err
	}
	type algo struct {
		name string
		run  func(y []float64) ([]float64, error)
	}
	const budget = 1500
	algos := []algo{
		{"FISTA (continuation)", func(y []float64) ([]float64, error) {
			r, err := solver.FISTAContinuation(a, y, solver.Options[float64]{MaxIter: budget, Tol: 1e-5, Lipschitz: lip}, 6)
			if err != nil {
				return nil, err
			}
			return r.X, nil
		}},
		{"ISTA", func(y []float64) ([]float64, error) {
			r, err := solver.ISTA(a, y, solver.Options[float64]{MaxIter: budget, Tol: 1e-5, Lipschitz: lip})
			if err != nil {
				return nil, err
			}
			return r.X, nil
		}},
		{"TwIST", func(y []float64) ([]float64, error) {
			r, err := solver.TwIST(a, y, solver.TwISTOptions[float64]{
				Options: solver.Options[float64]{MaxIter: budget, Tol: 1e-5, Lipschitz: lip},
			})
			if err != nil {
				return nil, err
			}
			return r.X, nil
		}},
		{"OMP (64 atoms)", func(y []float64) ([]float64, error) {
			r, err := solver.OMP(a, y, 64, 1e-4)
			if err != nil {
				return nil, err
			}
			return r.X, nil
		}},
	}
	res := &SolverAblationResult{}
	for _, al := range algos {
		var sum float64
		var count int
		start := time.Now() //csecg:nondet intentional wall-clock timing of the solver
		for _, win := range wins {
			x := make([]float64, n)
			for i, v := range win {
				x[i] = float64(v - core.ADCBaseline)
			}
			y := make([]float64, m)
			phiOp.Apply(y, x)
			alpha, err := al.run(y)
			if err != nil {
				return nil, err
			}
			xhat := make([]float64, n)
			w.Inverse(xhat, alpha)
			orig := make([]float64, n)
			reco := make([]float64, n)
			for i := range win {
				orig[i] = float64(win[i])
				reco[i] = xhat[i] + core.ADCBaseline
			}
			prdn, err := metrics.PRDN(orig, reco)
			if err != nil {
				return nil, err
			}
			sum += prdn
			count++
		}
		res.Rows = append(res.Rows, SolverRow{
			Name:     al.name,
			MeanPRDN: sum / float64(count),
			MeanTime: time.Since(start) / time.Duration(count),
		})
	}
	return res, nil
}

// Table renders the result.
func (r *SolverAblationResult) Table() *Table {
	t := &Table{
		Title:  "Ablation — recovery algorithm at CR=50 (equal iteration budget for the convex solvers)",
		Note:   "host wall time per window; the paper selects FISTA for its O(1/k²) rate",
		Header: []string{"algorithm", "mean PRDN (%)", "host time/window (ms)"},
	}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{
			row.Name, f2(row.MeanPRDN), f1(float64(row.MeanTime.Microseconds()) / 1000),
		})
	}
	return t
}

// BasisRow is one sparsifying-transform operating point.
type BasisRow struct {
	Name           string
	MeanPRDN       float64
	MACsPerApply   int64
	RealTimeBudget int
}

// BasisAblationResult compares the paper's wavelet Ψ against an
// orthonormal DCT at CR = 50. On ECG the wavelet wins on both axes:
// markedly better sparsity (lower PRDN) and ~17× fewer MACs per
// iteration, which is the quantitative argument for the paper's basis
// choice.
type BasisAblationResult struct {
	Rows []BasisRow
}

// BasisAblation runs the comparison.
func BasisAblation(opt Options) (*BasisAblationResult, error) {
	opt = opt.withDefaults()
	res := &BasisAblationResult{}
	costs := coordinator.DefaultCosts()
	for _, b := range []core.Basis{core.BasisWavelet, core.BasisDCT} {
		p := core.Params{Seed: 0xBA, M: metrics.MForCR(50, core.WindowSize), Basis: b}
		prdn, _, err := pipelinePRD[float64](Options{Records: opt.Records[:2], SecondsPerRecord: opt.SecondsPerRecord}, p)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, BasisRow{
			Name:           b.String(),
			MeanPRDN:       prdn,
			MACsPerApply:   coordinator.MACsPerIteration(p),
			RealTimeBudget: costs.IterationBudget(p, coordinator.NEON, coordinator.RealTimeBudgetSeconds),
		})
	}
	return res, nil
}

// Table renders the result.
func (r *BasisAblationResult) Table() *Table {
	t := &Table{
		Title:  "Ablation — sparsifying basis family at CR=50: wavelet vs DCT",
		Note:   "the wavelet wins on both quality and per-iteration cost",
		Header: []string{"basis", "mean PRDN (%)", "MACs/iteration", "NEON iters in 1 s"},
	}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{
			row.Name, f2(row.MeanPRDN),
			fmt.Sprintf("%d", row.MACsPerApply), fmt.Sprintf("%d", row.RealTimeBudget),
		})
	}
	return t
}

// RedundancyRow compares packet sizes with and without the difference
// stage.
type RedundancyRow struct {
	Mode       string
	WireCR     float64
	MeanPacket float64
}

// RedundancyAblationResult isolates the inter-packet redundancy-removal
// stage's contribution to the compression ratio.
type RedundancyAblationResult struct {
	Rows []RedundancyRow
}

// RedundancyAblation compares delta coding (key frame interval 64)
// against key-frame-only streaming (interval 1) at CR = 50.
func RedundancyAblation(opt Options) (*RedundancyAblationResult, error) {
	opt = opt.withDefaults()
	res := &RedundancyAblationResult{}
	for _, mode := range []struct {
		name     string
		interval int
	}{
		{"Δ + Huffman (interval 64)", 64},
		{"raw measurements only (interval 1)", 1},
	} {
		p := core.Params{Seed: 0x4D, M: metrics.MForCR(50, core.WindowSize), KeyFrameInterval: mode.interval}
		var rawBits, compBits, packets int
		for _, id := range opt.Records {
			enc, err := core.NewEncoder(p)
			if err != nil {
				return nil, err
			}
			wins, err := windows256(id, opt.SecondsPerRecord, enc.Params().N)
			if err != nil {
				return nil, err
			}
			for _, win := range wins {
				pkt, err := enc.EncodeWindow(win)
				if err != nil {
					return nil, err
				}
				rawBits += enc.RawWindowBits()
				compBits += pkt.WireSize() * 8
				packets++
			}
		}
		res.Rows = append(res.Rows, RedundancyRow{
			Mode:       mode.name,
			WireCR:     metrics.CR(rawBits, compBits),
			MeanPacket: float64(compBits) / 8 / float64(packets),
		})
	}
	return res, nil
}

// Table renders the result.
func (r *RedundancyAblationResult) Table() *Table {
	t := &Table{
		Title:  "Ablation — inter-packet redundancy removal at CS CR=50",
		Note:   "the Δ+Huffman stage is what lifts the wire CR above the CS stage's 50%",
		Header: []string{"encoder mode", "wire CR (%)", "mean packet (B)"},
	}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{row.Mode, f1(row.WireCR), f1(row.MeanPacket)})
	}
	return t
}

// ShiftRow is one measurement-quantization operating point.
type ShiftRow struct {
	Shift    int
	WireCR   float64
	MeanPRDN float64
}

// ShiftAblationResult sweeps the encoder's measurement LSB drop: more
// shift shrinks the difference symbols (better entropy coding) but adds
// quantization noise to the measurements. The default of 3 bits sits
// where the wire CR has most of its gain and the recovery error is
// still dominated by the CS undersampling, not the quantization.
type ShiftAblationResult struct {
	Rows []ShiftRow
}

// ShiftAblation runs the sweep at CR = 50.
func ShiftAblation(opt Options) (*ShiftAblationResult, error) {
	opt = opt.withDefaults()
	res := &ShiftAblationResult{}
	for _, shift := range []int{-1, 1, 2, 3, 4, 5, 6} { // -1 encodes "0"
		p := core.Params{
			Seed: 0x5F, M: metrics.MForCR(50, core.WindowSize),
			MeasurementShift: shift,
		}
		prdn, wire, err := pipelinePRD[float64](Options{Records: opt.Records[:2], SecondsPerRecord: opt.SecondsPerRecord}, p)
		if err != nil {
			return nil, err
		}
		s := shift
		if s < 0 {
			s = 0
		}
		res.Rows = append(res.Rows, ShiftRow{Shift: s, WireCR: wire, MeanPRDN: prdn})
	}
	return res, nil
}

// Table renders the result.
func (r *ShiftAblationResult) Table() *Table {
	t := &Table{
		Title:  "Ablation — measurement LSB drop at CS CR=50",
		Note:   "more shift compresses the difference symbols, at the cost of measurement quantization noise",
		Header: []string{"shift (bits)", "wire CR (%)", "mean PRDN (%)"},
	}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", row.Shift), f1(row.WireCR), f2(row.MeanPRDN),
		})
	}
	return t
}

// HuffmanRow compares codebook variants.
type HuffmanRow struct {
	Name        string
	MaxLen      int
	AvgBits     float64
	StorageByte int
}

// HuffmanAblationResult quantifies the cost of the 16-bit length limit
// the mote's storage format imposes.
type HuffmanAblationResult struct {
	Rows []HuffmanRow
}

// HuffmanAblation trains limited and effectively-unlimited codebooks on
// the model histogram and compares expected rates.
func HuffmanAblation() (*HuffmanAblationResult, error) {
	freq := core.DiffHistogramModel(20)
	res := &HuffmanAblationResult{}
	limited, err := huffman.Train(freq)
	if err != nil {
		return nil, err
	}
	res.Rows = append(res.Rows, HuffmanRow{
		Name: "length-limited (16-bit, mote format)", MaxLen: limited.MaxLen(),
		AvgBits: limited.ExpectedBits(freq), StorageByte: len(limited.Serialize()),
	})
	// Unlimited Huffman for comparison: package-merge with a depth cap
	// beyond any achievable depth is exactly Huffman-optimal.
	lengths, err := huffman.LengthLimitedCodeLengths(freq, 57)
	if err != nil {
		return nil, err
	}
	var avg float64
	var total int64
	for s, f := range freq {
		total += int64(f)
		avg += float64(f) * float64(lengths[s])
	}
	avg /= float64(total)
	maxLen := 0
	for _, l := range lengths {
		if l > maxLen {
			maxLen = l
		}
	}
	res.Rows = append(res.Rows, HuffmanRow{
		Name: "unconstrained Huffman", MaxLen: maxLen, AvgBits: avg,
		StorageByte: -1,
	})
	return res, nil
}

// Table renders the result.
func (r *HuffmanAblationResult) Table() *Table {
	t := &Table{
		Title:  "Ablation — 16-bit length-limited vs unconstrained Huffman on the difference model",
		Note:   "the hard limit costs almost nothing in rate and fixes the mote's 1.5 kB storage format",
		Header: []string{"codebook", "max codeword (bits)", "avg bits/symbol", "storage (B)"},
	}
	for _, row := range r.Rows {
		storage := "n/a"
		if row.StorageByte >= 0 {
			storage = fmt.Sprintf("%d", row.StorageByte)
		}
		t.Rows = append(t.Rows, []string{
			row.Name, fmt.Sprintf("%d", row.MaxLen), f2(row.AvgBits), storage,
		})
	}
	return t
}
