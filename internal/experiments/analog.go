package experiments

import (
	"csecg/internal/analogcs"
	"csecg/internal/core"
	"csecg/internal/ecg"
	"csecg/internal/linalg"
	"csecg/internal/metrics"
	"csecg/internal/sensing"
	"csecg/internal/solver"
	"csecg/internal/wavelet"
)

// AnalogRow is one front-end configuration.
type AnalogRow struct {
	Name    string
	MeanSNR float64
}

// AnalogResult compares digital CS (the paper's implementation) against
// the simulated analog CS front end (the paper's stated "ultimate
// goal") at matched M: an ideal RMPI, a degraded one (integrator
// leakage + input noise + 12-bit read-out), and the degraded one
// recovered with the leakage-calibrated operator.
type AnalogResult struct {
	Rows []AnalogRow
}

// Analog runs the comparison at CR = 50.
func Analog(opt Options) (*AnalogResult, error) {
	opt = opt.withDefaults()
	const n = core.WindowSize
	m := metrics.MForCR(50, n)
	w, err := wavelet.New[float64](core.DefaultWaveletOrder, n, core.DefaultWaveletLevels)
	if err != nil {
		return nil, err
	}
	// Collect windows once (zero-centered ADC units).
	var windows [][]float64
	for _, id := range opt.Records {
		wins, err := windows256(id, opt.SecondsPerRecord, n)
		if err != nil {
			return nil, err
		}
		for _, win := range wins {
			x := make([]float64, n)
			for i, v := range win {
				x[i] = float64(v) - ecg.ADCBaseline
			}
			windows = append(windows, x)
		}
	}
	recover := func(phi linalg.Op[float64], measure func(x []float64) ([]float64, error)) (float64, error) {
		a := linalg.Compose(phi, w.SynthesisOp())
		lip := 2 * linalg.PowerIterOpNorm(a, 30)
		var sum float64
		for _, x := range windows {
			y, err := measure(x)
			if err != nil {
				return 0, err
			}
			res, err := solver.FISTAContinuation(a, y, solver.Options[float64]{MaxIter: 2000, Tol: 1e-5, Lipschitz: lip}, 6)
			if err != nil {
				return 0, err
			}
			xhat := make([]float64, n)
			w.Inverse(xhat, res.X)
			prdn, err := metrics.PRDN(x, xhat)
			if err != nil {
				return 0, err
			}
			sum += metrics.SNR(prdn)
		}
		return sum / float64(len(windows)), nil
	}

	res := &AnalogResult{}
	// Digital CS baseline (the paper's implementation).
	sparse, err := sensing.NewSparseBinaryLCG(m, n, core.DefaultColumnWeight, 0xA11)
	if err != nil {
		return nil, err
	}
	sparseOp := sensing.Op[float64](sparse)
	snr, err := recover(sparseOp, func(x []float64) ([]float64, error) {
		y := make([]float64, m)
		sparseOp.Apply(y, x)
		return y, nil
	})
	if err != nil {
		return nil, err
	}
	res.Rows = append(res.Rows, AnalogRow{Name: "digital CS (sparse binary, post-ADC)", MeanSNR: snr})

	// Analog CS variants.
	type variant struct {
		name       string
		cfg        analogcs.Config
		compensate bool
	}
	base := analogcs.Config{M: m, N: n, Oversample: 8, ChipSeed: 0xA12, WindowSeconds: 2}
	degraded := base
	degraded.LeakagePerSecond = 0.5
	degraded.NoiseRMS = 10
	degraded.NoiseSeed = 0xA13
	degraded.ADCBits = 12
	degraded.FullScale = 4096
	for _, v := range []variant{
		{"analog CS (ideal RMPI, pre-ADC)", base, false},
		{"analog CS (leaky+noisy+12-bit ADC)", degraded, false},
		{"analog CS (degraded, calibrated decoder)", degraded, true},
	} {
		fe, err := analogcs.New(v.cfg)
		if err != nil {
			return nil, err
		}
		phi := fe.EffectiveMatrix()
		if v.compensate {
			phi = fe.CompensatedMatrix()
		}
		snr, err := recover(linalg.OpFromDense(phi), func(x []float64) ([]float64, error) {
			return fe.Measure(analogcs.Upsample(x, v.cfg.Oversample))
		})
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, AnalogRow{Name: v.name, MeanSNR: snr})
	}
	return res, nil
}

// Table renders the result.
func (r *AnalogResult) Table() *Table {
	t := &Table{
		Title:  "Extension — digital CS vs simulated analog CS front end (§II-A's 'ultimate goal', CR=50)",
		Note:   "RMPI: ±1 chipping × integrator × low-rate ADC; recovery via the discrete equivalent operator",
		Header: []string{"front end", "mean SNR (dB)"},
	}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{row.Name, f2(row.MeanSNR)})
	}
	return t
}
