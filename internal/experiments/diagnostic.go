package experiments

import (
	"fmt"

	"csecg/internal/core"
	"csecg/internal/dsp"
	"csecg/internal/ecg"
	"csecg/internal/metrics"
	"csecg/internal/qrs"
)

// DiagnosticRow is one CR operating point of the clinical-validity
// study.
type DiagnosticRow struct {
	CR float64
	// Original and Reconstructed are the beat-detection scores against
	// the generator's ground-truth annotations (±50 ms window).
	Original, Reconstructed qrs.MatchStats
	// OrigClass and ReconClass score PVC-vs-normal classification of
	// the detected beats.
	OrigClass, ReconClass qrs.ClassificationStats
	MeanPRDN              float64
}

// DiagnosticResult measures whether the *diagnostic content* survives
// compression: a Pan-Tompkins detector runs on the original 256 Hz
// signal and on the CS reconstruction, both scored against ground
// truth. The paper argues CS preserves "diagnostic quality"; this
// experiment quantifies it with the metric clinicians actually use.
type DiagnosticResult struct {
	Rows []DiagnosticRow
}

// Diagnostic sweeps CR over ectopy-rich records (detection on normal
// sinus rhythm is too easy to discriminate).
func Diagnostic(opt Options) (*DiagnosticResult, error) {
	opt = opt.withDefaults()
	det, err := qrs.NewDetector(core.FsMote)
	if err != nil {
		return nil, err
	}
	res := &DiagnosticResult{}
	for _, cr := range []float64{30, 50, 70, 85} {
		p := core.Params{Seed: 0xD1A6, M: metrics.MForCR(cr, core.WindowSize)}
		var row DiagnosticRow
		row.CR = cr
		var sumPRDN float64
		var prCount int
		for _, id := range opt.Records {
			rec, err := ecg.RecordByID(id)
			if err != nil {
				return nil, err
			}
			sig, err := rec.Synthesize(opt.SecondsPerRecord)
			if err != nil {
				return nil, err
			}
			// Ground truth at 256 Hz.
			var ref []int
			for _, a := range sig.Ann {
				ref = append(ref, int(a.Time*core.FsMote+0.5))
			}
			orig256 := dsp.Resample360To256(sig.MV[0])
			adc := ecg.Digitize(orig256)

			// Run the pipeline over whole windows.
			enc, err := core.NewEncoder(p)
			if err != nil {
				return nil, err
			}
			dec, err := core.NewDecoder[float32](p)
			if err != nil {
				return nil, err
			}
			n := enc.Params().N
			nWin := len(adc) / n
			recon := make([]float64, 0, nWin*n)
			origF := make([]float64, 0, nWin*n)
			for w := 0; w < nWin; w++ {
				win := adc[w*n : (w+1)*n]
				pkt, err := enc.EncodeWindow(win)
				if err != nil {
					return nil, err
				}
				out, err := dec.DecodePacket(pkt)
				if err != nil {
					return nil, err
				}
				for i := range win {
					origF = append(origF, float64(win[i]))
					recon = append(recon, float64(out.Samples[i]))
				}
			}
			if len(origF) == 0 {
				return nil, fmt.Errorf("experiments: record %s too short", id)
			}
			if prdn, err := metrics.PRDN(origF, recon); err == nil {
				sumPRDN += prdn
				prCount++
			}
			// Clip the reference to the processed span, keeping beat
			// labels aligned.
			var refClipped []int
			var refVent []bool
			for ai, a := range sig.Ann {
				r := ref[ai]
				if r < len(origF) {
					refClipped = append(refClipped, r)
					refVent = append(refVent, a.Type == ecg.PVC)
				}
			}
			tol := core.FsMote / 20 // ±50 ms
			origBeats := det.DetectBeats(origF)
			reconBeats := det.DetectBeats(recon)
			origDet := make([]int, len(origBeats))
			reconDet := make([]int, len(reconBeats))
			for i, b := range origBeats {
				origDet[i] = b.Sample
			}
			for i, b := range reconBeats {
				reconDet[i] = b.Sample
			}
			accumulate(&row.Original, qrs.Match(origDet, refClipped, tol))
			accumulate(&row.Reconstructed, qrs.Match(reconDet, refClipped, tol))
			accumulateClass(&row.OrigClass, qrs.ScoreClassification(origBeats, refClipped, refVent, tol))
			accumulateClass(&row.ReconClass, qrs.ScoreClassification(reconBeats, refClipped, refVent, tol))
		}
		if prCount > 0 {
			row.MeanPRDN = sumPRDN / float64(prCount)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

func accumulate(dst *qrs.MatchStats, s qrs.MatchStats) {
	dst.TruePositives += s.TruePositives
	dst.FalsePositives += s.FalsePositives
	dst.FalseNegatives += s.FalseNegatives
}

func accumulateClass(dst *qrs.ClassificationStats, s qrs.ClassificationStats) {
	dst.TruePVC += s.TruePVC
	dst.FalsePVC += s.FalsePVC
	dst.MissedPVC += s.MissedPVC
	dst.NormalCorrect += s.NormalCorrect
	dst.NormalTotal += s.NormalTotal
}

// Table renders the result.
func (r *DiagnosticResult) Table() *Table {
	t := &Table{
		Title:  "Diagnostic validity — QRS detection and PVC classification on reconstructed vs original signal",
		Note:   "Pan-Tompkins at 256 Hz scored against ground-truth beats (±50 ms); PVC Se = wide-complex classification sensitivity",
		Header: []string{"CR (%)", "PRDN (%)", "orig F1", "recon Se", "recon PPV", "recon F1", "orig PVC Se", "recon PVC Se"},
	}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{
			f1(row.CR), f2(row.MeanPRDN),
			f2(row.Original.F1()),
			f2(row.Reconstructed.Sensitivity()), f2(row.Reconstructed.PPV()),
			f2(row.Reconstructed.F1()),
			f2(row.OrigClass.PVCSensitivity()), f2(row.ReconClass.PVCSensitivity()),
		})
	}
	return t
}
