package experiments

import (
	"fmt"
	"time"

	"csecg"
	"csecg/internal/coordinator"
	"csecg/internal/core"
	"csecg/internal/metrics"
	"csecg/internal/mote"
)

// EncoderRow is one column-weight operating point of the d trade-off
// study of Section IV-A.2.
type EncoderRow struct {
	D           int
	Latency     time.Duration
	MoteCPU     float64
	RecoverySNR float64
}

// EncoderResult covers the measurement-latency claim (82 ms at d = 12)
// and the d sweep that justified the choice.
type EncoderResult struct {
	Rows []EncoderRow
}

// Encoder sweeps the sensing-matrix column weight at CR = 50.
func Encoder(opt Options) (*EncoderResult, error) {
	opt = opt.withDefaults()
	res := &EncoderResult{}
	for _, d := range []int{2, 4, 8, 12, 16, 24} {
		p := core.Params{Seed: 0xEC, D: d, M: metrics.MForCR(50, core.WindowSize)}
		m, err := mote.New(p)
		if err != nil {
			return nil, err
		}
		rep, err := csecg.RunStream(csecg.StreamConfig{
			RecordID:   opt.Records[0],
			Seconds:    opt.SecondsPerRecord,
			Params:     p,
			Mode:       coordinator.NEON,
			Metrics:    opt.Metrics,
			Trace:      opt.Trace,
			TraceLabel: fmt.Sprintf("encoder d=%d", d),
		})
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, EncoderRow{
			D:           d,
			Latency:     m.MeasurementLatency(),
			MoteCPU:     rep.MoteCPU,
			RecoverySNR: metrics.SNR(rep.MeanPRDN),
		})
	}
	return res, nil
}

// Table renders the result.
func (r *EncoderResult) Table() *Table {
	t := &Table{
		Title:  "§IV-A.2 — Encoder d trade-off: measurement latency vs recovery quality (CR=50)",
		Note:   "paper: d=12 is the sweet spot, CS-sampling a 2 s vector in 82 ms",
		Header: []string{"d", "measure latency (ms)", "mote CPU (%)", "recovery SNR (dB)"},
	}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", row.D),
			f1(float64(row.Latency.Microseconds()) / 1000),
			f2(row.MoteCPU * 100),
			f2(row.RecoverySNR),
		})
	}
	return t
}

// MemoryResult reports the mote footprint accounting of Section IV-A.2.
type MemoryResult struct {
	Mem mote.Memory
}

// Memory computes the footprint at the default operating point.
func Memory() (*MemoryResult, error) {
	m, err := mote.New(core.Params{Seed: 1, M: metrics.MForCR(50, core.WindowSize)})
	if err != nil {
		return nil, err
	}
	if err := m.CheckFits(); err != nil {
		return nil, err
	}
	return &MemoryResult{Mem: m.MemoryFootprint()}, nil
}

// Table renders the result.
func (r *MemoryResult) Table() *Table {
	mem := r.Mem
	kb := func(b int) string { return fmt.Sprintf("%.2f kB", float64(b)/1024) }
	return &Table{
		Title: "§IV-A.2 — Encoder memory footprint (MSP430F1611: 10 kB RAM, 48 kB flash)",
		Note:  "paper: 6.5 kB RAM, 7.5 kB flash of which 1.5 kB Huffman codebook",
		Header: []string{
			"component", "bytes",
		},
		Rows: [][]string{
			{"RAM: sample double-buffer", kb(mem.SampleBuffers)},
			{"RAM: measurement state (y, y_prev)", kb(mem.MeasurementState)},
			{"RAM: symbol scratch", kb(mem.SymbolScratch)},
			{"RAM: packet buffer", kb(mem.PacketBuffer)},
			{"RAM: Bluetooth stack", kb(mem.BTStack)},
			{"RAM: stack + globals", kb(mem.StackMisc)},
			{"RAM total", kb(mem.RAMTotal())},
			{"flash: code", kb(mem.CodeFlash)},
			{"flash: Huffman codebook", kb(mem.CodebookFlash)},
			{"flash total", kb(mem.FlashTotal())},
		},
	}
}

// SpeedupResult reports the VFP-vs-NEON study of Section V.
type SpeedupResult struct {
	VFPIterTime, NEONIterTime time.Duration
	Speedup                   float64
	VFPBudget, NEONBudget     int
}

// Speedup evaluates the decode-time model at CR = 50.
func Speedup() (*SpeedupResult, error) {
	p := core.Params{M: metrics.MForCR(50, core.WindowSize)}
	c := coordinator.DefaultCosts()
	return &SpeedupResult{
		VFPIterTime:  c.IterationTime(p, coordinator.VFP),
		NEONIterTime: c.IterationTime(p, coordinator.NEON),
		Speedup:      coordinator.Speedup(p),
		VFPBudget:    c.IterationBudget(p, coordinator.VFP, coordinator.RealTimeBudgetSeconds),
		NEONBudget:   c.IterationBudget(p, coordinator.NEON, coordinator.RealTimeBudgetSeconds),
	}, nil
}

// Table renders the result.
func (r *SpeedupResult) Table() *Table {
	return &Table{
		Title: "§V — Low-level optimization gain: VFP (scalar) vs NEON (vectorized) decoder",
		Note:  "paper: 2.43× faster at CR=50; iteration budget 800 → 2000 within the 1 s deadline",
		Header: []string{
			"build", "time/iteration (ms)", "iterations in 1 s budget",
		},
		Rows: [][]string{
			{"VFP (unoptimized)", f2(r.VFPIterTime.Seconds() * 1000), fmt.Sprintf("%d", r.VFPBudget)},
			{"NEON (optimized)", f2(r.NEONIterTime.Seconds() * 1000), fmt.Sprintf("%d", r.NEONBudget)},
			{"speedup", f2(r.Speedup) + "×", ""},
		},
	}
}

// CPUResult reports both platforms' CPU shares at the paper's CR = 50
// operating point.
type CPUResult struct {
	MoteCPU, CoordinatorCPU float64
	MeanDecode              time.Duration
	Report                  *csecg.StreamReport
}

// CPU runs a full session and extracts the CPU figures.
func CPU(opt Options) (*CPUResult, error) {
	opt = opt.withDefaults()
	rep, err := csecg.RunStream(csecg.StreamConfig{
		RecordID:   opt.Records[0],
		Seconds:    opt.SecondsPerRecord * 2,
		Params:     core.Params{Seed: 0xC0, M: metrics.MForCR(50, core.WindowSize)},
		Mode:       coordinator.NEON,
		Metrics:    opt.Metrics,
		Trace:      opt.Trace,
		TraceLabel: "cpu",
	})
	if err != nil {
		return nil, err
	}
	return &CPUResult{
		MoteCPU:        rep.MoteCPU,
		CoordinatorCPU: rep.CoordinatorCPU,
		MeanDecode:     rep.MeanDecodeTime,
		Report:         rep,
	}, nil
}

// Table renders the result.
func (r *CPUResult) Table() *Table {
	return &Table{
		Title: "§V — Average CPU usage at CR=50",
		Note:  "paper: < 5% on the ShimmerTM node, 17.7% on the iPhone (< 30% overall)",
		Header: []string{
			"platform", "avg CPU (%)", "note",
		},
		Rows: [][]string{
			{"mote (MSP430 @ 8 MHz)", f2(r.MoteCPU * 100), "sense+compress+frame per 2 s window"},
			{"coordinator (Cortex-A8 @ 600 MHz)", f2(r.CoordinatorCPU * 100),
				fmt.Sprintf("mean decode %.2f s per 2 s packet", r.MeanDecode.Seconds())},
		},
	}
}

// LifetimeRow is one CR operating point of the energy study.
type LifetimeRow struct {
	CR                      float64
	WireCR                  float64
	LifetimeRaw, LifetimeCS time.Duration
	Extension               float64
}

// LifetimeResult reports the node-lifetime extension of Section V.
type LifetimeResult struct {
	Rows []LifetimeRow
}

// Lifetime sweeps CR and compares modeled lifetime against raw
// streaming.
func Lifetime(opt Options) (*LifetimeResult, error) {
	opt = opt.withDefaults()
	res := &LifetimeResult{}
	for _, cr := range []float64{30, 40, 50, 60, 70} {
		rep, err := csecg.RunStream(csecg.StreamConfig{
			RecordID:   opt.Records[0],
			Seconds:    opt.SecondsPerRecord * 2,
			Params:     core.Params{Seed: 0x1F, M: metrics.MForCR(cr, core.WindowSize)},
			Mode:       coordinator.NEON,
			Metrics:    opt.Metrics,
			Trace:      opt.Trace,
			TraceLabel: fmt.Sprintf("lifetime CR=%.0f", cr),
		})
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, LifetimeRow{
			CR:          cr,
			WireCR:      rep.WireCR,
			LifetimeRaw: rep.LifetimeRaw,
			LifetimeCS:  rep.LifetimeCS,
			Extension:   rep.Extension,
		})
	}
	return res, nil
}

// Table renders the result.
func (r *LifetimeResult) Table() *Table {
	t := &Table{
		Title:  "§V — Node lifetime extension vs streaming uncompressed",
		Note:   "paper: 12.9% at CR=50; Shimmer-class battery/current model",
		Header: []string{"CS CR (%)", "wire CR (%)", "raw lifetime (h)", "CS lifetime (h)", "extension (%)"},
	}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{
			f1(row.CR), f1(row.WireCR),
			f1(row.LifetimeRaw.Hours()), f1(row.LifetimeCS.Hours()),
			f1(row.Extension * 100),
		})
	}
	return t
}
