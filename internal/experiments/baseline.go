package experiments

import (
	"time"

	"csecg/internal/core"
	"csecg/internal/dwtcomp"
	"csecg/internal/ecg"
	"csecg/internal/metrics"
	"csecg/internal/mote"
)

// BaselineRow is one compressor at one wire budget.
type BaselineRow struct {
	Name          string
	BudgetCR      float64
	MeanPRDN      float64
	EncoderCycles int64
	EncoderTime   time.Duration
	EncoderRAM    int
}

// BaselineResult compares the CS encoder against the classical
// DWT-thresholding compressor at matched per-window bit budgets.
//
// The measured trade-off is more nuanced than the introduction's
// framing: with the MSP430's hardware multiplier, the fixed-point DWT
// is actually competitive in cycles and clearly better in
// rate-distortion. What CS buys instead is architectural: streaming
// per-sample updates (no full-window transform or coefficient sort
// before transmit), ~30% less working RAM, multiplier-free integer
// adds (relevant for cheaper MCUs and for the paper's analog-CS
// endgame, where the "encoder" vanishes into the read-out electronics
// entirely), and graceful degradation under packet loss.
type BaselineResult struct {
	Rows []BaselineRow
}

// Baseline runs the comparison at wire budgets equivalent to CS CR 50
// and 70.
func Baseline(opt Options) (*BaselineResult, error) {
	opt = opt.withDefaults()
	res := &BaselineResult{}
	for _, cr := range []float64{50, 70} {
		// --- CS pipeline at this CR.
		p := core.Params{Seed: 0xBA5E, M: metrics.MForCR(cr, core.WindowSize)}
		csPRDN, _, err := pipelinePRD[float64](opt, p)
		if err != nil {
			return nil, err
		}
		m, err := mote.New(p)
		if err != nil {
			return nil, err
		}
		// One representative window for the cycle model (costs are
		// data-independent except entropy size; use record 0's second
		// window).
		wins, err := windows256(opt.Records[0], 6, core.WindowSize)
		if err != nil {
			return nil, err
		}
		rep, err := m.EncodeWindow(wins[0])
		if err != nil {
			return nil, err
		}
		csMem := m.MemoryFootprint()
		res.Rows = append(res.Rows, BaselineRow{
			Name: "CS (sparse binary + Δ + Huffman)", BudgetCR: cr,
			MeanPRDN:      csPRDN,
			EncoderCycles: rep.TotalCycles,
			EncoderTime:   rep.EncodeTime,
			EncoderRAM:    csMem.SampleBuffers + csMem.MeasurementState + csMem.SymbolScratch,
		})

		// --- DWT thresholding at the same bit budget.
		budgetBits := int(float64(core.WindowSize*12) * (1 - cr/100))
		keepK := dwtcomp.KForBudget(budgetBits)
		enc, err := dwtcomp.NewEncoder(core.WindowSize, core.DefaultWaveletOrder, core.DefaultWaveletLevels, keepK)
		if err != nil {
			return nil, err
		}
		dec, err := dwtcomp.NewDecoder(core.WindowSize, core.DefaultWaveletOrder, core.DefaultWaveletLevels)
		if err != nil {
			return nil, err
		}
		var sum float64
		var count int
		for _, id := range opt.Records {
			rw, err := windows256(id, opt.SecondsPerRecord, core.WindowSize)
			if err != nil {
				return nil, err
			}
			for _, win := range rw {
				centred := make([]int16, len(win))
				for i, v := range win {
					centred[i] = v - ecg.ADCBaseline
				}
				data, err := enc.Encode(centred)
				if err != nil {
					return nil, err
				}
				back, err := dec.Decode(data)
				if err != nil {
					return nil, err
				}
				orig := make([]float64, len(win))
				reco := make([]float64, len(win))
				for i := range win {
					orig[i] = float64(win[i])
					reco[i] = float64(back[i]) + ecg.ADCBaseline
				}
				prdn, err := metrics.PRDN(orig, reco)
				if err != nil {
					return nil, err
				}
				sum += prdn
				count++
			}
		}
		cycles := enc.EncoderCycles()
		res.Rows = append(res.Rows, BaselineRow{
			Name: "DWT thresholding (fixed-point db4, top-K)", BudgetCR: cr,
			MeanPRDN:      sum / float64(count),
			EncoderCycles: cycles,
			EncoderTime:   time.Duration(float64(cycles) / mote.ClockHz * float64(time.Second)),
			// DWT needs the window plus a full coefficient buffer and a
			// scratch buffer, all 32-bit.
			EncoderRAM: core.WindowSize*2 + 2*core.WindowSize*4,
		})
	}
	return res, nil
}

// Table renders the result.
func (r *BaselineResult) Table() *Table {
	t := &Table{
		Title:  "Baseline — CS encoder vs classical DWT-thresholding at matched wire budgets",
		Note:   "transform coding wins rate-distortion (and cycles, given a HW multiplier); CS wins RAM, streaming operation and the analog-CS path",
		Header: []string{"compressor", "budget (CS-CR eq.)", "mean PRDN (%)", "encoder cycles", "encode time (ms)", "working RAM (B)"},
	}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{
			row.Name, f1(row.BudgetCR), f2(row.MeanPRDN),
			f1(float64(row.EncoderCycles) / 1000), f1(row.EncoderTime.Seconds() * 1000),
			f1(float64(row.EncoderRAM)),
		})
	}
	t.Header[3] = "encoder kcycles"
	return t
}
