package experiments

import (
	"csecg/internal/core"
	"csecg/internal/holter"
	"csecg/internal/metrics"
	"csecg/internal/qrs"
)

// HolterRow is one CR operating point of the report-fidelity study.
type HolterRow struct {
	CR float64
	// Ref and Got are the analytics on original and reconstruction.
	Ref, Got *holter.Report
	// WorstRelErr is the headline-number deviation.
	WorstRelErr float64
}

// HolterReportResult measures whether *report-level* outputs (mean HR,
// HRV indices, PVC burden) survive compression — one level above the
// QRS study: not "are the beats still there" but "are the numbers the
// cardiologist reads still right".
type HolterReportResult struct {
	Rows []HolterRow
}

// HolterReport runs the study on an ectopy-rich record.
func HolterReport(opt Options) (*HolterReportResult, error) {
	opt = opt.withDefaults()
	seconds := opt.SecondsPerRecord * 8
	if seconds < 180 {
		seconds = 180
	}
	det, err := qrs.NewDetector(core.FsMote)
	if err != nil {
		return nil, err
	}
	analyzeFrom := func(x []float64) (*holter.Report, error) {
		var beats []holter.BeatInput
		for _, b := range det.DetectBeats(x) {
			beats = append(beats, holter.BeatInput{
				Time:        float64(b.Sample) / core.FsMote,
				Ventricular: b.Ventricular,
			})
		}
		return holter.Analyze(beats)
	}
	res := &HolterReportResult{}
	for _, cr := range []float64{30, 50, 70, 85} {
		p := core.Params{Seed: 0x607, M: metrics.MForCR(cr, core.WindowSize)}
		enc, err := core.NewEncoder(p)
		if err != nil {
			return nil, err
		}
		dec, err := core.NewDecoder[float32](p)
		if err != nil {
			return nil, err
		}
		wins, err := windows256(opt.Records[0], seconds, enc.Params().N)
		if err != nil {
			return nil, err
		}
		var orig, recon []float64
		for _, win := range wins {
			pkt, err := enc.EncodeWindow(win)
			if err != nil {
				return nil, err
			}
			out, err := dec.DecodePacket(pkt)
			if err != nil {
				return nil, err
			}
			for i := range win {
				orig = append(orig, float64(win[i]))
				recon = append(recon, float64(out.Samples[i]))
			}
		}
		ref, err := analyzeFrom(orig)
		if err != nil {
			return nil, err
		}
		got, err := analyzeFrom(recon)
		if err != nil {
			// Detection collapsed entirely: record the failure as total
			// deviation rather than aborting the sweep.
			res.Rows = append(res.Rows, HolterRow{CR: cr, Ref: ref, WorstRelErr: 1})
			continue
		}
		res.Rows = append(res.Rows, HolterRow{
			CR: cr, Ref: ref, Got: got,
			WorstRelErr: holter.CompareReports(ref, got),
		})
	}
	return res, nil
}

// Table renders the result.
func (r *HolterReportResult) Table() *Table {
	t := &Table{
		Title:  "Extension — Holter report fidelity on the reconstruction",
		Note:   "headline analytics (mean HR, SDNN, RMSSD, PVC burden) on reconstructed vs original signal",
		Header: []string{"CR (%)", "HR ref/got (bpm)", "SDNN ref/got (ms)", "PVC/h ref/got", "worst rel err (%)"},
	}
	for _, row := range r.Rows {
		hr, sdnn, pvc := "-", "-", "-"
		if row.Got != nil {
			hr = f1(row.Ref.MeanHR) + " / " + f1(row.Got.MeanHR)
			sdnn = f1(row.Ref.SDNN) + " / " + f1(row.Got.SDNN)
			pvc = f1(row.Ref.VentricularPerHour) + " / " + f1(row.Got.VentricularPerHour)
		}
		t.Rows = append(t.Rows, []string{
			f1(row.CR), hr, sdnn, pvc, f1(row.WorstRelErr * 100),
		})
	}
	return t
}
