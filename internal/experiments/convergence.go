package experiments

import (
	"csecg/internal/core"
	"csecg/internal/linalg"
	"csecg/internal/metrics"
	"csecg/internal/sensing"
	"csecg/internal/solver"
	"csecg/internal/wavelet"
)

// ConvergenceResult reproduces the Section II-B claim: FISTA converges
// at O(1/k²) against ISTA's O(1/k), making real-time recovery feasible.
type ConvergenceResult struct {
	// Iterations checkpoints.
	Checkpoints []int
	// FISTAGap and ISTAGap are objective gaps F(α_k) − F* at each
	// checkpoint (F* approximated by a long FISTA run).
	FISTAGap, ISTAGap []float64
}

// Convergence traces both solvers on one representative CR=50 window.
func Convergence(opt Options) (*ConvergenceResult, error) {
	opt = opt.withDefaults()
	const n = core.WindowSize
	m := metrics.MForCR(50, n)
	w, err := wavelet.New[float64](core.DefaultWaveletOrder, n, core.DefaultWaveletLevels)
	if err != nil {
		return nil, err
	}
	phi, err := sensing.NewSparseBinaryLCG(m, n, core.DefaultColumnWeight, 0xCC)
	if err != nil {
		return nil, err
	}
	wins, err := windows256(opt.Records[0], opt.SecondsPerRecord, n)
	if err != nil {
		return nil, err
	}
	win := wins[len(wins)/2]
	x := make([]float64, n)
	for i, v := range win {
		x[i] = float64(v - core.ADCBaseline)
	}
	phiOp := sensing.Op[float64](phi)
	y := make([]float64, m)
	phiOp.Apply(y, x)
	a := linalg.Compose(phiOp, w.SynthesisOp())
	lip := 2 * linalg.PowerIterOpNorm(a, 40)

	aty := make([]float64, n)
	a.ApplyT(aty, y)
	lambda := linalg.NormInf(aty) / 1000

	trace := func(algo func(linalg.Op[float64], []float64, solver.Options[float64]) (solver.Result[float64], error), iters int) ([]float64, error) {
		var vals []float64
		_, err := algo(a, y, solver.Options[float64]{
			MaxIter: iters, Tol: -1, Lambda: lambda, Lipschitz: lip,
			Monitor: func(_ int, obj float64) { vals = append(vals, obj) },
		})
		return vals, err
	}
	fista, err := trace(solver.FISTA[float64], 1200)
	if err != nil {
		return nil, err
	}
	ista, err := trace(solver.ISTA[float64], 1200)
	if err != nil {
		return nil, err
	}
	// F*: best objective seen across a long accelerated run.
	fstar := fista[len(fista)-1]
	for _, v := range fista {
		if v < fstar {
			fstar = v
		}
	}
	res := &ConvergenceResult{Checkpoints: []int{10, 25, 50, 100, 200, 400, 800, 1200}}
	for _, k := range res.Checkpoints {
		res.FISTAGap = append(res.FISTAGap, gapAt(fista, k, fstar))
		res.ISTAGap = append(res.ISTAGap, gapAt(ista, k, fstar))
	}
	return res, nil
}

func gapAt(trace []float64, k int, fstar float64) float64 {
	if k > len(trace) {
		k = len(trace)
	}
	g := trace[k-1] - fstar
	if g < 0 {
		return 0
	}
	return g
}

// Table renders the result.
func (r *ConvergenceResult) Table() *Table {
	t := &Table{
		Title:  "§II-B — FISTA O(1/k²) vs ISTA O(1/k) on one CR=50 window",
		Note:   "objective gap F(α_k) − F*; the accelerated method reaches working accuracy ~10× sooner",
		Header: []string{"iteration k", "FISTA gap", "ISTA gap", "ratio"},
	}
	for i, k := range r.Checkpoints {
		ratio := "-"
		if r.FISTAGap[i] > 0 {
			ratio = f1(r.ISTAGap[i] / r.FISTAGap[i])
		}
		t.Rows = append(t.Rows, []string{
			f1(float64(k)),
			f2(r.FISTAGap[i]), f2(r.ISTAGap[i]), ratio,
		})
	}
	return t
}
