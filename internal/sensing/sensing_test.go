package sensing

import (
	"math"
	"testing"
	"testing/quick"

	"csecg/internal/linalg"
)

func TestSparseBinaryShape(t *testing.T) {
	s, err := NewSparseBinary(256, 512, 12, 1)
	if err != nil {
		t.Fatal(err)
	}
	m, n := s.Dims()
	if m != 256 || n != 512 {
		t.Errorf("Dims = %d×%d", m, n)
	}
	if s.ColumnWeight() != 12 {
		t.Errorf("ColumnWeight = %d", s.ColumnWeight())
	}
	if math.Abs(s.Scale()-1/math.Sqrt(12)) > 1e-15 {
		t.Errorf("Scale = %v", s.Scale())
	}
}

func TestSparseBinaryInvalidShapes(t *testing.T) {
	cases := []struct{ m, n, d int }{
		{0, 512, 12}, {256, 0, 12}, {512, 256, 12}, {256, 512, 0}, {256, 512, 257},
	}
	for _, c := range cases {
		if _, err := NewSparseBinary(c.m, c.n, c.d, 1); err == nil {
			t.Errorf("NewSparseBinary(%d,%d,%d): expected error", c.m, c.n, c.d)
		}
	}
}

func TestSparseBinaryColumnInvariants(t *testing.T) {
	s, err := NewSparseBinary(256, 512, 12, 42)
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < 512; c++ {
		sup := s.Support(c)
		if len(sup) != 12 {
			t.Fatalf("column %d support size %d", c, len(sup))
		}
		for i, r := range sup {
			if r < 0 || int(r) >= 256 {
				t.Fatalf("column %d row %d out of range", c, r)
			}
			if i > 0 && sup[i-1] >= r {
				t.Fatalf("column %d support not strictly ascending: %v", c, sup)
			}
		}
	}
}

func TestSparseBinaryDeterministic(t *testing.T) {
	a, _ := NewSparseBinary(128, 256, 8, 7)
	b, _ := NewSparseBinary(128, 256, 8, 7)
	c, _ := NewSparseBinary(128, 256, 8, 8)
	same, diff := true, false
	for i := range a.support {
		if a.support[i] != b.support[i] {
			same = false
		}
		if a.support[i] != c.support[i] {
			diff = true
		}
	}
	if !same {
		t.Error("same seed produced different supports")
	}
	if !diff {
		t.Error("different seeds produced identical supports")
	}
}

func TestLCGVariantMatchesItself(t *testing.T) {
	a, err := NewSparseBinaryLCG(256, 512, 12, 0xABCD)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := NewSparseBinaryLCG(256, 512, 12, 0xABCD)
	for i := range a.support {
		if a.support[i] != b.support[i] {
			t.Fatal("LCG supports differ for equal seeds")
		}
	}
}

func TestMeasureIntMatchesFloatOp(t *testing.T) {
	s, err := NewSparseBinary(128, 256, 12, 3)
	if err != nil {
		t.Fatal(err)
	}
	xi := make([]int16, 256)
	xf := make([]float64, 256)
	state := uint64(5)
	for i := range xi {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		xi[i] = int16(int64(state%2001) - 1000)
		xf[i] = float64(xi[i])
	}
	yi := make([]int32, 128)
	s.MeasureInt(yi, xi)
	yf := make([]float64, 128)
	Op[float64](s).Apply(yf, xf)
	// float path applies 1/√d; integer path defers it.
	for r := 0; r < 128; r++ {
		if math.Abs(float64(yi[r])*s.Scale()-yf[r]) > 1e-9 {
			t.Fatalf("row %d: int %d (scaled %v) vs float %v", r, yi[r], float64(yi[r])*s.Scale(), yf[r])
		}
	}
}

func TestAddMeasureIntStreamingEquals(t *testing.T) {
	s, _ := NewSparseBinary(128, 256, 12, 9)
	xi := make([]int16, 256)
	for i := range xi {
		xi[i] = int16(3*i - 200)
	}
	batch := make([]int32, 128)
	s.MeasureInt(batch, xi)
	stream := make([]int32, 128)
	for c, v := range xi {
		s.AddMeasureInt(stream, c, v)
	}
	for r := range batch {
		if batch[r] != stream[r] {
			t.Fatalf("row %d: batch %d, stream %d", r, batch[r], stream[r])
		}
	}
}

func TestSparseOpAdjoint(t *testing.T) {
	s, _ := NewSparseBinary(200, 400, 12, 17)
	if mm := linalg.AdjointMismatch(Op[float64](s), 5); mm > 1e-10 {
		t.Errorf("sparse op adjoint mismatch %v", mm)
	}
}

func TestSparseColumnsUnitNorm(t *testing.T) {
	// Each column has d entries of 1/√d ⇒ unit l2 norm; verify through
	// the operator on basis vectors.
	s, _ := NewSparseBinary(128, 256, 12, 23)
	op := Op[float64](s)
	x := make([]float64, 256)
	y := make([]float64, 128)
	for c := 0; c < 256; c += 37 {
		for i := range x {
			x[i] = 0
		}
		x[c] = 1
		op.Apply(y, x)
		if n := linalg.Norm2(y); math.Abs(float64(n)-1) > 1e-12 {
			t.Fatalf("column %d norm %v, want 1", c, n)
		}
	}
}

func TestMaxColumnCoherenceBounds(t *testing.T) {
	s, _ := NewSparseBinary(256, 512, 12, 4)
	mu := s.MaxColumnCoherence()
	if mu < 0 || mu > 1 {
		t.Fatalf("coherence %v out of [0,1]", mu)
	}
	// Random supports of weight 12 in 256 rows overlap far less than
	// fully; identical columns would have coherence 1.
	if mu > 0.8 {
		t.Errorf("coherence %v suspiciously high for random supports", mu)
	}
	if mu == 0 {
		t.Error("coherence 0 impossible: 512 columns of weight 12 in 256 rows must overlap")
	}
}

func TestGaussianStats(t *testing.T) {
	m, err := NewGaussian[float64](256, 512, 11)
	if err != nil {
		t.Fatal(err)
	}
	var sum, sumSq float64
	cnt := 0
	for i := 0; i < 256; i++ {
		for _, v := range m.Row(i) {
			sum += v
			sumSq += v * v
			cnt++
		}
	}
	mean := sum / float64(cnt)
	variance := sumSq/float64(cnt) - mean*mean
	if math.Abs(mean) > 3e-4 {
		t.Errorf("Gaussian mean %v, want ~0", mean)
	}
	if math.Abs(variance-1.0/512) > 1e-4 {
		t.Errorf("Gaussian variance %v, want %v", variance, 1.0/512)
	}
}

func TestBernoulliValues(t *testing.T) {
	m, err := NewBernoulli[float64](64, 128, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := 1 / math.Sqrt(128)
	pos := 0
	for i := 0; i < 64; i++ {
		for _, v := range m.Row(i) {
			if math.Abs(math.Abs(v)-want) > 1e-15 {
				t.Fatalf("entry %v, want ±%v", v, want)
			}
			if v > 0 {
				pos++
			}
		}
	}
	frac := float64(pos) / float64(64*128)
	if math.Abs(frac-0.5) > 0.02 {
		t.Errorf("positive fraction %v, want ~0.5", frac)
	}
}

func TestIsometrySpreadGaussianTight(t *testing.T) {
	m, _ := NewGaussian[float64](256, 512, 5)
	lo, hi, err := IsometrySpread(linalg.OpFromDense(m), 20, 100, 77)
	if err != nil {
		t.Fatal(err)
	}
	// Gaussian at M/N = 1/2, S = 20: spread stays well within [0.5, 1.5].
	if lo < 0.5 || hi > 1.5 {
		t.Errorf("Gaussian isometry spread [%v, %v] wider than expected", lo, hi)
	}
	if lo >= hi {
		t.Errorf("degenerate spread [%v, %v]", lo, hi)
	}
}

func TestIsometrySpreadSparseReasonable(t *testing.T) {
	s, _ := NewSparseBinary(256, 512, 12, 5)
	lo, hi, err := IsometrySpread(Op[float64](s), 20, 100, 77)
	if err != nil {
		t.Fatal(err)
	}
	// RIP-1 matrices have a wider l2 spread but must stay bounded.
	if lo < 0.3 || hi > 2.0 {
		t.Errorf("sparse binary isometry spread [%v, %v] out of sane range", lo, hi)
	}
}

func TestIsometrySpreadInvalid(t *testing.T) {
	s, _ := NewSparseBinary(64, 128, 4, 5)
	if _, _, err := IsometrySpread(Op[float64](s), 0, 10, 1); err == nil {
		t.Error("expected error for s=0")
	}
	if _, _, err := IsometrySpread(Op[float64](s), 129, 10, 1); err == nil {
		t.Error("expected error for s>N")
	}
}

func TestMeasureIntProperty(t *testing.T) {
	// Linearity: Φ(x1+x2) = Φx1 + Φx2 in exact integer arithmetic.
	s, _ := NewSparseBinary(64, 128, 6, 31)
	f := func(seed uint64) bool {
		gen := seed | 1
		x1 := make([]int16, 128)
		x2 := make([]int16, 128)
		xs := make([]int16, 128)
		for i := range x1 {
			gen ^= gen << 13
			gen ^= gen >> 7
			gen ^= gen << 17
			x1[i] = int16(gen % 500)
			x2[i] = int16((gen >> 16) % 500)
			xs[i] = x1[i] + x2[i]
		}
		y1 := make([]int32, 64)
		y2 := make([]int32, 64)
		ys := make([]int32, 64)
		s.MeasureInt(y1, x1)
		s.MeasureInt(y2, x2)
		s.MeasureInt(ys, xs)
		for r := range ys {
			if ys[r] != y1[r]+y2[r] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSparseMeasureInt512(b *testing.B) {
	s, _ := NewSparseBinary(256, 512, 12, 1)
	x := make([]int16, 512)
	for i := range x {
		x[i] = int16(i)
	}
	y := make([]int32, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.MeasureInt(y, x)
	}
}

func BenchmarkGaussianMeasure512(b *testing.B) {
	m, _ := NewGaussian[float64](256, 512, 1)
	x := make([]float64, 512)
	for i := range x {
		x[i] = float64(i)
	}
	y := make([]float64, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.MatVec(y, x)
	}
}
