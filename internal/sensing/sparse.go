// Package sensing implements the measurement matrices of the CS encoder:
// the paper's sparse binary sensing matrix (the innovation that makes the
// encoder real-time on the MSP430) and the dense Gaussian and Bernoulli
// baselines it is benchmarked against in Fig. 2.
//
// A sparse binary Φ ∈ R^{M×N} has exactly d nonzero entries per column,
// all equal to 1/√d, at pseudo-random row positions. Measuring therefore
// costs d integer additions per input sample — no multiplies, no stored
// matrix — and the decoder regenerates the same support from the shared
// seed. The RIP of Eq. (1) does not hold for such matrices, but the
// RIP-1 property of Berinde et al. does, and empirically (Fig. 2) the
// recovery quality matches Gaussian sensing; package tests check an
// empirical isometry spread on wavelet-sparse vectors.
package sensing

import (
	"fmt"
	"math"

	"csecg/internal/linalg"
	"csecg/internal/rng"
)

// SparseBinary is the sparse binary sensing matrix, stored as the column
// supports only (d row indices per column).
type SparseBinary struct {
	m, n, d int
	// support[c*d ... c*d+d-1] are the ascending row indices of column c.
	support []int32
	scale   float64 //csecg:host decoder-side 1/√d scale, never touched by the mote path
}

// NewSparseBinary builds an M×N sparse binary matrix with d ones per
// column, with supports drawn from a Xoshiro generator seeded with seed.
// Encoder and decoder construct identical matrices from the same
// (m, n, d, seed) tuple. It returns an error if the shape is invalid.
func NewSparseBinary(m, n, d int, seed uint64) (*SparseBinary, error) {
	if err := validateShape(m, n, d); err != nil {
		return nil, err
	}
	//csecg:host the 1/√d scale is computed once for the decoder half
	s := &SparseBinary{m: m, n: n, d: d, support: make([]int32, n*d), scale: 1 / math.Sqrt(float64(d))}
	gen := rng.New(seed)
	rows := make([]int, d)
	for c := 0; c < n; c++ {
		gen.SampleK(rows, d, m)
		for i, r := range rows {
			s.support[c*d+i] = int32(r) //csecg:rangeok SampleK draws from [0, m) and validateShape caps m ≤ n ≪ 2³¹
		}
	}
	return s, nil
}

// NewSparseBinaryLCG builds the matrix from the 16-bit LCG the
// MSP430-class mote uses, so the mote model and the coordinator derive
// bit-identical supports from a 2-byte seed.
func NewSparseBinaryLCG(m, n, d int, seed uint16) (*SparseBinary, error) {
	if err := validateShape(m, n, d); err != nil {
		return nil, err
	}
	//csecg:host the 1/√d scale is computed once for the decoder half
	s := &SparseBinary{m: m, n: n, d: d, support: make([]int32, n*d), scale: 1 / math.Sqrt(float64(d))}
	gen := rng.NewLCG16(seed)
	rows := make([]int, d)
	for c := 0; c < n; c++ {
		gen.SampleK(rows, d, m)
		for i, r := range rows {
			s.support[c*d+i] = int32(r) //csecg:rangeok SampleK draws from [0, m) and validateShape caps m ≤ n ≪ 2³¹
		}
	}
	return s, nil
}

func validateShape(m, n, d int) error {
	switch {
	case m <= 0 || n <= 0:
		return fmt.Errorf("sensing: non-positive shape %dx%d", m, n)
	case m > n:
		return fmt.Errorf("sensing: M=%d > N=%d is not a compression", m, n)
	case d <= 0 || d > m:
		return fmt.Errorf("sensing: column weight d=%d out of [1, M=%d]", d, m)
	}
	return nil
}

// Dims returns (M, N).
func (s *SparseBinary) Dims() (m, n int) { return s.m, s.n }

// ColumnWeight returns d.
func (s *SparseBinary) ColumnWeight() int { return s.d }

// Scale returns the nonzero value 1/√d.
func (s *SparseBinary) Scale() float64 { return s.scale }

// Support returns the ascending row indices of column c (a view; do not
// modify).
func (s *SparseBinary) Support(c int) []int32 {
	return s.support[c*s.d : (c+1)*s.d]
}

// MeasureInt computes the unscaled integer measurement dst = (√d·Φ)·x,
// i.e. dst[r] = Σ_{c: r ∈ supp(c)} x[c], using only integer additions —
// the exact arithmetic the MSP430 encoder performs. The 1/√d scale is
// deferred to the decoder. dst must have length M.
//
//csecg:hotpath the CS measurement stage, N·d integer adds per window
func (s *SparseBinary) MeasureInt(dst []int32, x []int16) {
	if len(dst) != s.m || len(x) != s.n {
		panic("sensing: MeasureInt dimension mismatch")
	}
	for i := range dst {
		dst[i] = 0
	}
	for c := 0; c < s.n; c++ {
		v := int32(x[c])
		if v == 0 {
			continue
		}
		for _, r := range s.Support(c) {
			dst[r] += v //csecg:rangeok each row accumulates ≤ d·1024 = 12288 with |x| ≤ 1024 after core's ADC clamp, ≪ 2³¹; a saturating add here would slow the N·d hot loop for a case the clamp excludes
		}
	}
}

// AddMeasureInt is the streaming form of MeasureInt: it accumulates the
// contribution of a single sample x[c] into dst, letting the mote update
// measurements as each ADC sample arrives instead of buffering a window.
//
//csecg:hotpath d integer adds per ADC sample, interrupt context
func (s *SparseBinary) AddMeasureInt(dst []int32, c int, x int16) {
	if len(dst) != s.m {
		panic("sensing: AddMeasureInt dimension mismatch")
	}
	v := int32(x)
	for _, r := range s.Support(c) {
		dst[r] += v //csecg:rangeok same bound as MeasureInt: ≤ d·1024 per row after core's ADC clamp
	}
}

// Op returns the real-valued operator view Φ (with the 1/√d scaling) for
// the solver side, generic over the float width.
func Op[T linalg.Float](s *SparseBinary) linalg.Op[T] {
	scale := T(s.scale)
	return linalg.Op[T]{
		InDim:  s.n,
		OutDim: s.m,
		Apply: func(dst, x []T) {
			if len(dst) != s.m || len(x) != s.n {
				panic("sensing: Op.Apply dimension mismatch")
			}
			for i := range dst {
				dst[i] = 0
			}
			for c := 0; c < s.n; c++ {
				v := x[c] * scale
				if v == 0 {
					continue
				}
				for _, r := range s.Support(c) {
					dst[r] += v
				}
			}
		},
		ApplyT: func(dst, y []T) {
			if len(dst) != s.n || len(y) != s.m {
				panic("sensing: Op.ApplyT dimension mismatch")
			}
			for c := 0; c < s.n; c++ {
				var acc T
				for _, r := range s.Support(c) {
					acc += y[r]
				}
				dst[c] = acc * scale
			}
		},
	}
}

// MaxColumnCoherence returns the largest normalized inner product between
// two distinct columns, the incoherence diagnostic that guided the
// random support choice. Columns of a sparse binary matrix have unit
// norm, so the inner product is |supp_i ∩ supp_j| / d.
//
//csecg:host offline incoherence diagnostic, not part of the mote path
func (s *SparseBinary) MaxColumnCoherence() float64 {
	// Build row → columns lists once; then count pairwise overlaps via
	// shared rows. O(nnz · avg row degree).
	rowCols := make([][]int32, s.m)
	for c := 0; c < s.n; c++ {
		for _, r := range s.Support(c) {
			rowCols[r] = append(rowCols[r], int32(c))
		}
	}
	overlap := make(map[uint64]int)
	for _, cols := range rowCols {
		for i := 0; i < len(cols); i++ {
			for j := i + 1; j < len(cols); j++ {
				key := uint64(cols[i])<<32 | uint64(cols[j])
				overlap[key]++
			}
		}
	}
	best := 0
	//csecg:orderok max over all values, independent of iteration order
	for _, v := range overlap {
		if v > best {
			best = v
		}
	}
	return float64(best) / float64(s.d)
}
