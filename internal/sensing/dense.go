// Dense Gaussian/Bernoulli baselines exist only for the paper's Fig. 2
// comparison and run host-side; the mote never materializes them.
//csecg:host dense baselines are host-side reference models

package sensing

import (
	"fmt"
	"math"

	"csecg/internal/linalg"
	"csecg/internal/rng"
)

// NewGaussian returns the dense Gaussian baseline sensing matrix with
// i.i.d. N(0, 1/N) entries, as specified in Section II-A of the paper.
// This is the "optimal" reference of Fig. 2: excellent RIP behaviour,
// prohibitively expensive on the mote (M·N multiplies and a stored, or
// regenerated, dense matrix).
func NewGaussian[T linalg.Float](m, n int, seed uint64) (*linalg.Dense[T], error) {
	if err := validateShape(m, n, 1); err != nil {
		return nil, err
	}
	gen := rng.New(seed)
	sigma := 1 / math.Sqrt(float64(n))
	mat := linalg.NewDense[T](m, n)
	for i := 0; i < m; i++ {
		row := mat.Row(i)
		for j := range row {
			row[j] = T(gen.NormFloat64() * sigma)
		}
	}
	return mat, nil
}

// NewBernoulli returns the symmetric Bernoulli baseline with entries
// ±1/√N, each sign with probability 1/2 (the second universal choice in
// Section II-A).
func NewBernoulli[T linalg.Float](m, n int, seed uint64) (*linalg.Dense[T], error) {
	if err := validateShape(m, n, 1); err != nil {
		return nil, err
	}
	gen := rng.New(seed)
	v := T(1 / math.Sqrt(float64(n)))
	mat := linalg.NewDense[T](m, n)
	for i := 0; i < m; i++ {
		row := mat.Row(i)
		for j := range row {
			row[j] = T(gen.Sign()) * v
		}
	}
	return mat, nil
}

// IsometrySpread empirically probes the restricted-isometry behaviour of
// the operator phi on s-sparse vectors: it draws trials random s-sparse
// unit vectors (random support, Gaussian values), measures r = ‖Φx‖₂ and
// returns (min r, max r). For a matrix that acts as a near-isometry on
// sparse vectors both values are close to a common constant; a wide
// spread predicts poor CS recovery. Note sparse binary matrices satisfy
// RIP-1 rather than RIP-2, so their spread is wider than Gaussian at the
// same M — the Fig. 2 experiment shows the recovery quality is
// nevertheless equivalent.
func IsometrySpread[T linalg.Float](phi linalg.Op[T], s, trials int, seed uint64) (lo, hi float64, err error) {
	if s <= 0 || s > phi.InDim {
		return 0, 0, fmt.Errorf("sensing: sparsity %d out of [1, %d]", s, phi.InDim)
	}
	if trials <= 0 {
		trials = 50
	}
	gen := rng.New(seed)
	x := make([]T, phi.InDim)
	y := make([]T, phi.OutDim)
	supp := make([]int, s)
	lo = math.Inf(1)
	for t := 0; t < trials; t++ {
		for i := range x {
			x[i] = 0
		}
		gen.SampleK(supp, s, phi.InDim)
		for _, idx := range supp {
			x[idx] = T(gen.NormFloat64())
		}
		nrm := linalg.Norm2(x)
		if nrm == 0 {
			continue
		}
		linalg.Scale(1/nrm, x)
		phi.Apply(y, x)
		r := float64(linalg.Norm2(y))
		if r < lo {
			lo = r
		}
		if r > hi {
			hi = r
		}
	}
	return lo, hi, nil
}
