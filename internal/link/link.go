// Package link models the Bluetooth transport between the mote and the
// coordinator: serial-port-profile framing over a class-2 module (the
// Shimmer mainboard carries a Bluetooth module driven by the MSP430's
// UART; the coordinator side uses BTStack).
//
// The model captures what the energy evaluation needs — per-packet
// airtime at an effective payload rate plus per-packet protocol
// overhead — and what the robustness tests need: deterministic loss and
// corruption injection.
package link

import (
	"fmt"
	"time"

	"csecg/internal/core"
	"csecg/internal/rng"
)

// Config describes the link.
type Config struct {
	// EffectiveBitrate is the sustained SPP payload rate in bits/s.
	// Class-2 modules on a 115.2 kBd UART sustain roughly 90 kbit/s.
	EffectiveBitrate float64
	// OverheadBytes is the per-packet protocol overhead
	// (RFCOMM/L2CAP/baseband headers amortized per ~srr packet).
	OverheadBytes int
	// DropProb is the packet-loss probability (0 for a clean link).
	DropProb float64
	// BitFlipProb is the per-byte corruption probability after CRC
	// bypass — used to verify the decoder's checksum rejects damage.
	BitFlipProb float64
	// Seed drives the loss/corruption stream.
	Seed uint64
}

// DefaultConfig returns a clean 90 kbit/s link.
func DefaultConfig() Config {
	return Config{EffectiveBitrate: 90_000, OverheadBytes: 12}
}

// Link transports marshaled packets with modeled airtime.
type Link struct {
	cfg Config
	gen *rng.Xoshiro

	// Counters.
	sent, dropped, corrupted int64
	bytesOnAir               int64
	airtime                  time.Duration
}

// New builds a link. It returns an error for a non-positive bitrate or
// probabilities outside [0, 1].
func New(cfg Config) (*Link, error) {
	if cfg.EffectiveBitrate <= 0 {
		return nil, fmt.Errorf("link: bitrate %v must be positive", cfg.EffectiveBitrate)
	}
	if cfg.DropProb < 0 || cfg.DropProb > 1 || cfg.BitFlipProb < 0 || cfg.BitFlipProb > 1 {
		return nil, fmt.Errorf("link: probabilities out of [0, 1]")
	}
	if cfg.OverheadBytes < 0 {
		return nil, fmt.Errorf("link: negative overhead")
	}
	return &Link{cfg: cfg, gen: rng.New(cfg.Seed)}, nil
}

// Airtime returns the modeled on-air duration of a payload of n bytes.
func (l *Link) Airtime(n int) time.Duration {
	bits := float64(n+l.cfg.OverheadBytes) * 8
	return time.Duration(bits / l.cfg.EffectiveBitrate * float64(time.Second))
}

// Transmit sends one marshaled packet. It returns the bytes delivered to
// the receiver (nil if the packet was dropped) and the airtime consumed
// (spent even on dropped packets — the radio transmitted regardless).
func (l *Link) Transmit(frame []byte) ([]byte, time.Duration) {
	at := l.Airtime(len(frame))
	l.sent++
	l.bytesOnAir += int64(len(frame) + l.cfg.OverheadBytes)
	l.airtime += at
	if l.cfg.DropProb > 0 && l.gen.Bernoulli(l.cfg.DropProb) {
		l.dropped++
		return nil, at
	}
	out := append([]byte(nil), frame...)
	if l.cfg.BitFlipProb > 0 {
		flipped := false
		for i := range out {
			if l.gen.Bernoulli(l.cfg.BitFlipProb) {
				out[i] ^= 1 << uint(l.gen.Intn(8))
				flipped = true
			}
		}
		if flipped {
			l.corrupted++
		}
	}
	return out, at
}

// TransmitPacket marshals and transmits a pipeline packet, returning the
// parsed packet on the receive side (nil if dropped or rejected by the
// checksum) together with the airtime.
func (l *Link) TransmitPacket(p *core.Packet) (*core.Packet, time.Duration, error) {
	frame, err := p.Marshal()
	if err != nil {
		return nil, 0, err
	}
	rx, at := l.Transmit(frame)
	if rx == nil {
		return nil, at, nil
	}
	pkt, _, err := core.UnmarshalPacket(rx)
	if err != nil {
		// Corruption detected by the checksum: the receiver discards the
		// frame, equivalent to a drop at the application layer.
		return nil, at, nil
	}
	return pkt, at, nil
}

// Stats reports the link counters.
type Stats struct {
	Sent, Dropped, Corrupted int64
	BytesOnAir               int64
	Airtime                  time.Duration
}

// Stats returns a snapshot of the counters.
func (l *Link) Stats() Stats {
	return Stats{
		Sent: l.sent, Dropped: l.dropped, Corrupted: l.corrupted,
		BytesOnAir: l.bytesOnAir, Airtime: l.airtime,
	}
}
