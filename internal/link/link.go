// Package link models the Bluetooth transport between the mote and the
// coordinator: serial-port-profile framing over a class-2 module (the
// Shimmer mainboard carries a Bluetooth module driven by the MSP430's
// UART; the coordinator side uses BTStack).
//
// The model captures what the energy evaluation needs — per-packet
// airtime at an effective payload rate plus per-packet protocol
// overhead — and what the robustness tests need: deterministic, seeded
// fault injection. Losses follow either an i.i.d. Bernoulli model
// (DropProb) or a Gilbert–Elliott two-state burst channel (Burst), and
// the link can additionally corrupt, reorder, duplicate and
// jitter-delay frames. Every injected fault is surfaced through Stats.
package link

import (
	"fmt"
	"time"

	"csecg/internal/core"
	"csecg/internal/rng"
	"csecg/internal/telemetry"
)

// BurstConfig parameterizes the Gilbert–Elliott two-state burst-loss
// channel: the link alternates between a good and a bad state with
// per-packet transition probabilities, and each state drops packets at
// its own rate. The classic Gilbert model (good never drops, bad always
// drops) is the default: a zero LossBad is treated as 1.
type BurstConfig struct {
	// PGoodBad (p) is the per-packet good→bad transition probability.
	PGoodBad float64
	// PBadGood (r) is the per-packet bad→good transition probability.
	// Mean burst length is 1/r packets.
	PBadGood float64
	// LossGood is the loss probability while in the good state
	// (default 0).
	LossGood float64
	// LossBad is the loss probability while in the bad state. Zero is
	// treated as 1 (the classic Gilbert channel).
	LossBad float64
}

// normalized applies the LossBad default.
func (b BurstConfig) normalized() BurstConfig {
	if b.LossBad == 0 {
		b.LossBad = 1
	}
	return b
}

// StationaryLoss returns the long-run packet loss rate of the chain:
// π_bad·LossBad + π_good·LossGood with π_bad = p/(p+r). For the default
// Gilbert channel this is p/(p+r).
func (b BurstConfig) StationaryLoss() float64 {
	b = b.normalized()
	denom := b.PGoodBad + b.PBadGood
	if denom == 0 {
		// The chain never leaves its initial (good) state.
		return b.LossGood
	}
	piBad := b.PGoodBad / denom
	return piBad*b.LossBad + (1-piBad)*b.LossGood
}

// validate checks all probabilities.
func (b BurstConfig) validate() error {
	for _, p := range []float64{b.PGoodBad, b.PBadGood, b.LossGood, b.LossBad} {
		if p < 0 || p > 1 {
			return fmt.Errorf("link: burst probability %v out of [0, 1]", p)
		}
	}
	return nil
}

// Config describes the link.
type Config struct {
	// EffectiveBitrate is the sustained SPP payload rate in bits/s.
	// Class-2 modules on a 115.2 kBd UART sustain roughly 90 kbit/s.
	EffectiveBitrate float64
	// OverheadBytes is the per-packet protocol overhead
	// (RFCOMM/L2CAP/baseband headers amortized per ~srr packet).
	OverheadBytes int
	// DropProb is the i.i.d. packet-loss probability (0 for a clean
	// link). Ignored when Burst is set.
	DropProb float64
	// Burst, when non-nil, replaces the i.i.d. model with the
	// Gilbert–Elliott burst channel.
	Burst *BurstConfig
	// BitFlipProb is the per-byte corruption probability after CRC
	// bypass — used to verify the decoder's checksum rejects damage.
	BitFlipProb float64
	// ReorderProb is the probability a delivered frame is held back and
	// released after the next delivered frame (adjacent swap), modeling
	// out-of-order delivery across L2CAP retransmission rounds.
	ReorderProb float64
	// DupProb is the probability a delivered frame arrives twice
	// (baseband retransmission despite a received ACK).
	DupProb float64
	// JitterMax bounds the uniform per-frame latency jitter added on
	// top of the airtime (0 disables jitter accounting).
	JitterMax time.Duration
	// ClockDriftPPM is the mote crystal's frequency error in parts per
	// million (positive = the mote clock runs fast). The skew between
	// the mote's window clock and the coordinator's slot clock accrues
	// one window period at a time through EndWindow; once it exceeds a
	// full period the mote has produced an extra (or one fewer) window
	// within the coordinator's slot grid.
	ClockDriftPPM float64
	// Seed drives the loss/corruption/reorder/jitter stream.
	Seed uint64
}

// DefaultConfig returns a clean 90 kbit/s link.
func DefaultConfig() Config {
	return Config{EffectiveBitrate: 90_000, OverheadBytes: 12}
}

// Link transports marshaled packets with modeled airtime.
type Link struct {
	cfg      Config
	burst    BurstConfig
	hasBurst bool
	inBad    bool
	gen      *rng.Xoshiro

	// held is a frame stashed by the reorder model, released after the
	// next delivered frame.
	held []byte

	// Counters.
	sent, dropped, corrupted int64
	duplicated, reordered    int64
	badSlots                 int64
	bytesOnAir               int64
	airtime                  time.Duration
	jitterTotal, jitterMax   time.Duration
	driftSkew                time.Duration

	met *linkMetrics
}

// linkMetrics caches the telemetry pointers the transmit path records
// into, resolved once at Instrument time.
type linkMetrics struct {
	sent, dropped, corrupted, bytesOnAir *telemetry.Counter
	airtimeNs                            *telemetry.Counter
	frameAirtimeNs                       *telemetry.Histogram
}

// New builds a link. It returns an error for a non-positive bitrate or
// probabilities outside [0, 1].
func New(cfg Config) (*Link, error) {
	if cfg.EffectiveBitrate <= 0 {
		return nil, fmt.Errorf("link: bitrate %v must be positive", cfg.EffectiveBitrate)
	}
	for _, p := range []float64{cfg.DropProb, cfg.BitFlipProb, cfg.ReorderProb, cfg.DupProb} {
		if p < 0 || p > 1 {
			return nil, fmt.Errorf("link: probabilities out of [0, 1]")
		}
	}
	if cfg.OverheadBytes < 0 {
		return nil, fmt.Errorf("link: negative overhead")
	}
	if cfg.JitterMax < 0 {
		return nil, fmt.Errorf("link: negative jitter bound")
	}
	if cfg.ClockDriftPPM < -1e6 || cfg.ClockDriftPPM > 1e6 {
		return nil, fmt.Errorf("link: clock drift %v ppm out of ±1e6", cfg.ClockDriftPPM)
	}
	l := &Link{cfg: cfg, gen: rng.New(cfg.Seed)}
	if cfg.Burst != nil {
		if err := cfg.Burst.validate(); err != nil {
			return nil, err
		}
		l.burst = cfg.Burst.normalized()
		l.hasBurst = true
	}
	return l, nil
}

// Instrument attaches session telemetry under the given metric-name
// prefix (e.g. "link" or "ctrl", so the data downlink and the control
// uplink stay distinguishable). A nil registry detaches.
func (l *Link) Instrument(reg *telemetry.Registry, prefix string) {
	if reg == nil {
		l.met = nil
		return
	}
	if prefix == "" {
		prefix = "link"
	}
	l.met = &linkMetrics{
		sent:           reg.Counter(prefix + "_sent_total"),
		dropped:        reg.Counter(prefix + "_dropped_total"),
		corrupted:      reg.Counter(prefix + "_corrupted_total"),
		bytesOnAir:     reg.Counter(prefix + "_bytes_on_air_total"),
		airtimeNs:      reg.Counter(prefix + "_airtime_ns_total"),
		frameAirtimeNs: reg.Histogram(prefix + "_frame_airtime_ns"),
	}
}

// Airtime returns the modeled on-air duration of a payload of n bytes.
func (l *Link) Airtime(n int) time.Duration {
	bits := float64(n+l.cfg.OverheadBytes) * 8
	return time.Duration(bits / l.cfg.EffectiveBitrate * float64(time.Second))
}

// lose decides whether the current frame is lost, advancing the channel
// state for the burst model.
func (l *Link) lose() bool {
	if !l.hasBurst {
		return l.cfg.DropProb > 0 && l.gen.Bernoulli(l.cfg.DropProb)
	}
	var p float64
	if l.inBad {
		l.badSlots++
		p = l.burst.LossBad
	} else {
		p = l.burst.LossGood
	}
	lost := p > 0 && l.gen.Bernoulli(p)
	// State transition after the loss decision, so a frame sent the
	// instant the channel degrades still sees the old state.
	if l.inBad {
		if l.burst.PBadGood > 0 && l.gen.Bernoulli(l.burst.PBadGood) {
			l.inBad = false
		}
	} else if l.burst.PGoodBad > 0 && l.gen.Bernoulli(l.burst.PGoodBad) {
		l.inBad = true
	}
	return lost
}

// TransmitMulti sends one frame and returns every frame reaching the
// receiver as a consequence: none (dropped, or held back by the reorder
// model), one, or several (a duplicate, or a previously held frame
// released behind this one). The airtime is spent regardless — the
// radio transmitted.
func (l *Link) TransmitMulti(frame []byte) ([][]byte, time.Duration) {
	at := l.Airtime(len(frame))
	l.sent++
	l.bytesOnAir += int64(len(frame) + l.cfg.OverheadBytes)
	l.airtime += at
	if l.met != nil {
		l.met.sent.Inc()
		l.met.bytesOnAir.Add(int64(len(frame) + l.cfg.OverheadBytes))
		l.met.airtimeNs.Add(int64(at))
		l.met.frameAirtimeNs.Observe(int64(at))
	}
	if l.lose() {
		l.dropped++
		if l.met != nil {
			l.met.dropped.Inc()
		}
		return nil, at
	}
	out := append([]byte(nil), frame...)
	if l.cfg.BitFlipProb > 0 {
		flipped := false
		for i := range out {
			if l.gen.Bernoulli(l.cfg.BitFlipProb) {
				out[i] ^= 1 << uint(l.gen.Intn(8))
				flipped = true
			}
		}
		if flipped {
			l.corrupted++
			if l.met != nil {
				l.met.corrupted.Inc()
			}
		}
	}
	if l.cfg.JitterMax > 0 {
		j := time.Duration(l.gen.Float64() * float64(l.cfg.JitterMax))
		l.jitterTotal += j
		if j > l.jitterMax {
			l.jitterMax = j
		}
	}
	if l.cfg.ReorderProb > 0 && l.held == nil && l.gen.Bernoulli(l.cfg.ReorderProb) {
		l.held = out
		return nil, at
	}
	frames := [][]byte{out}
	if l.cfg.DupProb > 0 && l.gen.Bernoulli(l.cfg.DupProb) {
		l.duplicated++
		frames = append(frames, append([]byte(nil), out...))
	}
	if l.held != nil {
		l.reordered++
		frames = append(frames, l.held)
		l.held = nil
	}
	return frames, at
}

// EndWindow advances the drift model by one nominal window period and
// returns the cumulative mote-versus-coordinator clock skew. Drivers
// call it once per window slot; when the magnitude of the returned skew
// crosses a full period, the mote's window production has slipped one
// slot against the coordinator's grid (the driver injects the extra or
// missing window and discounts a period from its own threshold).
func (l *Link) EndWindow(nominal time.Duration) time.Duration {
	l.driftSkew += time.Duration(float64(nominal) * l.cfg.ClockDriftPPM / 1e6)
	return l.driftSkew
}

// DriftSkew returns the accumulated clock skew.
func (l *Link) DriftSkew() time.Duration { return l.driftSkew }

// Flush releases any frame still held by the reorder model (end of
// session: the delayed frame eventually arrives).
func (l *Link) Flush() [][]byte {
	if l.held == nil {
		return nil
	}
	out := [][]byte{l.held}
	l.held = nil
	l.reordered++
	return out
}

// Transmit is the single-frame convenience for channels without
// reordering or duplication: it returns the delivered frame (nil if the
// frame was dropped) and the airtime consumed.
func (l *Link) Transmit(frame []byte) ([]byte, time.Duration) {
	frames, at := l.TransmitMulti(frame)
	if len(frames) == 0 {
		return nil, at
	}
	return frames[0], at
}

// TransmitPacketMulti marshals and transmits a pipeline packet,
// returning every parsed packet reaching the receive side. Frames the
// checksum rejects are discarded, equivalent to a drop at the
// application layer.
func (l *Link) TransmitPacketMulti(p *core.Packet) ([]*core.Packet, time.Duration, error) {
	frame, err := p.Marshal()
	if err != nil {
		return nil, 0, err
	}
	frames, at := l.TransmitMulti(frame)
	return parseFrames(frames), at, nil
}

// FlushPackets parses any frame still held by the reorder model.
func (l *Link) FlushPackets() []*core.Packet {
	return parseFrames(l.Flush())
}

func parseFrames(frames [][]byte) []*core.Packet {
	var pkts []*core.Packet
	for _, f := range frames {
		pkt, _, err := core.UnmarshalPacket(f)
		if err != nil {
			continue
		}
		pkts = append(pkts, pkt)
	}
	return pkts
}

// TransmitPacket marshals and transmits a pipeline packet, returning the
// parsed packet on the receive side (nil if dropped or rejected by the
// checksum) together with the airtime.
func (l *Link) TransmitPacket(p *core.Packet) (*core.Packet, time.Duration, error) {
	pkts, at, err := l.TransmitPacketMulti(p)
	if err != nil || len(pkts) == 0 {
		return nil, at, err
	}
	return pkts[0], at, nil
}

// Stats reports the link counters.
type Stats struct {
	// Sent counts transmission attempts; Dropped the frames lost by the
	// channel; Corrupted the delivered frames that took at least one bit
	// flip (the packet checksum rejects these downstream).
	Sent, Dropped, Corrupted int64
	// Duplicated and Reordered count injected duplicate deliveries and
	// held-back frames released out of order.
	Duplicated, Reordered int64
	// BadSlots counts frames sent while the burst channel was in its
	// bad state (0 for the i.i.d. model).
	BadSlots   int64
	BytesOnAir int64
	Airtime    time.Duration
	// JitterTotal and JitterMax summarize the injected latency jitter.
	JitterTotal, JitterMax time.Duration
	// DriftSkew is the accumulated mote-versus-coordinator clock skew
	// under ClockDriftPPM.
	DriftSkew time.Duration
}

// Stats returns a snapshot of the counters.
func (l *Link) Stats() Stats {
	return Stats{
		Sent: l.sent, Dropped: l.dropped, Corrupted: l.corrupted,
		Duplicated: l.duplicated, Reordered: l.reordered, BadSlots: l.badSlots,
		BytesOnAir: l.bytesOnAir, Airtime: l.airtime,
		JitterTotal: l.jitterTotal, JitterMax: l.jitterMax,
		DriftSkew: l.driftSkew,
	}
}
