package link

import (
	"math"
	"testing"
	"time"

	"csecg/internal/core"
)

func TestAirtime(t *testing.T) {
	l, err := New(Config{EffectiveBitrate: 100_000, OverheadBytes: 10})
	if err != nil {
		t.Fatal(err)
	}
	// 90 payload + 10 overhead = 800 bits at 100 kbit/s = 8 ms.
	if got := l.Airtime(90); got != 8*time.Millisecond {
		t.Errorf("Airtime = %v, want 8ms", got)
	}
}

func TestNewValidation(t *testing.T) {
	bad := []Config{
		{EffectiveBitrate: 0},
		{EffectiveBitrate: 1000, DropProb: -0.1},
		{EffectiveBitrate: 1000, DropProb: 1.5},
		{EffectiveBitrate: 1000, BitFlipProb: 2},
		{EffectiveBitrate: 1000, OverheadBytes: -1},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

func TestCleanLinkDeliversIntact(t *testing.T) {
	l, _ := New(DefaultConfig())
	frame := []byte{1, 2, 3, 4, 5}
	rx, at := l.Transmit(frame)
	if rx == nil {
		t.Fatal("clean link dropped a frame")
	}
	if at <= 0 {
		t.Error("zero airtime")
	}
	for i := range frame {
		if rx[i] != frame[i] {
			t.Fatal("clean link corrupted a frame")
		}
	}
	// The returned slice must be a copy, not an alias.
	rx[0] = 99
	if frame[0] == 99 {
		t.Error("Transmit aliases the input frame")
	}
}

func TestDropRateApproximate(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DropProb = 0.3
	cfg.Seed = 7
	l, _ := New(cfg)
	frame := make([]byte, 50)
	const n = 5000
	delivered := 0
	for i := 0; i < n; i++ {
		if rx, _ := l.Transmit(frame); rx != nil {
			delivered++
		}
	}
	got := 1 - float64(delivered)/n
	if math.Abs(got-0.3) > 0.03 {
		t.Errorf("observed drop rate %v, want ≈0.3", got)
	}
	st := l.Stats()
	if st.Sent != n || st.Dropped != int64(n-delivered) {
		t.Errorf("stats inconsistent: %+v", st)
	}
	if st.Airtime <= 0 || st.BytesOnAir != int64(n*(50+cfg.OverheadBytes)) {
		t.Errorf("airtime accounting wrong: %+v", st)
	}
}

func TestCorruptionIsDetectedByPacketChecksum(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BitFlipProb = 0.0005 // ≈23% of 526-byte frames take at least one flip
	cfg.Seed = 3
	l, _ := New(cfg)
	pkt := &core.Packet{Seq: 1, Kind: core.KindKey, Payload: make([]byte, 512)}
	const n = 400
	var delivered, rejected int
	for i := 0; i < n; i++ {
		rx, _, err := l.TransmitPacket(pkt)
		if err != nil {
			t.Fatal(err)
		}
		if rx != nil {
			delivered++
			// Anything delivered must be intact.
			if rx.Seq != 1 || len(rx.Payload) != 512 {
				t.Fatal("corrupted packet slipped through the checksum")
			}
		} else {
			rejected++
		}
	}
	if rejected == 0 {
		t.Error("2% per-byte flips never caused a rejection over 400 packets")
	}
	if delivered == 0 {
		t.Error("every packet rejected; corruption model too aggressive")
	}
	if st := l.Stats(); st.Corrupted == 0 {
		t.Error("corruption counter not incremented")
	}
}

func TestTransmitPacketRoundTrip(t *testing.T) {
	l, _ := New(DefaultConfig())
	pkt := &core.Packet{Seq: 9, Kind: core.KindDelta, NumSymbols: 256, Payload: []byte{1, 2, 3}}
	rx, at, err := l.TransmitPacket(pkt)
	if err != nil {
		t.Fatal(err)
	}
	if rx == nil {
		t.Fatal("clean link dropped packet")
	}
	if rx.Seq != 9 || rx.Kind != core.KindDelta || rx.NumSymbols != 256 {
		t.Errorf("packet fields mangled: %+v", rx)
	}
	wantAt := l.Airtime(pkt.WireSize())
	if at != wantAt {
		t.Errorf("airtime %v, want %v", at, wantAt)
	}
}
