package link

import (
	"math"
	"testing"
	"time"

	"csecg/internal/core"
)

func TestAirtime(t *testing.T) {
	l, err := New(Config{EffectiveBitrate: 100_000, OverheadBytes: 10})
	if err != nil {
		t.Fatal(err)
	}
	// 90 payload + 10 overhead = 800 bits at 100 kbit/s = 8 ms.
	if got := l.Airtime(90); got != 8*time.Millisecond {
		t.Errorf("Airtime = %v, want 8ms", got)
	}
}

func TestNewValidation(t *testing.T) {
	bad := []Config{
		{EffectiveBitrate: 0},
		{EffectiveBitrate: 1000, DropProb: -0.1},
		{EffectiveBitrate: 1000, DropProb: 1.5},
		{EffectiveBitrate: 1000, BitFlipProb: 2},
		{EffectiveBitrate: 1000, OverheadBytes: -1},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

func TestCleanLinkDeliversIntact(t *testing.T) {
	l, _ := New(DefaultConfig())
	frame := []byte{1, 2, 3, 4, 5}
	rx, at := l.Transmit(frame)
	if rx == nil {
		t.Fatal("clean link dropped a frame")
	}
	if at <= 0 {
		t.Error("zero airtime")
	}
	for i := range frame {
		if rx[i] != frame[i] {
			t.Fatal("clean link corrupted a frame")
		}
	}
	// The returned slice must be a copy, not an alias.
	rx[0] = 99
	if frame[0] == 99 {
		t.Error("Transmit aliases the input frame")
	}
}

func TestDropRateApproximate(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DropProb = 0.3
	cfg.Seed = 7
	l, _ := New(cfg)
	frame := make([]byte, 50)
	const n = 5000
	delivered := 0
	for i := 0; i < n; i++ {
		if rx, _ := l.Transmit(frame); rx != nil {
			delivered++
		}
	}
	got := 1 - float64(delivered)/n
	if math.Abs(got-0.3) > 0.03 {
		t.Errorf("observed drop rate %v, want ≈0.3", got)
	}
	st := l.Stats()
	if st.Sent != n || st.Dropped != int64(n-delivered) {
		t.Errorf("stats inconsistent: %+v", st)
	}
	if st.Airtime <= 0 || st.BytesOnAir != int64(n*(50+cfg.OverheadBytes)) {
		t.Errorf("airtime accounting wrong: %+v", st)
	}
}

func TestCorruptionIsDetectedByPacketChecksum(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BitFlipProb = 0.0005 // ≈23% of 526-byte frames take at least one flip
	cfg.Seed = 3
	l, _ := New(cfg)
	pkt := &core.Packet{Seq: 1, Kind: core.KindKey, Payload: make([]byte, 512)}
	const n = 400
	var delivered, rejected int
	for i := 0; i < n; i++ {
		rx, _, err := l.TransmitPacket(pkt)
		if err != nil {
			t.Fatal(err)
		}
		if rx != nil {
			delivered++
			// Anything delivered must be intact.
			if rx.Seq != 1 || len(rx.Payload) != 512 {
				t.Fatal("corrupted packet slipped through the checksum")
			}
		} else {
			rejected++
		}
	}
	if rejected == 0 {
		t.Error("2% per-byte flips never caused a rejection over 400 packets")
	}
	if delivered == 0 {
		t.Error("every packet rejected; corruption model too aggressive")
	}
	if st := l.Stats(); st.Corrupted == 0 {
		t.Error("corruption counter not incremented")
	}
}

// TestGilbertElliottStationaryLoss checks the burst channel's long-run
// loss rate against the analytic π_bad = p/(p+r) at fixed seeds.
func TestGilbertElliottStationaryLoss(t *testing.T) {
	cases := []struct {
		p, r float64
		seed uint64
	}{
		{0.05, 0.50, 11},
		{0.10, 0.30, 12},
		{0.02, 0.20, 13},
		{0.50, 0.50, 14},
		{0.01, 0.04, 15},
	}
	frame := make([]byte, 50)
	for _, tc := range cases {
		cfg := DefaultConfig()
		cfg.Burst = &BurstConfig{PGoodBad: tc.p, PBadGood: tc.r}
		cfg.Seed = tc.seed
		l, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		const n = 50_000
		for i := 0; i < n; i++ {
			l.TransmitMulti(frame)
		}
		st := l.Stats()
		got := float64(st.Dropped) / n
		want := cfg.Burst.StationaryLoss()
		if wantAnalytic := tc.p / (tc.p + tc.r); math.Abs(want-wantAnalytic) > 1e-12 {
			t.Errorf("p=%v r=%v: StationaryLoss=%v, want %v", tc.p, tc.r, want, wantAnalytic)
		}
		tol := 0.15 * want // 15% relative at 50k frames
		if tol < 0.004 {
			tol = 0.004
		}
		if math.Abs(got-want) > tol {
			t.Errorf("p=%v r=%v: observed loss %v, want ≈%v", tc.p, tc.r, got, want)
		}
		if st.BadSlots == 0 {
			t.Errorf("p=%v r=%v: bad-state occupancy never counted", tc.p, tc.r)
		}
	}
}

// TestGilbertElliottBurstiness checks that losses cluster: the mean loss
// burst length approaches 1/r, far above the i.i.d. value at the same
// stationary rate.
func TestGilbertElliottBurstiness(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Burst = &BurstConfig{PGoodBad: 0.02, PBadGood: 0.25}
	cfg.Seed = 77
	l, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	frame := make([]byte, 50)
	var bursts, lostTotal, run int
	const n = 60_000
	for i := 0; i < n; i++ {
		rx, _ := l.TransmitMulti(frame)
		if len(rx) == 0 {
			if run == 0 {
				bursts++
			}
			run++
			lostTotal++
		} else {
			run = 0
		}
	}
	if bursts == 0 {
		t.Fatal("no loss bursts observed")
	}
	mean := float64(lostTotal) / float64(bursts)
	want := 1 / 0.25
	if math.Abs(mean-want) > 0.2*want {
		t.Errorf("mean burst length %.2f, want ≈%.1f", mean, want)
	}
}

func TestGilbertElliottValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Burst = &BurstConfig{PGoodBad: 1.5}
	if _, err := New(cfg); err == nil {
		t.Error("out-of-range burst probability accepted")
	}
}

// TestReorderSwapsAdjacent drives the reorder model at probability 1:
// frames must arrive as adjacent swaps with nothing lost.
func TestReorderSwapsAdjacent(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ReorderProb = 1
	cfg.Seed = 5
	l, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var got []byte
	for i := byte(0); i < 8; i++ {
		frames, _ := l.TransmitMulti([]byte{i})
		for _, f := range frames {
			got = append(got, f[0])
		}
	}
	for _, f := range l.Flush() {
		got = append(got, f[0])
	}
	want := []byte{1, 0, 3, 2, 5, 4, 7, 6}
	if len(got) != len(want) {
		t.Fatalf("delivered %d frames, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("delivery order %v, want %v", got, want)
		}
	}
	if st := l.Stats(); st.Reordered != 4 {
		t.Errorf("Reordered = %d, want 4", st.Reordered)
	}
}

// TestDuplicationDeliversTwice drives DupProb=1.
func TestDuplicationDeliversTwice(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DupProb = 1
	cfg.Seed = 5
	l, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	frames, _ := l.TransmitMulti([]byte{42})
	if len(frames) != 2 || frames[0][0] != 42 || frames[1][0] != 42 {
		t.Fatalf("dup delivery = %v frames", len(frames))
	}
	if st := l.Stats(); st.Duplicated != 1 {
		t.Errorf("Duplicated = %d, want 1", st.Duplicated)
	}
}

// TestJitterAccounting checks the jitter counters move and stay bounded.
func TestJitterAccounting(t *testing.T) {
	cfg := DefaultConfig()
	cfg.JitterMax = 40 * time.Millisecond
	cfg.Seed = 8
	l, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		l.TransmitMulti([]byte{1, 2, 3})
	}
	st := l.Stats()
	if st.JitterTotal <= 0 {
		t.Error("jitter never accumulated")
	}
	if st.JitterMax <= 0 || st.JitterMax >= cfg.JitterMax {
		t.Errorf("max jitter %v outside (0, %v)", st.JitterMax, cfg.JitterMax)
	}
}

func TestTransmitPacketRoundTrip(t *testing.T) {
	l, _ := New(DefaultConfig())
	pkt := &core.Packet{Seq: 9, Kind: core.KindDelta, NumSymbols: 256, Payload: []byte{1, 2, 3}}
	rx, at, err := l.TransmitPacket(pkt)
	if err != nil {
		t.Fatal(err)
	}
	if rx == nil {
		t.Fatal("clean link dropped packet")
	}
	if rx.Seq != 9 || rx.Kind != core.KindDelta || rx.NumSymbols != 256 {
		t.Errorf("packet fields mangled: %+v", rx)
	}
	wantAt := l.Airtime(pkt.WireSize())
	if at != wantAt {
		t.Errorf("airtime %v, want %v", at, wantAt)
	}
}

func TestClockDriftAccrues(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ClockDriftPPM = 50 // typical watch-crystal tolerance
	l, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const period = 2 * time.Second
	var skew time.Duration
	for i := 0; i < 100; i++ {
		skew = l.EndWindow(period)
	}
	// 50 ppm over 100 × 2 s windows = 10 ms of skew.
	if want := 10 * time.Millisecond; skew != want {
		t.Errorf("skew after 100 windows = %v, want %v", skew, want)
	}
	if got := l.Stats().DriftSkew; got != skew {
		t.Errorf("Stats().DriftSkew = %v, want %v", got, skew)
	}
	if got := l.DriftSkew(); got != skew {
		t.Errorf("DriftSkew() = %v, want %v", got, skew)
	}
}

func TestClockDriftNegativeAndInert(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ClockDriftPPM = -100 // slow mote clock
	l, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if skew := l.EndWindow(time.Second); skew != -100*time.Microsecond {
		t.Errorf("negative drift skew = %v, want -100µs", skew)
	}
	inert, _ := New(DefaultConfig())
	if skew := inert.EndWindow(time.Second); skew != 0 {
		t.Errorf("zero-ppm link accrued skew %v", skew)
	}
	bad := DefaultConfig()
	bad.ClockDriftPPM = 2e6
	if _, err := New(bad); err == nil {
		t.Error("drift beyond ±1e6 ppm accepted")
	}
}
