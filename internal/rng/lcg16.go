package rng

// LCG16 is a 16-bit linear congruential generator sized for the
// MSP430-class mote model. One draw costs a single 16×16→32 hardware
// multiply plus an add, which is the cheapest way the node can
// regenerate the pseudo-random support of the sensing matrix without
// storing it (the paper's approach (2) stores pre-generated randomness;
// approach (3), reproduced here, derives the sparse support from a tiny
// seeded generator shared between encoder and decoder).
//
// The generator is a full-period mixed LCG modulo 2^16 with the Hull-
// Dobell conditions satisfied (c odd, a−1 divisible by 4), so every
// 16-bit state occurs exactly once per period.
type LCG16 struct {
	state uint16
}

// LCG16 parameters. a−1 = 0x6C78 is divisible by 4 and c is odd, giving
// the full 2^16 period.
const (
	lcgMulA = 0x6C79
	lcgIncC = 0x5D2B
)

// NewLCG16 returns an LCG16 seeded with seed. All seeds are valid.
func NewLCG16(seed uint16) *LCG16 {
	return &LCG16{state: seed}
}

// Uint16 advances the generator and returns the new state.
func (g *LCG16) Uint16() uint16 {
	g.state = g.state*lcgMulA + lcgIncC
	return g.state
}

// Intn returns a value in [0, n) by the fixed-point multiply-shift trick:
// (draw × n) >> 16. This is exactly the operation an MSP430 performs with
// its hardware multiplier and introduces a bias below 1/2^16 per bucket,
// irrelevant for support selection but accounted for in tests.
func (g *LCG16) Intn(n int) int {
	if n <= 0 || n > 1<<16 {
		panic("rng: LCG16.Intn range out of [1, 65536]")
	}
	return int(uint32(g.Uint16()) * uint32(n) >> 16)
}

// SampleK writes k distinct integers from [0, n) into dst in ascending
// order using repeated rejection, mirroring the mote's column-support
// generation. It panics if k > n.
func (g *LCG16) SampleK(dst []int, k, n int) {
	if k > n {
		panic("rng: LCG16.SampleK with k > n")
	}
	seen := make(map[int]struct{}, k)
	i := 0
	for i < k {
		v := g.Intn(n)
		if _, dup := seen[v]; dup {
			continue
		}
		seen[v] = struct{}{}
		dst[i] = v
		i++
	}
	insertionSort(dst[:k])
}

// State returns the current internal state, letting the decoder clone the
// encoder's generator mid-stream.
func (g *LCG16) State() uint16 { return g.state }
