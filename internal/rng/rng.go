// Package rng provides deterministic pseudo-random number generators for
// the CS-ECG pipeline.
//
// The pipeline needs reproducible randomness in three places: the sparse
// binary sensing matrix (column support selection), the dense Gaussian and
// Bernoulli baseline sensing matrices, and the synthetic ECG record set
// (per-record morphology, noise and arrhythmia). All of them must be
// bit-reproducible across runs and platforms, so this package implements
// its own generators instead of relying on math/rand internals, which are
// free to change between Go releases.
//
// Two classes of generator are provided:
//
//   - Xoshiro256** seeded through SplitMix64: the reference generator used
//     on the decoder/coordinator side and in the experiment harness.
//   - LCG16: a 16-bit multiplicative congruential generator cheap enough
//     for the MSP430-class mote model (one 16×16 hardware multiply per
//     draw), used to regenerate sensing-matrix supports on the node.
package rng

import "math"

// SplitMix64 is a tiny 64-bit generator used to expand a single seed word
// into the larger state of Xoshiro256. It is also a fine standalone
// generator for non-critical uses.
type SplitMix64 struct {
	state uint64
}

// NewSplitMix64 returns a SplitMix64 seeded with seed.
func NewSplitMix64(seed uint64) *SplitMix64 {
	return &SplitMix64{state: seed}
}

// Uint64 returns the next value of the sequence.
func (s *SplitMix64) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Xoshiro implements xoshiro256**, a fast all-purpose 64-bit generator
// with a 2^256−1 period. The zero value is not a valid generator; use
// New.
type Xoshiro struct {
	s [4]uint64

	// spare-normal cache for NormFloat64.
	spare     float64
	haveSpare bool
}

// New returns a Xoshiro generator whose 256-bit state is expanded from
// seed with SplitMix64, as recommended by the xoshiro authors. Any seed,
// including zero, yields a valid state.
func New(seed uint64) *Xoshiro {
	sm := NewSplitMix64(seed)
	var x Xoshiro
	for i := range x.s {
		x.s[i] = sm.Uint64()
	}
	// The all-zero state is the single invalid state; SplitMix64 cannot
	// produce four consecutive zeros, but guard anyway.
	if x.s[0]|x.s[1]|x.s[2]|x.s[3] == 0 {
		x.s[0] = 0x9e3779b97f4a7c15
	}
	return &x
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Uint64 returns the next 64-bit value of the sequence.
func (x *Xoshiro) Uint64() uint64 {
	result := rotl(x.s[1]*5, 7) * 9
	t := x.s[1] << 17
	x.s[2] ^= x.s[0]
	x.s[3] ^= x.s[1]
	x.s[1] ^= x.s[2]
	x.s[0] ^= x.s[3]
	x.s[2] ^= t
	x.s[3] = rotl(x.s[3], 45)
	return result
}

// Intn returns a uniformly distributed int in [0, n). It panics if n <= 0.
// Lemire's multiply-shift rejection method keeps the draw unbiased without
// a modulo in the common case.
func (x *Xoshiro) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	bound := uint64(n)
	for {
		v := x.Uint64()
		hi, lo := mul64(v, bound)
		if lo >= bound || lo >= -bound%bound {
			return int(hi)
		}
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 1<<32 - 1
	a0, a1 := a&mask, a>>32
	b0, b1 := b&mask, b>>32
	w0 := a0 * b0
	t := a1*b0 + w0>>32
	w1 := t & mask
	w2 := t >> 32
	w1 += a0 * b1
	hi = a1*b1 + w2 + w1>>32
	lo = a * b
	return
}

// Float64 returns a uniformly distributed float64 in [0, 1) with 53 bits
// of precision.
func (x *Xoshiro) Float64() float64 {
	return float64(x.Uint64()>>11) / (1 << 53)
}

// NormFloat64 returns a standard normal variate using the polar
// (Marsaglia) form of the Box-Muller transform. One spare variate is
// cached between calls.
func (x *Xoshiro) NormFloat64() float64 {
	if x.haveSpare {
		x.haveSpare = false
		return x.spare
	}
	for {
		u := 2*x.Float64() - 1
		v := 2*x.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		f := math.Sqrt(-2 * math.Log(s) / s)
		x.spare = v * f
		x.haveSpare = true
		return u * f
	}
}

// Bernoulli returns true with probability p.
func (x *Xoshiro) Bernoulli(p float64) bool {
	return x.Float64() < p
}

// Sign returns +1 or −1 with equal probability, the symmetric Bernoulli
// variate used for ±1/√N Bernoulli sensing matrices.
func (x *Xoshiro) Sign() int {
	if x.Uint64()&1 == 0 {
		return 1
	}
	return -1
}

// Perm fills dst with a uniformly random permutation of 0..len(dst)-1
// using the Fisher-Yates shuffle.
func (x *Xoshiro) Perm(dst []int) {
	for i := range dst {
		dst[i] = i
	}
	for i := len(dst) - 1; i > 0; i-- {
		j := x.Intn(i + 1)
		dst[i], dst[j] = dst[j], dst[i]
	}
}

// SampleK writes k distinct integers drawn uniformly from [0, n) into dst
// in ascending order. It panics if k > n or len(dst) < k. The selection
// uses Floyd's algorithm, touching O(k) memory, which matters when the
// mote regenerates the support of one sensing-matrix column at a time.
func (x *Xoshiro) SampleK(dst []int, k, n int) {
	if k > n {
		panic("rng: SampleK with k > n")
	}
	chosen := make(map[int]struct{}, k)
	for j := n - k; j < n; j++ {
		t := x.Intn(j + 1)
		if _, dup := chosen[t]; dup {
			t = j
		}
		chosen[t] = struct{}{}
	}
	i := 0
	//csecg:orderok dst is insertion-sorted below, erasing iteration order
	for v := range chosen {
		dst[i] = v
		i++
	}
	insertionSort(dst[:k])
}

func insertionSort(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
