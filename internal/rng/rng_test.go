package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSplitMix64KnownValues(t *testing.T) {
	// Reference values for seed 0 from the canonical splitmix64.c.
	want := []uint64{
		0xe220a8397b1dcdaf,
		0x6e789e6aa1b965f4,
		0x06c45d188009454f,
		0xf88bb8a8724c81ec,
		0x1b39896a51a8749b,
	}
	s := NewSplitMix64(0)
	for i, w := range want {
		if got := s.Uint64(); got != w {
			t.Fatalf("SplitMix64 value %d = %#x, want %#x", i, got, w)
		}
	}
}

func TestXoshiroDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed generators diverged at draw %d", i)
		}
	}
	c := New(43)
	same := 0
	a = New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different-seed generators matched %d/1000 draws", same)
	}
}

func TestXoshiroFloat64Range(t *testing.T) {
	x := New(7)
	for i := 0; i < 100000; i++ {
		f := x.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
	}
}

func TestXoshiroIntnUniform(t *testing.T) {
	x := New(1)
	const n, draws = 10, 200000
	var counts [n]int
	for i := 0; i < draws; i++ {
		v := x.Intn(n)
		if v < 0 || v >= n {
			t.Fatalf("Intn(%d) = %d out of range", n, v)
		}
		counts[v]++
	}
	// Chi-squared test with 9 dof; 27.88 is the 0.1% critical value.
	expected := float64(draws) / n
	chi2 := 0.0
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	if chi2 > 27.88 {
		t.Fatalf("Intn chi-squared %v exceeds critical value", chi2)
	}
}

func TestXoshiroIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestNormFloat64Moments(t *testing.T) {
	x := New(99)
	const n = 400000
	var sum, sumSq, sumCube float64
	for i := 0; i < n; i++ {
		v := x.NormFloat64()
		sum += v
		sumSq += v * v
		sumCube += v * v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	skew := sumCube / n
	if math.Abs(mean) > 0.01 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
	if math.Abs(skew) > 0.03 {
		t.Errorf("normal skew = %v, want ~0", skew)
	}
}

func TestBernoulli(t *testing.T) {
	x := New(5)
	const n = 100000
	for _, p := range []float64{0.1, 0.5, 0.9} {
		hits := 0
		for i := 0; i < n; i++ {
			if x.Bernoulli(p) {
				hits++
			}
		}
		got := float64(hits) / n
		if math.Abs(got-p) > 0.01 {
			t.Errorf("Bernoulli(%v) frequency = %v", p, got)
		}
	}
}

func TestSign(t *testing.T) {
	x := New(6)
	pos := 0
	const n = 100000
	for i := 0; i < n; i++ {
		s := x.Sign()
		if s != 1 && s != -1 {
			t.Fatalf("Sign() = %d", s)
		}
		if s == 1 {
			pos++
		}
	}
	if math.Abs(float64(pos)/n-0.5) > 0.01 {
		t.Errorf("Sign() positive frequency = %v", float64(pos)/n)
	}
}

func TestPermIsPermutation(t *testing.T) {
	x := New(3)
	dst := make([]int, 257)
	x.Perm(dst)
	seen := make([]bool, len(dst))
	for _, v := range dst {
		if v < 0 || v >= len(dst) || seen[v] {
			t.Fatalf("Perm produced invalid permutation (value %d)", v)
		}
		seen[v] = true
	}
}

func TestSampleKProperties(t *testing.T) {
	x := New(11)
	f := func(seed uint64, kRaw, nRaw uint16) bool {
		n := int(nRaw%500) + 1
		k := int(kRaw) % (n + 1)
		dst := make([]int, k)
		x.SampleK(dst, k, n)
		for i, v := range dst {
			if v < 0 || v >= n {
				return false
			}
			if i > 0 && dst[i-1] >= v { // strictly ascending ⇒ distinct
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSampleKCoversRange(t *testing.T) {
	// Over many draws of k=12 from n=512 every row index must eventually
	// appear: the sensing matrix must be able to touch every sample.
	x := New(21)
	seen := make([]bool, 512)
	dst := make([]int, 12)
	for i := 0; i < 2000; i++ {
		x.SampleK(dst, 12, 512)
		for _, v := range dst {
			seen[v] = true
		}
	}
	for i, ok := range seen {
		if !ok {
			t.Fatalf("row %d never sampled", i)
		}
	}
}

func TestLCG16FullPeriod(t *testing.T) {
	g := NewLCG16(0)
	seen := make([]bool, 1<<16)
	for i := 0; i < 1<<16; i++ {
		v := g.Uint16()
		if seen[v] {
			t.Fatalf("state %#x repeated after %d draws (period < 2^16)", v, i)
		}
		seen[v] = true
	}
}

func TestLCG16IntnRange(t *testing.T) {
	g := NewLCG16(1234)
	for i := 0; i < 100000; i++ {
		if v := g.Intn(512); v < 0 || v >= 512 {
			t.Fatalf("LCG16.Intn(512) = %d", v)
		}
	}
}

func TestLCG16SampleKDistinctSorted(t *testing.T) {
	g := NewLCG16(77)
	dst := make([]int, 12)
	for trial := 0; trial < 500; trial++ {
		g.SampleK(dst, 12, 512)
		for i := 1; i < len(dst); i++ {
			if dst[i-1] >= dst[i] {
				t.Fatalf("trial %d: SampleK not strictly ascending: %v", trial, dst)
			}
		}
	}
}

func TestLCG16EncoderDecoderAgree(t *testing.T) {
	// The decoder reconstructs the sensing support by cloning the
	// encoder's generator state; both sides must then see identical
	// streams.
	enc := NewLCG16(0xBEEF)
	for i := 0; i < 100; i++ {
		enc.Uint16()
	}
	dec := NewLCG16(enc.State())
	// Resynchronize: cloning the state means the *next* draws agree.
	encNext := make([]uint16, 50)
	decNext := make([]uint16, 50)
	for i := range encNext {
		encNext[i] = enc.Uint16()
	}
	// dec was seeded with enc's state *before* those draws; replay.
	for i := range decNext {
		decNext[i] = dec.Uint16()
	}
	for i := range encNext {
		if encNext[i] != decNext[i] {
			t.Fatalf("cloned generator diverged at draw %d", i)
		}
	}
}

func BenchmarkXoshiroUint64(b *testing.B) {
	x := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += x.Uint64()
	}
	_ = sink
}

func BenchmarkNormFloat64(b *testing.B) {
	x := New(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += x.NormFloat64()
	}
	_ = sink
}

func BenchmarkLCG16SampleK(b *testing.B) {
	g := NewLCG16(1)
	dst := make([]int, 12)
	for i := 0; i < b.N; i++ {
		g.SampleK(dst, 12, 512)
	}
}
