package monitor

// SetRequestHook installs the test seam that runs at the start of
// every tracked request — used to hold a scrape in flight across
// BeginDrain.
func (s *Server) SetRequestHook(h func(path string)) { s.testHookRequest = h }
