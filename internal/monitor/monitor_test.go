package monitor_test

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"csecg"
	"csecg/internal/coordinator"
	"csecg/internal/monitor"
	"csecg/internal/telemetry"
)

// TestSLOBurnRateLadder walks one tracker through the full alert graph
// — ok → warning → critical → warning → ok — and checks the gauges,
// the counter, and the JSONL transition log agree at every step.
func TestSLOBurnRateLadder(t *testing.T) {
	var sink bytes.Buffer
	reg := telemetry.NewRegistry()
	slo := monitor.NewSLO(monitor.SLOConfig{
		Name: "quality", Budget: 0.2, Window: 10,
		WarnBurn: 1, PageBurn: 2, MinSamples: 2,
	}, "rec 100", reg, &sink)

	now := int64(0)
	observe := func(violated bool) {
		now += 2_000_000_000
		slo.Observe(now, violated)
	}
	// Clean ramp-up: never leaves ok.
	for i := 0; i < 4; i++ {
		observe(false)
	}
	if got := slo.State(); got != monitor.AlertOK {
		t.Fatalf("clean ramp: state %v, want ok", got)
	}
	// One violation in five samples burns the 20 % budget exactly on
	// schedule → warning; three of seven samples burn 2.1× → page.
	observe(true)
	if got := slo.State(); got != monitor.AlertWarning {
		t.Fatalf("burn 1.0: state %v, want warning", got)
	}
	observe(true)
	observe(true)
	if got := slo.State(); got != monitor.AlertCritical {
		t.Fatalf("burn 2.1: state %v, want critical", got)
	}
	if g := reg.Gauge("slo_quality_alert_state").Load(); g != int64(monitor.AlertCritical) {
		t.Errorf("alert gauge %d, want %d", g, monitor.AlertCritical)
	}
	if b := reg.Gauge("slo_quality_burn_milli").Load(); b < 2000 {
		t.Errorf("burn gauge %d milli, want ≥ 2000", b)
	}
	// Clean tail: the window slides the burst out and the alert clears.
	for i := 0; i < 10; i++ {
		observe(false)
	}
	if got := slo.State(); got != monitor.AlertOK {
		t.Fatalf("after clean tail: state %v, want ok", got)
	}
	if got := slo.BurnRate(); got != 0 {
		t.Errorf("burn rate %v after the burst aged out, want 0", got)
	}

	wantPath := []string{"ok→warning", "warning→critical", "critical→warning", "warning→ok"}
	trs := slo.Transitions()
	if len(trs) != len(wantPath) {
		t.Fatalf("got %d transitions %+v, want %d", len(trs), trs, len(wantPath))
	}
	for i, tr := range trs {
		if got := tr.From + "→" + tr.To; got != wantPath[i] {
			t.Errorf("transition %d: %s, want %s", i, got, wantPath[i])
		}
	}
	if c := reg.Counter("slo_quality_transitions_total").Load(); c != int64(len(wantPath)) {
		t.Errorf("transitions counter %d, want %d", c, len(wantPath))
	}

	// The JSONL sink carries the same ladder, one parseable event per line.
	lines := strings.Split(strings.TrimSpace(sink.String()), "\n")
	if len(lines) != len(wantPath) {
		t.Fatalf("sink has %d lines, want %d:\n%s", len(lines), len(wantPath), sink.String())
	}
	for i, line := range lines {
		var ev monitor.Transition
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("line %d not JSON: %v\n%s", i, err, line)
		}
		if ev.SLO != "quality" || ev.Session != "rec 100" {
			t.Errorf("line %d labels: slo=%q session=%q", i, ev.SLO, ev.Session)
		}
		if ev.TimelineNs == 0 || ev.Samples == 0 {
			t.Errorf("line %d missing context: %+v", i, ev)
		}
	}
	if err := slo.SinkErr(); err != nil {
		t.Errorf("sink error: %v", err)
	}
}

// get performs one request against the test server.
func get(t *testing.T, ts *httptest.Server, path string) (int, string) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	body, err := io.ReadAll(resp.Body)
	if cerr := resp.Body.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		t.Fatalf("GET %s body: %v", path, err)
	}
	return resp.StatusCode, string(body)
}

// TestReadyzFollowsHealth pins the readiness contract: not ready with
// no sessions, not ready while a stream is starting or degraded, ready
// exactly while every live coordinator is keyed and decoding, and
// ready again once the streams have finished.
func TestReadyzFollowsHealth(t *testing.T) {
	srv := monitor.NewServer(telemetry.NewManualClock(0))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	if code, body := get(t, ts, "/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("no sessions: /readyz %d (%s), want 503", code, body)
	}
	ses := monitor.NewSession(monitor.SessionConfig{Name: "rec 100"}, nil)
	srv.Attach(ses)
	if code, body := get(t, ts, "/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("starting: /readyz %d (%s), want 503", code, body)
	}

	slot := monitor.SlotStatus{Slot: 1, Windows: 1, Health: coordinator.HealthDecoding}
	ses.OnSlot(slot)
	if code, body := get(t, ts, "/readyz"); code != http.StatusOK {
		t.Fatalf("decoding: /readyz %d (%s), want 200", code, body)
	}

	slot.Health = coordinator.HealthDegraded
	ses.OnSlot(slot)
	code, body := get(t, ts, "/readyz")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("degraded: /readyz %d, want 503", code)
	}
	if !strings.Contains(body, "degraded") {
		t.Errorf("degraded reason missing from body: %s", body)
	}

	slot.Health = coordinator.HealthDecoding
	ses.OnSlot(slot)
	if code, _ := get(t, ts, "/readyz"); code != http.StatusOK {
		t.Fatalf("recovered: /readyz %d, want 200", code)
	}
	ses.Finish()
	if code, body := get(t, ts, "/readyz"); code != http.StatusOK {
		t.Fatalf("finished: /readyz %d (%s), want 200", code, body)
	}
	// Liveness never wavers through any of it.
	if code, _ := get(t, ts, "/healthz"); code != http.StatusOK {
		t.Fatalf("/healthz %d, want 200", code)
	}
}

// TestEndpointsDuringLossyStream is the acceptance check: all four
// endpoints serve while a burst-lossy NACK-enabled RunStream session is
// in flight, and the final snapshots carry the session's quality and
// transport story.
func TestEndpointsDuringLossyStream(t *testing.T) {
	var sink bytes.Buffer
	reg := telemetry.NewRegistry()
	ses := monitor.NewSession(monitor.SessionConfig{Name: `rec "100"`, Registry: reg}, &sink)
	srv := monitor.NewServer(nil)
	srv.Attach(ses)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	lnk := csecg.DefaultLinkConfig()
	lnk.Burst = &csecg.BurstConfig{PGoodBad: 0.08, PBadGood: 0.4}
	lnk.Seed = 0xC0FFEE
	done := make(chan error, 1)
	go func() {
		_, err := csecg.RunStream(csecg.StreamConfig{
			RecordID:  "100",
			Seconds:   16,
			Params:    csecg.Params{Seed: 0x601, M: csecg.MForCR(50, csecg.WindowSize)},
			Link:      lnk,
			Transport: csecg.TransportConfig{NACK: true},
			Metrics:   reg,
			Observer:  ses,
		})
		ses.Finish()
		done <- err
	}()

	// Poll every endpoint until the stream completes; each must serve
	// on every round (readyz may legitimately be 503 mid-burst).
	polls := 0
	for {
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("RunStream: %v", err)
			}
		default:
			for _, path := range []string{"/metrics", "/healthz", "/sessions"} {
				if code, body := get(t, ts, path); code != http.StatusOK {
					t.Fatalf("mid-stream GET %s: %d (%s)", path, code, body)
				}
			}
			if code, _ := get(t, ts, "/readyz"); code != http.StatusOK && code != http.StatusServiceUnavailable {
				t.Fatalf("mid-stream GET /readyz: %d", code)
			}
			polls++
			time.Sleep(5 * time.Millisecond)
			continue
		}
		break
	}
	if polls == 0 {
		t.Fatal("stream finished before a single poll round")
	}

	// Final /sessions: one entry with the full quality/transport story.
	_, body := get(t, ts, "/sessions")
	var statuses []monitor.SessionStatus
	if err := json.Unmarshal([]byte(body), &statuses); err != nil {
		t.Fatalf("/sessions JSON: %v\n%s", err, body)
	}
	if len(statuses) != 1 {
		t.Fatalf("/sessions has %d entries, want 1", len(statuses))
	}
	st := statuses[0]
	if !st.Finished || st.Windows == 0 || st.MeanEstPRDN <= 0 {
		t.Errorf("final status incomplete: %+v", st)
	}
	if st.Gaps == 0 {
		t.Errorf("burst channel produced no gap episodes: %+v", st)
	}
	if st.Latency.P50Ns <= 0 || st.Latency.P99Ns < st.Latency.P50Ns {
		t.Errorf("latency quantiles inconsistent: %+v", st.Latency)
	}

	// Final /metrics: session-labeled series with the label value
	// escaped, composed with histogram le labels.
	_, metricsBody := get(t, ts, "/metrics")
	for _, want := range []string{
		`quality_windows_total{session="rec \"100\""}`,
		`stream_decode_latency_ns_bucket{session="rec \"100\"",le="`,
		`slo_quality_alert_state{session="rec \"100\""}`,
	} {
		if !strings.Contains(metricsBody, want) {
			t.Errorf("/metrics missing %s", want)
		}
	}
	if code, _ := get(t, ts, "/readyz"); code != http.StatusOK {
		t.Errorf("finished session still gates /readyz")
	}
}

// TestGracefulDrain pins the shutdown contract: BeginDrain flips
// /readyz to 503 immediately, while a scrape already in flight — and
// any straggler the balancer still routes — completes with a full
// body; WaitIdle returns once the wire is quiet.
func TestGracefulDrain(t *testing.T) {
	clk := &telemetry.ManualClock{}
	srv := monitor.NewServer(clk)
	reg := telemetry.NewRegistry()
	reg.Counter("transport_crc_rejected_total").Add(3)
	ses := monitor.NewSession(monitor.SessionConfig{Name: "rec 100", Registry: reg}, nil)
	ses.OnWindow(monitor.WindowStatus{Seq: 1, EstPRDN: 4, Degraded: true,
		Rung: coordinator.RungReducedIter})
	ses.OnSlot(monitor.SlotStatus{Slot: 1, Health: coordinator.HealthDecoding})
	srv.Attach(ses)

	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	srv.SetRequestHook(func(path string) {
		if path == "/metrics" {
			once.Do(func() { close(entered) })
			<-release
		}
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body)
	}

	if code, body := get("/readyz"); code != http.StatusOK {
		t.Fatalf("/readyz before drain: %d %s", code, body)
	}

	// A scrape enters and parks on the wire; then the drain begins.
	type result struct {
		code int
		body string
	}
	inflight := make(chan result)
	go func() {
		code, body := get("/metrics")
		inflight <- result{code, body}
	}()
	<-entered
	srv.BeginDrain()

	if code, body := get("/readyz"); code != http.StatusServiceUnavailable ||
		!strings.Contains(body, "draining") {
		t.Fatalf("/readyz during drain: %d %s, want 503 draining", code, body)
	}
	// Stragglers on the data endpoints still drain cleanly.
	if code, body := get("/sessions"); code != http.StatusOK ||
		!strings.Contains(body, "\"degraded_windows\": 1") ||
		!strings.Contains(body, "\"last_rung\": \"reduced-iter\"") {
		t.Fatalf("/sessions during drain: %d %s", code, body)
	}

	close(release)
	res := <-inflight
	if res.code != http.StatusOK || !strings.Contains(res.body, "transport_crc_rejected_total") {
		t.Fatalf("in-flight /metrics after drain: %d %q", res.code, res.body)
	}
	done := make(chan struct{})
	go func() {
		srv.WaitIdle()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("WaitIdle did not return after the wire went quiet")
	}
}
